/**
 * @file
 * smartconfctl — command-line companion for SmartConf deployments.
 *
 *     smartconfctl lint  <SmartConf.sys> <user.conf>
 *         cross-check the developer and user files; exit 1 on errors.
 *
 *     smartconfctl check <Conf.SmartConf.sys> <SmartConf.sys>
 *         validate a profiling store against its declaration.
 *
 *     smartconfctl synth <Conf.SmartConf.sys>
 *         re-derive controller parameters from the store's raw samples
 *         and print them next to the stored values.
 *
 *     smartconfctl demo
 *         write a small valid deployment into ./smartconf-demo/ and
 *         lint it — a template to start from.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "core/lint.h"
#include "core/profiler.h"
#include "core/sysfile.h"

namespace {

using namespace smartconf;

int
usage()
{
    std::fprintf(stderr,
                 "usage: smartconfctl lint <SmartConf.sys> <user.conf>\n"
                 "       smartconfctl check <store> <SmartConf.sys>\n"
                 "       smartconfctl synth <store>\n"
                 "       smartconfctl demo\n");
    return 2;
}

int
report(const std::vector<LintIssue> &issues)
{
    if (issues.empty()) {
        std::printf("OK: no findings\n");
        return 0;
    }
    std::printf("%s", formatLintIssues(issues).c_str());
    return hasLintErrors(issues) ? 1 : 0;
}

int
cmdLint(const char *sys_path, const char *user_path)
{
    const SysFile sys = parseSysFile(readTextFile(sys_path));
    const UserConf user = parseUserConf(readTextFile(user_path));
    std::printf("%zu configuration(s), %zu goal(s)\n",
                sys.entries.size(), user.goals.size());
    return report(lintDeployment(sys, user));
}

int
cmdCheck(const char *store_path, const char *sys_path)
{
    const ProfileFile store = parseProfileFile(readTextFile(store_path));
    const SysFile sys = parseSysFile(readTextFile(sys_path));
    const ConfEntry *entry = sys.find(store.conf);
    if (entry == nullptr) {
        std::fprintf(stderr,
                     "error: store is for '%s', which %s does not "
                     "declare\n", store.conf.c_str(), sys_path);
        return 1;
    }
    return report(lintProfile(store, *entry));
}

int
cmdSynth(const char *store_path)
{
    const ProfileFile store = parseProfileFile(readTextFile(store_path));
    std::printf("configuration: %s\n", store.conf.c_str());
    std::printf("%-14s %12s %12s\n", "", "stored", "re-derived");
    Profiler profiler;
    for (const ProfilePoint &pt : store.samples)
        profiler.record(pt.config, pt.perf, pt.config);
    const ProfileSummary fresh = profiler.summarize();
    const ProfileSummary &s = store.summary;
    std::printf("%-14s %12.4f %12.4f\n", "alpha", s.alpha, fresh.alpha);
    std::printf("%-14s %12.4f %12.4f\n", "lambda", s.lambda,
                fresh.lambda);
    std::printf("%-14s %12.4f %12.4f\n", "delta", s.delta, fresh.delta);
    std::printf("%-14s %12.4f %12.4f\n", "pole", s.pole, fresh.pole);
    std::printf("%-14s %12s %12s\n", "monotonic",
                s.monotonic ? "yes" : "NO",
                fresh.monotonic ? "yes" : "NO");
    return 0;
}

int
cmdDemo()
{
    namespace fs = std::filesystem;
    const fs::path dir = "smartconf-demo";
    fs::create_directories(dir);

    SysFile sys;
    sys.entries.push_back({"max.queue.size", "memory_consumption_max",
                           50.0, 0.0, 5000.0});
    writeTextFile((dir / "SmartConf.sys").string(), formatSysFile(sys));

    UserConf user;
    Goal g;
    g.metric = "memory_consumption_max";
    g.value = 1024.0;
    g.hard = true;
    user.goals[g.metric] = g;
    writeTextFile((dir / "app.conf").string(), formatUserConf(user));

    std::printf("wrote %s/SmartConf.sys and %s/app.conf\n",
                dir.string().c_str(), dir.string().c_str());
    return report(lintDeployment(sys, user));
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    try {
        if (std::strcmp(argv[1], "lint") == 0 && argc == 4)
            return cmdLint(argv[2], argv[3]);
        if (std::strcmp(argv[1], "check") == 0 && argc == 4)
            return cmdCheck(argv[2], argv[3]);
        if (std::strcmp(argv[1], "synth") == 0 && argc == 3)
            return cmdSynth(argv[2]);
        if (std::strcmp(argv[1], "demo") == 0)
            return cmdDemo();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage();
}
