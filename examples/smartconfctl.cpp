/**
 * @file
 * smartconfctl — command-line companion for SmartConf deployments.
 *
 *     smartconfctl lint  <SmartConf.sys> <user.conf>
 *         cross-check the developer and user files; exit 1 on errors.
 *
 *     smartconfctl check <Conf.SmartConf.sys> <SmartConf.sys>
 *         validate a profiling store against its declaration.
 *
 *     smartconfctl synth <Conf.SmartConf.sys>
 *         re-derive controller parameters from the store's raw samples
 *         and print them next to the stored values.
 *
 *     smartconfctl demo
 *         write a small valid deployment into ./smartconf-demo/ and
 *         lint it — a template to start from.
 *
 * Run-cache store commands (all take `--dir ROOT`, default
 * `.smartconf-cache` — the sweep harness's default cache root; the
 * versioned store directory underneath is resolved automatically):
 *
 *     smartconfctl query [--scenario P] [--policy S] [--chaos C|*|-]
 *                        [--seed-min N] [--seed-max N] [--count]
 *         range-scan the segment index: every cached run matching the
 *         filter, straight from the index — zero simulation, zero
 *         payload IO.
 *
 *     smartconfctl stats
 *         segment/shard/entry counts for the store.
 *
 *     smartconfctl compact
 *         merge small sealed segments and dedup superseded entries.
 *
 *     smartconfctl verify
 *         full-scan integrity check (headers, indexes, payload
 *         checksums, manifest); exit 1 on any finding.
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "core/lint.h"
#include "core/profiler.h"
#include "core/sysfile.h"
#include "exec/disk_cache.h"
#include "store/query.h"
#include "store/segment_store.h"

namespace {

using namespace smartconf;

int
usage()
{
    std::fprintf(stderr,
                 "usage: smartconfctl lint <SmartConf.sys> <user.conf>\n"
                 "       smartconfctl check <store> <SmartConf.sys>\n"
                 "       smartconfctl synth <store>\n"
                 "       smartconfctl demo\n"
                 "       smartconfctl query   [--dir ROOT] [--scenario P]"
                 " [--policy S]\n"
                 "                            [--chaos C|*|-] [--seed-min"
                 " N] [--seed-max N]\n"
                 "                            [--count]\n"
                 "       smartconfctl stats   [--dir ROOT]\n"
                 "       smartconfctl compact [--dir ROOT]\n"
                 "       smartconfctl verify  [--dir ROOT]\n");
    return 2;
}

int
report(const std::vector<LintIssue> &issues)
{
    if (issues.empty()) {
        std::printf("OK: no findings\n");
        return 0;
    }
    std::printf("%s", formatLintIssues(issues).c_str());
    return hasLintErrors(issues) ? 1 : 0;
}

int
cmdLint(const char *sys_path, const char *user_path)
{
    const SysFile sys = parseSysFile(readTextFile(sys_path));
    const UserConf user = parseUserConf(readTextFile(user_path));
    std::printf("%zu configuration(s), %zu goal(s)\n",
                sys.entries.size(), user.goals.size());
    return report(lintDeployment(sys, user));
}

int
cmdCheck(const char *store_path, const char *sys_path)
{
    const ProfileFile store = parseProfileFile(readTextFile(store_path));
    const SysFile sys = parseSysFile(readTextFile(sys_path));
    const ConfEntry *entry = sys.find(store.conf);
    if (entry == nullptr) {
        std::fprintf(stderr,
                     "error: store is for '%s', which %s does not "
                     "declare\n", store.conf.c_str(), sys_path);
        return 1;
    }
    return report(lintProfile(store, *entry));
}

int
cmdSynth(const char *store_path)
{
    const ProfileFile store = parseProfileFile(readTextFile(store_path));
    std::printf("configuration: %s\n", store.conf.c_str());
    std::printf("%-14s %12s %12s\n", "", "stored", "re-derived");
    Profiler profiler;
    for (const ProfilePoint &pt : store.samples)
        profiler.record(pt.config, pt.perf, pt.config);
    const ProfileSummary fresh = profiler.summarize();
    const ProfileSummary &s = store.summary;
    std::printf("%-14s %12.4f %12.4f\n", "alpha", s.alpha, fresh.alpha);
    std::printf("%-14s %12.4f %12.4f\n", "lambda", s.lambda,
                fresh.lambda);
    std::printf("%-14s %12.4f %12.4f\n", "delta", s.delta, fresh.delta);
    std::printf("%-14s %12.4f %12.4f\n", "pole", s.pole, fresh.pole);
    std::printf("%-14s %12s %12s\n", "monotonic",
                s.monotonic ? "yes" : "NO",
                fresh.monotonic ? "yes" : "NO");
    return 0;
}

int
cmdDemo()
{
    namespace fs = std::filesystem;
    const fs::path dir = "smartconf-demo";
    fs::create_directories(dir);

    SysFile sys;
    sys.entries.push_back({"max.queue.size", "memory_consumption_max",
                           50.0, 0.0, 5000.0});
    writeTextFile((dir / "SmartConf.sys").string(), formatSysFile(sys));

    UserConf user;
    Goal g;
    g.metric = "memory_consumption_max";
    g.value = 1024.0;
    g.hard = true;
    user.goals[g.metric] = g;
    writeTextFile((dir / "app.conf").string(), formatUserConf(user));

    std::printf("wrote %s/SmartConf.sys and %s/app.conf\n",
                dir.string().c_str(), dir.string().c_str());
    return report(lintDeployment(sys, user));
}

/**
 * Store-command argument bundle.  @p root is the cache root the sweep
 * harness was pointed at; the versioned store directory underneath is
 * resolved here so users never need to know the layout version.
 */
struct StoreArgs
{
    std::string root = ".smartconf-cache";
    store::QueryFilter filter;
    bool count_only = false;
    bool ok = true;
};

StoreArgs
parseStoreArgs(int argc, char **argv, int first)
{
    StoreArgs a;
    for (int i = first; i < argc; ++i) {
        const auto want = [&](const char *flag) -> const char * {
            if (std::strcmp(argv[i], flag) != 0)
                return nullptr;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n", flag);
                a.ok = false;
                return nullptr;
            }
            return argv[++i];
        };
        if (const char *v = want("--dir"))
            a.root = v;
        else if (const char *v = want("--scenario"))
            a.filter.scenario_prefix = v;
        else if (const char *v = want("--policy"))
            a.filter.policy_substr = v;
        else if (const char *v = want("--chaos"))
            a.filter.chaos_substr = v;
        else if (const char *v = want("--seed-min"))
            a.filter.seed_min = std::strtoull(v, nullptr, 10);
        else if (const char *v = want("--seed-max"))
            a.filter.seed_max = std::strtoull(v, nullptr, 10);
        else if (std::strcmp(argv[i], "--count") == 0)
            a.count_only = true;
        else if (a.ok) {
            std::fprintf(stderr, "error: unknown store option '%s'\n",
                         argv[i]);
            a.ok = false;
        }
    }
    return a;
}

/** The versioned store dir for @p root; "" when nothing is there. */
std::string
resolveStoreDir(const std::string &root)
{
    namespace fs = std::filesystem;
    const std::string versioned = exec::DiskRunCache::versionDir(root);
    if (fs::exists(versioned))
        return versioned;
    // Accept being pointed straight at a versioned directory.
    if (fs::exists(fs::path(root) / store::SegmentStore::kManifestName))
        return root;
    std::error_code ec;
    for (const auto &e : fs::directory_iterator(root, ec))
        if (e.path().extension() == ".seg")
            return root;
    std::fprintf(stderr,
                 "error: no segment store under '%s' (looked for %s)\n",
                 root.c_str(), versioned.c_str());
    return "";
}

store::SegmentStore::Options
ctlOptions()
{
    store::SegmentStore::Options o;
    o.auto_compact = false; // one-shot CLI: compaction is explicit
    return o;
}

int
cmdQuery(const StoreArgs &a)
{
    const std::string dir = resolveStoreDir(a.root);
    if (dir.empty())
        return 1;
    store::SegmentStore s(dir, ctlOptions());
    const std::vector<store::QueryRow> rows =
        store::queryStore(s, a.filter);
    if (a.count_only) {
        std::printf("%zu\n", rows.size());
        return 0;
    }
    for (const store::QueryRow &r : rows) {
        if (r.seed_valid)
            std::printf("%-28s seed=%-8" PRIu64 " %6u B  %s | %s\n",
                        r.scenario.c_str(), r.seed, r.payload_len,
                        r.segment.empty() ? "(pending)"
                                          : r.segment.c_str(),
                        r.policy.c_str());
        else
            std::printf("%-28s %6u B  %s\n", r.key.c_str(),
                        r.payload_len,
                        r.segment.empty() ? "(pending)"
                                          : r.segment.c_str());
    }
    std::printf("%zu row(s)\n", rows.size());
    return 0;
}

int
cmdStats(const StoreArgs &a)
{
    const std::string dir = resolveStoreDir(a.root);
    if (dir.empty())
        return 1;
    store::SegmentStore s(dir, ctlOptions());
    std::size_t entries = 0;
    std::uint64_t payload_bytes = 0;
    s.forEachEntry([&](const store::IndexedEntry &e) {
        ++entries;
        payload_bytes += e.payload_len;
    });
    std::printf("store:            %s\n", dir.c_str());
    std::printf("shards:           %zu\n", s.shardCount());
    std::printf("segments:         %zu\n", s.segmentCount());
    std::printf("live entries:     %zu\n", entries);
    std::printf("payload bytes:    %" PRIu64 "\n", payload_bytes);
    return 0;
}

int
cmdCompact(const StoreArgs &a)
{
    const std::string dir = resolveStoreDir(a.root);
    if (dir.empty())
        return 1;
    store::SegmentStore s(dir, ctlOptions());
    const store::CompactionResult r = s.compact();
    std::printf("compacted %zu shard(s): %zu -> %zu segment(s), "
                "%" PRIu64 " -> %" PRIu64 " entr%s, %" PRIu64
                " B written\n",
                r.shards_compacted, r.segments_in, r.segments_out,
                r.entries_in, r.entries_out,
                r.entries_out == 1 ? "y" : "ies", r.bytes_written);
    return 0;
}

int
cmdVerify(const StoreArgs &a)
{
    const std::string dir = resolveStoreDir(a.root);
    if (dir.empty())
        return 1;
    store::SegmentStore s(dir, ctlOptions());
    const store::VerifyResult r = s.verify();
    for (const store::VerifyIssue &i : r.issues)
        std::printf("FINDING %s: %s\n", i.segment.c_str(),
                    i.what.c_str());
    std::printf("%zu segment(s) ok, %zu corrupt; %" PRIu64
                " entr%s ok, %" PRIu64 " corrupt; manifest %s\n",
                r.segments_ok, r.segments_corrupt, r.entries_ok,
                r.entries_ok == 1 ? "y" : "ies", r.entries_corrupt,
                r.manifest_ok ? "ok" : "TORN/STALE");
    return r.clean() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    try {
        if (std::strcmp(argv[1], "lint") == 0 && argc == 4)
            return cmdLint(argv[2], argv[3]);
        if (std::strcmp(argv[1], "check") == 0 && argc == 4)
            return cmdCheck(argv[2], argv[3]);
        if (std::strcmp(argv[1], "synth") == 0 && argc == 3)
            return cmdSynth(argv[2]);
        if (std::strcmp(argv[1], "demo") == 0)
            return cmdDemo();
        if (std::strcmp(argv[1], "query") == 0 ||
            std::strcmp(argv[1], "stats") == 0 ||
            std::strcmp(argv[1], "compact") == 0 ||
            std::strcmp(argv[1], "verify") == 0) {
            const StoreArgs a = parseStoreArgs(argc, argv, 2);
            if (!a.ok)
                return usage();
            if (std::strcmp(argv[1], "query") == 0)
                return cmdQuery(a);
            if (std::strcmp(argv[1], "stats") == 0)
                return cmdStats(a);
            if (std::strcmp(argv[1], "compact") == 0)
                return cmdCompact(a);
            return cmdVerify(a);
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage();
}
