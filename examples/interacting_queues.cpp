/**
 * @file
 * Fig. 8 walkthrough: two PerfConfs coordinating on one memory goal.
 *
 * HB3813's request queue and HB6728's response queue both consume the
 * same JVM heap.  Declaring the goal *super-hard* makes SmartConf split
 * the control effort across the two controllers (interaction factor
 * N = 2, paper Sec. 5.4): when reads flood in at 50 s, the response
 * queue claims memory and the request queue is throttled — and the
 * heap constraint holds throughout.
 */

#include <algorithm>
#include <cstdio>

#include "core/smartconf.h"
#include "kvstore/server.h"
#include "scenarios/hb3813.h"
#include "workload/ycsb.h"

int
main()
{
    using namespace smartconf;
    using namespace smartconf::scenarios;

    // Synthesize controller parameters from an HB3813 profiling pass.
    Hb3813Scenario donor;
    const ProfileSummary model = donor.profile(42);

    SmartConfRuntime rt;
    rt.declareConf({"ipc.server.max.queue.size", "mem", 0.0, 0.0,
                    5000.0});
    rt.declareConf({"ipc.server.response.queue.maxsize", "mem", 8.0,
                    1.0, 5000.0});
    Goal goal;
    goal.metric = "mem";
    goal.value = 495.0;
    goal.superHard = true; // the paper's safety net for interaction
    goal.hard = true;
    rt.declareGoal(goal);
    rt.installProfile("ipc.server.max.queue.size", model);
    rt.installProfile("ipc.server.response.queue.maxsize", model);

    SmartConfI req(rt, "ipc.server.max.queue.size");
    SmartConfI resp(rt, "ipc.server.response.queue.maxsize");
    std::printf("interaction factor N = %zu\n\n",
                rt.coordinator().interactionCount("mem"));

    kvstore::KvServerParams sp;
    sp.heap_mb = 495.0;
    sp.request_queue_items = 0;
    sp.response_queue_mb = 8.0;
    sp.other_base_mb = 150.0;
    sp.other_walk_mb = 5.0;
    sp.other_max_mb = 220.0;
    kvstore::KvServer server(sp, sim::Rng(7));

    workload::YcsbParams wp;
    wp.write_fraction = 1.0; // writes only at first
    wp.ops_per_tick = 18.0;  // above the service rate: queues back up
    workload::YcsbGenerator gen(wp, sim::Rng(8));

    std::printf("%8s %12s %16s %18s\n", "time(s)", "mem(MB)",
                "req queue cap", "resp queue cap(MB)");
    double worst = 0.0;
    std::vector<workload::Op> ops;
    for (sim::Tick t = 0; t < 2400; ++t) {
        if (t == 500) {
            auto p = gen.params();
            p.write_fraction = 0.5; // the read workload joins
            p.request_size_mb = 1.5;
            gen.setParams(p);
            std::printf("    -- read workload joins --\n");
        }
        gen.tickInto(ops);
        server.accept(ops, t);
        server.step(t);
        const double mem = server.heap().usedMb();
        worst = std::max(worst, mem);

        req.setPerf(mem, static_cast<double>(
                             server.requestQueue().size()));
        server.requestQueue().setMaxItems(static_cast<std::size_t>(
            std::max(0, req.getConf())));
        resp.setPerf(server.heap().usedMb(),
                     server.responseQueue().bytesMb());
        server.responseQueue().setMaxMb(
            std::max(1.0, resp.getConfReal()));

        if (t % 200 == 0) {
            std::printf("%8.1f %12.1f %16zu %18.1f\n", t / 10.0, mem,
                        server.requestQueue().maxItems(),
                        server.responseQueue().maxMb());
        }
    }
    std::printf("\nworst memory %.1f MB vs constraint 495 MB -> %s\n",
                worst, server.crashed() ? "OOM" : "never violated");
    return 0;
}
