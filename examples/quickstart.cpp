/**
 * @file
 * SmartConf quickstart: auto-adjust one configuration against a goal.
 *
 * This is the smallest complete use of the library, following the
 * paper's workflow end to end:
 *
 *   1. declare the configuration and the user's performance goal
 *      (normally parsed from SmartConf.sys and the app config file);
 *   2. run a short profiling phase — a few static settings, a few
 *      samples each — and let SmartConf synthesize the controller;
 *   3. replace every read of the configuration with
 *      setPerf(measurement) + getConf().
 *
 * The "system" here is a toy cache whose memory footprint is roughly
 * proportional to its entry cap, plus noisy co-resident usage.  The
 * user's goal: never exceed 1024 MB of heap (a hard constraint).
 */

#include <cstdio>

#include "core/smartconf.h"
#include "sim/rng.h"

namespace {

/** A toy cache: memory ~ 0.5 MB per entry + whatever neighbours use. */
struct ToyCache
{
    double entries = 0.0;
    double neighbours_mb = 300.0;

    double memoryMb(smartconf::sim::Rng &rng)
    {
        neighbours_mb += rng.uniform(-8.0, 8.0);
        if (neighbours_mb < 200.0)
            neighbours_mb = 200.0;
        if (neighbours_mb > 420.0)
            neighbours_mb = 420.0;
        return 0.5 * entries + neighbours_mb;
    }
};

} // namespace

int
main()
{
    using namespace smartconf;

    SmartConfRuntime rt;

    // --- 1. Declarations (Fig. 2's two files, done programmatically).
    ConfEntry entry;
    entry.name = "cache.max.entries";
    entry.metric = "memory_consumption_max";
    entry.initial = 100.0;
    entry.confMin = 0.0;
    entry.confMax = 100000.0;
    rt.declareConf(entry);

    Goal goal;
    goal.metric = "memory_consumption_max";
    goal.value = 1024.0; // MB
    goal.hard = true;    // out-of-memory must never happen
    rt.declareGoal(goal);

    // --- 2. Profiling: 4 settings x 10 samples (the paper's recipe).
    rt.setProfiling(true);
    SmartConf conf(rt, "cache.max.entries");
    sim::Rng rng(2024);
    ToyCache cache;
    for (double setting : {200.0, 600.0, 1000.0, 1400.0}) {
        rt.setCurrentValue("cache.max.entries", setting);
        cache.entries = setting;
        for (int i = 0; i < 10; ++i)
            conf.setPerf(cache.memoryMb(rng));
    }
    const ProfileSummary model = rt.finishProfiling("cache.max.entries");
    rt.setProfiling(false);
    std::printf("synthesized controller: alpha=%.3f pole=%.2f "
                "lambda=%.3f -> virtual goal %.0f MB\n",
                model.alpha, model.pole, model.lambda,
                (1.0 - model.lambda) * goal.value);

    // --- 3. Run time: the cache reads its cap through SmartConf.
    std::printf("\n%8s %12s %14s\n", "step", "entries", "memory (MB)");
    for (int step = 0; step < 30; ++step) {
        const double mem = cache.memoryMb(rng);
        conf.setPerf(mem);
        cache.entries = conf.getConf();
        if (step % 3 == 0)
            std::printf("%8d %12.0f %14.1f\n", step, cache.entries, mem);
    }

    std::printf("\nThe cap settles where memory sits just under the "
                "virtual goal,\nabsorbing the noisy neighbours without "
                "ever crossing %.0f MB.\n", goal.value);
    return 0;
}
