/**
 * @file
 * MR2820 walkthrough: guarding worker disks with a negative-gain
 * controller.
 *
 * `local.dir.minspacestart` gates task admission on free local disk.
 * The gain is negative — raising the gate lowers peak disk usage — and
 * the value is computed on the master and propagated to the workers.
 * SmartConf keeps the cluster busy while guaranteeing no out-of-disk:
 *
 *     ./mapreduce_diskguard        # SmartConf
 *     ./mapreduce_diskguard 0      # the old hard-coded default (OOD!)
 *     ./mapreduce_diskguard 400    # a conservative static setting
 */

#include <cstdio>
#include <cstdlib>

#include "scenarios/mr2820.h"

int
main(int argc, char **argv)
{
    using namespace smartconf;
    using namespace smartconf::scenarios;

    Policy policy = Policy::smart();
    if (argc > 1)
        policy = Policy::makeStatic(std::atof(argv[1]));

    Mr2820Scenario scenario;
    std::printf("MR2820: %s\n", scenario.info().description.c_str());
    std::printf("policy: %s | disk %.0f MB per worker | jobs: "
                "WordCount(640MB,64MB,2) then (640MB,128MB,2)\n\n",
                policy.label.c_str(),
                scenario.options().disk_capacity_mb);

    const ScenarioResult r = scenario.run(policy, 1);

    std::printf("%8s %16s %18s %14s\n", "time(s)", "disk used(MB)",
                "minspacestart(MB)", "tasks done");
    const auto disk = r.perf_series.downsampleMax(20);
    const auto conf = r.conf_series.downsampleMax(20);
    const auto tasks = r.tradeoff_series.downsampleMax(20);
    for (std::size_t i = 0; i < disk.size(); ++i) {
        std::printf("%8.1f %16.1f %18.0f %14.0f\n",
                    static_cast<double>(disk[i].tick) / 10.0,
                    disk[i].value,
                    i < conf.size() ? conf[i].value : 0.0,
                    i < tasks.size() ? tasks[i].value : 0.0);
    }

    std::printf("\npeak disk: %.1f MB (capacity %.0f MB)  ->  %s\n",
                r.worst_goal_metric, r.goal_value,
                r.violated ? "OUT OF DISK, job lost"
                           : "constraint satisfied");
    if (!r.violated)
        std::printf("both jobs finished in %.1f s\n", r.raw_tradeoff);
    return 0;
}
