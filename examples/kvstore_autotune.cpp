/**
 * @file
 * HB3813 walkthrough: auto-adjusting an RPC queue bound against OOM.
 *
 * Runs the paper's flagship case study (Fig. 6) and prints the three
 * curves: cumulative throughput, used memory and the dynamically
 * adjusted `ipc.server.max.queue.size`.  Compare with a static setting
 * by passing a number as the first argument:
 *
 *     ./kvstore_autotune          # SmartConf
 *     ./kvstore_autotune 100      # static max.queue.size = 100
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "scenarios/hb3813.h"

int
main(int argc, char **argv)
{
    using namespace smartconf;
    using namespace smartconf::scenarios;

    Policy policy = Policy::smart();
    if (argc > 1)
        policy = Policy::makeStatic(std::atof(argv[1]));

    Hb3813Scenario scenario;
    std::printf("HB3813: %s\n", scenario.info().description.c_str());
    std::printf("policy: %s | heap %.0f MB | request size doubles at "
                "200 s\n\n",
                policy.label.c_str(), scenario.options().heap_mb);

    const ScenarioResult r = scenario.run(policy, 1);

    std::printf("%8s %14s %16s %16s\n", "time(s)", "memory(MB)",
                "max.queue.size", "completed ops");
    const auto mem = r.perf_series.downsampleMax(24);
    const auto conf = r.conf_series.downsampleMax(24);
    const auto ops = r.tradeoff_series.downsampleMax(24);
    for (std::size_t i = 0; i < mem.size(); ++i) {
        std::printf("%8.1f %14.1f %16.0f %16.0f\n",
                    static_cast<double>(mem[i].tick) / 10.0,
                    mem[i].value,
                    i < conf.size() ? conf[i].value : 0.0,
                    i < ops.size() ? ops[i].value : 0.0);
    }

    std::printf("\nworst memory: %.1f MB (goal %.0f MB)  ->  %s\n",
                r.worst_goal_metric, r.goal_value,
                r.violated ? "OUT OF MEMORY" : "constraint satisfied");
    std::printf("throughput: %.1f ops/s\n", r.raw_tradeoff);
    if (r.violated)
        std::printf("crashed at t = %.1f s\n", r.violation_time_s);
    return 0;
}
