/**
 * @file
 * Inspect a SmartConf profiling store (<Conf>.SmartConf.sys).
 *
 * Given a store file, prints the synthesized controller parameters,
 * re-derives them from the raw samples (so drift between the stored
 * summary and the data is visible) and explains what each value means.
 * With no argument, generates and inspects a demo store.
 *
 *     ./profile_inspector [path/to/conf.SmartConf.sys]
 */

#include <cstdio>
#include <string>

#include "core/profiler.h"
#include "core/sysfile.h"
#include "sim/rng.h"

namespace {

std::string
demoStore()
{
    using namespace smartconf;
    Profiler profiler;
    sim::Rng rng(7);
    for (double setting : {40.0, 80.0, 120.0, 160.0}) {
        for (int i = 0; i < 10; ++i) {
            profiler.record(setting,
                            210.0 + setting + rng.gaussian(0.0, 12.0),
                            setting);
        }
    }
    ProfileFile file;
    file.conf = "max.queue.size";
    file.summary = profiler.summarize();
    file.samples = profiler.samples();
    return formatProfileFile(file);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace smartconf;

    std::string text;
    if (argc > 1) {
        text = readTextFile(argv[1]);
    } else {
        std::printf("(no file given: inspecting a generated demo "
                    "store)\n\n");
        text = demoStore();
    }

    const ProfileFile file = parseProfileFile(text);
    std::printf("configuration : %s\n", file.conf.c_str());
    std::printf("samples       : %zu recorded\n", file.samples.size());

    const ProfileSummary &s = file.summary;
    std::printf("\nstored synthesis\n");
    std::printf("  alpha  = %8.4f   (perf change per unit of config, "
                "Eq. 1)\n", s.alpha);
    std::printf("  base   = %8.2f   (workload floor absorbed by the "
                "affine fit)\n", s.base);
    std::printf("  lambda = %8.4f   (profiling instability -> virtual "
                "goal (1-lambda)*goal)\n", s.lambda);
    std::printf("  delta  = %8.2f   (projected model-error bound)\n",
                s.delta);
    std::printf("  pole   = %8.4f   (p = 1 - 2/delta for delta > 2)\n",
                s.pole);
    std::printf("  corr   = %8.2f   monotonic: %s\n", s.correlation,
                s.monotonic ? "yes" : "NO — SmartConf cannot manage "
                                      "this configuration (Sec. 6.6)");

    if (!file.samples.empty()) {
        Profiler fresh;
        for (const auto &pt : file.samples)
            fresh.record(pt.config, pt.perf, pt.config);
        const ProfileSummary r = fresh.summarize();
        std::printf("\nre-derived from the raw samples\n");
        std::printf("  alpha  = %8.4f   lambda = %.4f   pole = %.4f\n",
                    r.alpha, r.lambda, r.pole);
        const double drift =
            s.alpha != 0.0 ? (r.alpha - s.alpha) / s.alpha : 0.0;
        std::printf("  drift vs stored alpha: %+.2f%%%s\n",
                    drift * 100.0,
                    (drift < -0.05 || drift > 0.05)
                        ? "  <-- stale store? re-profile"
                        : "");
    }
    return 0;
}
