/**
 * @file
 * HD4995 walkthrough: throttling du under the namenode's global lock.
 *
 * `content-summary.limit` bounds how many files a du traverses per
 * lock acquisition.  This example shows SmartConf's *indirect*
 * configuration support with a custom transducer: the controller
 * reasons about lock-hold seconds; the transducer converts the desired
 * hold time into a file count.  The latency constraint tightens from
 * 20 s to 10 s mid-run via the user-facing setGoal API.
 *
 *     ./dfs_du_throttle            # SmartConf
 *     ./dfs_du_throttle 5000000    # the shipped default (violates)
 */

#include <cstdio>
#include <cstdlib>

#include "scenarios/hd4995.h"

int
main(int argc, char **argv)
{
    using namespace smartconf;
    using namespace smartconf::scenarios;

    Policy policy = Policy::smart();
    if (argc > 1)
        policy = Policy::makeStatic(std::atof(argv[1]));

    Hd4995Scenario scenario;
    std::printf("HD4995: %s\n", scenario.info().description.c_str());
    std::printf("policy: %s | write-wait goal 20 s, tightening to 10 s "
                "at 300 s\n\n", policy.label.c_str());

    const ScenarioResult r = scenario.run(policy, 1);

    std::printf("%8s %18s %22s\n", "time(s)", "worst wait(s)",
                "content-summary.limit");
    const auto &waits = r.perf_series.points();
    const auto &conf = r.conf_series.points();
    for (const auto &pt : waits) {
        const std::size_t idx = static_cast<std::size_t>(pt.tick);
        const double limit =
            idx < conf.size() ? conf[idx].value : conf.back().value;
        std::printf("%8.1f %18.1f %22.0f\n",
                    static_cast<double>(pt.tick) / 10.0,
                    pt.value / 10.0, limit);
    }

    std::printf("\nworst write wait: %.1f s (phase-2 goal %.0f s)  ->  "
                "%s\n", r.worst_goal_metric / 10.0, r.goal_value / 10.0,
                r.violated ? "CONSTRAINT VIOLATED"
                           : "constraint satisfied");
    std::printf("mean du latency: %.1f s (the optimized trade-off)\n",
                r.raw_tradeoff);
    return 0;
}
