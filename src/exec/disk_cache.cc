#include "exec/disk_cache.h"

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "sim/kernels.h"
#include "sim/metrics.h"

namespace smartconf::exec {

namespace {

constexpr char kLegacyMagic[4] = {'S', 'C', 'R', 'C'};

/** Append-only little buffer writer (native endianness: the cache is a
 *  single-machine artifact, never shipped between hosts). */
class Writer
{
  public:
    void raw(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const char *>(p);
        buf_.insert(buf_.end(), b, b + n);
    }
    void u32(std::uint32_t v) { raw(&v, sizeof v); }
    void u64(std::uint64_t v) { raw(&v, sizeof v); }
    void f64(double v) { raw(&v, sizeof v); }
    void u8(std::uint8_t v) { raw(&v, sizeof v); }
    void str(const std::string &s)
    {
        u64(s.size());
        raw(s.data(), s.size());
    }
    void series(const sim::TimeSeries &ts)
    {
        str(ts.name());
        u64(ts.points().size());
        // Point is {Tick, double}: two 8-byte scalars with no padding
        // (asserted below), so the curve round-trips as one block copy.
        // A result carries up to hundreds of thousands of points; bulk
        // I/O is what keeps warm process start-up in the market for
        // "faster than simulating".  The block goes through the kernel
        // layer's widened copy rather than insert()'s element path.
        static_assert(sizeof(sim::TimeSeries::Point) == 16,
                      "Point must pack to 16 bytes for bulk series I/O");
        const std::size_t bytes = ts.points().size() * 16;
        const std::size_t off = buf_.size();
        buf_.resize(off + bytes);
        sim::kernels::copyBytes(buf_.data() + off, ts.points().data(),
                                bytes);
    }
    std::vector<char> take() { return std::move(buf_); }
    const std::vector<char> &bytes() const { return buf_; }

  private:
    std::vector<char> buf_;
};

/** Bounds-checked reader over a loaded buffer; any overrun fails the
 *  whole parse (torn or foreign bytes -> miss). */
class Reader
{
  public:
    Reader(const char *data, std::size_t size)
        : data_(data), size_(size)
    {}

    bool raw(void *out, std::size_t n)
    {
        if (pos_ + n > size_)
            return false;
        sim::kernels::copyBytes(out, data_ + pos_, n);
        pos_ += n;
        return true;
    }
    bool u32(std::uint32_t &v) { return raw(&v, sizeof v); }
    bool u64(std::uint64_t &v) { return raw(&v, sizeof v); }
    bool f64(double &v) { return raw(&v, sizeof v); }
    bool u8(std::uint8_t &v) { return raw(&v, sizeof v); }
    bool str(std::string &s)
    {
        std::uint64_t n = 0;
        if (!u64(n) || pos_ + n > size_)
            return false;
        s.assign(data_ + pos_, static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return true;
    }
    bool series(sim::TimeSeries &ts)
    {
        std::string name;
        std::uint64_t n = 0;
        if (!str(name) || !u64(n))
            return false;
        // 16 bytes per point; reject counts the payload can't hold
        // before allocating (a torn length field must not OOM us).
        if (n > (size_ - pos_) / 16)
            return false;
        std::vector<sim::TimeSeries::Point> points(
            static_cast<std::size_t>(n));
        if (!raw(points.data(), points.size() * 16))
            return false;
        ts = sim::TimeSeries(std::move(name));
        ts.assign(std::move(points));
        return true;
    }
    bool atEnd() const { return pos_ == size_; }

    /** Unconsumed remainder (for whole-payload checksumming). */
    const char *rest() const { return data_ + pos_; }
    std::size_t restSize() const { return size_ - pos_; }

  private:
    const char *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

} // namespace

DiskRunCache::DiskRunCache(std::string root)
    : DiskRunCache(std::move(root), store::SegmentStore::Options{})
{}

DiskRunCache::DiskRunCache(std::string root,
                           store::SegmentStore::Options opts)
{
    const std::string r = std::move(root);
    dir_ = versionDir(r);
    opts.format = kFormatVersion;
    opts.engine = kEngineVersion;
    store_ = std::make_unique<store::SegmentStore>(dir_, opts);
    migrateLegacy(r);
}

DiskRunCache::~DiskRunCache() = default; // ~SegmentStore flushes

std::string
DiskRunCache::versionDir(const std::string &root)
{
    return root + "/v" + std::to_string(kFormatVersion) + "-e" +
           std::to_string(kEngineVersion);
}

std::string
DiskRunCache::legacyDir(const std::string &root)
{
    return root + "/v" + std::to_string(kLegacyFormatVersion) + "-e" +
           std::to_string(kEngineVersion);
}

std::uint64_t
DiskRunCache::fnv1a(const std::string &s)
{
    return fnv1a(s.data(), s.size());
}

std::uint64_t
DiskRunCache::fnv1a(const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
DiskRunCache::checksum64(const void *data, std::size_t len)
{
    return sim::kernels::checksum(data, len);
}

std::vector<char>
DiskRunCache::serializeResult(const scenarios::ScenarioResult &result)
{
    Writer payload;
    payload.str(result.scenario_id);
    payload.str(result.policy_label);
    payload.u8(result.violated ? 1 : 0);
    payload.f64(result.violation_time_s);
    payload.f64(result.worst_goal_metric);
    payload.f64(result.goal_value);
    payload.f64(result.tradeoff);
    payload.f64(result.raw_tradeoff);
    payload.f64(result.mean_conf);
    payload.u64(result.ops_simulated);
    payload.u64(result.faults_injected);
    payload.u64(result.shard_ops.size());
    payload.raw(result.shard_ops.data(), result.shard_ops.size() * 8);
    payload.series(result.perf_series);
    payload.series(result.conf_series);
    payload.series(result.tradeoff_series);
    return payload.take();
}

bool
DiskRunCache::parseResult(const char *data, std::size_t len,
                          scenarios::ScenarioResult &out)
{
    Reader r(data, len);
    scenarios::ScenarioResult res;
    std::uint8_t violated = 0;
    const bool ok =
        r.str(res.scenario_id) && r.str(res.policy_label) &&
        r.u8(violated) && r.f64(res.violation_time_s) &&
        r.f64(res.worst_goal_metric) && r.f64(res.goal_value) &&
        r.f64(res.tradeoff) && r.f64(res.raw_tradeoff) &&
        r.f64(res.mean_conf) && r.u64(res.ops_simulated) &&
        r.u64(res.faults_injected);
    // Per-shard ops counters: u64 count then count u64 values.  The
    // count is bounded by the payload remainder before allocating.
    std::uint64_t shard_count = 0;
    bool shards_ok = ok && r.u64(shard_count) &&
                     shard_count <= r.restSize() / 8;
    if (shards_ok) {
        res.shard_ops.resize(static_cast<std::size_t>(shard_count));
        shards_ok = r.raw(res.shard_ops.data(), shard_count * 8);
    }
    if (!shards_ok || !r.series(res.perf_series) ||
        !r.series(res.conf_series) ||
        !r.series(res.tradeoff_series) || !r.atEnd())
        return false;
    res.violated = violated != 0;
    out = std::move(res);
    return true;
}

bool
DiskRunCache::load(const std::string &key,
                   scenarios::ScenarioResult &out)
{
    // The store validates the full key and the payload checksum before
    // returning bytes; a parse failure here means a serializer skew
    // inside one format version — still just a miss.
    std::vector<char> payload;
    if (!store_->get(key, payload))
        return false;
    return parseResult(payload.data(), payload.size(), out);
}

bool
DiskRunCache::store(const std::string &key,
                    const scenarios::ScenarioResult &result)
{
    if (!usable())
        return false;
    const std::vector<char> payload = serializeResult(result);
    return store_->put(key, payload.data(), payload.size(),
                       checksum64(payload.data(), payload.size()));
}

bool
DiskRunCache::flush()
{
    if (checked_ && cache_off_)
        return false;
    return store_->flush();
}

bool
DiskRunCache::usable()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!checked_) {
        // One sticky probe: if the versioned directory cannot exist
        // (e.g. the root is a regular file), every store() degrades to
        // cache-off instead of buffering bytes that can never land.
        std::error_code ec;
        std::filesystem::create_directories(dir_, ec);
        cache_off_ = static_cast<bool>(ec);
        checked_ = true;
    }
    return !cache_off_;
}

void
DiskRunCache::migrateLegacy(const std::string &root)
{
    namespace fs = std::filesystem;
    const std::string legacy = legacyDir(root);
    std::error_code ec;
    if (!fs::is_directory(legacy, ec))
        return;

    // One-shot wholesale migration: every v5 entry for the *current*
    // engine whose checksum still verifies is re-stored verbatim (the
    // payload byte layout is unchanged between formats 5 and 6).
    // Anything torn, foreign, or bit-flipped is orphaned and counted.
    for (fs::directory_iterator it(legacy, ec), end; !ec && it != end;
         it.increment(ec)) {
        if (!it->is_regular_file(ec) ||
            it->path().extension() != ".bin")
            continue;
        std::FILE *f = std::fopen(it->path().c_str(), "rb");
        if (!f) {
            ++orphaned_;
            continue;
        }
        std::vector<char> data;
        if (std::fseek(f, 0, SEEK_END) == 0) {
            const long endpos = std::ftell(f);
            if (endpos > 0 && std::fseek(f, 0, SEEK_SET) == 0) {
                data.resize(static_cast<std::size_t>(endpos));
                if (std::fread(data.data(), 1, data.size(), f) !=
                    data.size())
                    data.clear();
            }
        }
        std::fclose(f);

        Reader r(data.data(), data.size());
        char magic[4];
        std::uint32_t format = 0, engine = 0;
        std::string key;
        std::uint64_t sum = 0;
        const bool header_ok =
            !data.empty() && r.raw(magic, 4) &&
            std::memcmp(magic, kLegacyMagic, 4) == 0 && r.u32(format) &&
            format == kLegacyFormatVersion && r.u32(engine) &&
            engine == kEngineVersion && r.str(key) && r.u64(sum) &&
            sum == checksum64(r.rest(), r.restSize());
        if (!header_ok ||
            !store_->put(key, r.rest(), r.restSize(), sum)) {
            ++orphaned_;
            continue;
        }
        ++migrated_;
    }

    if (migrated_ > 0 && usable())
        store_->flush();

    // Retire the old layout so the next construction skips this pass.
    // A failed rename leaves it in place; re-migration is idempotent
    // (duplicate keys dedup on compaction, newest wins).
    const std::string retired = legacy + ".migrated";
    fs::remove_all(retired, ec);
    fs::rename(legacy, retired, ec);

    if (migrated_ > 0 || orphaned_ > 0)
        std::fprintf(stderr,
                     "[disk-cache] migrated %llu v5 entr%s to the "
                     "segment store, orphaned %llu, from %s\n",
                     static_cast<unsigned long long>(migrated_),
                     migrated_ == 1 ? "y" : "ies",
                     static_cast<unsigned long long>(orphaned_),
                     legacy.c_str());
}

} // namespace smartconf::exec
