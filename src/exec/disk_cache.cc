#include "exec/disk_cache.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <vector>

#include "sim/kernels.h"
#include "sim/metrics.h"

namespace smartconf::exec {

namespace {

constexpr char kMagic[4] = {'S', 'C', 'R', 'C'};

/** Append-only little buffer writer (native endianness: the cache is a
 *  single-machine artifact, never shipped between hosts). */
class Writer
{
  public:
    void raw(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const char *>(p);
        buf_.insert(buf_.end(), b, b + n);
    }
    void u32(std::uint32_t v) { raw(&v, sizeof v); }
    void u64(std::uint64_t v) { raw(&v, sizeof v); }
    void i64(std::int64_t v) { raw(&v, sizeof v); }
    void f64(double v) { raw(&v, sizeof v); }
    void u8(std::uint8_t v) { raw(&v, sizeof v); }
    void str(const std::string &s)
    {
        u64(s.size());
        raw(s.data(), s.size());
    }
    void series(const sim::TimeSeries &ts)
    {
        str(ts.name());
        u64(ts.points().size());
        // Point is {Tick, double}: two 8-byte scalars with no padding
        // (asserted below), so the curve round-trips as one block copy.
        // A result carries up to hundreds of thousands of points; bulk
        // I/O is what keeps warm process start-up in the market for
        // "faster than simulating".  The block goes through the kernel
        // layer's widened copy rather than insert()'s element path.
        static_assert(sizeof(sim::TimeSeries::Point) == 16,
                      "Point must pack to 16 bytes for bulk series I/O");
        const std::size_t bytes = ts.points().size() * 16;
        const std::size_t off = buf_.size();
        buf_.resize(off + bytes);
        sim::kernels::copyBytes(buf_.data() + off, ts.points().data(),
                                bytes);
    }
    const std::vector<char> &bytes() const { return buf_; }

  private:
    std::vector<char> buf_;
};

/** Bounds-checked reader over a loaded file; any overrun fails the
 *  whole load (torn or foreign file -> miss). */
class Reader
{
  public:
    Reader(const char *data, std::size_t size)
        : data_(data), size_(size)
    {}

    bool raw(void *out, std::size_t n)
    {
        if (pos_ + n > size_)
            return false;
        sim::kernels::copyBytes(out, data_ + pos_, n);
        pos_ += n;
        return true;
    }
    bool u32(std::uint32_t &v) { return raw(&v, sizeof v); }
    bool u64(std::uint64_t &v) { return raw(&v, sizeof v); }
    bool i64(std::int64_t &v) { return raw(&v, sizeof v); }
    bool f64(double &v) { return raw(&v, sizeof v); }
    bool u8(std::uint8_t &v) { return raw(&v, sizeof v); }
    bool str(std::string &s)
    {
        std::uint64_t n = 0;
        if (!u64(n) || pos_ + n > size_)
            return false;
        s.assign(data_ + pos_, static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return true;
    }
    bool series(sim::TimeSeries &ts)
    {
        std::string name;
        std::uint64_t n = 0;
        if (!str(name) || !u64(n))
            return false;
        // 16 bytes per point; reject counts the payload can't hold
        // before allocating (a torn length field must not OOM us).
        if (n > (size_ - pos_) / 16)
            return false;
        std::vector<sim::TimeSeries::Point> points(
            static_cast<std::size_t>(n));
        if (!raw(points.data(), points.size() * 16))
            return false;
        ts = sim::TimeSeries(std::move(name));
        ts.assign(std::move(points));
        return true;
    }
    bool atEnd() const { return pos_ == size_; }

    /** Unconsumed remainder (for whole-payload checksumming). */
    const char *rest() const { return data_ + pos_; }
    std::size_t restSize() const { return size_ - pos_; }

  private:
    const char *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

} // namespace

DiskRunCache::DiskRunCache(std::string root)
{
    dir_ = std::move(root);
    dir_ += "/v" + std::to_string(kFormatVersion) + "-e" +
            std::to_string(kEngineVersion);
}

std::uint64_t
DiskRunCache::fnv1a(const std::string &s)
{
    return fnv1a(s.data(), s.size());
}

std::uint64_t
DiskRunCache::fnv1a(const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
DiskRunCache::checksum64(const void *data, std::size_t len)
{
    return sim::kernels::checksum(data, len);
}

std::string
DiskRunCache::entryPath(const std::string &key) const
{
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(fnv1a(key)));
    return dir_ + "/" + hex + ".bin";
}

bool
DiskRunCache::load(const std::string &key,
                   scenarios::ScenarioResult &out) const
{
    const std::string path = entryPath(key);
    // fopen("rb") on a *directory* succeeds on Linux and then reports a
    // nonsense size at SEEK_END — a sized read would try to allocate
    // it.  A blocked entry slot is layout corruption: degrade to miss.
    std::error_code ec;
    if (!std::filesystem::is_regular_file(path, ec))
        return false;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    // One sized read: entries run to megabytes of series points, and
    // chunked append would copy every byte at least twice.
    std::vector<char> data;
    if (std::fseek(f, 0, SEEK_END) == 0) {
        const long end = std::ftell(f);
        if (end > 0 && std::fseek(f, 0, SEEK_SET) == 0) {
            data.resize(static_cast<std::size_t>(end));
            if (std::fread(data.data(), 1, data.size(), f) !=
                data.size())
                data.clear();
        }
    }
    std::fclose(f);
    if (data.empty())
        return false;

    Reader r(data.data(), data.size());
    char magic[4];
    std::uint32_t format = 0, engine = 0;
    std::string stored_key;
    if (!r.raw(magic, 4) || std::memcmp(magic, kMagic, 4) != 0)
        return false;
    if (!r.u32(format) || format != kFormatVersion)
        return false;
    if (!r.u32(engine) || engine != kEngineVersion)
        return false;
    if (!r.str(stored_key) || stored_key != key)
        return false; // fnv collision: treat as a miss

    // Verify the payload checksum before parsing a single field: a bit
    // flip inside series data is indistinguishable from a real value
    // once parsed, so the only safe place to catch it is here, where
    // it degrades to a miss instead of a wrong curve.
    std::uint64_t stored_sum = 0;
    if (!r.u64(stored_sum) ||
        stored_sum != checksum64(r.rest(), r.restSize()))
        return false;

    scenarios::ScenarioResult res;
    std::uint8_t violated = 0;
    const bool ok =
        r.str(res.scenario_id) && r.str(res.policy_label) &&
        r.u8(violated) && r.f64(res.violation_time_s) &&
        r.f64(res.worst_goal_metric) && r.f64(res.goal_value) &&
        r.f64(res.tradeoff) && r.f64(res.raw_tradeoff) &&
        r.f64(res.mean_conf) && r.u64(res.ops_simulated) &&
        r.u64(res.faults_injected);
    // Per-shard ops counters: u64 count then count u64 values.  The
    // count is bounded by the payload remainder before allocating.
    std::uint64_t shard_count = 0;
    bool shards_ok = ok && r.u64(shard_count) &&
                     shard_count <= r.restSize() / 8;
    if (shards_ok) {
        res.shard_ops.resize(static_cast<std::size_t>(shard_count));
        shards_ok = r.raw(res.shard_ops.data(), shard_count * 8);
    }
    if (!shards_ok || !r.series(res.perf_series) ||
        !r.series(res.conf_series) ||
        !r.series(res.tradeoff_series) || !r.atEnd())
        return false;
    res.violated = violated != 0;
    out = std::move(res);
    return true;
}

bool
DiskRunCache::store(const std::string &key,
                    const scenarios::ScenarioResult &result) const
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        return false;

    // Payload first, so its checksum can go into the header.
    Writer payload;
    payload.str(result.scenario_id);
    payload.str(result.policy_label);
    payload.u8(result.violated ? 1 : 0);
    payload.f64(result.violation_time_s);
    payload.f64(result.worst_goal_metric);
    payload.f64(result.goal_value);
    payload.f64(result.tradeoff);
    payload.f64(result.raw_tradeoff);
    payload.f64(result.mean_conf);
    payload.u64(result.ops_simulated);
    payload.u64(result.faults_injected);
    payload.u64(result.shard_ops.size());
    payload.raw(result.shard_ops.data(), result.shard_ops.size() * 8);
    payload.series(result.perf_series);
    payload.series(result.conf_series);
    payload.series(result.tradeoff_series);

    // Header in its own small buffer; the payload is written straight
    // from its buffer rather than copied in behind the header.
    Writer w;
    w.raw(kMagic, 4);
    w.u32(kFormatVersion);
    w.u32(kEngineVersion);
    w.str(key);
    w.u64(checksum64(payload.bytes().data(), payload.bytes().size()));

    // Atomic publish: write a private temp file, then rename into
    // place.  Readers either see the old entry or the complete new
    // one, never a prefix.
    const std::string path = entryPath(key);
    const std::string tmp =
        path + ".tmp." +
        std::to_string(static_cast<unsigned long>(::getpid()));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    const bool wrote =
        std::fwrite(w.bytes().data(), 1, w.bytes().size(), f) ==
            w.bytes().size() &&
        std::fwrite(payload.bytes().data(), 1, payload.bytes().size(),
                    f) == payload.bytes().size();
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed) {
        fs::remove(tmp, ec);
        return false;
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

} // namespace smartconf::exec
