#ifndef SMARTCONF_EXEC_THREAD_POOL_H_
#define SMARTCONF_EXEC_THREAD_POOL_H_

/**
 * @file
 * Work-stealing worker pool with pooled task handles.
 *
 * Experiment sweeps are embarrassingly parallel — every
 * (scenario, policy, seed) run owns its own simulator — but the old
 * locked-FIFO pool paid two heap allocations and a mutex round-trip per
 * task.  This pool keeps the same submission API and adds the
 * structure the sweep sizes ahead of us need:
 *
 *  - per-worker Chase-Lev deques (see steal_deque.h): a worker pushes
 *    follow-up work to its own deque lock-free and drains it LIFO;
 *    idle workers steal the oldest entries from victims round-robin;
 *  - a shared injector FIFO for external submitters, guarded by one
 *    mutex that also fronts the task-node free list — an external
 *    submit is one lock acquisition total;
 *  - pooled task nodes: the callable and a std::promise live in a
 *    fixed inline payload carved from a MonotonicArena and recycled
 *    through a free list, and the promise's shared state comes from a
 *    size-bucketed recycling pool — steady-state submission performs
 *    no global operator new at all, versus the
 *    make_shared<packaged_task> + std::function pair it replaces;
 *  - parallelFor(): bulk submission for index-addressed grids.  K
 *    chunk-runner tasks (K = worker count) claim indices from an
 *    atomic counter, so enqueueing an N-job sweep costs one lock
 *    acquisition and K pooled nodes, not N of each.  Results land at
 *    their own index — submission-order determinism by construction.
 *
 * Exceptions thrown by submitted callables propagate through the
 * returned future; parallelFor rethrows the lowest-index body
 * exception after every index has run.  The destructor drains all
 * outstanding work — including follow-up tasks submitted by running
 * tasks — before joining the workers.
 */

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/arena.h"
#include "exec/steal_deque.h"

namespace smartconf::exec {

namespace detail {

/**
 * Pooled task handle.  The type-erased payload (callable + promise, or
 * a parallelFor context pointer) lives inline; oversized payloads fall
 * back to a single heap box whose pointer occupies the first word.
 */
struct TaskNode
{
    static constexpr std::size_t kInlineBytes = 104;

    void (*invoke)(TaskNode *) noexcept = nullptr;
    TaskNode *next = nullptr; ///< injector FIFO / free-list link
    alignas(std::max_align_t) unsigned char storage[kInlineBytes];
};

/**
 * Process-wide recycler for promise shared states.  libstdc++'s
 * std::promise performs two heap allocations in its constructor (the
 * shared state and the result object); routing both through this pool
 * makes the steady-state submit() path free of global operator new.
 * Blocks are size-bucketed, recycled under one mutex, and immortal
 * (the backing singleton leaks deliberately: a future released from a
 * static destructor must still find the pool alive).
 */
class SharedStatePool
{
  public:
    static void *allocate(std::size_t bytes);
    static void deallocate(void *p, std::size_t bytes) noexcept;

    /** Largest pooled request; bigger ones fall through to new. */
    static constexpr std::size_t kMaxBytes = 512;
};

/** Minimal allocator over SharedStatePool for allocator-aware
 *  promises. */
template <typename T>
struct SharedStateAllocator
{
    using value_type = T;

    SharedStateAllocator() = default;
    template <typename U>
    SharedStateAllocator(const SharedStateAllocator<U> &) noexcept
    {}

    T *allocate(std::size_t n)
    {
        return static_cast<T *>(
            SharedStatePool::allocate(n * sizeof(T)));
    }
    void deallocate(T *p, std::size_t n) noexcept
    {
        SharedStatePool::deallocate(p, n * sizeof(T));
    }

    template <typename U>
    bool operator==(const SharedStateAllocator<U> &) const noexcept
    {
        return true;
    }
    template <typename U>
    bool operator!=(const SharedStateAllocator<U> &) const noexcept
    {
        return false;
    }
};

/**
 * Caller-stack state shared by one forkJoin's runners.
 *
 * Unlike ParallelForCtx there is no condition variable: the caller is
 * itself runner 0 and spin-joins on `helpers_done`, so the whole
 * fork/join costs one injector lock plus atomic claims — cheap enough
 * to issue once per simulation tick.  Indices are split into
 * cache-line-padded stripes; runner r starts at its home stripe
 * (r % stripes) and wrap-scans, so under contention each runner mostly
 * touches its own claim counter (the shard-affinity hint) while still
 * stealing leftover blocks from slow stripes.
 */
struct ForkJoinCtx
{
    static constexpr std::size_t kMaxStripes = 16;

    struct alignas(64) Stripe
    {
        std::atomic<std::size_t> next{0};
        std::size_t end = 0;
    };

    std::size_t n = 0;
    void *body = nullptr;
    void (*invoke_body)(void *, std::size_t) = nullptr;

    std::size_t stripes = 0;
    Stripe stripe[kMaxStripes];

    std::size_t helpers = 0;
    std::atomic<std::size_t> helpers_done{0};

    std::mutex mutex; ///< error capture only
    std::exception_ptr error;
    std::size_t error_index = static_cast<std::size_t>(-1);
};

/** Caller-stack state shared by one parallelFor's chunk runners. */
struct ParallelForCtx
{
    std::size_t n = 0;
    void *body = nullptr;
    void (*invoke_body)(void *, std::size_t) = nullptr;

    std::atomic<std::size_t> next{0}; ///< index claim counter
    std::size_t runners = 0;

    std::mutex mutex;
    std::condition_variable cv;
    std::size_t done = 0; ///< finished runners, guarded by mutex
    std::exception_ptr error;
    std::size_t error_index = static_cast<std::size_t>(-1);
};

} // namespace detail

/**
 * A fixed set of workers over per-worker steal deques plus a shared
 * injector queue.
 */
class ThreadPool
{
  public:
    struct Worker; ///< one shard: deque + arena (defined in the .cc)

    /** Spawn @p threads workers (at least one). */
    explicit ThreadPool(std::size_t threads);

    /** Drains outstanding tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /**
     * Enqueue @p fn for execution; the returned future yields its
     * result (or rethrows its exception).  Safe to call from any
     * thread; a pool worker pushes to its own deque (lock-free),
     * everyone else goes through the injector.
     */
    template <typename F>
    auto submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        using Fd = std::decay_t<F>;
        std::promise<R> promise(std::allocator_arg,
                                detail::SharedStateAllocator<R>{});
        std::future<R> result = promise.get_future();
        detail::TaskNode *node = acquireNode();
        constructPayload<Fd, R>(node, std::forward<F>(fn),
                                std::move(promise));
        enqueue(node);
        return result;
    }

    /**
     * Run body(i) for every i in [0, n), spread across the workers.
     * The caller blocks until all indices have executed; it does not
     * execute bodies itself, so results land exactly where a serial
     * loop would put them.  If any body throws, the exception with the
     * lowest index is rethrown here — after every index has still
     * run.  Must not be called from a pool worker (the blocked caller
     * would occupy the slot its own work needs).
     */
    template <typename Body>
    void parallelFor(std::size_t n, Body &&body)
    {
        if (n == 0)
            return;
        detail::ParallelForCtx ctx;
        ctx.n = n;
        ctx.body = const_cast<void *>(
            static_cast<const void *>(std::addressof(body)));
        ctx.invoke_body = [](void *b, std::size_t i) {
            (*static_cast<std::remove_reference_t<Body> *>(b))(i);
        };
        runParallelFor(ctx);
    }

    /**
     * Run body(i) for every i in [0, n) with the *caller participating*
     * as runner 0: up to size() helper tasks are injected and the
     * caller claims striped indices alongside them, then spin-joins
     * (no condition variable, no helper-side blocking — barrier-free on
     * the Chase-Lev deques).  This is the intra-run fan-out primitive:
     * a scenario tick forks its shard blocks here and continues the
     * moment the last block lands.  Safe to call from a worker of a
     * *different* pool (the sweep pool's workers fork into the shard
     * pool); like parallelFor it must not be called from this pool's
     * own workers.  The lowest-index body exception is rethrown after
     * every index has run.
     */
    template <typename Body>
    void forkJoin(std::size_t n, Body &&body)
    {
        if (n == 0)
            return;
        if (n == 1) {
            body(0); // nothing to fork; run inline, propagate directly
            return;
        }
        detail::ForkJoinCtx ctx;
        ctx.n = n;
        ctx.body = const_cast<void *>(
            static_cast<const void *>(std::addressof(body)));
        ctx.invoke_body = [](void *b, std::size_t i) {
            (*static_cast<std::remove_reference_t<Body> *>(b))(i);
        };
        runForkJoin(ctx);
    }

    /**
     * When the pool is idle, rewind the shared task-node arena's bump
     * pointer (dropping the free list with it) so cross-sweep reuse
     * recycles the same blocks.  No-op (returns false) while any task
     * is outstanding.
     */
    bool reclaim();

    /** Successful steals across all workers (monitoring). */
    std::uint64_t steals() const;

    /** Task-node arena growth events (allocation monitoring). */
    std::size_t nodeArenaBlocks() const;

    /**
     * Sensible worker count for this machine:
     * std::thread::hardware_concurrency(), or 1 when unknown.
     */
    static std::size_t defaultConcurrency();

  private:
    /** Inline payload: callable + promise executed on a worker. */
    template <typename Fd, typename R>
    struct Holder
    {
        Fd fn;
        std::promise<R> promise;
    };

    template <typename Fd, typename R>
    static void invokeInline(detail::TaskNode *node) noexcept
    {
        auto *h = std::launder(
            reinterpret_cast<Holder<Fd, R> *>(node->storage));
        runHolder(h);
        h->~Holder();
    }

    template <typename Fd, typename R>
    static void invokeBoxed(detail::TaskNode *node) noexcept
    {
        auto *h = *std::launder(reinterpret_cast<Holder<Fd, R> **>(
            node->storage));
        runHolder(h);
        delete h;
    }

    template <typename Fd, typename R>
    static void runHolder(Holder<Fd, R> *h) noexcept
    {
        try {
            if constexpr (std::is_void_v<R>) {
                h->fn();
                h->promise.set_value();
            } else {
                h->promise.set_value(h->fn());
            }
        } catch (...) {
            try {
                h->promise.set_exception(std::current_exception());
            } catch (...) {
                // promise already satisfied; nothing left to report
            }
        }
    }

    template <typename Fd, typename R>
    void constructPayload(detail::TaskNode *node, Fd &&fn,
                          std::promise<R> &&promise)
    {
        using H = Holder<std::decay_t<Fd>, R>;
        if constexpr (sizeof(H) <= detail::TaskNode::kInlineBytes &&
                      alignof(H) <= alignof(std::max_align_t)) {
            new (node->storage) H{std::forward<Fd>(fn),
                                  std::move(promise)};
            node->invoke = &invokeInline<std::decay_t<Fd>, R>;
        } else {
            auto *h =
                new H{std::forward<Fd>(fn), std::move(promise)};
            new (node->storage) (H *)(h);
            node->invoke = &invokeBoxed<std::decay_t<Fd>, R>;
        }
    }

    // Non-template internals (defined in thread_pool.cc).
    detail::TaskNode *acquireNode();
    void releaseNode(detail::TaskNode *node);
    void enqueue(detail::TaskNode *node);
    void runParallelFor(detail::ParallelForCtx &ctx);
    void runForkJoin(detail::ForkJoinCtx &ctx);
    static void forkJoinRun(detail::ForkJoinCtx *ctx,
                            std::size_t runner) noexcept;
    static void forkJoinInvoke(detail::TaskNode *node) noexcept;
    void notifySubmitted();
    void workerLoop(Worker &self);
    detail::TaskNode *findExternalWork(Worker &self);
    void runNode(detail::TaskNode *node);
    static void chunkRunnerInvoke(detail::TaskNode *node) noexcept;

    /** Injector lock: FIFO queue + node free list + shared arena. */
    std::mutex injector_mutex_;
    detail::TaskNode *injector_head_ = nullptr;
    detail::TaskNode *injector_tail_ = nullptr;
    detail::TaskNode *free_list_ = nullptr;
    MonotonicArena node_arena_;
    std::atomic<std::size_t> outstanding_{0}; ///< enqueued, not done

    /** Parking: epoch bumps on every submission; workers re-check
     *  queues after recording the epoch, so no wakeup is missed. */
    std::mutex park_mutex_;
    std::condition_variable park_cv_;
    std::uint64_t epoch_ = 0;
    bool stopping_ = false;

    std::vector<std::unique_ptr<Worker>> shards_;
    std::vector<std::thread> workers_;
};

} // namespace smartconf::exec

#endif // SMARTCONF_EXEC_THREAD_POOL_H_
