#ifndef SMARTCONF_EXEC_THREAD_POOL_H_
#define SMARTCONF_EXEC_THREAD_POOL_H_

/**
 * @file
 * Fixed-size worker pool with a futures-based submission API.
 *
 * Experiment sweeps are embarrassingly parallel — every
 * (scenario, policy, seed) run owns its own simulator — so the pool is
 * deliberately minimal: a locked FIFO of type-erased tasks drained by N
 * workers.  submit() returns a std::future for the callable's result;
 * exceptions thrown by the task propagate through the future to whoever
 * calls get().  Submission is thread-safe, so jobs may themselves
 * submit follow-up work.
 */

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace smartconf::exec {

/**
 * A fixed set of worker threads consuming a shared task queue.
 */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (at least one). */
    explicit ThreadPool(std::size_t threads);

    /** Drains outstanding tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /**
     * Enqueue @p fn for execution; the returned future yields its
     * result (or rethrows its exception).  Safe to call from any
     * thread, including pool workers.
     */
    template <typename F>
    auto submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> result = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            tasks_.push([task] { (*task)(); });
        }
        cv_.notify_one();
        return result;
    }

    /**
     * Sensible worker count for this machine:
     * std::thread::hardware_concurrency(), or 1 when unknown.
     */
    static std::size_t defaultConcurrency();

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable cv_;
    std::queue<std::function<void()>> tasks_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

} // namespace smartconf::exec

#endif // SMARTCONF_EXEC_THREAD_POOL_H_
