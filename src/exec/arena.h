#ifndef SMARTCONF_EXEC_ARENA_H_
#define SMARTCONF_EXEC_ARENA_H_

/**
 * @file
 * Monotonic bump allocator for executor-internal objects.
 *
 * The work-stealing pool recycles task handles and deque buffers across
 * sweeps.  Both have awkward lifetimes for free-list-per-object schemes:
 * retired Chase-Lev buffers must stay readable until every racing thief
 * has moved on, and task nodes churn by the thousand per sweep.  A
 * monotonic arena sidesteps both problems — allocation is a pointer
 * bump, nothing is ever freed individually, and when the owner knows the
 * structure is quiescent (between sweeps) reset() rewinds the bump
 * pointer over the same blocks instead of walking frees.
 *
 * Thread-safety: none.  Each arena is owned by one shard — a worker
 * thread for its deque buffers, or the pool's injector lock for the
 * shared task-node heap — and the owner serializes access.
 */

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace smartconf::exec {

/**
 * Chunked bump allocator.  Blocks are kept (and reused in order) across
 * reset(), so a steady-state consumer stops touching malloc entirely.
 */
class MonotonicArena
{
  public:
    static constexpr std::size_t kDefaultBlockBytes = 64 * 1024;

    explicit MonotonicArena(std::size_t block_bytes = kDefaultBlockBytes)
        : block_bytes_(block_bytes < 256 ? 256 : block_bytes)
    {}

    ~MonotonicArena()
    {
        Block *b = head_;
        while (b != nullptr) {
            Block *next = b->next;
            ::operator delete(static_cast<void *>(b));
            b = next;
        }
    }

    MonotonicArena(const MonotonicArena &) = delete;
    MonotonicArena &operator=(const MonotonicArena &) = delete;

    /**
     * Allocate @p bytes with @p align (a power of two).  Storage is
     * valid until the arena is destroyed; reset() recycles it, so the
     * caller must know the previous tenants are dead first.
     */
    void *allocate(std::size_t bytes,
                   std::size_t align = alignof(std::max_align_t))
    {
        for (;;) {
            if (current_ != nullptr) {
                const std::uintptr_t base =
                    reinterpret_cast<std::uintptr_t>(current_->data());
                const std::uintptr_t cursor =
                    (base + offset_ + (align - 1)) & ~(align - 1);
                const std::size_t new_offset = (cursor - base) + bytes;
                if (new_offset <= current_->capacity) {
                    offset_ = new_offset;
                    ++allocations_;
                    return reinterpret_cast<void *>(cursor);
                }
                if (current_->next != nullptr) {
                    // Post-reset reuse: advance into the next retained
                    // block instead of growing.
                    current_ = current_->next;
                    offset_ = 0;
                    continue;
                }
            }
            grow(bytes + align);
        }
    }

    /** Typed allocation helper (no construction). */
    template <typename T>
    T *allocateArray(std::size_t n)
    {
        return static_cast<T *>(allocate(sizeof(T) * n, alignof(T)));
    }

    /**
     * Rewind the bump pointer to the first block, keeping every block
     * for reuse.  All outstanding allocations become invalid — callers
     * only do this at quiescence (e.g. the pool between sweeps).
     */
    void reset()
    {
        current_ = head_;
        offset_ = 0;
        ++resets_;
    }

    /** Blocks ever malloc'd (growth events, not live allocations). */
    std::size_t blocksAllocated() const { return blocks_; }

    /** Total bytes reserved across all blocks. */
    std::size_t bytesReserved() const { return reserved_; }

    /** Successful allocate() calls since construction. */
    std::uint64_t allocations() const { return allocations_; }

    /** reset() calls since construction. */
    std::uint64_t resets() const { return resets_; }

  private:
    struct Block
    {
        Block *next;
        std::size_t capacity;

        unsigned char *data()
        {
            return reinterpret_cast<unsigned char *>(this + 1);
        }
    };

    void grow(std::size_t min_bytes)
    {
        const std::size_t cap =
            min_bytes > block_bytes_ ? min_bytes : block_bytes_;
        void *mem = ::operator new(sizeof(Block) + cap);
        Block *b = static_cast<Block *>(mem);
        b->next = nullptr;
        b->capacity = cap;
        if (current_ != nullptr)
            current_->next = b;
        else
            head_ = b;
        current_ = b;
        offset_ = 0;
        ++blocks_;
        reserved_ += cap;
    }

    Block *head_ = nullptr;    ///< first block, in allocation order
    Block *current_ = nullptr; ///< block the bump pointer lives in
    std::size_t offset_ = 0;   ///< bytes consumed in current_
    std::size_t block_bytes_;
    std::size_t blocks_ = 0;
    std::size_t reserved_ = 0;
    std::uint64_t allocations_ = 0;
    std::uint64_t resets_ = 0;
};

} // namespace smartconf::exec

#endif // SMARTCONF_EXEC_ARENA_H_
