#ifndef SMARTCONF_EXEC_SWEEP_H_
#define SMARTCONF_EXEC_SWEEP_H_

/**
 * @file
 * Parallel experiment sweeps.
 *
 * Every figure/table harness evaluates many independent
 * (scenario, policy, seed) runs; each run owns its own simulated clock,
 * event queue and RNG, so they parallelize trivially.  SweepRunner fans
 * jobs out over a ThreadPool, memoizes results in a RunCache so no
 * duplicate triple is ever simulated twice (within or across sweeps on
 * the same runner), and returns results in submission order regardless
 * of completion order — `--jobs 8` output is byte-identical to
 * `--jobs 1`.
 *
 * Isolation rule: a job never shares a Scenario instance with another
 * job.  The scenario-id and factory constructors build the scenario
 * *inside* the job, on the worker thread that runs it.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/run_cache.h"
#include "exec/thread_pool.h"
#include "scenarios/scenario.h"

namespace smartconf::exec {

/** One unit of sweep work producing a ScenarioResult. */
struct SweepJob
{
    /** The work; runs on a pool worker (or inline when serial). */
    std::function<scenarios::ScenarioResult()> fn;

    /** Memoization key; empty string disables caching for this job. */
    std::string cache_key;

    /**
     * Evaluate @p policy on the stock scenario @p id (as built by
     * makeScenario) under @p seed.  The scenario is constructed
     * per-job, so concurrent jobs share no simulator state.
     */
    static SweepJob forScenario(const std::string &id,
                                const scenarios::Policy &policy,
                                std::uint64_t seed);

    /**
     * Like forScenario for a non-default scenario variant: @p factory
     * is invoked inside the job to build a private instance.
     * @p scenario_key must uniquely name the variant (e.g.
     * "HB3813/fig7") — it is the scenario component of the cache key.
     */
    static SweepJob forFactory(
        const std::string &scenario_key,
        std::function<std::unique_ptr<scenarios::Scenario>()> factory,
        const scenarios::Policy &policy, std::uint64_t seed);

    /**
     * An arbitrary computation returning a ScenarioResult (e.g. the
     * Fig. 8 interacting-controller loop).  Cached under
     * @p cache_key unless it is empty.
     */
    static SweepJob
    custom(const std::string &cache_key,
           std::function<scenarios::ScenarioResult()> fn);
};

struct SweepOptions
{
    /** Worker threads; 0 = hardware concurrency; 1 = serial (no pool). */
    std::size_t jobs = 0;

    /** Memoize results across jobs and sweeps on this runner. */
    bool cache = true;

    /**
     * Root of a persistent cross-process result store (see
     * DiskRunCache); empty disables it.  Requires `cache`.
     */
    std::string disk_cache_dir;
};

/**
 * Fans SweepJobs out over a worker pool and collects results in
 * deterministic submission order.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts = {});

    /** Effective worker count (resolved from SweepOptions::jobs). */
    std::size_t jobs() const { return jobs_; }

    /**
     * Execute all @p jobs; results arrive in the same order as the
     * input vector.  A job's exception is rethrown from here after the
     * remaining jobs finish.
     */
    std::vector<scenarios::ScenarioResult>
    run(const std::vector<SweepJob> &jobs);

    /** Execute a single job (through the cache, inline). */
    scenarios::ScenarioResult runOne(const SweepJob &job);

    /** Wall-clock milliseconds spent inside the last run() call. */
    double lastWallMs() const { return last_wall_ms_; }

    const RunCache &cache() const { return cache_; }
    RunCache &cache() { return cache_; }

  private:
    scenarios::ScenarioResult execute(const SweepJob &job);

    std::size_t jobs_;
    bool use_cache_;
    RunCache cache_;
    std::unique_ptr<ThreadPool> pool_; // lazily built, reused
    double last_wall_ms_ = 0.0;
};

/** Command-line options shared by the sweep-style bench harnesses. */
struct SweepArgs
{
    SweepOptions sweep;
    bool json = false; ///< machine-readable output (--json)

    /**
     * Intra-run data-plane workers (--shard-workers N): how many
     * physical threads one run's tick fans its logical shards across
     * (sim::setShardWorkers).  Orthogonal to `sweep.jobs`, which
     * parallelizes *across* runs.  1 = serial data plane.
     */
    std::size_t shard_workers = 1;
};

/**
 * Parse `--jobs N` (also `--jobs=N`, `-j N`), `--shard-workers N`
 * (also `--shard-workers=N`), `--json`,
 * `--cache-dir PATH` (also `--cache-dir=PATH`) and `--no-disk-cache`
 * from a bench harness's argv; unknown arguments are ignored.  Exits
 * with a usage message on a malformed --jobs or --shard-workers value.
 *
 * @p default_cache_dir seeds SweepOptions::disk_cache_dir before the
 * flags are applied: harnesses that want the persistent store by
 * default (bench_sweep) pass ".smartconf-cache"; the default empty
 * string keeps disk caching opt-in.
 */
SweepArgs parseSweepArgs(int argc, char **argv,
                         const std::string &default_cache_dir = "");

} // namespace smartconf::exec

#endif // SMARTCONF_EXEC_SWEEP_H_
