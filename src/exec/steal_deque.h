#ifndef SMARTCONF_EXEC_STEAL_DEQUE_H_
#define SMARTCONF_EXEC_STEAL_DEQUE_H_

/**
 * @file
 * Chase-Lev work-stealing deque.
 *
 * The owning worker pushes and pops at the bottom (LIFO, cache-warm);
 * thieves take from the top (FIFO, oldest first).  The implementation
 * follows Chase & Lev (SPAA '05) as formulated with C11 atomics by
 * Lê et al. (PPoPP '13), with two deliberate deviations:
 *
 *  - standalone fences are replaced by seq_cst operations on top_ and
 *    bottom_.  ThreadSanitizer models atomic operations precisely but
 *    has historically been unsound around std::atomic_thread_fence;
 *    the seq_cst forms keep the executor stress tests tsan-clean and
 *    cost a few nanoseconds we cannot measure at sweep granularity;
 *  - retired buffers are never freed.  Buffers come from the owner
 *    shard's MonotonicArena, so a thief racing a grow() can keep
 *    reading the old buffer safely — its memory lives until the arena
 *    dies with the pool.  Each grow doubles capacity, so retired
 *    garbage is bounded by ~2x the peak buffer size.
 *
 * Elements are pointers (tasks are pooled nodes); cells are atomics so
 * the push/steal overlap on a recycled slot is a synchronized access,
 * not a data race.
 */

#include <atomic>
#include <cstdint>

#include "exec/arena.h"

namespace smartconf::exec {

/**
 * Single-owner / multi-thief deque of T*.
 */
template <typename T>
class StealDeque
{
  public:
    /**
     * @param arena   owner-shard arena; must outlive the deque.
     * @param initial initial capacity (rounded up to a power of two).
     */
    explicit StealDeque(MonotonicArena &arena,
                        std::int64_t initial = 64)
        : arena_(arena)
    {
        std::int64_t cap = 8;
        while (cap < initial)
            cap *= 2;
        buffer_.store(makeBuffer(cap), std::memory_order_relaxed);
    }

    StealDeque(const StealDeque &) = delete;
    StealDeque &operator=(const StealDeque &) = delete;

    /** Owner-only: push one item at the bottom. */
    void push(T *item)
    {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed);
        const std::int64_t t = top_.load(std::memory_order_acquire);
        Buffer *buf = buffer_.load(std::memory_order_relaxed);
        if (b - t > buf->capacity - 1)
            buf = grow(buf, t, b);
        buf->cells[b & buf->mask].store(item,
                                        std::memory_order_relaxed);
        // Publishes the cell to thieves that acquire-load bottom_.
        bottom_.store(b + 1, std::memory_order_release);
    }

    /** Owner-only: pop the most recently pushed item, or nullptr. */
    T *pop()
    {
        const std::int64_t b =
            bottom_.load(std::memory_order_relaxed) - 1;
        Buffer *buf = buffer_.load(std::memory_order_relaxed);
        bottom_.store(b, std::memory_order_seq_cst);
        std::int64_t t = top_.load(std::memory_order_seq_cst);
        T *item = nullptr;
        if (t <= b) {
            item = buf->cells[b & buf->mask].load(
                std::memory_order_relaxed);
            if (t == b) {
                // Last element: race the thieves for it.
                if (!top_.compare_exchange_strong(
                        t, t + 1, std::memory_order_seq_cst,
                        std::memory_order_relaxed))
                    item = nullptr; // a thief won
                bottom_.store(b + 1, std::memory_order_relaxed);
            }
        } else {
            bottom_.store(b + 1, std::memory_order_relaxed);
        }
        return item;
    }

    /**
     * Any thread: take the oldest item, or nullptr when the deque is
     * empty or the take lost a race (callers just move on to the next
     * victim; spurious nullptr is part of the protocol).
     */
    T *steal()
    {
        std::int64_t t = top_.load(std::memory_order_seq_cst);
        const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
        if (t >= b)
            return nullptr;
        Buffer *buf = buffer_.load(std::memory_order_acquire);
        T *item = buf->cells[t & buf->mask].load(
            std::memory_order_relaxed);
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed))
            return nullptr; // owner or another thief won
        return item;
    }

    /** Racy size estimate (monitoring only). */
    std::int64_t sizeApprox() const
    {
        const std::int64_t b = bottom_.load(std::memory_order_acquire);
        const std::int64_t t = top_.load(std::memory_order_acquire);
        return b > t ? b - t : 0;
    }

    /** Current capacity (owner view). */
    std::int64_t capacity() const
    {
        return buffer_.load(std::memory_order_relaxed)->capacity;
    }

  private:
    struct Buffer
    {
        std::int64_t capacity;
        std::int64_t mask;
        std::atomic<T *> *cells;
    };

    Buffer *makeBuffer(std::int64_t cap)
    {
        void *mem = arena_.allocate(sizeof(Buffer), alignof(Buffer));
        Buffer *buf = static_cast<Buffer *>(mem);
        buf->capacity = cap;
        buf->mask = cap - 1;
        buf->cells = static_cast<std::atomic<T *> *>(arena_.allocate(
            sizeof(std::atomic<T *>) * static_cast<std::size_t>(cap),
            alignof(std::atomic<T *>)));
        for (std::int64_t i = 0; i < cap; ++i)
            new (&buf->cells[i]) std::atomic<T *>(nullptr);
        return buf;
    }

    /** Owner-only: double capacity, copying live logical indices. */
    Buffer *grow(Buffer *old, std::int64_t t, std::int64_t b)
    {
        Buffer *buf = makeBuffer(old->capacity * 2);
        for (std::int64_t i = t; i < b; ++i)
            buf->cells[i & buf->mask].store(
                old->cells[i & old->mask].load(
                    std::memory_order_relaxed),
                std::memory_order_relaxed);
        // Thieves acquire-load buffer_; the old one stays readable in
        // the arena for any thief still holding it.
        buffer_.store(buf, std::memory_order_release);
        return buf;
    }

    std::atomic<std::int64_t> top_{0};
    std::atomic<std::int64_t> bottom_{0};
    std::atomic<Buffer *> buffer_{nullptr};
    MonotonicArena &arena_;
};

} // namespace smartconf::exec

#endif // SMARTCONF_EXEC_STEAL_DEQUE_H_
