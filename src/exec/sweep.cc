#include "exec/sweep.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <stdexcept>
#include <utility>

namespace smartconf::exec {

SweepJob
SweepJob::forScenario(const std::string &id,
                      const scenarios::Policy &policy,
                      std::uint64_t seed)
{
    SweepJob job;
    job.cache_key = RunCache::key(id, policy, seed);
    job.fn = [id, policy, seed] {
        std::unique_ptr<scenarios::Scenario> s =
            scenarios::makeScenario(id);
        if (!s)
            throw std::invalid_argument("unknown scenario id: " + id);
        return s->run(policy, seed);
    };
    return job;
}

SweepJob
SweepJob::forFactory(
    const std::string &scenario_key,
    std::function<std::unique_ptr<scenarios::Scenario>()> factory,
    const scenarios::Policy &policy, std::uint64_t seed)
{
    SweepJob job;
    job.cache_key = RunCache::key(scenario_key, policy, seed);
    job.fn = [factory = std::move(factory), policy, seed] {
        std::unique_ptr<scenarios::Scenario> s = factory();
        if (!s)
            throw std::invalid_argument(
                "scenario factory returned nullptr");
        return s->run(policy, seed);
    };
    return job;
}

SweepJob
SweepJob::custom(const std::string &cache_key,
                 std::function<scenarios::ScenarioResult()> fn)
{
    SweepJob job;
    job.cache_key = cache_key;
    job.fn = std::move(fn);
    return job;
}

SweepRunner::SweepRunner(SweepOptions opts)
    : jobs_(opts.jobs == 0 ? ThreadPool::defaultConcurrency()
                           : opts.jobs),
      use_cache_(opts.cache)
{
    if (use_cache_ && !opts.disk_cache_dir.empty())
        cache_.attachDiskCache(opts.disk_cache_dir);
}

scenarios::ScenarioResult
SweepRunner::execute(const SweepJob &job)
{
    if (use_cache_ && !job.cache_key.empty())
        return cache_.getOrRun(job.cache_key, job.fn);
    return job.fn();
}

scenarios::ScenarioResult
SweepRunner::runOne(const SweepJob &job)
{
    return execute(job);
}

std::vector<scenarios::ScenarioResult>
SweepRunner::run(const std::vector<SweepJob> &jobs)
{
    const auto start = std::chrono::steady_clock::now();
    std::vector<scenarios::ScenarioResult> results;
    results.reserve(jobs.size());

    if (jobs_ <= 1) {
        // Serial path: no pool, no locks on the hot path beyond the
        // cache's own — behaviourally identical to the pre-exec code.
        for (const SweepJob &job : jobs)
            results.push_back(execute(job));
    } else {
        if (!pool_)
            pool_ = std::make_unique<ThreadPool>(jobs_);
        // Bulk submission: the whole grid goes through one
        // parallelFor (one injector lock, K pooled chunk runners) and
        // every result is written at its own index — submission-order
        // determinism by construction rather than by future
        // collection.  On a body exception parallelFor still runs
        // every index, then rethrows the lowest-index error; failed
        // slots keep their default-constructed results, matching the
        // old futures path.
        results.resize(jobs.size());
        pool_->parallelFor(jobs.size(), [&](std::size_t i) {
            results[i] = execute(jobs[i]);
        });
        // Quiescent between sweeps: recycle the task-node arena.
        pool_->reclaim();
    }

    // Publish buffered disk-cache entries before the clock stops: the
    // next process's warm start depends on the segments being sealed,
    // so the seal cost belongs to this sweep's wall time.
    cache_.flushDisk();

    last_wall_ms_ =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    return results;
}

SweepArgs
parseSweepArgs(int argc, char **argv,
               const std::string &default_cache_dir)
{
    SweepArgs args;
    args.sweep.disk_cache_dir = default_cache_dir;
    auto parseJobs = [&](const char *text) {
        char *end = nullptr;
        const long v = std::strtol(text, &end, 10);
        if (end == text || *end != '\0' || v < 1) {
            std::fprintf(stderr,
                         "invalid --jobs value '%s' (want an integer "
                         ">= 1)\n",
                         text);
            std::exit(2);
        }
        args.sweep.jobs = static_cast<std::size_t>(v);
    };
    auto parseShardWorkers = [&](const char *text) {
        char *end = nullptr;
        const long v = std::strtol(text, &end, 10);
        if (end == text || *end != '\0' || v < 1) {
            std::fprintf(stderr,
                         "invalid --shard-workers value '%s' (want an "
                         "integer >= 1)\n",
                         text);
            std::exit(2);
        }
        args.shard_workers = static_cast<std::size_t>(v);
    };
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--json") == 0) {
            args.json = true;
        } else if (std::strcmp(a, "--jobs") == 0 ||
                   std::strcmp(a, "-j") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", a);
                std::exit(2);
            }
            parseJobs(argv[++i]);
        } else if (std::strncmp(a, "--jobs=", 7) == 0) {
            parseJobs(a + 7);
        } else if (std::strcmp(a, "--shard-workers") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", a);
                std::exit(2);
            }
            parseShardWorkers(argv[++i]);
        } else if (std::strncmp(a, "--shard-workers=", 16) == 0) {
            parseShardWorkers(a + 16);
        } else if (std::strcmp(a, "--cache-dir") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", a);
                std::exit(2);
            }
            args.sweep.disk_cache_dir = argv[++i];
        } else if (std::strncmp(a, "--cache-dir=", 12) == 0) {
            args.sweep.disk_cache_dir = a + 12;
        } else if (std::strcmp(a, "--no-disk-cache") == 0) {
            args.sweep.disk_cache_dir.clear();
        }
    }
    return args;
}

} // namespace smartconf::exec
