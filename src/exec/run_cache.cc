#include "exec/run_cache.h"

#include <utility>

#include "exec/disk_cache.h"

namespace smartconf::exec {

scenarios::ScenarioResult
RunCache::getOrRun(const std::string &key, const RunFn &fn)
{
    std::shared_future<scenarios::ScenarioResult> future;
    std::promise<scenarios::ScenarioResult> promise;
    bool owner = false;
    std::shared_ptr<DiskRunCache> disk;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++stats_.hits;
            future = it->second;
        } else {
            ++stats_.misses;
            owner = true;
            future = promise.get_future().share();
            entries_.emplace(key, future);
            disk = disk_;
        }
    }
    if (owner) {
        // Owner path, outside the lock: disk probe, then (on a disk
        // miss) the simulation itself.  Waiters block on the future
        // either way, so the in-flight dedup also covers disk loads.
        try {
            scenarios::ScenarioResult result;
            if (disk && disk->load(key, result)) {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.disk_hits;
            } else {
                result = fn();
                if (disk && disk->store(key, result)) {
                    std::lock_guard<std::mutex> lock(mutex_);
                    ++stats_.disk_stores;
                }
            }
            promise.set_value(std::move(result));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

void
RunCache::attachDiskCache(const std::string &dir)
{
    std::lock_guard<std::mutex> lock(mutex_);
    disk_ = dir.empty() ? nullptr
                        : std::make_shared<DiskRunCache>(dir);
}

void
RunCache::flushDisk()
{
    std::shared_ptr<DiskRunCache> disk;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        disk = disk_;
    }
    if (disk)
        disk->flush();
}

bool
RunCache::contains(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.find(key) != entries_.end();
}

RunCache::Stats
RunCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t
RunCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void
RunCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    stats_ = Stats{};
}

std::string
RunCache::key(const std::string &scenario_key,
              const scenarios::Policy &policy, std::uint64_t seed)
{
    return scenario_key + "|" + policy.cacheKey() + "|s=" +
           std::to_string(seed);
}

} // namespace smartconf::exec
