#ifndef SMARTCONF_EXEC_DISK_CACHE_H_
#define SMARTCONF_EXEC_DISK_CACHE_H_

/**
 * @file
 * Persistent, versioned on-disk store for ScenarioResult.
 *
 * The in-memory RunCache dies with the process, so every fresh bench
 * or CI invocation re-simulates the full sweep even though simulations
 * are pure functions of (scenario, policy, seed).  DiskRunCache spills
 * each computed result to one binary file and loads it back in any
 * later process, turning the second invocation of `bench_sweep` into a
 * file-read replay.
 *
 * Layout: `<root>/v<format>-e<engine>/<fnv1a64(key)>.bin`.  The
 * directory name carries both version knobs, so bumping either one
 * orphans old entries wholesale instead of mixing incompatible files:
 *
 *  - kFormatVersion changes when the serialized byte layout changes;
 *  - kEngineVersion changes when the *simulation* changes — any edit
 *    that alters scenario outputs must bump it, or stale results would
 *    replay as fresh ones.
 *
 * Each file additionally stores the full (uncompressed) cache key and
 * is validated against it on load, so an fnv collision degrades to a
 * miss, never to a wrong result.  The header also carries an FNV-1a
 * checksum of the payload bytes, verified before any field is parsed:
 * a bit flip anywhere in the payload — including inside series data,
 * where every double is a "valid" value — degrades to a miss instead
 * of replaying a silently wrong curve.
 *
 * Writes are atomic (temp file + rename) and best-effort: an unwritable
 * cache directory silently degrades to "no disk cache" rather than
 * failing the run.  Concurrent processes may race on the same entry;
 * both compute the same pure result and the rename is atomic, so the
 * last writer wins with identical bytes.
 */

#include <cstddef>
#include <cstdint>
#include <string>

#include "scenarios/scenario.h"

namespace smartconf::exec {

/** One-file-per-entry persistent result store. */
class DiskRunCache
{
  public:
    /**
     * Bump when the serialized byte layout changes.
     *
     * History: 1 = PR1 layout, 2 = payload checksum in the header +
     * faults_injected field, 3 = word-at-a-time payload checksum,
     * 4 = four-lane interleaved kernel checksum (sim/kernels.h),
     * 5 = per-shard ops counters (shard_ops vector after
     *     faults_injected).
     */
    static constexpr std::uint32_t kFormatVersion = 5;

    /**
     * Bump when simulation outputs change (new scenario mechanics,
     * RNG stream changes, new ScenarioResult fields with meaning).
     *
     * History: 1 = PR1 runner, 2 = event-engine rewrite,
     * 3 = alias-table sampler + ops_simulated tracking,
     * 4 = YCSB struct-of-arrays draw order (coins/keys/sizes batched
     *     per tick instead of interleaved per op),
     * 5 = sharded data plane (jump-derived shard-local RNG streams in
     *     the workload generators and MapReduce workers).
     */
    static constexpr std::uint32_t kEngineVersion = 5;

    /**
     * Open (creating if needed) the store rooted at @p root.  The
     * versioned subdirectory is created lazily on first store().
     */
    explicit DiskRunCache(std::string root);

    /**
     * Load the entry for @p key into @p out.
     * @return true on a hit; false on miss, version skew, torn file or
     *         key collision (all indistinguishable by design).
     */
    bool load(const std::string &key,
              scenarios::ScenarioResult &out) const;

    /**
     * Persist @p result under @p key (atomic rename; best-effort —
     * IO failure leaves the store unchanged and is not reported).
     * @return true when the entry was written.
     */
    bool store(const std::string &key,
               const scenarios::ScenarioResult &result) const;

    /** Versioned directory entries live in (for tests/diagnostics). */
    const std::string &dir() const { return dir_; }

    /** FNV-1a 64-bit hash (entry naming; exposed for tests). */
    static std::uint64_t fnv1a(const std::string &s);

    /** FNV-1a over raw bytes. */
    static std::uint64_t fnv1a(const void *data, std::size_t len);

    /**
     * Payload checksum: the kernel layer's four-lane interleaved
     * FNV-1a-style hash (sim/kernels::checksum) — bit-identical across
     * SIMD dispatch levels, vectorized where the host allows.  Detects
     * any bit flip like the byte-wise hash; the interleaving breaks
     * the word-serial multiply chain that bounded both store and load
     * verification.  Checksum values differ from format v3, hence the
     * format bump.
     */
    static std::uint64_t checksum64(const void *data, std::size_t len);

  private:
    std::string entryPath(const std::string &key) const;

    std::string dir_; ///< <root>/v<format>-e<engine>
};

} // namespace smartconf::exec

#endif // SMARTCONF_EXEC_DISK_CACHE_H_
