#ifndef SMARTCONF_EXEC_DISK_CACHE_H_
#define SMARTCONF_EXEC_DISK_CACHE_H_

/**
 * @file
 * Persistent, versioned on-disk store for ScenarioResult.
 *
 * The in-memory RunCache dies with the process, so every fresh bench
 * or CI invocation re-simulates the full sweep even though simulations
 * are pure functions of (scenario, policy, seed).  DiskRunCache
 * persists computed results and loads them back in any later process,
 * turning the second invocation of `bench_sweep` into a replay.
 *
 * Since format v6 this class is a thin adapter over the sharded
 * segment store (src/store/): results are serialized to the same
 * payload byte layout as v5, then handed to store::SegmentStore, which
 * batches them into per-shard append-only segment files with a sorted
 * index block — a 50k-entry cache is dozens of files, a lookup is one
 * in-memory binary search plus one pread, and `smartconfctl` can
 * answer range queries over the index without simulating anything.
 *
 * Versioning discipline is unchanged: entries live under
 * `<root>/v<format>-e<engine>`, so bumping either knob orphans old
 * entries wholesale instead of mixing incompatible bytes:
 *
 *  - kFormatVersion changes when the on-disk layout changes;
 *  - kEngineVersion changes when the *simulation* changes — any edit
 *    that alters scenario outputs must bump it, or stale results would
 *    replay as fresh ones.
 *
 * A v5 one-file-per-entry layout for the *same* engine version found
 * next to the store is migrated on construction: every entry whose
 * header and payload checksum still verify is re-stored verbatim
 * (payload bytes and checksum are byte-compatible); damaged or
 * mismatched files are orphaned and counted.  v5 layouts for other
 * engine versions are left untouched — their results are stale by
 * definition.
 *
 * Safety properties carried over from v5, now enforced by the store:
 * the full uncompressed key is stored and compared on load (hash
 * collision -> miss), every payload carries a checksum verified before
 * parsing (bit flip -> miss, never a wrong curve), and all publishes
 * are atomic renames.  An unwritable cache directory degrades to
 * "no disk cache" rather than failing the run.
 */

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "scenarios/scenario.h"
#include "store/segment_store.h"

namespace smartconf::exec {

/** Persistent result store backed by store::SegmentStore. */
class DiskRunCache
{
  public:
    /**
     * Bump when the serialized byte layout changes.
     *
     * History: 1 = PR1 layout, 2 = payload checksum in the header +
     * faults_injected field, 3 = word-at-a-time payload checksum,
     * 4 = four-lane interleaved kernel checksum (sim/kernels.h),
     * 5 = per-shard ops counters (shard_ops vector after
     *     faults_injected),
     * 6 = sharded segment store (append-only segments + index blocks
     *     replace one file per entry; payload bytes unchanged from 5).
     */
    static constexpr std::uint32_t kFormatVersion = 6;

    /** The last one-file-per-entry format (migration source). */
    static constexpr std::uint32_t kLegacyFormatVersion = 5;

    /**
     * Bump when simulation outputs change (new scenario mechanics,
     * RNG stream changes, new ScenarioResult fields with meaning).
     *
     * History: 1 = PR1 runner, 2 = event-engine rewrite,
     * 3 = alias-table sampler + ops_simulated tracking,
     * 4 = YCSB struct-of-arrays draw order (coins/keys/sizes batched
     *     per tick instead of interleaved per op),
     * 5 = sharded data plane (jump-derived shard-local RNG streams in
     *     the workload generators and MapReduce workers).
     */
    static constexpr std::uint32_t kEngineVersion = 5;

    /**
     * Open (creating if needed) the store rooted at @p root.  Nothing
     * is written until the first store()/flush().  A v5 layout for the
     * current engine found under @p root is migrated immediately.
     */
    explicit DiskRunCache(std::string root);

    /** Same, with explicit store tuning (tests, bench harnesses). */
    DiskRunCache(std::string root, store::SegmentStore::Options opts);

    ~DiskRunCache(); ///< flushes buffered entries

    DiskRunCache(const DiskRunCache &) = delete;
    DiskRunCache &operator=(const DiskRunCache &) = delete;

    /**
     * Load the entry for @p key into @p out.
     * @return true on a hit; false on miss, version skew, torn or
     *         bit-flipped data, or key collision (all
     *         indistinguishable by design).
     */
    bool load(const std::string &key, scenarios::ScenarioResult &out);

    /**
     * Persist @p result under @p key (buffered; published in batches
     * as append-only segments, each by one atomic rename).
     * Best-effort: an unwritable root degrades to cache-off.
     * @return true when the entry was accepted.
     */
    bool store(const std::string &key,
               const scenarios::ScenarioResult &result);

    /** Publish all buffered entries as sealed segments now. */
    bool flush();

    /** Versioned directory entries live in (for tests/diagnostics). */
    const std::string &dir() const { return dir_; }

    /** The versioned directory for a root (current format/engine). */
    static std::string versionDir(const std::string &root);

    /** The v5 one-file-per-entry directory for a root. */
    static std::string legacyDir(const std::string &root);

    /** The backing segment store (queries, verify, compaction). */
    store::SegmentStore &segmentStore() { return *store_; }

    /** Store IO counters (reads, read bytes, segments opened, ...). */
    store::StoreStats ioStats() const { return store_->stats(); }

    /** v5 entries re-stored by the constructor's migration pass. */
    std::uint64_t migratedEntries() const { return migrated_; }

    /** v5 files skipped as damaged/mismatched during migration. */
    std::uint64_t orphanedEntries() const { return orphaned_; }

    /**
     * Serialize @p result to the payload byte layout (format 5/6 —
     * identical).  Exposed for tests and synthetic store fillers.
     */
    static std::vector<char>
    serializeResult(const scenarios::ScenarioResult &result);

    /** Parse a payload produced by serializeResult. @return validity. */
    static bool parseResult(const char *data, std::size_t len,
                            scenarios::ScenarioResult &out);

    /** FNV-1a 64-bit hash (key hashing; exposed for tests). */
    static std::uint64_t fnv1a(const std::string &s);

    /** FNV-1a over raw bytes. */
    static std::uint64_t fnv1a(const void *data, std::size_t len);

    /**
     * Payload checksum: the kernel layer's four-lane interleaved
     * FNV-1a-style hash (sim/kernels::checksum) — bit-identical across
     * SIMD dispatch levels, vectorized where the host allows.  The
     * same function checks segment headers and index blocks.
     */
    static std::uint64_t checksum64(const void *data, std::size_t len);

  private:
    bool usable(); ///< lazily create dir_; sticky cache-off on failure
    void migrateLegacy(const std::string &root);

    std::string dir_; ///< <root>/v<format>-e<engine>
    std::unique_ptr<store::SegmentStore> store_;

    std::mutex mu_; ///< guards the lazy usability probe
    bool checked_ = false;
    bool cache_off_ = false;

    std::uint64_t migrated_ = 0;
    std::uint64_t orphaned_ = 0;
};

} // namespace smartconf::exec

#endif // SMARTCONF_EXEC_DISK_CACHE_H_
