#ifndef SMARTCONF_EXEC_RUN_CACHE_H_
#define SMARTCONF_EXEC_RUN_CACHE_H_

/**
 * @file
 * Memoization of scenario evaluation runs.
 *
 * The figure harnesses re-run identical (scenario, policy, seed)
 * triples — Fig. 5's exhaustive feasibility search alone replays its
 * winning candidate for the display row, and every harness shares
 * search seeds.  Simulations are pure functions of that triple, so the
 * cache returns the stored ScenarioResult instead of re-simulating.
 *
 * Concurrency: the cache stores a shared_future per key and registers
 * it *before* running the job, so when two pool workers race on the
 * same key exactly one simulates and the other blocks on the future —
 * duplicate work is eliminated, not merely deduplicated after the
 * fact.  Hit/miss counters are exposed so tests and benches can verify
 * that no duplicate simulation ever executed.
 */

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "scenarios/scenario.h"

namespace smartconf::exec {

class DiskRunCache;

/**
 * Thread-safe memo table for ScenarioResult, keyed by an opaque string
 * (see key()).
 */
class RunCache
{
  public:
    struct Stats
    {
        std::uint64_t hits = 0;   ///< served from the table (or joined
                                  ///< an in-flight computation)
        std::uint64_t misses = 0; ///< not in the table (loaded from
                                  ///< disk or actually simulated)
        std::uint64_t disk_hits = 0;   ///< misses served by disk load
        std::uint64_t disk_stores = 0; ///< fresh results spilled to disk
    };

    using RunFn = std::function<scenarios::ScenarioResult()>;

    /**
     * Return the cached result for @p key, running @p fn to produce it
     * on first use.  Concurrent callers with the same key block until
     * the single in-flight run finishes.  An exception thrown by @p fn
     * is stored and rethrown to every caller of that key.
     */
    scenarios::ScenarioResult getOrRun(const std::string &key,
                                       const RunFn &fn);

    /** True when @p key already has a (possibly in-flight) entry. */
    bool contains(const std::string &key) const;

    /**
     * Attach a persistent second level rooted at @p dir (see
     * DiskRunCache).  From then on a miss first tries a disk load, and
     * every freshly simulated result is spilled to disk — so the next
     * *process* starts warm.  Pass an empty dir to detach.
     */
    void attachDiskCache(const std::string &dir);

    /** The attached disk store, or nullptr. */
    const DiskRunCache *diskCache() const { return disk_.get(); }
    DiskRunCache *diskCache() { return disk_.get(); }

    /**
     * Publish the disk store's buffered entries now (the segment store
     * batches writes).  Harnesses call this at end-of-sweep so a
     * following process starts warm; detached = no-op.
     */
    void flushDisk();

    Stats stats() const;
    std::size_t size() const;
    void clear();

    /**
     * Canonical cache key for an evaluation run.  @p scenario_key is
     * the scenario id, plus any variant suffix when the harness
     * constructs the scenario with non-default options (e.g.
     * "HB3813/fig7").  The policy contributes Policy::cacheKey(), which
     * distinguishes kind, value, pole_override and label.
     */
    static std::string key(const std::string &scenario_key,
                           const scenarios::Policy &policy,
                           std::uint64_t seed);

  private:
    mutable std::mutex mutex_;
    std::unordered_map<std::string,
                       std::shared_future<scenarios::ScenarioResult>>
        entries_;
    Stats stats_;
    std::shared_ptr<DiskRunCache> disk_; ///< optional second level
};

} // namespace smartconf::exec

#endif // SMARTCONF_EXEC_RUN_CACHE_H_
