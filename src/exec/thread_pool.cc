#include "exec/thread_pool.h"

#include <algorithm>

namespace smartconf::exec {

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t n = std::max<std::size_t>(threads, 1);
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stopping_ || !tasks_.empty(); });
            if (tasks_.empty())
                return; // stopping_ and nothing left to drain
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task(); // packaged_task captures exceptions into the future
    }
}

std::size_t
ThreadPool::defaultConcurrency()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

} // namespace smartconf::exec
