#include "exec/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace smartconf::exec {

using detail::ParallelForCtx;
using detail::TaskNode;

/**
 * One worker shard: the thread's deque plus the arena its buffers are
 * carved from.  The shard outlives the thread (the pool owns it), so a
 * thief can keep reading a victim's retired buffers during shutdown.
 */
struct ThreadPool::Worker
{
    explicit Worker(ThreadPool *p, std::size_t i)
        : pool(p), index(i), deque(arena, /*initial=*/128)
    {}

    ThreadPool *pool;
    std::size_t index;
    MonotonicArena arena; ///< deque buffers; owner-thread allocations
    StealDeque<TaskNode> deque;
    std::atomic<std::uint64_t> steals{0};
};

namespace {

/** The shard this thread drives, when it is a pool worker. */
thread_local ThreadPool::Worker *tl_worker = nullptr;

} // namespace

namespace detail {

namespace {

/** Size-bucketed free lists backing SharedStatePool.  Leaked on
 *  purpose: futures released from static destructors must still be
 *  able to return their shared state. */
struct StatePoolImpl
{
    static constexpr std::size_t kGranule = 16;
    static constexpr std::size_t kClasses =
        SharedStatePool::kMaxBytes / kGranule;

    std::mutex mutex;
    void *free[kClasses] = {};
    MonotonicArena arena; ///< never reset; blocks live forever

    static StatePoolImpl &instance()
    {
        static StatePoolImpl *impl = new StatePoolImpl;
        return *impl;
    }
};

} // namespace

void *
SharedStatePool::allocate(std::size_t bytes)
{
    if (bytes == 0 || bytes > kMaxBytes)
        return ::operator new(bytes);
    const std::size_t cls =
        (bytes + StatePoolImpl::kGranule - 1) /
            StatePoolImpl::kGranule -
        1;
    StatePoolImpl &impl = StatePoolImpl::instance();
    std::lock_guard<std::mutex> lock(impl.mutex);
    if (void *p = impl.free[cls]) {
        impl.free[cls] = *static_cast<void **>(p);
        return p;
    }
    return impl.arena.allocate((cls + 1) * StatePoolImpl::kGranule,
                               alignof(std::max_align_t));
}

void
SharedStatePool::deallocate(void *p, std::size_t bytes) noexcept
{
    if (p == nullptr)
        return;
    if (bytes == 0 || bytes > kMaxBytes) {
        ::operator delete(p);
        return;
    }
    const std::size_t cls =
        (bytes + StatePoolImpl::kGranule - 1) /
            StatePoolImpl::kGranule -
        1;
    StatePoolImpl &impl = StatePoolImpl::instance();
    std::lock_guard<std::mutex> lock(impl.mutex);
    *static_cast<void **>(p) = impl.free[cls];
    impl.free[cls] = p;
}

} // namespace detail

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t n = std::max<std::size_t>(threads, 1);
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        shards_.push_back(std::make_unique<Worker>(this, i));
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers_.emplace_back(
            [this, i] { workerLoop(*shards_[i]); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(park_mutex_);
        stopping_ = true;
        ++epoch_;
    }
    park_cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
    // Nodes and deque buffers die with their arenas; payloads were
    // destroyed when each task ran (the drain guarantees they all did).
}

TaskNode *
ThreadPool::acquireNode()
{
    std::lock_guard<std::mutex> lock(injector_mutex_);
    if (free_list_ != nullptr) {
        TaskNode *node = free_list_;
        free_list_ = node->next;
        node->next = nullptr;
        return node;
    }
    void *mem = node_arena_.allocate(sizeof(TaskNode), alignof(TaskNode));
    return new (mem) TaskNode();
}

void
ThreadPool::releaseNode(TaskNode *node)
{
    node->invoke = nullptr;
    {
        std::lock_guard<std::mutex> lock(injector_mutex_);
        node->next = free_list_;
        free_list_ = node;
    }
    outstanding_.fetch_sub(1, std::memory_order_release);
}

void
ThreadPool::notifySubmitted()
{
    {
        std::lock_guard<std::mutex> lock(park_mutex_);
        ++epoch_;
    }
    park_cv_.notify_one();
}

void
ThreadPool::enqueue(TaskNode *node)
{
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    Worker *self = tl_worker;
    if (self != nullptr && self->pool == this) {
        // Worker-local fast path: lock-free push to our own deque.
        self->deque.push(node);
    } else {
        std::lock_guard<std::mutex> lock(injector_mutex_);
        node->next = nullptr;
        if (injector_tail_ != nullptr)
            injector_tail_->next = node;
        else
            injector_head_ = node;
        injector_tail_ = node;
    }
    notifySubmitted();
}

bool
ThreadPool::reclaim()
{
    std::lock_guard<std::mutex> lock(injector_mutex_);
    if (outstanding_.load(std::memory_order_acquire) != 0)
        return false;
    free_list_ = nullptr;
    node_arena_.reset();
    return true;
}

std::uint64_t
ThreadPool::steals() const
{
    std::uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard->steals.load(std::memory_order_relaxed);
    return total;
}

std::size_t
ThreadPool::nodeArenaBlocks() const
{
    return node_arena_.blocksAllocated();
}

void
ThreadPool::runNode(TaskNode *node)
{
    node->invoke(node); // runs the payload and destroys it
    releaseNode(node);
}

/**
 * Injector pop, then a full round-robin steal scan starting after our
 * own shard.  Returns nullptr only after seeing every source empty.
 */
TaskNode *
ThreadPool::findExternalWork(Worker &self)
{
    {
        std::lock_guard<std::mutex> lock(injector_mutex_);
        if (injector_head_ != nullptr) {
            TaskNode *node = injector_head_;
            injector_head_ = node->next;
            if (injector_head_ == nullptr)
                injector_tail_ = nullptr;
            node->next = nullptr;
            return node;
        }
    }
    const std::size_t n = shards_.size();
    for (std::size_t hop = 1; hop < n; ++hop) {
        Worker &victim = *shards_[(self.index + hop) % n];
        if (TaskNode *node = victim.deque.steal()) {
            self.steals.fetch_add(1, std::memory_order_relaxed);
            return node;
        }
    }
    return nullptr;
}

void
ThreadPool::workerLoop(Worker &self)
{
    tl_worker = &self;
    for (;;) {
        if (TaskNode *node = self.deque.pop()) {
            runNode(node);
            continue;
        }
        if (TaskNode *node = findExternalWork(self)) {
            runNode(node);
            continue;
        }
        // Nothing visible.  Record the epoch, re-check (a submission
        // racing the scan bumps the epoch and fails the wait
        // predicate), then park.
        std::unique_lock<std::mutex> lock(park_mutex_);
        if (stopping_) {
            lock.unlock();
            // Drain straggler work published before stopping_ was
            // set; our own deque is empty (checked above) and only we
            // push to it.
            if (TaskNode *node = findExternalWork(self)) {
                runNode(node);
                continue;
            }
            return;
        }
        const std::uint64_t epoch = epoch_;
        lock.unlock();
        if (TaskNode *node = findExternalWork(self)) {
            runNode(node);
            continue;
        }
        lock.lock();
        park_cv_.wait(lock, [&] {
            return epoch_ != epoch || stopping_;
        });
    }
}

void
ThreadPool::chunkRunnerInvoke(TaskNode *node) noexcept
{
    auto *ctx = *std::launder(
        reinterpret_cast<ParallelForCtx **>(node->storage));
    for (;;) {
        const std::size_t i =
            ctx->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= ctx->n)
            break;
        try {
            ctx->invoke_body(ctx->body, i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(ctx->mutex);
            if (i < ctx->error_index) {
                ctx->error = std::current_exception();
                ctx->error_index = i;
            }
        }
    }
    std::lock_guard<std::mutex> lock(ctx->mutex);
    if (++ctx->done == ctx->runners)
        ctx->cv.notify_all(); // under the lock: ctx dies with the caller
}

void
ThreadPool::runParallelFor(ParallelForCtx &ctx)
{
    const std::size_t runners = std::min(workers_.size(), ctx.n);
    ctx.runners = runners;

    // Bulk enqueue: one injector lock for all K chunk runners (and
    // their node acquisitions) instead of K round-trips.
    {
        std::lock_guard<std::mutex> lock(injector_mutex_);
        for (std::size_t i = 0; i < runners; ++i) {
            TaskNode *node;
            if (free_list_ != nullptr) {
                node = free_list_;
                free_list_ = node->next;
            } else {
                node = new (node_arena_.allocate(
                    sizeof(TaskNode), alignof(TaskNode))) TaskNode();
            }
            new (node->storage) (ParallelForCtx *)(&ctx);
            node->invoke = &chunkRunnerInvoke;
            node->next = nullptr;
            if (injector_tail_ != nullptr)
                injector_tail_->next = node;
            else
                injector_head_ = node;
            injector_tail_ = node;
        }
        outstanding_.fetch_add(runners, std::memory_order_relaxed);
    }
    {
        std::lock_guard<std::mutex> lock(park_mutex_);
        ++epoch_;
    }
    park_cv_.notify_all();

    std::unique_lock<std::mutex> lock(ctx.mutex);
    ctx.cv.wait(lock, [&] { return ctx.done == ctx.runners; });
    lock.unlock();
    if (ctx.error)
        std::rethrow_exception(ctx.error);
}

namespace {

/** Inline helper-node payload for forkJoin: which runner am I. */
struct ForkJoinPayload
{
    detail::ForkJoinCtx *ctx;
    std::size_t runner;
};

} // namespace

/**
 * Shared runner body: drain the home stripe (runner % stripes), then
 * wrap-scan the others for leftovers.  Every index is claimed by
 * exactly one fetch_add winner.
 */
void
ThreadPool::forkJoinRun(detail::ForkJoinCtx *ctx,
                        std::size_t runner) noexcept
{
    const std::size_t stripes = ctx->stripes;
    for (std::size_t hop = 0; hop < stripes; ++hop) {
        auto &stripe = ctx->stripe[(runner + hop) % stripes];
        for (;;) {
            const std::size_t i =
                stripe.next.fetch_add(1, std::memory_order_relaxed);
            if (i >= stripe.end)
                break;
            try {
                ctx->invoke_body(ctx->body, i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(ctx->mutex);
                if (i < ctx->error_index) {
                    ctx->error = std::current_exception();
                    ctx->error_index = i;
                }
            }
        }
    }
}

void
ThreadPool::forkJoinInvoke(TaskNode *node) noexcept
{
    const auto payload = *std::launder(
        reinterpret_cast<ForkJoinPayload *>(node->storage));
    forkJoinRun(payload.ctx, payload.runner);
    // Release-increment is the helper's LAST touch of ctx: once the
    // caller observes helpers_done == helpers (acquire), the stack
    // frame holding ctx is free to die.
    payload.ctx->helpers_done.fetch_add(1, std::memory_order_release);
}

void
ThreadPool::runForkJoin(detail::ForkJoinCtx &ctx)
{
    const std::size_t helpers = std::min(workers_.size(), ctx.n - 1);
    const std::size_t runners = helpers + 1; // caller participates
    const std::size_t stripes = std::min(
        {runners, ctx.n, detail::ForkJoinCtx::kMaxStripes});
    ctx.helpers = helpers;
    ctx.stripes = stripes;
    for (std::size_t s = 0; s < stripes; ++s) {
        ctx.stripe[s].next.store(s * ctx.n / stripes,
                                 std::memory_order_relaxed);
        ctx.stripe[s].end = (s + 1) * ctx.n / stripes;
    }

    if (helpers != 0) {
        // Bulk enqueue, one injector lock — same idiom as
        // runParallelFor.  Helpers get runner ids 1..helpers; their
        // home stripes interleave with the caller's (runner 0).
        {
            std::lock_guard<std::mutex> lock(injector_mutex_);
            for (std::size_t i = 0; i < helpers; ++i) {
                TaskNode *node;
                if (free_list_ != nullptr) {
                    node = free_list_;
                    free_list_ = node->next;
                } else {
                    node = new (node_arena_.allocate(
                        sizeof(TaskNode), alignof(TaskNode)))
                        TaskNode();
                }
                static_assert(sizeof(ForkJoinPayload) <=
                              TaskNode::kInlineBytes);
                new (node->storage) ForkJoinPayload{&ctx, i + 1};
                node->invoke = &forkJoinInvoke;
                node->next = nullptr;
                if (injector_tail_ != nullptr)
                    injector_tail_->next = node;
                else
                    injector_head_ = node;
                injector_tail_ = node;
            }
            outstanding_.fetch_add(helpers,
                                   std::memory_order_relaxed);
        }
        {
            std::lock_guard<std::mutex> lock(park_mutex_);
            ++epoch_;
        }
        park_cv_.notify_all();
    }

    forkJoinRun(&ctx, 0);

    // Spin-join: the claim loops are tick-sized, so helpers finish in
    // microseconds; yielding keeps the 1-core fallback honest.
    while (ctx.helpers_done.load(std::memory_order_acquire) != helpers)
        std::this_thread::yield();
    if (ctx.error)
        std::rethrow_exception(ctx.error);
}

std::size_t
ThreadPool::defaultConcurrency()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

} // namespace smartconf::exec
