#include "scenarios/control.h"

namespace smartconf::scenarios {

ControllerOverrides
overridesFor(const Policy &policy)
{
    ControllerOverrides ov;
    switch (policy.kind) {
      case Policy::Kind::Static:
      case Policy::Kind::Smart:
        break;
      case Policy::Kind::SmartSinglePole:
        ov.useContextAwarePoles = false;
        break;
      case Policy::Kind::SmartNoVirtualGoal:
        ov.useVirtualGoal = false;
        break;
    }
    if (policy.pole_override)
        ov.pole = policy.pole_override;
    return ov;
}

namespace {

std::unique_ptr<SmartConfRuntime>
makeRuntimeCommon(const ControlSpec &spec)
{
    auto rt = std::make_unique<SmartConfRuntime>();
    ConfEntry entry;
    entry.name = spec.conf_name;
    entry.metric = spec.metric_name;
    entry.initial = spec.initial;
    entry.confMin = spec.conf_min;
    entry.confMax = spec.conf_max;
    rt->declareConf(entry);

    Goal goal;
    goal.metric = spec.metric_name;
    goal.value = spec.goal_value;
    goal.direction = GoalDirection::UpperBound;
    goal.hard = spec.hard || spec.super_hard;
    goal.superHard = spec.super_hard;
    rt->declareGoal(goal);
    return rt;
}

} // namespace

std::unique_ptr<SmartConfRuntime>
makeControlRuntime(const ControlSpec &spec, const Policy &policy,
                   const ProfileSummary &summary)
{
    auto rt = makeRuntimeCommon(spec);
    ControllerOverrides ov = overridesFor(policy);
    ov.deputyMin = spec.deputy_min;
    ov.deputyMax = spec.deputy_max;
    rt->setOverrides(spec.conf_name, ov);
    rt->installProfile(spec.conf_name, summary);
    return rt;
}

std::unique_ptr<SmartConfRuntime>
makeProfilingRuntime(const ControlSpec &spec)
{
    auto rt = makeRuntimeCommon(spec);
    rt->setProfiling(true);
    return rt;
}

fault::ChaosHooks
chaosHooksFor(const Policy &policy, std::uint64_t run_seed)
{
    if (!policy.hasChaos())
        return fault::ChaosHooks();
    return fault::ChaosHooks(*policy.chaos, run_seed);
}

} // namespace smartconf::scenarios
