#ifndef SMARTCONF_SCENARIOS_HB2149_H_
#define SMARTCONF_SCENARIOS_HB2149_H_

/**
 * @file
 * HB2149: `global.memstore.lowerLimit` decides how much memstore data is
 * flushed when writes hit the blocking watermark.  Too big, writes are
 * blocked for too long; too small, writes are blocked too often
 * (direct, soft latency constraint, conditional).
 *
 * This case exercises two SmartConf features the others do not: a
 * floating-point configuration, and a *run-time goal change* — the
 * worst-case write-block constraint tightens from 10 s to 5 s at the
 * phase boundary via the setGoal API (Table 6: "1.0W, 1MB, 10s" ->
 * "1.0W, 1MB, 5s").
 */

#include "scenarios/scenario.h"
#include "sim/clock.h"

namespace smartconf::scenarios {

/** Workload/memstore knobs for the HB2149 driver. */
struct Hb2149Options
{
    sim::Tick phase1_ticks = 3000;
    sim::Tick total_ticks = 6000;
    double phase1_goal_ticks = 100.0; ///< 10 s worst-case block
    double phase2_goal_ticks = 50.0;  ///< 5 s worst-case block
    double ops_per_tick = 5.0;
    double request_size_mb = 1.0;
    double upper_limit_mb = 256.0;
    double flush_rate_mb_per_tick = 1.0;
    double flush_setup_ticks = 20.0;
};

/** The HB2149 case study. */
class Hb2149Scenario : public Scenario
{
  public:
    Hb2149Scenario();
    explicit Hb2149Scenario(const Hb2149Options &opts);

    ProfileSummary profile(std::uint64_t seed) const override;
    ScenarioResult run(const Policy &policy,
                       std::uint64_t seed) const override;

    const Hb2149Options &options() const { return opts_; }

  private:
    Hb2149Options opts_;
};

} // namespace smartconf::scenarios

#endif // SMARTCONF_SCENARIOS_HB2149_H_
