#ifndef SMARTCONF_SCENARIOS_SCENARIO_H_
#define SMARTCONF_SCENARIOS_SCENARIO_H_

/**
 * @file
 * Case-study scenarios (paper Table 6) and configuration policies.
 *
 * A Scenario reproduces one of the paper's six PerfConf issues: it wires
 * the relevant simulated subsystem to a workload, runs the paper's
 * two-phase evaluation, and reports whether the performance constraint
 * held plus the secondary (trade-off) metric.  A Policy selects how the
 * PerfConf is set during the run: a static value (the traditional
 * configuration interface) or SmartConf (including the Fig. 7 ablated
 * controllers).
 */

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/profiler.h"
#include "fault/spec.h"
#include "sim/metrics.h"

namespace smartconf::scenarios {

/** How the PerfConf is managed during an evaluation run. */
struct Policy
{
    enum class Kind
    {
        Static,             ///< launch-time value, never adjusted
        Smart,              ///< full SmartConf controller
        SmartSinglePole,    ///< Fig. 7: no danger-zone pole switch
        SmartNoVirtualGoal, ///< Fig. 7: tracks the raw constraint
    };

    Kind kind = Kind::Smart;
    double value = 0.0; ///< the setting, for Kind::Static
    std::string label;  ///< display name ("SmartConf", "Static-90", ...)

    /** Force the regular pole (Fig. 7 uses 0.9 for both controllers). */
    std::optional<double> pole_override;

    /**
     * Optional fault-injection campaign for the evaluation run.  Null
     * (the default) means no chaos machinery is instantiated at all —
     * the scenario's control sites see inactive hooks, which are
     * inline null checks.  Shared and immutable so Policy stays
     * cheaply copyable across the sweep/exec layers.
     */
    std::shared_ptr<const fault::ChaosSpec> chaos;

    static Policy makeStatic(double v, std::string label = "");
    static Policy smart();
    static Policy singlePole(double pole = 0.9);
    static Policy noVirtualGoal();

    /** Copy of this policy with @p spec injected during evaluation. */
    Policy withChaos(const fault::ChaosSpec &spec) const;

    bool isSmart() const { return kind != Kind::Static; }
    bool hasChaos() const { return chaos != nullptr && chaos->any(); }

    /**
     * Stable string encoding every field that can change a run's
     * outcome (kind, static value, pole_override, and the label, which
     * feeds through to ScenarioResult::policy_label).  Two policies
     * compare equal iff their cacheKey()s are equal — the run cache
     * keys on this, so distinct policies can never be conflated.
     */
    std::string cacheKey() const;

    friend bool operator==(const Policy &a, const Policy &b)
    {
        return a.cacheKey() == b.cacheKey();
    }
    friend bool operator!=(const Policy &a, const Policy &b)
    {
        return !(a == b);
    }
};

/** Everything a Fig. 5-style comparison needs from one run. */
struct ScenarioResult
{
    std::string scenario_id;
    std::string policy_label;

    /** True when the constraint was violated (OOM/OOD/latency breach). */
    bool violated = false;

    /** Simulated seconds of the first violation; -1 when none. */
    double violation_time_s = -1.0;

    /** Worst observed value of the constrained metric. */
    double worst_goal_metric = 0.0;

    /** The constraint value in force (last phase). */
    double goal_value = 0.0;

    /**
     * Canonical trade-off score, always higher-is-better (throughput in
     * ops/s, or 1/latency for latency trade-offs).  Fig. 5 speedups are
     * ratios of this score.
     */
    double tradeoff = 0.0;

    /** Trade-off in its native unit, for display. */
    double raw_tradeoff = 0.0;

    /** Mean configuration value over the run (diagnostic). */
    double mean_conf = 0.0;

    /**
     * Workload operations simulated by the evaluation run (requests
     * generated / tasks completed, per the scenario's natural unit).
     * Feeds the bench harnesses' ops-per-second throughput tracking.
     */
    std::uint64_t ops_simulated = 0;

    /**
     * Faults injected by the policy's chaos campaign (0 when chaos is
     * off).  Lets tests assert a fault was *demonstrably* injected
     * before claiming the run survived it.
     */
    std::uint64_t faults_injected = 0;

    /**
     * Data-plane ops served per logical shard (sim::kShards entries,
     * pinned lane order; empty for scenarios without a sharded
     * producer).  Independent of the physical worker count — part of
     * the byte-identical result surface — and the source of
     * bench_sweep's shard-imbalance stat.
     */
    std::vector<std::uint64_t> shard_ops;

    /** Goal metric over time (Fig. 6b / 7 / 8 top). */
    sim::TimeSeries perf_series;

    /** Configuration value over time (Fig. 6c / 8 bottom). */
    sim::TimeSeries conf_series;

    /** Cumulative trade-off metric over time (Fig. 6a). */
    sim::TimeSeries tradeoff_series;
};

/** Static description of a scenario (feeds Table 6 and Fig. 5). */
struct ScenarioInfo
{
    std::string id;          ///< "HB3813"
    std::string system;      ///< "HBase"
    std::string conf_name;   ///< "ipc.server.max.queue.size"
    std::string metric_name; ///< "memory_consumption_max"
    std::string description; ///< one-line issue description
    std::string constraint_desc; ///< the main user concern
    std::string tradeoff_desc;   ///< the metric optimized under it

    bool conditional = false; ///< Table 6 ?-?-? flags
    bool direct = false;
    bool hard = false;

    std::string profiling_workload; ///< Table 6 columns
    std::string phase1_workload;
    std::string phase2_workload;

    double buggy_default = 0.0; ///< original default (fails)
    double patch_default = 0.0; ///< developers' patched default

    std::vector<double> profiling_settings; ///< 4 settings (Sec. 6.1)
    std::vector<double> static_candidates;  ///< exhaustive-search grid

    bool tradeoff_higher_better = true;
    std::string tradeoff_unit; ///< "ops/s", "s", ...
};

/**
 * One reproduced case study.
 */
class Scenario
{
  public:
    explicit Scenario(ScenarioInfo info) : info_(std::move(info)) {}
    virtual ~Scenario() = default;

    Scenario(const Scenario &) = delete;
    Scenario &operator=(const Scenario &) = delete;

    const ScenarioInfo &info() const { return info_; }

    /**
     * Run the profiling workload (paper: 4 settings x 10 samples) and
     * synthesize controller parameters.
     */
    virtual ProfileSummary profile(std::uint64_t seed) const = 0;

    /**
     * Run the two-phase evaluation workload under @p policy.
     *
     * Smart policies internally run profile() first (on a different
     * seed — the paper stresses that profiling and evaluation workloads
     * differ).
     */
    virtual ScenarioResult run(const Policy &policy,
                               std::uint64_t seed) const = 0;

  protected:
    ScenarioInfo info_;
};

/** All six case studies in Table 6 order. */
std::vector<std::unique_ptr<Scenario>> makeAllScenarios();

/** Construct one scenario by id ("CA6059" ... "MR2820"); nullptr if unknown. */
std::unique_ptr<Scenario> makeScenario(const std::string &id);

} // namespace smartconf::scenarios

#endif // SMARTCONF_SCENARIOS_SCENARIO_H_
