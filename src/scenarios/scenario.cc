#include "scenarios/scenario.h"

#include <cstdio>

#include "scenarios/ca6059.h"
#include "scenarios/hb2149.h"
#include "scenarios/hb3813.h"
#include "scenarios/hb6728.h"
#include "scenarios/hd4995.h"
#include "scenarios/mr2820.h"

namespace smartconf::scenarios {

namespace {

/** Round-trip-exact double encoding (distinct doubles, distinct keys). */
std::string
exactDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

const char *
kindName(Policy::Kind k)
{
    switch (k) {
    case Policy::Kind::Static:
        return "static";
    case Policy::Kind::Smart:
        return "smart";
    case Policy::Kind::SmartSinglePole:
        return "single_pole";
    case Policy::Kind::SmartNoVirtualGoal:
        return "no_virtual_goal";
    }
    return "?";
}

} // namespace

std::string
Policy::cacheKey() const
{
    std::string key = kindName(kind);
    if (kind == Kind::Static)
        key += ":v=" + exactDouble(value);
    if (pole_override)
        key += ":pole=" + exactDouble(*pole_override);
    // Appended only when a campaign is active, so every pre-existing
    // chaos-free key (and its disk-cache entry) is untouched.
    if (hasChaos())
        key += ":" + chaos->cacheKey();
    key += ":label=" + label;
    return key;
}

Policy
Policy::withChaos(const fault::ChaosSpec &spec) const
{
    Policy p = *this;
    p.chaos = std::make_shared<const fault::ChaosSpec>(spec);
    return p;
}

Policy
Policy::makeStatic(double v, std::string label)
{
    Policy p;
    p.kind = Kind::Static;
    p.value = v;
    p.label = label.empty() ? "Static-" + std::to_string(v) : label;
    return p;
}

Policy
Policy::smart()
{
    Policy p;
    p.kind = Kind::Smart;
    p.label = "SmartConf";
    return p;
}

Policy
Policy::singlePole(double pole)
{
    Policy p;
    p.kind = Kind::SmartSinglePole;
    p.label = "Single Pole";
    p.pole_override = pole;
    return p;
}

Policy
Policy::noVirtualGoal()
{
    Policy p;
    p.kind = Kind::SmartNoVirtualGoal;
    p.label = "No Virtual Goal";
    return p;
}

std::vector<std::unique_ptr<Scenario>>
makeAllScenarios()
{
    std::vector<std::unique_ptr<Scenario>> out;
    out.push_back(std::make_unique<Ca6059Scenario>());
    out.push_back(std::make_unique<Hb2149Scenario>());
    out.push_back(std::make_unique<Hb3813Scenario>());
    out.push_back(std::make_unique<Hb6728Scenario>());
    out.push_back(std::make_unique<Hd4995Scenario>());
    out.push_back(std::make_unique<Mr2820Scenario>());
    return out;
}

std::unique_ptr<Scenario>
makeScenario(const std::string &id)
{
    if (id == "CA6059")
        return std::make_unique<Ca6059Scenario>();
    if (id == "HB2149")
        return std::make_unique<Hb2149Scenario>();
    if (id == "HB3813")
        return std::make_unique<Hb3813Scenario>();
    if (id == "HB6728")
        return std::make_unique<Hb6728Scenario>();
    if (id == "HD4995")
        return std::make_unique<Hd4995Scenario>();
    if (id == "MR2820")
        return std::make_unique<Mr2820Scenario>();
    return nullptr;
}

} // namespace smartconf::scenarios
