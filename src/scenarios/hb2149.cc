#include "scenarios/hb2149.h"

#include <algorithm>
#include <cmath>

#include "core/smartconf.h"
#include "kvstore/memstore.h"
#include "scenarios/control.h"
#include "sim/event_queue.h"
#include "workload/sharded.h"

namespace smartconf::scenarios {

namespace {

constexpr double kTicksPerSecond = 10.0;
constexpr const char *kConfName = "global.memstore.lowerLimit";
constexpr const char *kMetricName = "write_block_latency_max";

ScenarioInfo
makeInfo(const Hb2149Options &opts)
{
    ScenarioInfo info;
    info.id = "HB2149";
    info.system = "HBase";
    info.conf_name = kConfName;
    info.metric_name = kMetricName;
    info.description =
        "global.memstore.lowerLimit decides how much memstore data is "
        "flushed.";
    info.constraint_desc = "Too big, write blocked for too long";
    info.tradeoff_desc = "Too small, write blocked too often";
    info.conditional = true;
    info.direct = true;
    info.hard = false;
    info.profiling_workload = "YCSB 1.0W, 1MB";
    info.phase1_workload = "1.0W, 1MB, 10s";
    info.phase2_workload = "1.0W, 1MB, 5s";
    info.buggy_default = 128.0; // flush amount: blocks ~14.8 s
    info.patch_default = 24.0;  // blocks ~4.4 s: meets both goals
    info.profiling_settings = {16.0, 48.0, 96.0, 160.0};
    for (double c = 8.0; c <= 80.0; c += 4.0)
        info.static_candidates.push_back(c);
    info.tradeoff_higher_better = true;
    info.tradeoff_unit = "ops/s";
    (void)opts;
    return info;
}

kvstore::MemstoreParams
memstoreParams(const Hb2149Options &opts)
{
    kvstore::MemstoreParams mp;
    mp.upper_limit_mb = opts.upper_limit_mb;
    mp.flush_rate_mb_per_tick = opts.flush_rate_mb_per_tick;
    mp.flush_setup_ticks = opts.flush_setup_ticks;
    return mp;
}

workload::YcsbParams
ycsbParams(const Hb2149Options &opts)
{
    workload::YcsbParams p;
    p.write_fraction = 1.0;
    p.request_size_mb = opts.request_size_mb;
    p.ops_per_tick = opts.ops_per_tick;
    p.burstiness = 0.2;
    return p;
}

ControlSpec
controlSpec(const Hb2149Options &opts)
{
    ControlSpec spec;
    spec.conf_name = kConfName;
    spec.metric_name = kMetricName;
    spec.initial = 8.0;
    spec.conf_min = 4.0;
    spec.conf_max = 200.0;
    spec.goal_value = opts.phase1_goal_ticks;
    spec.hard = false; // latency SLA: soft constraint
    return spec;
}

} // namespace

Hb2149Scenario::Hb2149Scenario() : Hb2149Scenario(Hb2149Options{}) {}

Hb2149Scenario::Hb2149Scenario(const Hb2149Options &opts)
    : Scenario(makeInfo(opts)), opts_(opts)
{}

ProfileSummary
Hb2149Scenario::profile(std::uint64_t seed) const
{
    auto rt = makeProfilingRuntime(controlSpec(opts_));
    SmartConf sc(*rt, kConfName);

    for (const double setting : info_.profiling_settings) {
        sim::Rng rng(seed ^ static_cast<std::uint64_t>(setting) * 541);
        kvstore::Memstore memstore(setting, memstoreParams(opts_));
        workload::ShardedYcsbGenerator gen(ycsbParams(opts_), rng.fork(2));

        // Profiling records one sample per completed blocking flush;
        // SmartConf's profiler needs the (config, perf) pair, so the
        // handle's current value is pinned to the profiled setting.
        int flushes = 0;
        std::uint64_t seen = 0;
        std::vector<workload::Op> ops; ///< reused arrival buffer
        for (sim::Tick t = 0; flushes < 10; ++t) {
            gen.tickInto(ops);
            for (const auto &op : ops) {
                if (op.type == workload::Op::Type::Write)
                    memstore.write(op.size_mb, t);
            }
            memstore.step(t);
            if (memstore.flushCount() > seen && !memstore.blocked()) {
                seen = memstore.flushCount();
                // Pin the recorded config to the profiled setting.
                rt->setCurrentValue(kConfName, setting);
                sc.setPerf(memstore.lastBlockTicks());
                ++flushes;
            }
        }
    }
    return rt->finishProfiling(kConfName);
}

ScenarioResult
Hb2149Scenario::run(const Policy &policy, std::uint64_t seed) const
{
    ScenarioResult result;
    result.scenario_id = info_.id;
    result.policy_label = policy.label;
    result.goal_value = opts_.phase2_goal_ticks;
    result.perf_series = sim::TimeSeries("block_latency_ticks");
    result.conf_series = sim::TimeSeries("flush_amount_mb");
    result.tradeoff_series = sim::TimeSeries("accepted_writes");
    // perf_series only records on flush completion; the other two
    // record every tick.
    result.conf_series.reserve(
        static_cast<std::size_t>(opts_.total_ticks));
    result.tradeoff_series.reserve(
        static_cast<std::size_t>(opts_.total_ticks));

    std::unique_ptr<SmartConfRuntime> rt;
    std::unique_ptr<SmartConf> sc;
    double initial_amount;
    if (policy.isSmart()) {
        const ProfileSummary summary = profile(seed ^ 0x2149);
        rt = makeControlRuntime(controlSpec(opts_), policy, summary);
        sc = std::make_unique<SmartConf>(*rt, kConfName);
        initial_amount = 8.0;
    } else {
        initial_amount = policy.value;
    }

    sim::Rng rng(seed);
    kvstore::Memstore memstore(initial_amount, memstoreParams(opts_));
    workload::ShardedYcsbGenerator gen(ycsbParams(opts_), rng.fork(2));

    const fault::ChaosHooks chaos = chaosHooksFor(policy, seed);
    chaos.seedActuation(initial_amount);

    std::uint64_t accepted = 0;
    bool goal_changed = false;
    double conf_sum = 0.0;
    std::int64_t conf_samples = 0;
    // Blocks are judged against the goal in force when the flush began.
    double active_goal = opts_.phase1_goal_ticks;
    double flush_start_goal = active_goal;
    bool violated = false;
    double violation_tick = -1.0;
    double worst_block = 0.0;
    bool was_blocked = false;

    // Event-engine driver: the goal switch, the flush-completion
    // sensor/control step, workload + memstore stepping, and metrics
    // are separate periodic events; registration order reproduces the
    // sequential driver's statement order within each tick.
    sim::Clock sim_clock;
    sim::EventQueue events(sim_clock);
    std::vector<workload::Op> ops; ///< reused arrival buffer

    events.schedulePeriodicAt(0, 1, [&] {
        const sim::Tick t = sim_clock.now();
        // Run-time goal change through the user-facing setGoal API.
        if (!goal_changed && t >= opts_.phase1_ticks) {
            goal_changed = true;
            active_goal = opts_.phase2_goal_ticks;
            if (sc) {
                sc->setGoal(active_goal);
                // Re-evaluate immediately so the flush that starts next
                // already honours the tightened constraint.
                if (worst_block > 0.0 && !memstore.blocked() &&
                    chaos.fire()) {
                    sc->setPerf(
                        chaos.measure(memstore.lastBlockTicks()));
                    memstore.setFlushAmountMb(std::max(
                        4.0, chaos.actuate(sc->getConfReal())));
                }
            }
        }
    });

    events.schedulePeriodicAt(0, 1, [&] {
        const sim::Tick t = sim_clock.now();
        if (!memstore.blocked() && was_blocked) {
            // A blocking flush just completed: measure and adjust.
            const double block = memstore.lastBlockTicks();
            worst_block = std::max(worst_block, block);
            if (block > flush_start_goal * 1.02 + 1.0 && !violated) {
                violated = true;
                violation_tick = static_cast<double>(t);
            }
            result.perf_series.record(t, block);
            if (sc && chaos.fire()) {
                sc->setPerf(chaos.measure(block));
                memstore.setFlushAmountMb(std::max(
                    4.0, chaos.actuate(sc->getConfReal())));
            }
        }
        if (!memstore.blocked())
            flush_start_goal = active_goal;
        was_blocked = memstore.blocked();
    });

    events.schedulePeriodicAt(0, 1, [&] {
        const sim::Tick t = sim_clock.now();
        gen.tickInto(ops);
        for (const auto &op : ops) {
            if (op.type != workload::Op::Type::Write)
                continue;
            if (memstore.write(op.size_mb, t))
                ++accepted;
        }
        memstore.step(t);
    });

    events.schedulePeriodicAt(0, 1, [&] {
        const sim::Tick t = sim_clock.now();
        result.conf_series.record(t, memstore.flushAmountMb());
        result.tradeoff_series.record(
            t, static_cast<double>(accepted));
        conf_sum += memstore.flushAmountMb();
        ++conf_samples;
    });

    events.runUntil(opts_.total_ticks - 1);

    result.violated = violated;
    result.violation_time_s =
        violated ? violation_tick / kTicksPerSecond : -1.0;
    result.worst_goal_metric = worst_block;
    const double duration_s =
        static_cast<double>(opts_.total_ticks) / kTicksPerSecond;
    result.raw_tradeoff = static_cast<double>(accepted) / duration_s;
    result.tradeoff = result.raw_tradeoff;
    result.mean_conf =
        conf_samples > 0 ? conf_sum / static_cast<double>(conf_samples)
                         : 0.0;
    result.ops_simulated = gen.generated();
    result.faults_injected = chaos.stats().injected();
    result.shard_ops.assign(gen.shardOps().begin(),
                            gen.shardOps().end());
    return result;
}

} // namespace smartconf::scenarios
