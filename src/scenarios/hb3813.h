#ifndef SMARTCONF_SCENARIOS_HB3813_H_
#define SMARTCONF_SCENARIOS_HB3813_H_

/**
 * @file
 * HB3813: `ipc.server.max.queue.size` limits the RPC-call queue.
 *
 * Too big, OOM; too small, read/write throughput hurts (Table 6;
 * indirect, hard, unconditional).  This is the paper's flagship case:
 * Fig. 6 plots its time series, Fig. 7 runs the controller ablations on
 * a less stable variant, and Fig. 8 couples it with HB6728.
 *
 * Evaluation: YCSB writes whose request size doubles from 1 MB to 2 MB
 * at ~200 s, arrival rate oscillating around the service rate so the
 * queue absorbs bursts.  The 495 MB heap (Fig. 6) holds queued payloads
 * plus a workload-dependent floor.
 */

#include "scenarios/scenario.h"
#include "sim/clock.h"

namespace smartconf::scenarios {

/** Knobs that Fig. 6/7 variants override. */
struct Hb3813Options
{
    double heap_mb = 495.0;
    sim::Tick phase1_ticks = 2000; ///< phase boundary (~200 s)
    sim::Tick total_ticks = 7000;  ///< run length (~700 s)
    double write_fraction = 1.0;   ///< Fig. 7 variant uses 0.7
    double phase1_req_mb = 1.0;
    double phase2_req_mb = 2.0;
    double arrival_base = 10.0;    ///< mean ops/tick
    double arrival_amp = 12.0;     ///< burst amplitude (ops/tick)
    sim::Tick arrival_period = 40; ///< burst period (4 s)
    double arrival_amp2 = 4.0;     ///< slow swell amplitude (ops/tick)
    sim::Tick arrival_period2 = 400; ///< slow swell period (40 s)
    double service_ops_per_tick = 12.0;
    sim::Tick control_period = 1;  ///< control at every queue use

    /**
     * Co-resident allocation burst (Fig. 7): from @p spike_at a
     * background task (think compaction) claims heap at
     * @p spike_mb / @p spike_ramp MB per tick up to @p spike_mb and
     * holds it — the discrete disturbance the paper argues traditional
     * controllers react to too slowly.  Disabled when 0.
     */
    double spike_mb = 0.0;
    sim::Tick spike_at = 0;
    sim::Tick spike_ramp = 50;

    /** Profiling samples per setting (the paper's recipe uses 10). */
    int profile_samples = 10;
};

/** The HB3813 case study. */
class Hb3813Scenario : public Scenario
{
  public:
    Hb3813Scenario();
    explicit Hb3813Scenario(const Hb3813Options &opts);

    ProfileSummary profile(std::uint64_t seed) const override;
    ScenarioResult run(const Policy &policy,
                       std::uint64_t seed) const override;

    const Hb3813Options &options() const { return opts_; }

  private:
    Hb3813Options opts_;
};

} // namespace smartconf::scenarios

#endif // SMARTCONF_SCENARIOS_HB3813_H_
