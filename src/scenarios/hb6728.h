#ifndef SMARTCONF_SCENARIOS_HB6728_H_
#define SMARTCONF_SCENARIOS_HB6728_H_

/**
 * @file
 * HB6728: `ipc.server.response.queue.maxsize` limits the RPC-response
 * queue.  Too big, OOM; too small, read/write throughput hurts
 * (indirect, hard, unconditional).
 *
 * Evaluation: a read-heavy YCSB workload whose 2 MB responses buffer in
 * the response queue ahead of a slower network; at ~200 s the mix gains
 * 30 % writes (Table 6: 0.0W -> 0.3W).
 */

#include "scenarios/scenario.h"
#include "sim/clock.h"

namespace smartconf::scenarios {

/** Workload/server knobs for the HB6728 driver. */
struct Hb6728Options
{
    double heap_mb = 495.0;
    sim::Tick phase1_ticks = 2000;
    sim::Tick total_ticks = 7000;
    double phase1_write_fraction = 0.0;
    double phase2_write_fraction = 0.3;
    double request_size_mb = 2.0;
    double arrival_base = 4.0;
    double arrival_amp = 5.0;
    sim::Tick arrival_period = 40;
    double arrival_amp2 = 1.5;      ///< slow swell (ops/tick)
    sim::Tick arrival_period2 = 400;
    double network_mb_per_tick = 10.0;
    std::size_t request_queue_items = 30;
    sim::Tick request_timeout = 30;   ///< client RPC timeout (3 s)
    double memstore_cap_mb = 120.0;   ///< write-path heap in phase 2
    sim::Tick control_period = 1;
};

/** The HB6728 case study. */
class Hb6728Scenario : public Scenario
{
  public:
    Hb6728Scenario();
    explicit Hb6728Scenario(const Hb6728Options &opts);

    ProfileSummary profile(std::uint64_t seed) const override;
    ScenarioResult run(const Policy &policy,
                       std::uint64_t seed) const override;

    const Hb6728Options &options() const { return opts_; }

  private:
    Hb6728Options opts_;
};

} // namespace smartconf::scenarios

#endif // SMARTCONF_SCENARIOS_HB6728_H_
