#include "scenarios/mr2820.h"

#include <algorithm>
#include <cmath>

#include "core/sensor.h"
#include "core/smartconf.h"
#include "mapreduce/cluster.h"
#include "scenarios/control.h"
#include "sim/event_queue.h"

namespace smartconf::scenarios {

namespace {

constexpr double kTicksPerSecond = 10.0;
constexpr const char *kConfName = "local.dir.minspacestart";
constexpr const char *kMetricName = "disk_consumption_max";

ScenarioInfo
makeInfo(const Mr2820Options &opts)
{
    ScenarioInfo info;
    info.id = "MR2820";
    info.system = "MapReduce";
    info.conf_name = kConfName;
    info.metric_name = kMetricName;
    info.description =
        "local.dir.minspacestart decides if a worker has enough disk to "
        "run a task.";
    info.constraint_desc = "Too small, OOD";
    info.tradeoff_desc = "Too big, low utility (job latency hurts)";
    info.conditional = true;
    info.direct = true;
    info.hard = true;
    info.profiling_workload = "WordCount 2G, 64MB, 1";
    info.phase1_workload = "640MB, 64MB, 2";
    info.phase2_workload = "640MB, 128MB, 2";
    info.buggy_default = 0.0; // hard-coded zero: admit regardless of disk
    info.patch_default = 1.0; // patched to 1 MB: still fails
    info.profiling_settings = {150.0, 250.0, 350.0, 450.0};
    for (double c = 100.0; c <= 600.0; c += 25.0)
        info.static_candidates.push_back(c);
    info.tradeoff_higher_better = false; // makespan: lower is better
    info.tradeoff_unit = "s";
    (void)opts;
    return info;
}

mapreduce::ClusterParams
clusterParams(const Mr2820Options &opts)
{
    mapreduce::ClusterParams cp;
    cp.workers = opts.workers;
    cp.disk_capacity_mb = opts.disk_capacity_mb;
    cp.other_base_mb = opts.other_base_mb;
    cp.other_walk_mb = opts.other_walk_mb;
    cp.other_max_mb = opts.other_max_mb;
    cp.task_duration = opts.task_duration;
    cp.fetch_delay = opts.fetch_delay;
    return cp;
}

ControlSpec
controlSpec(const Mr2820Options &opts)
{
    ControlSpec spec;
    spec.conf_name = kConfName;
    spec.metric_name = kMetricName;
    spec.initial = 400.0; // conservative start; controller relaxes it
    // Admissions are irrevocable and spills materialize over a whole
    // task duration, so a worker can fill all of its slots on
    // consecutive heartbeats before any of that spill is visible on
    // disk.  The gate must therefore always reserve at least one
    // admittable burst — conf values below this floor cannot be safe
    // no matter how empty the sensed disk looks (the inter-wave
    // trough is exactly where a naive controller relaxes to zero and
    // then eats a full burst of the next job's larger spills).
    const auto burst_mb = [](const workload::WordCountJob &j) {
        return static_cast<double>(j.parallelism) * j.spillPerTaskMb();
    };
    spec.conf_min = 1.3 * std::max(burst_mb(opts.phase1_job),
                                   burst_mb(opts.phase2_job));
    spec.conf_max = 1200.0;
    // The admission gate actuates in whole-task-spill quanta and the
    // disk walk keeps moving between control invocations, so the
    // setpoint sits a guard band below the hard capacity: aiming
    // exactly at the cliff converts sub-quantum jitter into OOD.
    spec.goal_value = opts.disk_capacity_mb - 15.0;
    spec.hard = true;
    return spec;
}

} // namespace

Mr2820Scenario::Mr2820Scenario() : Mr2820Scenario(Mr2820Options{}) {}

Mr2820Scenario::Mr2820Scenario(const Mr2820Options &opts)
    : Scenario(makeInfo(opts)), opts_(opts)
{}

ProfileSummary
Mr2820Scenario::profile(std::uint64_t seed) const
{
    auto rt = makeProfilingRuntime(controlSpec(opts_));
    SmartConf sc(*rt, kConfName);

    for (const double setting : info_.profiling_settings) {
        sim::Rng rng(seed ^ static_cast<std::uint64_t>(setting) * 389);
        mapreduce::MrCluster cluster(
            clusterParams(opts_), static_cast<std::uint64_t>(setting),
            rng.fork(1));
        cluster.submitJob(opts_.profiling_job, 0);
        rt->setCurrentValue(kConfName, setting);

        // Instantaneous samples deliberately span the whole admission
        // cycle — troughs between waves as well as peaks — because the
        // trough-to-peak swing is exactly the disturbance the virtual
        // goal must leave room for (a whole admitted wave can be in
        // flight when the disk fills).
        const sim::Tick warmup = 120;
        int samples = 0;
        for (sim::Tick t = 0; samples < 10 && t < 4000; ++t) {
            cluster.step(t);
            if (cluster.jobDone()) {
                // Keep the disk exercised for the whole profiling slot.
                cluster.submitJob(opts_.profiling_job, t);
            }
            if (t >= warmup && t % 25 == 0) {
                sc.setPerf(cluster.projectedDiskUsedMb());
                ++samples;
            }
        }
    }
    return rt->finishProfiling(kConfName);
}

ScenarioResult
Mr2820Scenario::run(const Policy &policy, std::uint64_t seed) const
{
    ScenarioResult result;
    result.scenario_id = info_.id;
    result.policy_label = policy.label;
    result.goal_value = opts_.disk_capacity_mb;
    result.perf_series = sim::TimeSeries("disk_used_mb");
    result.conf_series = sim::TimeSeries("minspacestart_mb");
    result.tradeoff_series = sim::TimeSeries("completed_tasks");
    result.perf_series.reserve(
        static_cast<std::size_t>(opts_.max_ticks));
    result.conf_series.reserve(
        static_cast<std::size_t>(opts_.max_ticks));
    result.tradeoff_series.reserve(
        static_cast<std::size_t>(opts_.max_ticks));

    std::unique_ptr<SmartConfRuntime> rt;
    std::unique_ptr<SmartConf> sc;
    // Peak-hold over ~one task duration: admissions are irrevocable,
    // so the controller must keep seeing the wave peak it committed
    // to, not the trough after outputs are fetched.
    WindowMaxSensor peak_sensor(
        static_cast<std::size_t>(opts_.task_duration /
                                 opts_.control_period) + 1);
    // Model-based component: the master knows split sizes, so while
    // tasks are pending it can predict what the disk would reach if
    // the next wave were admitted.  Feeding the prediction removes the
    // plant lag (spills take a task duration to materialize) that
    // would otherwise wind the controller down between waves.
    double initial;
    if (policy.isSmart()) {
        const ProfileSummary summary = profile(seed ^ 0x2820);
        rt = makeControlRuntime(controlSpec(opts_), policy, summary);
        sc = std::make_unique<SmartConf>(*rt, kConfName);
        initial = 400.0;
    } else {
        initial = policy.value;
    }

    sim::Rng rng(seed);
    mapreduce::MrCluster cluster(clusterParams(opts_),
                                 static_cast<std::uint64_t>(initial),
                                 rng.fork(1));

    // Phase 1 job runs to completion, then the phase 2 job is submitted
    // (two jobs with different split sizes and parallelism, Table 6).
    int phase = 0;
    cluster.submitJob(opts_.phase1_job, 0);

    double conf_sum = 0.0;
    std::int64_t conf_samples = 0;
    sim::Tick finished_at = opts_.max_ticks;
    std::uint64_t tasks_done_before = 0;

    const fault::ChaosHooks chaos = chaosHooksFor(policy, seed);
    chaos.seedActuation(initial);

    // One control invocation: sense (peak-hold + next-wave prediction)
    // and push the adjusted gate to the master.
    auto invoke_control = [&](bool force_pending_wave) {
        // The probe runs even when the invocation is suppressed: a
        // skipped controller does not stop the sensor accumulating.
        peak_sensor.observe(cluster.projectedDiskUsedMb());
        if (!chaos.fire())
            return;
        const workload::WordCountJob &job =
            phase == 0 ? opts_.phase1_job : opts_.phase2_job;
        // Admission is one task per worker heartbeat, so the next
        // commitment quantum is a single task's spill.
        const double wave_mb = job.spillPerTaskMb();
        // "What would the disk reach if the next wave were admitted
        // right now?"  While tasks are waiting, that is the quantity
        // the gate must keep below the constraint.  The wave estimate
        // is padded 20% for spill-size jitter and co-resident growth,
        // like any real reservation.
        const double predicted =
            cluster.pendingTasks() > 0 || force_pending_wave
                ? cluster.projectedDiskUsedMb() + 1.2 * wave_mb
                : 0.0;
        sc->setPerf(
            chaos.measure(std::max(peak_sensor.read(), predicted)));
        // Master computes the new value; MrCluster models the
        // master->slave propagation delay internally.
        cluster.setMinSpaceStart(
            std::max(0.0, chaos.actuate(sc->getConfReal())));
    };

    // Event-engine driver: cluster stepping, the control loop, and
    // metrics + job-phase bookkeeping as periodic events fired in
    // registration order each tick.
    sim::Clock sim_clock;
    sim::EventQueue events(sim_clock);
    std::vector<sim::EventId> loops;
    auto halt = [&loops, &events] {
        for (const sim::EventId id : loops)
            events.cancel(id);
    };

    double disk = 0.0; ///< max worker disk after this tick's step

    loops.push_back(events.schedulePeriodicAt(0, 1, [&] {
        cluster.step(sim_clock.now());
        disk = cluster.maxDiskUsedMb();
    }));

    if (sc) {
        loops.push_back(events.schedulePeriodicAt(
            0, opts_.control_period, [&] { invoke_control(false); }));
    }

    loops.push_back(events.schedulePeriodicAt(0, 1, [&] {
        const sim::Tick t = sim_clock.now();
        result.perf_series.record(t, disk);
        result.conf_series.record(t, cluster.minSpaceStart());
        result.tradeoff_series.record(
            t, static_cast<double>(tasks_done_before +
                                   cluster.completedTasks()));
        conf_sum += cluster.minSpaceStart();
        ++conf_samples;
        result.worst_goal_metric =
            std::max(result.worst_goal_metric, disk);

        if (cluster.ood()) {
            halt(); // a worker ran out of disk: the job is lost
            return;
        }

        if (cluster.jobDone()) {
            if (phase == 0) {
                phase = 1;
                tasks_done_before += cluster.completedTasks();
                cluster.submitJob(opts_.phase2_job, t);
                // The scheduler re-reads its configuration when a new
                // job arrives — before any of its tasks can start.
                if (sc)
                    invoke_control(true);
            } else {
                finished_at = t;
                halt();
            }
        }
    }));

    events.runUntil(opts_.max_ticks - 1);

    result.violated = cluster.ood();
    result.violation_time_s =
        cluster.ood()
            ? static_cast<double>(cluster.oodTick()) / kTicksPerSecond
            : -1.0;

    // Trade-off: makespan of the two jobs in seconds (lower is better).
    const double makespan_s =
        cluster.ood()
            ? static_cast<double>(opts_.max_ticks) / kTicksPerSecond
            : static_cast<double>(finished_at) / kTicksPerSecond;
    result.raw_tradeoff = makespan_s;
    result.tradeoff = makespan_s > 0.0 ? 1.0 / makespan_s : 0.0;
    result.mean_conf =
        conf_samples > 0 ? conf_sum / static_cast<double>(conf_samples)
                         : 0.0;
    result.ops_simulated =
        tasks_done_before + cluster.completedTasks();
    result.faults_injected = chaos.stats().injected();
    // Cluster shard counters span both job phases (they never reset on
    // submitJob), so they sum to ops_simulated.
    result.shard_ops.assign(cluster.shardOps().begin(),
                            cluster.shardOps().end());
    return result;
}

} // namespace smartconf::scenarios
