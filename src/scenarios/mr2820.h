#ifndef SMARTCONF_SCENARIOS_MR2820_H_
#define SMARTCONF_SCENARIOS_MR2820_H_

/**
 * @file
 * MR2820: `local.dir.minspacestart` decides whether a worker has enough
 * local disk to start another task.  Too small, out-of-disk failures;
 * too big, low utilization and job latency (conditional, direct, hard).
 *
 * This case exercises a *negative* controller gain: raising the
 * configuration lowers peak disk usage.  The configuration is computed
 * on the master and propagated to the workers with a delay, mirroring
 * the paper's note that MR2820 needed extra code to deliver the value
 * from the Master node to the Slave nodes (Table 7 "Others").
 */

#include "scenarios/scenario.h"
#include "sim/clock.h"
#include "workload/wordcount.h"

namespace smartconf::scenarios {

/** Cluster/job knobs for the MR2820 driver. */
struct Mr2820Options
{
    double disk_capacity_mb = 900.0;
    std::size_t workers = 2;
    double other_base_mb = 500.0;
    double other_walk_mb = 5.0;
    double other_max_mb = 620.0;
    sim::Tick task_duration = 40;
    sim::Tick fetch_delay = 70;
    sim::Tick max_ticks = 20000; ///< safety horizon for the whole run
    sim::Tick control_period = 1;

    /** Profiling job: WordCount(2G, 64MB, 1). */
    workload::WordCountJob profiling_job{2048.0, 64.0, 1, 1.0};
    /** Phase-1 job: WordCount(640MB, 64MB, 2). */
    workload::WordCountJob phase1_job{640.0, 64.0, 2, 1.0};
    /** Phase-2 job: WordCount(640MB, 128MB, 2). */
    workload::WordCountJob phase2_job{640.0, 128.0, 2, 1.0};
};

/** The MR2820 case study. */
class Mr2820Scenario : public Scenario
{
  public:
    Mr2820Scenario();
    explicit Mr2820Scenario(const Mr2820Options &opts);

    ProfileSummary profile(std::uint64_t seed) const override;
    ScenarioResult run(const Policy &policy,
                       std::uint64_t seed) const override;

    const Mr2820Options &options() const { return opts_; }

  private:
    Mr2820Options opts_;
};

} // namespace smartconf::scenarios

#endif // SMARTCONF_SCENARIOS_MR2820_H_
