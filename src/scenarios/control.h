#ifndef SMARTCONF_SCENARIOS_CONTROL_H_
#define SMARTCONF_SCENARIOS_CONTROL_H_

/**
 * @file
 * Shared wiring between scenarios and the SmartConf core.
 *
 * Every smart policy run follows the same recipe: declare the
 * configuration entry and goal in a fresh runtime, apply the policy's
 * ablation overrides (Fig. 7), install the profiling summary, and hand
 * out a SmartConf/SmartConfI handle.  This header centralizes that
 * recipe so the six scenario drivers stay small.
 */

#include <cstdint>
#include <memory>
#include <optional>

#include "core/runtime.h"
#include "fault/chaos.h"
#include "scenarios/scenario.h"

namespace smartconf::scenarios {

/** Declarative description of the controlled configuration. */
struct ControlSpec
{
    std::string conf_name;
    std::string metric_name;
    double initial = 0.0;
    double conf_min = 0.0;
    double conf_max = 1e18;
    double goal_value = 0.0;
    bool hard = false;
    bool super_hard = false;

    /** Deputy clamp when the controlled variable is not the config. */
    std::optional<double> deputy_min;
    std::optional<double> deputy_max;
};

/** Translate a Policy's ablation knobs into runtime overrides. */
ControllerOverrides overridesFor(const Policy &policy);

/**
 * Build a runtime ready for control: conf + goal declared, overrides
 * applied, profile installed (controller synthesized).
 */
std::unique_ptr<SmartConfRuntime> makeControlRuntime(
    const ControlSpec &spec, const Policy &policy,
    const ProfileSummary &summary);

/**
 * Build a runtime in profiling mode: conf + goal declared, no profile
 * yet.  Scenario profiling drives setPerf through it and then calls
 * finishProfiling.
 */
std::unique_ptr<SmartConfRuntime> makeProfilingRuntime(
    const ControlSpec &spec);

/**
 * Injector bundle for one evaluation run: active when the policy
 * carries a chaos campaign, otherwise the inactive (identity) hooks.
 * Every scenario control site threads its loop through the result:
 *
 *     if (!hooks.fire()) return;
 *     sc->setPerf(hooks.measure(reading), deputy);
 *     plant.apply(hooks.actuate(sc->getConf()));
 */
fault::ChaosHooks chaosHooksFor(const Policy &policy,
                                std::uint64_t run_seed);

} // namespace smartconf::scenarios

#endif // SMARTCONF_SCENARIOS_CONTROL_H_
