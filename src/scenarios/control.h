#ifndef SMARTCONF_SCENARIOS_CONTROL_H_
#define SMARTCONF_SCENARIOS_CONTROL_H_

/**
 * @file
 * Shared wiring between scenarios and the SmartConf core.
 *
 * Every smart policy run follows the same recipe: declare the
 * configuration entry and goal in a fresh runtime, apply the policy's
 * ablation overrides (Fig. 7), install the profiling summary, and hand
 * out a SmartConf/SmartConfI handle.  This header centralizes that
 * recipe so the six scenario drivers stay small.
 */

#include <memory>
#include <optional>

#include "core/runtime.h"
#include "scenarios/scenario.h"

namespace smartconf::scenarios {

/** Declarative description of the controlled configuration. */
struct ControlSpec
{
    std::string conf_name;
    std::string metric_name;
    double initial = 0.0;
    double conf_min = 0.0;
    double conf_max = 1e18;
    double goal_value = 0.0;
    bool hard = false;
    bool super_hard = false;

    /** Deputy clamp when the controlled variable is not the config. */
    std::optional<double> deputy_min;
    std::optional<double> deputy_max;
};

/** Translate a Policy's ablation knobs into runtime overrides. */
ControllerOverrides overridesFor(const Policy &policy);

/**
 * Build a runtime ready for control: conf + goal declared, overrides
 * applied, profile installed (controller synthesized).
 */
std::unique_ptr<SmartConfRuntime> makeControlRuntime(
    const ControlSpec &spec, const Policy &policy,
    const ProfileSummary &summary);

/**
 * Build a runtime in profiling mode: conf + goal declared, no profile
 * yet.  Scenario profiling drives setPerf through it and then calls
 * finishProfiling.
 */
std::unique_ptr<SmartConfRuntime> makeProfilingRuntime(
    const ControlSpec &spec);

} // namespace smartconf::scenarios

#endif // SMARTCONF_SCENARIOS_CONTROL_H_
