#include "scenarios/hd4995.h"

#include <algorithm>
#include <cmath>

#include "core/smartconf.h"
#include "dfs/namenode.h"
#include "scenarios/control.h"
#include "sim/event_queue.h"
#include "workload/sharded.h"

namespace smartconf::scenarios {

namespace {

constexpr double kTicksPerSecond = 10.0;
constexpr const char *kConfName = "content-summary.limit";
constexpr const char *kMetricName = "write_block_latency_max";

ScenarioInfo
makeInfo(const Hd4995Options &opts)
{
    ScenarioInfo info;
    info.id = "HD4995";
    info.system = "HDFS";
    info.conf_name = kConfName;
    info.metric_name = kMetricName;
    info.description =
        "content-summary.limit limits #files traversed before du "
        "releases the big lock.";
    info.constraint_desc = "Too big, write blocked for long";
    info.tradeoff_desc = "Too small, du latency hurts";
    info.conditional = true;
    info.direct = false;
    info.hard = false;
    info.profiling_workload = "TestDFSIO multi-client";
    info.phase1_workload = "multi-clients, 20s";
    info.phase2_workload = "multi-clients, 10s";
    // The original code held the lock for the entire traversal; the
    // patch exposed the limit but kept an effectively unbounded default.
    info.buggy_default = 5000000.0;
    info.patch_default = 5000000.0;
    info.profiling_settings = {400000.0, 1000000.0, 2000000.0,
                               4000000.0};
    for (double c = 200000.0; c <= 3000000.0; c += 200000.0)
        info.static_candidates.push_back(c);
    info.tradeoff_higher_better = false; // du latency: lower is better
    info.tradeoff_unit = "s";
    (void)opts;
    return info;
}

dfs::NamenodeParams
namenodeParams(const Hd4995Options &opts, double writes_per_tick)
{
    dfs::NamenodeParams np;
    np.traversal_files_per_tick = opts.traversal_files_per_tick;
    np.yield_overhead_ticks = opts.yield_overhead_ticks;
    np.write_service_per_tick = opts.write_service_per_tick;
    (void)writes_per_tick;
    return np;
}

workload::DfsioParams
dfsioParams(const Hd4995Options &opts, bool multi_client)
{
    workload::DfsioParams p;
    p.clients = multi_client ? opts.clients : 1;
    p.writes_per_tick =
        multi_client ? opts.writes_per_tick : opts.writes_per_tick / 6.0;
    p.burstiness = 0.25;
    p.du_period = opts.du_period;
    p.du_file_count = opts.du_files;
    return p;
}

ControlSpec
controlSpec(const Hd4995Options &opts)
{
    ControlSpec spec;
    spec.conf_name = kConfName;
    spec.metric_name = kMetricName;
    spec.initial = 100000.0;
    spec.conf_min = 20000.0;
    spec.conf_max = 10000000.0;
    spec.goal_value = opts.phase1_goal_ticks;
    spec.hard = false;
    // The controller operates on the lock-hold time in ticks.
    spec.deputy_min = 1.0;
    spec.deputy_max = 500.0;
    return spec;
}

/** Deputy (hold ticks) -> configuration (file count). */
std::unique_ptr<Transducer>
makeTransducer(const Hd4995Options &opts)
{
    const double rate = opts.traversal_files_per_tick;
    return std::make_unique<FunctionTransducer>(
        [rate](double hold_ticks) { return hold_ticks * rate; });
}

} // namespace

Hd4995Scenario::Hd4995Scenario() : Hd4995Scenario(Hd4995Options{}) {}

Hd4995Scenario::Hd4995Scenario(const Hd4995Options &opts)
    : Scenario(makeInfo(opts)), opts_(opts)
{}

ProfileSummary
Hd4995Scenario::profile(std::uint64_t seed) const
{
    auto rt = makeProfilingRuntime(controlSpec(opts_));
    SmartConfI sc(*rt, kConfName, makeTransducer(opts_));

    for (const double setting : info_.profiling_settings) {
        sim::Rng rng(seed ^ static_cast<std::uint64_t>(setting));
        dfs::Namenode nn(namenodeParams(opts_, opts_.writes_per_tick),
                         static_cast<std::uint64_t>(setting));
        rt->setCurrentValue(kConfName, setting);
        // Profiling runs the same TestDFSIO client mix the evaluation
        // uses, so the fitted gain reflects the full queue-drain effect.
        workload::ShardedDfsioGenerator gen(dfsioParams(opts_, true),
                                     rng.fork(2));

        // A chunk's worst write wait is only fully known once the write
        // backlog it created has drained; pair (hold, wait) then.
        int samples = 0;
        std::uint64_t chunks_seen = 0;
        double pending_hold = -1.0;
        const double full_hold =
            setting / opts_.traversal_files_per_tick;
        std::vector<workload::DfsRequest> reqs; ///< reused buffer
        for (sim::Tick t = 0; samples < 10; ++t) {
            gen.tickInto(t, reqs);
            nn.submitAll(reqs, t);
            nn.step(t);
            if (nn.chunksCompleted() > chunks_seen) {
                chunks_seen = nn.chunksCompleted();
                // Skip partial (final) chunks: their hold does not
                // reflect the configured limit.
                pending_hold = nn.lastHoldTicks() >= 0.9 * full_hold
                                   ? nn.lastHoldTicks()
                                   : -1.0;
            } else if (pending_hold > 0.0 && nn.pendingWrites() == 0) {
                const double wait = nn.takeRecentMaxWait();
                if (wait > 0.0) {
                    sc.setPerf(wait, pending_hold);
                    ++samples;
                }
                pending_hold = -1.0;
            }
        }
    }
    return rt->finishProfiling(kConfName);
}

ScenarioResult
Hd4995Scenario::run(const Policy &policy, std::uint64_t seed) const
{
    ScenarioResult result;
    result.scenario_id = info_.id;
    result.policy_label = policy.label;
    result.goal_value = opts_.phase2_goal_ticks;
    result.perf_series = sim::TimeSeries("write_wait_ticks");
    result.conf_series = sim::TimeSeries("content-summary.limit");
    result.tradeoff_series = sim::TimeSeries("du_latency_ticks");
    // perf/tradeoff record per chunk / per du; conf records every tick.
    result.conf_series.reserve(
        static_cast<std::size_t>(opts_.total_ticks));

    std::unique_ptr<SmartConfRuntime> rt;
    std::unique_ptr<SmartConfI> sc;
    double initial_limit;
    if (policy.isSmart()) {
        const ProfileSummary summary = profile(seed ^ 0x4995);
        rt = makeControlRuntime(controlSpec(opts_), policy, summary);
        sc = std::make_unique<SmartConfI>(*rt, kConfName,
                                          makeTransducer(opts_));
        initial_limit = 100000.0;
    } else {
        initial_limit = policy.value;
    }

    sim::Rng rng(seed);
    dfs::Namenode nn(namenodeParams(opts_, opts_.writes_per_tick),
                     static_cast<std::uint64_t>(initial_limit));
    workload::ShardedDfsioGenerator gen(dfsioParams(opts_, true), rng.fork(2));

    const fault::ChaosHooks chaos = chaosHooksFor(policy, seed);
    chaos.seedActuation(initial_limit);

    double active_goal = opts_.phase1_goal_ticks;
    bool goal_changed = false;
    bool violated = false;
    double violation_tick = -1.0;
    double worst_wait = 0.0;
    double last_wait = -1.0, last_hold = -1.0;
    double prev_hold = -1.0;
    std::uint64_t chunks_seen = 0;
    std::size_t du_seen = 0;
    double conf_sum = 0.0;
    std::int64_t conf_samples = 0;

    // Event-engine driver: the goal switch, request arrivals + namenode
    // stepping, the per-chunk conditional control step, and metrics are
    // separate periodic events fired in registration order each tick.
    sim::Clock sim_clock;
    sim::EventQueue events(sim_clock);
    std::vector<workload::DfsRequest> reqs; ///< reused arrival buffer

    events.schedulePeriodicAt(0, 1, [&] {
        const sim::Tick t = sim_clock.now();
        if (!goal_changed && t >= opts_.phase1_ticks) {
            goal_changed = true;
            active_goal = opts_.phase2_goal_ticks;
            if (sc) {
                sc->setGoal(active_goal);
                // Re-evaluate immediately so the next du chunk already
                // honours the tightened constraint.
                if (last_wait > 0.0 && chaos.fire()) {
                    sc->setPerf(chaos.measure(last_wait), last_hold);
                    nn.setSummaryLimit(static_cast<std::uint64_t>(
                        std::max(20000.0,
                                 chaos.actuate(sc->getConfReal()))));
                }
            }
        }
    });

    events.schedulePeriodicAt(0, 1, [&] {
        const sim::Tick t = sim_clock.now();
        gen.tickInto(t, reqs);
        nn.submitAll(reqs, t);
        nn.step(t);
    });

    events.schedulePeriodicAt(0, 1, [&] {
        const sim::Tick t = sim_clock.now();
        // Conditional control: invoked per completed du chunk.  The
        // waits measured since the previous chunk ended belong to that
        // previous chunk's lock hold; pair them accordingly.
        if (nn.chunksCompleted() > chunks_seen) {
            chunks_seen = nn.chunksCompleted();
            const double wait = nn.takeRecentMaxWait();
            if (wait > 0.0 && prev_hold > 0.0) {
                worst_wait = std::max(worst_wait, wait);
                result.perf_series.record(t, wait);
                if (wait > active_goal * 1.05 + 1.0 && !violated) {
                    violated = true;
                    violation_tick = static_cast<double>(t);
                }
                last_wait = wait;
                last_hold = prev_hold;
                if (sc && chaos.fire()) {
                    sc->setPerf(chaos.measure(wait), prev_hold);
                    nn.setSummaryLimit(static_cast<std::uint64_t>(
                        std::max(20000.0,
                                 chaos.actuate(sc->getConfReal()))));
                }
            }
            prev_hold = nn.lastHoldTicks();
        }
    });

    events.schedulePeriodicAt(0, 1, [&] {
        const sim::Tick t = sim_clock.now();
        while (du_seen < nn.duResults().size()) {
            result.tradeoff_series.record(
                t, nn.duResults()[du_seen].latency_ticks);
            ++du_seen;
        }
        result.conf_series.record(
            t, static_cast<double>(nn.summaryLimit()));
        conf_sum += static_cast<double>(nn.summaryLimit());
        ++conf_samples;
    });

    events.runUntil(opts_.total_ticks - 1);

    result.violated = violated;
    result.violation_time_s =
        violated ? violation_tick / kTicksPerSecond : -1.0;
    result.worst_goal_metric = worst_wait;

    // Trade-off: mean du latency in seconds (lower is better).
    double du_sum = 0.0;
    for (const auto &du : nn.duResults())
        du_sum += du.latency_ticks;
    const double du_mean_s =
        nn.duResults().empty()
            ? static_cast<double>(opts_.total_ticks) / kTicksPerSecond
            : du_sum / static_cast<double>(nn.duResults().size()) /
                  kTicksPerSecond;
    result.raw_tradeoff = du_mean_s;
    result.tradeoff = du_mean_s > 0.0 ? 1.0 / du_mean_s : 0.0;
    result.mean_conf =
        conf_samples > 0 ? conf_sum / static_cast<double>(conf_samples)
                         : 0.0;
    result.ops_simulated = gen.generated();
    result.faults_injected = chaos.stats().injected();
    result.shard_ops.assign(gen.shardOps().begin(),
                            gen.shardOps().end());
    return result;
}

} // namespace smartconf::scenarios
