#include "scenarios/hb3813.h"

#include <algorithm>
#include <cmath>

#include "core/smartconf.h"
#include "kvstore/server.h"
#include "scenarios/control.h"
#include "sim/event_queue.h"
#include "workload/phases.h"
#include "workload/sharded.h"

namespace smartconf::scenarios {

namespace {

constexpr double kTicksPerSecond = 10.0;
constexpr const char *kConfName = "ipc.server.max.queue.size";
constexpr const char *kMetricName = "memory_consumption_max";

ScenarioInfo
makeInfo(const Hb3813Options &opts)
{
    ScenarioInfo info;
    info.id = "HB3813";
    info.system = "HBase";
    info.conf_name = kConfName;
    info.metric_name = kMetricName;
    info.description =
        "ipc.server.max.queue.size limits RPC-call queue size.";
    info.constraint_desc = "Too big, OOM";
    info.tradeoff_desc = "Too small, read/write throughput hurts";
    info.conditional = false;
    info.direct = false;
    info.hard = true;
    info.profiling_workload = "YCSB 1.0W, 1MB";
    info.phase1_workload = "1.0W, 1MB";
    info.phase2_workload = "1.0W, 2MB";
    info.buggy_default = 1000.0; // old default: OOM almost immediately
    info.patch_default = 100.0;  // patched default: OOM in phase 2
    info.profiling_settings = {40.0, 80.0, 120.0, 160.0};
    for (double c = 30.0; c <= 200.0; c += 10.0)
        info.static_candidates.push_back(c);
    info.tradeoff_higher_better = true;
    info.tradeoff_unit = "ops/s";
    (void)opts;
    return info;
}

kvstore::KvServerParams
serverParams(const Hb3813Options &opts, std::size_t initial_queue)
{
    kvstore::KvServerParams sp;
    sp.heap_mb = opts.heap_mb;
    sp.request_queue_items = initial_queue;
    sp.response_queue_mb = 10000.0; // responses are not the story here
    sp.service_ops_per_tick = opts.service_ops_per_tick;
    sp.network_mb_per_tick = 10.0;
    sp.response_size_factor = 1.0;
    sp.other_base_mb = 200.0;
    sp.other_walk_mb = 9.0;
    sp.other_max_mb = 330.0;
    return sp;
}

/** Oscillating arrival rate: bursts above service, lulls below. */
double
arrivalRate(const Hb3813Options &opts, sim::Tick t)
{
    constexpr double kTwoPi = 6.28318530717958647;
    const double fast = kTwoPi * static_cast<double>(t) /
                        static_cast<double>(opts.arrival_period);
    const double slow = kTwoPi * static_cast<double>(t) /
                        static_cast<double>(opts.arrival_period2);
    return std::max(0.0, opts.arrival_base +
                             opts.arrival_amp * std::sin(fast) +
                             opts.arrival_amp2 * std::sin(slow));
}

workload::YcsbParams
ycsbParams(const Hb3813Options &opts, double req_mb, double rate)
{
    workload::YcsbParams p;
    p.write_fraction = opts.write_fraction;
    p.request_size_mb = req_mb;
    p.ops_per_tick = rate;
    p.burstiness = 0.25;
    return p;
}

ControlSpec
controlSpec(const Hb3813Options &opts)
{
    ControlSpec spec;
    spec.conf_name = kConfName;
    spec.metric_name = kMetricName;
    spec.initial = 0.0; // deliberately poor start (Fig. 6c)
    spec.conf_min = 0.0;
    spec.conf_max = 5000.0;
    spec.goal_value = opts.heap_mb;
    spec.hard = true;
    return spec;
}

} // namespace

Hb3813Scenario::Hb3813Scenario() : Hb3813Scenario(Hb3813Options{}) {}

Hb3813Scenario::Hb3813Scenario(const Hb3813Options &opts)
    : Scenario(makeInfo(opts)), opts_(opts)
{}

ProfileSummary
Hb3813Scenario::profile(std::uint64_t seed) const
{
    auto rt = makeProfilingRuntime(controlSpec(opts_));
    SmartConfI sc(*rt, kConfName);

    // One continuous profiling run that steps through the settings in
    // place (the paper "tries 4 different settings of C"): keeping the
    // same server alive means slow environmental drift cannot be
    // mistaken for a per-setting effect.
    sim::Rng rng(seed);
    kvstore::KvServer server(
        serverParams(opts_, static_cast<std::size_t>(
                                info_.profiling_settings.front())),
        rng.fork(1));
    workload::ShardedYcsbGenerator gen(
        ycsbParams(opts_, opts_.phase1_req_mb, opts_.arrival_base),
        rng.fork(2));

    sim::Tick t = 0;
    std::vector<workload::Op> ops; ///< reused arrival buffer
    for (const double setting : info_.profiling_settings) {
        server.requestQueue().setMaxItems(
            static_cast<std::size_t>(setting));
        rt->setCurrentValue(kConfName, setting);

        const sim::Tick warmup = t + 100;
        const sim::Tick sample_every = 10;
        int samples = 0;
        for (; samples < opts_.profile_samples; ++t) {
            gen.setOpsPerTick(arrivalRate(opts_, t));
            gen.tickInto(ops);
            server.accept(ops, t);
            server.step(t);
            if (t >= warmup && t % sample_every == 0) {
                // Paper: a measurement is taken every time an RPC request
                // is enqueued; we sample at a fixed cadence instead.
                sc.setPerf(server.heap().usedMb(),
                           static_cast<double>(
                               server.requestQueue().size()));
                ++samples;
            }
        }
    }
    return rt->finishProfiling(kConfName);
}

ScenarioResult
Hb3813Scenario::run(const Policy &policy, std::uint64_t seed) const
{
    ScenarioResult result;
    result.scenario_id = info_.id;
    result.policy_label = policy.label;
    result.goal_value = opts_.heap_mb;
    result.perf_series = sim::TimeSeries("used_memory_mb");
    result.conf_series = sim::TimeSeries("max.queue.size");
    result.tradeoff_series = sim::TimeSeries("completed_ops");
    result.perf_series.reserve(
        static_cast<std::size_t>(opts_.total_ticks));
    result.conf_series.reserve(
        static_cast<std::size_t>(opts_.total_ticks));
    result.tradeoff_series.reserve(
        static_cast<std::size_t>(opts_.total_ticks));

    // Smart policies synthesize their controller from a separate
    // profiling run (different seed: profiling != evaluation workload).
    std::unique_ptr<SmartConfRuntime> rt;
    std::unique_ptr<SmartConfI> sc;
    std::size_t initial_queue;
    if (policy.isSmart()) {
        const ProfileSummary summary = profile(seed ^ 0x70F11E);
        rt = makeControlRuntime(controlSpec(opts_), policy, summary);
        sc = std::make_unique<SmartConfI>(*rt, kConfName);
        initial_queue = 0;
    } else {
        initial_queue = static_cast<std::size_t>(policy.value);
    }

    sim::Rng rng(seed);
    kvstore::KvServer server(serverParams(opts_, initial_queue),
                             rng.fork(1));
    workload::ShardedYcsbGenerator gen(
        ycsbParams(opts_, opts_.phase1_req_mb, opts_.arrival_base),
        rng.fork(2));

    workload::PhasedSchedule<double> req_size(opts_.phase1_req_mb);
    req_size.addPhase(opts_.phase1_ticks, opts_.phase2_req_mb);

    double conf_sum = 0.0;
    std::int64_t conf_samples = 0;

    // The run is driven by the event engine: each concern — workload
    // arrivals + server stepping, the control loop, metrics sampling —
    // is a periodic event rearming in place every cycle.  Registration
    // order fixes the intra-tick order (arrivals/step, then control,
    // then metrics), matching the sequential driver this replaces.
    sim::Clock sim_clock;
    sim::EventQueue events(sim_clock);
    std::vector<sim::EventId> loops;
    auto halt = [&loops, &events] {
        for (const sim::EventId id : loops)
            events.cancel(id);
    };

    double mem = 0.0; ///< heap usage after this tick's server step
    std::vector<workload::Op> ops; ///< reused arrival buffer
    const kvstore::JvmHeap::Slot compaction_slot =
        server.heap().slot("compaction");

    loops.push_back(events.schedulePeriodicAt(0, 1, [&] {
        const sim::Tick t = sim_clock.now();
        gen.setRequestSizeMb(req_size.at(t));
        gen.setOpsPerTick(arrivalRate(opts_, t));

        gen.tickInto(ops);
        server.accept(ops, t, gen.lastSeq());
        server.step(t);
        if (opts_.spike_mb > 0.0 && t >= opts_.spike_at) {
            const double progress =
                static_cast<double>(t - opts_.spike_at) /
                static_cast<double>(std::max<sim::Tick>(
                    1, opts_.spike_ramp));
            server.heap().set(
                compaction_slot,
                opts_.spike_mb * std::min(1.0, progress));
            server.heap().checkOom(t);
        }
        mem = server.heap().usedMb();
    }));

    const fault::ChaosHooks chaos = chaosHooksFor(policy, seed);
    chaos.seedActuation(static_cast<double>(initial_queue));

    if (sc) {
        loops.push_back(events.schedulePeriodicAt(
            0, opts_.control_period, [&] {
                if (!chaos.fire())
                    return;
                sc->setPerf(chaos.measure(mem),
                            static_cast<double>(
                                server.requestQueue().size()));
                const int next = static_cast<int>(chaos.actuate(
                    static_cast<double>(sc->getConf())));
                server.requestQueue().setMaxItems(
                    static_cast<std::size_t>(std::max(0, next)));
            }));
    }

    loops.push_back(events.schedulePeriodicAt(0, 1, [&] {
        const sim::Tick t = sim_clock.now();
        result.perf_series.record(t, mem);
        result.conf_series.record(
            t, static_cast<double>(server.requestQueue().maxItems()));
        result.tradeoff_series.record(
            t, static_cast<double>(server.completedOps()));
        conf_sum += static_cast<double>(server.requestQueue().maxItems());
        ++conf_samples;
        result.worst_goal_metric =
            std::max(result.worst_goal_metric, mem);

        if (server.crashed())
            halt(); // region server died with OutOfMemoryError
    }));

    events.runUntil(opts_.total_ticks - 1);

    result.violated = server.crashed();
    result.violation_time_s =
        server.crashed()
            ? static_cast<double>(server.heap().oomTick()) /
                  kTicksPerSecond
            : -1.0;
    const double duration_s =
        static_cast<double>(opts_.total_ticks) / kTicksPerSecond;
    result.raw_tradeoff =
        static_cast<double>(server.completedOps()) / duration_s;
    result.tradeoff = result.raw_tradeoff;
    result.mean_conf =
        conf_samples > 0 ? conf_sum / static_cast<double>(conf_samples)
                         : 0.0;
    result.ops_simulated = gen.generated();
    result.faults_injected = chaos.stats().injected();
    result.shard_ops.assign(gen.shardOps().begin(),
                            gen.shardOps().end());
    return result;
}

} // namespace smartconf::scenarios
