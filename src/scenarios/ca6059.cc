#include "scenarios/ca6059.h"

#include <algorithm>
#include <cmath>

#include "core/smartconf.h"
#include "kvstore/heap.h"
#include "kvstore/memtable.h"
#include "scenarios/control.h"
#include "sim/event_queue.h"
#include "workload/phases.h"
#include "workload/sharded.h"

namespace smartconf::scenarios {

namespace {

constexpr double kTicksPerSecond = 10.0;
constexpr const char *kConfName = "memtable_total_space_in_mb";
constexpr const char *kMetricName = "memory_consumption_max";
constexpr double kBlockedLatency = 10.0; ///< penalty charged to a block

ScenarioInfo
makeInfo()
{
    ScenarioInfo info;
    info.id = "CA6059";
    info.system = "Cassandra";
    info.conf_name = kConfName;
    info.metric_name = kMetricName;
    info.description =
        "memtable_total_space_in_mb limits the memtable size.";
    info.constraint_desc = "Too big, OOM";
    info.tradeoff_desc = "Too small, write latency hurts";
    info.conditional = false;
    info.direct = false;
    info.hard = true;
    info.profiling_workload = "YCSB-A 0.5W, 1MB";
    info.phase1_workload = "1.0W, 1MB, C0";
    info.phase2_workload = "0.9W, 1MB, C0.5";
    info.buggy_default = 300.0; // conservative-looking, OOMs in phase 2
    info.patch_default = 100.0; // survives, but write latency suffers
    info.profiling_settings = {50.0, 100.0, 150.0, 200.0};
    for (double c = 60.0; c <= 260.0; c += 20.0)
        info.static_candidates.push_back(c);
    info.tradeoff_higher_better = false; // latency: lower is better
    info.tradeoff_unit = "ticks";
    return info;
}

kvstore::MemtableParams
memtableParams()
{
    kvstore::MemtableParams mp;
    mp.flush_rate_mb_per_tick = 25.0;
    mp.flush_penalty = 4.0;
    mp.base_write_latency = 1.0;
    mp.emergency_headroom = 1.25;
    mp.flush_stall_ticks = 3.0;
    return mp;
}

workload::YcsbParams
ycsbParams(const Ca6059Options &opts, double write_frac)
{
    workload::YcsbParams p;
    p.write_fraction = write_frac;
    p.request_size_mb = opts.request_size_mb;
    p.ops_per_tick = opts.ops_per_tick;
    p.burstiness = 0.3;
    return p;
}

ControlSpec
controlSpec(const Ca6059Options &opts)
{
    ControlSpec spec;
    spec.conf_name = kConfName;
    spec.metric_name = kMetricName;
    spec.initial = 16.0;
    spec.conf_min = 8.0;
    spec.conf_max = 2000.0;
    spec.goal_value = opts.heap_mb;
    spec.hard = true;
    return spec;
}

/** Bounded random walk for the non-memtable heap. */
double
otherWalk(const Ca6059Options &opts, sim::Rng &rng, double current)
{
    const double next = current + rng.uniform(-opts.other_walk_mb,
                                              opts.other_walk_mb);
    return std::clamp(next, opts.other_base_mb * 0.8, opts.other_max_mb);
}

} // namespace

Ca6059Scenario::Ca6059Scenario() : Ca6059Scenario(Ca6059Options{}) {}

Ca6059Scenario::Ca6059Scenario(const Ca6059Options &opts)
    : Scenario(makeInfo()), opts_(opts)
{}

ProfileSummary
Ca6059Scenario::profile(std::uint64_t seed) const
{
    auto rt = makeProfilingRuntime(controlSpec(opts_));
    SmartConfI sc(*rt, kConfName);

    for (const double setting : info_.profiling_settings) {
        sim::Rng rng(seed ^ static_cast<std::uint64_t>(setting) * 131);
        kvstore::JvmHeap heap(opts_.heap_mb);
        kvstore::Memtable memtable(setting, memtableParams());
        rt->setCurrentValue(kConfName, setting);
        // Profiling uses the standard YCSB-A 50/50 mix (Sec. 6.1).
        workload::ShardedYcsbGenerator gen(ycsbParams(opts_, 0.5), rng.fork(2));

        double other = opts_.other_base_mb;
        const sim::Tick warmup = 50;
        int samples = 0;
        std::uint64_t flushes_seen = 0;
        std::vector<workload::Op> ops; ///< reused arrival buffer
        const kvstore::JvmHeap::Slot other_slot = heap.slot("other");
        const kvstore::JvmHeap::Slot memtable_slot =
            heap.slot("memtable");
        for (sim::Tick t = 0; samples < 10; ++t) {
            other = otherWalk(opts_, rng, other);
            gen.tickInto(ops);
            for (const auto &op : ops) {
                if (op.type == workload::Op::Type::Write)
                    memtable.write(op.size_mb, t);
            }
            memtable.step(t);
            heap.set(other_slot, other);
            heap.set(memtable_slot, memtable.occupancyMb());
            // The configuration is *used* when a flush-or-not decision
            // is made; profiling samples at those instants (occupancy
            // at the cap), mirroring "every time C is used".
            if (t >= warmup && memtable.flushCount() > flushes_seen) {
                flushes_seen = memtable.flushCount();
                sc.setPerf(heap.usedMb(), memtable.occupancyMb());
                ++samples;
            }
            if (t < warmup)
                flushes_seen = memtable.flushCount();
        }
    }
    return rt->finishProfiling(kConfName);
}

ScenarioResult
Ca6059Scenario::run(const Policy &policy, std::uint64_t seed) const
{
    ScenarioResult result;
    result.scenario_id = info_.id;
    result.policy_label = policy.label;
    result.goal_value = opts_.heap_mb;
    result.perf_series = sim::TimeSeries("used_memory_mb");
    result.conf_series = sim::TimeSeries("memtable_total_space_in_mb");
    result.tradeoff_series = sim::TimeSeries("avg_write_latency");
    result.perf_series.reserve(
        static_cast<std::size_t>(opts_.total_ticks));
    result.conf_series.reserve(
        static_cast<std::size_t>(opts_.total_ticks));
    result.tradeoff_series.reserve(
        static_cast<std::size_t>(opts_.total_ticks));

    std::unique_ptr<SmartConfRuntime> rt;
    std::unique_ptr<SmartConfI> sc;
    double initial_cap;
    if (policy.isSmart()) {
        const ProfileSummary summary = profile(seed ^ 0x6059);
        rt = makeControlRuntime(controlSpec(opts_), policy, summary);
        sc = std::make_unique<SmartConfI>(*rt, kConfName);
        initial_cap = 16.0;
    } else {
        initial_cap = policy.value;
    }

    sim::Rng rng(seed);
    sim::Rng walk_rng = rng.fork(1);
    kvstore::JvmHeap heap(opts_.heap_mb);
    kvstore::Memtable memtable(initial_cap, memtableParams());
    workload::ShardedYcsbGenerator gen(
        ycsbParams(opts_, opts_.phase1_write_fraction), rng.fork(2));

    workload::PhasedSchedule<double> write_frac(
        opts_.phase1_write_fraction);
    write_frac.addPhase(opts_.phase1_ticks, opts_.phase2_write_fraction);
    workload::PhasedSchedule<double> cache_ratio(0.0);
    cache_ratio.addPhase(opts_.phase1_ticks, opts_.phase2_cache_ratio);

    double other = opts_.other_base_mb;
    double cache = 0.0;
    double latency_sum = 0.0;
    std::int64_t latency_count = 0;
    double conf_sum = 0.0;
    std::int64_t conf_samples = 0;

    // Event-engine driver: workload + memtable stepping, the control
    // loop, and metrics sampling each run as a periodic event rearmed
    // in place.  Registration order fixes the intra-tick order to the
    // sequential driver's statement order.
    sim::Clock sim_clock;
    sim::EventQueue events(sim_clock);
    std::vector<sim::EventId> loops;
    auto halt = [&loops, &events] {
        for (const sim::EventId id : loops)
            events.cancel(id);
    };

    double mem = 0.0; ///< heap usage after this tick's accounting
    std::vector<workload::Op> ops; ///< reused arrival buffer
    const kvstore::JvmHeap::Slot other_slot = heap.slot("other");
    const kvstore::JvmHeap::Slot cache_slot = heap.slot("cache");
    const kvstore::JvmHeap::Slot memtable_slot = heap.slot("memtable");

    loops.push_back(events.schedulePeriodicAt(0, 1, [&] {
        const sim::Tick t = sim_clock.now();
        gen.setWriteFraction(write_frac.at(t));

        // Read index cache warms gradually toward its target share.
        const double cache_target =
            cache_ratio.at(t) * opts_.cache_full_mb;
        if (cache < cache_target) {
            cache = std::min(cache_target,
                             cache + opts_.cache_fill_per_tick);
        }
        other = otherWalk(opts_, walk_rng, other);

        gen.tickInto(ops);
        for (const auto &op : ops) {
            if (op.type != workload::Op::Type::Write)
                continue;
            const double lat = memtable.write(op.size_mb, t);
            latency_sum += lat < 0.0 ? kBlockedLatency : lat;
            ++latency_count;
        }
        memtable.step(t);

        heap.set(other_slot, other);
        heap.set(cache_slot, cache);
        heap.set(memtable_slot, memtable.occupancyMb());
        heap.checkOom(t);
        mem = heap.usedMb();
    }));

    const fault::ChaosHooks chaos = chaosHooksFor(policy, seed);
    chaos.seedActuation(initial_cap);

    if (sc) {
        loops.push_back(events.schedulePeriodicAt(
            0, opts_.control_period, [&] {
                if (!chaos.fire())
                    return;
                sc->setPerf(chaos.measure(mem),
                            memtable.occupancyMb());
                memtable.setCapMb(std::max(
                    8.0, chaos.actuate(sc->getConfReal())));
            }));
    }

    loops.push_back(events.schedulePeriodicAt(0, 1, [&] {
        const sim::Tick t = sim_clock.now();
        result.perf_series.record(t, mem);
        result.conf_series.record(t, memtable.capMb());
        conf_sum += memtable.capMb();
        ++conf_samples;
        const double avg_lat =
            latency_count > 0
                ? latency_sum / static_cast<double>(latency_count)
                : 0.0;
        result.tradeoff_series.record(t, avg_lat);
        result.worst_goal_metric =
            std::max(result.worst_goal_metric, mem);

        if (heap.oom())
            halt(); // Cassandra node died with OutOfMemoryError
    }));

    events.runUntil(opts_.total_ticks - 1);

    result.violated = heap.oom();
    result.violation_time_s =
        heap.oom()
            ? static_cast<double>(heap.oomTick()) / kTicksPerSecond
            : -1.0;
    result.raw_tradeoff =
        latency_count > 0
            ? latency_sum / static_cast<double>(latency_count)
            : kBlockedLatency;
    // Canonical trade-off score is higher-is-better: invert latency.
    result.tradeoff =
        result.raw_tradeoff > 0.0 ? 1.0 / result.raw_tradeoff : 0.0;
    result.mean_conf =
        conf_samples > 0 ? conf_sum / static_cast<double>(conf_samples)
                         : 0.0;
    result.ops_simulated = gen.generated();
    result.faults_injected = chaos.stats().injected();
    result.shard_ops.assign(gen.shardOps().begin(),
                            gen.shardOps().end());
    return result;
}

} // namespace smartconf::scenarios
