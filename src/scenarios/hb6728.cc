#include "scenarios/hb6728.h"

#include <algorithm>
#include <cmath>

#include "core/smartconf.h"
#include "kvstore/memtable.h"
#include "kvstore/server.h"
#include "scenarios/control.h"
#include "sim/event_queue.h"
#include "workload/phases.h"
#include "workload/sharded.h"

namespace smartconf::scenarios {

namespace {

constexpr double kTicksPerSecond = 10.0;
constexpr const char *kConfName = "ipc.server.response.queue.maxsize";
constexpr const char *kMetricName = "memory_consumption_max";

ScenarioInfo
makeInfo()
{
    ScenarioInfo info;
    info.id = "HB6728";
    info.system = "HBase";
    info.conf_name = kConfName;
    info.metric_name = kMetricName;
    info.description =
        "ipc.server.response.queue.maxsize limits RPC-response queue "
        "size.";
    info.constraint_desc = "Too big, OOM";
    info.tradeoff_desc = "Too small, read/write throughput hurts";
    info.conditional = false;
    info.direct = false;
    info.hard = true;
    info.profiling_workload = "YCSB 0.0W, 2MB";
    info.phase1_workload = "0.0W, 2MB";
    info.phase2_workload = "0.3W, 2MB";
    info.buggy_default = 100000.0; // originally unbounded
    info.patch_default = 1024.0;   // 1 GB; still fails
    info.profiling_settings = {30.0, 60.0, 90.0, 120.0};
    for (double c = 40.0; c <= 240.0; c += 20.0)
        info.static_candidates.push_back(c);
    info.tradeoff_higher_better = true;
    info.tradeoff_unit = "ops/s";
    return info;
}

kvstore::KvServerParams
serverParams(const Hb6728Options &opts, double initial_resp_mb)
{
    kvstore::KvServerParams sp;
    sp.heap_mb = opts.heap_mb;
    sp.request_queue_items = opts.request_queue_items;
    sp.response_queue_mb = initial_resp_mb;
    sp.service_ops_per_tick = 12.0;
    sp.network_mb_per_tick = opts.network_mb_per_tick;
    sp.response_size_factor = 1.0;
    sp.other_base_mb = 200.0;
    sp.other_walk_mb = 9.0;
    sp.other_max_mb = 310.0;
    sp.request_timeout = opts.request_timeout;
    return sp;
}

double
arrivalRate(const Hb6728Options &opts, sim::Tick t)
{
    constexpr double kTwoPi = 6.28318530717958647;
    const double fast = kTwoPi * static_cast<double>(t) /
                        static_cast<double>(opts.arrival_period);
    const double slow = kTwoPi * static_cast<double>(t) /
                        static_cast<double>(opts.arrival_period2);
    return std::max(0.0, opts.arrival_base +
                             opts.arrival_amp * std::sin(fast) +
                             opts.arrival_amp2 * std::sin(slow));
}

workload::YcsbParams
ycsbParams(const Hb6728Options &opts, double write_frac, double rate)
{
    workload::YcsbParams p;
    p.write_fraction = write_frac;
    p.request_size_mb = opts.request_size_mb;
    p.ops_per_tick = rate;
    p.burstiness = 0.25;
    return p;
}

ControlSpec
controlSpec(const Hb6728Options &opts)
{
    ControlSpec spec;
    spec.conf_name = kConfName;
    spec.metric_name = kMetricName;
    spec.initial = 8.0;
    spec.conf_min = 1.0;
    spec.conf_max = 100000.0;
    spec.goal_value = opts.heap_mb;
    spec.hard = true;
    return spec;
}

} // namespace

Hb6728Scenario::Hb6728Scenario() : Hb6728Scenario(Hb6728Options{}) {}

Hb6728Scenario::Hb6728Scenario(const Hb6728Options &opts)
    : Scenario(makeInfo()), opts_(opts)
{}

ProfileSummary
Hb6728Scenario::profile(std::uint64_t seed) const
{
    auto rt = makeProfilingRuntime(controlSpec(opts_));
    SmartConfI sc(*rt, kConfName);

    for (const double setting : info_.profiling_settings) {
        sim::Rng rng(seed ^ static_cast<std::uint64_t>(setting) * 977);
        kvstore::KvServer server(serverParams(opts_, setting),
                                 rng.fork(1));
        rt->setCurrentValue(kConfName, setting);
        workload::ShardedYcsbGenerator gen(
            ycsbParams(opts_, opts_.phase1_write_fraction,
                       opts_.arrival_base),
            rng.fork(2));

        const sim::Tick warmup = 100;
        int samples = 0;
        sim::Tick last_sample = -100;
        std::vector<workload::Op> ops; ///< reused arrival buffer
        for (sim::Tick t = 0; samples < 10; ++t) {
            gen.setOpsPerTick(arrivalRate(opts_, t));
            gen.tickInto(ops);
            server.accept(ops, t);
            server.step(t);
            // The threshold is *used* when responses queue against it;
            // sample at instants where the bound binds (queue more than
            // half full), spaced at least 5 ticks apart.  After a long
            // quiet stretch fall back to periodic sampling so profiling
            // always terminates.
            const bool binding =
                server.responseQueue().bytesMb() >= 0.5 * setting;
            const bool fallback = t > 3000 && t % 10 == 0;
            if (t >= warmup && t - last_sample >= 5 &&
                (binding || fallback)) {
                sc.setPerf(server.heap().usedMb(),
                           server.responseQueue().bytesMb());
                ++samples;
                last_sample = t;
            }
        }
    }
    return rt->finishProfiling(kConfName);
}

ScenarioResult
Hb6728Scenario::run(const Policy &policy, std::uint64_t seed) const
{
    ScenarioResult result;
    result.scenario_id = info_.id;
    result.policy_label = policy.label;
    result.goal_value = opts_.heap_mb;
    result.perf_series = sim::TimeSeries("used_memory_mb");
    result.conf_series = sim::TimeSeries("response.queue.maxsize");
    result.tradeoff_series = sim::TimeSeries("completed_ops");
    result.perf_series.reserve(
        static_cast<std::size_t>(opts_.total_ticks));
    result.conf_series.reserve(
        static_cast<std::size_t>(opts_.total_ticks));
    result.tradeoff_series.reserve(
        static_cast<std::size_t>(opts_.total_ticks));

    std::unique_ptr<SmartConfRuntime> rt;
    std::unique_ptr<SmartConfI> sc;
    double initial_resp;
    if (policy.isSmart()) {
        const ProfileSummary summary = profile(seed ^ 0x6728);
        rt = makeControlRuntime(controlSpec(opts_), policy, summary);
        sc = std::make_unique<SmartConfI>(*rt, kConfName);
        initial_resp = 8.0;
    } else {
        initial_resp = policy.value;
    }

    sim::Rng rng(seed);
    kvstore::KvServer server(serverParams(opts_, initial_resp),
                             rng.fork(1));
    workload::ShardedYcsbGenerator gen(
        ycsbParams(opts_, opts_.phase1_write_fraction,
                   opts_.arrival_base),
        rng.fork(2));
    // Writes land in an (uncontrolled) memstore whose occupancy adds
    // heap pressure once phase 2 introduces a write share.
    kvstore::MemtableParams mem_params;
    mem_params.flush_rate_mb_per_tick = 25.0;
    kvstore::Memtable memstore(opts_.memstore_cap_mb, mem_params);

    workload::PhasedSchedule<double> write_frac(
        opts_.phase1_write_fraction);
    write_frac.addPhase(opts_.phase1_ticks, opts_.phase2_write_fraction);

    double conf_sum = 0.0;
    std::int64_t conf_samples = 0;

    // Event-engine driver: workload + server stepping, the control
    // loop, and metrics sampling as periodic events (registration
    // order = the sequential driver's statement order within a tick).
    sim::Clock sim_clock;
    sim::EventQueue events(sim_clock);
    std::vector<sim::EventId> loops;
    auto halt = [&loops, &events] {
        for (const sim::EventId id : loops)
            events.cancel(id);
    };

    double mem = 0.0; ///< heap usage after this tick's server step
    std::vector<workload::Op> ops; ///< reused arrival buffer
    const kvstore::JvmHeap::Slot memstore_slot =
        server.heap().slot("memstore");

    loops.push_back(events.schedulePeriodicAt(0, 1, [&] {
        const sim::Tick t = sim_clock.now();
        gen.setWriteFraction(write_frac.at(t));
        gen.setOpsPerTick(arrivalRate(opts_, t));

        gen.tickInto(ops);
        for (const auto &op : ops) {
            if (op.type == workload::Op::Type::Write)
                memstore.write(op.size_mb, t);
        }
        memstore.step(t);
        server.heap().set(memstore_slot, memstore.occupancyMb());
        server.accept(ops, t, gen.lastSeq());
        server.step(t);
        mem = server.heap().usedMb();
    }));

    const fault::ChaosHooks chaos = chaosHooksFor(policy, seed);
    chaos.seedActuation(initial_resp);

    if (sc) {
        loops.push_back(events.schedulePeriodicAt(
            0, opts_.control_period, [&] {
                if (!chaos.fire())
                    return;
                sc->setPerf(chaos.measure(mem),
                            server.responseQueue().bytesMb());
                server.responseQueue().setMaxMb(std::max(
                    1.0, chaos.actuate(sc->getConfReal())));
            }));
    }

    loops.push_back(events.schedulePeriodicAt(0, 1, [&] {
        const sim::Tick t = sim_clock.now();
        result.perf_series.record(t, mem);
        result.conf_series.record(t, server.responseQueue().maxMb());
        result.tradeoff_series.record(
            t, static_cast<double>(server.completedOps()));
        conf_sum += server.responseQueue().maxMb();
        ++conf_samples;
        result.worst_goal_metric =
            std::max(result.worst_goal_metric, mem);

        if (server.crashed())
            halt(); // region server died with OutOfMemoryError
    }));

    events.runUntil(opts_.total_ticks - 1);

    result.violated = server.crashed();
    result.violation_time_s =
        server.crashed()
            ? static_cast<double>(server.heap().oomTick()) /
                  kTicksPerSecond
            : -1.0;
    const double duration_s =
        static_cast<double>(opts_.total_ticks) / kTicksPerSecond;
    result.raw_tradeoff =
        static_cast<double>(server.completedOps()) / duration_s;
    result.tradeoff = result.raw_tradeoff;
    result.mean_conf =
        conf_samples > 0 ? conf_sum / static_cast<double>(conf_samples)
                         : 0.0;
    result.ops_simulated = gen.generated();
    result.faults_injected = chaos.stats().injected();
    result.shard_ops.assign(gen.shardOps().begin(),
                            gen.shardOps().end());
    return result;
}

} // namespace smartconf::scenarios
