#ifndef SMARTCONF_SCENARIOS_CA6059_H_
#define SMARTCONF_SCENARIOS_CA6059_H_

/**
 * @file
 * CA6059: `memtable_total_space_in_mb` limits the memtable size.
 * Too big, OOM; too small, write latency hurts (indirect, hard,
 * unconditional).
 *
 * Evaluation: all-write YCSB, then at ~200 s the mix becomes 0.9W with a
 * 0.5 read index-cache ratio — the cache gradually claims 150 MB of
 * heap, squeezing the room the memtable may safely occupy.
 */

#include "scenarios/scenario.h"
#include "sim/clock.h"

namespace smartconf::scenarios {

/** Workload/server knobs for the CA6059 driver. */
struct Ca6059Options
{
    double heap_mb = 495.0;
    sim::Tick phase1_ticks = 2000;
    sim::Tick total_ticks = 7000;
    double phase1_write_fraction = 1.0;
    double phase2_write_fraction = 0.9;
    double request_size_mb = 1.0;
    double ops_per_tick = 10.0;
    double cache_full_mb = 300.0;   ///< heap of a ratio-1.0 index cache
    double phase2_cache_ratio = 0.5;
    double cache_fill_per_tick = 0.5; ///< cache warm-up rate (MB/tick)
    double other_base_mb = 120.0;
    double other_walk_mb = 6.0;
    double other_max_mb = 180.0;
    sim::Tick control_period = 1;
};

/** The CA6059 case study. */
class Ca6059Scenario : public Scenario
{
  public:
    Ca6059Scenario();
    explicit Ca6059Scenario(const Ca6059Options &opts);

    ProfileSummary profile(std::uint64_t seed) const override;
    ScenarioResult run(const Policy &policy,
                       std::uint64_t seed) const override;

    const Ca6059Options &options() const { return opts_; }

  private:
    Ca6059Options opts_;
};

} // namespace smartconf::scenarios

#endif // SMARTCONF_SCENARIOS_CA6059_H_
