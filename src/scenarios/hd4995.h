#ifndef SMARTCONF_SCENARIOS_HD4995_H_
#define SMARTCONF_SCENARIOS_HD4995_H_

/**
 * @file
 * HD4995: `content-summary.limit` bounds the number of files a du
 * (getContentSummary) traverses before releasing the namenode's global
 * lock.  Too big, client writes are blocked for too long; too small, du
 * latency hurts (conditional, indirect, soft).
 *
 * This is the case with a *non-identity transducer*: the controller
 * reasons about the per-chunk lock-hold time (the deputy), and the
 * transducer multiplies by the traversal rate to produce the file-count
 * configuration.  The latency constraint tightens from 20 s to 10 s at
 * the phase boundary (Table 6: multi-clients, 20s -> 10s).
 */

#include "scenarios/scenario.h"
#include "sim/clock.h"

namespace smartconf::scenarios {

/** Workload/namenode knobs for the HD4995 driver. */
struct Hd4995Options
{
    sim::Tick phase1_ticks = 3000;
    sim::Tick total_ticks = 6000;
    double phase1_goal_ticks = 200.0; ///< 20 s worst write wait
    double phase2_goal_ticks = 100.0; ///< 10 s worst write wait
    double traversal_files_per_tick = 20000.0;
    double yield_overhead_ticks = 40.0; ///< traversal revalidation cost
    double write_service_per_tick = 60.0;
    double writes_per_tick = 30.0;  ///< multi-client aggregate rate
    std::uint64_t clients = 8;
    std::uint64_t du_files = 6000000;
    sim::Tick du_period = 800;      ///< du every 80 s
};

/** The HD4995 case study. */
class Hd4995Scenario : public Scenario
{
  public:
    Hd4995Scenario();
    explicit Hd4995Scenario(const Hd4995Options &opts);

    ProfileSummary profile(std::uint64_t seed) const override;
    ScenarioResult run(const Policy &policy,
                       std::uint64_t seed) const override;

    const Hd4995Options &options() const { return opts_; }

  private:
    Hd4995Options opts_;
};

} // namespace smartconf::scenarios

#endif // SMARTCONF_SCENARIOS_HD4995_H_
