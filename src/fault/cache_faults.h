#ifndef SMARTCONF_FAULT_CACHE_FAULTS_H_
#define SMARTCONF_FAULT_CACHE_FAULTS_H_

/**
 * @file
 * On-disk cache corruption helpers.
 *
 * DiskRunCache promises that any corruption degrades to a *miss*, never
 * to a wrong result, and that an unusable cache directory degrades to
 * cache-off, never to an aborted sweep.  These helpers manufacture the
 * corruption those promises are tested against: truncation (torn
 * write / full disk), bit flips (media errors), and directory blocking
 * (permission and layout failures).
 *
 * Deterministic on purpose: flipBit touches an exact (byte, bit), and
 * listEntryFiles returns sorted paths, so a corruption campaign driven
 * off a seeded RNG replays identically.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace smartconf::fault {

/** Regular files directly inside @p dir, sorted by path. */
std::vector<std::string> listEntryFiles(const std::string &dir);

/** Size of @p path in bytes; -1 when unreadable. */
std::int64_t fileSize(const std::string &path);

/** Truncate @p path to @p keep_bytes. @return success. */
bool truncateFile(const std::string &path, std::uint64_t keep_bytes);

/**
 * Flip bit @p bit (0-7) of byte @p offset in @p path.
 * @return false when the file is unreadable or @p offset out of range.
 */
bool flipBit(const std::string &path, std::uint64_t offset, unsigned bit);

/**
 * Make @p path impossible to use as a directory by creating a regular
 * file there (parents are created).  create_directories(path) then
 * fails on every platform and for every uid — unlike chmod tricks,
 * which root bypasses.  @return success.
 */
bool blockPathWithFile(const std::string &path);

} // namespace smartconf::fault

#endif // SMARTCONF_FAULT_CACHE_FAULTS_H_
