#ifndef SMARTCONF_FAULT_CACHE_FAULTS_H_
#define SMARTCONF_FAULT_CACHE_FAULTS_H_

/**
 * @file
 * On-disk cache corruption helpers.
 *
 * DiskRunCache promises that any corruption degrades to a *miss*, never
 * to a wrong result, and that an unusable cache directory degrades to
 * cache-off, never to an aborted sweep.  These helpers manufacture the
 * corruption those promises are tested against: truncation (torn
 * write / full disk), bit flips (media errors), and directory blocking
 * (permission and layout failures).
 *
 * Deterministic on purpose: flipBit touches an exact (byte, bit), and
 * listEntryFiles returns sorted paths, so a corruption campaign driven
 * off a seeded RNG replays identically.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace smartconf::fault {

/** Regular files directly inside @p dir, sorted by path. */
std::vector<std::string> listEntryFiles(const std::string &dir);

/** Size of @p path in bytes; -1 when unreadable. */
std::int64_t fileSize(const std::string &path);

/** Truncate @p path to @p keep_bytes. @return success. */
bool truncateFile(const std::string &path, std::uint64_t keep_bytes);

/**
 * Flip bit @p bit (0-7) of byte @p offset in @p path.
 * @return false when the file is unreadable or @p offset out of range.
 */
bool flipBit(const std::string &path, std::uint64_t offset, unsigned bit);

/**
 * Make @p path impossible to use as a directory by creating a regular
 * file there (parents are created).  create_directories(path) then
 * fails on every platform and for every uid — unlike chmod tricks,
 * which root bypasses.  @return success.
 */
bool blockPathWithFile(const std::string &path);

// --- Segment-store corruption (format v6) ------------------------------
//
// The segment store makes the same promises per *segment*: a damaged
// header or index block rejects the whole segment (every entry a
// miss), a damaged payload rejects that entry, and a torn MANIFEST is
// ignored because the directory listing is the source of truth.

/** `seg-*.seg` files directly inside @p dir, sorted by path. */
std::vector<std::string> listSegmentFiles(const std::string &dir);

/**
 * Truncate the segment at @p path so its index block is torn: keeps
 * the header and records but cuts @p cut_bytes (>=1) off the tail.
 * Models a crash mid-publish that an atomic rename normally prevents
 * (e.g. a partially synced file after power loss). @return success.
 */
bool truncateSegmentTail(const std::string &path,
                         std::uint64_t cut_bytes);

/**
 * Flip one bit inside the segment's *index block* (offset taken from
 * the header's index_off).  The block checksum must then reject the
 * whole segment.  @return false when @p path has no readable header.
 */
bool flipIndexBit(const std::string &path, std::uint64_t byte_in_index,
                  unsigned bit);

/**
 * Tear the MANIFEST in @p dir: chop the trailer line so the embedded
 * checksum no longer verifies.  Models a torn non-atomic write (the
 * store itself always renames, so this is belt-and-braces coverage).
 * @return success; false when no manifest exists.
 */
bool tearManifest(const std::string &dir);

} // namespace smartconf::fault

#endif // SMARTCONF_FAULT_CACHE_FAULTS_H_
