#ifndef SMARTCONF_FAULT_SPEC_H_
#define SMARTCONF_FAULT_SPEC_H_

/**
 * @file
 * Declarative description of a fault-injection campaign.
 *
 * A ChaosSpec is pure data: which faults to inject, at what rates, and
 * under which seed.  The injectors in this directory interpret it; the
 * exec layer caches on it (via cacheKey()); the bench and test harnesses
 * sweep over grids of it.  Keeping the spec separate from the machinery
 * means a chaos run is a pure function of (scenario, policy, spec, seed)
 * — byte-reproducible and therefore cacheable and bisectable like any
 * other run.
 *
 * All probabilities are per-opportunity Bernoulli rates in [0, 1]:
 * nan/inf/dropout/stale/spike fire per sensor reading, skip fires per
 * control invocation.  Faults draw from a private xoshiro stream forked
 * off (spec.seed, run seed), so enabling chaos never perturbs the
 * workload RNG streams — the same workload runs under the faults.
 */

#include <cstdint>
#include <string>

namespace smartconf::fault {

/** Which faults to inject, at what rates, under which seed. */
struct ChaosSpec
{
    /** Mixed into the run seed; distinct seeds -> distinct fault trains. */
    std::uint64_t seed = 0;

    // --- Sensor-plane faults (per reading) -------------------------------
    double nan_prob = 0.0;     ///< reading replaced by quiet NaN
    double inf_prob = 0.0;     ///< reading replaced by +infinity
    double dropout_prob = 0.0; ///< reading dropped (last value held)
    double stale_prob = 0.0;   ///< sensor freezes for stale_len readings
    std::uint32_t stale_len = 8;
    double spike_prob = 0.0;   ///< reading multiplied by spike_factor
    double spike_factor = 10.0;

    // --- Control-loop faults (per invocation) ----------------------------
    /** Probability a whole control invocation is skipped. */
    double skip_prob = 0.0;

    /**
     * Period jitter: each invocation is additionally skipped with
     * probability jitter/(1+jitter), stretching the effective control
     * period by (1+jitter) in expectation.  Stretch-only by design: the
     * injectors wrap existing scenario loops and cannot invoke the
     * controller earlier than the loop does.
     */
    double period_jitter = 0.0;

    /** Actuation delay in control invocations (0 = immediate). */
    std::uint32_t actuation_delay = 0;

    /** True when any fault can fire (inactive specs cost nothing). */
    bool any() const;

    /**
     * Stable string encoding of every field (exact doubles), suitable
     * for appending to a run cache key.  Equal keys iff equal specs.
     */
    std::string cacheKey() const;

    // Presets for the common single-fault campaigns -----------------------
    static ChaosSpec nanSensor(double p, std::uint64_t seed = 0);
    static ChaosSpec infSensor(double p, std::uint64_t seed = 0);
    static ChaosSpec dropout(double p, std::uint64_t seed = 0);
    static ChaosSpec staleSensor(double p, std::uint32_t len,
                                 std::uint64_t seed = 0);
    static ChaosSpec spikes(double p, double factor,
                            std::uint64_t seed = 0);
    static ChaosSpec skips(double p, std::uint64_t seed = 0);
    static ChaosSpec jitter(double j, std::uint64_t seed = 0);
    static ChaosSpec delayedActuation(std::uint32_t delay,
                                      std::uint64_t seed = 0);

    /** Everything at once, at moderate rates: the soak preset. */
    static ChaosSpec kitchenSink(std::uint64_t seed = 0);
};

} // namespace smartconf::fault

#endif // SMARTCONF_FAULT_SPEC_H_
