#ifndef SMARTCONF_FAULT_SENSOR_FAULT_H_
#define SMARTCONF_FAULT_SENSOR_FAULT_H_

/**
 * @file
 * Sensor-plane fault injectors.
 *
 * SensorFaultChain corrupts a stream of readings according to a
 * ChaosSpec: NaN/Inf replacement, dropouts (hold last value), stale
 * windows (freeze for N readings) and multiplicative spikes.  Faults
 * draw from a private forked RNG stream, so two chains built from the
 * same (spec, seed) corrupt identically — chaos runs stay
 * byte-reproducible.
 *
 * FaultySensor wraps any Sensor with a chain, corrupting at the read()
 * boundary: the wrapped sensor keeps accumulating honest state while
 * the consumer sees the faulty measurements, exactly like a flaky probe
 * in front of a healthy metric.
 */

#include <cstdint>

#include "core/sensor.h"
#include "fault/spec.h"
#include "sim/rng.h"

namespace smartconf::fault {

/** Per-fault-kind counters for one chain. */
struct SensorFaultStats
{
    std::uint64_t readings = 0; ///< values pushed through apply()
    std::uint64_t nans = 0;
    std::uint64_t infs = 0;
    std::uint64_t dropouts = 0;
    std::uint64_t stale_reads = 0;
    std::uint64_t spikes = 0;

    std::uint64_t injected() const
    {
        return nans + infs + dropouts + stale_reads + spikes;
    }
};

/** Stateful corrupter of a reading stream. */
class SensorFaultChain
{
  public:
    /**
     * @param spec fault rates; @param rng private stream (fork one per
     * chain — the chain draws one variate per potential fault kind per
     * reading, and sharing a stream would entangle fault trains).
     */
    SensorFaultChain(const ChaosSpec &spec, sim::Rng rng);

    /**
     * Push one honest reading through the chain; returns the possibly
     * corrupted reading.  Fault precedence (first match wins): stale
     * window in force > new stale window > NaN > Inf > dropout > spike.
     */
    double apply(double value);

    const SensorFaultStats &stats() const { return stats_; }

    void reset();

  private:
    ChaosSpec spec_;
    sim::Rng rng_;
    SensorFaultStats stats_;
    double held_ = 0.0;   ///< last honest value seen (dropout source)
    bool have_held_ = false;
    double frozen_ = 0.0; ///< value re-delivered during a stale window
    std::uint32_t stale_left_ = 0;
};

/**
 * Sensor decorator: reads from @p inner through a fault chain.
 *
 * observe() passes through untouched; read() is corrupted.  The inner
 * sensor is borrowed, not owned — the scenario keeps its real sensor
 * and can compare honest vs faulty readings.
 */
class FaultySensor : public Sensor
{
  public:
    FaultySensor(Sensor &inner, const ChaosSpec &spec, sim::Rng rng)
        : inner_(inner), chain_(spec, std::move(rng))
    {}

    void observe(double value) override { inner_.observe(value); }

    double read() const override
    {
        // The chain is stateful (stale windows, held values): read()
        // is logically const for consumers but advances the fault
        // train, like any PRNG-backed source.
        return chain_.apply(inner_.read());
    }

    void reset() override
    {
        inner_.reset();
        chain_.reset();
    }

    std::size_t rejected() const override { return inner_.rejected(); }

    const SensorFaultStats &stats() const { return chain_.stats(); }

  private:
    Sensor &inner_;
    mutable SensorFaultChain chain_;
};

} // namespace smartconf::fault

#endif // SMARTCONF_FAULT_SENSOR_FAULT_H_
