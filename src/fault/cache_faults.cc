#include "fault/cache_faults.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

namespace smartconf::fault {

namespace fs = std::filesystem;

std::vector<std::string>
listEntryFiles(const std::string &dir)
{
    std::vector<std::string> out;
    std::error_code ec;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
        if (it->is_regular_file(ec))
            out.push_back(it->path().string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::int64_t
fileSize(const std::string &path)
{
    std::error_code ec;
    const auto size = fs::file_size(path, ec);
    if (ec)
        return -1;
    return static_cast<std::int64_t>(size);
}

bool
truncateFile(const std::string &path, std::uint64_t keep_bytes)
{
    std::error_code ec;
    fs::resize_file(path, keep_bytes, ec);
    return !ec;
}

bool
flipBit(const std::string &path, std::uint64_t offset, unsigned bit)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    if (!f)
        return false;
    bool ok = false;
    if (std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0) {
        const int c = std::fgetc(f);
        if (c != EOF &&
            std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0) {
            const unsigned char flipped =
                static_cast<unsigned char>(c) ^
                static_cast<unsigned char>(1u << (bit & 7u));
            ok = std::fputc(flipped, f) != EOF;
        }
    }
    ok = (std::fclose(f) == 0) && ok;
    return ok;
}

bool
blockPathWithFile(const std::string &path)
{
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    if (ec)
        return false;
    fs::remove_all(path, ec); // replace whatever is there
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    std::fputs("not a directory\n", f);
    return std::fclose(f) == 0;
}

} // namespace smartconf::fault
