#include "fault/cache_faults.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "store/segment.h"
#include "store/segment_store.h"

namespace smartconf::fault {

namespace fs = std::filesystem;

std::vector<std::string>
listEntryFiles(const std::string &dir)
{
    std::vector<std::string> out;
    std::error_code ec;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
        if (it->is_regular_file(ec))
            out.push_back(it->path().string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::int64_t
fileSize(const std::string &path)
{
    std::error_code ec;
    const auto size = fs::file_size(path, ec);
    if (ec)
        return -1;
    return static_cast<std::int64_t>(size);
}

bool
truncateFile(const std::string &path, std::uint64_t keep_bytes)
{
    std::error_code ec;
    fs::resize_file(path, keep_bytes, ec);
    return !ec;
}

bool
flipBit(const std::string &path, std::uint64_t offset, unsigned bit)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    if (!f)
        return false;
    bool ok = false;
    if (std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0) {
        const int c = std::fgetc(f);
        if (c != EOF &&
            std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0) {
            const unsigned char flipped =
                static_cast<unsigned char>(c) ^
                static_cast<unsigned char>(1u << (bit & 7u));
            ok = std::fputc(flipped, f) != EOF;
        }
    }
    ok = (std::fclose(f) == 0) && ok;
    return ok;
}

std::vector<std::string>
listSegmentFiles(const std::string &dir)
{
    std::vector<std::string> out;
    std::error_code ec;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
        if (!it->is_regular_file(ec))
            continue;
        const std::string name = it->path().filename().string();
        if (name.rfind("seg-", 0) == 0 &&
            it->path().extension() == ".seg")
            out.push_back(it->path().string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

bool
truncateSegmentTail(const std::string &path, std::uint64_t cut_bytes)
{
    const std::int64_t size = fileSize(path);
    if (size <= 0 || cut_bytes == 0 ||
        cut_bytes > static_cast<std::uint64_t>(size))
        return false;
    return truncateFile(path,
                        static_cast<std::uint64_t>(size) - cut_bytes);
}

bool
flipIndexBit(const std::string &path, std::uint64_t byte_in_index,
             unsigned bit)
{
    store::SegmentHeader h;
    // Version filters off: corrupting foreign segments is fine here.
    if (!store::readSegmentHeader(path, h))
        return false;
    if (byte_in_index >= h.index_len)
        return false;
    return flipBit(path, h.index_off + byte_in_index, bit);
}

bool
tearManifest(const std::string &dir)
{
    const std::string path =
        dir + "/" + store::SegmentStore::kManifestName;
    const std::int64_t size = fileSize(path);
    if (size <= 2)
        return false;
    // Chop half the trailer line: the embedded checksum can no longer
    // verify, which is exactly what a torn write looks like.
    return truncateFile(path, static_cast<std::uint64_t>(size) - 2);
}

bool
blockPathWithFile(const std::string &path)
{
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    if (ec)
        return false;
    fs::remove_all(path, ec); // replace whatever is there
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    std::fputs("not a directory\n", f);
    return std::fclose(f) == 0;
}

} // namespace smartconf::fault
