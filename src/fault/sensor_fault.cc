#include "fault/sensor_fault.h"

#include <cmath>
#include <limits>
#include <utility>

namespace smartconf::fault {

namespace {

double
quietNan()
{
    return std::numeric_limits<double>::quiet_NaN();
}

} // namespace

SensorFaultChain::SensorFaultChain(const ChaosSpec &spec, sim::Rng rng)
    : spec_(spec), rng_(std::move(rng))
{}

double
SensorFaultChain::apply(double value)
{
    ++stats_.readings;

    // One Bernoulli per fault kind per reading, drawn unconditionally:
    // the fault train for kind K then depends only on (spec, seed,
    // reading index), never on which *other* faults happened to fire —
    // so tweaking one probability does not scramble the others' trains.
    const bool stale_hit = rng_.chance(spec_.stale_prob);
    const bool nan_hit = rng_.chance(spec_.nan_prob);
    const bool inf_hit = rng_.chance(spec_.inf_prob);
    const bool drop_hit = rng_.chance(spec_.dropout_prob);
    const bool spike_hit = rng_.chance(spec_.spike_prob);

    double out;
    if (stale_left_ > 0) {
        // Frozen sensor: keep re-delivering the value captured when
        // the window began, however far the honest stream has moved.
        --stale_left_;
        ++stats_.stale_reads;
        out = frozen_;
    } else if (stale_hit && spec_.stale_len > 0) {
        // The trigger reading itself is the first stale one; freeze at
        // the last honest value (or this one if it is the first).
        stale_left_ = spec_.stale_len - 1;
        frozen_ = have_held_ ? held_ : value;
        ++stats_.stale_reads;
        out = frozen_;
    } else if (nan_hit) {
        ++stats_.nans;
        out = quietNan();
    } else if (inf_hit) {
        ++stats_.infs;
        out = std::numeric_limits<double>::infinity();
    } else if (drop_hit) {
        // A dropped reading re-delivers the previous one (a stuck
        // metrics pipeline), or NaN when nothing was ever delivered.
        ++stats_.dropouts;
        out = have_held_ ? held_ : quietNan();
    } else if (spike_hit) {
        ++stats_.spikes;
        out = value * spec_.spike_factor;
    } else {
        out = value;
    }

    if (std::isfinite(value)) {
        held_ = value;
        have_held_ = true;
    }
    return out;
}

void
SensorFaultChain::reset()
{
    stats_ = SensorFaultStats{};
    held_ = 0.0;
    have_held_ = false;
    stale_left_ = 0;
    frozen_ = 0.0;
}

} // namespace smartconf::fault
