#include "fault/chaos.h"

#include <cmath>

#include "core/controller.h"
#include "core/goal.h"
#include "core/sensor.h"
#include "sim/rng.h"

namespace smartconf::fault {

namespace {

// Stream ids for the private fault RNGs, disjoint from the scenario
// stream ids (which are small integers).
constexpr std::uint64_t kSensorStream = 0xFA017'5E50ULL;
constexpr std::uint64_t kLoopStream = 0xFA017'100FULL;

} // namespace

ChaosHooks::Impl::Impl(const ChaosSpec &spec, std::uint64_t run_seed)
    : chain(spec, sim::Rng(spec.seed ^ run_seed).fork(kSensorStream)),
      loop(spec, sim::Rng(spec.seed ^ run_seed).fork(kLoopStream)),
      delay(spec.actuation_delay, 0.0)
{}

ChaosHooks::ChaosHooks(const ChaosSpec &spec, std::uint64_t run_seed)
{
    if (spec.any())
        impl_ = std::make_shared<Impl>(spec, run_seed);
}

ChaosStats
ChaosHooks::stats() const
{
    ChaosStats out;
    if (impl_ != nullptr) {
        out.sensor = impl_->chain.stats();
        out.loop = impl_->loop.stats();
        out.loop.delayed = impl_->delay.delayedCount();
    }
    return out;
}

ChaosReport
runChaosEpisode(const ChaosSpec &spec, const ChaosEpisodeOptions &opts,
                std::uint64_t seed)
{
    Goal goal;
    goal.metric = "chaos_episode_metric";
    goal.value = opts.goal;
    goal.direction = GoalDirection::UpperBound;
    goal.hard = opts.hard;

    ControllerParams params;
    params.alpha = opts.alpha;
    params.pole = opts.pole;
    params.lambda = opts.lambda;
    params.confMin = opts.conf_min;
    params.confMax = opts.conf_max;

    Controller controller(params, goal);
    GaugeSensor gauge;

    ChaosHooks hooks(spec, seed);
    hooks.seedActuation(opts.conf_start);

    // The plant noise stream is independent of the fault streams: the
    // same seed runs the same workload whether or not faults fire.
    sim::Rng plant_rng = sim::Rng(seed).fork(0x1A57ULL);

    ChaosReport report;
    report.ticks = opts.ticks;

    const double two_pi = 6.283185307179586;
    double conf = opts.conf_start;
    bool first = true;
    for (int t = 0; t < opts.ticks; ++t) {
        const double wave =
            opts.disturbance_amp *
            std::sin(two_pi * static_cast<double>(t) /
                     static_cast<double>(opts.disturbance_period));
        const double true_perf = opts.alpha * conf + opts.base + wave +
                                 plant_rng.gaussian(0.0, opts.noise);
        if (first || true_perf > report.worst_metric)
            report.worst_metric = true_perf;
        first = false;
        if (goal.violatedBy(true_perf))
            ++report.violations;

        gauge.observe(true_perf);

        if (!hooks.fire())
            continue;
        const double measured = hooks.measure(gauge.read());
        const double out = controller.update(measured, conf);
        ++report.updates;
        if (!std::isfinite(out)) {
            ++report.nonfinite_outputs;
            continue; // don't propagate the poison into the plant
        }
        if (out < params.confMin || out > params.confMax)
            ++report.out_of_bounds_outputs;
        conf = hooks.actuate(out);
    }

    report.controller_faults = controller.faults();
    report.final_conf = conf;
    report.faults = hooks.stats();
    return report;
}

} // namespace smartconf::fault
