#ifndef SMARTCONF_FAULT_LOOP_FAULT_H_
#define SMARTCONF_FAULT_LOOP_FAULT_H_

/**
 * @file
 * Control-loop fault injectors.
 *
 * LoopFault decides, per control invocation, whether the invocation
 * actually runs: plain skips (a wedged timer thread missing a firing)
 * and period jitter (GC pauses stretching the effective period).  Both
 * are stretch-only — the injector wraps the scenario's existing loop
 * and can suppress invocations but never insert extra ones.
 *
 * ActuationDelay models the gap between the controller emitting a new
 * setting and the plant honoring it (config propagation, rolling
 * restarts): a ring of pending settings, popped one per invocation.
 */

#include <cstdint>
#include <deque>

#include "fault/spec.h"
#include "sim/rng.h"

namespace smartconf::fault {

/** Counters for one loop injector. */
struct LoopFaultStats
{
    std::uint64_t invocations = 0; ///< times fire() was consulted
    std::uint64_t fired = 0;       ///< invocations allowed through
    std::uint64_t skips = 0;       ///< suppressed by skip_prob
    std::uint64_t jitter_stalls = 0; ///< suppressed by period_jitter
    std::uint64_t delayed = 0;     ///< settings served late
};

/** Per-invocation gate implementing skips and period jitter. */
class LoopFault
{
  public:
    LoopFault(const ChaosSpec &spec, sim::Rng rng);

    /**
     * True when this control invocation should run.  Draws one variate
     * per configured fault kind per call, so trains are stable under
     * probability tweaks (same discipline as SensorFaultChain).
     */
    bool fire();

    const LoopFaultStats &stats() const { return stats_; }

    void reset();

  private:
    ChaosSpec spec_;
    sim::Rng rng_;
    LoopFaultStats stats_;
};

/**
 * Delays actuation by a fixed number of control invocations.
 *
 * push(setting) enqueues the controller's fresh output and returns the
 * setting the plant should honor *now*: the one emitted `delay`
 * invocations ago, or the seed value while the pipe is still filling.
 */
class ActuationDelay
{
  public:
    /**
     * @param delay invocations between emit and effect (0 = identity).
     * @param seed_value served while the pipe fills (the plant's
     *        current setting at chaos start).
     */
    ActuationDelay(std::uint32_t delay, double seed_value);

    double push(double setting);

    std::uint64_t delayedCount() const { return delayed_; }

    void reset(double seed_value);

  private:
    std::uint32_t delay_;
    double seed_value_;
    std::deque<double> pipe_;
    std::uint64_t delayed_ = 0;
};

} // namespace smartconf::fault

#endif // SMARTCONF_FAULT_LOOP_FAULT_H_
