#include "fault/loop_fault.h"

#include <utility>

namespace smartconf::fault {

LoopFault::LoopFault(const ChaosSpec &spec, sim::Rng rng)
    : spec_(spec), rng_(std::move(rng))
{}

bool
LoopFault::fire()
{
    ++stats_.invocations;
    const bool skip_hit = rng_.chance(spec_.skip_prob);
    // jitter j stretches the expected period by (1+j): suppressing each
    // firing with probability j/(1+j) makes the count of suppressed
    // firings per allowed one geometric with mean j.
    const double stall_p =
        spec_.period_jitter > 0.0
            ? spec_.period_jitter / (1.0 + spec_.period_jitter)
            : 0.0;
    const bool stall_hit = rng_.chance(stall_p);
    if (skip_hit) {
        ++stats_.skips;
        return false;
    }
    if (stall_hit) {
        ++stats_.jitter_stalls;
        return false;
    }
    ++stats_.fired;
    return true;
}

void
LoopFault::reset()
{
    stats_ = LoopFaultStats{};
}

ActuationDelay::ActuationDelay(std::uint32_t delay, double seed_value)
    : delay_(delay), seed_value_(seed_value)
{}

double
ActuationDelay::push(double setting)
{
    if (delay_ == 0)
        return setting;
    pipe_.push_back(setting);
    ++delayed_;
    if (pipe_.size() <= delay_)
        return seed_value_; // pipe still filling
    const double out = pipe_.front();
    pipe_.pop_front();
    return out;
}

void
ActuationDelay::reset(double seed_value)
{
    seed_value_ = seed_value;
    pipe_.clear();
    delayed_ = 0;
}

} // namespace smartconf::fault
