#ifndef SMARTCONF_FAULT_CHAOS_H_
#define SMARTCONF_FAULT_CHAOS_H_

/**
 * @file
 * Chaos orchestration: one handle bundling every injector, plus a
 * synthetic closed-loop episode harness.
 *
 * ChaosHooks is what a scenario's control loop actually touches.  It
 * has exactly three verbs, matching the three places any SmartConf
 * control site can fail:
 *
 *     if (!hooks.fire()) return;              // loop faults
 *     double m = hooks.measure(sensor.read()); // sensor faults
 *     plant.apply(hooks.actuate(sc->getConf())); // actuation faults
 *
 * A default-constructed (inactive) hooks object is three inline null
 * checks — no RNG draws, no allocation, no behavior change — which is
 * what keeps the fault plane at zero overhead when disabled (the
 * bench_sweep regression gate enforces this).  An active hooks object
 * is a shared_ptr to the injector bundle, so copies observe one fault
 * train.
 *
 * runChaosEpisode() closes the loop around a linear plant entirely
 * inside the fault plane: it is the fixture for the randomized
 * invariant tests ("controller output is always finite and in-clamp
 * under any fault train") and for bench_chaos, without dragging a full
 * scenario into either.
 */

#include <cstdint>
#include <memory>

#include "fault/loop_fault.h"
#include "fault/sensor_fault.h"
#include "fault/spec.h"

namespace smartconf::fault {

/** Aggregated injector counters for one run. */
struct ChaosStats
{
    SensorFaultStats sensor;
    LoopFaultStats loop;

    /** Total faults of any kind injected. */
    std::uint64_t injected() const
    {
        return sensor.injected() + loop.skips + loop.jitter_stalls +
               loop.delayed;
    }
};

/** The injector bundle a control site threads its loop through. */
class ChaosHooks
{
  public:
    /** Inactive hooks: fire() always true, measure/actuate identity. */
    ChaosHooks() = default;

    /**
     * Active hooks for one run.  The fault streams are forked off
     * (spec.seed ^ run_seed), so the same spec replayed on the same
     * run seed injects identically, while distinct runs of a sweep get
     * distinct fault trains.
     */
    ChaosHooks(const ChaosSpec &spec, std::uint64_t run_seed);

    bool active() const { return impl_ != nullptr; }

    /** Gate one control invocation (loop skips + period jitter). */
    bool fire() const
    {
        return impl_ == nullptr || impl_->loop.fire();
    }

    /** Corrupt one sensor reading. */
    double measure(double raw) const
    {
        return impl_ == nullptr ? raw : impl_->chain.apply(raw);
    }

    /** Delay one actuation. */
    double actuate(double setting) const
    {
        return impl_ == nullptr ? setting : impl_->delay.push(setting);
    }

    /**
     * Seed the actuation pipe with the plant's current setting; call
     * once before the run so a filling pipe holds the setting steady
     * instead of slamming it to zero.
     */
    void seedActuation(double current_setting) const
    {
        if (impl_ != nullptr)
            impl_->delay.reset(current_setting);
    }

    /** Counters accumulated so far (zeroes when inactive). */
    ChaosStats stats() const;

  private:
    struct Impl
    {
        Impl(const ChaosSpec &spec, std::uint64_t run_seed);

        SensorFaultChain chain;
        LoopFault loop;
        ActuationDelay delay;
    };

    // Shared and mutated through const accessors: the hooks ride inside
    // const scenario plumbing, and like an Rng the fault train is state
    // the caller expects to advance.
    std::shared_ptr<Impl> impl_;
};

/** Parameters of the synthetic closed-loop chaos episode. */
struct ChaosEpisodeOptions
{
    double alpha = 2.0;  ///< plant gain (perf per unit of conf)
    double base = 40.0;  ///< plant intercept
    double noise = 4.0;  ///< gaussian sensor noise stddev
    double disturbance_amp = 25.0; ///< sinusoidal load swing
    int disturbance_period = 250;  ///< ticks per swing

    double goal = 500.0; ///< upper-bound goal on the plant output
    bool hard = true;

    double conf_min = 0.0;
    double conf_max = 400.0;
    double conf_start = 100.0;

    double pole = 0.5;
    double lambda = 0.05;

    int ticks = 2000;
};

/** What a chaos episode observed (invariant counters first). */
struct ChaosReport
{
    int ticks = 0;
    std::uint64_t updates = 0; ///< control invocations that fired

    /** Invariant: must be 0 — controller never emits non-finite. */
    std::uint64_t nonfinite_outputs = 0;

    /** Invariant: must be 0 — controller never escapes its clamps. */
    std::uint64_t out_of_bounds_outputs = 0;

    /** Updates the controller rejected (held output on bad input). */
    std::uint64_t controller_faults = 0;

    /** Ticks where the true plant output exceeded the goal. */
    std::uint64_t violations = 0;

    double worst_metric = 0.0;
    double final_conf = 0.0;

    ChaosStats faults;
};

/**
 * Run a seeded closed-loop episode of the SmartConf controller against
 * a noisy linear plant with the given faults injected.  Pure function
 * of (spec, opts, seed).
 */
ChaosReport runChaosEpisode(const ChaosSpec &spec,
                            const ChaosEpisodeOptions &opts,
                            std::uint64_t seed);

} // namespace smartconf::fault

#endif // SMARTCONF_FAULT_CHAOS_H_
