#ifndef SMARTCONF_FAULT_PROFILE_FAULTS_H_
#define SMARTCONF_FAULT_PROFILE_FAULTS_H_

/**
 * @file
 * Degenerate-profile generators.
 *
 * The profiler's failure modes are not random bit flips but *shapes*:
 * a profile gathered at a single setting, groups with one sample each,
 * zero-variance groups, a flat response surface (alpha ~ 0), a
 * non-monotonic valley.  Each generator below builds a Profiler
 * exhibiting one shape so tests can assert the synthesis path reports
 * the right verdict (ProfileSummary::insufficient / !monotonic /
 * alpha ~ 0) instead of silently producing an aggressive controller —
 * which is exactly what the pre-hardening code did (delta = 1,
 * lambda = 0: the fastest, least-margined controller possible, derived
 * from the *least* trustworthy profile possible).
 *
 * All generators are seeded and deterministic.
 */

#include <cstdint>
#include <vector>

#include "core/profiler.h"

namespace smartconf::fault {

/** All samples at one setting: no gain is identifiable. */
Profiler singleSettingProfile(double setting, double mean, double noise,
                              int samples, std::uint64_t seed);

/** One sample per setting: no group reaches count >= 2. */
Profiler allSingletonProfile(const std::vector<double> &settings,
                             double alpha, double base);

/** Several samples per setting, all identical: zero variance. */
Profiler zeroVarianceProfile(const std::vector<double> &settings,
                             double alpha, double base, int samples_per);

/** Distinct settings, same mean performance: alpha ~ 0 flat surface. */
Profiler flatSurfaceProfile(const std::vector<double> &settings,
                            double level, double noise, int samples_per,
                            std::uint64_t seed);

/**
 * U-shaped response (paper Sec. 6.6, the MR5420 shape): performance
 * falls then rises across the setting range.  @p curvature scales the
 * quadratic bowl; the valley bottom sits at the middle setting.
 */
Profiler valleyProfile(const std::vector<double> &settings, double base,
                       double curvature, double noise, int samples_per,
                       std::uint64_t seed);

} // namespace smartconf::fault

#endif // SMARTCONF_FAULT_PROFILE_FAULTS_H_
