#include "fault/spec.h"

#include <cstdio>

namespace smartconf::fault {

namespace {

/** Round-trip-exact double encoding (mirrors Policy::cacheKey). */
std::string
exactDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

bool
ChaosSpec::any() const
{
    return nan_prob > 0.0 || inf_prob > 0.0 || dropout_prob > 0.0 ||
           stale_prob > 0.0 || spike_prob > 0.0 || skip_prob > 0.0 ||
           period_jitter > 0.0 || actuation_delay > 0;
}

std::string
ChaosSpec::cacheKey() const
{
    std::string key = "chaos:s=" + std::to_string(seed);
    key += ":nan=" + exactDouble(nan_prob);
    key += ":inf=" + exactDouble(inf_prob);
    key += ":drop=" + exactDouble(dropout_prob);
    key += ":stale=" + exactDouble(stale_prob) + "x" +
           std::to_string(stale_len);
    key += ":spike=" + exactDouble(spike_prob) + "x" +
           exactDouble(spike_factor);
    key += ":skip=" + exactDouble(skip_prob);
    key += ":jitter=" + exactDouble(period_jitter);
    key += ":delay=" + std::to_string(actuation_delay);
    return key;
}

ChaosSpec
ChaosSpec::nanSensor(double p, std::uint64_t seed)
{
    ChaosSpec s;
    s.seed = seed;
    s.nan_prob = p;
    return s;
}

ChaosSpec
ChaosSpec::infSensor(double p, std::uint64_t seed)
{
    ChaosSpec s;
    s.seed = seed;
    s.inf_prob = p;
    return s;
}

ChaosSpec
ChaosSpec::dropout(double p, std::uint64_t seed)
{
    ChaosSpec s;
    s.seed = seed;
    s.dropout_prob = p;
    return s;
}

ChaosSpec
ChaosSpec::staleSensor(double p, std::uint32_t len, std::uint64_t seed)
{
    ChaosSpec s;
    s.seed = seed;
    s.stale_prob = p;
    s.stale_len = len;
    return s;
}

ChaosSpec
ChaosSpec::spikes(double p, double factor, std::uint64_t seed)
{
    ChaosSpec s;
    s.seed = seed;
    s.spike_prob = p;
    s.spike_factor = factor;
    return s;
}

ChaosSpec
ChaosSpec::skips(double p, std::uint64_t seed)
{
    ChaosSpec s;
    s.seed = seed;
    s.skip_prob = p;
    return s;
}

ChaosSpec
ChaosSpec::jitter(double j, std::uint64_t seed)
{
    ChaosSpec s;
    s.seed = seed;
    s.period_jitter = j;
    return s;
}

ChaosSpec
ChaosSpec::delayedActuation(std::uint32_t delay, std::uint64_t seed)
{
    ChaosSpec s;
    s.seed = seed;
    s.actuation_delay = delay;
    return s;
}

ChaosSpec
ChaosSpec::kitchenSink(std::uint64_t seed)
{
    ChaosSpec s;
    s.seed = seed;
    s.nan_prob = 0.05;
    s.inf_prob = 0.02;
    s.dropout_prob = 0.05;
    s.stale_prob = 0.01;
    s.stale_len = 6;
    s.spike_prob = 0.03;
    s.spike_factor = 8.0;
    s.skip_prob = 0.05;
    s.period_jitter = 0.25;
    s.actuation_delay = 2;
    return s;
}

} // namespace smartconf::fault
