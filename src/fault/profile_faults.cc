#include "fault/profile_faults.h"

#include "sim/rng.h"

namespace smartconf::fault {

Profiler
singleSettingProfile(double setting, double mean, double noise,
                     int samples, std::uint64_t seed)
{
    sim::Rng rng(seed);
    Profiler p;
    for (int i = 0; i < samples; ++i)
        p.record(setting, mean + rng.gaussian(0.0, noise));
    return p;
}

Profiler
allSingletonProfile(const std::vector<double> &settings, double alpha,
                    double base)
{
    Profiler p;
    for (const double s : settings)
        p.record(s, base + alpha * s);
    return p;
}

Profiler
zeroVarianceProfile(const std::vector<double> &settings, double alpha,
                    double base, int samples_per)
{
    Profiler p;
    for (const double s : settings) {
        const double perf = base + alpha * s;
        for (int i = 0; i < samples_per; ++i)
            p.record(s, perf);
    }
    return p;
}

Profiler
flatSurfaceProfile(const std::vector<double> &settings, double level,
                   double noise, int samples_per, std::uint64_t seed)
{
    sim::Rng rng(seed);
    Profiler p;
    for (const double s : settings) {
        for (int i = 0; i < samples_per; ++i)
            p.record(s, level + rng.gaussian(0.0, noise));
    }
    return p;
}

Profiler
valleyProfile(const std::vector<double> &settings, double base,
              double curvature, double noise, int samples_per,
              std::uint64_t seed)
{
    sim::Rng rng(seed);
    Profiler p;
    const double mid =
        settings.empty()
            ? 0.0
            : settings[settings.size() / 2];
    for (const double s : settings) {
        const double d = s - mid;
        for (int i = 0; i < samples_per; ++i) {
            p.record(s, base + curvature * d * d +
                            rng.gaussian(0.0, noise));
        }
    }
    return p;
}

} // namespace smartconf::fault
