#include "store/query.h"

#include <algorithm>

#include "store/segment_store.h"

namespace smartconf::store {

bool
parseRunKey(std::string_view key, ParsedRunKey &out)
{
    const std::size_t first = key.find('|');
    if (first == std::string_view::npos)
        return false;
    const std::size_t last = key.rfind("|s=");
    if (last == std::string_view::npos || last <= first)
        return false;

    ParsedRunKey k;
    k.scenario = key.substr(0, first);
    k.policy = key.substr(first + 1, last - first - 1);

    const std::size_t fam = k.scenario.find_first_of("/:");
    k.family = fam == std::string_view::npos ? k.scenario
                                             : k.scenario.substr(0, fam);

    // Chaos specs ride inside the policy key as ":chaos:s=...".
    const std::size_t ch = k.policy.find(":chaos:");
    if (ch != std::string_view::npos) {
        std::string_view rest = k.policy.substr(ch + 1);
        // The chaos suffix runs to the ":label=" trailer when present.
        const std::size_t lbl = rest.find(":label=");
        k.chaos = lbl == std::string_view::npos ? rest
                                                : rest.substr(0, lbl);
    }

    std::string_view seed_text = key.substr(last + 3);
    if (seed_text.empty())
        return false;
    std::uint64_t v = 0;
    for (const char c : seed_text) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    k.seed = v;
    k.seed_valid = true;
    out = k;
    return true;
}

bool
QueryFilter::matches(const ParsedRunKey &k) const
{
    if (!scenario_prefix.empty() &&
        k.scenario.substr(0, scenario_prefix.size()) != scenario_prefix)
        return false;
    if (!policy_substr.empty() &&
        k.policy.find(policy_substr) == std::string_view::npos)
        return false;
    if (chaos_substr == "*") {
        if (k.chaos.empty())
            return false;
    } else if (chaos_substr == "-") {
        if (!k.chaos.empty())
            return false;
    } else if (!chaos_substr.empty() &&
               k.chaos.find(chaos_substr) == std::string_view::npos) {
        return false;
    }
    if (k.seed < seed_min || k.seed > seed_max)
        return false;
    return true;
}

std::vector<QueryRow>
queryStore(SegmentStore &store, const QueryFilter &f)
{
    std::vector<QueryRow> rows;
    store.forEachEntry([&](const IndexedEntry &e) {
        ParsedRunKey k;
        if (!parseRunKey(e.key, k)) {
            // Malformed keys only surface under the match-all filter.
            ParsedRunKey raw;
            raw.scenario = e.key;
            if (!f.matches(raw))
                return;
            k = raw;
        } else if (!f.matches(k)) {
            return;
        }
        QueryRow row;
        row.key = std::string(e.key);
        row.scenario = std::string(k.scenario);
        row.policy = std::string(k.policy);
        row.seed = k.seed;
        row.seed_valid = k.seed_valid;
        row.payload_len = e.payload_len;
        row.shard = e.shard;
        row.segment = std::string(e.segment);
        rows.push_back(std::move(row));
    });
    std::sort(rows.begin(), rows.end(),
              [](const QueryRow &a, const QueryRow &b) {
                  return a.key < b.key;
              });
    return rows;
}

} // namespace smartconf::store
