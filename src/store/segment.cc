#include "store/segment.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <numeric>

#include "sim/kernels.h"

namespace smartconf::store {

std::uint64_t
fnv1a64(const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
fnv1a64(const std::string &s)
{
    return fnv1a64(s.data(), s.size());
}

std::uint64_t
blockChecksum(const void *data, std::size_t len)
{
    return sim::kernels::checksum(data, len);
}

std::uint64_t
headerChecksum(const SegmentHeader &h)
{
    return blockChecksum(&h, kSegmentHeaderBytes - sizeof h.header_checksum);
}

SegmentBuilder::SegmentBuilder(std::uint32_t format,
                               std::uint32_t engine,
                               std::uint32_t shard,
                               std::uint32_t level)
    : format_(format), engine_(engine), shard_(shard), level_(level)
{}

void
SegmentBuilder::add(const std::string &key, std::uint64_t seed,
                    bool seed_valid, std::uint64_t payload_checksum,
                    const void *payload, std::size_t payload_len)
{
    const std::uint32_t klen = static_cast<std::uint32_t>(key.size());
    const std::uint32_t plen = static_cast<std::uint32_t>(payload_len);

    // Record header: klen, plen, seed, checksum — then key, payload.
    const std::size_t rec_off = records_.size();
    records_.resize(rec_off + kRecordHeaderBytes + klen + plen);
    char *p = records_.data() + rec_off;
    std::memcpy(p, &klen, 4);
    std::memcpy(p + 4, &plen, 4);
    std::memcpy(p + 8, &seed, 8);
    std::memcpy(p + 16, &payload_checksum, 8);
    std::memcpy(p + kRecordHeaderBytes, key.data(), klen);
    std::memcpy(p + kRecordHeaderBytes + klen, payload, plen);

    Pending m;
    m.hash = fnv1a64(key);
    m.payload_off_in_region = rec_off + kRecordHeaderBytes + klen;
    m.payload_checksum = payload_checksum;
    m.seed = seed;
    m.payload_len = plen;
    m.flags = seed_valid ? kIndexFlagSeedValid : 0;
    meta_.push_back(m);
    keys_.push_back(key);
}

bool
SegmentBuilder::writeFile(const std::string &path) const
{
    // Sort index slots by (hash, key) so lookups can binary-search and
    // compaction can stream-merge.  The record region keeps insertion
    // order — only the index is sorted.
    std::vector<std::size_t> order(meta_.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (meta_[a].hash != meta_[b].hash)
                      return meta_[a].hash < meta_[b].hash;
                  return keys_[a] < keys_[b];
              });

    std::vector<char> index;
    index.resize(meta_.size() * kIndexEntryBytes);
    std::string blob;
    for (std::size_t i = 0; i < order.size(); ++i) {
        const Pending &m = meta_[order[i]];
        IndexEntry e;
        e.hash = m.hash;
        e.payload_off = kSegmentHeaderBytes + m.payload_off_in_region;
        e.payload_checksum = m.payload_checksum;
        e.seed = m.seed;
        e.payload_len = m.payload_len;
        e.key_off = static_cast<std::uint32_t>(blob.size());
        e.key_len = static_cast<std::uint32_t>(keys_[order[i]].size());
        e.flags = m.flags;
        std::memcpy(index.data() + i * kIndexEntryBytes, &e,
                    kIndexEntryBytes);
        blob += keys_[order[i]];
    }
    const std::size_t entries_bytes = index.size();
    index.insert(index.end(), blob.begin(), blob.end());
    (void)entries_bytes;

    SegmentHeader h;
    std::memcpy(h.magic, kSegmentMagic, 4);
    h.header_version = kSegmentHeaderVersion;
    h.format = format_;
    h.engine = engine_;
    h.shard = shard_;
    h.level = level_;
    h.count = meta_.size();
    h.index_off = kSegmentHeaderBytes + records_.size();
    h.index_len = index.size();
    h.index_checksum = blockChecksum(index.data(), index.size());
    h.header_checksum = headerChecksum(h);

    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                          0644);
    if (fd < 0)
        return false;
    auto writeAll = [fd](const void *data, std::size_t len) {
        const char *p = static_cast<const char *>(data);
        while (len > 0) {
            const ::ssize_t n = ::write(fd, p, len);
            if (n <= 0)
                return false;
            p += n;
            len -= static_cast<std::size_t>(n);
        }
        return true;
    };
    const bool ok = writeAll(&h, kSegmentHeaderBytes) &&
                    writeAll(records_.data(), records_.size()) &&
                    writeAll(index.data(), index.size());
    return (::close(fd) == 0) && ok;
}

bool
readSegmentHeader(const std::string &path, SegmentHeader &out,
                  std::uint32_t format, std::uint32_t engine)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return false;
    SegmentHeader h;
    const ::ssize_t n = ::pread(fd, &h, kSegmentHeaderBytes, 0);
    ::close(fd);
    if (n != static_cast<::ssize_t>(kSegmentHeaderBytes))
        return false;
    if (std::memcmp(h.magic, kSegmentMagic, 4) != 0 ||
        h.header_version != kSegmentHeaderVersion)
        return false;
    if (h.header_checksum != headerChecksum(h))
        return false;
    if (format != 0 && h.format != format)
        return false;
    if (engine != 0 && h.engine != engine)
        return false;
    out = h;
    return true;
}

bool
readSegmentIndex(int fd, const SegmentHeader &h, SegmentIndex &out)
{
    // Bound the allocation by the declared block size; the checksum
    // then proves the block is exactly what the writer sealed.
    if (h.index_len < h.count * kIndexEntryBytes)
        return false;
    std::vector<char> block(h.index_len);
    const ::ssize_t n =
        ::pread(fd, block.data(), block.size(),
                static_cast<::off_t>(h.index_off));
    if (n != static_cast<::ssize_t>(block.size()))
        return false;
    if (blockChecksum(block.data(), block.size()) != h.index_checksum)
        return false;

    const std::size_t entries_bytes =
        static_cast<std::size_t>(h.count) * kIndexEntryBytes;
    const std::size_t blob_bytes = block.size() - entries_bytes;
    SegmentIndex idx;
    idx.entries.resize(static_cast<std::size_t>(h.count));
    std::memcpy(idx.entries.data(), block.data(), entries_bytes);
    idx.key_blob.assign(block.data() + entries_bytes, blob_bytes);
    // Structural validation: every entry's key and payload extents must
    // land inside their regions.  The checksum already passed, so a
    // failure here means a writer bug, not media damage — still a miss.
    for (const IndexEntry &e : idx.entries) {
        if (static_cast<std::size_t>(e.key_off) + e.key_len >
            idx.key_blob.size())
            return false;
        if (e.payload_off < kSegmentHeaderBytes ||
            e.payload_off + e.payload_len > h.index_off)
            return false;
    }
    out = std::move(idx);
    return true;
}

} // namespace smartconf::store
