#include "store/segment_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>
#include <unordered_set>

namespace smartconf::store {

namespace fs = std::filesystem;

namespace {

/** seg-<shard 2hex>-<seq 16hex>-<pid hex>.seg */
std::string
segmentName(std::uint32_t shard, std::uint64_t seq)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "seg-%02x-%016llx-%lx.seg", shard,
                  static_cast<unsigned long long>(seq),
                  static_cast<unsigned long>(::getpid()));
    return buf;
}

bool
parseSegmentName(const std::string &name, std::uint32_t &shard,
                 std::uint64_t &seq)
{
    unsigned s = 0;
    unsigned long long q = 0;
    unsigned long pid = 0;
    char tail = 0;
    // %c catches trailing garbage after ".seg".
    if (std::sscanf(name.c_str(), "seg-%2x-%16llx-%lx.se%c%c", &s, &q,
                    &pid, &tail, &tail) != 4 ||
        tail != 'g')
        return false;
    shard = s;
    seq = q;
    return true;
}

/** Directory mtime as an opaque stamp; -2 when the dir is missing. */
std::int64_t
dirStamp(const std::string &dir)
{
    std::error_code ec;
    const auto t = fs::last_write_time(dir, ec);
    if (ec)
        return -2;
    return static_cast<std::int64_t>(t.time_since_epoch().count());
}

} // namespace

OpenSegment::~OpenSegment()
{
    if (fd >= 0)
        ::close(fd);
}

SegmentStore::SegmentStore(std::string dir)
    : SegmentStore(std::move(dir), Options{})
{}

SegmentStore::SegmentStore(std::string dir, Options opts)
    : dir_(std::move(dir)), opts_(opts)
{
    // Shard count must be a power of two so `hash & (n-1)` partitions.
    std::size_t n = 1;
    while (n < opts_.shard_count && n < 4096)
        n <<= 1;
    opts_.shard_count = n;
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        shards_.push_back(std::make_unique<Shard>());
    if (opts_.auto_compact)
        compactor_ = std::thread([this] { compactionLoop(); });
}

SegmentStore::~SegmentStore()
{
    if (compactor_.joinable()) {
        {
            std::lock_guard<std::mutex> lock(compact_mu_);
            stopping_ = true;
        }
        compact_cv_.notify_all();
        compactor_.join();
    }
    flush();
}

std::uint32_t
SegmentStore::shardOf(const std::string &key) const
{
    return static_cast<std::uint32_t>(fnv1a64(key) &
                                      (opts_.shard_count - 1));
}

bool
SegmentStore::seedOfKey(const std::string &key, std::uint64_t &seed)
{
    const std::size_t pos = key.rfind("|s=");
    if (pos == std::string::npos)
        return false;
    const char *p = key.c_str() + pos + 3;
    if (*p == '\0')
        return false;
    std::uint64_t v = 0;
    for (; *p; ++p) {
        if (*p < '0' || *p > '9')
            return false;
        v = v * 10 + static_cast<std::uint64_t>(*p - '0');
    }
    seed = v;
    return true;
}

bool
SegmentStore::put(const std::string &key, const void *payload,
                  std::size_t payload_len,
                  std::uint64_t payload_checksum)
{
    rescanIfStale(); // also seeds the cross-process seq floor
    const std::uint32_t shard_id = shardOf(key);
    Shard &sh = *shards_[shard_id];
    bool sealed_ok = true;
    bool sealed = false;
    {
        std::lock_guard<std::mutex> lock(sh.mu);
        auto it = sh.pending_slots.find(key);
        if (it != sh.pending_slots.end()) {
            // Duplicate put (two processes raced, or a re-store of a
            // pure result): overwrite in place.
            Shard::PendingEntry &e = sh.pending[it->second];
            sh.pending_bytes -= e.payload.size();
            e.checksum = payload_checksum;
            e.payload.assign(static_cast<const char *>(payload),
                             static_cast<const char *>(payload) +
                                 payload_len);
            sh.pending_bytes += payload_len;
        } else {
            Shard::PendingEntry e;
            e.seed_valid = seedOfKey(key, e.seed);
            if (!e.seed_valid)
                e.seed = 0;
            e.checksum = payload_checksum;
            e.payload.assign(static_cast<const char *>(payload),
                             static_cast<const char *>(payload) +
                                 payload_len);
            sh.pending_slots.emplace(key, sh.pending.size());
            sh.pending_keys.push_back(key);
            sh.pending.push_back(std::move(e));
            sh.pending_bytes += payload_len;
        }
        if (sh.pending.size() >= opts_.flush_entries ||
            sh.pending_bytes >= opts_.flush_bytes) {
            sealed_ok = sealShardLocked(sh, shard_id);
            sealed = true;
        }
    }
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.puts;
        stats_.put_bytes += payload_len;
    }
    if (sealed && sealed_ok) {
        std::lock_guard<std::mutex> lock(store_mu_);
        writeManifestLocked();
    }
    if (sealed)
        kickCompactor();
    return sealed_ok;
}

bool
SegmentStore::get(const std::string &key, std::vector<char> &out)
{
    const std::uint64_t hash = fnv1a64(key);
    const std::uint32_t shard_id =
        static_cast<std::uint32_t>(hash & (opts_.shard_count - 1));
    Shard &sh = *shards_[shard_id];
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.gets;
    }
    {
        std::lock_guard<std::mutex> lock(sh.mu);
        auto it = sh.pending_slots.find(key);
        if (it != sh.pending_slots.end()) {
            out = sh.pending[it->second].payload;
            std::lock_guard<std::mutex> slock(stats_mu_);
            ++stats_.hits;
            return true;
        }
    }
    if (lookupSegments(key, hash, sh, out))
        return true;
    // Miss: another process may have published since our last scan.
    std::int64_t stamp_before;
    {
        std::lock_guard<std::mutex> lock(store_mu_);
        stamp_before = last_scan_stamp_;
    }
    rescanIfStale();
    {
        std::lock_guard<std::mutex> lock(store_mu_);
        if (last_scan_stamp_ == stamp_before && scanned_)
            return false; // nothing new appeared
    }
    return lookupSegments(key, hash, sh, out);
}

bool
SegmentStore::lookupSegments(const std::string &key, std::uint64_t hash,
                             Shard &sh, std::vector<char> &out)
{
    rescanIfStale();
    std::vector<std::shared_ptr<OpenSegment>> segs;
    {
        std::lock_guard<std::mutex> lock(sh.mu);
        segs = sh.segments; // newest-first snapshot
    }
    for (const auto &seg : segs) {
        const auto &entries = seg->index.entries;
        auto it = std::lower_bound(
            entries.begin(), entries.end(), hash,
            [](const IndexEntry &e, std::uint64_t h) {
                return e.hash < h;
            });
        for (; it != entries.end() && it->hash == hash; ++it) {
            if (seg->index.keyOf(*it) != key)
                continue; // hash collision: keep looking
            std::vector<char> payload(it->payload_len);
            const ::ssize_t n =
                ::pread(seg->fd, payload.data(), payload.size(),
                        static_cast<::off_t>(it->payload_off));
            {
                std::lock_guard<std::mutex> lock(stats_mu_);
                ++stats_.reads;
                stats_.read_bytes += it->payload_len;
            }
            if (n != static_cast<::ssize_t>(payload.size()))
                return false; // torn segment tail: miss
            if (blockChecksum(payload.data(), payload.size()) !=
                it->payload_checksum)
                return false; // flipped payload bit: miss
            out = std::move(payload);
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++stats_.hits;
            return true;
        }
    }
    return false;
}

bool
SegmentStore::sealShardLocked(Shard &sh, std::uint32_t shard_id)
{
    if (sh.pending.empty())
        return true;
    SegmentBuilder b(opts_.format, opts_.engine, shard_id, 0);
    for (std::size_t i = 0; i < sh.pending.size(); ++i) {
        const Shard::PendingEntry &e = sh.pending[i];
        b.add(sh.pending_keys[i], e.seed, e.seed_valid, e.checksum,
              e.payload.data(), e.payload.size());
    }
    std::string name;
    if (!publishSegment(b, shard_id, &name))
        return false;
    // Keep read-your-writes: swap the pending buffer for the published
    // segment in one step, while this shard's lock is held.
    std::shared_ptr<OpenSegment> seg = openSegment(name);
    sh.pending.clear();
    sh.pending_keys.clear();
    sh.pending_slots.clear();
    sh.pending_bytes = 0;
    if (seg) {
        sh.segments.push_back(std::move(seg));
        std::sort(sh.segments.begin(), sh.segments.end(),
                  [](const auto &a, const auto &b2) {
                      return a->seq > b2->seq;
                  });
    }
    return true;
}

bool
SegmentStore::publishSegment(const SegmentBuilder &b,
                             std::uint32_t shard_id,
                             std::string *published_name)
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        return false;
    // Claim a name nobody holds: seq + pid make collisions possible
    // only through pid reuse against leftover files, which the
    // existence check turns into a retry.
    std::string name;
    for (int attempt = 0; attempt < 64; ++attempt) {
        name = segmentName(shard_id, nextSeq());
        if (!fs::exists(dir_ + "/" + name, ec))
            break;
        name.clear();
    }
    if (name.empty())
        return false;
    const std::string tmp = dir_ + "/" + name + ".tmp";
    if (!b.writeFile(tmp)) {
        fs::remove(tmp, ec);
        return false;
    }
    fs::rename(tmp, dir_ + "/" + name, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.segments_published;
    }
    if (published_name)
        *published_name = name;
    return true;
}

std::shared_ptr<OpenSegment>
SegmentStore::openSegment(const std::string &name)
{
    const std::string path = dir_ + "/" + name;
    SegmentHeader h;
    if (!readSegmentHeader(path, h, opts_.format, opts_.engine))
        return nullptr;
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return nullptr;
    auto seg = std::make_shared<OpenSegment>();
    seg->fd = fd;
    if (!readSegmentIndex(fd, h, seg->index))
        return nullptr; // fd closed by ~OpenSegment
    seg->name = name;
    seg->header = h;
    std::uint32_t shard = 0;
    if (!parseSegmentName(name, shard, seg->seq))
        seg->seq = 0;
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.segments_opened;
    }
    return seg;
}

void
SegmentStore::rescanIfStale()
{
    std::lock_guard<std::mutex> lock(store_mu_);
    const std::int64_t stamp = dirStamp(dir_);
    if (scanned_ && stamp == last_scan_stamp_)
        return;
    rescanLocked();
}

void
SegmentStore::rescanLocked()
{
    // Stamp *before* listing: a publish racing the scan then re-dirties
    // the stamp and the next miss rescans again.
    last_scan_stamp_ = dirStamp(dir_);

    std::vector<std::vector<std::string>> names(opts_.shard_count);
    std::uint64_t max_seq = 0;
    std::error_code ec;
    for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
         it.increment(ec)) {
        if (!it->is_regular_file(ec))
            continue;
        const std::string name = it->path().filename().string();
        std::uint32_t shard = 0;
        std::uint64_t seq = 0;
        if (!parseSegmentName(name, shard, seq) ||
            shard >= opts_.shard_count)
            continue;
        names[shard].push_back(name);
        max_seq = std::max(max_seq, seq);
    }
    // Lift the seq floor above every file on disk (ours or another
    // process's) so new names never collide with published ones.
    std::uint64_t cur = seq_.load();
    while (cur < max_seq && !seq_.compare_exchange_weak(cur, max_seq)) {
    }

    if (!scanned_) {
        Manifest m;
        if (readManifest(dir_, m))
            manifest_epoch_ = m.epoch;
    }
    scanned_ = true;

    for (std::uint32_t s = 0; s < opts_.shard_count; ++s) {
        Shard &sh = *shards_[s];
        std::lock_guard<std::mutex> lock(sh.mu);
        std::set<std::string> on_disk(names[s].begin(), names[s].end());
        // Drop vanished segments (compacted away by another process)…
        sh.segments.erase(
            std::remove_if(sh.segments.begin(), sh.segments.end(),
                           [&](const auto &seg) {
                               return on_disk.find(seg->name) ==
                                      on_disk.end();
                           }),
            sh.segments.end());
        // …and open newcomers.  A name that fails to open was either
        // deleted between listing and open or is damaged: skip it —
        // every entry it held degrades to a miss.
        std::unordered_set<std::string> known;
        for (const auto &seg : sh.segments)
            known.insert(seg->name);
        for (const std::string &name : names[s]) {
            if (known.count(name))
                continue;
            if (auto seg = openSegment(name))
                sh.segments.push_back(std::move(seg));
        }
        std::sort(sh.segments.begin(), sh.segments.end(),
                  [](const auto &a, const auto &b) {
                      return a->seq > b->seq;
                  });
    }
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.rescans;
}

bool
SegmentStore::flush()
{
    bool ok = true;
    bool published = false;
    for (std::uint32_t s = 0; s < opts_.shard_count; ++s) {
        Shard &sh = *shards_[s];
        std::lock_guard<std::mutex> lock(sh.mu);
        if (sh.pending.empty())
            continue;
        if (sealShardLocked(sh, s))
            published = true;
        else
            ok = false;
    }
    if (published) {
        {
            std::lock_guard<std::mutex> lock(store_mu_);
            writeManifestLocked();
        }
        kickCompactor();
    }
    return ok;
}

void
SegmentStore::writeManifestLocked()
{
    Manifest m;
    m.format = opts_.format;
    m.engine = opts_.engine;
    m.epoch = ++manifest_epoch_;
    for (std::uint32_t s = 0; s < opts_.shard_count; ++s) {
        Shard &sh = *shards_[s];
        std::lock_guard<std::mutex> lock(sh.mu);
        for (const auto &seg : sh.segments)
            m.segments.emplace_back(seg->name, seg->header.count);
    }
    std::sort(m.segments.begin(), m.segments.end());
    (void)writeManifest(dir_, m); // advisory: failure never blocks IO
}

CompactionResult
SegmentStore::compact()
{
    rescanIfStale();
    CompactionResult agg;
    for (std::uint32_t s = 0; s < opts_.shard_count; ++s) {
        bool multi;
        {
            Shard &sh = *shards_[s];
            std::lock_guard<std::mutex> lock(sh.mu);
            multi = sh.segments.size() > 1;
        }
        if (multi && compactShard(s, agg))
            ++agg.shards_compacted;
    }
    if (agg.shards_compacted > 0) {
        std::lock_guard<std::mutex> lock(store_mu_);
        writeManifestLocked();
    }
    return agg;
}

bool
SegmentStore::compactShard(std::uint32_t shard_id,
                           CompactionResult &agg)
{
    Shard &sh = *shards_[shard_id];
    std::vector<std::shared_ptr<OpenSegment>> inputs;
    {
        std::lock_guard<std::mutex> lock(sh.mu);
        inputs = sh.segments; // newest-first
    }
    if (inputs.size() < 2)
        return false;

    // External-merge over the already-sorted per-segment indexes: a
    // cursor per input, always advancing the smallest (hash, key).
    // Duplicate keys are superseded by the newest segment's copy (the
    // values are pure, so this is tie-breaking, not semantics).
    std::uint32_t level = 0;
    std::uint64_t entries_in = 0;
    for (const auto &seg : inputs) {
        level = std::max(level, seg->header.level);
        entries_in += seg->header.count;
    }
    SegmentBuilder b(opts_.format, opts_.engine, shard_id, level + 1);

    std::vector<std::size_t> cursor(inputs.size(), 0);
    std::vector<char> payload;
    std::string last_key;
    bool have_last = false;
    for (;;) {
        // inputs is newest-first, so scanning in order and keeping the
        // first occurrence of a (hash, key) implements newest-wins.
        std::size_t pick = inputs.size();
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            if (cursor[i] >= inputs[i]->index.entries.size())
                continue;
            if (pick == inputs.size()) {
                pick = i;
                continue;
            }
            const IndexEntry &a = inputs[i]->index.entries[cursor[i]];
            const IndexEntry &p =
                inputs[pick]->index.entries[cursor[pick]];
            if (a.hash < p.hash ||
                (a.hash == p.hash &&
                 inputs[i]->index.keyOf(a) <
                     inputs[pick]->index.keyOf(p)))
                pick = i;
        }
        if (pick == inputs.size())
            break;
        const IndexEntry &e = inputs[pick]->index.entries[cursor[pick]];
        const std::string key(inputs[pick]->index.keyOf(e));
        ++cursor[pick];
        if (have_last && key == last_key)
            continue; // superseded duplicate: dropped
        last_key = key;
        have_last = true;

        payload.resize(e.payload_len);
        const ::ssize_t n =
            ::pread(inputs[pick]->fd, payload.data(), payload.size(),
                    static_cast<::off_t>(e.payload_off));
        if (n != static_cast<::ssize_t>(payload.size()) ||
            blockChecksum(payload.data(), payload.size()) !=
                e.payload_checksum)
            continue; // damaged record: drop it (miss, not wrong data)
        b.add(key, e.seed, (e.flags & kIndexFlagSeedValid) != 0,
              e.payload_checksum, payload.data(), payload.size());
    }

    std::string name;
    if (!publishSegment(b, shard_id, &name))
        return false;
    std::shared_ptr<OpenSegment> merged = openSegment(name);
    if (!merged)
        return false;
    {
        std::lock_guard<std::mutex> lock(sh.mu);
        // Drop exactly the inputs; segments published mid-merge stay.
        sh.segments.erase(
            std::remove_if(sh.segments.begin(), sh.segments.end(),
                           [&](const auto &seg) {
                               for (const auto &in : inputs)
                                   if (in.get() == seg.get())
                                       return true;
                               return false;
                           }),
            sh.segments.end());
        sh.segments.push_back(merged);
        std::sort(sh.segments.begin(), sh.segments.end(),
                  [](const auto &a, const auto &b2) {
                      return a->seq > b2->seq;
                  });
    }
    {
        std::lock_guard<std::mutex> lock(store_mu_);
        writeManifestLocked();
    }
    // Unlink the inputs only after the merged segment and manifest are
    // live.  In-flight readers keep their fds; listings from here on
    // see the merged segment.
    std::error_code ec;
    for (const auto &seg : inputs)
        fs::remove(dir_ + "/" + seg->name, ec);

    agg.segments_in += inputs.size();
    agg.segments_out += 1;
    agg.entries_in += entries_in;
    agg.entries_out += merged->header.count;
    agg.bytes_written +=
        merged->header.index_off + merged->header.index_len;
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.compactions;
        stats_.compacted_segments_in += inputs.size();
    }
    return true;
}

void
SegmentStore::kickCompactor()
{
    if (!compactor_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lock(compact_mu_);
        compact_wanted_ = true;
    }
    compact_cv_.notify_all();
}

void
SegmentStore::compactionLoop()
{
    std::unique_lock<std::mutex> lock(compact_mu_);
    for (;;) {
        compact_cv_.wait(lock, [this] {
            return stopping_ || compact_wanted_;
        });
        if (stopping_)
            return;
        compact_wanted_ = false;
        // Debounce: let a burst of publishes land before merging.
        compact_cv_.wait_for(lock, std::chrono::milliseconds(20),
                             [this] { return stopping_; });
        if (stopping_)
            return;
        lock.unlock();
        CompactionResult agg;
        for (std::uint32_t s = 0; s < opts_.shard_count; ++s) {
            std::size_t count;
            {
                Shard &sh = *shards_[s];
                std::lock_guard<std::mutex> shlock(sh.mu);
                count = sh.segments.size();
            }
            if (count >= opts_.compact_min_segments)
                compactShard(s, agg);
        }
        lock.lock();
    }
}

VerifyResult
SegmentStore::verify()
{
    // Flush first so pending entries are on disk and checkable.
    flush();
    rescanIfStale();
    VerifyResult r;

    std::error_code ec;
    std::vector<std::string> names;
    for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
         it.increment(ec)) {
        if (!it->is_regular_file(ec))
            continue;
        const std::string name = it->path().filename().string();
        std::uint32_t shard = 0;
        std::uint64_t seq = 0;
        if (parseSegmentName(name, shard, seq))
            names.push_back(name);
    }
    std::sort(names.begin(), names.end());

    for (const std::string &name : names) {
        const std::string path = dir_ + "/" + name;
        SegmentHeader h;
        if (!readSegmentHeader(path, h, opts_.format, opts_.engine)) {
            ++r.segments_corrupt;
            r.issues.push_back({name, "bad header (magic/checksum/"
                                      "version)"});
            continue;
        }
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0) {
            ++r.segments_corrupt;
            r.issues.push_back({name, "unreadable"});
            continue;
        }
        SegmentIndex idx;
        if (!readSegmentIndex(fd, h, idx)) {
            ++r.segments_corrupt;
            r.issues.push_back({name, "index block torn or checksum "
                                      "mismatch"});
            ::close(fd);
            continue;
        }
        // Records: re-read and re-checksum every payload, and walk the
        // self-describing record region to cross-check the index.
        bool seg_ok = true;
        std::vector<char> buf;
        for (const IndexEntry &e : idx.entries) {
            buf.resize(e.payload_len);
            const ::ssize_t n =
                ::pread(fd, buf.data(), buf.size(),
                        static_cast<::off_t>(e.payload_off));
            if (n != static_cast<::ssize_t>(buf.size()) ||
                blockChecksum(buf.data(), buf.size()) !=
                    e.payload_checksum ||
                fnv1a64(std::string(idx.keyOf(e))) != e.hash) {
                ++r.entries_corrupt;
                seg_ok = false;
            } else {
                ++r.entries_ok;
            }
        }
        // Record-region walk: headers must chain exactly to index_off.
        std::uint64_t off = kSegmentHeaderBytes;
        std::uint64_t walked = 0;
        while (off + kRecordHeaderBytes <= h.index_off) {
            char rh[kRecordHeaderBytes];
            if (::pread(fd, rh, sizeof rh,
                        static_cast<::off_t>(off)) !=
                static_cast<::ssize_t>(sizeof rh))
                break;
            std::uint32_t klen, plen;
            std::memcpy(&klen, rh, 4);
            std::memcpy(&plen, rh + 4, 4);
            const std::uint64_t next =
                off + kRecordHeaderBytes + klen + plen;
            if (next > h.index_off)
                break;
            off = next;
            ++walked;
        }
        if (off != h.index_off || walked != h.count) {
            seg_ok = false;
            r.issues.push_back({name, "record region does not chain "
                                      "to the index block"});
        }
        ::close(fd);
        if (seg_ok) {
            ++r.segments_ok;
        } else {
            ++r.segments_corrupt;
            if (r.issues.empty() || r.issues.back().segment != name)
                r.issues.push_back(
                    {name, "payload checksum mismatch"});
        }
    }

    // Manifest: advisory, but verify reports tears and stale listings.
    Manifest m;
    const std::string mpath = dir_ + "/" + kManifestName;
    if (fs::exists(mpath, ec)) {
        if (!readManifest(dir_, m)) {
            r.manifest_ok = false;
            r.issues.push_back({"MANIFEST", "torn (bad trailer "
                                            "checksum)"});
        } else {
            for (const auto &[name, count] : m.segments) {
                if (std::find(names.begin(), names.end(), name) ==
                    names.end()) {
                    r.manifest_ok = false;
                    r.issues.push_back(
                        {"MANIFEST", "lists missing segment " + name});
                }
                (void)count;
            }
        }
    }
    return r;
}

void
SegmentStore::forEachEntry(
    const std::function<void(const IndexedEntry &)> &fn)
{
    rescanIfStale();
    std::unordered_set<std::string> seen;
    for (std::uint32_t s = 0; s < opts_.shard_count; ++s) {
        Shard &sh = *shards_[s];
        std::vector<std::shared_ptr<OpenSegment>> segs;
        {
            std::lock_guard<std::mutex> lock(sh.mu);
            segs = sh.segments;
            for (std::size_t i = 0; i < sh.pending.size(); ++i) {
                if (!seen.insert(sh.pending_keys[i]).second)
                    continue;
                IndexedEntry e;
                e.key = sh.pending_keys[i];
                e.seed = sh.pending[i].seed;
                e.seed_valid = sh.pending[i].seed_valid;
                e.payload_len = static_cast<std::uint32_t>(
                    sh.pending[i].payload.size());
                e.shard = s;
                fn(e);
            }
        }
        for (const auto &seg : segs) {
            for (const IndexEntry &ie : seg->index.entries) {
                const std::string key(seg->index.keyOf(ie));
                if (!seen.insert(key).second)
                    continue; // superseded by a newer segment
                IndexedEntry e;
                e.key = key;
                e.seed = ie.seed;
                e.seed_valid = (ie.flags & kIndexFlagSeedValid) != 0;
                e.payload_len = ie.payload_len;
                e.shard = s;
                e.segment = seg->name;
                fn(e);
            }
        }
    }
}

StoreStats
SegmentStore::stats() const
{
    StoreStats out;
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        out = stats_;
    }
    out.pending_entries = 0;
    for (const auto &sh : shards_) {
        std::lock_guard<std::mutex> lock(sh->mu);
        out.pending_entries += sh->pending.size();
    }
    return out;
}

std::size_t
SegmentStore::segmentCount()
{
    rescanIfStale();
    std::size_t n = 0;
    for (const auto &sh : shards_) {
        std::lock_guard<std::mutex> lock(sh->mu);
        n += sh->segments.size();
    }
    return n;
}

// --- Manifest ----------------------------------------------------------

bool
readManifest(const std::string &dir, Manifest &out)
{
    std::FILE *f =
        std::fopen((dir + "/" + SegmentStore::kManifestName).c_str(),
                   "rb");
    if (!f)
        return false;
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    // The trailer line `end <checksum>` covers every preceding byte; a
    // torn write (no trailer, or half a line) fails here and the whole
    // manifest is ignored.
    const std::size_t tail = text.rfind("\nend ");
    if (tail == std::string::npos)
        return false;
    const std::string body = text.substr(0, tail + 1);
    unsigned long long recorded = 0;
    if (std::sscanf(text.c_str() + tail + 5, "%llx", &recorded) != 1)
        return false;
    if (fnv1a64(body.data(), body.size()) != recorded)
        return false;

    Manifest m;
    std::size_t pos = 0;
    bool have_magic = false;
    while (pos < body.size()) {
        std::size_t eol = body.find('\n', pos);
        if (eol == std::string::npos)
            eol = body.size();
        const std::string line = body.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.rfind("SCMF ", 0) == 0) {
            have_magic = true;
        } else if (line.rfind("format ", 0) == 0) {
            m.format = static_cast<std::uint32_t>(
                std::strtoul(line.c_str() + 7, nullptr, 10));
        } else if (line.rfind("engine ", 0) == 0) {
            m.engine = static_cast<std::uint32_t>(
                std::strtoul(line.c_str() + 7, nullptr, 10));
        } else if (line.rfind("epoch ", 0) == 0) {
            m.epoch = std::strtoull(line.c_str() + 6, nullptr, 10);
        } else if (line.rfind("segment ", 0) == 0) {
            char name[128];
            unsigned long long count = 0;
            if (std::sscanf(line.c_str() + 8, "%127s %llu", name,
                            &count) == 2)
                m.segments.emplace_back(name, count);
        }
    }
    if (!have_magic)
        return false;
    out = std::move(m);
    return true;
}

bool
writeManifest(const std::string &dir, const Manifest &m)
{
    std::string body = "SCMF 1\n";
    body += "format " + std::to_string(m.format) + "\n";
    body += "engine " + std::to_string(m.engine) + "\n";
    body += "epoch " + std::to_string(m.epoch) + "\n";
    for (const auto &[name, count] : m.segments)
        body += "segment " + name + " " + std::to_string(count) + "\n";
    char trailer[32];
    std::snprintf(trailer, sizeof trailer, "end %016llx\n",
                  static_cast<unsigned long long>(
                      fnv1a64(body.data(), body.size())));

    const std::string path =
        dir + "/" + SegmentStore::kManifestName;
    const std::string tmp =
        path + ".tmp." +
        std::to_string(static_cast<unsigned long>(::getpid()));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    const bool wrote =
        std::fwrite(body.data(), 1, body.size(), f) == body.size() &&
        std::fwrite(trailer, 1, std::strlen(trailer), f) ==
            std::strlen(trailer);
    const bool closed = std::fclose(f) == 0;
    std::error_code ec;
    if (!wrote || !closed) {
        fs::remove(tmp, ec);
        return false;
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

} // namespace smartconf::store
