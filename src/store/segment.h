#ifndef SMARTCONF_STORE_SEGMENT_H_
#define SMARTCONF_STORE_SEGMENT_H_

/**
 * @file
 * On-disk segment format for the sharded run store.
 *
 * A segment is an immutable, self-describing batch of (key, payload)
 * records published with one atomic rename.  The layout is designed
 * around the store's two promises:
 *
 *   1. a lookup is one in-memory binary search plus ONE pread of the
 *      payload bytes — no per-entry open, no record-header parse;
 *   2. any corruption degrades to a miss (or to the bit-exact original
 *      on undamaged entries), never to a wrong replay.
 *
 * File layout (all integers native-endian; the store is a single-
 * machine artifact like the v5 blob cache before it):
 *
 *   [SegmentHeader: 64 bytes, fixed offset 0, self-checksummed]
 *   [records:  klen u32 | plen u32 | seed u64 | payload_checksum u64
 *              | key bytes | payload bytes]*
 *   [index block @ header.index_off:
 *              count * IndexEntry (sorted by (hash, key))
 *              + concatenated key blob]
 *
 * The index block carries everything a lookup or a range query needs —
 * key hash, payload extent, payload checksum, the parsed-out seed and
 * the full key text — so queries over (scenario family, policy, seed
 * range, chaos spec) never touch a record.  Records remain fully
 * self-describing so `verify` can cross-check the index against them
 * and a future rebuild pass could regenerate a damaged index.
 *
 * Checksum coverage (sim/kernels::checksum, bit-identical across ISA
 * levels): the header checks itself, the index block (entries + key
 * blob) is checked as a whole before any entry is trusted, and each
 * payload is checked against the per-entry checksum on read.  Record
 * headers are deliberately outside the read path: a flip there leaves
 * lookups serving the still-intact payload.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace smartconf::store {

inline constexpr char kSegmentMagic[4] = {'S', 'C', 'S', 'G'};
inline constexpr std::uint32_t kSegmentHeaderVersion = 1;
inline constexpr std::size_t kSegmentHeaderBytes = 64;
inline constexpr std::size_t kRecordHeaderBytes = 24;
inline constexpr std::size_t kIndexEntryBytes = 48;

/** Fixed 64-byte segment header (offset 0). */
struct SegmentHeader
{
    char magic[4];
    std::uint32_t header_version = kSegmentHeaderVersion;
    std::uint32_t format = 0; ///< DiskRunCache::kFormatVersion
    std::uint32_t engine = 0; ///< DiskRunCache::kEngineVersion
    std::uint32_t shard = 0;
    std::uint32_t level = 0; ///< 0 = fresh, n = n-times compacted
    std::uint64_t count = 0; ///< records (== index entries)
    std::uint64_t index_off = 0;
    std::uint64_t index_len = 0;
    std::uint64_t index_checksum = 0;
    std::uint64_t header_checksum = 0; ///< over the preceding 56 bytes
};
static_assert(sizeof(SegmentHeader) == kSegmentHeaderBytes,
              "segment header must pack to exactly 64 bytes");

/** One index slot; sorted by (hash, key) inside the block. */
struct IndexEntry
{
    std::uint64_t hash = 0;         ///< fnv1a64 of the full key
    std::uint64_t payload_off = 0;  ///< absolute file offset
    std::uint64_t payload_checksum = 0;
    std::uint64_t seed = 0;         ///< parsed from the key ("|s=N")
    std::uint32_t payload_len = 0;
    std::uint32_t key_off = 0;      ///< into the key blob
    std::uint32_t key_len = 0;
    std::uint32_t flags = 0;        ///< bit 0: seed field is valid
};
static_assert(sizeof(IndexEntry) == kIndexEntryBytes,
              "index entry must pack to exactly 48 bytes");

inline constexpr std::uint32_t kIndexFlagSeedValid = 1u;

/** A parsed, validated segment index held in memory. */
struct SegmentIndex
{
    std::vector<IndexEntry> entries; ///< sorted by (hash, key)
    std::string key_blob;            ///< key_off/key_len point here

    std::string_view keyOf(const IndexEntry &e) const
    {
        return std::string_view(key_blob).substr(e.key_off, e.key_len);
    }
};

/** FNV-1a 64-bit over raw bytes (key hashing, manifest lines). */
std::uint64_t fnv1a64(const void *data, std::size_t len);
std::uint64_t fnv1a64(const std::string &s);

/** The store's block checksum (sim/kernels::checksum). */
std::uint64_t blockChecksum(const void *data, std::size_t len);

/** Checksum of every header field before header_checksum. */
std::uint64_t headerChecksum(const SegmentHeader &h);

/**
 * Accumulates records in memory and writes a complete segment file.
 * The caller publishes the written temp file with rename.
 */
class SegmentBuilder
{
  public:
    SegmentBuilder(std::uint32_t format, std::uint32_t engine,
                   std::uint32_t shard, std::uint32_t level);

    /** Append one record (payload checksum precomputed by the caller). */
    void add(const std::string &key, std::uint64_t seed,
             bool seed_valid, std::uint64_t payload_checksum,
             const void *payload, std::size_t payload_len);

    std::size_t count() const { return keys_.size(); }
    std::size_t pendingBytes() const { return records_.size(); }

    /**
     * Write header + records + sorted index to @p path (truncating).
     * @return true on a fully written and closed file.
     */
    bool writeFile(const std::string &path) const;

  private:
    std::uint32_t format_, engine_, shard_, level_;
    std::vector<char> records_; ///< serialized record region
    struct Pending
    {
        std::uint64_t hash;
        std::uint64_t payload_off_in_region; ///< relative, pre-header
        std::uint64_t payload_checksum;
        std::uint64_t seed;
        std::uint32_t payload_len;
        std::uint32_t flags;
    };
    std::vector<Pending> meta_;
    std::vector<std::string> keys_; ///< parallel to meta_
};

/**
 * Read and validate the fixed header of @p path.
 * @return false on IO error, bad magic, bad header checksum, or a
 *         version mismatch against (@p format, @p engine) when those
 *         are nonzero.
 */
bool readSegmentHeader(const std::string &path, SegmentHeader &out,
                       std::uint32_t format = 0,
                       std::uint32_t engine = 0);

/**
 * Read and validate the index block of an already-validated header
 * from an open fd.  @return false when the block is torn, overruns the
 * file, or fails its checksum — the segment is then unusable as a
 * whole (every entry degrades to a miss).
 */
bool readSegmentIndex(int fd, const SegmentHeader &h, SegmentIndex &out);

} // namespace smartconf::store

#endif // SMARTCONF_STORE_SEGMENT_H_
