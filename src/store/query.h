#ifndef SMARTCONF_STORE_QUERY_H_
#define SMARTCONF_STORE_QUERY_H_

/**
 * @file
 * Range queries over the segment store's index — zero simulation,
 * zero payload IO.
 *
 * Run-cache keys are structured text:
 *
 *   <scenario_key>|<policy cache key>|s=<seed>
 *
 * where the policy cache key itself embeds the policy kind, tuned
 * values, an optional chaos spec (`:chaos:s=...`), and the label.  The
 * parser splits on the *first* and *last* unescaped '|' so policy keys
 * containing future separators keep working, and the scenario family
 * is the prefix of the scenario key up to its first '/' or ':'.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace smartconf::store {

class SegmentStore;

/** A run-cache key split into its queryable parts. */
struct ParsedRunKey
{
    std::string_view scenario; ///< full scenario key
    std::string_view family;   ///< scenario prefix before '/' or ':'
    std::string_view policy;   ///< full policy cache key
    std::string_view chaos;    ///< chaos suffix inside policy ("" = none)
    std::uint64_t seed = 0;
    bool seed_valid = false;
};

/**
 * Parse @p key (must outlive the views).  @return false when the key
 * does not have the `<scenario>|<policy>|s=<seed>` shape; such keys
 * still live in the store but match only empty filters.
 */
bool parseRunKey(std::string_view key, ParsedRunKey &out);

/** Conjunctive filter; default-constructed matches everything. */
struct QueryFilter
{
    std::string scenario_prefix; ///< family or any scenario-key prefix
    std::string policy_substr;   ///< substring of the policy cache key
    std::string chaos_substr;    ///< substring of the chaos suffix;
                                 ///< "*" = any chaos, "-" = no chaos
    std::uint64_t seed_min = 0;
    std::uint64_t seed_max = UINT64_MAX;

    bool matches(const ParsedRunKey &k) const;
};

/** One query result row (owning copies; safe to keep). */
struct QueryRow
{
    std::string key;
    std::string scenario;
    std::string policy;
    std::uint64_t seed = 0;
    bool seed_valid = false;
    std::uint32_t payload_len = 0;
    std::uint32_t shard = 0;
    std::string segment; ///< "" = pending buffer
};

/**
 * Scan the store's live index (pending + published, newest wins) and
 * return every row whose key matches @p f, sorted by key.  Touches no
 * payload bytes and runs no scenario.
 */
std::vector<QueryRow> queryStore(SegmentStore &store,
                                 const QueryFilter &f);

} // namespace smartconf::store

#endif // SMARTCONF_STORE_QUERY_H_
