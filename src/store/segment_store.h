#ifndef SMARTCONF_STORE_SEGMENT_STORE_H_
#define SMARTCONF_STORE_SEGMENT_STORE_H_

/**
 * @file
 * Sharded, compacted, queryable segment store for cached run results.
 *
 * Replaces the one-file-per-entry blob layout: entries are hashed into
 * a fixed power-of-two number of logical shards (independent of how
 * many processes write), buffered per shard, and published as
 * immutable append-only segment files — each carrying a sorted index
 * block (see store/segment.h) so a lookup costs one in-memory binary
 * search plus one pread of the payload.  50k entries land in dozens of
 * files instead of 50k.
 *
 * Multi-process discipline:
 *  - writers never touch a shared file: each process seals its own
 *    segments into uniquely named temp files and publishes them with
 *    one atomic rename — the same discipline the blob store used, now
 *    amortized over hundreds of entries per rename;
 *  - readers discover segments by directory listing (rescanned when
 *    the directory mtime moves), so a concurrent writer's published
 *    segments become visible without any coordination;
 *  - compaction merges a shard's sealed segments into one sorted
 *    higher-level segment (external-merge over the already-sorted
 *    indexes), publishes it by rename, atomically swaps the MANIFEST,
 *    and only then unlinks the inputs.  A reader races this safely:
 *    either it still holds the old fds (POSIX keeps the bytes alive),
 *    or its listing sees the merged segment; duplicate coverage during
 *    the swap window is harmless because entries are pure values and
 *    lookups stop at the newest match.
 *
 * The MANIFEST is advisory bookkeeping (epoch, live-segment list with
 * expected record counts) used by `verify` and `stats`; a torn or
 * missing manifest never blocks reads — the directory listing is the
 * source of truth.
 *
 * Thread safety: all public methods are safe to call concurrently;
 * per-shard mutexes guard pending buffers and segment lists, a store
 * mutex guards scans and the manifest.  An optional background thread
 * compacts shards whose segment count crosses a threshold.
 */

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "store/segment.h"

namespace smartconf::store {

/** A published segment with its index resident in memory. */
struct OpenSegment
{
    std::string name; ///< file name (not path)
    std::uint64_t seq = 0;
    SegmentHeader header;
    SegmentIndex index;
    int fd = -1;

    ~OpenSegment();
    OpenSegment() = default;
    OpenSegment(const OpenSegment &) = delete;
    OpenSegment &operator=(const OpenSegment &) = delete;
};

/** Aggregate counters; all monotonically increasing per instance. */
struct StoreStats
{
    std::uint64_t puts = 0;
    std::uint64_t put_bytes = 0;
    std::uint64_t gets = 0;
    std::uint64_t hits = 0;
    std::uint64_t reads = 0;      ///< payload preads served
    std::uint64_t read_bytes = 0; ///< payload bytes pread
    std::uint64_t segments_opened = 0;
    std::uint64_t segments_published = 0;
    std::uint64_t compactions = 0;
    std::uint64_t compacted_segments_in = 0;
    std::uint64_t rescans = 0;
    std::uint64_t pending_entries = 0; ///< snapshot, not monotonic
};

struct CompactionResult
{
    std::size_t shards_compacted = 0;
    std::size_t segments_in = 0;
    std::size_t segments_out = 0;
    std::uint64_t entries_in = 0;
    std::uint64_t entries_out = 0; ///< after dedup
    std::uint64_t bytes_written = 0;
};

struct VerifyIssue
{
    std::string segment; ///< file name, or "MANIFEST"
    std::string what;
};

struct VerifyResult
{
    std::size_t segments_ok = 0;
    std::size_t segments_corrupt = 0;
    std::uint64_t entries_ok = 0;
    std::uint64_t entries_corrupt = 0;
    bool manifest_ok = true;
    std::vector<VerifyIssue> issues;

    bool clean() const
    {
        return segments_corrupt == 0 && entries_corrupt == 0 &&
               manifest_ok;
    }
};

/** One live index slot surfaced to queries. */
struct IndexedEntry
{
    std::string_view key;
    std::uint64_t seed = 0;
    bool seed_valid = false;
    std::uint32_t payload_len = 0;
    std::uint32_t shard = 0;
    std::string_view segment; ///< file name; empty = pending buffer
};

class SegmentStore
{
  public:
    struct Options
    {
        std::size_t shard_count = 16; ///< power of two
        std::size_t flush_entries = 256; ///< per-shard seal threshold
        std::size_t flush_bytes = 4u << 20;
        bool auto_compact = true; ///< background thread
        std::size_t compact_min_segments = 8; ///< per shard
        std::uint32_t format = 0;
        std::uint32_t engine = 0;
    };

    /**
     * Open (lazily creating) the store in @p dir — the *versioned*
     * directory, e.g. `<root>/v6-e5`.  Nothing is created on disk
     * until the first flush.
     */
    explicit SegmentStore(std::string dir);
    SegmentStore(std::string dir, Options opts);
    ~SegmentStore(); ///< flushes pending entries, joins compaction

    SegmentStore(const SegmentStore &) = delete;
    SegmentStore &operator=(const SegmentStore &) = delete;

    /**
     * Buffer @p payload under @p key.  @p payload_checksum is the
     * caller's whole-payload checksum (DiskRunCache::checksum64) and
     * is verified again on every read.  Seals and publishes the
     * shard's segment when the pending buffer crosses the flush
     * threshold.  @return false when sealing was required and failed
     * (unwritable directory).
     */
    bool put(const std::string &key, const void *payload,
             std::size_t payload_len, std::uint64_t payload_checksum);

    /**
     * Fetch the payload stored under @p key into @p out.  Checks the
     * pending buffer, then published segments newest-first; validates
     * the full key and the payload checksum.  @return true on a hit.
     */
    bool get(const std::string &key, std::vector<char> &out);

    /** Publish every shard's pending entries as sealed segments. */
    bool flush();

    /** Synchronously merge every shard with more than one segment. */
    CompactionResult compact();

    /** Full-store scan: headers, indexes, records, manifest. */
    VerifyResult verify();

    /**
     * Invoke @p fn for every live index entry (pending + published,
     * newest wins on duplicate keys).  Serves range queries with zero
     * payload IO.  The views passed to @p fn die with the call.
     */
    void forEachEntry(const std::function<void(const IndexedEntry &)> &fn);

    StoreStats stats() const;
    const std::string &dir() const { return dir_; }
    std::size_t shardCount() const { return opts_.shard_count; }

    /** Published segment count (all shards); rescans first. */
    std::size_t segmentCount();

    /** Shard for a key: fnv1a64(key) masked to the shard count. */
    std::uint32_t shardOf(const std::string &key) const;

    /** Parse `|s=<N>` from a run-cache key. @return validity. */
    static bool seedOfKey(const std::string &key, std::uint64_t &seed);

    static constexpr const char *kManifestName = "MANIFEST";

  private:
    struct Shard
    {
        mutable std::mutex mu;
        // Pending entries in insertion order with a key->slot map so a
        // racing duplicate put overwrites instead of duplicating.
        std::vector<std::string> pending_keys;
        std::unordered_map<std::string, std::size_t> pending_slots;
        struct PendingEntry
        {
            std::uint64_t seed;
            bool seed_valid;
            std::uint64_t checksum;
            std::vector<char> payload;
        };
        std::vector<PendingEntry> pending;
        std::size_t pending_bytes = 0;
        // Newest-first (descending seq).
        std::vector<std::shared_ptr<OpenSegment>> segments;
    };

    bool sealShardLocked(Shard &sh, std::uint32_t shard_id);
    bool publishSegment(const SegmentBuilder &b, std::uint32_t shard_id,
                        std::string *published_name);
    std::shared_ptr<OpenSegment> openSegment(const std::string &name);
    void rescanIfStale();
    void rescanLocked();
    bool lookupSegments(const std::string &key, std::uint64_t hash,
                        Shard &sh, std::vector<char> &out);
    void writeManifestLocked();
    void kickCompactor();
    void compactionLoop();
    bool compactShard(std::uint32_t shard_id, CompactionResult &agg);
    std::uint64_t nextSeq() { return seq_.fetch_add(1) + 1; }

    std::string dir_;
    Options opts_;
    std::vector<std::unique_ptr<Shard>> shards_;

    mutable std::mutex store_mu_; ///< scan state + manifest + seq floor
    bool scanned_ = false;
    std::int64_t last_scan_stamp_ = -1;
    std::uint64_t manifest_epoch_ = 0;
    std::atomic<std::uint64_t> seq_{0};

    mutable std::mutex stats_mu_;
    StoreStats stats_;

    // Background compaction.
    std::thread compactor_;
    std::mutex compact_mu_;
    std::condition_variable compact_cv_;
    bool compact_wanted_ = false;
    bool stopping_ = false;
};

/**
 * Manifest IO (exposed for tests and smartconfctl).  The manifest is
 * line-oriented text ending in `end <fnv1a64-of-preceding-bytes>`; a
 * missing or mismatching trailer marks it torn and it is ignored.
 */
struct Manifest
{
    std::uint32_t format = 0;
    std::uint32_t engine = 0;
    std::uint64_t epoch = 0;
    std::vector<std::pair<std::string, std::uint64_t>> segments;
};

bool readManifest(const std::string &dir, Manifest &out);
bool writeManifest(const std::string &dir, const Manifest &m);

} // namespace smartconf::store

#endif // SMARTCONF_STORE_SEGMENT_STORE_H_
