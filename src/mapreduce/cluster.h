#ifndef SMARTCONF_MAPREDUCE_CLUSTER_H_
#define SMARTCONF_MAPREDUCE_CLUSTER_H_

/**
 * @file
 * MapReduce worker cluster with disk-gated task admission (MR2820).
 *
 * `local.dir.minspacestart` decides whether a worker has enough local
 * disk to start another task: a task is admitted only when free disk >=
 * minspacestart.  Admitted map tasks spill intermediate output onto the
 * local disk for the duration of the task; outputs are retained until
 * reducers fetch them.  The local disk also hosts workload-dependent
 * "other data" that fluctuates.
 *
 *  - minspacestart too small: tasks are admitted into thin headroom and
 *    their spills run the disk out of space — out-of-disk (OOD), the
 *    hard-constraint failure users reported;
 *  - minspacestart too large: workers sit idle despite ample space, and
 *    job latency suffers (the trade-off metric).
 *
 * The configuration is *direct* with a negative gain: raising it lowers
 * peak disk usage.  In the real system the value is computed on the
 * master and must reach the slaves; the cluster models that propagation
 * with a one-tick delay (the "Others" code-change row in Table 7).
 */

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/clock.h"
#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/shard.h"
#include "workload/wordcount.h"

namespace smartconf::mapreduce {

/** Worker and task mechanics. */
struct ClusterParams
{
    std::size_t workers = 2;
    double disk_capacity_mb = 1000.0;  ///< local disk per worker
    double other_base_mb = 250.0;      ///< non-MR data floor
    double other_walk_mb = 15.0;       ///< per-tick random-walk bound
    double other_max_mb = 420.0;       ///< cap of the walk
    sim::Tick task_duration = 30;      ///< ticks a map task runs
    sim::Tick fetch_delay = 40;        ///< retention until reducer fetch
    double spill_jitter = 0.15;        ///< relative stddev of spill size
};

/**
 * The simulated cluster: workers, disks, scheduler and one active job.
 */
class MrCluster
{
  public:
    MrCluster(const ClusterParams &params, std::uint64_t minspacestart_mb,
              sim::Rng rng);

    /** Submit a WordCount job; replaces any completed job. */
    void submitJob(const workload::WordCountJob &job, sim::Tick now);

    /** Advance one tick: task progress, retention, admission, OOD. */
    void step(sim::Tick now);

    /**
     * Master-side update of minspacestart; reaches the workers' admission
     * check after a one-tick propagation delay.
     */
    void setMinSpaceStart(double mb);
    double minSpaceStart() const { return minspace_effective_; }

    /** Peak disk usage across workers, this tick (the goal metric). */
    double maxDiskUsedMb() const;

    /**
     * Peak *projected* usage: current usage plus the not-yet-spilled
     * remainder of admitted tasks.  The scheduler knows each task's
     * split size, so this is observable in a real cluster — it is the
     * sensor the MR2820 controller consumes, since admitted tasks
     * cannot be un-admitted once the disk fills.
     */
    double projectedDiskUsedMb() const;

    /** Free disk on the fullest worker. */
    double minFreeMb() const;

    /** True when any worker ran out of disk. */
    bool ood() const { return ood_tick_ >= 0; }
    sim::Tick oodTick() const { return ood_tick_; }

    /** True when the submitted job finished all tasks. */
    bool jobDone() const;

    /** Submit -> all-tasks-complete, in ticks (valid when jobDone()). */
    double jobLatencyTicks() const;

    std::size_t pendingTasks() const { return pending_.size(); }
    std::size_t runningTasks() const;
    std::uint64_t completedTasks() const { return completed_tasks_; }

    /**
     * Tasks completed per logical shard (worker w maps to lane
     * w % sim::kShards) — MR2820's slice of the sharded data plane's
     * per-shard result surface.
     */
    const std::array<std::uint64_t, sim::kShards> &shardOps() const
    {
        return shard_ops_;
    }

    const ClusterParams &params() const { return params_; }

  private:
    struct RunningTask
    {
        double spill_total_mb = 0.0;
        double spilled_mb = 0.0;
        sim::Tick finish_at = 0;
    };

    struct Retained
    {
        double mb = 0.0;
        sim::Tick free_at = 0;
    };

    struct Worker
    {
        /** Shard-local stream for this worker's other-data walk,
         *  jump-derived from the master stream so workers never
         *  contend on one generator (per-shard state struct of the
         *  sharded data plane). */
        sim::Rng rng;
        double other_mb = 0.0;
        std::vector<RunningTask> running;
        std::vector<Retained> retained;
    };

    double diskUsed(const Worker &w) const;

    ClusterParams params_;
    double minspace_pending_;   ///< master's latest value
    double minspace_effective_; ///< what workers currently enforce
    sim::Rng rng_;              ///< master stream (spill jitter)
    std::vector<Worker> workers_;
    std::array<std::uint64_t, sim::kShards> shard_ops_{};
    /** Per-worker disk-usage staging for the pinned-order reductions
     *  (kernels::reduceMinMax) the sensors consume. */
    mutable std::vector<double> disk_scratch_;
    std::deque<double> pending_; ///< spill size per pending task
    std::uint64_t parallelism_ = 1;
    sim::Tick job_submitted_ = -1;
    sim::Tick job_finished_ = -1;
    std::uint64_t total_tasks_ = 0;
    std::uint64_t completed_tasks_ = 0;
    sim::Tick ood_tick_ = -1;
};

} // namespace smartconf::mapreduce

#endif // SMARTCONF_MAPREDUCE_CLUSTER_H_
