#ifndef SMARTCONF_MAPREDUCE_DISTCP_H_
#define SMARTCONF_MAPREDUCE_DISTCP_H_

/**
 * @file
 * Distributed-copy model for the MR5420 limitation study (Sec. 6.6).
 *
 * `max_chunks_tolerable` groups the input files into chunks that the
 * copy workers process in parallel:
 *
 *  - too FEW chunks: load imbalance — some workers sit idle while the
 *    unlucky ones copy oversized chunks;
 *  - too MANY chunks: per-chunk setup overhead dominates.
 *
 * Copy latency is therefore U-shaped in the chunk count — the
 * non-monotonic config->performance relationship the paper names as a
 * case SmartConf cannot manage (machine learning would fit better).
 */

#include <cstdint>

#include "sim/rng.h"

namespace smartconf::mapreduce {

/** Copy job and cluster mechanics. */
struct DistCpParams
{
    double total_mb = 8192.0;       ///< bytes to copy
    std::size_t workers = 8;        ///< parallel copy workers
    double rate_mb_per_tick = 4.0;  ///< per-worker copy bandwidth
    double chunk_setup_ticks = 6.0; ///< per-chunk negotiation/setup
    double jitter = 0.05;           ///< relative noise on chunk time
};

/**
 * Simulates one distributed copy with @p chunks chunks.
 *
 * @return completion latency in ticks (max over workers).
 */
double distCpLatency(const DistCpParams &params, std::uint64_t chunks,
                     sim::Rng &rng);

/** Chunk count minimizing the deterministic latency (for reference). */
std::uint64_t distCpBestChunks(const DistCpParams &params,
                               std::uint64_t lo, std::uint64_t hi);

} // namespace smartconf::mapreduce

#endif // SMARTCONF_MAPREDUCE_DISTCP_H_
