#include "mapreduce/cluster.h"

#include <algorithm>
#include <cmath>

#include "sim/kernels.h"

namespace smartconf::mapreduce {

MrCluster::MrCluster(const ClusterParams &params,
                     std::uint64_t minspacestart_mb, sim::Rng rng)
    : params_(params),
      minspace_pending_(static_cast<double>(minspacestart_mb)),
      minspace_effective_(static_cast<double>(minspacestart_mb)),
      rng_(rng), workers_(params.workers)
{
    // Each worker owns a jump-derived substream (2^128 apart) for its
    // other-data walk; the master keeps the base stream for job-level
    // draws.  Worker streams never interleave, so the per-worker loops
    // are independent of iteration order.
    sim::Rng walker = rng_;
    for (auto &w : workers_) {
        walker.jump();
        w.rng = walker;
        w.other_mb = params_.other_base_mb;
    }
    disk_scratch_.resize(workers_.size());
}

void
MrCluster::submitJob(const workload::WordCountJob &job, sim::Tick now)
{
    pending_.clear();
    const std::uint64_t tasks = job.mapTaskCount();
    for (std::uint64_t i = 0; i < tasks; ++i) {
        const double jitter =
            std::max(0.3, rng_.gaussian(1.0, params_.spill_jitter));
        pending_.push_back(job.spillPerTaskMb() * jitter);
    }
    parallelism_ = std::max<std::uint64_t>(1, job.parallelism);
    total_tasks_ = tasks;
    completed_tasks_ = 0;
    job_submitted_ = now;
    job_finished_ = -1;
}

void
MrCluster::setMinSpaceStart(double mb)
{
    minspace_pending_ = std::max(0.0, mb);
}

double
MrCluster::diskUsed(const Worker &w) const
{
    double used = w.other_mb;
    for (const auto &t : w.running)
        used += t.spilled_mb;
    for (const auto &r : w.retained)
        used += r.mb;
    return used;
}

double
MrCluster::maxDiskUsedMb() const
{
    // Sensor reduction over the per-worker shard states, merged in
    // pinned order by the kernel layer (order-insensitive for max, but
    // keeps every sensor on the same reduction path).
    for (std::size_t i = 0; i < workers_.size(); ++i)
        disk_scratch_[i] = diskUsed(workers_[i]);
    const auto mm =
        sim::kernels::reduceMinMax(disk_scratch_.data(),
                                   disk_scratch_.size());
    return std::max(0.0, mm.max);
}

double
MrCluster::projectedDiskUsedMb() const
{
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        const Worker &w = workers_[i];
        double projected = diskUsed(w);
        for (const auto &t : w.running)
            projected += t.spill_total_mb - t.spilled_mb;
        disk_scratch_[i] = projected;
    }
    const auto mm =
        sim::kernels::reduceMinMax(disk_scratch_.data(),
                                   disk_scratch_.size());
    return std::max(0.0, mm.max);
}

double
MrCluster::minFreeMb() const
{
    return params_.disk_capacity_mb - maxDiskUsedMb();
}

std::size_t
MrCluster::runningTasks() const
{
    std::size_t n = 0;
    for (const auto &w : workers_)
        n += w.running.size();
    return n;
}

bool
MrCluster::jobDone() const
{
    return total_tasks_ > 0 && completed_tasks_ == total_tasks_;
}

double
MrCluster::jobLatencyTicks() const
{
    if (!jobDone() || job_finished_ < 0)
        return -1.0;
    return static_cast<double>(job_finished_ - job_submitted_);
}

void
MrCluster::step(sim::Tick now)
{
    if (ood())
        return; // a worker's disk is full: the job is dead

    // Master -> slave propagation: last tick's pending value becomes
    // effective before this tick's admission decisions.
    minspace_effective_ = minspace_pending_;

    for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
        Worker &w = workers_[wi];
        // Other-data random walk (DFS blocks, logs, shuffle of other
        // jobs), drawn from the worker's own shard stream.
        w.other_mb += w.rng.uniform(-params_.other_walk_mb,
                                    params_.other_walk_mb);
        w.other_mb = std::clamp(w.other_mb, params_.other_base_mb * 0.6,
                                params_.other_max_mb);

        // Task progress: spill linearly over the task duration.
        for (auto &t : w.running) {
            const double per_tick =
                t.spill_total_mb /
                static_cast<double>(params_.task_duration);
            t.spilled_mb =
                std::min(t.spill_total_mb, t.spilled_mb + per_tick);
        }

        // Completions: move full spills into the retention set.
        for (auto it = w.running.begin(); it != w.running.end();) {
            if (now >= it->finish_at) {
                w.retained.push_back(
                    {it->spill_total_mb, now + params_.fetch_delay});
                ++completed_tasks_;
                ++shard_ops_[wi % sim::kShards];
                it = w.running.erase(it);
            } else {
                ++it;
            }
        }

        // Reducer fetches free retained output.
        for (auto it = w.retained.begin(); it != w.retained.end();) {
            if (now >= it->free_at) {
                it = w.retained.erase(it);
            } else {
                ++it;
            }
        }
    }

    // Admission: a worker takes a new task only when its free disk is
    // at least minspacestart (the MR2820 gate).  At most one task per
    // worker per tick — MapReduce assigns work one task per tracker
    // heartbeat.
    for (auto &w : workers_) {
        if (pending_.empty() || w.running.size() >= parallelism_)
            continue;
        const double free = params_.disk_capacity_mb - diskUsed(w);
        if (free < minspace_effective_)
            continue;
        RunningTask task;
        task.spill_total_mb = pending_.front();
        task.finish_at = now + params_.task_duration;
        pending_.pop_front();
        w.running.push_back(task);
    }

    // OOD latch: any worker above capacity kills the job.
    if (ood_tick_ < 0 && maxDiskUsedMb() > params_.disk_capacity_mb)
        ood_tick_ = now;

    if (jobDone() && job_finished_ < 0)
        job_finished_ = now;
}

} // namespace smartconf::mapreduce
