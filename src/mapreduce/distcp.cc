#include "mapreduce/distcp.h"

#include <algorithm>
#include <cmath>

namespace smartconf::mapreduce {

double
distCpLatency(const DistCpParams &params, std::uint64_t chunks,
              sim::Rng &rng)
{
    if (chunks == 0)
        chunks = 1;
    const double chunk_mb =
        params.total_mb / static_cast<double>(chunks);
    // Round-robin assignment: the busiest worker gets ceil(K/W) chunks.
    const std::uint64_t per_worker =
        (chunks + params.workers - 1) / params.workers;
    const double chunk_time =
        chunk_mb / params.rate_mb_per_tick + params.chunk_setup_ticks;
    const double noise =
        std::max(0.5, rng.gaussian(1.0, params.jitter));
    return static_cast<double>(per_worker) * chunk_time * noise;
}

std::uint64_t
distCpBestChunks(const DistCpParams &params, std::uint64_t lo,
                 std::uint64_t hi)
{
    sim::Rng quiet(0);
    DistCpParams noiseless = params;
    noiseless.jitter = 0.0;
    std::uint64_t best = lo;
    double best_latency = 1e300;
    for (std::uint64_t k = lo; k <= hi; ++k) {
        sim::Rng rng(1);
        const double latency = distCpLatency(noiseless, k, rng);
        if (latency < best_latency) {
            best_latency = latency;
            best = k;
        }
    }
    return best;
}

} // namespace smartconf::mapreduce
