#include "study/tables.h"

#include <iomanip>
#include <sstream>

namespace smartconf::study {

namespace {

/** Fixed-width cell helper for the aligned text tables. */
void
cell(std::ostringstream &out, const std::string &text, int width)
{
    out << std::left << std::setw(width) << text;
}

void
num(std::ostringstream &out, int value, int width = 6)
{
    out << std::right << std::setw(width) << value;
}

} // namespace

Table3Counts
aggregateTable3(const StudyDataset &ds, System sys)
{
    Table3Counts out;
    for (const auto &issue : ds.issuesOf(sys)) {
        switch (issue.category) {
          case PatchCategory::TuneNewFunctionality:
            ++out.tune_new;
            break;
          case PatchCategory::ReplaceHardCoded:
            ++out.replace_hard_coded;
            break;
          case PatchCategory::RefineExisting:
            ++out.refine_existing;
            break;
          case PatchCategory::FixPoorDefault:
            ++out.fix_poor_default;
            break;
        }
    }
    return out;
}

Table4Counts
aggregateTable4(const StudyDataset &ds, System sys)
{
    Table4Counts out;
    for (const auto &issue : ds.issuesOf(sys)) {
        out.latency += issue.affects_latency ? 1 : 0;
        out.throughput += issue.affects_throughput ? 1 : 0;
        out.memdisk += issue.affects_memdisk ? 1 : 0;
        out.always_on += issue.conditional ? 0 : 1;
        out.conditional += issue.conditional ? 1 : 0;
        out.direct += issue.indirect ? 0 : 1;
        out.indirect += issue.indirect ? 1 : 0;
    }
    return out;
}

Table5Counts
aggregateTable5(const StudyDataset &ds, System sys)
{
    Table5Counts out;
    for (const auto &issue : ds.issuesOf(sys)) {
        switch (issue.var_type) {
          case VarType::Integer:
            ++out.integer;
            break;
          case VarType::FloatingPoint:
            ++out.floating;
            break;
          case VarType::NonNumerical:
            ++out.non_numerical;
            break;
        }
        switch (issue.factor) {
          case DecidingFactor::StaticSystem:
            ++out.static_system;
            break;
          case DecidingFactor::StaticWorkload:
            ++out.static_workload;
            break;
          case DecidingFactor::Dynamic:
            ++out.dynamic;
            break;
        }
    }
    return out;
}

HeadlineStats
aggregateHeadlines(const StudyDataset &ds)
{
    HeadlineStats out;
    out.issues = static_cast<int>(ds.issues().size());
    out.posts = static_cast<int>(ds.posts().size());
    for (const auto &issue : ds.issues()) {
        out.multi_metric_issues += issue.multi_metric ? 1 : 0;
        out.func_tradeoff_issues += issue.func_tradeoff ? 1 : 0;
        out.hard_constraint_issues += issue.threatens_hard ? 1 : 0;
    }
    for (const auto &post : ds.posts()) {
        out.posts_howto += post.type == PostType::HowToSet ? 1 : 0;
        out.posts_specific_conf += post.asks_specific_conf ? 1 : 0;
        out.posts_oom += post.mentions_oom ? 1 : 0;
    }
    int allconf_issues = 0, allconf_posts = 0;
    for (const System sys : kSystems) {
        const SuiteCounts c = ds.suiteCounts(sys);
        allconf_issues += c.allconf_issues;
        allconf_posts += c.allconf_posts;
    }
    out.perfconf_issue_share =
        allconf_issues > 0
            ? static_cast<double>(out.issues) / allconf_issues
            : 0.0;
    out.perfconf_post_share =
        allconf_posts > 0 ? static_cast<double>(out.posts) / allconf_posts
                          : 0.0;
    return out;
}

std::string
formatTable2(const StudyDataset &ds)
{
    std::ostringstream out;
    out << "Table 2. Empirical study suite\n";
    cell(out, "System", 12);
    out << "| PerfConf Issues  Posts | AllConf Issues  Posts\n";
    out << std::string(62, '-') << "\n";
    int ti = 0, tp = 0, tai = 0, tap = 0;
    for (const System sys : kSystems) {
        const SuiteCounts c = ds.suiteCounts(sys);
        cell(out, systemFullName(sys), 12);
        out << "|";
        num(out, c.perfconf_issues, 16);
        num(out, c.perfconf_posts, 7);
        out << " |";
        num(out, c.allconf_issues, 15);
        num(out, c.allconf_posts, 7);
        out << "\n";
        ti += c.perfconf_issues;
        tp += c.perfconf_posts;
        tai += c.allconf_issues;
        tap += c.allconf_posts;
    }
    out << std::string(62, '-') << "\n";
    cell(out, "Total", 12);
    out << "|";
    num(out, ti, 16);
    num(out, tp, 7);
    out << " |";
    num(out, tai, 15);
    num(out, tap, 7);
    out << "\n";
    return out.str();
}

std::string
formatTable3(const StudyDataset &ds)
{
    std::ostringstream out;
    out << "Table 3. Different types of PerfConf patches\n";
    cell(out, "Category", 38);
    for (const System sys : kSystems)
        cell(out, std::string("    ") + systemShortName(sys), 6);
    out << "\n" << std::string(62, '-') << "\n";

    const char *labels[4] = {
        "Add new conf: tune a new functionality",
        "Add new conf: replace hard-coded data",
        "Add new conf: refine an existing conf",
        "Change existing conf: fix poor default",
    };
    for (int row = 0; row < 4; ++row) {
        cell(out, labels[row], 38);
        for (const System sys : kSystems) {
            const Table3Counts c = aggregateTable3(ds, sys);
            const int v = row == 0   ? c.tune_new
                          : row == 1 ? c.replace_hard_coded
                          : row == 2 ? c.refine_existing
                                     : c.fix_poor_default;
            num(out, v, 6);
        }
        out << "\n";
    }
    return out.str();
}

std::string
formatTable4(const StudyDataset &ds)
{
    std::ostringstream out;
    out << "Table 4. How a PerfConf affects performance\n";
    out << "(one PerfConf can affect more than one metric)\n";
    cell(out, "", 28);
    for (const System sys : kSystems)
        cell(out, std::string("    ") + systemShortName(sys), 6);
    out << "\n" << std::string(52, '-') << "\n";

    const char *labels[7] = {
        "User-Request Latency",   "Internal Job Throughput",
        "Memory/Disk Consumption", "Always-on Impact",
        "Conditional Impact",      "Direct Impact",
        "Indirect Impact",
    };
    for (int row = 0; row < 7; ++row) {
        if (row == 3 || row == 5)
            out << std::string(52, '-') << "\n";
        cell(out, labels[row], 28);
        for (const System sys : kSystems) {
            const Table4Counts c = aggregateTable4(ds, sys);
            const int v = row == 0   ? c.latency
                          : row == 1 ? c.throughput
                          : row == 2 ? c.memdisk
                          : row == 3 ? c.always_on
                          : row == 4 ? c.conditional
                          : row == 5 ? c.direct
                                     : c.indirect;
            num(out, v, 6);
        }
        out << "\n";
    }
    return out.str();
}

std::string
formatTable5(const StudyDataset &ds)
{
    std::ostringstream out;
    out << "Table 5. How to set PerfConfs\n";
    cell(out, "", 32);
    for (const System sys : kSystems)
        cell(out, std::string("    ") + systemShortName(sys), 6);
    out << "\n" << std::string(56, '-') << "\n";

    out << "Configuration Variable Type\n";
    const char *type_labels[3] = {"  Integer", "  Floating Points",
                                  "  Non-Numerical"};
    for (int row = 0; row < 3; ++row) {
        cell(out, type_labels[row], 32);
        for (const System sys : kSystems) {
            const Table5Counts c = aggregateTable5(ds, sys);
            const int v = row == 0   ? c.integer
                          : row == 1 ? c.floating
                                     : c.non_numerical;
            num(out, v, 6);
        }
        out << "\n";
    }
    out << "Deciding Factors\n";
    const char *factor_labels[3] = {"  Static system settings",
                                    "  Static workload characteristics",
                                    "  Dynamic factors"};
    for (int row = 0; row < 3; ++row) {
        cell(out, factor_labels[row], 32);
        for (const System sys : kSystems) {
            const Table5Counts c = aggregateTable5(ds, sys);
            const int v = row == 0   ? c.static_system
                          : row == 1 ? c.static_workload
                                     : c.dynamic;
            num(out, v, 6);
        }
        out << "\n";
    }
    return out.str();
}

std::string
formatHeadlines(const StudyDataset &ds)
{
    const HeadlineStats h = aggregateHeadlines(ds);
    std::ostringstream out;
    out << "Headline statistics (paper Sec. 2.2)\n";
    out << "  PerfConf issues studied:          " << h.issues << "\n";
    out << "  PerfConf posts studied:           " << h.posts << "\n";
    out << std::fixed << std::setprecision(0);
    out << "  PerfConf share of config issues:  "
        << h.perfconf_issue_share * 100.0 << "% (paper: ~65%)\n";
    out << "  PerfConf share of config posts:   "
        << h.perfconf_post_share * 100.0 << "% (paper: ~35%)\n";
    out << "  Multi-metric PerfConfs:           " << h.multi_metric_issues
        << " of " << h.issues << " (paper: 61 of 80)\n";
    out << "  Functionality/perf tradeoffs:     "
        << h.func_tradeoff_issues << " (paper: 13)\n";
    out << "  Threaten hard constraints:        "
        << h.hard_constraint_issues << " (paper: about half)\n";
    out << "  Posts asking how to set:          " << h.posts_howto
        << " (paper: ~40%)\n";
    out << "  Posts about one specific conf:    "
        << h.posts_specific_conf << " (paper: ~half)\n";
    out << "  OOM-related posts:                " << h.posts_oom
        << " (paper: ~30%)\n";
    return out.str();
}

} // namespace smartconf::study
