#include "study/dataset.h"

#include <cassert>

namespace smartconf::study {

namespace {

/** Published per-system counts (paper Tables 2-5). */
struct Targets
{
    int issues;
    // Table 3: tune-new, replace-hard-coded, refine-existing, fix-default.
    int cat[4];
    // Table 4 metrics: latency, throughput, memory/disk.
    int lat, thr, mem;
    // Table 4: always-on vs conditional.
    int always, cond;
    // Table 4: direct vs indirect.
    int direct, indirect;
    // Table 5 types: integer, floating point, non-numerical.
    int vint, vfloat, vnon;
    // Table 5 factors: static system, static workload, dynamic.
    int fsys, fwork, fdyn;
    // Table 2 populations.
    int posts, allconf_issues, allconf_posts;
    // Sec. 2.2.1 per-system shares (chosen to hit the global ~40%/~50%/
    // ~30% statistics exactly).
    int posts_howto, posts_specific, posts_oom;
    // Functionality-vs-performance tradeoffs (13 global).
    int func_tradeoff;
};

constexpr Targets kCassandra = {
    20, {11, 2, 2, 5}, 14, 8, 9, 9, 11, 7, 13,
    15, 4, 1, 0, 4, 16, 20, 32, 60, 8, 10, 6, 3};
constexpr Targets kHBase = {
    30, {16, 1, 0, 13}, 28, 3, 15, 17, 13, 16, 14,
    23, 5, 2, 1, 0, 29, 7, 48, 33, 3, 4, 2, 5};
constexpr Targets kHdfs = {
    20, {8, 7, 0, 5}, 20, 5, 8, 8, 12, 8, 12,
    19, 0, 1, 0, 0, 20, 7, 31, 39, 3, 3, 2, 3};
constexpr Targets kMapReduce = {
    10, {4, 4, 1, 1}, 9, 0, 7, 6, 4, 4, 6,
    9, 0, 1, 1, 2, 7, 20, 13, 25, 8, 10, 6, 2};

/** Total issues flagged as fine-grained multi-metric (Sec. 2.2.2). */
constexpr int kTotalMultiMetric = 61;

const Targets &
targetsFor(System sys)
{
    switch (sys) {
      case System::Cassandra:
        return kCassandra;
      case System::HBase:
        return kHBase;
      case System::Hdfs:
        return kHdfs;
      case System::MapReduce:
        return kMapReduce;
    }
    assert(false && "unreachable");
    return kCassandra;
}

/**
 * Assign @p count extra metric markers, scanning issues from the front
 * and skipping issues that already carry the metric.
 */
template <typename Getter>
void
assignExtras(std::vector<IssueRecord> &issues, int count, Getter member)
{
    for (auto &issue : issues) {
        if (count == 0)
            break;
        if (!(issue.*member)) {
            issue.*member = true;
            --count;
        }
    }
    assert(count == 0 && "metric counts exceed feasible assignments");
}

/** Build the issue records of one system to match its targets. */
std::vector<IssueRecord>
buildIssues(System sys)
{
    const Targets &t = targetsFor(sys);
    std::vector<IssueRecord> issues(static_cast<std::size_t>(t.issues));

    for (int i = 0; i < t.issues; ++i) {
        issues[i].sys = sys;
        issues[i].id = std::string(systemShortName(sys)) + "-" +
                       std::to_string(1000 + i);
    }

    // Table 3 categories, in row order.
    {
        int idx = 0;
        const PatchCategory cats[4] = {
            PatchCategory::TuneNewFunctionality,
            PatchCategory::ReplaceHardCoded,
            PatchCategory::RefineExisting,
            PatchCategory::FixPoorDefault,
        };
        for (int c = 0; c < 4; ++c) {
            for (int k = 0; k < t.cat[c]; ++k)
                issues[idx++].category = cats[c];
        }
        assert(idx == t.issues);
    }

    // Table 4 metrics.  First give every issue one metric (latency fills
    // from the front, then throughput, then memory/disk), then spread
    // the remaining markers over issues lacking that metric.
    {
        int lat = t.lat, thr = t.thr, mem = t.mem;
        for (int i = 0; i < t.issues; ++i) {
            if (lat > 0) {
                issues[i].affects_latency = true;
                --lat;
            } else if (thr > 0) {
                issues[i].affects_throughput = true;
                --thr;
            } else {
                assert(mem > 0);
                issues[i].affects_memdisk = true;
                --mem;
            }
        }
        assignExtras(issues, lat, &IssueRecord::affects_latency);
        assignExtras(issues, thr, &IssueRecord::affects_throughput);
        assignExtras(issues, mem, &IssueRecord::affects_memdisk);
    }

    // Table 4 conditional/indirect.  Conditional fills from the front,
    // indirect from the back, decorrelating the two dimensions a little.
    for (int i = 0; i < t.cond; ++i)
        issues[i].conditional = true;
    for (int i = 0; i < t.indirect; ++i)
        issues[t.issues - 1 - i].indirect = true;

    // Table 5 variable types and deciding factors.
    {
        int idx = 0;
        for (int k = 0; k < t.vint; ++k)
            issues[idx++].var_type = VarType::Integer;
        for (int k = 0; k < t.vfloat; ++k)
            issues[idx++].var_type = VarType::FloatingPoint;
        for (int k = 0; k < t.vnon; ++k)
            issues[idx++].var_type = VarType::NonNumerical;
        assert(idx == t.issues);
    }
    {
        int idx = 0;
        for (int k = 0; k < t.fsys; ++k)
            issues[idx++].factor = DecidingFactor::StaticSystem;
        for (int k = 0; k < t.fwork; ++k)
            issues[idx++].factor = DecidingFactor::StaticWorkload;
        for (int k = 0; k < t.fdyn; ++k)
            issues[idx++].factor = DecidingFactor::Dynamic;
        assert(idx == t.issues);
    }

    // Functionality-vs-performance tradeoffs (13 across all systems).
    for (int i = 0; i < t.func_tradeoff; ++i)
        issues[i].func_tradeoff = true;

    // "About half threaten hard constraints": exactly the OOM/OOD class,
    // i.e. the memory/disk-affecting issues.
    for (auto &issue : issues)
        issue.threatens_hard = issue.affects_memdisk;

    // Coarse multi-metric issues are certainly fine-grained multi-metric.
    for (auto &issue : issues)
        issue.multi_metric = issue.coarseMetricCount() >= 2;

    return issues;
}

/** Build the post records of one system. */
std::vector<PostRecord>
buildPosts(System sys)
{
    const Targets &t = targetsFor(sys);
    std::vector<PostRecord> posts(static_cast<std::size_t>(t.posts));
    for (int i = 0; i < t.posts; ++i) {
        posts[i].sys = sys;
        posts[i].type = i < t.posts_howto ? PostType::HowToSet
                                          : PostType::ImproveOrAvoid;
        posts[i].asks_specific_conf = i < t.posts_specific;
        posts[i].mentions_oom = i >= t.posts - t.posts_oom;
    }
    return posts;
}

} // namespace

const char *
systemShortName(System sys)
{
    switch (sys) {
      case System::Cassandra:
        return "CA";
      case System::HBase:
        return "HB";
      case System::Hdfs:
        return "HD";
      case System::MapReduce:
        return "MR";
    }
    return "??";
}

const char *
systemFullName(System sys)
{
    switch (sys) {
      case System::Cassandra:
        return "Cassandra";
      case System::HBase:
        return "HBase";
      case System::Hdfs:
        return "HDFS";
      case System::MapReduce:
        return "MapReduce";
    }
    return "unknown";
}

StudyDataset
StudyDataset::paper()
{
    StudyDataset ds;
    for (const System sys : kSystems) {
        auto issues = buildIssues(sys);
        ds.issues_.insert(ds.issues_.end(), issues.begin(), issues.end());
        auto posts = buildPosts(sys);
        ds.posts_.insert(ds.posts_.end(), posts.begin(), posts.end());
    }

    // Top up the fine-grained multi-metric flag to the published 61:
    // issues whose several metrics share one coarse row.
    int flagged = 0;
    for (const auto &issue : ds.issues_)
        flagged += issue.multi_metric ? 1 : 0;
    for (auto &issue : ds.issues_) {
        if (flagged >= kTotalMultiMetric)
            break;
        if (!issue.multi_metric) {
            issue.multi_metric = true;
            ++flagged;
        }
    }
    assert(flagged == kTotalMultiMetric);
    return ds;
}

SuiteCounts
StudyDataset::suiteCounts(System sys) const
{
    const Targets &t = targetsFor(sys);
    SuiteCounts out;
    for (const auto &issue : issues_)
        out.perfconf_issues += issue.sys == sys ? 1 : 0;
    for (const auto &post : posts_)
        out.perfconf_posts += post.sys == sys ? 1 : 0;
    out.allconf_issues = t.allconf_issues;
    out.allconf_posts = t.allconf_posts;
    return out;
}

std::vector<IssueRecord>
StudyDataset::issuesOf(System sys) const
{
    std::vector<IssueRecord> out;
    for (const auto &issue : issues_) {
        if (issue.sys == sys)
            out.push_back(issue);
    }
    return out;
}

std::vector<PostRecord>
StudyDataset::postsOf(System sys) const
{
    std::vector<PostRecord> out;
    for (const auto &post : posts_) {
        if (post.sys == sys)
            out.push_back(post);
    }
    return out;
}

} // namespace smartconf::study
