#ifndef SMARTCONF_STUDY_TABLES_H_
#define SMARTCONF_STUDY_TABLES_H_

/**
 * @file
 * Aggregation and rendering of the paper's study tables (Tables 2-5).
 *
 * Aggregates are exposed as plain structs so the test suite can compare
 * each cell against the published numbers; the format functions render
 * the same aligned text tables the bench binary prints.
 */

#include <string>

#include "study/dataset.h"

namespace smartconf::study {

/** Table 3 row set for one system. */
struct Table3Counts
{
    int tune_new = 0;
    int replace_hard_coded = 0;
    int refine_existing = 0;
    int fix_poor_default = 0;

    int total() const
    {
        return tune_new + replace_hard_coded + refine_existing +
               fix_poor_default;
    }
};

/** Table 4 column for one system. */
struct Table4Counts
{
    int latency = 0;
    int throughput = 0;
    int memdisk = 0;
    int always_on = 0;
    int conditional = 0;
    int direct = 0;
    int indirect = 0;
};

/** Table 5 column for one system. */
struct Table5Counts
{
    int integer = 0;
    int floating = 0;
    int non_numerical = 0;
    int static_system = 0;
    int static_workload = 0;
    int dynamic = 0;
};

/** Sec. 2.2.1 / 2.2.2 headline statistics across all systems. */
struct HeadlineStats
{
    int issues = 0;
    int posts = 0;
    int multi_metric_issues = 0;  ///< 61 in the paper
    int func_tradeoff_issues = 0; ///< 13 in the paper
    int hard_constraint_issues = 0; ///< "about half"
    int posts_howto = 0;          ///< ~40%
    int posts_specific_conf = 0;  ///< ~half
    int posts_oom = 0;            ///< ~30%
    double perfconf_issue_share = 0.0; ///< 65% of AllConf issues
    double perfconf_post_share = 0.0;  ///< 35% of AllConf posts
};

Table3Counts aggregateTable3(const StudyDataset &ds, System sys);
Table4Counts aggregateTable4(const StudyDataset &ds, System sys);
Table5Counts aggregateTable5(const StudyDataset &ds, System sys);
HeadlineStats aggregateHeadlines(const StudyDataset &ds);

/** Render Table N as aligned text, matching the paper's layout. */
std::string formatTable2(const StudyDataset &ds);
std::string formatTable3(const StudyDataset &ds);
std::string formatTable4(const StudyDataset &ds);
std::string formatTable5(const StudyDataset &ds);

/** Render the Sec. 2.2.1/2.2.2 headline statistics. */
std::string formatHeadlines(const StudyDataset &ds);

} // namespace smartconf::study

#endif // SMARTCONF_STUDY_TABLES_H_
