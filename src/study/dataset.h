#ifndef SMARTCONF_STUDY_DATASET_H_
#define SMARTCONF_STUDY_DATASET_H_

/**
 * @file
 * The empirical study dataset (paper Sec. 2, Tables 2-5).
 *
 * The paper studies 80 PerfConf issue-tracker entries and 54 user posts
 * across Cassandra, HBase, HDFS and MapReduce and aggregates them along
 * several categorical dimensions.  We reproduce the study as data: one
 * record per issue/post carrying exactly the attributes the paper
 * aggregates.  The generator assigns attributes so that *every marginal
 * count in Tables 2-5 matches the paper*; the test suite cross-checks
 * each printed cell against the published numbers.
 *
 * One published statistic is not derivable from Table 4's three coarse
 * metric rows: "most PerfConfs affect multiple performance metrics
 * (61 out of 80)".  Table 4's three coarse rows cannot yield 61 issues
 * with two or more rows each; many of the 61 overlap *within* a row
 * (e.g. read latency and write latency are both "user-request latency").
 * The dataset therefore carries an explicit fine-grained multi-metric
 * flag set on exactly 61 records; issues overlapping across coarse rows
 * are a subset of those.
 */

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace smartconf::study {

/** The four studied systems (Table 2 order). */
enum class System
{
    Cassandra,
    HBase,
    Hdfs,
    MapReduce,
};

inline constexpr std::array<System, 4> kSystems = {
    System::Cassandra, System::HBase, System::Hdfs, System::MapReduce};

/** Short display name ("CA", "HB", "HD", "MR"). */
const char *systemShortName(System sys);

/** Full display name ("Cassandra", ...). */
const char *systemFullName(System sys);

/** Why the PerfConf patch was written (Table 3 rows). */
enum class PatchCategory
{
    TuneNewFunctionality, ///< add a new conf to tune a new feature
    ReplaceHardCoded,     ///< add a new conf to replace hard-coded data
    RefineExisting,       ///< add a new conf to refine an existing conf
    FixPoorDefault,       ///< change an existing conf's bad default
};

/** Configuration variable type (Table 5 rows). */
enum class VarType
{
    Integer,
    FloatingPoint,
    NonNumerical,
};

/** What decides the proper setting (Table 5 rows). */
enum class DecidingFactor
{
    StaticSystem,   ///< static system settings (e.g. core count)
    StaticWorkload, ///< workload characteristics known before launch
    Dynamic,        ///< dynamic workload/environment characteristics
};

/** One studied PerfConf issue (80 total). */
struct IssueRecord
{
    System sys = System::Cassandra;
    std::string id;                 ///< synthetic stable identifier
    PatchCategory category = PatchCategory::TuneNewFunctionality;

    // Table 4, metric rows (an issue may affect several).
    bool affects_latency = false;     ///< user-request latency
    bool affects_throughput = false;  ///< internal job throughput
    bool affects_memdisk = false;     ///< memory/disk consumption

    bool conditional = false; ///< Table 4: conditional vs always-on impact
    bool indirect = false;    ///< Table 4: indirect vs direct impact

    VarType var_type = VarType::Integer;          ///< Table 5
    DecidingFactor factor = DecidingFactor::Dynamic; ///< Table 5

    bool multi_metric = false;   ///< fine-grained: >= 2 metrics (61/80)
    bool func_tradeoff = false;  ///< functionality-vs-perf tradeoff (13)
    bool threatens_hard = false; ///< OOM/OOD-class constraint (~half)

    /** Number of coarse Table 4 metric rows this issue touches. */
    int coarseMetricCount() const
    {
        return (affects_latency ? 1 : 0) + (affects_throughput ? 1 : 0) +
               (affects_memdisk ? 1 : 0);
    }
};

/** Why the user posted (Sec. 2.2.1). */
enum class PostType
{
    HowToSet,       ///< does not understand how to set a PerfConf (~40%)
    ImproveOrAvoid, ///< wants better perf / to avoid OOM (~60%)
};

/** One studied StackOverflow post (54 total). */
struct PostRecord
{
    System sys = System::Cassandra;
    PostType type = PostType::HowToSet;
    bool asks_specific_conf = false; ///< about one named PerfConf (~half)
    bool mentions_oom = false;       ///< OOM-related (~30%)
};

/** Issue/post population sizes per system (Table 2). */
struct SuiteCounts
{
    int perfconf_issues = 0;
    int perfconf_posts = 0;
    int allconf_issues = 0;
    int allconf_posts = 0;
};

/**
 * The full reproduced study.
 */
class StudyDataset
{
  public:
    /** Build the dataset matching the paper's published counts. */
    static StudyDataset paper();

    const std::vector<IssueRecord> &issues() const { return issues_; }
    const std::vector<PostRecord> &posts() const { return posts_; }

    /** Table 2 row for @p sys (includes the AllConf columns). */
    SuiteCounts suiteCounts(System sys) const;

    /** Issues of one system. */
    std::vector<IssueRecord> issuesOf(System sys) const;

    /** Posts of one system. */
    std::vector<PostRecord> postsOf(System sys) const;

  private:
    std::vector<IssueRecord> issues_;
    std::vector<PostRecord> posts_;
};

} // namespace smartconf::study

#endif // SMARTCONF_STUDY_DATASET_H_
