#ifndef SMARTCONF_SIM_INLINE_CALLBACK_H_
#define SMARTCONF_SIM_INLINE_CALLBACK_H_

/**
 * @file
 * Small-buffer-optimized callable for the event engine.
 *
 * `std::function` heap-allocates once a capture list outgrows its
 * (implementation-defined, typically 16-byte) inline buffer — which the
 * multi-reference captures of scenario tick handlers always do.  At one
 * allocation per scheduled event that dominated steady-state scheduling
 * cost.  InlineCallback stores captures up to kInlineBytes directly
 * inside the object, so the kvstore/dfs/mapreduce handlers (a handful
 * of references each) never touch the heap; larger captures fall back
 * to a single heap cell.
 *
 * Move-only by design: the event queue is the sole owner of a scheduled
 * callback, and copyability would force every capture to be copyable.
 */

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace smartconf::sim {

/** Move-only `void()` callable with inline storage for small captures. */
class InlineCallback
{
  public:
    /**
     * Inline capacity in bytes.  Sized for the scenario tick handlers:
     * a by-reference capture of up to eight locals (8 pointers) stays
     * inline with room to spare.
     */
    static constexpr std::size_t kInlineBytes = 64;

    InlineCallback() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    InlineCallback(F &&fn) // NOLINT(google-explicit-constructor)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(fn));
            ops_ = &inlineOps<Fn>;
        } else {
            ::new (static_cast<void *>(buf_))
                Fn *(new Fn(std::forward<F>(fn)));
            ops_ = &heapOps<Fn>;
        }
    }

    InlineCallback(InlineCallback &&other) noexcept { moveFrom(other); }

    InlineCallback &operator=(InlineCallback &&other) noexcept
    {
        if (this != &other) {
            destroy();
            moveFrom(other);
        }
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { destroy(); }

    /** True when a callable is held. */
    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /** Invoke the stored callable. @pre bool(*this). */
    void operator()() { ops_->invoke(buf_); }

    /** True when the stored callable lives inside the object. */
    bool isInline() const noexcept
    {
        return ops_ != nullptr && ops_->inline_storage;
    }

    /** Compile-time check: would @p Fn be stored without allocating? */
    template <typename Fn> static constexpr bool fitsInline()
    {
        return sizeof(Fn) <= kInlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

  private:
    struct Ops
    {
        void (*invoke)(void *storage);
        /** Move-construct into @p dst from @p src, destroying @p src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *storage) noexcept;
        bool inline_storage;
    };

    template <typename Fn> static constexpr Ops inlineOps = {
        [](void *s) { (*std::launder(reinterpret_cast<Fn *>(s)))(); },
        [](void *dst, void *src) noexcept {
            Fn *from = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
        },
        [](void *s) noexcept {
            std::launder(reinterpret_cast<Fn *>(s))->~Fn();
        },
        true,
    };

    template <typename Fn> static constexpr Ops heapOps = {
        [](void *s) {
            (**std::launder(reinterpret_cast<Fn **>(s)))();
        },
        [](void *dst, void *src) noexcept {
            Fn **from = std::launder(reinterpret_cast<Fn **>(src));
            ::new (dst) Fn *(*from);
            *from = nullptr;
        },
        [](void *s) noexcept {
            delete *std::launder(reinterpret_cast<Fn **>(s));
        },
        false,
    };

    void moveFrom(InlineCallback &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    void destroy() noexcept
    {
        if (ops_ != nullptr) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    const Ops *ops_ = nullptr;
};

} // namespace smartconf::sim

#endif // SMARTCONF_SIM_INLINE_CALLBACK_H_
