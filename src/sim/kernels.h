#ifndef SMARTCONF_SIM_KERNELS_H_
#define SMARTCONF_SIM_KERNELS_H_

/**
 * @file
 * Portable SIMD kernel layer for the data-plane hot loops.
 *
 * PR 6 reshaped the per-event hot paths into batch form precisely so
 * they could be vectorized; this layer supplies the vector bodies.  Each
 * kernel exists in up to three backends (scalar / SSE2 / AVX2) behind a
 * runtime-dispatched function pointer, and the scalar implementation is
 * the *canonical definition* of the kernel's output:
 *
 *  - Integer kernels (PRNG output map, alias-table resolution, the
 *    checksum, byte copies) are bit-identical across backends, period.
 *  - Floating-point reductions are made bit-identical by pinning one
 *    accumulation order — four virtual lanes, element i feeding lane
 *    i % 4, combined as (L0 op L2) op (L1 op L3), tail elements folded
 *    serially afterwards — which every backend, including the scalar
 *    reference, implements literally.  256-bit registers hold lanes
 *    {0,1,2,3}; the SSE2 backend holds {0,1} and {2,3} in two
 *    registers; the scalar backend keeps four named accumulators.
 *
 * Dispatch is process-wide and resolved on first use from
 * SMARTCONF_ISA / CPUID (see sim/simd.h); setIsa() re-points it for
 * differential tests and benches.  All kernels are safe for concurrent
 * callers: they touch only their arguments.
 */

#include <cstddef>
#include <cstdint>

#include "sim/simd.h"

namespace smartconf::sim::kernels {

/**
 * xoshiro256** output map, elementwise in place:
 * x -> rotl64(x * 5, 7) * 9.
 *
 * Rng::fillRaw() records the pre-transition s[1] state words (the
 * serial dependency) and lets this kernel apply the starify output
 * function lane-parallel — the multiplies decompose into shift+add
 * (x*5 = (x<<2)+x, x*9 = (x<<3)+x), so no 64-bit vector multiply is
 * needed and the result is the serial stream word-for-word.
 */
void rngOutputMap(std::uint64_t *words, std::size_t n);

/**
 * Alias-table draw resolution, in place: words[i] (one raw PRNG word
 * per draw) -> sampled index.  Packed-entry layout and the slot /
 * accept / alias math are exactly AliasTable::sample():
 *   slot  = ((w >> 32) * n_slots) >> 32
 *   entry = entries[slot]
 *   out   = low32(w) < high32(entry) ? slot : low32(entry)
 * The AVX2 backend gathers four entries per step; all backends are
 * bit-identical (pure integer math).
 */
void aliasResolve(const std::uint64_t *entries, std::uint64_t n_slots,
                  std::uint64_t *words, std::size_t n);

/**
 * Sum with the pinned lane-then-combine order described above.
 * Returns 0.0 for n == 0.  NaN/Inf propagate as IEEE addition does;
 * the fixed order keeps every backend's rounding identical.
 */
double reduceSum(const double *x, std::size_t n);

/** reduceMinMax() result; identities (+inf, -inf) when n == 0. */
struct MinMax
{
    double min;
    double max;
};

/**
 * Min and max with the pinned lane order.  The element rule is
 *   min: m = (x < m) ? x : m      max: M = (x > M) ? x : M
 * — literally minpd/maxpd(x, acc) semantics, so a NaN observation
 * never replaces the accumulator (matching the pre-kernel scalar
 * std::max fold) and every backend agrees bitwise.
 */
MinMax reduceMinMax(const double *x, std::size_t n);

/**
 * Payload checksum: four interleaved FNV-1a-style lanes over 8-byte
 * words.  Definition (P = 0x100000001b3, B = 0xcbf29ce484222325):
 *   lane[j]   = B ^ (j * 0x9e3779b97f4a7c15),        j in [0, 4)
 *   per 32-byte block: lane[j] = (lane[j] ^ w[j]) * P
 *   h = B; for j in 0..3: h = (h ^ lane[j]) * P
 *   remaining full words:  h = (h ^ w) * P
 *   trailing bytes:        h = (h ^ byte) * P
 * Interleaving breaks the serial multiply dependency FNV-1a has, so
 * the lanes vectorize (the *P multiply decomposes as
 * (h << 40) + lo32(h)*0x1b3 + ((hi32(h)*0x1b3) << 32), all of which
 * SSE2/AVX2 have).  Bit-identical across backends; NOT the same value
 * as the old word-serial checksum64, which is why DiskRunCache's
 * format version moved.
 */
std::uint64_t checksum(const void *data, std::size_t len);

/**
 * memcpy with explicitly widened vector loads/stores on the SIMD
 * backends (two registers per step).  Ranges must not overlap.
 */
void copyBytes(void *dst, const void *src, std::size_t n);

/**
 * Box-Muller: 2*pairs raw PRNG words -> 2*pairs standard normals.
 * For each pair (w0 = words[2i], w1 = words[2i+1]):
 *   u1  = ((w0 >> 12) + 0.5) * 2^-52          in (0, 1)
 *   u2  =  (w1 >> 12)        * 2^-52          in [0, 1)
 *   mag = sqrt(-2 ln u1)
 *   z[2i] = mag * cos(2 pi u2),  z[2i+1] = mag * sin(2 pi u2)
 * ln and sin/cos are evaluated from fixed polynomials inside the
 * kernel (see sim/kernels_gauss.inc) rather than libm, so the kernel —
 * not the host's math library — defines the stream, and every backend
 * is bit-identical (the TU is built with -ffp-contract=off and uses
 * only correctly-rounded IEEE ops).  Accuracy vs. libm is ~1e-15
 * relative, far below the noise this kernel generates.  This is the
 * engine behind Rng::gaussian()/gaussianBatch().
 */
void gaussianPairs(const std::uint64_t *words, double *z,
                   std::size_t pairs);

/** Level the kernel table currently dispatches to. */
simd::Isa activeIsa();

/**
 * Re-point dispatch at @p isa, clamped to simd::detected().  Returns
 * the level actually installed.  Intended for differential tests and
 * benches; not thread-safe against concurrently running kernels.
 */
simd::Isa setIsa(simd::Isa isa);

} // namespace smartconf::sim::kernels

#endif // SMARTCONF_SIM_KERNELS_H_
