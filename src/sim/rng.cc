#include "sim/rng.h"

#include <cassert>
#include <cmath>

#include "sim/alias_sampler.h"

namespace smartconf::sim {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

double
Rng::exponential(double mean)
{
    assert(mean > 0.0);
    double u = uniform();
    if (u <= 0.0)
        u = 1e-12;
    return -mean * std::log(u);
}

double
Rng::gaussian(double mean, double stddev)
{
    if (have_spare_) {
        have_spare_ = false;
        return mean + stddev * spare_;
    }
    double u1 = uniform();
    if (u1 <= 0.0)
        u1 = 1e-12;
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 6.283185307179586;
    spare_ = mag * std::sin(two_pi * u2);
    have_spare_ = true;
    return mean + stddev * mag * std::cos(two_pi * u2);
}

Rng
Rng::fork(std::uint64_t stream_id) const
{
    return Rng(seed_ ^ (0xa0761d6478bd642fULL * (stream_id + 1)));
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta), table_(AliasTable::zipfian(n, theta))
{
    assert(n_ > 0);
    assert(theta_ >= 0.0 && theta_ < 1.0);
    zetan_ = table_->weightSum();
}

std::size_t
ZipfianGenerator::zetaCacheSize()
{
    return AliasTable::zipfCacheSize();
}

std::uint64_t
ZipfianGenerator::sample(Rng &rng) const
{
    return table_->sample(rng);
}

void
ZipfianGenerator::sampleInto(Rng &rng, std::uint64_t *out,
                             std::size_t count) const
{
    table_->sampleInto(rng, out, count);
}

double
ZipfianGenerator::pmf(std::uint64_t i) const
{
    assert(i < n_);
    return 1.0 / std::pow(static_cast<double>(i + 1), theta_) / zetan_;
}

} // namespace smartconf::sim
