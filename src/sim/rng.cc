#include "sim/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sim/alias_sampler.h"
#include "sim/kernels.h"

namespace smartconf::sim {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

void
Rng::fillRaw(std::uint64_t *out, std::size_t n)
{
    // Phase 1 (serial): walk the state, recording each step's
    // pre-transition s[1] — the only word the output map reads.  This
    // is cheaper than next() per word (no multiplies) and is the part
    // that cannot vectorize.  Phase 2 (parallel): the kernel applies
    // rotl(x*5, 7)*9 to the whole buffer in SIMD lanes.
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = s_[1];
        advance();
    }
    kernels::rngOutputMap(out, n);
}

double
Rng::exponential(double mean)
{
    assert(mean > 0.0);
    double u = uniform();
    if (u <= 0.0)
        u = 1e-12;
    return -mean * std::log(u);
}

double
Rng::gaussian(double mean, double stddev)
{
    if (have_spare_) {
        have_spare_ = false;
        return mean + stddev * spare_;
    }
    // Inline next() twice instead of fillRaw(w, 2): same words, but a
    // single-pair draw doesn't amortize the batch path's two dispatch
    // hops (per-tick batch-size draws hit this at scenario-tick rate).
    std::uint64_t w[2];
    w[0] = next();
    w[1] = next();
    double z[2];
    kernels::gaussianPairs(w, z, 1);
    spare_ = z[1];
    have_spare_ = true;
    return mean + stddev * z[0];
}

void
Rng::gaussianBatch(double mean, double stddev, double *out,
                   std::size_t n)
{
    std::size_t i = 0;
    if (n != 0 && have_spare_) {
        have_spare_ = false;
        out[i++] = mean + stddev * spare_;
    }
    // Chunked so the word/normal staging stays on the stack; the word
    // stream is exactly what n serial gaussian() calls would consume
    // (two per pair, trailing odd normal's partner carried as spare).
    constexpr std::size_t kChunk = 128;
    std::uint64_t w[2 * kChunk];
    double z[2 * kChunk];
    while (i < n) {
        const std::size_t remaining = n - i;
        const std::size_t pairs =
            std::min(kChunk, (remaining + 1) / 2);
        fillRaw(w, 2 * pairs);
        kernels::gaussianPairs(w, z, pairs);
        const std::size_t take = std::min(remaining, 2 * pairs);
        for (std::size_t j = 0; j < take; ++j)
            out[i + j] = mean + stddev * z[j];
        i += take;
        if (take < 2 * pairs) {
            spare_ = z[take];
            have_spare_ = true;
        }
    }
}

Rng
Rng::fork(std::uint64_t stream_id) const
{
    return Rng(seed_ ^ (0xa0761d6478bd642fULL * (stream_id + 1)));
}

namespace {

/**
 * Blackman & Vigna's jump polynomial for xoshiro256**, applied to a
 * raw state: the accumulated XOR of the states reached at the set bits
 * of the constants equals the state 2^128 steps ahead.  Kept as the
 * reference implementation; the public jump() goes through the
 * precomputed GF(2) matrix below, which this routine seeds.
 */
void
polyJump(std::uint64_t s[4])
{
    static constexpr std::uint64_t kJump[4] = {
        0x180ec6d33cfd0abaULL, 0xd5a13266802b9a6aULL,
        0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::uint64_t acc[4] = {0, 0, 0, 0};
    for (const std::uint64_t word : kJump) {
        for (int b = 0; b < 64; ++b) {
            if (word & (1ULL << b))
                for (int j = 0; j < 4; ++j)
                    acc[j] ^= s[j];
            // xoshiro256** state transition (Rng::advance on a raw
            // state array).
            const std::uint64_t t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = (s[3] << 45) | (s[3] >> 19);
        }
    }
    for (int j = 0; j < 4; ++j)
        s[j] = acc[j];
}

/**
 * The 2^128-step jump as a 256x256 GF(2) matrix: row (w*64 + b) is the
 * state the polynomial walk reaches from the basis state with only bit
 * b of word w set.  The jump is linear over GF(2), so jumping any
 * state is the XOR of the rows selected by its set bits — one table
 * row per set bit (~128 on average) instead of 1024 full state
 * transitions, and bit-identical to the polynomial walk.  Built once
 * per process (256 basis walks); every ShardPlane construction after
 * that pays ~128 row XORs per lane.
 */
struct JumpMatrix
{
    std::uint64_t row[256][4];
};

const JumpMatrix &
jumpMatrix()
{
    static const JumpMatrix matrix = [] {
        JumpMatrix m;
        for (int r = 0; r < 256; ++r) {
            std::uint64_t s[4] = {0, 0, 0, 0};
            s[r >> 6] = 1ULL << (r & 63);
            polyJump(s);
            for (int j = 0; j < 4; ++j)
                m.row[r][j] = s[j];
        }
        return m;
    }();
    return matrix;
}

} // namespace

void
Rng::jump()
{
    const JumpMatrix &m = jumpMatrix();
    std::uint64_t acc[4] = {0, 0, 0, 0};
    for (int w = 0; w < 4; ++w) {
        std::uint64_t bits = s_[w];
        while (bits != 0) {
            const int b = __builtin_ctzll(bits);
            bits &= bits - 1;
            const std::uint64_t *row = m.row[w * 64 + b];
            acc[0] ^= row[0];
            acc[1] ^= row[1];
            acc[2] ^= row[2];
            acc[3] ^= row[3];
        }
    }
    for (int j = 0; j < 4; ++j)
        s_[j] = acc[j];
    // Remix the logical seed too: fork() is keyed off seed_, so jumped
    // streams must not share their fork family with the base stream.
    std::uint64_t sm = seed_ ^ 0x6a09e667f3bcc909ULL;
    seed_ = splitmix64(sm);
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta), table_(AliasTable::zipfian(n, theta))
{
    assert(n_ > 0);
    assert(theta_ >= 0.0 && theta_ < 1.0);
    zetan_ = table_->weightSum();
}

std::size_t
ZipfianGenerator::zetaCacheSize()
{
    return AliasTable::zipfCacheSize();
}

std::uint64_t
ZipfianGenerator::sample(Rng &rng) const
{
    return table_->sample(rng);
}

void
ZipfianGenerator::sampleBatch(Rng &rng, std::uint64_t *out,
                              std::size_t count) const
{
    table_->sampleBatch(rng, out, count);
}

double
ZipfianGenerator::pmf(std::uint64_t i) const
{
    assert(i < n_);
    return 1.0 / std::pow(static_cast<double>(i + 1), theta_) / zetan_;
}

} // namespace smartconf::sim
