#include "sim/rng.h"

#include <cassert>
#include <cmath>
#include <map>
#include <mutex>
#include <utility>

namespace smartconf::sim {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    assert(n > 0);
    return next() % n; // modulo bias negligible for simulation purposes
}

std::int64_t
Rng::between(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    assert(mean > 0.0);
    double u = uniform();
    if (u <= 0.0)
        u = 1e-12;
    return -mean * std::log(u);
}

double
Rng::gaussian(double mean, double stddev)
{
    if (have_spare_) {
        have_spare_ = false;
        return mean + stddev * spare_;
    }
    double u1 = uniform();
    if (u1 <= 0.0)
        u1 = 1e-12;
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 6.283185307179586;
    spare_ = mag * std::sin(two_pi * u2);
    have_spare_ = true;
    return mean + stddev * mag * std::cos(two_pi * u2);
}

Rng
Rng::fork(std::uint64_t stream_id) const
{
    return Rng(seed_ ^ (0xa0761d6478bd642fULL * (stream_id + 1)));
}

namespace {

/**
 * Process-wide memo of zeta(n, theta) = sum_{i=1..n} i^-theta.
 *
 * Guarded by a mutex because parallel sweeps construct generators on
 * worker threads concurrently.  The summation itself runs under the
 * lock: it executes once per distinct (n, theta) for the process
 * lifetime, and racing duplicates would waste exactly the work the
 * cache exists to avoid.  Determinism is untouched — the sum is a pure
 * function of its key, so every thread reads the same bits.
 */
class ZetaCache
{
  public:
    double get(std::uint64_t n, double theta)
    {
        const std::pair<std::uint64_t, double> key{n, theta};
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = memo_.find(key);
        if (it != memo_.end())
            return it->second;
        double zetan = 0.0;
        for (std::uint64_t i = 1; i <= n; ++i)
            zetan += 1.0 / std::pow(static_cast<double>(i), theta);
        memo_.emplace(key, zetan);
        return zetan;
    }

    std::size_t size()
    {
        std::lock_guard<std::mutex> lock(mu_);
        return memo_.size();
    }

  private:
    std::mutex mu_;
    std::map<std::pair<std::uint64_t, double>, double> memo_;
};

ZetaCache &
zetaCache()
{
    static ZetaCache cache;
    return cache;
}

} // namespace

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    assert(n_ > 0);
    assert(theta_ >= 0.0 && theta_ < 1.0);
    zetan_ = zetaCache().get(n_, theta_);
    const double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
    second_rank_threshold_ = 1.0 + std::pow(0.5, theta_);
}

std::size_t
ZipfianGenerator::zetaCacheSize()
{
    return zetaCache().size();
}

std::uint64_t
ZipfianGenerator::sample(Rng &rng) const
{
    const double u = rng.uniform();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < second_rank_threshold_)
        return 1;
    const std::uint64_t idx = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return idx >= n_ ? n_ - 1 : idx;
}

} // namespace smartconf::sim
