#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

namespace smartconf::sim {

std::uint32_t
EventQueue::acquireSlot()
{
    if (free_head_ != kNoSlot) {
        const std::uint32_t slot = free_head_;
        free_head_ = pool_[slot].next_free;
        pool_[slot].next_free = kNoSlot;
        pool_[slot].in_use = true;
        return slot;
    }
    const auto slot = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
    pool_[slot].in_use = true;
    return slot;
}

void
EventQueue::releaseSlot(std::uint32_t slot)
{
    Entry &e = pool_[slot];
    e.cb = Callback();   // run capture destructors now, not at reuse
    ++e.gen;             // stale ids (fired or cancelled) stop matching
    e.cancelled = false;
    e.interval = 0;
    e.in_use = false;
    e.next_free = free_head_;
    free_head_ = slot;
}

void
EventQueue::heapPush(std::uint32_t slot)
{
    heap_.push_back(slot);
    siftUp(heap_.size() - 1);
}

std::uint32_t
EventQueue::heapPopRoot()
{
    const std::uint32_t root = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty())
        siftDown(0);
    return root;
}

void
EventQueue::siftUp(std::size_t pos)
{
    const std::uint32_t slot = heap_[pos];
    while (pos > 0) {
        const std::size_t parent = (pos - 1) / kArity;
        if (!fires_before(slot, heap_[parent]))
            break;
        heap_[pos] = heap_[parent];
        pos = parent;
    }
    heap_[pos] = slot;
}

void
EventQueue::siftDown(std::size_t pos)
{
    const std::uint32_t slot = heap_[pos];
    const std::size_t n = heap_.size();
    for (;;) {
        const std::size_t first_child = pos * kArity + 1;
        if (first_child >= n)
            break;
        const std::size_t last_child =
            std::min(first_child + kArity, n);
        std::size_t best = first_child;
        for (std::size_t c = first_child + 1; c < last_child; ++c) {
            if (fires_before(heap_[c], heap_[best]))
                best = c;
        }
        if (!fires_before(heap_[best], slot))
            break;
        heap_[pos] = heap_[best];
        pos = best;
    }
    heap_[pos] = slot;
}

EventId
EventQueue::scheduleEntry(Tick when, Tick interval, Callback cb)
{
    const std::uint32_t slot = acquireSlot();
    Entry &e = pool_[slot];
    e.when = std::max(when, clock_.now());
    e.seq = next_seq_++;
    e.interval = interval;
    e.cancelled = false;
    e.cb = std::move(cb);
    heapPush(slot);
    return makeId(slot, e.gen);
}

EventId
EventQueue::scheduleAt(Tick when, Callback cb)
{
    return scheduleEntry(when, 0, std::move(cb));
}

EventId
EventQueue::scheduleAfter(Tick delay, Callback cb)
{
    return scheduleEntry(clock_.now() + std::max<Tick>(delay, 0), 0,
                         std::move(cb));
}

EventId
EventQueue::schedulePeriodic(Tick interval, Callback cb)
{
    assert(interval >= 1);
    return scheduleEntry(clock_.now() + interval, interval,
                         std::move(cb));
}

EventId
EventQueue::schedulePeriodicAt(Tick first, Tick interval, Callback cb)
{
    assert(interval >= 1);
    return scheduleEntry(first, interval, std::move(cb));
}

void
EventQueue::cancel(EventId id)
{
    const std::uint32_t slot = slotOf(id);
    if (slot >= pool_.size())
        return;
    Entry &e = pool_[slot];
    if (!e.in_use || e.gen != genOf(id))
        return; // already fired (one-shot) or cancelled and recycled
    e.cancelled = true;
}

bool
EventQueue::runPeriodicFastPath(Tick horizon, std::size_t &fired)
{
    // Eligible only when every pending entry is a live period-1 event
    // on the same tick — the steady state of the scenario drivers,
    // which register a handful of periodic concerns at t = 0 and run
    // for hundreds of thousands of ticks.
    const Tick start = pool_[heap_.front()].when;
    for (const std::uint32_t slot : heap_) {
        const Entry &e = pool_[slot];
        if (e.interval != 1 || e.cancelled || e.when != start)
            return false;
    }

    // Take the entries out of the heap; fire them a whole tick at a
    // time in seq (registration) order — exactly the (when, seq) order
    // the heap would produce, without any sift per event.
    batch_ = heap_;
    heap_.clear();
    std::sort(batch_.begin(), batch_.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                  return pool_[a].seq < pool_[b].seq;
              });

    Tick t = start;
    while (t <= horizon && !batch_.empty()) {
        clock_.advanceTo(t);
        bool saw_cancel = false;
        for (const std::uint32_t slot : batch_) {
            if (pool_[slot].cancelled) {
                saw_cancel = true;
                continue;
            }
            pool_[slot].when = t + 1;
            Callback cb = std::move(pool_[slot].cb);
            cb();
            ++fired;
            if (!pool_[slot].cancelled)
                pool_[slot].cb = std::move(cb);
            else
                saw_cancel = true;
        }
        ++t;
        if (saw_cancel) {
            std::size_t kept = 0;
            for (const std::uint32_t slot : batch_) {
                if (pool_[slot].cancelled)
                    releaseSlot(slot);
                else
                    batch_[kept++] = slot;
            }
            batch_.resize(kept);
        }
        // A callback scheduled a new event: its (when, seq) may
        // interleave anywhere, so merge back and let the general
        // loop re-establish ordering.
        if (!heap_.empty())
            break;
    }

    for (const std::uint32_t slot : batch_)
        heapPush(slot);
    batch_.clear();
    return true;
}

std::size_t
EventQueue::runUntil(Tick horizon)
{
    std::size_t fired = 0;
    for (;;) {
        // Discard cancelled entries at the front so the horizon check
        // sees the next *live* event.
        while (!heap_.empty() && pool_[heap_.front()].cancelled)
            releaseSlot(heapPopRoot());
        if (heap_.empty() || pool_[heap_.front()].when > horizon)
            break;
        if (runPeriodicFastPath(horizon, fired))
            continue;
        if (step())
            ++fired;
    }
    if (clock_.now() < horizon && horizon < std::numeric_limits<Tick>::max())
        clock_.advanceTo(horizon);
    return fired;
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        const std::uint32_t slot = heap_.front();
        if (pool_[slot].cancelled) {
            releaseSlot(heapPopRoot()); // entry discarded at its tick
            continue;
        }
        clock_.advanceTo(pool_[slot].when);

        // The callback runs outside the pool: it may schedule events,
        // which can grow (reallocate) the pool underneath any Entry
        // reference.  Periodic entries are rearmed *before* invoking so
        // that the callback can cancel its own event.  The rearm keys
        // the root entry forward and restores the heap with a single
        // siftDown — no pop/push round trip, and the entry keeps its
        // original seq, preserving intra-tick registration order.
        const Tick interval = pool_[slot].interval;
        Callback cb = std::move(pool_[slot].cb);
        if (interval > 0) {
            pool_[slot].when += interval;
            siftDown(0);
        } else {
            heapPopRoot();
        }
        cb();
        if (interval > 0) {
            Entry &e = pool_[slot]; // re-fetch: pool may have moved
            if (!e.cancelled)
                e.cb = std::move(cb); // rearm in place; no allocation
            // else: discarded (and the slot recycled) at the next pop
        } else {
            releaseSlot(slot);
        }
        return true;
    }
    return false;
}

} // namespace smartconf::sim
