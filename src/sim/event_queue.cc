#include "sim/event_queue.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace smartconf::sim {

EventId
EventQueue::scheduleAt(Tick when, Callback cb)
{
    const Tick effective = std::max(when, clock_.now());
    const EventId id = next_id_++;
    heap_.push(Entry{effective, next_seq_++, id, std::move(cb)});
    live_.insert(id);
    ++size_;
    return id;
}

EventId
EventQueue::scheduleAfter(Tick delay, Callback cb)
{
    return scheduleAt(clock_.now() + std::max<Tick>(delay, 0),
                      std::move(cb));
}

void
EventQueue::cancel(EventId id)
{
    live_.erase(id); // no-op (and no bookkeeping growth) after firing
}

std::size_t
EventQueue::runUntil(Tick horizon)
{
    std::size_t fired = 0;
    while (!heap_.empty()) {
        const Entry &top = heap_.top();
        if (top.when > horizon)
            break;
        if (step())
            ++fired;
    }
    if (clock_.now() < horizon && horizon < std::numeric_limits<Tick>::max())
        clock_.advanceTo(horizon);
    return fired;
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        Entry top = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        --size_;
        if (live_.erase(top.id) == 0)
            continue; // cancelled; entry discarded at its tick
        clock_.advanceTo(top.when);
        top.cb();
        return true;
    }
    return false;
}

} // namespace smartconf::sim
