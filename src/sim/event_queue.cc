#include "sim/event_queue.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace smartconf::sim {

EventId
EventQueue::scheduleAt(Tick when, Callback cb)
{
    const Tick effective = std::max(when, clock_.now());
    const EventId id = next_id_++;
    heap_.push(Entry{effective, next_seq_++, id, std::move(cb)});
    ++size_;
    return id;
}

EventId
EventQueue::scheduleAfter(Tick delay, Callback cb)
{
    return scheduleAt(clock_.now() + std::max<Tick>(delay, 0),
                      std::move(cb));
}

void
EventQueue::cancel(EventId id)
{
    cancelled_.push_back(id);
}

bool
EventQueue::isCancelled(EventId id) const
{
    return std::find(cancelled_.begin(), cancelled_.end(), id) !=
           cancelled_.end();
}

std::size_t
EventQueue::runUntil(Tick horizon)
{
    std::size_t fired = 0;
    while (!heap_.empty()) {
        const Entry &top = heap_.top();
        if (top.when > horizon)
            break;
        if (step())
            ++fired;
    }
    if (clock_.now() < horizon && horizon < std::numeric_limits<Tick>::max())
        clock_.advanceTo(horizon);
    return fired;
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        Entry top = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        --size_;
        if (isCancelled(top.id)) {
            cancelled_.erase(std::remove(cancelled_.begin(),
                                         cancelled_.end(), top.id),
                             cancelled_.end());
            continue;
        }
        clock_.advanceTo(top.when);
        top.cb();
        return true;
    }
    return false;
}

} // namespace smartconf::sim
