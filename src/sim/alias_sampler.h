#ifndef SMARTCONF_SIM_ALIAS_SAMPLER_H_
#define SMARTCONF_SIM_ALIAS_SAMPLER_H_

/**
 * @file
 * Walker/Vose alias-table sampling for finite discrete distributions.
 *
 * The Gray et al. Zipfian sampler pays ~2 pow() calls per draw; at the
 * YCSB arrival rates the sweep simulates that is the single largest
 * per-op cost left in the data plane.  An alias table answers the same
 * draw in O(1) with one PRNG word, one multiply, one table load and one
 * compare — no transcendentals.
 *
 * Construction is O(n) (Vose's two-worklist variant, numerically robust
 * for the heavy-tailed Zipf weights), so tables are immutable and
 * shared: zipfian() memoizes one table per (n, theta) process-wide,
 * the same pattern as the zeta cache it subsumes.  A 100k-key table is
 * ~800 KB and is built once per process, not once per generator.
 *
 * Each slot packs its acceptance threshold (32-bit fixed point) and
 * alias index into a single uint64, so a draw touches exactly one cache
 * line of table data.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/rng.h"

namespace smartconf::sim {

/**
 * Immutable O(1) sampler over {0, ..., n-1} with arbitrary
 * non-negative weights.  Thread-safe for concurrent sampling (all
 * state is const after construction; the caller owns the Rng).
 */
class AliasTable
{
  public:
    /**
     * Build from @p weights (need not be normalized; at least one
     * weight must be positive, and n must fit in 32 bits).
     */
    explicit AliasTable(const std::vector<double> &weights);

    /**
     * Draw one index.  Consumes exactly one Rng::next() word: the high
     * half selects the slot, the low half is the acceptance coin —
     * the same stream consumption as one Rng::uniform() call, so
     * swapping a uniform-based sampler for an alias table keeps every
     * other consumer of the shared Rng stream aligned.
     */
    std::uint32_t sample(Rng &rng) const
    {
        const std::uint64_t r = rng.next();
        const auto slot = static_cast<std::uint32_t>(((r >> 32) * n_) >> 32);
        const std::uint64_t entry = entries_[slot];
        return static_cast<std::uint32_t>(r) <
                       static_cast<std::uint32_t>(entry >> 32)
                   ? slot
                   : static_cast<std::uint32_t>(entry);
    }

    /**
     * Fill @p out[0..count) with draws — bit-identical to @p count
     * serial sample() calls, in the same Rng stream positions.  The
     * raw words come from Rng::fillRaw() (serial-stream-equivalent
     * batch generation) and the slot/accept/alias resolution runs
     * through the SIMD kernel layer (packed-uint64 entries, AVX2
     * gathers where available; see sim/kernels.h).
     */
    void sampleBatch(Rng &rng, std::uint64_t *out,
                     std::size_t count) const;

    /** Alias kept from the pre-kernel batch API; see sampleBatch(). */
    void sampleInto(Rng &rng, std::uint64_t *out, std::size_t count) const
    {
        sampleBatch(rng, out, count);
    }

    /** Population size n. */
    std::size_t size() const { return static_cast<std::size_t>(n_); }

    /** Sum of the input weights (for Zipf weights this is zeta(n)). */
    double weightSum() const { return weight_sum_; }

    /**
     * Shared table for the Zipf distribution over [0, n) with skew
     * @p theta (weight of rank i is (i+1)^-theta).  Memoized per
     * (n, theta) process-wide and thread-safe; every generator after
     * the first with the same parameters reuses the built table.
     */
    static std::shared_ptr<const AliasTable> zipfian(std::uint64_t n,
                                                     double theta);

    /** Memoized zipfian() entries (test/diagnostic hook). */
    static std::size_t zipfCacheSize();

  private:
    /** threshold (high 32, fixed-point acceptance bound) | alias (low 32). */
    std::vector<std::uint64_t> entries_;
    std::uint64_t n_ = 0;
    double weight_sum_ = 0.0;
};

} // namespace smartconf::sim

#endif // SMARTCONF_SIM_ALIAS_SAMPLER_H_
