#ifndef SMARTCONF_SIM_METRICS_H_
#define SMARTCONF_SIM_METRICS_H_

/**
 * @file
 * Measurement recording for experiments.
 *
 * TimeSeries captures (tick, value) curves — the raw material for the
 * paper's Figures 6-8 — and Histogram summarizes latency distributions
 * (mean, percentiles, max) for throughput/latency trade-off reporting.
 *
 * Both are streaming-friendly: callers that know the run horizon can
 * reserve() capacity up front so the per-tick record() path never
 * reallocates, and Histogram::percentile caches its sorted state so
 * repeated queries between mutations cost O(1) instead of a fresh
 * copy-and-sort each call.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/clock.h"

namespace smartconf::sim {

/** A named (tick, value) curve. */
class TimeSeries
{
  public:
    struct Point
    {
        Tick tick;
        double value;
    };

    explicit TimeSeries(std::string name = "") : name_(std::move(name)) {}

    /** Pre-size for @p n points (e.g. the scenario horizon in ticks). */
    void reserve(std::size_t n) { points_.reserve(n); }

    void record(Tick tick, double value)
    {
        points_.push_back({tick, value});
    }

    /** Replace the whole curve (bulk deserialization). */
    void assign(std::vector<Point> points)
    {
        points_ = std::move(points);
    }

    const std::string &name() const { return name_; }
    const std::vector<Point> &points() const { return points_; }
    bool empty() const { return points_.empty(); }
    std::size_t size() const { return points_.size(); }

    /** Largest recorded value; 0 when empty. */
    double max() const;

    /** Last recorded value; 0 when empty. */
    double last() const;

    /** Mean of recorded values; 0 when empty. */
    double mean() const;

    /**
     * First tick at which the value exceeded @p threshold, or -1 when it
     * never did (including on an empty series).  Used to report "OOM at
     * t = 36 s" style results.
     */
    Tick firstAbove(double threshold) const;

    /**
     * Down-sample to at most @p buckets points (taking the max within
     * each bucket) — keeps printed figure data readable.
     *
     * Edge cases: 0 buckets yields an empty vector (the contract is
     * "at most @p buckets points"); @p buckets >= size() returns the
     * series unchanged; a single point survives as itself.
     */
    std::vector<Point> downsampleMax(std::size_t buckets) const;

    /** Render as CSV lines "tick,value" (with a header). */
    std::string toCsv(const TickConverter &conv) const;

  private:
    std::string name_;
    std::vector<Point> points_;
};

/**
 * Latency/size distribution summary.
 *
 * Count, sum, min and max are maintained *streaming*, at record time,
 * through the SIMD kernel layer: recordBatch() reduces the incoming
 * array with the kernels' pinned lane-then-combine accumulation order
 * (sim/kernels.h) and folds the partial into the running aggregates,
 * so mean()/min()/max() are O(1) queries instead of full scans.  The
 * scalar record() path uses the same per-element rules, which makes
 * every aggregate bit-identical across SIMD dispatch levels — but the
 * floating-point *sum* does depend on how observations are grouped
 * into batches (a batch is reduced lane-wise before joining the
 * running sum).  Call shapes are deterministic in this codebase, so
 * results stay reproducible; only values_ is call-shape-independent.
 */
class Histogram
{
  public:
    /** Pre-size for @p n observations. */
    void reserve(std::size_t n) { values_.reserve(n); }

    void record(double value)
    {
        values_.push_back(value);
        sum_ += value;
        // minpd/maxpd(x, acc) rules — NaN keeps the accumulator —
        // matching the kernels' reduceMinMax element rule exactly.
        min_ = value < min_ ? value : min_;
        max_ = value > max_ ? value : max_;
        scratch_fresh_ = false;
    }

    /**
     * Record @p n identical observations at once.  Batch entry point
     * for callers that serve work in same-valued runs (e.g. the
     * namenode draining a same-tick write backlog): one bulk insert
     * instead of @p n push_backs, with the same observable sequence.
     * The running sum advances by value * n (the definition for this
     * call shape, not n serial additions).
     */
    void record(double value, std::size_t n)
    {
        if (n == 0)
            return;
        values_.insert(values_.end(), n, value);
        sum_ += value * static_cast<double>(n);
        min_ = value < min_ ? value : min_;
        max_ = value > max_ ? value : max_;
        scratch_fresh_ = false;
    }

    /**
     * Append @p n observations from a contiguous array.  The batch
     * form of the per-event record() loop: one range insert, one
     * SIMD reduction for the streaming aggregates, and a single
     * sorted-flag invalidation.  The recorded *sequence* matches @p n
     * scalar calls; the running sum receives the batch's lane-combined
     * partial (see the class comment).
     */
    void recordBatch(const double *values, std::size_t n);

    std::size_t count() const { return values_.size(); }

    /** Mean of recorded values (streaming sum / count); 0 when empty. */
    double mean() const
    {
        return values_.empty()
                   ? 0.0
                   : sum_ / static_cast<double>(values_.size());
    }

    /**
     * Largest recorded value, never below 0 (the pre-streaming fold
     * started at 0.0 and this keeps that floor); NaN observations are
     * ignored; 0 when empty.
     */
    double max() const
    {
        return !values_.empty() && max_ > 0.0 ? max_ : 0.0;
    }

    /**
     * Smallest recorded value (NaN observations ignored); 0 when
     * empty.  A histogram holding only NaN reports the +inf identity.
     */
    double min() const { return values_.empty() ? 0.0 : min_; }

    /** Running sum of observations (lane-order; see class comment). */
    double sum() const { return values_.empty() ? 0.0 : sum_; }

    /**
     * Nearest-rank percentile in (0, 100]; 0 when empty.
     *
     * Sorted-state caching: the first query after a mutation answers
     * via nth_element (O(n), no full sort); a second query sorts the
     * scratch copy once, after which further queries are O(1) lookups
     * until the next record().  The recording-order values() view is
     * never disturbed.
     */
    double percentile(double p) const;

    /** Raw observations in recording order (for streaming consumers). */
    const std::vector<double> &values() const { return values_; }

    void reset()
    {
        values_.clear();
        sum_ = 0.0;
        min_ = kInf;
        max_ = -kInf;
        scratch_fresh_ = false;
    }

  private:
    static constexpr double kInf = __builtin_inf();

    std::vector<double> values_;

    /** Streaming aggregates (see class comment for ordering rules). */
    double sum_ = 0.0;
    double min_ = kInf;
    double max_ = -kInf;

    /** Query-side cache: a reusable copy of values_ for (partial)
     *  sorting, so percentile() stops copy-allocating per call. */
    mutable std::vector<double> scratch_;
    mutable bool scratch_fresh_ = false;  ///< scratch_ mirrors values_
    mutable bool scratch_sorted_ = false; ///< scratch_ is fully sorted
    mutable std::uint32_t queries_since_mutation_ = 0;
};

} // namespace smartconf::sim

#endif // SMARTCONF_SIM_METRICS_H_
