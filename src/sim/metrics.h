#ifndef SMARTCONF_SIM_METRICS_H_
#define SMARTCONF_SIM_METRICS_H_

/**
 * @file
 * Measurement recording for experiments.
 *
 * TimeSeries captures (tick, value) curves — the raw material for the
 * paper's Figures 6-8 — and Histogram summarizes latency distributions
 * (mean, percentiles, max) for throughput/latency trade-off reporting.
 */

#include <cstddef>
#include <string>
#include <vector>

#include "sim/clock.h"

namespace smartconf::sim {

/** A named (tick, value) curve. */
class TimeSeries
{
  public:
    struct Point
    {
        Tick tick;
        double value;
    };

    explicit TimeSeries(std::string name = "") : name_(std::move(name)) {}

    void record(Tick tick, double value)
    {
        points_.push_back({tick, value});
    }

    const std::string &name() const { return name_; }
    const std::vector<Point> &points() const { return points_; }
    bool empty() const { return points_.empty(); }
    std::size_t size() const { return points_.size(); }

    /** Largest recorded value; 0 when empty. */
    double max() const;

    /** Last recorded value; 0 when empty. */
    double last() const;

    /** Mean of recorded values; 0 when empty. */
    double mean() const;

    /**
     * First tick at which the value exceeded @p threshold, or -1 when it
     * never did.  Used to report "OOM at t = 36 s" style results.
     */
    Tick firstAbove(double threshold) const;

    /**
     * Down-sample to at most @p buckets points (taking the max within
     * each bucket) — keeps printed figure data readable.
     */
    std::vector<Point> downsampleMax(std::size_t buckets) const;

    /** Render as CSV lines "tick,value" (with a header). */
    std::string toCsv(const TickConverter &conv) const;

  private:
    std::string name_;
    std::vector<Point> points_;
};

/** Latency/size distribution summary. */
class Histogram
{
  public:
    void record(double value) { values_.push_back(value); }

    std::size_t count() const { return values_.size(); }
    double mean() const;
    double max() const;

    /** Nearest-rank percentile in (0, 100]; 0 when empty. */
    double percentile(double p) const;

    /** Raw observations in recording order (for streaming consumers). */
    const std::vector<double> &values() const { return values_; }

    void reset() { values_.clear(); }

  private:
    std::vector<double> values_;
};

} // namespace smartconf::sim

#endif // SMARTCONF_SIM_METRICS_H_
