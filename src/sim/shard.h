#ifndef SMARTCONF_SIM_SHARD_H_
#define SMARTCONF_SIM_SHARD_H_

/**
 * @file
 * Intra-run sharded data plane.
 *
 * PRs 1-7 parallelized *across* runs; one simulation was still serial.
 * This layer partitions a run's per-tick data-plane work into a fixed
 * number of **logical shards** so the blocks of one tick can fan out
 * across the work-stealing executor — while the output stays
 * byte-identical at every worker count:
 *
 *  - `kShards` is a compile-time constant (16), deliberately
 *    *independent* of the physical worker count: the (n, tick_seq) ->
 *    block/lane layout, the per-lane RNG streams and the per-lane
 *    scratch segments are all pure functions of the logical shard
 *    structure, so `--shard-workers 1` and `--shard-workers 8` execute
 *    the exact same draws against the exact same lanes and merge them
 *    in the same pinned order.
 *
 *  - Lane RNG streams are derived from one base generator by repeated
 *    `Rng::jump()` (2^128 steps apart — non-overlapping by
 *    construction); lane s's stream is the (s+1)-th jump.  A private
 *    control stream (the unjumped base) serves the per-tick scalar
 *    draws (batch sizes), keeping control-plane decisions off the lane
 *    streams.
 *
 *  - A tick of n ops is split into `ceil(n / kShardGranule)` blocks
 *    (clamped to kShards); block b is served by lane
 *    (tick_seq + b) % kShards.  Blocks <= kShards means each active
 *    block owns a distinct lane — no intra-tick lane sharing — and the
 *    tick_seq rotation spreads consecutive small ticks over all lanes
 *    so every lane's stream advances at roughly the same rate.
 *
 *  - Physical execution: `shardFanOut(blocks, body)` runs the block
 *    bodies serially when `shardWorkers() <= 1` (the default — zero
 *    threading overhead on 1-core hosts) and otherwise forks them into
 *    a process-wide shard pool via `exec::ThreadPool::forkJoin` (the
 *    caller participates; barrier-free join).  Bodies write disjoint
 *    output/scratch segments and touch only their own lane's state, so
 *    the fan-out is race-free by construction.
 *
 * Control loops stay single-threaded: sensors reduce over per-shard
 * counters at decision points (kernels::reduceSum / reduceMinMax, the
 * PR-7 pinned-order kernels), and chaos hooks keep firing once per
 * logical observation.
 */

#include <array>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "sim/rng.h"

namespace smartconf::sim {

/** Fixed logical shard count — never varies with worker count. */
inline constexpr std::size_t kShards = 16;

/** Target ops per block: typical ticks (n <= 32) stay one block. */
inline constexpr std::size_t kShardGranule = 32;

/** One block of a tick: out/scratch range [begin, end) served by
 *  logical shard `lane`. */
struct ShardSpan
{
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t lane = 0;
};

/** Blocks an n-op tick splits into: clamp(ceil(n/granule), 1, kShards)
 *  for n > 0, 0 for n == 0. */
inline std::size_t
shardBlockCount(std::size_t n)
{
    if (n == 0)
        return 0;
    const std::size_t blocks =
        (n + kShardGranule - 1) / kShardGranule;
    return blocks < kShards ? blocks : kShards;
}

/**
 * Compute the block layout of an n-op tick: spans[b] covers
 * [b*n/B, (b+1)*n/B) on lane (tick_seq + b) % kShards.  Pure function
 * of (n, tick_seq) — this is what makes the layout identical at every
 * worker count.  @p spans must hold kShards entries; returns the block
 * count B.
 *
 * Inline with a divide-free single-block path: typical ticks are a
 * handful of ops, so the layout runs once per tick on every data-plane
 * hot loop and must cost nanoseconds, not integer divisions.
 */
inline std::size_t
shardLayout(std::size_t n, std::uint64_t tick_seq, ShardSpan *spans)
{
    const std::size_t blocks = shardBlockCount(n);
    if (blocks == 1) {
        spans[0].begin = 0;
        spans[0].end = n;
        spans[0].lane =
            static_cast<std::size_t>(tick_seq % kShards);
        return 1;
    }
    for (std::size_t b = 0; b < blocks; ++b) {
        spans[b].begin = b * n / blocks;
        spans[b].end = (b + 1) * n / blocks;
        spans[b].lane = static_cast<std::size_t>(
            (tick_seq + b) % kShards);
    }
    return blocks;
}

/**
 * Per-run shard state: one jump-derived Rng per logical shard, a
 * control stream, the tick sequence counter that rotates blocks over
 * lanes, and per-shard op counters for the sensors / result surface.
 */
class ShardPlane
{
  public:
    /** Derive the control stream (= @p base) and kShards lane streams
     *  (successive jumps of @p base). */
    explicit ShardPlane(const Rng &base);

    /** Lane s's private stream (its gaussian spare included). */
    Rng &lane(std::size_t s) { return lanes_[s]; }

    /** Control stream for per-tick scalar draws (batch sizes). */
    Rng &control() { return control_; }

    /** Claim this tick's sequence number (rotates block->lane). */
    std::uint64_t nextTickSeq() { return tick_seq_++; }

    void addOps(std::size_t lane, std::uint64_t n)
    {
        ops_[lane] += n;
    }

    /** Ops served per logical shard, pinned lane order. */
    const std::array<std::uint64_t, kShards> &opsPerShard() const
    {
        return ops_;
    }

  private:
    Rng control_;
    std::array<Rng, kShards> lanes_;
    std::array<std::uint64_t, kShards> ops_{};
    std::uint64_t tick_seq_ = 0;
};

/**
 * Physical worker count for intra-run fan-out (process-wide).  1 (the
 * default, or SMARTCONF_SHARD_WORKERS) means run blocks inline on the
 * calling thread; N > 1 forks blocks into a shared pool of N-1 helper
 * threads with the caller participating.  Worker count never affects
 * results — only wall time.  Call between runs, not mid-run.
 */
void setShardWorkers(std::size_t n);
std::size_t shardWorkers();

namespace detail {
void shardFanOutErased(std::size_t blocks, void *body,
                       void (*invoke)(void *, std::size_t));
} // namespace detail

/**
 * Run body(b) for every block b in [0, blocks): serially in block
 * order when shardWorkers() <= 1 or blocks <= 1, else via the shard
 * pool's forkJoin.  Bodies must confine themselves to their block's
 * lane state and output segment.
 */
template <typename Body>
void
shardFanOut(std::size_t blocks, Body &&body)
{
    // Single-block ticks (the common case at typical op rates) run the
    // body inline: no worker-count load, no type-erased dispatch.
    if (blocks <= 1) {
        if (blocks == 1)
            body(std::size_t{0});
        return;
    }
    detail::shardFanOutErased(
        blocks,
        const_cast<void *>(
            static_cast<const void *>(std::addressof(body))),
        [](void *b, std::size_t i) {
            (*static_cast<std::remove_reference_t<Body> *>(b))(i);
        });
}

} // namespace smartconf::sim

#endif // SMARTCONF_SIM_SHARD_H_
