#ifndef SMARTCONF_SIM_RNG_H_
#define SMARTCONF_SIM_RNG_H_

/**
 * @file
 * Deterministic random number generation for the simulation substrate.
 *
 * Every scenario run is seeded explicitly so that tests, benches and the
 * figures regenerated from them are bit-reproducible.  The generator is
 * xoshiro256** (public domain, Blackman & Vigna); distributions include
 * the Zipfian sampler YCSB uses for key popularity.
 */

#include <cstdint>
#include <memory>
#include <vector>

namespace smartconf::sim {

class AliasTable;

/** xoshiro256** PRNG with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    // The integer/uniform primitives are defined inline: they sit on
    // the per-operation hot path of every workload generator and
    // sampler (tens of millions of calls per sweep), where the work is
    // a handful of ALU ops — a cross-TU call would cost more than the
    // function body.

    /** Next raw 64-bit value. */
    std::uint64_t next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        advance();
        return result;
    }

    /**
     * Fill @p out[0..n) with the next @p n raw values — the same words,
     * in the same order, as @p n successive next() calls (and the
     * generator lands in the same state).  The serial part of xoshiro
     * is only the state transition; fillRaw records the per-step s[1]
     * words and applies the output map through the SIMD kernel layer
     * (sim/kernels.h), so wide batches beat the call-per-word loop
     * while remaining stream-identical to it.
     */
    void fillRaw(std::uint64_t *out, std::size_t n);

    /**
     * Integer acceptance bound for a probability-@p p coin flipped on
     * raw words: chance(p) == (next() >> 11) < coinThreshold(p) for
     * every word.  Proof: uniform() = double(r >> 11) * 2^-53 < p
     * <=> (r >> 11) < p * 2^53 as reals (both sides scale exactly:
     * r >> 11 has at most 53 significant bits and multiplying a double
     * by a power of two only moves its exponent), and for integer x,
     * x < t <=> x < ceil(t).  Lets batch consumers turn coin flips
     * into pure integer compares on fillRaw() output.
     */
    static std::uint64_t coinThreshold(double p)
    {
        if (p >= 1.0)
            return 1ULL << 53; // above every (r >> 11): always true
        if (p <= 0.0)
            return 0; // never true, like uniform() < 0
        return static_cast<std::uint64_t>(
            __builtin_ceil(p * 9007199254740992.0 /* 2^53 */));
    }

    /** Uniform double in [0, 1). */
    double uniform()
    {
        // 53 high bits -> double in [0, 1).
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n); n must be > 0. */
    std::uint64_t below(std::uint64_t n)
    {
        return next() % n; // modulo bias negligible for simulation
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t between(std::int64_t lo, std::int64_t hi)
    {
        const std::uint64_t span =
            static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(below(span));
    }

    /** Bernoulli trial with success probability p. */
    bool chance(double p) { return uniform() < p; }

    /** Exponential variate with the given mean (inter-arrival times). */
    double exponential(double mean);

    /**
     * Normal variate via the kernel-layer Box-Muller
     * (kernels::gaussianPairs): each pair of raw words yields two
     * normals; the second is cached and returned by the next call.
     */
    double gaussian(double mean = 0.0, double stddev = 1.0);

    /**
     * Fill @p out[0..n) with normals — the same values, from the same
     * words, as @p n successive gaussian() calls (spare carry
     * included), but drawn through fillRaw() + the vectorized pair
     * kernel in chunks.
     */
    void gaussianBatch(double mean, double stddev, double *out,
                       std::size_t n);

    /**
     * Fork an independent stream: deterministic function of this
     * generator's seed and @p stream_id, so components can own private
     * streams without coupling their draw order.
     */
    Rng fork(std::uint64_t stream_id) const;

    /**
     * Advance this generator by 2^128 steps (the canonical xoshiro256**
     * jump polynomial): repeated jumps carve one seed into
     * non-overlapping substreams, which is how the sharded data plane
     * derives its per-shard lane streams (sim/shard.h).  The logical
     * seed is remixed alongside the state so fork() on a jumped stream
     * yields streams distinct from forks of the unjumped one.
     */
    void jump();

  private:
    static std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    /** State transition without the output map (fillRaw's inner step). */
    void advance()
    {
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
    }

    std::uint64_t s_[4];
    std::uint64_t seed_;
    bool have_spare_ = false;
    double spare_ = 0.0;
};

/**
 * Zipfian sampler over [0, n) with skew theta, as used by YCSB.
 *
 * Draws come from a Walker alias table (see sim/alias_sampler.h):
 * O(1), pow-free, one PRNG word per sample.  The table build is O(n)
 * with a pow() per term — for the 100k-key YCSB population that would
 * dwarf the sampler's own cost — so tables are memoized per
 * (n, theta) in a process-wide, thread-safe cache: every generator
 * construction after the first with the same parameters (one per
 * scenario run in a sweep) shares the already-built table.
 *
 * Stream compatibility: a draw consumes exactly one Rng::next(), the
 * same as the previous Gray et al. inverse-CDF sampler, so other
 * consumers of a shared Rng stream see identical values; only the
 * u -> rank mapping differs (exact alias pmf instead of the Gray
 * approximation).
 */
class ZipfianGenerator
{
  public:
    /**
     * @param n     population size (> 0).
     * @param theta skew in [0, 1); YCSB's default is 0.99... we default
     *              to 0.99 to match.
     */
    explicit ZipfianGenerator(std::uint64_t n, double theta = 0.99);

    /** Sample an item index in [0, n). */
    std::uint64_t sample(Rng &rng) const;

    /**
     * Fill @p out[0..count) with samples in one pass — bit-identical
     * to @p count serial sample() calls (see AliasTable::sampleBatch).
     */
    void sampleBatch(Rng &rng, std::uint64_t *out,
                     std::size_t count) const;

    /** Alias kept from the pre-kernel batch API; see sampleBatch(). */
    void sampleInto(Rng &rng, std::uint64_t *out,
                    std::size_t count) const
    {
        sampleBatch(rng, out, count);
    }

    std::uint64_t population() const { return n_; }

    /** zeta(n, theta), the pmf normalizer (= the table's weight sum). */
    double zeta() const { return zetan_; }

    /** Exact probability of rank @p i under this distribution. */
    double pmf(std::uint64_t i) const;

    /** Memoized alias tables held process-wide (test/diagnostic hook). */
    static std::size_t zetaCacheSize();

  private:
    std::uint64_t n_;
    double theta_;
    double zetan_;
    std::shared_ptr<const AliasTable> table_;
};

} // namespace smartconf::sim

#endif // SMARTCONF_SIM_RNG_H_
