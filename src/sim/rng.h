#ifndef SMARTCONF_SIM_RNG_H_
#define SMARTCONF_SIM_RNG_H_

/**
 * @file
 * Deterministic random number generation for the simulation substrate.
 *
 * Every scenario run is seeded explicitly so that tests, benches and the
 * figures regenerated from them are bit-reproducible.  The generator is
 * xoshiro256** (public domain, Blackman & Vigna); distributions include
 * the Zipfian sampler YCSB uses for key popularity.
 */

#include <cstdint>
#include <vector>

namespace smartconf::sim {

/** xoshiro256** PRNG with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n); n must be > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t between(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with success probability p. */
    bool chance(double p);

    /** Exponential variate with the given mean (inter-arrival times). */
    double exponential(double mean);

    /** Standard normal via Box-Muller. */
    double gaussian(double mean = 0.0, double stddev = 1.0);

    /**
     * Fork an independent stream: deterministic function of this
     * generator's seed and @p stream_id, so components can own private
     * streams without coupling their draw order.
     */
    Rng fork(std::uint64_t stream_id) const;

  private:
    std::uint64_t s_[4];
    std::uint64_t seed_;
    bool have_spare_ = false;
    double spare_ = 0.0;
};

/**
 * Zipfian sampler over [0, n) with skew theta, as used by YCSB.
 *
 * Uses the Gray et al. rejection-free method with precomputed zeta.
 * Computing zeta(n) is O(n) with a pow() per term — for the 100k-key
 * YCSB population that dwarfs the sampler's own cost — so the zeta
 * value is memoized per (n, theta) in a process-wide, thread-safe
 * table: every generator construction after the first with the same
 * parameters (one per scenario run in a sweep) reuses the precomputed
 * constant instead of redoing the summation.
 */
class ZipfianGenerator
{
  public:
    /**
     * @param n     population size (> 0).
     * @param theta skew in [0, 1); YCSB's default is 0.99... we default
     *              to 0.99 to match.
     */
    explicit ZipfianGenerator(std::uint64_t n, double theta = 0.99);

    /** Sample an item index in [0, n). */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t population() const { return n_; }

    /** Memoized zeta(n, theta) entries (test/diagnostic hook). */
    static std::size_t zetaCacheSize();

  private:
    std::uint64_t n_;
    double theta_;
    double zetan_;
    double alpha_;
    double eta_;
    double second_rank_threshold_; ///< 1 + 0.5^theta, hoisted from sample()
};

} // namespace smartconf::sim

#endif // SMARTCONF_SIM_RNG_H_
