#ifndef SMARTCONF_SIM_CLOCK_H_
#define SMARTCONF_SIM_CLOCK_H_

/**
 * @file
 * Virtual time for the discrete-event substrate.
 *
 * Time is an integer tick count; scenarios define the tick length (the
 * case studies use 100 ms ticks, so 600 s of simulated server time is
 * 6000 ticks).  Keeping ticks integral avoids floating-point drift in
 * event ordering.
 */

#include <cstdint>

namespace smartconf::sim {

/** Simulated time in ticks. */
using Tick = std::int64_t;

/** Converts between ticks and seconds for reporting. */
class TickConverter
{
  public:
    /** @param ticks_per_second granularity of the simulation. */
    explicit TickConverter(double ticks_per_second = 10.0)
        : ticks_per_second_(ticks_per_second)
    {}

    double toSeconds(Tick t) const
    {
        return static_cast<double>(t) / ticks_per_second_;
    }

    Tick toTicks(double seconds) const
    {
        return static_cast<Tick>(seconds * ticks_per_second_ + 0.5);
    }

    double ticksPerSecond() const { return ticks_per_second_; }

  private:
    double ticks_per_second_;
};

/** Monotonic simulation clock advanced by the event loop. */
class Clock
{
  public:
    Tick now() const { return now_; }

    /** Advance to @p t; time never moves backwards. */
    void advanceTo(Tick t)
    {
        if (t > now_)
            now_ = t;
    }

    /** Advance by @p dt ticks. */
    void advanceBy(Tick dt) { now_ += dt; }

    void reset() { now_ = 0; }

  private:
    Tick now_ = 0;
};

} // namespace smartconf::sim

#endif // SMARTCONF_SIM_CLOCK_H_
