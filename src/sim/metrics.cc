#include "sim/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/kernels.h"

namespace smartconf::sim {

double
TimeSeries::max() const
{
    double best = 0.0;
    for (const auto &p : points_)
        best = std::max(best, p.value);
    return best;
}

double
TimeSeries::last() const
{
    return points_.empty() ? 0.0 : points_.back().value;
}

double
TimeSeries::mean() const
{
    if (points_.empty())
        return 0.0;
    double acc = 0.0;
    for (const auto &p : points_)
        acc += p.value;
    return acc / static_cast<double>(points_.size());
}

Tick
TimeSeries::firstAbove(double threshold) const
{
    for (const auto &p : points_) {
        if (p.value > threshold)
            return p.tick;
    }
    return -1;
}

std::vector<TimeSeries::Point>
TimeSeries::downsampleMax(std::size_t buckets) const
{
    if (buckets == 0)
        return {}; // "at most 0 points" is the empty series
    if (points_.size() <= buckets)
        return points_;
    std::vector<Point> out;
    out.reserve(buckets);
    const std::size_t stride =
        (points_.size() + buckets - 1) / buckets;
    for (std::size_t i = 0; i < points_.size(); i += stride) {
        Point best = points_[i];
        const std::size_t end = std::min(i + stride, points_.size());
        for (std::size_t j = i; j < end; ++j) {
            if (points_[j].value > best.value)
                best = points_[j];
        }
        out.push_back(best);
    }
    return out;
}

std::string
TimeSeries::toCsv(const TickConverter &conv) const
{
    std::ostringstream out;
    out << "seconds," << (name_.empty() ? "value" : name_) << "\n";
    for (const auto &p : points_)
        out << conv.toSeconds(p.tick) << "," << p.value << "\n";
    return out.str();
}

void
Histogram::recordBatch(const double *values, std::size_t n)
{
    if (n == 0)
        return;
    values_.insert(values_.end(), values, values + n);
    sum_ += kernels::reduceSum(values, n);
    const kernels::MinMax mm = kernels::reduceMinMax(values, n);
    // Fold the batch partials with the same directional rules the
    // kernels use per element.
    min_ = mm.min < min_ ? mm.min : min_;
    max_ = mm.max > max_ ? mm.max : max_;
    scratch_fresh_ = false;
}

double
Histogram::percentile(double p) const
{
    if (values_.empty())
        return 0.0;
    if (!scratch_fresh_) {
        // Refresh the reusable scratch copy; capacity is retained, so
        // steady-state queries allocate only when the histogram grew.
        scratch_.assign(values_.begin(), values_.end());
        scratch_fresh_ = true;
        scratch_sorted_ = false;
        queries_since_mutation_ = 0;
    }
    const double rank =
        std::ceil(p / 100.0 * static_cast<double>(scratch_.size()));
    const std::size_t idx = static_cast<std::size_t>(std::max(
        1.0, std::min(rank, static_cast<double>(scratch_.size()))));
    if (!scratch_sorted_) {
        if (queries_since_mutation_ == 0) {
            // Single-query fast path: nth_element places the requested
            // rank correctly in O(n) without sorting everything.
            ++queries_since_mutation_;
            std::nth_element(scratch_.begin(),
                             scratch_.begin() +
                                 static_cast<std::ptrdiff_t>(idx - 1),
                             scratch_.end());
        } else {
            // Second query since the last mutation: sort once, then
            // every further percentile is a plain lookup.
            std::sort(scratch_.begin(), scratch_.end());
            scratch_sorted_ = true;
        }
    }
    return scratch_[idx - 1];
}

} // namespace smartconf::sim
