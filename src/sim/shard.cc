#include "sim/shard.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "exec/thread_pool.h"

namespace smartconf::sim {

ShardPlane::ShardPlane(const Rng &base) : control_(base)
{
    Rng walker = base;
    for (auto &lane : lanes_) {
        walker.jump();
        lane = walker;
    }
}

namespace {

std::size_t
shardWorkersFromEnv()
{
    if (const char *env = std::getenv("SMARTCONF_SHARD_WORKERS")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<std::size_t>(v);
    }
    return 1;
}

/**
 * Process-wide fan-out state.  The worker count is read lock-free on
 * the per-tick hot path; the pool is built lazily on the first
 * multi-worker fan-out and rebuilt (under the mutex) when the count
 * changes between runs.  Leaked deliberately: benches and tests fan
 * out from static-lifetime fixtures.
 */
struct ShardExecState
{
    std::mutex mutex;
    std::atomic<std::size_t> workers{shardWorkersFromEnv()};
    std::atomic<exec::ThreadPool *> pool{nullptr};
    std::unique_ptr<exec::ThreadPool> pool_owner;

    static ShardExecState &instance()
    {
        static ShardExecState *state = new ShardExecState;
        return *state;
    }
};

} // namespace

void
setShardWorkers(std::size_t n)
{
    ShardExecState &state = ShardExecState::instance();
    std::lock_guard<std::mutex> lock(state.mutex);
    const std::size_t workers = n == 0 ? 1 : n;
    if (state.workers.exchange(workers) == workers)
        return;
    // Count changed: retire the old pool (joins its helpers; callers
    // are between runs per the contract) and let the next fan-out
    // build the right-sized one.
    state.pool.store(nullptr, std::memory_order_release);
    state.pool_owner.reset();
}

std::size_t
shardWorkers()
{
    return ShardExecState::instance().workers.load(
        std::memory_order_relaxed);
}

namespace detail {

void
shardFanOutErased(std::size_t blocks, void *body,
                  void (*invoke)(void *, std::size_t))
{
    ShardExecState &state = ShardExecState::instance();
    const std::size_t workers =
        state.workers.load(std::memory_order_relaxed);
    if (blocks <= 1 || workers <= 1) {
        for (std::size_t b = 0; b < blocks; ++b)
            invoke(body, b);
        return;
    }
    exec::ThreadPool *pool =
        state.pool.load(std::memory_order_acquire);
    if (pool == nullptr) {
        std::lock_guard<std::mutex> lock(state.mutex);
        pool = state.pool.load(std::memory_order_relaxed);
        if (pool == nullptr) {
            // Caller participates in forkJoin, so N workers means N-1
            // helper threads.
            state.pool_owner = std::make_unique<exec::ThreadPool>(
                state.workers.load(std::memory_order_relaxed) - 1);
            pool = state.pool_owner.get();
            state.pool.store(pool, std::memory_order_release);
        }
    }
    pool->forkJoin(blocks,
                   [&](std::size_t b) { invoke(body, b); });
}

} // namespace detail

} // namespace smartconf::sim
