#ifndef SMARTCONF_SIM_SIMD_H_
#define SMARTCONF_SIM_SIMD_H_

/**
 * @file
 * ISA levels for the data-plane kernel layer (see sim/kernels.h).
 *
 * The kernels ship one scalar reference implementation (the canonical
 * definition of every kernel's output) plus optional SSE2/AVX2 backends
 * selected at runtime.  This header only names the levels and the
 * detection/override surface; all implementation — including the
 * compile-time gate (`-DSMARTCONF_SIMD=OFF` builds scalar-only) — lives
 * in kernels.cc, so no other translation unit's code generation depends
 * on the target ISA.
 *
 * Level selection, in priority order:
 *   1. kernels::setIsa() — explicit (tests iterate every level);
 *   2. SMARTCONF_ISA=scalar|sse2|avx2 in the environment, read once at
 *      first kernel use (forcing a level the host or build cannot run
 *      clamps down to the best available one);
 *   3. CPUID detection, clamped to what the build enabled.
 */

#include <string_view>

namespace smartconf::sim::simd {

/** Dispatch levels, ordered so that higher = wider. */
enum class Isa
{
    Scalar = 0, ///< portable reference (always available)
    Sse2 = 1,   ///< 128-bit lanes (baseline on x86-64)
    Avx2 = 2,   ///< 256-bit lanes + gathers
};

/** Lower-case level name ("scalar", "sse2", "avx2"). */
const char *name(Isa isa);

/**
 * Parse a level name (as accepted in SMARTCONF_ISA).  Returns false —
 * leaving @p out untouched — on anything unrecognized.
 */
bool parse(std::string_view text, Isa &out);

/**
 * Best level this process can actually execute: CPUID capability
 * clamped to what the build compiled in (Scalar when the backends were
 * compiled out via -DSMARTCONF_SIMD=OFF or on non-x86 targets).
 */
Isa detected();

/** True when @p isa is at or below detected(). */
bool supported(Isa isa);

/** True when the SSE2/AVX2 backends were compiled into this build. */
bool compiledIn();

} // namespace smartconf::sim::simd

#endif // SMARTCONF_SIM_SIMD_H_
