#include "sim/alias_sampler.h"

#include <cassert>
#include <cmath>
#include <map>
#include <mutex>
#include <utility>

#include "sim/kernels.h"

namespace smartconf::sim {

AliasTable::AliasTable(const std::vector<double> &weights)
    : n_(weights.size())
{
    assert(!weights.empty());
    assert(n_ <= 0xffffffffULL);

    double sum = 0.0;
    for (const double w : weights) {
        assert(w >= 0.0);
        sum += w;
    }
    assert(sum > 0.0);
    weight_sum_ = sum;

    // Vose's algorithm: scale each probability by n, then repeatedly
    // pair one under-full slot with one over-full donor.  Every slot
    // ends up with a threshold in [0, 1] and an alias to the donor
    // that tops it up.
    const auto n = static_cast<std::size_t>(n_);
    std::vector<double> scaled(n);
    const double scale = static_cast<double>(n_) / sum;
    for (std::size_t i = 0; i < n; ++i)
        scaled[i] = weights[i] * scale;

    std::vector<std::uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        (scaled[i] < 1.0 ? small : large)
            .push_back(static_cast<std::uint32_t>(i));

    entries_.resize(n);
    auto pack = [](double threshold, std::uint32_t alias) {
        // 32-bit fixed point; the coin is a uniform uint32, so a full
        // slot needs the all-ones threshold (and aliases to itself to
        // stay exact on the 2^-32 coin == threshold edge).
        const double clamped =
            threshold < 0.0 ? 0.0 : (threshold > 1.0 ? 1.0 : threshold);
        const auto fixed = static_cast<std::uint64_t>(
            std::nearbyint(clamped * 4294967296.0));
        const std::uint64_t capped =
            fixed > 0xffffffffULL ? 0xffffffffULL : fixed;
        return (capped << 32) | alias;
    };

    while (!small.empty() && !large.empty()) {
        const std::uint32_t s = small.back();
        small.pop_back();
        const std::uint32_t l = large.back();
        entries_[s] = pack(scaled[s], l);
        scaled[l] -= 1.0 - scaled[s];
        if (scaled[l] < 1.0) {
            large.pop_back();
            small.push_back(l);
        }
    }
    // Leftovers (either list) are exactly-full modulo float error.
    for (const std::uint32_t i : small)
        entries_[i] = pack(1.0, i);
    for (const std::uint32_t i : large)
        entries_[i] = pack(1.0, i);
}

void
AliasTable::sampleBatch(Rng &rng, std::uint64_t *out,
                        std::size_t count) const
{
    rng.fillRaw(out, count);
    kernels::aliasResolve(entries_.data(), n_, out, count);
}

namespace {

/**
 * Process-wide memo of Zipf alias tables, one per (n, theta).
 *
 * Guarded by a mutex because parallel sweeps construct generators on
 * worker threads concurrently.  The O(n) build runs under the lock: it
 * executes once per distinct key for the process lifetime, and racing
 * duplicates would waste exactly the work the cache exists to avoid.
 * Tables are immutable shared_ptrs, so handing them out under the lock
 * and sampling outside it is race-free.
 */
class ZipfTableCache
{
  public:
    std::shared_ptr<const AliasTable> get(std::uint64_t n, double theta)
    {
        const std::pair<std::uint64_t, double> key{n, theta};
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = memo_.find(key);
        if (it != memo_.end())
            return it->second;
        std::vector<double> weights(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i)
            weights[i] =
                1.0 / std::pow(static_cast<double>(i + 1), theta);
        auto table = std::make_shared<const AliasTable>(weights);
        memo_.emplace(key, table);
        return table;
    }

    std::size_t size()
    {
        std::lock_guard<std::mutex> lock(mu_);
        return memo_.size();
    }

  private:
    std::mutex mu_;
    std::map<std::pair<std::uint64_t, double>,
             std::shared_ptr<const AliasTable>>
        memo_;
};

ZipfTableCache &
zipfTableCache()
{
    static ZipfTableCache cache;
    return cache;
}

} // namespace

std::shared_ptr<const AliasTable>
AliasTable::zipfian(std::uint64_t n, double theta)
{
    return zipfTableCache().get(n, theta);
}

std::size_t
AliasTable::zipfCacheSize()
{
    return zipfTableCache().size();
}

} // namespace smartconf::sim
