#include "sim/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

/*
 * Backend layout.  The scalar namespace is the canonical definition of
 * every kernel; the sse2/avx2 namespaces re-implement the same math on
 * wider registers and are compiled only when the build enables them
 * (-DSMARTCONF_SIMD=ON, the default) on an x86 target.  Each SIMD
 * function carries a gcc/clang `target` attribute instead of the whole
 * TU being built with -mavx2, so the compiler can never leak AVX2
 * instructions into code that runs on narrower hosts.
 */
#if defined(SMARTCONF_SIMD_ENABLED) && \
    (defined(__x86_64__) || defined(__i386__))
#define SMARTCONF_SIMD_X86 1
#include <immintrin.h>
#endif

namespace smartconf::sim {

namespace simd {

const char *
name(Isa isa)
{
    switch (isa) {
    case Isa::Sse2:
        return "sse2";
    case Isa::Avx2:
        return "avx2";
    case Isa::Scalar:
    default:
        return "scalar";
    }
}

bool
parse(std::string_view text, Isa &out)
{
    if (text == "scalar") {
        out = Isa::Scalar;
        return true;
    }
    if (text == "sse2") {
        out = Isa::Sse2;
        return true;
    }
    if (text == "avx2") {
        out = Isa::Avx2;
        return true;
    }
    return false;
}

bool
compiledIn()
{
#ifdef SMARTCONF_SIMD_X86
    return true;
#else
    return false;
#endif
}

Isa
detected()
{
#ifdef SMARTCONF_SIMD_X86
    static const Isa level = [] {
        if (__builtin_cpu_supports("avx2"))
            return Isa::Avx2;
        if (__builtin_cpu_supports("sse2"))
            return Isa::Sse2;
        return Isa::Scalar;
    }();
    return level;
#else
    return Isa::Scalar;
#endif
}

bool
supported(Isa isa)
{
    return static_cast<int>(isa) <= static_cast<int>(detected());
}

} // namespace simd

namespace kernels {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kLaneGamma = 0x9e3779b97f4a7c15ULL;

inline std::uint64_t
rotl64(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

// ---------------------------------------------------------------- scalar
// The reference implementations.  Note the reductions spell out the
// four-lane accumulation literally: these loops *are* the definition
// the vector backends must reproduce bit-for-bit.

namespace scalar {

void
rngOutputMap(std::uint64_t *words, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        words[i] = rotl64(words[i] * 5, 7) * 9;
}

void
aliasResolve(const std::uint64_t *entries, std::uint64_t n_slots,
             std::uint64_t *words, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t w = words[i];
        const auto slot =
            static_cast<std::uint32_t>(((w >> 32) * n_slots) >> 32);
        const std::uint64_t entry = entries[slot];
        words[i] = static_cast<std::uint32_t>(w) <
                           static_cast<std::uint32_t>(entry >> 32)
                       ? slot
                       : static_cast<std::uint32_t>(entry);
    }
}

double
reduceSum(const double *x, std::size_t n)
{
    double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        l0 += x[i];
        l1 += x[i + 1];
        l2 += x[i + 2];
        l3 += x[i + 3];
    }
    double total = (l0 + l2) + (l1 + l3);
    for (; i < n; ++i)
        total += x[i];
    return total;
}

MinMax
reduceMinMax(const double *x, std::size_t n)
{
    constexpr double kInf = __builtin_inf();
    double mn0 = kInf, mn1 = kInf, mn2 = kInf, mn3 = kInf;
    double mx0 = -kInf, mx1 = -kInf, mx2 = -kInf, mx3 = -kInf;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        // Exactly minpd/maxpd(x, acc): a NaN element keeps the
        // accumulator.
        mn0 = x[i] < mn0 ? x[i] : mn0;
        mn1 = x[i + 1] < mn1 ? x[i + 1] : mn1;
        mn2 = x[i + 2] < mn2 ? x[i + 2] : mn2;
        mn3 = x[i + 3] < mn3 ? x[i + 3] : mn3;
        mx0 = x[i] > mx0 ? x[i] : mx0;
        mx1 = x[i + 1] > mx1 ? x[i + 1] : mx1;
        mx2 = x[i + 2] > mx2 ? x[i + 2] : mx2;
        mx3 = x[i + 3] > mx3 ? x[i + 3] : mx3;
    }
    const double cn0 = mn0 < mn2 ? mn0 : mn2;
    const double cn1 = mn1 < mn3 ? mn1 : mn3;
    const double cx0 = mx0 > mx2 ? mx0 : mx2;
    const double cx1 = mx1 > mx3 ? mx1 : mx3;
    MinMax r;
    r.min = cn0 < cn1 ? cn0 : cn1;
    r.max = cx0 > cx1 ? cx0 : cx1;
    for (; i < n; ++i) {
        r.min = x[i] < r.min ? x[i] : r.min;
        r.max = x[i] > r.max ? x[i] : r.max;
    }
    return r;
}

std::uint64_t
checksum(const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t lane[4];
    for (std::uint64_t j = 0; j < 4; ++j)
        lane[j] = kFnvBasis ^ (j * kLaneGamma);
    std::size_t i = 0;
    for (; i + 32 <= len; i += 32) {
        std::uint64_t w[4];
        std::memcpy(w, p + i, 32);
        for (int j = 0; j < 4; ++j)
            lane[j] = (lane[j] ^ w[j]) * kFnvPrime;
    }
    std::uint64_t h = kFnvBasis;
    for (int j = 0; j < 4; ++j)
        h = (h ^ lane[j]) * kFnvPrime;
    for (; i + 8 <= len; i += 8) {
        std::uint64_t w;
        std::memcpy(&w, p + i, 8);
        h = (h ^ w) * kFnvPrime;
    }
    for (; i < len; ++i)
        h = (h ^ p[i]) * kFnvPrime;
    return h;
}

void
copyBytes(void *dst, const void *src, std::size_t n)
{
    if (n != 0)
        std::memcpy(dst, src, n);
}

// Gaussian-pair body (kernels_gauss.inc) on plain doubles.  The ops
// all lower to bare IEEE scalar instructions, so this reference is
// what the vector backends' lanes must match bit-for-bit.
#define GK_FN static inline
#define GK_D double
#define GK_I std::uint64_t
#define GK_SETD(c) (c)
#define GK_SETI(c) (c)
#define GK_ADD(a, b) ((a) + (b))
#define GK_SUB(a, b) ((a) - (b))
#define GK_MUL(a, b) ((a) * (b))
#define GK_DIV(a, b) ((a) / (b))
#define GK_SQRT(a) __builtin_sqrt(a)
#define GK_CASTDI(d) __builtin_bit_cast(std::uint64_t, (d))
#define GK_CASTID(i) __builtin_bit_cast(double, (i))
#define GK_ANDI(a, b) ((a) & (b))
#define GK_ORI(a, b) ((a) | (b))
#define GK_XORI(a, b) ((a) ^ (b))
#define GK_ADDI(a, b) ((a) + (b))
#define GK_SUBI(a, b) ((a) - (b))
#define GK_SHRI(v, k) ((v) >> (k))
#define GK_SHLI(v, k) ((v) << (k))
#define GK_CMPGT(a, b) ((a) > (b) ? ~0ULL : 0ULL)
#define GK_SEL(m, a, b) \
    GK_CASTID(((m) & GK_CASTDI(a)) | (~(m) & GK_CASTDI(b)))
#include "sim/kernels_gauss.inc"
#undef GK_FN
#undef GK_D
#undef GK_I
#undef GK_SETD
#undef GK_SETI
#undef GK_ADD
#undef GK_SUB
#undef GK_MUL
#undef GK_DIV
#undef GK_SQRT
#undef GK_CASTDI
#undef GK_CASTID
#undef GK_ANDI
#undef GK_ORI
#undef GK_XORI
#undef GK_ADDI
#undef GK_SUBI
#undef GK_SHRI
#undef GK_SHLI
#undef GK_CMPGT
#undef GK_SEL

void
gaussianPairs(const std::uint64_t *words, double *z, std::size_t pairs)
{
    for (std::size_t i = 0; i < pairs; ++i) {
        double z0, z1;
        gkGaussPair(words[2 * i], words[2 * i + 1], &z0, &z1);
        z[2 * i] = z0;
        z[2 * i + 1] = z1;
    }
}

} // namespace scalar

#ifdef SMARTCONF_SIMD_X86

// ----------------------------------------------------------------- sse2
// 128-bit backend: two registers stand in for the four virtual lanes
// (A = lanes {0,1}, B = lanes {2,3}), so the combine step
// A op B = {L0 op L2, L1 op L3} reproduces the scalar reference's
// (L0 op L2) op (L1 op L3) exactly.

namespace sse2 {

void
rngOutputMap(std::uint64_t *words, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        __m128i x = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(words + i));
        const __m128i x5 = _mm_add_epi64(_mm_slli_epi64(x, 2), x);
        const __m128i r = _mm_or_si128(_mm_slli_epi64(x5, 7),
                                       _mm_srli_epi64(x5, 57));
        x = _mm_add_epi64(_mm_slli_epi64(r, 3), r);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(words + i), x);
    }
    if (i < n)
        words[i] = rotl64(words[i] * 5, 7) * 9;
}

void
aliasResolve(const std::uint64_t *entries, std::uint64_t n_slots,
             std::uint64_t *words, std::size_t n)
{
    // Slot selection vectorizes (pmuludq exists in SSE2); the gather
    // and the 64-bit compare/select do not, so they stay scalar.
    const __m128i nvec =
        _mm_set1_epi64x(static_cast<long long>(n_slots));
    std::size_t i = 0;
    alignas(16) std::uint64_t slot[2];
    for (; i + 2 <= n; i += 2) {
        const __m128i w = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(words + i));
        const __m128i hi = _mm_srli_epi64(w, 32);
        _mm_store_si128(
            reinterpret_cast<__m128i *>(slot),
            _mm_srli_epi64(_mm_mul_epu32(hi, nvec), 32));
        for (int k = 0; k < 2; ++k) {
            const std::uint64_t entry = entries[slot[k]];
            words[i + k] =
                static_cast<std::uint32_t>(words[i + k]) <
                        static_cast<std::uint32_t>(entry >> 32)
                    ? slot[k]
                    : static_cast<std::uint32_t>(entry);
        }
    }
    if (i < n)
        scalar::aliasResolve(entries, n_slots, words + i, n - i);
}

double
reduceSum(const double *x, std::size_t n)
{
    __m128d a = _mm_setzero_pd(); // lanes {0, 1}
    __m128d b = _mm_setzero_pd(); // lanes {2, 3}
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        a = _mm_add_pd(a, _mm_loadu_pd(x + i));
        b = _mm_add_pd(b, _mm_loadu_pd(x + i + 2));
    }
    const __m128d s = _mm_add_pd(a, b); // {L0+L2, L1+L3}
    const double lo = _mm_cvtsd_f64(s);
    const double hi = _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
    double total = lo + hi;
    for (; i < n; ++i)
        total += x[i];
    return total;
}

MinMax
reduceMinMax(const double *x, std::size_t n)
{
    constexpr double kInf = __builtin_inf();
    __m128d mna = _mm_set1_pd(kInf), mnb = _mm_set1_pd(kInf);
    __m128d mxa = _mm_set1_pd(-kInf), mxb = _mm_set1_pd(-kInf);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128d va = _mm_loadu_pd(x + i);
        const __m128d vb = _mm_loadu_pd(x + i + 2);
        mna = _mm_min_pd(va, mna);
        mnb = _mm_min_pd(vb, mnb);
        mxa = _mm_max_pd(va, mxa);
        mxb = _mm_max_pd(vb, mxb);
    }
    const __m128d cn = _mm_min_pd(mna, mnb); // {f(L0,L2), f(L1,L3)}
    const __m128d cx = _mm_max_pd(mxa, mxb);
    const double cn0 = _mm_cvtsd_f64(cn);
    const double cn1 = _mm_cvtsd_f64(_mm_unpackhi_pd(cn, cn));
    const double cx0 = _mm_cvtsd_f64(cx);
    const double cx1 = _mm_cvtsd_f64(_mm_unpackhi_pd(cx, cx));
    MinMax r;
    r.min = cn0 < cn1 ? cn0 : cn1;
    r.max = cx0 > cx1 ? cx0 : cx1;
    for (; i < n; ++i) {
        r.min = x[i] < r.min ? x[i] : r.min;
        r.max = x[i] > r.max ? x[i] : r.max;
    }
    return r;
}

/** (h ^ w) * kFnvPrime on two 64-bit lanes; the prime is 2^40 + 0x1b3,
 *  so the multiply decomposes into shift/add + two 32x32 products. */
inline __m128i
fnvStep(__m128i h, __m128i w)
{
    const __m128i p2 = _mm_set1_epi64x(0x1b3);
    h = _mm_xor_si128(h, w);
    const __m128i t0 = _mm_slli_epi64(h, 40);
    const __m128i t1 = _mm_mul_epu32(h, p2);
    const __m128i t2 =
        _mm_slli_epi64(_mm_mul_epu32(_mm_srli_epi64(h, 32), p2), 32);
    return _mm_add_epi64(_mm_add_epi64(t0, t1), t2);
}

std::uint64_t
checksum(const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    __m128i laneA = _mm_set_epi64x(
        static_cast<long long>(kFnvBasis ^ (1 * kLaneGamma)),
        static_cast<long long>(kFnvBasis ^ (0 * kLaneGamma)));
    __m128i laneB = _mm_set_epi64x(
        static_cast<long long>(kFnvBasis ^ (3 * kLaneGamma)),
        static_cast<long long>(kFnvBasis ^ (2 * kLaneGamma)));
    std::size_t i = 0;
    for (; i + 32 <= len; i += 32) {
        laneA = fnvStep(laneA, _mm_loadu_si128(
                                   reinterpret_cast<const __m128i *>(
                                       p + i)));
        laneB = fnvStep(laneB, _mm_loadu_si128(
                                   reinterpret_cast<const __m128i *>(
                                       p + i + 16)));
    }
    alignas(16) std::uint64_t lane[4];
    _mm_store_si128(reinterpret_cast<__m128i *>(lane), laneA);
    _mm_store_si128(reinterpret_cast<__m128i *>(lane + 2), laneB);
    std::uint64_t h = kFnvBasis;
    for (int j = 0; j < 4; ++j)
        h = (h ^ lane[j]) * kFnvPrime;
    for (; i + 8 <= len; i += 8) {
        std::uint64_t w;
        std::memcpy(&w, p + i, 8);
        h = (h ^ w) * kFnvPrime;
    }
    for (; i < len; ++i)
        h = (h ^ p[i]) * kFnvPrime;
    return h;
}

void
copyBytes(void *dst, const void *src, std::size_t n)
{
    auto *d = static_cast<unsigned char *>(dst);
    const auto *s = static_cast<const unsigned char *>(src);
    while (n >= 32) {
        const __m128i a =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(s));
        const __m128i b = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(s + 16));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(d), a);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(d + 16), b);
        d += 32;
        s += 32;
        n -= 32;
    }
    if (n != 0)
        std::memcpy(d, s, n);
}

// Gaussian-pair body on 128-bit lanes.  Identical operation sequence
// to the scalar include; _mm_cmpgt_pd differs from _CMP_GT_OQ only on
// NaN inputs, which gkLog's mantissa compare never sees.
#define GK_FN static inline
#define GK_D __m128d
#define GK_I __m128i
#define GK_SETD(c) _mm_set1_pd(c)
#define GK_SETI(c) _mm_set1_epi64x(static_cast<long long>(c))
#define GK_ADD(a, b) _mm_add_pd((a), (b))
#define GK_SUB(a, b) _mm_sub_pd((a), (b))
#define GK_MUL(a, b) _mm_mul_pd((a), (b))
#define GK_DIV(a, b) _mm_div_pd((a), (b))
#define GK_SQRT(a) _mm_sqrt_pd(a)
#define GK_CASTDI(d) _mm_castpd_si128(d)
#define GK_CASTID(i) _mm_castsi128_pd(i)
#define GK_ANDI(a, b) _mm_and_si128((a), (b))
#define GK_ORI(a, b) _mm_or_si128((a), (b))
#define GK_XORI(a, b) _mm_xor_si128((a), (b))
#define GK_ADDI(a, b) _mm_add_epi64((a), (b))
#define GK_SUBI(a, b) _mm_sub_epi64((a), (b))
#define GK_SHRI(v, k) _mm_srli_epi64((v), (k))
#define GK_SHLI(v, k) _mm_slli_epi64((v), (k))
#define GK_CMPGT(a, b) _mm_castpd_si128(_mm_cmpgt_pd((a), (b)))
#define GK_SEL(m, a, b)                                         \
    _mm_castsi128_pd(                                           \
        _mm_or_si128(_mm_and_si128((m), _mm_castpd_si128(a)),   \
                     _mm_andnot_si128((m), _mm_castpd_si128(b))))
#include "sim/kernels_gauss.inc"
#undef GK_FN
#undef GK_D
#undef GK_I
#undef GK_SETD
#undef GK_SETI
#undef GK_ADD
#undef GK_SUB
#undef GK_MUL
#undef GK_DIV
#undef GK_SQRT
#undef GK_CASTDI
#undef GK_CASTID
#undef GK_ANDI
#undef GK_ORI
#undef GK_XORI
#undef GK_ADDI
#undef GK_SUBI
#undef GK_SHRI
#undef GK_SHLI
#undef GK_CMPGT
#undef GK_SEL

void
gaussianPairs(const std::uint64_t *words, double *z, std::size_t pairs)
{
    std::size_t i = 0;
    for (; i + 2 <= pairs; i += 2) {
        // a = {p0.w0, p0.w1}, b = {p1.w0, p1.w1}; unpack deinterleaves
        // into w0 = {p0.w0, p1.w0}, w1 = {p0.w1, p1.w1}.
        const __m128i a = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(words + 2 * i));
        const __m128i b = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(words + 2 * i + 2));
        __m128d z0, z1;
        gkGaussPair(_mm_unpacklo_epi64(a, b), _mm_unpackhi_epi64(a, b),
                    &z0, &z1);
        _mm_storeu_pd(z + 2 * i, _mm_unpacklo_pd(z0, z1));
        _mm_storeu_pd(z + 2 * i + 2, _mm_unpackhi_pd(z0, z1));
    }
    if (i < pairs)
        scalar::gaussianPairs(words + 2 * i, z + 2 * i, pairs - i);
}

} // namespace sse2

// ----------------------------------------------------------------- avx2
// 256-bit backend: one register holds all four lanes, and the alias
// kernel uses hardware gathers.  Every function carries the avx2
// target attribute (the TU itself is compiled for the baseline ISA).

namespace avx2 {

__attribute__((target("avx2"))) void
rngOutputMap(std::uint64_t *words, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(words + i));
        const __m256i x5 = _mm256_add_epi64(_mm256_slli_epi64(x, 2), x);
        const __m256i r = _mm256_or_si256(_mm256_slli_epi64(x5, 7),
                                          _mm256_srli_epi64(x5, 57));
        x = _mm256_add_epi64(_mm256_slli_epi64(r, 3), r);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(words + i), x);
    }
    for (; i < n; ++i)
        words[i] = rotl64(words[i] * 5, 7) * 9;
}

__attribute__((target("avx2"))) void
aliasResolve(const std::uint64_t *entries, std::uint64_t n_slots,
             std::uint64_t *words, std::size_t n)
{
    const __m256i nvec =
        _mm256_set1_epi64x(static_cast<long long>(n_slots));
    const __m256i lo32 = _mm256_set1_epi64x(0xffffffffLL);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i w = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(words + i));
        const __m256i hi = _mm256_srli_epi64(w, 32);
        const __m256i slot =
            _mm256_srli_epi64(_mm256_mul_epu32(hi, nvec), 32);
        const __m256i entry = _mm256_i64gather_epi64(
            reinterpret_cast<const long long *>(entries), slot, 8);
        const __m256i coin = _mm256_and_si256(w, lo32);
        const __m256i thresh = _mm256_srli_epi64(entry, 32);
        // coin < thresh; both fit in 32 bits, so the signed 64-bit
        // compare is exact.
        const __m256i take = _mm256_cmpgt_epi64(thresh, coin);
        const __m256i alias = _mm256_and_si256(entry, lo32);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(words + i),
                            _mm256_blendv_epi8(alias, slot, take));
    }
    if (i < n)
        scalar::aliasResolve(entries, n_slots, words + i, n - i);
}

__attribute__((target("avx2"))) double
reduceSum(const double *x, std::size_t n)
{
    __m256d acc = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
    const __m128d s = _mm_add_pd(_mm256_castpd256_pd128(acc),
                                 _mm256_extractf128_pd(acc, 1));
    const double lo = _mm_cvtsd_f64(s);
    const double hi = _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
    double total = lo + hi;
    for (; i < n; ++i)
        total += x[i];
    return total;
}

__attribute__((target("avx2"))) MinMax
reduceMinMax(const double *x, std::size_t n)
{
    constexpr double kInf = __builtin_inf();
    __m256d mn = _mm256_set1_pd(kInf);
    __m256d mx = _mm256_set1_pd(-kInf);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d v = _mm256_loadu_pd(x + i);
        mn = _mm256_min_pd(v, mn);
        mx = _mm256_max_pd(v, mx);
    }
    const __m128d cn = _mm_min_pd(_mm256_castpd256_pd128(mn),
                                  _mm256_extractf128_pd(mn, 1));
    const __m128d cx = _mm_max_pd(_mm256_castpd256_pd128(mx),
                                  _mm256_extractf128_pd(mx, 1));
    const double cn0 = _mm_cvtsd_f64(cn);
    const double cn1 = _mm_cvtsd_f64(_mm_unpackhi_pd(cn, cn));
    const double cx0 = _mm_cvtsd_f64(cx);
    const double cx1 = _mm_cvtsd_f64(_mm_unpackhi_pd(cx, cx));
    MinMax r;
    r.min = cn0 < cn1 ? cn0 : cn1;
    r.max = cx0 > cx1 ? cx0 : cx1;
    for (; i < n; ++i) {
        r.min = x[i] < r.min ? x[i] : r.min;
        r.max = x[i] > r.max ? x[i] : r.max;
    }
    return r;
}

__attribute__((target("avx2"))) inline __m256i
fnvStep(__m256i h, __m256i w)
{
    const __m256i p2 = _mm256_set1_epi64x(0x1b3);
    h = _mm256_xor_si256(h, w);
    const __m256i t0 = _mm256_slli_epi64(h, 40);
    const __m256i t1 = _mm256_mul_epu32(h, p2);
    const __m256i t2 = _mm256_slli_epi64(
        _mm256_mul_epu32(_mm256_srli_epi64(h, 32), p2), 32);
    return _mm256_add_epi64(_mm256_add_epi64(t0, t1), t2);
}

__attribute__((target("avx2"))) std::uint64_t
checksum(const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    __m256i lane = _mm256_set_epi64x(
        static_cast<long long>(kFnvBasis ^ (3 * kLaneGamma)),
        static_cast<long long>(kFnvBasis ^ (2 * kLaneGamma)),
        static_cast<long long>(kFnvBasis ^ (1 * kLaneGamma)),
        static_cast<long long>(kFnvBasis ^ (0 * kLaneGamma)));
    std::size_t i = 0;
    for (; i + 32 <= len; i += 32)
        lane = fnvStep(lane, _mm256_loadu_si256(
                                 reinterpret_cast<const __m256i *>(
                                     p + i)));
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), lane);
    std::uint64_t h = kFnvBasis;
    for (int j = 0; j < 4; ++j)
        h = (h ^ lanes[j]) * kFnvPrime;
    for (; i + 8 <= len; i += 8) {
        std::uint64_t w;
        std::memcpy(&w, p + i, 8);
        h = (h ^ w) * kFnvPrime;
    }
    for (; i < len; ++i)
        h = (h ^ p[i]) * kFnvPrime;
    return h;
}

__attribute__((target("avx2"))) void
copyBytes(void *dst, const void *src, std::size_t n)
{
    auto *d = static_cast<unsigned char *>(dst);
    const auto *s = static_cast<const unsigned char *>(src);
    while (n >= 64) {
        const __m256i a =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(s));
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(s + 32));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(d), a);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(d + 32), b);
        d += 64;
        s += 64;
        n -= 64;
    }
    if (n != 0)
        std::memcpy(d, s, n);
}

// Gaussian-pair body on 256-bit lanes.  GK_FN carries the target
// attribute so the include's helpers may use AVX2 instructions.
#define GK_FN __attribute__((target("avx2"))) static inline
#define GK_D __m256d
#define GK_I __m256i
#define GK_SETD(c) _mm256_set1_pd(c)
#define GK_SETI(c) _mm256_set1_epi64x(static_cast<long long>(c))
#define GK_ADD(a, b) _mm256_add_pd((a), (b))
#define GK_SUB(a, b) _mm256_sub_pd((a), (b))
#define GK_MUL(a, b) _mm256_mul_pd((a), (b))
#define GK_DIV(a, b) _mm256_div_pd((a), (b))
#define GK_SQRT(a) _mm256_sqrt_pd(a)
#define GK_CASTDI(d) _mm256_castpd_si256(d)
#define GK_CASTID(i) _mm256_castsi256_pd(i)
#define GK_ANDI(a, b) _mm256_and_si256((a), (b))
#define GK_ORI(a, b) _mm256_or_si256((a), (b))
#define GK_XORI(a, b) _mm256_xor_si256((a), (b))
#define GK_ADDI(a, b) _mm256_add_epi64((a), (b))
#define GK_SUBI(a, b) _mm256_sub_epi64((a), (b))
#define GK_SHRI(v, k) _mm256_srli_epi64((v), (k))
#define GK_SHLI(v, k) _mm256_slli_epi64((v), (k))
#define GK_CMPGT(a, b) \
    _mm256_castpd_si256(_mm256_cmp_pd((a), (b), _CMP_GT_OQ))
#define GK_SEL(m, a, b)                                \
    _mm256_castsi256_pd(_mm256_or_si256(               \
        _mm256_and_si256((m), _mm256_castpd_si256(a)), \
        _mm256_andnot_si256((m), _mm256_castpd_si256(b))))
#include "sim/kernels_gauss.inc"
#undef GK_FN
#undef GK_D
#undef GK_I
#undef GK_SETD
#undef GK_SETI
#undef GK_ADD
#undef GK_SUB
#undef GK_MUL
#undef GK_DIV
#undef GK_SQRT
#undef GK_CASTDI
#undef GK_CASTID
#undef GK_ANDI
#undef GK_ORI
#undef GK_XORI
#undef GK_ADDI
#undef GK_SUBI
#undef GK_SHRI
#undef GK_SHLI
#undef GK_CMPGT
#undef GK_SEL

__attribute__((target("avx2"))) void
gaussianPairs(const std::uint64_t *words, double *z, std::size_t pairs)
{
    std::size_t i = 0;
    for (; i + 4 <= pairs; i += 4) {
        // a = {p0.w0, p0.w1, p1.w0, p1.w1}, b = same for p2/p3.
        // unpack*_epi64 works per 128-bit half, so the deinterleaved
        // pair order is {p0, p2, p1, p3} — the matching unpack*_pd on
        // the way out restores memory order without a permute.
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(words + 2 * i));
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(words + 2 * i + 4));
        __m256d z0, z1;
        gkGaussPair(_mm256_unpacklo_epi64(a, b),
                    _mm256_unpackhi_epi64(a, b), &z0, &z1);
        _mm256_storeu_pd(z + 2 * i, _mm256_unpacklo_pd(z0, z1));
        _mm256_storeu_pd(z + 2 * i + 4, _mm256_unpackhi_pd(z0, z1));
    }
    if (i < pairs)
        scalar::gaussianPairs(words + 2 * i, z + 2 * i, pairs - i);
}

} // namespace avx2

#endif // SMARTCONF_SIMD_X86

// ------------------------------------------------------------- dispatch

struct KernelTable
{
    void (*rng_output_map)(std::uint64_t *, std::size_t);
    void (*alias_resolve)(const std::uint64_t *, std::uint64_t,
                          std::uint64_t *, std::size_t);
    double (*reduce_sum)(const double *, std::size_t);
    MinMax (*reduce_minmax)(const double *, std::size_t);
    std::uint64_t (*checksum)(const void *, std::size_t);
    void (*copy_bytes)(void *, const void *, std::size_t);
    void (*gaussian_pairs)(const std::uint64_t *, double *,
                           std::size_t);
    simd::Isa isa;
};

constexpr KernelTable kScalarTable = {
    scalar::rngOutputMap, scalar::aliasResolve, scalar::reduceSum,
    scalar::reduceMinMax, scalar::checksum,     scalar::copyBytes,
    scalar::gaussianPairs, simd::Isa::Scalar,
};

#ifdef SMARTCONF_SIMD_X86
constexpr KernelTable kSse2Table = {
    sse2::rngOutputMap, sse2::aliasResolve, sse2::reduceSum,
    sse2::reduceMinMax, sse2::checksum,     sse2::copyBytes,
    sse2::gaussianPairs, simd::Isa::Sse2,
};
constexpr KernelTable kAvx2Table = {
    avx2::rngOutputMap, avx2::aliasResolve, avx2::reduceSum,
    avx2::reduceMinMax, avx2::checksum,     avx2::copyBytes,
    avx2::gaussianPairs, simd::Isa::Avx2,
};
#endif

const KernelTable *
tableFor(simd::Isa isa)
{
#ifdef SMARTCONF_SIMD_X86
    switch (isa) {
    case simd::Isa::Avx2:
        return &kAvx2Table;
    case simd::Isa::Sse2:
        return &kSse2Table;
    default:
        return &kScalarTable;
    }
#else
    (void)isa;
    return &kScalarTable;
#endif
}

/**
 * Dispatch target.  Resolved lazily on first kernel call: SMARTCONF_ISA
 * (if set and parseable) clamped to simd::detected(), else detected().
 * A first-use race between sweep workers is benign — both resolve to
 * the same table.  setIsa() stores are only expected while no kernels
 * run concurrently (tests, bench setup).
 */
std::atomic<const KernelTable *> g_table{nullptr};

simd::Isa
clampToDetected(simd::Isa isa)
{
    return simd::supported(isa) ? isa : simd::detected();
}

const KernelTable &
table()
{
    const KernelTable *t = g_table.load(std::memory_order_acquire);
    if (t == nullptr) {
        simd::Isa isa = simd::detected();
        if (const char *env = std::getenv("SMARTCONF_ISA")) {
            simd::Isa requested;
            if (simd::parse(env, requested))
                isa = clampToDetected(requested);
        }
        t = tableFor(isa);
        g_table.store(t, std::memory_order_release);
    }
    return *t;
}

} // namespace

void
rngOutputMap(std::uint64_t *words, std::size_t n)
{
    table().rng_output_map(words, n);
}

void
aliasResolve(const std::uint64_t *entries, std::uint64_t n_slots,
             std::uint64_t *words, std::size_t n)
{
    table().alias_resolve(entries, n_slots, words, n);
}

double
reduceSum(const double *x, std::size_t n)
{
    return table().reduce_sum(x, n);
}

MinMax
reduceMinMax(const double *x, std::size_t n)
{
    return table().reduce_minmax(x, n);
}

std::uint64_t
checksum(const void *data, std::size_t len)
{
    return table().checksum(data, len);
}

void
copyBytes(void *dst, const void *src, std::size_t n)
{
    table().copy_bytes(dst, src, n);
}

void
gaussianPairs(const std::uint64_t *words, double *z, std::size_t pairs)
{
    table().gaussian_pairs(words, z, pairs);
}

simd::Isa
activeIsa()
{
    return table().isa;
}

simd::Isa
setIsa(simd::Isa isa)
{
    const simd::Isa clamped = clampToDetected(isa);
    g_table.store(tableFor(clamped), std::memory_order_release);
    return clamped;
}

} // namespace kernels

} // namespace smartconf::sim
