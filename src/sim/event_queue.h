#ifndef SMARTCONF_SIM_EVENT_QUEUE_H_
#define SMARTCONF_SIM_EVENT_QUEUE_H_

/**
 * @file
 * Discrete-event engine.
 *
 * Schedule callbacks at future ticks (one-shot or periodic), run until
 * quiescence or a horizon, cancel pending events.  Events that share a
 * tick fire in scheduling order (stable), which keeps runs
 * deterministic.
 *
 * The engine is allocation-conscious: entries live in a free-listed
 * pool, the ready structure is an index-based d-ary heap over that
 * pool, and callbacks are InlineCallback (small captures stay inside
 * the entry).  Steady-state scheduling — a periodic event rearming, or
 * a one-shot event replacing a just-fired one — touches no allocator at
 * all once the pool has grown to the run's high-water mark.
 *
 * Cancellation is O(1) and lazy: cancel() flips a flag; the entry is
 * discarded (and its slot recycled) when its tick reaches the front of
 * the heap.
 */

#include <cstdint>
#include <cstddef>
#include <vector>

#include "sim/clock.h"
#include "sim/inline_callback.h"

namespace smartconf::sim {

/**
 * Identifier for a scheduled event; usable to cancel it.
 *
 * Ids are unique for the lifetime of the queue even though entries are
 * pooled: the id packs the pool slot with a per-slot generation that
 * bumps on every reuse, so a stale id can never cancel the slot's next
 * occupant.
 */
using EventId = std::uint64_t;

/**
 * Time-ordered queue of callbacks driving a Clock.
 */
class EventQueue
{
  public:
    using Callback = InlineCallback;

    explicit EventQueue(Clock &clock) : clock_(clock) {}

    /**
     * Schedule @p cb to run at absolute tick @p when.
     *
     * Scheduling in the past is clamped to "now" (fires next).
     * @return id usable with cancel().
     */
    EventId scheduleAt(Tick when, Callback cb);

    /** Schedule @p cb @p delay ticks from now. */
    EventId scheduleAfter(Tick delay, Callback cb);

    /**
     * Schedule @p cb every @p interval ticks, first firing at
     * now + @p interval.  The event owns one pooled entry that is
     * rearmed in place after each firing — repeating forever (without
     * allocating) until cancelled via the returned id.
     *
     * Within a tick, a periodic event keeps the position given by its
     * original scheduling order: it fires before everything scheduled
     * after it was registered, every time it fires.  Registering
     * periodic handlers in dependency order therefore fixes their
     * intra-tick order for the whole run.
     *
     * @param interval must be >= 1.
     */
    EventId schedulePeriodic(Tick interval, Callback cb);

    /**
     * Like schedulePeriodic, but the first firing is at absolute tick
     * @p first (clamped to "now"), then every @p interval ticks.
     */
    EventId schedulePeriodicAt(Tick first, Tick interval, Callback cb);

    /**
     * Cancel a pending event; no-op if already fired or cancelled.
     * Cancelling a periodic event stops it permanently — including
     * from inside its own callback.
     */
    void cancel(EventId id);

    /** Scheduled entries not yet fired (a cancelled entry is
     *  counted until its tick is reached and it is discarded). */
    std::size_t pending() const { return heap_.size(); }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /**
     * Run events in time order until the queue is empty or the next
     * live event lies beyond @p horizon.  The clock ends at the last
     * fired event's tick (or at @p horizon when it is finite and
     * reached).
     *
     * @return number of events fired.
     */
    std::size_t runUntil(Tick horizon);

    /** Run a single event if one is pending. @return true if fired. */
    bool step();

    Clock &clock() { return clock_; }

    /** Pool slots ever created (capacity high-water mark, for tests). */
    std::size_t poolSize() const { return pool_.size(); }

  private:
    static constexpr std::uint32_t kNoSlot = 0xffffffffU;
    static constexpr std::size_t kArity = 4; ///< d-ary heap fan-out

    struct Entry
    {
        Tick when = 0;
        std::uint64_t seq = 0; ///< tie-breaker: FIFO within a tick
        Tick interval = 0;     ///< 0 = one-shot
        std::uint32_t gen = 1; ///< bumps on slot reuse
        std::uint32_t next_free = kNoSlot;
        bool cancelled = false;
        bool in_use = false;
        Callback cb;
    };

    static std::uint32_t slotOf(EventId id)
    {
        return static_cast<std::uint32_t>(id & 0xffffffffULL);
    }
    static std::uint32_t genOf(EventId id)
    {
        return static_cast<std::uint32_t>(id >> 32);
    }
    static EventId makeId(std::uint32_t slot, std::uint32_t gen)
    {
        return (static_cast<EventId>(gen) << 32) | slot;
    }

    /** Strict ordering: does entry @p a fire before entry @p b? */
    bool fires_before(std::uint32_t a, std::uint32_t b) const
    {
        const Entry &ea = pool_[a];
        const Entry &eb = pool_[b];
        if (ea.when != eb.when)
            return ea.when < eb.when;
        return ea.seq < eb.seq;
    }

    std::uint32_t acquireSlot();
    void releaseSlot(std::uint32_t slot);

    /**
     * Tick-loop fast path: when every pending entry is a period-1
     * event aligned on the same tick (the scenario drivers' steady
     * state), fire whole ticks in seq order with zero heap operations.
     * Falls back (returning control to the general loop) as soon as a
     * callback schedules something new; cancellations are handled in
     * place.  @return true when it ran at least one tick.
     */
    bool runPeriodicFastPath(Tick horizon, std::size_t &fired);

    void heapPush(std::uint32_t slot);
    std::uint32_t heapPopRoot();
    void siftUp(std::size_t pos);
    void siftDown(std::size_t pos);

    EventId scheduleEntry(Tick when, Tick interval, Callback cb);

    Clock &clock_;

    /** Entry pool; slots are recycled through the free list. */
    std::vector<Entry> pool_;

    /** Min-heap of pool slots ordered by (when, seq). */
    std::vector<std::uint32_t> heap_;

    std::uint32_t free_head_ = kNoSlot;
    std::uint64_t next_seq_ = 0;

    /** Reusable scratch for the fast path's seq-ordered firing list. */
    std::vector<std::uint32_t> batch_;
};

} // namespace smartconf::sim

#endif // SMARTCONF_SIM_EVENT_QUEUE_H_
