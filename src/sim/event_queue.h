#ifndef SMARTCONF_SIM_EVENT_QUEUE_H_
#define SMARTCONF_SIM_EVENT_QUEUE_H_

/**
 * @file
 * Discrete-event engine.
 *
 * A minimal but complete event queue: schedule callbacks at future ticks,
 * run until quiescence or a horizon, cancel pending events.  Events that
 * share a tick fire in scheduling order (stable), which keeps runs
 * deterministic.
 */

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/clock.h"

namespace smartconf::sim {

/** Identifier for a scheduled event; usable to cancel it. */
using EventId = std::uint64_t;

/**
 * Time-ordered queue of callbacks driving a Clock.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    explicit EventQueue(Clock &clock) : clock_(clock) {}

    /**
     * Schedule @p cb to run at absolute tick @p when.
     *
     * Scheduling in the past is clamped to "now" (fires next).
     * @return id usable with cancel().
     */
    EventId scheduleAt(Tick when, Callback cb);

    /** Schedule @p cb @p delay ticks from now. */
    EventId scheduleAfter(Tick delay, Callback cb);

    /** Cancel a pending event; no-op if already fired or cancelled. */
    void cancel(EventId id);

    /** Scheduled entries not yet fired (a cancelled entry is
     *  counted until its tick is reached and it is discarded). */
    std::size_t pending() const { return size_; }

    /** True when no events remain. */
    bool empty() const { return size_ == 0; }

    /**
     * Run events in time order until the queue is empty or the next
     * event lies beyond @p horizon.  The clock ends at the last fired
     * event's tick (or at @p horizon when it is finite and reached).
     *
     * @return number of events fired.
     */
    std::size_t runUntil(Tick horizon);

    /** Run a single event if one is pending. @return true if fired. */
    bool step();

    Clock &clock() { return clock_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq; // tie-breaker: FIFO within a tick
        EventId id;
        Callback cb;
    };

    struct Later
    {
        bool operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Clock &clock_;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;

    /**
     * Ids of scheduled-but-not-fired events.  cancel() erases the id
     * (O(1)); a popped entry whose id is absent was cancelled and is
     * discarded.  Bounded by pending(), unlike the old unbounded
     * cancelled-id list that each discard scanned linearly.
     */
    std::unordered_set<EventId> live_;

    std::uint64_t next_seq_ = 0;
    EventId next_id_ = 1;
    std::size_t size_ = 0;
};

} // namespace smartconf::sim

#endif // SMARTCONF_SIM_EVENT_QUEUE_H_
