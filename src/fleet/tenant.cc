#include "fleet/tenant.h"

#include <bit>

#include "scenarios/scenario.h"

namespace smartconf::fleet {
namespace {

/**
 * Derive the six archetypes from the case-study catalog.  Everything
 * scenario-specific (id, conf name, metric, hard flag, patch default)
 * comes straight from ScenarioInfo; the fleet-unit constants are
 * normalized so every archetype's goal is 100 units and the patched
 * default configuration contributes 55 units of metric — the same
 * mid-band operating point regardless of whether the underlying conf
 * is measured in MB (CA6059), queue slots (HB3813) or bytes (HD4995).
 * The small per-index spreads keep the six plants dynamically distinct
 * (different headroom, load sensitivity, sensor quality and pole) so
 * per-archetype violation rates differ for a real reason.
 */
std::array<TenantArchetype, 6>
deriveArchetypes()
{
    std::array<TenantArchetype, 6> out;
    const auto catalog = scenarios::makeAllScenarios();
    for (std::size_t i = 0; i < out.size() && i < catalog.size(); ++i) {
        const auto &info = catalog[i]->info();
        TenantArchetype &a = out[i];
        a.scenario_id = info.id;
        a.conf_name = info.conf_name;
        a.metric = info.metric_name;
        // Single-node SmartConf distinguishes hard from best-effort
        // goals; a multi-tenant platform does not get that luxury —
        // every tenant goal is a contractual SLO, so the fleet runs
        // all archetypes with the hard-goal machinery (virtual goal +
        // context-aware poles).  Without the virtual-goal margin the
        // soft-goal archetypes would sit *on* their goal and sensor
        // noise alone would flag half their ticks as violations.
        a.hard = true;
        a.capacity_class =
            info.metric_name.find("memory") != std::string::npos ||
            info.metric_name.find("disk") != std::string::npos;
        a.goal_value = 100.0;
        a.conf_default = info.patch_default;
        a.conf_max = 4.0 * info.patch_default;
        a.alpha = 55.0 / info.patch_default;
        const double k = static_cast<double>(i);
        a.base_metric = 14.0 + 2.0 * k;
        a.load_gain = 2.0 + 0.3 * k;
        a.load_sat = 20.0;
        a.noise = 1.0 + 0.2 * k;
        a.pole = 0.85 + 0.015 * k;
        a.lambda = 0.05;
    }
    return out;
}

} // namespace

const std::array<TenantArchetype, 6> &
archetypes()
{
    static const std::array<TenantArchetype, 6> table =
        deriveArchetypes();
    return table;
}

TenantNode::TenantNode(std::uint32_t id, const TenantArchetype &arch,
                       const sim::Rng &fleet_base, bool smart)
    : arch_(&arch),
      rng_(fleet_base.fork(id)),
      conf_(arch.conf_default),
      band_goal_(arch.goal_value)
{
    // The profiled alpha is never exactly the plant's: give every
    // tenant up to +-10% model error so the controllers run with the
    // gain mismatch the paper's lambda margin exists to absorb.
    plant_alpha_ = arch.alpha * rng_.uniform(0.9, 1.1);
    // Warm start at the zero-load plant equilibrium: fleet tenants are
    // long-running services, not cold boots, so convergence measures
    // adaptation to traffic rather than a ramp from an all-zero state
    // (which made every cluster overshoot its goal for one full epoch
    // of stale fan-out before the first correction).
    metric_ = arch.base_metric + plant_alpha_ * conf_;
    if (!smart)
        return;
    ControllerParams p;
    p.alpha = arch.alpha;
    p.pole = arch.pole;
    p.lambda = arch.lambda;
    p.confMin = 0.0;
    p.confMax = arch.conf_max;
    Goal g;
    g.metric = arch.metric;
    g.value = arch.goal_value;
    g.hard = arch.hard;
    controller_.emplace(p, g);
}

void
TenantNode::bindCluster(const Goal &cluster_goal)
{
    if (!controller_)
        return;
    clustered_ = true;
    band_goal_ = cluster_goal.value;
    controller_->setGoal(cluster_goal);
}

void
TenantNode::tick(sim::Tick now, double load)
{
    // Saturating load term: a hot Zipf-head tenant sees hundreds of
    // ops/tick, but queues and caches bound how much of that converts
    // into metric pressure — without the bend the head tenants would
    // be structurally unable to meet any goal and the violation tail
    // would measure the traffic skew, not the controllers.
    const double load_term = arch_->load_gain * load /
                             (1.0 + load / arch_->load_sat);
    const double target =
        arch_->base_metric + plant_alpha_ * conf_ + load_term;
    metric_ += 0.35 * (target - metric_) +
               rng_.gaussian(0.0, arch_->noise);
    if (metric_ < 0.0)
        metric_ = 0.0;

    ++stats_.ticks;
    stats_.conf_sum += conf_;
    // Violations are scored against the goal this tenant's controller
    // actually enforces: the cluster-wide goal for clustered tenants
    // (that is the promise the super-hard split exists to keep), the
    // local goal otherwise.
    const double view = metricView();
    if (view > band_goal_)
        ++stats_.violations;
    // Settling is judged on a smoothed view (time constant ~10 ticks)
    // so single noise spikes don't reset every tenant's convergence
    // clock to the end of the run: a tenant has converged once the
    // smoothed view holds inside [0.75*G, 1.02*G].
    view_smooth_ = stats_.ticks == 1
                       ? view
                       : 0.9 * view_smooth_ + 0.1 * view;
    if (view_smooth_ > 1.02 * band_goal_ ||
        view_smooth_ < 0.75 * band_goal_)
        stats_.last_unsettled = now;
}

void
TenantNode::controlTick()
{
    if (!controller_)
        return;
    conf_ = controller_->update(metricView(), conf_);
    ++stats_.control_updates;
}

std::uint64_t
TenantNode::foldChecksum(std::uint64_t h) const
{
    const auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ULL; // FNV-1a prime
    };
    mix(std::bit_cast<std::uint64_t>(metric_));
    mix(std::bit_cast<std::uint64_t>(conf_));
    mix(stats_.violations);
    return h;
}

} // namespace smartconf::fleet
