#ifndef SMARTCONF_FLEET_COORDINATOR_H_
#define SMARTCONF_FLEET_COORDINATOR_H_

/**
 * @file
 * Cluster-wide goal coordination across tenant nodes.
 *
 * The paper's Sec. 5.4 splits the control error of one process's N
 * interacting configurations via the interaction factor in
 * (1-p)/(N*alpha).  The FleetCoordinator generalizes that mechanism
 * across *nodes*: tenants whose capacity-class metrics sum cluster-wide
 * (total heap over a memory cluster, aggregate disk over a colocated
 * batch pool) are grouped under one super-hard cluster goal, and every
 * member controller tracks the cluster aggregate with its interaction
 * factor set to the cluster's live membership count.
 *
 * Coordination is **epoch-batched**, not per-tick: once per epoch the
 * coordinator (serially, between the parallel epoch bodies)
 *
 *   1. re-asserts every member's registration against the underlying
 *      GoalCoordinator — attach() is idempotent, so periodic
 *      re-assertion is a membership heartbeat rather than an N
 *      inflation (this is exactly the call pattern that exposed the
 *      duplicate-attach bug this PR fixes);
 *   2. aggregates member metrics in pinned join order and counts
 *      cluster-goal violations of the aggregate;
 *   3. fans the frozen sibling sum (aggregate minus own metric) back
 *      out to each member, which tracks that stale view until the next
 *      epoch.
 *
 * Batching makes the coordination cost measurable — attach calls,
 * fan-outs and wall time per epoch are all counted — instead of hiding
 * a fleet-wide reduction inside every tenant's inner loop.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/coordinator.h"
#include "fleet/tenant.h"

namespace smartconf::fleet {

class FleetCoordinator
{
  public:
    /** Coordinator epoch cost/effect counters (FleetResult surface). */
    struct Stats
    {
        std::uint64_t epochs = 0;
        std::uint64_t attach_calls = 0; ///< membership re-assertions
        std::uint64_t fanouts = 0;      ///< frozen views installed
        std::uint64_t aggregate_violations = 0; ///< cluster goal missed
        double wall_ms = 0.0; ///< serial coordination time, all epochs
    };

    /**
     * Declare a cluster-wide goal; returns the cluster id.  The goal
     * is declared super-hard on the underlying GoalCoordinator so
     * member attachment drives the interaction factor.
     */
    std::size_t addCluster(const Goal &goal);

    /**
     * Add @p node to the cluster: binds the node's controller to the
     * cluster goal and records it for epoch aggregation.  Join order
     * is the pinned aggregation order.
     */
    void join(std::size_t cluster, TenantNode *node);

    /**
     * Flip a cluster goal's super-hard flag at run time by
     * re-declaring it (the declareGoal refresh path): members keep
     * their attachment but rebalance between N = |cluster| and N = 1.
     */
    void setSuperHard(std::size_t cluster, bool super_hard);

    /** Run one coordination epoch over every cluster (serial). */
    void runEpoch();

    const Stats &stats() const { return stats_; }
    std::size_t clusterCount() const { return clusters_.size(); }
    std::size_t memberCount(std::size_t cluster) const
    {
        return clusters_[cluster].members.size();
    }
    const Goal &clusterGoal(std::size_t cluster) const
    {
        return clusters_[cluster].goal;
    }

    /** Largest interaction factor currently installed on any member. */
    double maxInteractionFactor() const;

    /** The per-metric registry backing the fleet (test hook). */
    const GoalCoordinator &registry() const { return registry_; }

  private:
    struct Cluster
    {
        Goal goal;
        std::vector<TenantNode *> members;
    };

    GoalCoordinator registry_;
    std::vector<Cluster> clusters_;
    Stats stats_;
};

} // namespace smartconf::fleet

#endif // SMARTCONF_FLEET_COORDINATOR_H_
