#include "fleet/coordinator.h"

#include <algorithm>
#include <chrono>

#include "core/controller.h"

namespace smartconf::fleet {

std::size_t
FleetCoordinator::addCluster(const Goal &goal)
{
    registry_.declareGoal(goal);
    clusters_.push_back(Cluster{goal, {}});
    return clusters_.size() - 1;
}

void
FleetCoordinator::join(std::size_t cluster, TenantNode *node)
{
    Cluster &c = clusters_[cluster];
    node->bindCluster(c.goal);
    c.members.push_back(node);
}

void
FleetCoordinator::setSuperHard(std::size_t cluster, bool super_hard)
{
    Cluster &c = clusters_[cluster];
    c.goal.superHard = super_hard;
    // Re-declaration refreshes every attached member's interaction
    // factor (the declareGoal fix this PR ships); membership itself
    // is untouched.
    registry_.declareGoal(c.goal);
}

void
FleetCoordinator::runEpoch()
{
    const auto t0 = std::chrono::steady_clock::now();
    for (Cluster &c : clusters_) {
        // Membership heartbeat: every epoch each member re-asserts its
        // registration.  attach() is idempotent, so N stays equal to
        // the live membership; before the fix this loop inflated N by
        // |cluster| every epoch and ground the controllers to a halt.
        for (TenantNode *n : c.members) {
            registry_.attach(c.goal.metric, n->controller());
            ++stats_.attach_calls;
        }
        double aggregate = 0.0;
        for (const TenantNode *n : c.members)
            aggregate += n->localMetric();
        if (c.goal.violatedBy(aggregate))
            ++stats_.aggregate_violations;
        // Fan the frozen sibling sum back out: each member tracks
        // (others + own live metric) against the cluster goal until
        // the next epoch refreshes the snapshot.
        for (TenantNode *n : c.members) {
            n->setClusterView(aggregate - n->localMetric());
            ++stats_.fanouts;
        }
    }
    ++stats_.epochs;
    stats_.wall_ms +=
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
}

double
FleetCoordinator::maxInteractionFactor() const
{
    double max_n = 0.0;
    for (const Cluster &c : clusters_)
        for (TenantNode *n : c.members)
            if (n->controller())
                max_n = std::max(
                    max_n, n->controller()->params().interactionFactor);
    return max_n;
}

} // namespace smartconf::fleet
