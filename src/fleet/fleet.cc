#include "fleet/fleet.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <stdexcept>

#include "exec/thread_pool.h"
#include "sim/shard.h"

namespace smartconf::fleet {
namespace {

double
percentile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

} // namespace

FleetResult
runFleet(const FleetParams &params)
{
    if (params.tenants == 0 || params.ticks <= 0 ||
        params.epoch_ticks <= 0 || params.control_period <= 0)
        throw std::invalid_argument(
            "runFleet: tenants/ticks/epoch_ticks/control_period must "
            "be positive");

    const auto wall0 = std::chrono::steady_clock::now();
    const std::size_t n_tenants = params.tenants;
    const auto &archs = archetypes();

    sim::Rng base(params.seed);
    // Traffic draws come off a private stream whose id cannot collide
    // with any tenant's fork (tenant ids are 32-bit).
    sim::Rng traffic = base.fork(0xF1EE7000000001ULL);

    std::vector<TenantNode> nodes;
    nodes.reserve(n_tenants);
    for (std::uint32_t i = 0; i < n_tenants; ++i)
        nodes.emplace_back(i, archs[i % archs.size()], base,
                           params.smart);

    // Capacity-class tenants join fixed-size clusters per metric, in
    // tenant-id order (the pinned aggregation order).  The cluster
    // goal is headroom * sum of member goals: members cannot all sit
    // at their local goals at once, so the super-hard split binds.
    FleetCoordinator coord;
    std::uint64_t clustered_tenants = 0;
    if (params.smart) {
        std::map<std::string, std::vector<TenantNode *>> pending;
        const auto closeCluster =
            [&](const std::string &metric,
                std::vector<TenantNode *> &members) {
                double goal_sum = 0.0;
                for (const TenantNode *n : members)
                    goal_sum += n->archetype().goal_value;
                Goal g;
                g.metric = "fleet/" + metric + "/" +
                           std::to_string(coord.clusterCount());
                g.value = params.cluster_headroom * goal_sum;
                g.hard = true;
                g.superHard = true;
                const std::size_t id = coord.addCluster(g);
                for (TenantNode *n : members)
                    coord.join(id, n);
                clustered_tenants += members.size();
                members.clear();
            };
        for (TenantNode &n : nodes) {
            if (!n.archetype().capacity_class)
                continue;
            auto &bucket = pending[n.archetype().metric];
            bucket.push_back(&n);
            if (bucket.size() >= params.cluster_size)
                closeCluster(n.archetype().metric, bucket);
        }
        // Trailing partial clusters still coordinate (N = size); a
        // single leftover tenant keeps its local goal instead.
        for (auto &[metric, bucket] : pending)
            if (bucket.size() >= 2)
                closeCluster(metric, bucket);
    }

    // Stagger the six archetypes' diurnal peaks across the day so the
    // fleet-wide load (and the clusters' aggregate pressure) moves.
    std::array<workload::DiurnalCurve, 6> curves;
    for (std::size_t a = 0; a < curves.size(); ++a) {
        curves[a] = params.diurnal;
        curves[a].phase += static_cast<sim::Tick>(
            static_cast<std::size_t>(params.diurnal.period) * a /
            curves.size());
    }

    sim::ZipfianGenerator zipf(n_tenants, params.zipf_theta);
    const std::size_t draws = static_cast<std::size_t>(std::llround(
        params.draws_per_tenant * static_cast<double>(n_tenants)));
    std::vector<std::uint64_t> draw_buf(draws);
    std::vector<std::uint32_t> counts(n_tenants);

    const std::size_t groups =
        std::min<std::size_t>(kFleetGroups, n_tenants);
    std::uint64_t epochs = 0;

    for (sim::Tick e0 = 0; e0 < params.ticks;
         e0 += params.epoch_ticks) {
        const sim::Tick e1 =
            std::min<sim::Tick>(e0 + params.epoch_ticks, params.ticks);
        // Serial coordination boundary: cluster aggregation + frozen
        // fan-out, then this epoch's Zipf traffic split.
        if (params.smart)
            coord.runEpoch();
        zipf.sampleBatch(traffic, draw_buf.data(), draws);
        std::fill(counts.begin(), counts.end(), 0u);
        for (const std::uint64_t d : draw_buf)
            ++counts[d];
        const double epoch_len = static_cast<double>(e1 - e0);

        // Parallel epoch body: group g owns tenants [lo, hi) and no
        // other state, so any executor schedule produces identical
        // results.
        const auto body = [&](std::size_t g) {
            const std::size_t lo = g * n_tenants / groups;
            const std::size_t hi = (g + 1) * n_tenants / groups;
            for (std::size_t i = lo; i < hi; ++i) {
                TenantNode &node = nodes[i];
                const double base_load =
                    static_cast<double>(counts[i]) / epoch_len;
                const workload::DiurnalCurve &curve =
                    curves[i % curves.size()];
                for (sim::Tick t = e0; t < e1; ++t) {
                    node.tick(t, base_load * curve.at(t));
                    if (node.smart() &&
                        (t + 1) % params.control_period == 0)
                        node.controlTick();
                }
            }
        };
        if (params.pool)
            params.pool->parallelFor(groups, body);
        else
            sim::shardFanOut(groups, body);
        ++epochs;
    }

    // Serial reduction in tenant-id order.
    FleetResult r;
    r.tenants = n_tenants;
    r.ticks = static_cast<std::uint64_t>(params.ticks);
    r.epochs = epochs;

    std::vector<double> rates;
    std::vector<double> settle;
    rates.reserve(n_tenants);
    settle.reserve(n_tenants);
    std::uint64_t violated_tenants = 0;
    double conf_rel_sum = 0.0;
    std::uint64_t checksum = 1469598103934665603ULL; // FNV offset
    std::array<ArchetypeRow, 6> rows;
    for (std::size_t a = 0; a < rows.size(); ++a)
        rows[a].scenario_id = archs[a].scenario_id;

    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const TenantNode &node = nodes[i];
        const TenantStats &s = node.stats();
        const double ticks_d =
            s.ticks ? static_cast<double>(s.ticks) : 1.0;
        const double rate =
            static_cast<double>(s.violations) / ticks_d;
        const double conf_rel = (s.conf_sum / ticks_d) /
                                node.archetype().conf_default;
        rates.push_back(rate);
        settle.push_back(
            static_cast<double>(s.last_unsettled) + 1.0);
        if (s.violations > 0)
            ++violated_tenants;
        conf_rel_sum += conf_rel;
        checksum = node.foldChecksum(checksum);

        ArchetypeRow &row = rows[i % rows.size()];
        ++row.tenants;
        row.violation_rate += rate;
        row.mean_conf_rel += conf_rel;
    }

    double rate_sum = 0.0;
    for (const double v : rates)
        rate_sum += v;
    r.violation_rate_mean =
        rate_sum / static_cast<double>(n_tenants);
    r.violation_rate_p99 = percentile(rates, 0.99);
    r.tenants_violated_frac = static_cast<double>(violated_tenants) /
                              static_cast<double>(n_tenants);
    r.convergence_p50_ticks = percentile(settle, 0.50);
    r.convergence_p99_ticks = percentile(settle, 0.99);
    r.mean_conf_rel = conf_rel_sum / static_cast<double>(n_tenants);

    r.clusters = coord.clusterCount();
    r.clustered_tenants = clustered_tenants;
    r.max_interaction = coord.maxInteractionFactor();
    r.coord = coord.stats();
    r.checksum = checksum;

    for (ArchetypeRow &row : rows) {
        if (row.tenants) {
            row.violation_rate /= static_cast<double>(row.tenants);
            row.mean_conf_rel /= static_cast<double>(row.tenants);
        }
        r.per_archetype.push_back(row);
    }

    r.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall0)
                    .count();
    return r;
}

} // namespace smartconf::fleet
