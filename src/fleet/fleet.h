#ifndef SMARTCONF_FLEET_FLEET_H_
#define SMARTCONF_FLEET_FLEET_H_

/**
 * @file
 * Fleet-scale multi-tenant simulation.
 *
 * runFleet() instantiates `tenants` TenantNodes (cycling the six
 * scenario archetypes), groups the capacity-class tenants into
 * fixed-size clusters under super-hard cluster goals, and advances
 * everything in epochs:
 *
 *   serial epoch boundary          parallel epoch body
 *   ---------------------          -------------------
 *   FleetCoordinator.runEpoch()    fixed logical tenant groups fan
 *   Zipf draw -> per-tenant        out over the executor; each group
 *   traffic counts                 ticks its tenants' plants and
 *                                  controllers for the whole epoch
 *
 * Determinism: the tenant->group map is a pure function of the tenant
 * count (kFleetGroups contiguous ranges), every tenant owns a private
 * Rng stream forked by tenant id, and groups share no mutable state —
 * so the result is byte-identical at any `--jobs x --shard-workers`
 * combination, exactly like the intra-run shard plane (sim/shard.h).
 *
 * Traffic: one ZipfianGenerator over the tenant population (YCSB skew,
 * the alias-table sampler) draws each epoch's ops; per-tenant load is
 * the tenant's draw count shaped by a diurnal curve whose phase is
 * staggered per archetype, so the six tenant families peak at
 * different times of the simulated day.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/coordinator.h"
#include "fleet/tenant.h"
#include "sim/clock.h"
#include "workload/trace.h"

namespace smartconf::exec {
class ThreadPool;
}

namespace smartconf::fleet {

/** Logical epoch-body groups; fixed so grouping never depends on the
 *  worker count (the same trick as sim::kShards). */
inline constexpr std::size_t kFleetGroups = 64;

struct FleetParams
{
    std::uint32_t tenants = 1000;
    sim::Tick ticks = 240;        ///< one simulated day by default
    sim::Tick epoch_ticks = 20;   ///< coordination epoch length
    sim::Tick control_period = 4; ///< controller invocation period
    std::uint64_t seed = 1;

    double zipf_theta = 0.99;      ///< YCSB tenant-popularity skew
    double draws_per_tenant = 8.0; ///< mean traffic draws per epoch

    std::uint32_t cluster_size = 32; ///< tenants per capacity cluster
    /**
     * Cluster goal = headroom * sum of member local goals.  Below 1.0
     * the members cannot all sit at their local goals simultaneously,
     * so the super-hard split has real work to do.
     */
    double cluster_headroom = 0.9;

    bool smart = true; ///< false = static baseline (confs pinned)

    workload::DiurnalCurve diurnal{0.25, 240, 0};

    /**
     * Executor for the epoch-body fan-out.  Null falls back to
     * sim::shardFanOut (inline when shard workers <= 1), so the same
     * entry point serves `--jobs N` and `--shard-workers M` runs.
     */
    exec::ThreadPool *pool = nullptr;
};

/** Violation/occupancy aggregate for one archetype's tenants. */
struct ArchetypeRow
{
    std::string scenario_id;
    std::uint64_t tenants = 0;
    double violation_rate = 0.0; ///< mean per-tenant violation rate
    double mean_conf_rel = 0.0;  ///< mean conf / archetype default
};

struct FleetResult
{
    std::uint64_t tenants = 0;
    std::uint64_t ticks = 0;
    std::uint64_t epochs = 0;

    double violation_rate_mean = 0.0; ///< mean of per-tenant rates
    double violation_rate_p99 = 0.0;  ///< 99th pct per-tenant rate
    double tenants_violated_frac = 0.0; ///< tenants with >= 1 violation
    double convergence_p50_ticks = 0.0; ///< median settle time
    double convergence_p99_ticks = 0.0; ///< tail settle time
    double mean_conf_rel = 0.0;

    std::uint64_t clusters = 0;
    std::uint64_t clustered_tenants = 0;
    double max_interaction = 0.0; ///< largest installed N

    FleetCoordinator::Stats coord; ///< epoch-batched coordination cost

    double wall_ms = 0.0;       ///< whole-run wall time
    std::uint64_t checksum = 0; ///< FNV over end state, pinned order

    std::vector<ArchetypeRow> per_archetype;
};

/** Run one fleet simulation; deterministic for fixed params + seed. */
FleetResult runFleet(const FleetParams &params);

} // namespace smartconf::fleet

#endif // SMARTCONF_FLEET_FLEET_H_
