#ifndef SMARTCONF_FLEET_TENANT_H_
#define SMARTCONF_FLEET_TENANT_H_

/**
 * @file
 * One tenant node of the fleet simulation.
 *
 * The single-node layers run one scenario with one controller; the
 * fleet layer instantiates thousands of *tenants*, each a reduced
 * SmartConf loop: a first-order plant (the same alpha-linear model the
 * paper profiles, Eq. 1) driven by that tenant's share of Zipf-skewed
 * fleet traffic, a sensor (the plant state plus gaussian sensor
 * noise), and its own integral controller.  Tenants are derived from
 * the six case-study scenarios: each TenantArchetype normalizes one
 * scenario's configuration/metric pair into fleet units so a mixed
 * fleet exercises all six configuration shapes at once.
 *
 * Tenants are **shared-nothing**: every node owns its Rng stream
 * (forked from the fleet seed by tenant id), its plant state and its
 * controller, so an epoch's ticks for disjoint tenants can fan out
 * across the work-stealing executor with byte-identical results at
 * any worker count.  The only cross-tenant coupling is the
 * epoch-batched cluster view installed by the FleetCoordinator
 * between epochs (see fleet/coordinator.h).
 */

#include <array>
#include <cstdint>
#include <string>

#include "core/controller.h"
#include "core/goal.h"
#include "sim/clock.h"
#include "sim/rng.h"

namespace smartconf::fleet {

/**
 * A scenario family normalized into fleet units.
 *
 * goal_value is 100 "units" for every archetype (MB for the capacity
 * classes, ms for the latency classes); alpha is scaled so the
 * scenario's patched default configuration contributes the same
 * mid-band metric share it does in the paper's plants.  The
 * per-archetype spreads (base metric, load gain, noise, pole) keep
 * the six families dynamically distinct so per-archetype violation
 * rates mean something.
 */
struct TenantArchetype
{
    std::string scenario_id; ///< "CA6059" ... "MR2820"
    std::string conf_name;   ///< the PerfConf this tenant adjusts
    std::string metric;      ///< goal metric name
    bool hard = false;       ///< hard goal (virtual-goal machinery)

    /**
     * Capacity-class metrics (memory, disk) *sum* across co-located
     * tenants, so these archetypes join cluster-wide super-hard goals;
     * latency-class metrics do not aggregate and stay tenant-local.
     */
    bool capacity_class = false;

    double goal_value = 100.0; ///< per-tenant goal, normalized units
    double conf_default = 0.0; ///< scenario patch default (conf units)
    double conf_max = 0.0;     ///< controller clamp (4x patch default)
    double alpha = 0.0;        ///< metric units per conf unit
    double base_metric = 0.0;  ///< zero-conf, zero-load metric level
    double load_gain = 0.0;    ///< metric units per op/tick (initial)
    double load_sat = 0.0;     ///< ops/tick where the load term bends
    double noise = 0.0;        ///< sensor noise stddev
    double pole = 0.0;         ///< controller pole
    double lambda = 0.0;       ///< profiling instability margin
};

/** The six archetypes, Table 6 order, derived from makeAllScenarios(). */
const std::array<TenantArchetype, 6> &archetypes();

/** Per-tenant accounting surfaced by FleetResult. */
struct TenantStats
{
    std::uint64_t ticks = 0;
    std::uint64_t violations = 0;      ///< tracked goal exceeded
    std::uint64_t control_updates = 0; ///< controller invocations
    sim::Tick last_unsettled = 0;      ///< last tick outside the band
    double conf_sum = 0.0;             ///< for mean-conf reporting
};

/**
 * One tenant: plant + sensor + (for smart fleets) controller.
 *
 * Tick-granular methods are called only from the epoch fan-out body
 * that owns this tenant's group; epoch-granular methods
 * (setClusterView, bindCluster) are called only from the serial
 * coordination boundary between epochs.
 */
class TenantNode
{
  public:
    /**
     * @param id         tenant index; selects the Rng fork stream.
     * @param arch       archetype (must outlive the node).
     * @param fleet_base fleet seed generator; the node forks stream id.
     * @param smart      construct a controller (false = static
     *                   baseline pinned at the archetype default).
     */
    TenantNode(std::uint32_t id, const TenantArchetype &arch,
               const sim::Rng &fleet_base, bool smart);

    /**
     * Join a cluster-wide super-hard goal: the controller retargets
     * from the local goal to @p cluster_goal, tracking the *aggregate*
     * view (frozen siblings + own metric).  Serial setup phase only.
     */
    void bindCluster(const Goal &cluster_goal);

    /** Install this epoch's frozen sibling aggregate (coordinator). */
    void setClusterView(double frozen_others)
    {
        frozen_others_ = frozen_others;
    }

    /**
     * Advance the plant one tick under @p load ops/tick and account
     * violations/settling against the local goal.
     */
    void tick(sim::Tick now, double load);

    /** Run one controller update against the current metric view. */
    void controlTick();

    /** Metric the controller sees: cluster aggregate when clustered. */
    double metricView() const
    {
        return clustered_ ? frozen_others_ + metric_ : metric_;
    }

    double localMetric() const { return metric_; }
    double conf() const { return conf_; }
    bool clustered() const { return clustered_; }
    bool smart() const { return controller_.has_value(); }
    Controller *controller()
    {
        return controller_ ? &*controller_ : nullptr;
    }
    const TenantArchetype &archetype() const { return *arch_; }
    const TenantStats &stats() const { return stats_; }

    /** Fold this node's end state into @p h (FNV-1a, pinned order). */
    std::uint64_t foldChecksum(std::uint64_t h) const;

  private:
    const TenantArchetype *arch_;
    sim::Rng rng_;
    double plant_alpha_;  ///< true gain (jittered vs profiled alpha)
    double metric_ = 0.0; ///< plant state = sensed metric
    double conf_;
    double frozen_others_ = 0.0;
    double view_smooth_ = 0.0; ///< settling detector state
    double band_goal_; ///< settling band reference (local goal)
    bool clustered_ = false;
    std::optional<Controller> controller_;
    TenantStats stats_;
};

} // namespace smartconf::fleet

#endif // SMARTCONF_FLEET_TENANT_H_
