#ifndef SMARTCONF_WORKLOAD_TRACE_H_
#define SMARTCONF_WORKLOAD_TRACE_H_

/**
 * @file
 * Operation-trace record and replay.
 *
 * The paper's evaluation uses synthetic generators, but a downstream
 * user will want to re-run SmartConf against *their* production
 * workload.  A Trace captures the per-tick operation stream of any
 * generator (or of a live system's log) in a simple text format —
 * `tick type key size_mb`, one line per operation — and replays it
 * deterministically, so profiling and evaluation can run on recorded
 * traffic instead of distributions.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "sim/clock.h"
#include "workload/ycsb.h"

namespace smartconf::workload {

/** A recorded stream of timestamped key-value operations. */
class Trace
{
  public:
    /** One recorded operation. */
    struct Record
    {
        sim::Tick tick = 0;
        Op op;
    };

    /** Append @p ops as occurring at @p tick (ticks must not regress). */
    void record(sim::Tick tick, const std::vector<Op> &ops);

    /** All records in time order. */
    const std::vector<Record> &records() const { return records_; }

    /** Number of recorded operations. */
    std::size_t size() const { return records_.size(); }

    /** Last tick with recorded activity; -1 when empty. */
    sim::Tick horizon() const;

    /** Serialize to the line format (round-trip safe). */
    std::string serialize() const;

    /**
     * Parse the line format.  Lines are `tick type key size_mb` with
     * type `R` or `W`; `#` comments and blank lines are skipped.
     *
     * @throws std::runtime_error with a line number on malformed input.
     */
    static Trace parse(const std::string &text);

  private:
    std::vector<Record> records_;
};

/**
 * Minimal diurnal (day/night) load shape: a smooth multiplier that
 * bottoms out at `trough` and peaks at 1.0 once per `period` ticks.
 * Production traffic is rarely stationary, and the paper's controllers
 * must survive load swings — this is the canonical swing to record.
 */
struct DiurnalCurve
{
    double trough = 0.25;   ///< night-time fraction of peak load
    sim::Tick period = 240; ///< ticks per simulated day
    sim::Tick phase = 0;    ///< tick offset (staggers tenant mixes)

    /** Multiplier in [trough, 1]; trough at t + phase = 0, peak
     *  mid-period.  The phase offset lets a fleet of tenants share one
     *  curve shape while peaking at different times of day. */
    double at(sim::Tick t) const;
};

/**
 * Record @p ticks of a diurnal YCSB workload: a ShardedYcsbGenerator
 * seeded from @p rng produces each tick's batch (through the sharded
 * data plane, so the recorded trace is identical at any shard-worker
 * count) with ops/tick scaled by @p curve.  @p params supplies the
 * peak rate and mix.
 */
Trace recordDiurnal(const YcsbParams &params, const DiurnalCurve &curve,
                    sim::Rng rng, sim::Tick ticks);

/**
 * Replays a Trace tick by tick through the generator-shaped interface
 * the scenario drivers consume.
 */
class TraceReplayer
{
  public:
    explicit TraceReplayer(Trace trace);

    /** Operations recorded for tick @p now (call with advancing now). */
    std::vector<Op> tick(sim::Tick now);

    /** True once every record has been replayed. */
    bool exhausted() const { return next_ >= trace_.records().size(); }

    /** Restart from the beginning. */
    void rewind() { next_ = 0; }

  private:
    Trace trace_;
    std::size_t next_ = 0;
};

} // namespace smartconf::workload

#endif // SMARTCONF_WORKLOAD_TRACE_H_
