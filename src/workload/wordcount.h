#ifndef SMARTCONF_WORKLOAD_WORDCOUNT_H_
#define SMARTCONF_WORKLOAD_WORDCOUNT_H_

/**
 * @file
 * WordCount job descriptor for the MapReduce case study (MR2820).
 *
 * Table 6 describes the workload as WordCount(x, y, z): input file size,
 * split size and parallelism per worker.  The job model derives the map
 * task set from those knobs; each map task spills intermediate data onto
 * its worker's local disk, which is what `local.dir.minspacestart`
 * guards.
 */

#include <cstdint>

namespace smartconf::workload {

/** WordCount(x, y, z) from Table 6. */
struct WordCountJob
{
    double input_mb = 2048.0;       ///< x: total input size
    double split_mb = 64.0;         ///< y: input split (one map task each)
    std::uint64_t parallelism = 1;  ///< z: concurrent tasks per worker

    /**
     * Ratio of intermediate spill size to input split size.  WordCount
     * emits roughly one (word, 1) pair per input word; before combining,
     * the spill is on the order of the input split.
     */
    double spill_ratio = 1.0;

    /** Number of map tasks = ceil(input / split). */
    std::uint64_t mapTaskCount() const
    {
        if (split_mb <= 0.0)
            return 0;
        const double tasks = input_mb / split_mb;
        const auto whole = static_cast<std::uint64_t>(tasks);
        return tasks > static_cast<double>(whole) ? whole + 1 : whole;
    }

    /** Intermediate data one map task spills to local disk (MB). */
    double spillPerTaskMb() const { return split_mb * spill_ratio; }
};

} // namespace smartconf::workload

#endif // SMARTCONF_WORKLOAD_WORDCOUNT_H_
