#include "workload/trace.h"

#include <cassert>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "workload/sharded.h"

namespace smartconf::workload {

double
DiurnalCurve::at(sim::Tick t) const
{
    const double p = static_cast<double>(period <= 0 ? 1 : period);
    // Raised cosine: trough at phase 0, peak at phase 0.5.
    const double angle = 2.0 * 3.14159265358979323846 *
                         static_cast<double>(t + phase) / p;
    const double swing = 0.5 * (1.0 - std::cos(angle));
    return trough + (1.0 - trough) * swing;
}

Trace
recordDiurnal(const YcsbParams &params, const DiurnalCurve &curve,
              sim::Rng rng, sim::Tick ticks)
{
    Trace out;
    ShardedYcsbGenerator gen(params, rng);
    std::vector<Op> ops;
    for (sim::Tick t = 0; t < ticks; ++t) {
        gen.setOpsPerTick(params.ops_per_tick * curve.at(t));
        gen.tickInto(ops);
        out.record(t, ops);
    }
    return out;
}

void
Trace::record(sim::Tick tick, const std::vector<Op> &ops)
{
    assert(records_.empty() || tick >= records_.back().tick);
    for (const Op &op : ops)
        records_.push_back({tick, op});
}

sim::Tick
Trace::horizon() const
{
    return records_.empty() ? -1 : records_.back().tick;
}

std::string
Trace::serialize() const
{
    std::ostringstream out;
    out << std::setprecision(17);
    out << "# smartconf operation trace: tick type key size_mb\n";
    for (const Record &r : records_) {
        out << r.tick << ' '
            << (r.op.type == Op::Type::Write ? 'W' : 'R') << ' '
            << r.op.key << ' ' << r.op.size_mb << '\n';
    }
    return out.str();
}

Trace
Trace::parse(const std::string &text)
{
    Trace out;
    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    sim::Tick last_tick = -1;
    while (std::getline(in, line)) {
        ++line_no;
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        std::istringstream fields(line);
        Record r;
        char type = '?';
        if (!(fields >> r.tick >> type >> r.op.key >> r.op.size_mb)) {
            throw std::runtime_error(
                "trace parse error at line " + std::to_string(line_no) +
                ": expected 'tick type key size_mb'");
        }
        if (type == 'W') {
            r.op.type = Op::Type::Write;
        } else if (type == 'R') {
            r.op.type = Op::Type::Read;
        } else {
            throw std::runtime_error(
                "trace parse error at line " + std::to_string(line_no) +
                ": type must be R or W");
        }
        if (r.tick < last_tick) {
            throw std::runtime_error(
                "trace parse error at line " + std::to_string(line_no) +
                ": ticks must not regress");
        }
        last_tick = r.tick;
        out.records_.push_back(r);
    }
    return out;
}

TraceReplayer::TraceReplayer(Trace trace) : trace_(std::move(trace)) {}

std::vector<Op>
TraceReplayer::tick(sim::Tick now)
{
    std::vector<Op> out;
    const auto &records = trace_.records();
    while (next_ < records.size() && records[next_].tick <= now) {
        if (records[next_].tick == now)
            out.push_back(records[next_].op);
        ++next_;
    }
    return out;
}

} // namespace smartconf::workload
