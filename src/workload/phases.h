#ifndef SMARTCONF_WORKLOAD_PHASES_H_
#define SMARTCONF_WORKLOAD_PHASES_H_

/**
 * @file
 * Phase scheduling.
 *
 * Every evaluation workload in the paper has two phases: either the
 * workload itself changes (HB3813's request size doubles at ~200 s) or
 * the performance goal changes (HB2149's latency constraint tightens from
 * 10 s to 5 s).  PhasedSchedule maps a tick to the parameter set active
 * at that time; scenario drivers poll it and push changes into the
 * generator or the SmartConf goal.
 */

#include <cassert>
#include <utility>
#include <vector>

#include "sim/clock.h"

namespace smartconf::workload {

/**
 * Piecewise-constant schedule of parameter sets over simulated time.
 *
 * @tparam Params any copyable parameter struct.
 */
template <typename Params>
class PhasedSchedule
{
  public:
    /** @param initial parameters active from tick 0. */
    explicit PhasedSchedule(Params initial)
    {
        phases_.emplace_back(0, std::move(initial));
    }

    /**
     * Append a phase starting at @p start (must be after the previous
     * phase's start).
     */
    void addPhase(sim::Tick start, Params params)
    {
        assert(start > phases_.back().first);
        phases_.emplace_back(start, std::move(params));
    }

    /** Parameters active at @p tick. */
    const Params &at(sim::Tick tick) const
    {
        const Params *current = &phases_.front().second;
        for (const auto &[start, params] : phases_) {
            if (start <= tick)
                current = &params;
            else
                break;
        }
        return *current;
    }

    /** Index of the phase active at @p tick (0-based). */
    std::size_t phaseIndex(sim::Tick tick) const
    {
        std::size_t idx = 0;
        for (std::size_t i = 0; i < phases_.size(); ++i) {
            if (phases_[i].first <= tick)
                idx = i;
        }
        return idx;
    }

    /** True when @p tick is the first tick of a later-than-first phase. */
    bool boundaryAt(sim::Tick tick) const
    {
        for (std::size_t i = 1; i < phases_.size(); ++i) {
            if (phases_[i].first == tick)
                return true;
        }
        return false;
    }

    std::size_t phaseCount() const { return phases_.size(); }

    /** Start tick of phase @p i. */
    sim::Tick phaseStart(std::size_t i) const { return phases_.at(i).first; }

  private:
    std::vector<std::pair<sim::Tick, Params>> phases_;
};

} // namespace smartconf::workload

#endif // SMARTCONF_WORKLOAD_PHASES_H_
