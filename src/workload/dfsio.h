#ifndef SMARTCONF_WORKLOAD_DFSIO_H_
#define SMARTCONF_WORKLOAD_DFSIO_H_

/**
 * @file
 * TestDFSIO-like distributed file system workload (HD4995).
 *
 * Clients continuously create/write files into the namespace while an
 * administrator periodically issues `du` (content summary) over a large
 * subtree.  The interesting dynamics are on the namenode: every du chunk
 * holds the global namespace lock and blocks client writes.
 */

#include <cstdint>
#include <vector>

#include "sim/clock.h"
#include "sim/rng.h"

namespace smartconf::workload {

/** One namenode request. */
struct DfsRequest
{
    enum class Type
    {
        WriteFile,       ///< client create/append (needs the write lock)
        ContentSummary,  ///< admin du over a directory subtree
    };

    Type type = Type::WriteFile;
    std::uint64_t client = 0;    ///< issuing client id
    std::uint64_t file_count = 0; ///< subtree size for ContentSummary
};

/** TestDFSIO-like workload knobs (Table 6: single vs multi client). */
struct DfsioParams
{
    std::uint64_t clients = 4;      ///< concurrent writer clients
    double writes_per_tick = 30.0;  ///< aggregate write arrival rate
    double burstiness = 0.25;       ///< relative stddev of batch size
    sim::Tick du_period = 300;      ///< ticks between du commands
    std::uint64_t du_file_count = 200000; ///< files in the du subtree
};

/**
 * Generates per-tick namenode request batches.
 */
class DfsioGenerator
{
  public:
    DfsioGenerator(const DfsioParams &params, sim::Rng rng);

    /**
     * Fill @p out (cleared first) with the requests arriving during
     * tick @p now; a caller-owned buffer absorbs the per-tick
     * allocation after the first bursts.  The write batch is generated
     * in a single resize-and-fill pass.
     */
    void tickInto(sim::Tick now, std::vector<DfsRequest> &out);

    void setParams(const DfsioParams &params) { params_ = params; }
    const DfsioParams &params() const { return params_; }

    /** Total requests generated so far. */
    std::uint64_t generated() const { return generated_; }

  private:
    DfsioParams params_;
    sim::Rng rng_;
    sim::Tick last_du_ = -1;
    std::uint64_t generated_ = 0;

    /** Per-tick raw-word batch buffer (amortized like `out`). */
    std::vector<std::uint64_t> scratch_;
};

} // namespace smartconf::workload

#endif // SMARTCONF_WORKLOAD_DFSIO_H_
