#ifndef SMARTCONF_WORKLOAD_SHARDED_H_
#define SMARTCONF_WORKLOAD_SHARDED_H_

/**
 * @file
 * Shard-split workload generators (the sharded data plane's producers).
 *
 * These mirror YcsbGenerator / DfsioGenerator knob-for-knob but
 * partition each tick's batch across the fixed logical shards of a
 * sim::ShardPlane: the per-tick batch size comes from the plane's
 * control stream, and each block of the batch is produced *entirely*
 * by its lane — coins, keys and size jitter drawn from that lane's
 * jump-derived stream into disjoint segments of the shared SoA
 * scratch buffers.  Because the (n, tick_seq) -> block/lane layout is
 * pure and every lane owns its gaussian spare, the generated batch is
 * byte-identical whether blocks run serially or fan out across
 * sim::shardFanOut's worker pool.
 *
 * The RNG stream this defines *differs* from the single-stream
 * generators (the one sanctioned re-pin of the sharded-data-plane PR);
 * from then on it is pinned at every worker count.
 */

#include <cstdint>
#include <vector>

#include "sim/clock.h"
#include "sim/rng.h"
#include "sim/shard.h"
#include "workload/dfsio.h"
#include "workload/ycsb.h"

namespace smartconf::workload {

/**
 * YCSB batches produced per logical shard.
 */
class ShardedYcsbGenerator
{
  public:
    /** @p rng becomes the plane's base: control stream plus kShards
     *  jump-derived lane streams. */
    ShardedYcsbGenerator(const YcsbParams &params, sim::Rng rng);

    /**
     * Fill @p out (resized, buffer reused) with one tick's operations.
     * Block bodies run under sim::shardFanOut — inline at
     * shard-workers 1, forked otherwise — and write disjoint
     * [begin, end) segments in the same struct-of-arrays column order
     * as YcsbGenerator (coins, keys, sizes).
     */
    void tickInto(std::vector<Op> &out);

    void setParams(const YcsbParams &params);

    void setOpsPerTick(double v) { params_.ops_per_tick = v; }
    void setWriteFraction(double v) { params_.write_fraction = v; }
    void setRequestSizeMb(double v) { params_.request_size_mb = v; }
    void setBurstiness(double v) { params_.burstiness = v; }
    void setCacheRatio(double v) { params_.cache_ratio = v; }

    const YcsbParams &params() const { return params_; }

    std::uint64_t generated() const { return generated_; }

    /** Ops produced per logical shard (pinned lane order). */
    const std::array<std::uint64_t, sim::kShards> &shardOps() const
    {
        return plane_.opsPerShard();
    }

    /**
     * Tick sequence of the most recent tickInto (valid after the first
     * call).  Consumers that want to attribute the batch to shards —
     * e.g. KvServer's per-lane ingest tallies — replay it through
     * sim::shardLayout with the batch size.
     */
    std::uint64_t lastSeq() const { return last_seq_; }

  private:
    YcsbParams params_;
    sim::ShardPlane plane_;
    sim::ZipfianGenerator zipf_;
    std::uint64_t generated_ = 0;
    std::uint64_t last_seq_ = 0;

    /** Shared SoA buffers; blocks write disjoint segments. */
    std::vector<std::uint64_t> scratch_;
    std::vector<double> jitter_;
};

/**
 * TestDFSIO namenode request batches produced per logical shard.  The
 * periodic admin `du` stays on the control path (it draws no RNG word
 * and is one request per du_period ticks).
 */
class ShardedDfsioGenerator
{
  public:
    ShardedDfsioGenerator(const DfsioParams &params, sim::Rng rng);

    void tickInto(sim::Tick now, std::vector<DfsRequest> &out);

    void setParams(const DfsioParams &params) { params_ = params; }
    const DfsioParams &params() const { return params_; }

    std::uint64_t generated() const { return generated_; }

    const std::array<std::uint64_t, sim::kShards> &shardOps() const
    {
        return plane_.opsPerShard();
    }

  private:
    DfsioParams params_;
    sim::ShardPlane plane_;
    sim::Tick last_du_ = -1;
    std::uint64_t generated_ = 0;

    std::vector<std::uint64_t> scratch_;
};

} // namespace smartconf::workload

#endif // SMARTCONF_WORKLOAD_SHARDED_H_
