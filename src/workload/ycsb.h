#ifndef SMARTCONF_WORKLOAD_YCSB_H_
#define SMARTCONF_WORKLOAD_YCSB_H_

/**
 * @file
 * YCSB-like key-value workload generator.
 *
 * The paper profiles and evaluates the key-value case studies (CA6059,
 * HB2149, HB3813, HB6728) with YCSB; workloads are described by a write
 * fraction (xW), a request size (yMB) and a read index-cache ratio (Cz)
 * — see Table 6.  This generator reproduces those knobs on top of the
 * deterministic RNG: per-tick operation batches with Zipfian key
 * popularity and configurable arrival-rate burstiness.
 */

#include <cstdint>
#include <vector>

#include "sim/clock.h"
#include "sim/rng.h"

namespace smartconf::workload {

/** One client operation against a key-value store. */
struct Op
{
    enum class Type
    {
        Read,
        Write,
    };

    Type type = Type::Read;
    std::uint64_t key = 0;
    double size_mb = 0.0; ///< payload for writes, response size for reads
};

/** Table 6 workload knobs: "xW, yMB, Cz". */
struct YcsbParams
{
    double write_fraction = 0.5;  ///< xW: fraction of ops that are writes
    double request_size_mb = 1.0; ///< yMB: mean payload size
    double cache_ratio = 0.0;     ///< Cz: read index cache ratio

    double ops_per_tick = 20.0;   ///< mean arrival rate
    double burstiness = 0.3;      ///< relative stddev of per-tick batch
    std::uint64_t key_count = 100000;
    double zipf_theta = 0.99;     ///< YCSB default key skew
    double size_jitter = 0.1;     ///< relative stddev of payload size
};

/**
 * Generates per-tick operation batches.
 */
class YcsbGenerator
{
  public:
    YcsbGenerator(const YcsbParams &params, sim::Rng rng);

    /**
     * Fill @p out (cleared first) with the operations arriving during
     * one tick.  Re-feeding the same buffer every tick amortizes its
     * allocation to the run's burst high-water mark — the steady-state
     * arrival path stops touching the heap.  Generation is
     * struct-of-arrays: the op count is drawn once, then the tick's
     * type coins, Zipfian keys and Box-Muller size jitter are each
     * produced as kernel-layer batches (Rng::fillRaw +
     * AliasTable::sampleBatch + Rng::gaussianBatch — SIMD lanes, one
     * PRNG word per coin/key, two per jitter pair).
     */
    void tickInto(std::vector<Op> &out);

    /** Switch parameters mid-run (phase change). */
    void setParams(const YcsbParams &params);

    /**
     * Single-knob mutators for per-tick schedules.  Scenario drivers
     * retune the arrival rate (and friends) every tick; these skip the
     * params()-copy / setParams round trip and its rebuild check —
     * none of these knobs feed the Zipfian table, so mutating them in
     * place is observably identical.
     */
    void setOpsPerTick(double v) { params_.ops_per_tick = v; }
    void setWriteFraction(double v) { params_.write_fraction = v; }
    void setRequestSizeMb(double v) { params_.request_size_mb = v; }
    void setBurstiness(double v) { params_.burstiness = v; }
    void setCacheRatio(double v) { params_.cache_ratio = v; }

    const YcsbParams &params() const { return params_; }

    /** Total operations generated so far. */
    std::uint64_t generated() const { return generated_; }

  private:
    YcsbParams params_;
    sim::Rng rng_;
    sim::ZipfianGenerator zipf_;
    std::uint64_t generated_ = 0;

    /** Per-tick raw-word / key batch buffer (amortized like `out`). */
    std::vector<std::uint64_t> scratch_;

    /** Per-tick size-jitter batch buffer (amortized like `out`). */
    std::vector<double> jitter_;
};

} // namespace smartconf::workload

#endif // SMARTCONF_WORKLOAD_YCSB_H_
