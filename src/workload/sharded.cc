#include "workload/sharded.h"

#include <algorithm>
#include <cmath>

namespace smartconf::workload {

ShardedYcsbGenerator::ShardedYcsbGenerator(const YcsbParams &params,
                                           sim::Rng rng)
    : params_(params), plane_(rng),
      zipf_(params.key_count, params.zipf_theta)
{}

void
ShardedYcsbGenerator::setParams(const YcsbParams &params)
{
    const bool rebuild = params.key_count != params_.key_count ||
                         params.zipf_theta != params_.zipf_theta;
    params_ = params;
    if (rebuild)
        zipf_ = sim::ZipfianGenerator(params.key_count,
                                      params.zipf_theta);
}

void
ShardedYcsbGenerator::tickInto(std::vector<Op> &out)
{
    // Batch size from the control stream (the one per-tick scalar
    // decision); lanes never see it.
    const double raw = plane_.control().gaussian(
        params_.ops_per_tick,
        params_.ops_per_tick * params_.burstiness);
    const auto n =
        static_cast<std::size_t>(std::max(0.0, std::round(raw)));
    const std::uint64_t seq = plane_.nextTickSeq();
    last_seq_ = seq;

    out.resize(n);
    scratch_.resize(n);
    jitter_.resize(n);
    if (n == 0)
        return;

    const std::uint64_t write_bound =
        sim::Rng::coinThreshold(params_.write_fraction);

    // One body serves the single-block fast path and both fan-out
    // paths: each block touches only its lane's Rng (distinct per
    // block — blocks <= kShards) and its disjoint out/scratch/jitter
    // segments, in the same SoA column order as YcsbGenerator.
    Op *const ops = out.data();
    std::uint64_t *const scratch = scratch_.data();
    double *const jitter = jitter_.data();
    const auto block_body = [&](std::size_t lane_idx, std::size_t begin,
                                std::size_t end) {
        const std::size_t len = end - begin;
        sim::Rng &lane = plane_.lane(lane_idx);

        lane.fillRaw(scratch + begin, len);
        for (std::size_t i = begin; i < end; ++i)
            ops[i].type = (scratch[i] >> 11) < write_bound
                              ? Op::Type::Write
                              : Op::Type::Read;

        zipf_.sampleBatch(lane, scratch + begin, len);
        for (std::size_t i = begin; i < end; ++i)
            ops[i].key = scratch[i];

        lane.gaussianBatch(1.0, params_.size_jitter, jitter + begin,
                           len);
        for (std::size_t i = begin; i < end; ++i)
            ops[i].size_mb =
                params_.request_size_mb * std::max(0.05, jitter[i]);

        plane_.addOps(lane_idx, len);
    };
    if (n <= sim::kShardGranule) {
        // Typical ticks are one block: same layout shardLayout would
        // produce ([0, n) on lane seq % kShards), without building the
        // span table or entering the fan-out frame on every tick.
        block_body(static_cast<std::size_t>(seq % sim::kShards), 0, n);
    } else {
        sim::ShardSpan spans[sim::kShards];
        const std::size_t blocks = sim::shardLayout(n, seq, spans);
        sim::shardFanOut(blocks, [&](std::size_t b) {
            block_body(spans[b].lane, spans[b].begin, spans[b].end);
        });
    }
    generated_ += n;
}

ShardedDfsioGenerator::ShardedDfsioGenerator(
    const DfsioParams &params, sim::Rng rng)
    : params_(params), plane_(rng)
{}

void
ShardedDfsioGenerator::tickInto(sim::Tick now,
                                std::vector<DfsRequest> &out)
{
    const double raw = plane_.control().gaussian(
        params_.writes_per_tick,
        params_.writes_per_tick * params_.burstiness);
    const auto n =
        static_cast<std::size_t>(std::max(0.0, std::round(raw)));
    const std::uint64_t seq = plane_.nextTickSeq();

    out.resize(n);
    scratch_.resize(n);
    const std::uint64_t clients =
        std::max<std::uint64_t>(1, params_.clients);

    if (n != 0) {
        DfsRequest *const reqs = out.data();
        std::uint64_t *const scratch = scratch_.data();
        const auto block_body = [&](std::size_t lane_idx,
                                    std::size_t begin,
                                    std::size_t end) {
            const std::size_t len = end - begin;
            sim::Rng &lane = plane_.lane(lane_idx);
            lane.fillRaw(scratch + begin, len);
            if ((clients & (clients - 1)) == 0) {
                const std::uint64_t mask = clients - 1;
                for (std::size_t i = begin; i < end; ++i) {
                    reqs[i].type = DfsRequest::Type::WriteFile;
                    reqs[i].client = scratch[i] & mask;
                    reqs[i].file_count = 0;
                }
            } else {
                for (std::size_t i = begin; i < end; ++i) {
                    reqs[i].type = DfsRequest::Type::WriteFile;
                    reqs[i].client = scratch[i] % clients;
                    reqs[i].file_count = 0;
                }
            }
            plane_.addOps(lane_idx, len);
        };
        if (n <= sim::kShardGranule) {
            // Single-block fast path: the layout shardLayout would
            // produce, without the span table or the fan-out frame.
            block_body(static_cast<std::size_t>(seq % sim::kShards), 0,
                       n);
        } else {
            sim::ShardSpan spans[sim::kShards];
            const std::size_t blocks = sim::shardLayout(n, seq, spans);
            sim::shardFanOut(blocks, [&](std::size_t b) {
                block_body(spans[b].lane, spans[b].begin,
                           spans[b].end);
            });
        }
    }
    generated_ += n;

    if (last_du_ < 0 || now - last_du_ >= params_.du_period) {
        DfsRequest du;
        du.type = DfsRequest::Type::ContentSummary;
        du.file_count = params_.du_file_count;
        out.push_back(du);
        last_du_ = now;
        ++generated_;
        // du is control-plane work; attribute it to the tick's
        // rotating lane so the shard counters still sum to generated().
        plane_.addOps(static_cast<std::size_t>(seq % sim::kShards), 1);
    }
}

} // namespace smartconf::workload
