#include "workload/dfsio.h"

#include <algorithm>
#include <cmath>

namespace smartconf::workload {

DfsioGenerator::DfsioGenerator(const DfsioParams &params, sim::Rng rng)
    : params_(params), rng_(rng)
{}

void
DfsioGenerator::tickInto(sim::Tick now, std::vector<DfsRequest> &out)
{
    const double raw = rng_.gaussian(
        params_.writes_per_tick,
        params_.writes_per_tick * params_.burstiness);
    const auto n = static_cast<std::size_t>(std::max(0.0, std::round(raw)));

    // resize without a preceding clear: shrink keeps constructed
    // elements, growth value-initializes only the new tail.  Every
    // field is overwritten below, so stale contents are harmless.
    out.resize(n);
    scratch_.resize(n);
    const std::uint64_t clients =
        std::max<std::uint64_t>(1, params_.clients);
    // One raw word per request, batch-generated through the kernel
    // layer; the client id is the same next() % clients each request
    // drew serially (one word, same order), so the stream and the
    // generated batches are unchanged.
    rng_.fillRaw(scratch_.data(), n);
    if ((clients & (clients - 1)) == 0) {
        // Power-of-two client counts (all the shipped scenarios: 1, 4,
        // 8) reduce with a mask — same value as the modulo, without a
        // hardware divide per request.
        const std::uint64_t mask = clients - 1;
        for (std::size_t i = 0; i < n; ++i) {
            out[i].type = DfsRequest::Type::WriteFile;
            out[i].client = scratch_[i] & mask;
            out[i].file_count = 0;
        }
    } else {
        for (std::size_t i = 0; i < n; ++i) {
            out[i].type = DfsRequest::Type::WriteFile;
            out[i].client = scratch_[i] % clients;
            out[i].file_count = 0;
        }
    }
    generated_ += n;

    if (last_du_ < 0 || now - last_du_ >= params_.du_period) {
        DfsRequest du;
        du.type = DfsRequest::Type::ContentSummary;
        du.file_count = params_.du_file_count;
        out.push_back(du);
        last_du_ = now;
        ++generated_;
    }
}

} // namespace smartconf::workload
