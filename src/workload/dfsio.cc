#include "workload/dfsio.h"

#include <algorithm>
#include <cmath>

namespace smartconf::workload {

DfsioGenerator::DfsioGenerator(const DfsioParams &params, sim::Rng rng)
    : params_(params), rng_(rng)
{}

std::vector<DfsRequest>
DfsioGenerator::tick(sim::Tick now)
{
    std::vector<DfsRequest> out;
    tickInto(now, out);
    return out;
}

void
DfsioGenerator::tickInto(sim::Tick now, std::vector<DfsRequest> &out)
{
    out.clear();

    const double raw = rng_.gaussian(
        params_.writes_per_tick,
        params_.writes_per_tick * params_.burstiness);
    const auto n = static_cast<std::size_t>(std::max(0.0, std::round(raw)));
    for (std::size_t i = 0; i < n; ++i) {
        DfsRequest req;
        req.type = DfsRequest::Type::WriteFile;
        req.client = rng_.below(std::max<std::uint64_t>(1, params_.clients));
        out.push_back(req);
    }

    if (last_du_ < 0 || now - last_du_ >= params_.du_period) {
        DfsRequest du;
        du.type = DfsRequest::Type::ContentSummary;
        du.file_count = params_.du_file_count;
        out.push_back(du);
        last_du_ = now;
    }
}

} // namespace smartconf::workload
