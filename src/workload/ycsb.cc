#include "workload/ycsb.h"

#include <algorithm>
#include <cmath>

namespace smartconf::workload {

YcsbGenerator::YcsbGenerator(const YcsbParams &params, sim::Rng rng)
    : params_(params), rng_(rng),
      zipf_(params.key_count, params.zipf_theta)
{}

void
YcsbGenerator::setParams(const YcsbParams &params)
{
    const bool rebuild = params.key_count != params_.key_count ||
                         params.zipf_theta != params_.zipf_theta;
    params_ = params;
    if (rebuild)
        zipf_ = sim::ZipfianGenerator(params.key_count, params.zipf_theta);
}

void
YcsbGenerator::tickInto(std::vector<Op> &out)
{
    // Batch size: Gaussian around the mean rate, truncated at zero.
    const double raw = rng_.gaussian(
        params_.ops_per_tick, params_.ops_per_tick * params_.burstiness);
    const auto n = static_cast<std::size_t>(std::max(0.0, std::round(raw)));

    // resize without a preceding clear: shrink keeps constructed
    // elements, growth value-initializes only the new tail.  Every
    // field is overwritten below, so stale contents are harmless.
    out.resize(n);
    scratch_.resize(n);

    // Draw order is struct-of-arrays per tick — all type coins, then
    // all keys, then all sizes — so every column comes from a
    // kernel-layer batch instead of per-op calls.  Each op still
    // consumes the historical word count (coin 1, key 1, size jitter
    // via the stateful Box-Muller pair), but at different stream
    // positions than the interleaved per-op loop; the engine version
    // moved with this change.

    // Type coins: one raw word each, accepted by the exact integer
    // equivalent of uniform() < write_fraction (Rng::coinThreshold).
    rng_.fillRaw(scratch_.data(), n);
    const std::uint64_t write_bound =
        sim::Rng::coinThreshold(params_.write_fraction);
    for (std::size_t i = 0; i < n; ++i)
        out[i].type = (scratch_[i] >> 11) < write_bound
                          ? Op::Type::Write
                          : Op::Type::Read;

    // Keys: batched alias-table resolution (gathers under AVX2).
    zipf_.sampleBatch(rng_, scratch_.data(), n);
    for (std::size_t i = 0; i < n; ++i)
        out[i].key = scratch_[i];

    // Sizes: batched Box-Muller (kernels::gaussianPairs); the spare
    // carried across ticks makes this word-for-word what n serial
    // gaussian() calls would draw.
    jitter_.resize(n);
    rng_.gaussianBatch(1.0, params_.size_jitter, jitter_.data(), n);
    for (std::size_t i = 0; i < n; ++i)
        out[i].size_mb =
            params_.request_size_mb * std::max(0.05, jitter_[i]);
    generated_ += n;
}

} // namespace smartconf::workload
