#include "workload/ycsb.h"

#include <algorithm>
#include <cmath>

namespace smartconf::workload {

YcsbGenerator::YcsbGenerator(const YcsbParams &params, sim::Rng rng)
    : params_(params), rng_(rng),
      zipf_(params.key_count, params.zipf_theta)
{}

void
YcsbGenerator::setParams(const YcsbParams &params)
{
    const bool rebuild = params.key_count != params_.key_count ||
                         params.zipf_theta != params_.zipf_theta;
    params_ = params;
    if (rebuild)
        zipf_ = sim::ZipfianGenerator(params.key_count, params.zipf_theta);
}

void
YcsbGenerator::tickInto(std::vector<Op> &out)
{
    // Batch size: Gaussian around the mean rate, truncated at zero.
    const double raw = rng_.gaussian(
        params_.ops_per_tick, params_.ops_per_tick * params_.burstiness);
    const auto n = static_cast<std::size_t>(std::max(0.0, std::round(raw)));

    // resize without a preceding clear: shrink keeps constructed
    // elements, growth value-initializes only the new tail.  Every
    // field is overwritten below, so stale contents are harmless.
    out.resize(n);
    // Draw order per op (type, key, size) matches the historical
    // per-op loop, so the shared Rng stream stays aligned with it.
    for (Op &op : out) {
        op.type = rng_.chance(params_.write_fraction) ? Op::Type::Write
                                                      : Op::Type::Read;
        op.key = zipf_.sample(rng_);
        const double jitter = rng_.gaussian(1.0, params_.size_jitter);
        op.size_mb = params_.request_size_mb * std::max(0.05, jitter);
    }
    generated_ += n;
}

} // namespace smartconf::workload
