#include "core/sensor.h"

#include <cmath>
#include <stdexcept>

namespace smartconf {

void
GaugeSensor::observe(double value)
{
    if (!std::isfinite(value)) {
        ++rejected_;
        return;
    }
    value_ = value;
    primed_ = true;
}

EwmaSensor::EwmaSensor(double weight) : weight_(weight)
{
    if (!(weight > 0.0) || !(weight <= 1.0))
        throw std::invalid_argument(
            "EwmaSensor weight must lie in (0, 1]");
}

void
EwmaSensor::observe(double value)
{
    if (!std::isfinite(value)) {
        ++rejected_;
        return;
    }
    if (!primed_) {
        value_ = value;
        primed_ = true;
    } else {
        // weight_ is the NEW-observation weight (see header): the old
        // average keeps (1 - w), the fresh sample contributes w.
        value_ = (1.0 - weight_) * value_ + weight_ * value;
    }
}

WindowMaxSensor::WindowMaxSensor(std::size_t window) : window_(window)
{
    if (window == 0)
        throw std::invalid_argument(
            "WindowMaxSensor window must be >= 1");
}

void
WindowMaxSensor::observe(double value)
{
    if (!std::isfinite(value)) {
        ++rejected_;
        return;
    }
    buffer_.push_back(value);
    while (buffer_.size() > window_)
        buffer_.pop_front();
}

double
WindowMaxSensor::read() const
{
    if (buffer_.empty())
        return noMeasurement();
    // Seed from the window itself, not from 0.0: an all-negative
    // metric (e.g. headroom-to-limit) must report its true maximum.
    double best = buffer_.front();
    for (const double v : buffer_)
        best = std::max(best, v);
    return best;
}

WindowPercentileSensor::WindowPercentileSensor(double percentile,
                                               std::size_t window)
    : percentile_(percentile), window_(window)
{
    if (!(percentile > 0.0) || !(percentile <= 100.0))
        throw std::invalid_argument(
            "WindowPercentileSensor percentile must lie in (0, 100]");
    if (window == 0)
        throw std::invalid_argument(
            "WindowPercentileSensor window must be >= 1");
}

void
WindowPercentileSensor::observe(double value)
{
    if (!std::isfinite(value)) {
        ++rejected_;
        return;
    }
    buffer_.push_back(value);
    while (buffer_.size() > window_)
        buffer_.pop_front();
}

double
WindowPercentileSensor::read() const
{
    if (buffer_.empty())
        return noMeasurement();
    std::vector<double> sorted(buffer_.begin(), buffer_.end());
    std::sort(sorted.begin(), sorted.end());
    const double rank =
        std::ceil(percentile_ / 100.0 * static_cast<double>(sorted.size()));
    const std::size_t idx = static_cast<std::size_t>(
        std::max(1.0, std::min(rank, static_cast<double>(sorted.size()))));
    return sorted[idx - 1];
}

} // namespace smartconf
