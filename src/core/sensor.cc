#include "core/sensor.h"

#include <cmath>

namespace smartconf {

void
EwmaSensor::observe(double value)
{
    if (!primed_) {
        value_ = value;
        primed_ = true;
    } else {
        value_ = (1.0 - weight_) * value_ + weight_ * value;
    }
}

void
WindowMaxSensor::observe(double value)
{
    buffer_.push_back(value);
    while (buffer_.size() > window_)
        buffer_.pop_front();
}

double
WindowMaxSensor::read() const
{
    double best = 0.0;
    for (const double v : buffer_)
        best = std::max(best, v);
    return best;
}

void
WindowPercentileSensor::observe(double value)
{
    buffer_.push_back(value);
    while (buffer_.size() > window_)
        buffer_.pop_front();
}

double
WindowPercentileSensor::read() const
{
    if (buffer_.empty())
        return 0.0;
    std::vector<double> sorted(buffer_.begin(), buffer_.end());
    std::sort(sorted.begin(), sorted.end());
    const double rank =
        std::ceil(percentile_ / 100.0 * static_cast<double>(sorted.size()));
    const std::size_t idx = static_cast<std::size_t>(
        std::max(1.0, std::min(rank, static_cast<double>(sorted.size()))));
    return sorted[idx - 1];
}

} // namespace smartconf
