#ifndef SMARTCONF_CORE_MODEL_H_
#define SMARTCONF_CORE_MODEL_H_

/**
 * @file
 * Linear performance model fitted from profiling samples.
 *
 * The baseline controller synthesis (paper Eq. 1) approximates system
 * behaviour as s(k) = alpha * c(k-1): performance is proportional to the
 * previous configuration value.  The gain alpha is obtained by linear
 * regression over (configuration, performance) profiling samples.
 */

#include <cstddef>
#include <vector>

namespace smartconf {

/** One profiling observation: performance measured under a setting. */
struct ProfilePoint
{
    double config = 0.0; ///< configuration (or deputy variable) value
    double perf = 0.0;   ///< measured performance metric
};

/**
 * The fitted model s = alpha * c (+ base for diagnostics).
 *
 * SmartConf's controller only consumes alpha; the affine intercept and the
 * correlation coefficient are retained because they feed the monotonicity
 * sanity check the paper lists as a precondition (Sec. 6.6).
 */
class LinearModel
{
  public:
    /**
     * Fit s = alpha * c through the origin by least squares.
     *
     * @param points profiling samples; at least one with config != 0.
     * @return the fitted model; alpha = 0 when unfittable.
     */
    static LinearModel fitProportional(
        const std::vector<ProfilePoint> &points);

    /**
     * Fit s = alpha * c + base by ordinary least squares.
     *
     * Used when the metric has a workload-determined floor (e.g. baseline
     * heap usage) that should not pollute the gain estimate.
     */
    static LinearModel fitAffine(const std::vector<ProfilePoint> &points);

    /** Gain alpha of Eq. 1; may be negative (e.g. MR2820). */
    double alpha() const { return alpha_; }

    /** Intercept; 0 for proportional fits. */
    double base() const { return base_; }

    /** Pearson correlation between config and perf; 0 if degenerate. */
    double correlation() const { return correlation_; }

    /** Number of samples used by the fit. */
    std::size_t sampleCount() const { return samples_; }

    /** Predicted performance at configuration value c. */
    double predict(double c) const { return alpha_ * c + base_; }

    /**
     * Invert the model: configuration that would yield performance s.
     *
     * @pre alpha() != 0.
     */
    double invert(double s) const { return (s - base_) / alpha_; }

    /**
     * Whether the sampled relationship looks monotonic.
     *
     * SmartConf requires a monotonic config -> performance relationship
     * (paper Sec. 6.6).  We flag a fit as non-monotonic when the absolute
     * correlation of per-setting means falls below @p threshold, which
     * catches U-shaped responses such as MR5420's chunk count.
     */
    bool plausiblyMonotonic(double threshold = 0.5) const;

  private:
    double alpha_ = 0.0;
    double base_ = 0.0;
    double correlation_ = 0.0;
    std::size_t samples_ = 0;
};

} // namespace smartconf

#endif // SMARTCONF_CORE_MODEL_H_
