#ifndef SMARTCONF_CORE_COORDINATOR_H_
#define SMARTCONF_CORE_COORDINATOR_H_

/**
 * @file
 * Coordination of multiple PerfConfs sharing one goal (paper Sec. 5.4).
 *
 * SmartConf deliberately does not synthesize one big MIMO controller.
 * Instead, each configuration keeps its own controller, and controllers
 * that share a *super-hard* goal split the error evenly via an interaction
 * factor N (the count of registered configurations for that metric).  The
 * coordinator is the registry that knows N for every metric and fans out
 * run-time goal updates (setGoal) to all affected controllers.
 */

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/goal.h"

namespace smartconf {

class Controller;

/**
 * Per-metric registry of goals and of the controllers tracking them.
 */
class GoalCoordinator
{
  public:
    /**
     * Install (or replace) the goal for @p goal.metric.
     *
     * Re-declaring a goal with a different superHard flag refreshes the
     * interaction factor of every already-attached controller: flipping
     * super-hard on rebalances them to N, flipping it off resets them
     * to 1.  (Values are *not* pushed to controllers here; use
     * updateGoalValue for run-time value changes.)
     */
    void declareGoal(const Goal &goal);

    /** Goal lookup. @throws std::out_of_range when undeclared. */
    const Goal &goalFor(const std::string &metric) const;

    /** True when a goal was declared for @p metric. */
    bool hasGoal(const std::string &metric) const;

    /**
     * Register a controller against its goal metric.
     *
     * For super-hard goals, the interaction factor of *every* registered
     * sibling (including the newcomer) is updated to the new count, so
     * late registration — configurations added as software evolves — is
     * handled transparently.
     *
     * Idempotent: attaching a controller that is already registered is
     * a no-op (it is never double-counted in interactionCount()), so
     * periodic re-registration — the fleet layer re-asserts membership
     * every epoch — is safe by construction.
     */
    void attach(const std::string &metric, Controller *controller);

    /** Remove a controller (e.g. its SmartConf object was destroyed). */
    void detach(const std::string &metric, Controller *controller);

    /** Number of configurations registered against @p metric. */
    std::size_t interactionCount(const std::string &metric) const;

    /** All declared goals, keyed by metric. */
    const std::map<std::string, Goal> &goals() const { return goals_; }

    /**
     * Run-time goal update (users can call setGoal, Sec. 4.3): replaces
     * the stored value and pushes the new goal into every controller
     * attached to the metric.
     */
    void updateGoalValue(const std::string &metric, double value);

  private:
    void refreshInteractionFactors(const std::string &metric);

    std::map<std::string, Goal> goals_;
    std::map<std::string, std::vector<Controller *>> attached_;
};

} // namespace smartconf

#endif // SMARTCONF_CORE_COORDINATOR_H_
