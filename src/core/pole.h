#ifndef SMARTCONF_CORE_POLE_H_
#define SMARTCONF_CORE_POLE_H_

/**
 * @file
 * Automatic pole selection (paper Sec. 5.1).
 *
 * The pole p in Eq. 2 sets how aggressively the controller closes the gap
 * between measured performance and the goal.  Classical synthesis asks an
 * expert for the multiplicative model error Delta = s_true / s_model and
 * sets p = 1 - 2/Delta (Delta > 2), which guarantees convergence.
 * SmartConf instead *projects* Delta from profiling instability so that no
 * control-specific input is required from developers or users:
 *
 *     Delta = 1 + (1/N) * sum_i 3 * sigma_i / m'_i
 *
 * where sigma_i and m'_i are the standard deviation and mean of the
 * performance under the i-th profiled setting, measured with respect to
 * the minimum performance (per-setting means shifted so the smallest
 * setting's mean is the origin; that setting defines the floor and is
 * skipped).  The 3-sigma scaling yields the
 * paper's probabilistic convergence guarantee: the controller converges
 * as long as the true model error stays within three standard deviations
 * (~99.7% of the time).
 */

#include <vector>

#include "core/stats.h"

namespace smartconf {

/** Upper clamp applied to the projected Delta; keeps p <= 0.98. */
inline constexpr double kMaxDelta = 100.0;

/**
 * Virtual-goal margin assumed when profiling yields no usable noise
 * statistics (see PoleProjection::sufficient): a modest 10% safety
 * margin instead of the old silent lambda = 0 (no margin at all).
 */
inline constexpr double kConservativeLambda = 0.1;

/**
 * p = 1 - 2/Delta for Delta > 2, else 0 (paper Sec. 5.1).
 *
 * The result always lies in [0, 1), the stability region of Eq. 2.
 */
double poleFromDelta(double delta);

/**
 * Everything pole synthesis projects from per-setting profiling stats,
 * plus an explicit verdict on whether the stats could support it.
 *
 * A degenerate profile — a single profiled setting, every group with
 * fewer than two samples, or a flat surface where no setting rises
 * above the floor — used to *silently* yield delta = 1 (pole 0, the
 * most aggressive possible controller) and lambda = 0 (no virtual-goal
 * margin): maximum confidence derived from zero information.  Such
 * profiles now surface as `sufficient == false`, and the projected
 * values fall back to maximum distrust instead: delta = kMaxDelta
 * (pole 0.98, slowest stable controller) and
 * lambda = kConservativeLambda.
 */
struct PoleProjection
{
    double delta = kMaxDelta;            ///< in [1, kMaxDelta]
    double lambda = kConservativeLambda; ///< in [0, 0.9]

    /** Groups with >= 2 samples (feed lambda). */
    std::size_t lambda_groups = 0;

    /** Groups contributing noise signal above the floor (feed Delta). */
    std::size_t delta_groups = 0;

    /** False when either projection had no data and fell back. */
    bool sufficient = false;
};

/** Project Delta and lambda with an explicit sufficiency verdict. */
PoleProjection
projectFromProfile(const std::vector<RunningStats> &perSetting);

/**
 * Project the model-error bound Delta from per-setting profiling stats.
 *
 * @param perSetting one accumulator per profiled configuration setting.
 * @return Delta in [1, kMaxDelta]; 1 when profiling was genuinely
 *         noise-free, kMaxDelta when the profile carried no usable
 *         noise signal at all (see PoleProjection).
 */
double deltaFromProfile(const std::vector<RunningStats> &perSetting);

/**
 * Mean coefficient of variation lambda = (1/N) * sum_i sigma_i / m_i
 * (paper Sec. 5.2); feeds the automated virtual goal.
 *
 * @return lambda clamped into [0, 0.9] so the virtual goal stays a
 *         meaningful fraction of the real goal; kConservativeLambda
 *         when no group had enough samples (see PoleProjection).
 */
double lambdaFromProfile(const std::vector<RunningStats> &perSetting);

} // namespace smartconf

#endif // SMARTCONF_CORE_POLE_H_
