#ifndef SMARTCONF_CORE_POLE_H_
#define SMARTCONF_CORE_POLE_H_

/**
 * @file
 * Automatic pole selection (paper Sec. 5.1).
 *
 * The pole p in Eq. 2 sets how aggressively the controller closes the gap
 * between measured performance and the goal.  Classical synthesis asks an
 * expert for the multiplicative model error Delta = s_true / s_model and
 * sets p = 1 - 2/Delta (Delta > 2), which guarantees convergence.
 * SmartConf instead *projects* Delta from profiling instability so that no
 * control-specific input is required from developers or users:
 *
 *     Delta = 1 + (1/N) * sum_i 3 * sigma_i / m'_i
 *
 * where sigma_i and m'_i are the standard deviation and mean of the
 * performance under the i-th profiled setting, measured with respect to
 * the minimum performance (per-setting means shifted so the smallest
 * setting's mean is the origin; that setting defines the floor and is
 * skipped).  The 3-sigma scaling yields the
 * paper's probabilistic convergence guarantee: the controller converges
 * as long as the true model error stays within three standard deviations
 * (~99.7% of the time).
 */

#include <vector>

#include "core/stats.h"

namespace smartconf {

/** Upper clamp applied to the projected Delta; keeps p <= 0.98. */
inline constexpr double kMaxDelta = 100.0;

/**
 * p = 1 - 2/Delta for Delta > 2, else 0 (paper Sec. 5.1).
 *
 * The result always lies in [0, 1), the stability region of Eq. 2.
 */
double poleFromDelta(double delta);

/**
 * Project the model-error bound Delta from per-setting profiling stats.
 *
 * @param perSetting one accumulator per profiled configuration setting.
 * @return Delta in [1, kMaxDelta]; 1 when profiling was noise-free.
 */
double deltaFromProfile(const std::vector<RunningStats> &perSetting);

/**
 * Mean coefficient of variation lambda = (1/N) * sum_i sigma_i / m_i
 * (paper Sec. 5.2); feeds the automated virtual goal.
 *
 * @return lambda clamped into [0, 0.9] so the virtual goal stays a
 *         meaningful fraction of the real goal.
 */
double lambdaFromProfile(const std::vector<RunningStats> &perSetting);

} // namespace smartconf

#endif // SMARTCONF_CORE_POLE_H_
