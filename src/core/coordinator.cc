#include "core/coordinator.h"

#include <algorithm>
#include <stdexcept>

#include "core/controller.h"

namespace smartconf {

void
GoalCoordinator::declareGoal(const Goal &goal)
{
    const auto it = goals_.find(goal.metric);
    const bool super_changed =
        it == goals_.end() ? goal.superHard
                           : it->second.superHard != goal.superHard;
    goals_[goal.metric] = goal;
    // A re-declared goal can flip superHard while controllers are
    // already attached (fleet epochs, setGoal-style reconfiguration).
    // Without this refresh they would keep the stale interaction
    // factor until the next attach/detach happened to run.
    if (super_changed)
        refreshInteractionFactors(goal.metric);
}

const Goal &
GoalCoordinator::goalFor(const std::string &metric) const
{
    const auto it = goals_.find(metric);
    if (it == goals_.end())
        throw std::out_of_range("no goal declared for metric '" + metric +
                                "'");
    return it->second;
}

bool
GoalCoordinator::hasGoal(const std::string &metric) const
{
    return goals_.count(metric) > 0;
}

void
GoalCoordinator::attach(const std::string &metric, Controller *controller)
{
    auto &vec = attached_[metric];
    // Idempotent: registering the same controller twice must not
    // double-count it in interactionCount() — N feeds straight into
    // the (1-p)/(N*alpha) error split, so a duplicate would halve
    // every sibling's gain for good.
    if (std::find(vec.begin(), vec.end(), controller) != vec.end())
        return;
    vec.push_back(controller);
    refreshInteractionFactors(metric);
}

void
GoalCoordinator::detach(const std::string &metric, Controller *controller)
{
    auto it = attached_.find(metric);
    if (it == attached_.end())
        return;
    auto &vec = it->second;
    vec.erase(std::remove(vec.begin(), vec.end(), controller), vec.end());
    if (vec.empty()) {
        attached_.erase(it);
    } else {
        refreshInteractionFactors(metric);
    }
}

std::size_t
GoalCoordinator::interactionCount(const std::string &metric) const
{
    const auto it = attached_.find(metric);
    return it == attached_.end() ? 0 : it->second.size();
}

void
GoalCoordinator::updateGoalValue(const std::string &metric, double value)
{
    auto it = goals_.find(metric);
    if (it == goals_.end())
        throw std::out_of_range("no goal declared for metric '" + metric +
                                "'");
    it->second.value = value;
    const auto att = attached_.find(metric);
    if (att == attached_.end())
        return;
    for (Controller *c : att->second)
        c->setGoal(it->second);
}

void
GoalCoordinator::refreshInteractionFactors(const std::string &metric)
{
    const auto att = attached_.find(metric);
    if (att == attached_.end())
        return;
    // Non-super-hard (or undeclared) goals do not split the error:
    // every attached controller runs at N = 1.  Writing 1 explicitly
    // matters when a goal is re-declared with superHard flipped off —
    // the factors set while it was super-hard must not linger.
    const auto g = goals_.find(metric);
    const bool super = g != goals_.end() && g->second.superHard;
    const double n =
        super ? std::max(1.0, static_cast<double>(att->second.size()))
              : 1.0;
    for (Controller *c : att->second)
        c->setInteractionFactor(n);
}

} // namespace smartconf
