#include "core/coordinator.h"

#include <algorithm>
#include <stdexcept>

#include "core/controller.h"

namespace smartconf {

void
GoalCoordinator::declareGoal(const Goal &goal)
{
    goals_[goal.metric] = goal;
}

const Goal &
GoalCoordinator::goalFor(const std::string &metric) const
{
    const auto it = goals_.find(metric);
    if (it == goals_.end())
        throw std::out_of_range("no goal declared for metric '" + metric +
                                "'");
    return it->second;
}

bool
GoalCoordinator::hasGoal(const std::string &metric) const
{
    return goals_.count(metric) > 0;
}

void
GoalCoordinator::attach(const std::string &metric, Controller *controller)
{
    attached_[metric].push_back(controller);
    refreshInteractionFactors(metric);
}

void
GoalCoordinator::detach(const std::string &metric, Controller *controller)
{
    auto it = attached_.find(metric);
    if (it == attached_.end())
        return;
    auto &vec = it->second;
    vec.erase(std::remove(vec.begin(), vec.end(), controller), vec.end());
    if (vec.empty()) {
        attached_.erase(it);
    } else {
        refreshInteractionFactors(metric);
    }
}

std::size_t
GoalCoordinator::interactionCount(const std::string &metric) const
{
    const auto it = attached_.find(metric);
    return it == attached_.end() ? 0 : it->second.size();
}

void
GoalCoordinator::updateGoalValue(const std::string &metric, double value)
{
    auto it = goals_.find(metric);
    if (it == goals_.end())
        throw std::out_of_range("no goal declared for metric '" + metric +
                                "'");
    it->second.value = value;
    const auto att = attached_.find(metric);
    if (att == attached_.end())
        return;
    for (Controller *c : att->second)
        c->setGoal(it->second);
}

void
GoalCoordinator::refreshInteractionFactors(const std::string &metric)
{
    const auto g = goals_.find(metric);
    if (g == goals_.end() || !g->second.superHard)
        return;
    const auto att = attached_.find(metric);
    if (att == attached_.end())
        return;
    const double n = static_cast<double>(att->second.size());
    for (Controller *c : att->second)
        c->setInteractionFactor(std::max(1.0, n));
}

} // namespace smartconf
