#ifndef SMARTCONF_CORE_TRANSDUCER_H_
#define SMARTCONF_CORE_TRANSDUCER_H_

/**
 * @file
 * Transducers for indirect configurations (paper Sec. 5.3, Fig. 4).
 *
 * An indirect PerfConf C is a threshold on a deputy variable C' that is
 * what actually moves performance (e.g. max.queue.size bounds queue.size,
 * and queue.size drives memory).  The controller reasons about the deputy;
 * the transducer maps the controller-desired deputy value back onto the
 * configuration.  The default is the identity: "if we want queue.size to
 * drop to K, we drop max.queue.size to K".
 */

#include <functional>
#include <utility>

namespace smartconf {

/**
 * Maps a desired deputy value onto a configuration value.
 *
 * Mirrors the paper's Transducer superclass; developers subclass (or use
 * FunctionTransducer) when the threshold relationship is not one-to-one.
 */
class Transducer
{
  public:
    virtual ~Transducer() = default;

    /** Configuration value that realizes desired deputy value @p input. */
    virtual double transduce(double input) const { return input; }
};

/** Affine deputy -> configuration mapping: conf = scale * input + offset. */
class LinearTransducer : public Transducer
{
  public:
    LinearTransducer(double scale, double offset = 0.0)
        : scale_(scale), offset_(offset)
    {}

    double transduce(double input) const override
    {
        return scale_ * input + offset_;
    }

  private:
    double scale_;
    double offset_;
};

/** Wraps an arbitrary callable; convenient for scenario adapters. */
class FunctionTransducer : public Transducer
{
  public:
    explicit FunctionTransducer(std::function<double(double)> fn)
        : fn_(std::move(fn))
    {}

    double transduce(double input) const override { return fn_(input); }

  private:
    std::function<double(double)> fn_;
};

} // namespace smartconf

#endif // SMARTCONF_CORE_TRANSDUCER_H_
