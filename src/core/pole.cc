#include "core/pole.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace smartconf {

double
poleFromDelta(double delta)
{
    if (!(delta > 2.0))
        return 0.0;
    const double clamped = std::min(delta, kMaxDelta);
    return 1.0 - 2.0 / clamped;
}

PoleProjection
projectFromProfile(const std::vector<RunningStats> &perSetting)
{
    PoleProjection out;

    // Delta: performance "measured w.r.t minimum performance" — shift
    // every per-setting mean by the smallest per-setting mean, so the
    // ratio sigma_i / m'_i gauges noise relative to the part of the
    // metric the configuration actually moved.  The minimum setting
    // itself defines the floor and is skipped (its shifted mean is
    // zero).
    double floor = std::numeric_limits<double>::infinity();
    for (const auto &s : perSetting) {
        if (s.count() >= 2)
            floor = std::min(floor, s.mean());
    }
    double delta_acc = 0.0;
    for (const auto &s : perSetting) {
        if (s.count() < 2)
            continue;
        const double shifted_mean = s.mean() - floor;
        if (shifted_mean <= 0.0)
            continue; // the floor-defining setting carries no signal
        const double ratio =
            std::min(3.0 * s.stddev() / shifted_mean, kMaxDelta);
        delta_acc += ratio;
        ++out.delta_groups;
    }
    if (out.delta_groups > 0) {
        const double delta =
            1.0 + delta_acc / static_cast<double>(out.delta_groups);
        out.delta = std::clamp(delta, 1.0, kMaxDelta);
    } // else: keep the maximum-distrust default kMaxDelta

    // Lambda: mean per-setting coefficient of variation.
    double lambda_acc = 0.0;
    for (const auto &s : perSetting) {
        if (s.count() < 2)
            continue;
        lambda_acc += s.coefficientOfVariation();
        ++out.lambda_groups;
    }
    if (out.lambda_groups > 0) {
        out.lambda = std::clamp(
            lambda_acc / static_cast<double>(out.lambda_groups), 0.0,
            0.9);
    } // else: keep the conservative default margin

    out.sufficient = out.delta_groups > 0 && out.lambda_groups > 0;
    return out;
}

double
deltaFromProfile(const std::vector<RunningStats> &perSetting)
{
    return projectFromProfile(perSetting).delta;
}

double
lambdaFromProfile(const std::vector<RunningStats> &perSetting)
{
    return projectFromProfile(perSetting).lambda;
}

} // namespace smartconf
