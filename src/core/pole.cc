#include "core/pole.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace smartconf {

double
poleFromDelta(double delta)
{
    if (!(delta > 2.0))
        return 0.0;
    const double clamped = std::min(delta, kMaxDelta);
    return 1.0 - 2.0 / clamped;
}

double
deltaFromProfile(const std::vector<RunningStats> &perSetting)
{
    // Performance "measured w.r.t minimum performance": shift every
    // per-setting mean by the smallest per-setting mean, so the ratio
    // sigma_i / m'_i gauges noise relative to the part of the metric the
    // configuration actually moved.  The minimum setting itself defines
    // the floor and is skipped (its shifted mean is zero).
    double floor = std::numeric_limits<double>::infinity();
    for (const auto &s : perSetting) {
        if (s.count() >= 2)
            floor = std::min(floor, s.mean());
    }
    double acc = 0.0;
    std::size_t n = 0;
    for (const auto &s : perSetting) {
        if (s.count() < 2)
            continue;
        const double shifted_mean = s.mean() - floor;
        if (shifted_mean <= 0.0)
            continue; // the floor-defining setting carries no signal
        const double ratio =
            std::min(3.0 * s.stddev() / shifted_mean, kMaxDelta);
        acc += ratio;
        ++n;
    }
    if (n == 0)
        return 1.0;
    const double delta = 1.0 + acc / static_cast<double>(n);
    return std::clamp(delta, 1.0, kMaxDelta);
}

double
lambdaFromProfile(const std::vector<RunningStats> &perSetting)
{
    double acc = 0.0;
    std::size_t n = 0;
    for (const auto &s : perSetting) {
        if (s.count() < 2)
            continue;
        acc += s.coefficientOfVariation();
        ++n;
    }
    if (n == 0)
        return 0.0;
    return std::clamp(acc / static_cast<double>(n), 0.0, 0.9);
}

} // namespace smartconf
