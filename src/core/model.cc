#include "core/model.h"

#include <cmath>

namespace smartconf {

namespace {

/** Pearson correlation of the sample set; 0 when either axis is constant. */
double
pearson(const std::vector<ProfilePoint> &points)
{
    const std::size_t n = points.size();
    if (n < 2)
        return 0.0;
    double mc = 0.0, ms = 0.0;
    for (const auto &p : points) {
        mc += p.config;
        ms += p.perf;
    }
    mc /= static_cast<double>(n);
    ms /= static_cast<double>(n);
    double num = 0.0, dc = 0.0, ds = 0.0;
    for (const auto &p : points) {
        num += (p.config - mc) * (p.perf - ms);
        dc += (p.config - mc) * (p.config - mc);
        ds += (p.perf - ms) * (p.perf - ms);
    }
    if (dc <= 0.0 || ds <= 0.0)
        return 0.0;
    return num / std::sqrt(dc * ds);
}

} // namespace

LinearModel
LinearModel::fitProportional(const std::vector<ProfilePoint> &points)
{
    LinearModel m;
    double num = 0.0, den = 0.0;
    for (const auto &p : points) {
        num += p.config * p.perf;
        den += p.config * p.config;
    }
    if (den > 0.0)
        m.alpha_ = num / den;
    m.base_ = 0.0;
    m.correlation_ = pearson(points);
    m.samples_ = points.size();
    return m;
}

LinearModel
LinearModel::fitAffine(const std::vector<ProfilePoint> &points)
{
    LinearModel m;
    const std::size_t n = points.size();
    if (n == 0)
        return m;
    double mc = 0.0, ms = 0.0;
    for (const auto &p : points) {
        mc += p.config;
        ms += p.perf;
    }
    mc /= static_cast<double>(n);
    ms /= static_cast<double>(n);
    double num = 0.0, den = 0.0;
    for (const auto &p : points) {
        num += (p.config - mc) * (p.perf - ms);
        den += (p.config - mc) * (p.config - mc);
    }
    if (den > 0.0) {
        m.alpha_ = num / den;
        m.base_ = ms - m.alpha_ * mc;
    } else {
        // All samples share one setting: the best constant predictor.
        m.alpha_ = 0.0;
        m.base_ = ms;
    }
    m.correlation_ = pearson(points);
    m.samples_ = n;
    return m;
}

bool
LinearModel::plausiblyMonotonic(double threshold) const
{
    if (samples_ < 2)
        return true; // too little data to refute monotonicity
    return std::abs(correlation_) >= threshold;
}

} // namespace smartconf
