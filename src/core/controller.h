#ifndef SMARTCONF_CORE_CONTROLLER_H_
#define SMARTCONF_CORE_CONTROLLER_H_

/**
 * @file
 * The SmartConf integral controller (paper Sec. 5, Eq. 2), extended with
 * the paper's PerfConf-specific mechanisms:
 *
 *  - automatically selected pole (Sec. 5.1),
 *  - virtual goal + context-aware poles for hard goals (Sec. 5.2),
 *  - interaction factor N for super-hard shared goals (Sec. 5.4).
 *
 * The controller is deliberately free of any I/O or threading concerns; it
 * is a pure function of its parameters and the measurement stream, which
 * makes every property testable in isolation.
 */

#include <cstdint>
#include <optional>

#include "core/goal.h"

namespace smartconf {

/** Tuning and synthesis parameters of one controller instance. */
struct ControllerParams
{
    /** Model gain alpha of Eq. 1; must be non-zero. May be negative. */
    double alpha = 1.0;

    /** Regular pole in [0, 1) (Sec. 5.1). */
    double pole = 0.0;

    /**
     * Pole used once the virtual goal is crossed (Sec. 5.2).  The paper
     * uses the smallest possible pole, 0, for the danger zone; kept as a
     * parameter so the Fig. 7 single-pole ablation can disable it.
     */
    double aggressivePole = 0.0;

    /** Profiling instability lambda; determines the virtual goal. */
    double lambda = 0.0;

    /**
     * Interaction factor N >= 1: number of configurations sharing a
     * super-hard goal.  The error is split evenly across them (Sec. 5.4).
     */
    double interactionFactor = 1.0;

    /** Inclusive clamp for the configuration value. */
    double confMin = 0.0;
    double confMax = 1e18;

    /**
     * When false, the virtual goal is disabled and the controller tracks
     * the raw goal even for hard constraints (the Fig. 7 "No Virtual
     * Goal" ablation).
     */
    bool useVirtualGoal = true;

    /**
     * When false, the danger-zone pole switch is disabled (the Fig. 7
     * "Single Pole" ablation).
     */
    bool useContextAwarePoles = true;
};

/**
 * First-order integral controller over one configuration (Eq. 2):
 *
 *     c(k+1) = c(k) + (1 - p)/(N * alpha) * e(k+1)
 *
 * For hard goals the tracked set-point is the virtual goal
 * s_v = (1 +- lambda) * s, and the pole switches to the aggressive pole
 * whenever the measurement is on the unsafe side of s_v.
 */
class Controller
{
  public:
    /**
     * @param params synthesis output (alpha, pole, lambda, clamps).
     * @param goal   the user goal this controller tracks.
     * @throws std::invalid_argument when the parameters lie outside the
     *         stability region (alpha zero/non-finite, pole outside
     *         [0, 1), interaction factor < 1, inverted clamp) — the
     *         error path that used to be a debug-only assert, so a
     *         release build could divide by alpha == 0.
     */
    Controller(const ControllerParams &params, const Goal &goal);

    /**
     * Compute the next configuration value.
     *
     * A non-finite @p measured_perf or @p current_conf (NaN sensor,
     * poisoned deputy) is a *fault*, not an input: the controller holds
     * its last output, increments faults(), and never emits a
     * non-finite or out-of-clamp value.
     *
     * @param measured_perf latest sensor reading of the goal metric.
     * @param current_conf  current value of the controlled variable (the
     *                      configuration itself for direct configs, the
     *                      deputy variable for indirect ones, Sec. 5.3).
     * @return the clamped next value of the controlled variable;
     *         always finite and within [confMin, confMax].
     */
    double update(double measured_perf, double current_conf);

    /** Replace the goal at run time (setGoal API); keeps lambda. */
    void setGoal(const Goal &goal);

    /** Change the interaction factor when siblings register (Sec. 5.4). */
    void setInteractionFactor(double n);

    /** The set-point actually tracked: virtual goal if hard, else goal. */
    double setPoint() const;

    /** Virtual goal derived from the current goal and lambda. */
    double virtualGoal() const { return virtual_goal_; }

    /** True when @p perf lies on the unsafe side of the virtual goal. */
    bool inDangerZone(double perf) const;

    /** Pole that would be applied for measurement @p perf. */
    double effectivePole(double perf) const;

    const Goal &goal() const { return goal_; }
    const ControllerParams &params() const { return params_; }

    /** Value returned by the last update(); nullopt before any update. */
    std::optional<double> lastOutput() const { return last_output_; }

    /**
     * True when the controller has been pinned at a clamp for at least
     * @p streak consecutive updates while still erring toward that clamp;
     * the runtime uses this to raise the "goal unreachable" alert
     * (paper Sec. 4.3).
     */
    bool saturated(int streak = 3) const { return saturation_ >= streak; }

    /**
     * Updates rejected because an input was non-finite (the controller
     * held its last output instead).  A persistently climbing count
     * means the sensor is broken, not the plant.
     */
    std::uint64_t faults() const { return faults_; }

  private:
    void recomputeVirtualGoal();

    ControllerParams params_;
    Goal goal_;
    double virtual_goal_ = 0.0;
    std::optional<double> last_output_;
    int saturation_ = 0;
    std::uint64_t faults_ = 0;
};

} // namespace smartconf

#endif // SMARTCONF_CORE_CONTROLLER_H_
