#include "core/goal.h"

namespace smartconf {

double
virtualGoalFor(const Goal &goal, double lambda)
{
    if (goal.direction == GoalDirection::UpperBound)
        return (1.0 - lambda) * goal.value;
    return (1.0 + lambda) * goal.value;
}

} // namespace smartconf
