#ifndef SMARTCONF_CORE_LINT_H_
#define SMARTCONF_CORE_LINT_H_

/**
 * @file
 * Static validation of SmartConf deployments.
 *
 * The paper's empirical study shows misconfiguration is largely a
 * human problem; SmartConf narrows the surface to two small files, and
 * this linter closes the remaining gaps before the software even
 * starts: configurations whose goal metric no user configured, goals
 * no configuration can influence, nonsensical clamps, hard goals with
 * non-positive values, and profiling stores that disagree with the
 * declared configurations.
 */

#include <string>
#include <vector>

#include "core/sysfile.h"

namespace smartconf {

/** Severity of a lint finding. */
enum class LintSeverity
{
    Warning, ///< suspicious but the runtime can proceed
    Error,   ///< the deployment cannot work as written
};

/** One finding. */
struct LintIssue
{
    LintSeverity severity = LintSeverity::Warning;
    std::string subject; ///< configuration or metric concerned
    std::string message;
};

/**
 * Cross-check a SmartConf.sys against the user configuration.
 *
 * Errors: a configuration whose metric has no declared goal (the
 * controller could never be synthesized); min/max clamps that exclude
 * the initial value or invert.  Warnings: goals without any attached
 * configuration, hard goals with non-positive values, upper-bound
 * goals of zero.
 */
std::vector<LintIssue> lintDeployment(const SysFile &sys,
                                      const UserConf &user);

/**
 * Check a profiling store against its declared configuration entry.
 *
 * Warnings: non-monotonic profile, pole outside [0, 1), lambda outside
 * [0, 0.9], fewer samples than the paper's 4x10 recipe, samples
 * outside the configuration's clamp.
 */
std::vector<LintIssue> lintProfile(const ProfileFile &profile,
                                   const ConfEntry &entry);

/** Render findings as text lines ("error: ..." / "warning: ..."). */
std::string formatLintIssues(const std::vector<LintIssue> &issues);

/** True when any finding is an error. */
bool hasLintErrors(const std::vector<LintIssue> &issues);

} // namespace smartconf

#endif // SMARTCONF_CORE_LINT_H_
