#ifndef SMARTCONF_CORE_SYSFILE_H_
#define SMARTCONF_CORE_SYSFILE_H_

/**
 * @file
 * SmartConf file formats (paper Fig. 2 and Sec. 5.5).
 *
 * Three small text formats make up the SmartConf surface:
 *
 *  1. `SmartConf.sys` — developer-owned, invisible to users.  Maps each
 *     SmartConf configuration to the performance metric it affects
 *     (`max.queue.size @ memory_consumption_max`) and provides a starting
 *     value (`max.queue.size = 50`) used only before the first run.
 *
 *  2. the user configuration file — replaces the raw PerfConf entry with
 *     goal entries: `memory_consumption_max = 1024`,
 *     `memory_consumption_max.hard = 1` (plus optional `.superhard` and
 *     `.direction = upper|lower`).
 *
 *  3. `<ConfName>.SmartConf.sys` — per-configuration profiling store:
 *     the synthesized parameters and the raw samples, flushed by
 *     profiling mode and read back when the controller is initialized.
 *
 * All formats are line-based `key = value` with hash, double-slash and
 * C-style block comments.  Parsers throw std::runtime_error with a line number on
 * malformed input.
 */

#include <map>
#include <string>
#include <vector>

#include "core/goal.h"
#include "core/model.h"
#include "core/profiler.h"

namespace smartconf {

/** One configuration declared in SmartConf.sys. */
struct ConfEntry
{
    std::string name;   ///< configuration name, e.g. "max.queue.size"
    std::string metric; ///< goal metric it affects
    double initial = 0.0; ///< starting value before the first run
    double confMin = 0.0; ///< smallest value the software accepts
    double confMax = 1e18; ///< largest value the software accepts
};

/** Parsed contents of a SmartConf.sys file. */
struct SysFile
{
    std::vector<ConfEntry> entries;
    bool profilingEnabled = false;

    /** Entry lookup by configuration name; nullptr when absent. */
    const ConfEntry *find(const std::string &name) const;
};

/** Parsed user configuration: goal per metric. */
struct UserConf
{
    std::map<std::string, Goal> goals;
};

/** Per-configuration profiling store (<ConfName>.SmartConf.sys). */
struct ProfileFile
{
    std::string conf;                  ///< configuration name
    ProfileSummary summary;            ///< synthesized parameters
    std::vector<ProfilePoint> samples; ///< raw (config, perf) samples
};

/** Parse SmartConf.sys text. @throws std::runtime_error on bad input. */
SysFile parseSysFile(const std::string &text);

/** Parse user configuration text. @throws std::runtime_error. */
UserConf parseUserConf(const std::string &text);

/** Parse a profiling store. @throws std::runtime_error. */
ProfileFile parseProfileFile(const std::string &text);

/** Serialize back to the textual format (round-trip safe). */
std::string formatSysFile(const SysFile &file);
std::string formatUserConf(const UserConf &conf);
std::string formatProfileFile(const ProfileFile &file);

/** Read a whole file. @throws std::runtime_error when unreadable. */
std::string readTextFile(const std::string &path);

/** Write a whole file. @throws std::runtime_error on failure. */
void writeTextFile(const std::string &path, const std::string &text);

} // namespace smartconf

#endif // SMARTCONF_CORE_SYSFILE_H_
