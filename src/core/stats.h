#ifndef SMARTCONF_CORE_STATS_H_
#define SMARTCONF_CORE_STATS_H_

/**
 * @file
 * Streaming statistics used by the SmartConf profiler.
 *
 * The profiling phase (paper Sec. 5.5) collects performance samples under a
 * handful of configuration settings.  The controller-synthesis math
 * (Sec. 5.1 and 5.2) only needs per-setting means and standard deviations,
 * so a numerically stable single-pass accumulator is sufficient.
 */

#include <cstddef>
#include <limits>

namespace smartconf {

/**
 * Single-pass mean / variance accumulator (Welford's algorithm).
 *
 * Tracks count, mean, variance, min and max of a stream of doubles.
 * Variance is the unbiased sample variance (divides by n - 1).
 */
class RunningStats
{
  public:
    RunningStats() = default;

    /** Add one observation to the stream. */
    void push(double x);

    /** Merge another accumulator into this one (parallel Welford). */
    void merge(const RunningStats &other);

    /** Discard all observations. */
    void reset();

    /** Number of observations seen so far. */
    std::size_t count() const { return n_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return n_ > 0 ? mean_ : 0.0; }

    /** Unbiased sample variance; 0 when fewer than two samples. */
    double variance() const;

    /** Square root of variance(). */
    double stddev() const;

    /**
     * Coefficient of variation sigma/mu.
     *
     * This is the per-setting instability term the paper averages into
     * lambda (Sec. 5.2).  Returns 0 when the mean is 0 to keep the virtual
     * goal well defined for idle metrics.
     */
    double coefficientOfVariation() const;

    /** Smallest observation; +inf when empty. */
    double min() const { return min_; }

    /** Largest observation; -inf when empty. */
    double max() const { return max_; }

    /** Sum of all observations. */
    double sum() const { return mean_ * static_cast<double>(n_); }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace smartconf

#endif // SMARTCONF_CORE_STATS_H_
