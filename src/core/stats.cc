#include "core/stats.h"

#include <algorithm>
#include <cmath>

namespace smartconf {

void
RunningStats::push(double x)
{
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::coefficientOfVariation() const
{
    const double mu = mean();
    if (mu == 0.0)
        return 0.0;
    return stddev() / std::abs(mu);
}

} // namespace smartconf
