#include "core/sysfile.h"

#include <cctype>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace smartconf {

namespace {

/** Strip `#`/`//` line comments and surrounding whitespace. */
std::string
stripLine(std::string line)
{
    for (const char *marker : {"#", "//"}) {
        const auto pos = line.find(marker);
        if (pos != std::string::npos)
            line.erase(pos);
    }
    const auto first = line.find_first_not_of(" \t\r\n");
    if (first == std::string::npos)
        return "";
    const auto last = line.find_last_not_of(" \t\r\n");
    return line.substr(first, last - first + 1);
}

/** Remove C-style block comments across the whole text. */
std::string
stripBlockComments(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    bool in_comment = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (!in_comment && text.compare(i, 2, "/*") == 0) {
            in_comment = true;
            ++i;
        } else if (in_comment && text.compare(i, 2, "*/") == 0) {
            in_comment = false;
            ++i;
        } else if (!in_comment) {
            out.push_back(text[i]);
        } else if (text[i] == '\n') {
            out.push_back('\n'); // keep line numbers stable
        }
    }
    return out;
}

[[noreturn]] void
parseFail(int line_no, const std::string &what)
{
    throw std::runtime_error(
        "SmartConf parse error at line " + std::to_string(line_no) + ": " +
        what);
}

double
parseNumber(const std::string &s, int line_no)
{
    try {
        std::size_t used = 0;
        const double v = std::stod(s, &used);
        while (used < s.size() && std::isspace(
                   static_cast<unsigned char>(s[used]))) {
            ++used;
        }
        if (used != s.size())
            parseFail(line_no, "trailing characters after number '" + s + "'");
        return v;
    } catch (const std::invalid_argument &) {
        parseFail(line_no, "expected a number, got '" + s + "'");
    } catch (const std::out_of_range &) {
        parseFail(line_no, "number out of range: '" + s + "'");
    }
}

/** Split `key = value`; returns false when no '=' is present. */
bool
splitAssign(const std::string &line, std::string &key, std::string &value)
{
    const auto eq = line.find('=');
    if (eq == std::string::npos)
        return false;
    key = stripLine(line.substr(0, eq));
    value = stripLine(line.substr(eq + 1));
    return true;
}

/** Iterate cleaned, non-empty lines with their 1-based line numbers. */
template <typename Fn>
void
forEachLine(const std::string &text, Fn &&fn)
{
    std::istringstream in(stripBlockComments(text));
    std::string raw;
    int line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        const std::string line = stripLine(raw);
        if (!line.empty())
            fn(line, line_no);
    }
}

} // namespace

const ConfEntry *
SysFile::find(const std::string &name) const
{
    for (const auto &e : entries) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

SysFile
parseSysFile(const std::string &text)
{
    SysFile out;
    auto entryFor = [&out](const std::string &name) -> ConfEntry & {
        for (auto &e : out.entries) {
            if (e.name == name)
                return e;
        }
        out.entries.push_back(ConfEntry{name, "", 0.0, 0.0, 1e18});
        return out.entries.back();
    };

    forEachLine(text, [&](const std::string &line, int line_no) {
        const auto at = line.find('@');
        if (at != std::string::npos && line.find('=') == std::string::npos) {
            // `conf @ metric` mapping line.
            const std::string name = stripLine(line.substr(0, at));
            const std::string metric = stripLine(line.substr(at + 1));
            if (name.empty() || metric.empty())
                parseFail(line_no, "malformed 'conf @ metric' mapping");
            entryFor(name).metric = metric;
            return;
        }
        std::string key, value;
        if (!splitAssign(line, key, value) || key.empty() || value.empty())
            parseFail(line_no, "expected 'conf @ metric' or 'key = value'");
        if (key == "profiling") {
            out.profilingEnabled = parseNumber(value, line_no) != 0.0;
        } else if (key.size() > 4 &&
                   key.compare(key.size() - 4, 4, ".min") == 0) {
            entryFor(key.substr(0, key.size() - 4)).confMin =
                parseNumber(value, line_no);
        } else if (key.size() > 4 &&
                   key.compare(key.size() - 4, 4, ".max") == 0) {
            entryFor(key.substr(0, key.size() - 4)).confMax =
                parseNumber(value, line_no);
        } else {
            entryFor(key).initial = parseNumber(value, line_no);
        }
    });
    return out;
}

UserConf
parseUserConf(const std::string &text)
{
    UserConf out;
    auto goalFor = [&out](const std::string &metric) -> Goal & {
        auto [it, inserted] = out.goals.try_emplace(metric);
        if (inserted) {
            it->second.metric = metric;
            it->second.direction = GoalDirection::UpperBound;
        }
        return it->second;
    };

    forEachLine(text, [&](const std::string &line, int line_no) {
        std::string key, value;
        if (!splitAssign(line, key, value) || key.empty() || value.empty())
            parseFail(line_no, "expected 'key = value'");

        auto endsWith = [&key](const char *suffix) {
            const std::string s(suffix);
            return key.size() > s.size() &&
                   key.compare(key.size() - s.size(), s.size(), s) == 0;
        };
        auto baseOf = [&key](const char *suffix) {
            return key.substr(0, key.size() - std::string(suffix).size());
        };

        if (endsWith(".hard")) {
            goalFor(baseOf(".hard")).hard = parseNumber(value, line_no) != 0.0;
        } else if (endsWith(".superhard")) {
            Goal &g = goalFor(baseOf(".superhard"));
            g.superHard = parseNumber(value, line_no) != 0.0;
            if (g.superHard)
                g.hard = true; // super-hard implies hard
        } else if (endsWith(".direction")) {
            Goal &g = goalFor(baseOf(".direction"));
            if (value == "upper") {
                g.direction = GoalDirection::UpperBound;
            } else if (value == "lower") {
                g.direction = GoalDirection::LowerBound;
            } else {
                parseFail(line_no, "direction must be 'upper' or 'lower'");
            }
        } else {
            goalFor(key).value = parseNumber(value, line_no);
        }
    });
    return out;
}

ProfileFile
parseProfileFile(const std::string &text)
{
    ProfileFile out;
    forEachLine(text, [&](const std::string &line, int line_no) {
        std::string key, value;
        if (!splitAssign(line, key, value) || key.empty() || value.empty())
            parseFail(line_no, "expected 'key = value'");
        if (key == "conf") {
            out.conf = value;
        } else if (key == "alpha") {
            out.summary.alpha = parseNumber(value, line_no);
        } else if (key == "base") {
            out.summary.base = parseNumber(value, line_no);
        } else if (key == "lambda") {
            out.summary.lambda = parseNumber(value, line_no);
        } else if (key == "delta") {
            out.summary.delta = parseNumber(value, line_no);
        } else if (key == "pole") {
            out.summary.pole = parseNumber(value, line_no);
        } else if (key == "correlation") {
            out.summary.correlation = parseNumber(value, line_no);
        } else if (key == "settings") {
            out.summary.settings =
                static_cast<std::size_t>(parseNumber(value, line_no));
        } else if (key == "samples") {
            out.summary.samples =
                static_cast<std::size_t>(parseNumber(value, line_no));
        } else if (key == "monotonic") {
            out.summary.monotonic = parseNumber(value, line_no) != 0.0;
        } else if (key == "noise_settings") {
            out.summary.noise_settings =
                static_cast<std::size_t>(parseNumber(value, line_no));
        } else if (key == "insufficient") {
            out.summary.insufficient = parseNumber(value, line_no) != 0.0;
        } else if (key == "sample") {
            std::istringstream pair(value);
            ProfilePoint pt;
            if (!(pair >> pt.config >> pt.perf))
                parseFail(line_no, "sample needs '<config> <perf>'");
            out.samples.push_back(pt);
        } else {
            parseFail(line_no, "unknown profile key '" + key + "'");
        }
    });
    return out;
}

std::string
formatSysFile(const SysFile &file)
{
    std::ostringstream out;
    out << std::setprecision(17);
    out << "# SmartConf.sys -- generated\n";
    out << "profiling = " << (file.profilingEnabled ? 1 : 0) << "\n";
    for (const auto &e : file.entries) {
        out << e.name << " @ " << e.metric << "\n";
        out << e.name << " = " << e.initial << "\n";
        out << e.name << ".min = " << e.confMin << "\n";
        out << e.name << ".max = " << e.confMax << "\n";
    }
    return out.str();
}

std::string
formatUserConf(const UserConf &conf)
{
    std::ostringstream out;
    out << std::setprecision(17);
    out << "# SmartConf user configuration -- generated\n";
    for (const auto &[metric, goal] : conf.goals) {
        out << metric << " = " << goal.value << "\n";
        out << metric << ".hard = " << (goal.hard ? 1 : 0) << "\n";
        if (goal.superHard)
            out << metric << ".superhard = 1\n";
        out << metric << ".direction = "
            << (goal.direction == GoalDirection::UpperBound ? "upper"
                                                            : "lower")
            << "\n";
    }
    return out.str();
}

std::string
formatProfileFile(const ProfileFile &file)
{
    std::ostringstream out;
    out << std::setprecision(17);
    out << "# " << file.conf << ".SmartConf.sys -- profiling store\n";
    out << "conf = " << file.conf << "\n";
    out << "alpha = " << file.summary.alpha << "\n";
    out << "base = " << file.summary.base << "\n";
    out << "lambda = " << file.summary.lambda << "\n";
    out << "delta = " << file.summary.delta << "\n";
    out << "pole = " << file.summary.pole << "\n";
    out << "correlation = " << file.summary.correlation << "\n";
    out << "settings = " << file.summary.settings << "\n";
    out << "samples = " << file.summary.samples << "\n";
    out << "monotonic = " << (file.summary.monotonic ? 1 : 0) << "\n";
    out << "noise_settings = " << file.summary.noise_settings << "\n";
    out << "insufficient = " << (file.summary.insufficient ? 1 : 0)
        << "\n";
    for (const auto &pt : file.samples)
        out << "sample = " << pt.config << " " << pt.perf << "\n";
    return out.str();
}

std::string
readTextFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot open '" + path + "' for reading");
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
writeTextFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw std::runtime_error("cannot open '" + path + "' for writing");
    out << text;
    if (!out)
        throw std::runtime_error("failed writing '" + path + "'");
}

} // namespace smartconf
