#ifndef SMARTCONF_CORE_PROFILER_H_
#define SMARTCONF_CORE_PROFILER_H_

/**
 * @file
 * Profiling sample collection and controller synthesis (paper Sec. 5.5).
 *
 * In profiling mode, every SmartConf::setPerf call records the pair
 * (current configuration value, measured performance).  Once enough
 * samples are gathered — the paper's recipe is 4 settings x 10 samples —
 * the profiler fits the linear gain alpha, projects the model-error bound
 * Delta (and from it the pole), and computes the instability coefficient
 * lambda that scales the virtual goal.
 */

#include <cstddef>
#include <map>
#include <vector>

#include "core/model.h"
#include "core/stats.h"

namespace smartconf {

/** Everything controller synthesis derives from a profile. */
struct ProfileSummary
{
    double alpha = 0.0;     ///< fitted gain of Eq. 1
    double base = 0.0;      ///< affine intercept (diagnostic)
    double lambda = 0.0;    ///< mean coefficient of variation (Sec. 5.2)
    double delta = 1.0;     ///< projected model-error bound (Sec. 5.1)
    double pole = 0.0;      ///< p = 1 - 2/Delta for Delta > 2, else 0
    double correlation = 0.0; ///< config-vs-perf Pearson correlation
    std::size_t settings = 0; ///< number of distinct profiled settings
    std::size_t samples = 0;  ///< total number of samples
    bool monotonic = true;    ///< monotonicity sanity check (Sec. 6.6)

    /** Settings with enough samples to feed the noise projection. */
    std::size_t noise_settings = 0;

    /**
     * True when the profile could not support pole/lambda synthesis
     * (single-setting, all-singleton or flat profiles): delta/lambda/
     * pole then carry the maximum-distrust fallbacks from
     * PoleProjection instead of confident values, and the runtime
     * raises an insufficient-profile alert before synthesizing.
     */
    bool insufficient = false;
};

/**
 * Accumulates (config, perf) samples and synthesizes controller params.
 *
 * The regression runs over the raw (config, perf) pairs — for indirect
 * configurations `config` is the deputy variable's observed value — while
 * the per-setting noise statistics (lambda, Delta) are grouped by the
 * *setting in force* when the sample was taken, matching the paper's
 * methodology of profiling a handful of discrete settings (e.g. HB3813
 * profiles max.queue.size in {40, 80, 120, 160}).
 */
class Profiler
{
  public:
    /**
     * Record one observation.
     *
     * Samples with a non-finite config, perf or group are *rejected*
     * (see rejectedCount()): a single NaN measurement recorded during
     * profiling used to poison the fitted gain and every parameter
     * derived from it.
     *
     * @param config the controlled variable's value (deputy for indirect
     *               configurations).
     * @param perf   the measured performance.
     * @param group  the profiled setting this sample belongs to; defaults
     *               to @p config (correct for direct configurations).
     */
    void record(double config, double perf);
    void record(double config, double perf, double group);

    /** All raw samples in insertion order. */
    const std::vector<ProfilePoint> &samples() const { return samples_; }

    /** Non-finite samples discarded by record() since reset(). */
    std::size_t rejectedCount() const { return rejected_; }

    /** Number of distinct settings observed. */
    std::size_t settingCount() const { return groups_.size(); }

    /** Total number of recorded samples. */
    std::size_t sampleCount() const { return samples_.size(); }

    /** True when at least @p min_settings and @p min_samples were seen. */
    bool sufficient(std::size_t min_settings = 2,
                    std::size_t min_samples = 8) const;

    /**
     * Synthesize controller parameters from the recorded samples.
     *
     * The gain is fitted by affine regression (the intercept absorbs
     * workload floors such as baseline heap usage); lambda and Delta come
     * from the per-setting accumulators.
     */
    ProfileSummary summarize() const;

    /** Drop all recorded samples. */
    void reset();

  private:
    std::vector<ProfilePoint> samples_;
    std::map<double, RunningStats> groups_;
    std::size_t rejected_ = 0;
};

} // namespace smartconf

#endif // SMARTCONF_CORE_PROFILER_H_
