#include "core/profiler.h"

#include <algorithm>
#include <cmath>

#include "core/pole.h"

namespace smartconf {

void
Profiler::record(double config, double perf)
{
    record(config, perf, config);
}

void
Profiler::record(double config, double perf, double group)
{
    if (!std::isfinite(config) || !std::isfinite(perf) ||
        !std::isfinite(group)) {
        ++rejected_;
        return;
    }
    samples_.push_back({config, perf});
    groups_[group].push(perf);
}

bool
Profiler::sufficient(std::size_t min_settings, std::size_t min_samples) const
{
    return groups_.size() >= min_settings && samples_.size() >= min_samples;
}

ProfileSummary
Profiler::summarize() const
{
    ProfileSummary out;
    out.settings = groups_.size();
    out.samples = samples_.size();
    if (samples_.empty()) {
        out.insufficient = true;
        return out;
    }

    const LinearModel affine = LinearModel::fitAffine(samples_);
    out.alpha = affine.alpha();
    out.base = affine.base();
    out.correlation = affine.correlation();

    std::vector<RunningStats> per_setting;
    per_setting.reserve(groups_.size());
    for (const auto &[conf, stats] : groups_)
        per_setting.push_back(stats);

    // Monotonicity check (paper Sec. 6.6).  Pearson correlation on raw
    // samples misses U-shapes whose settings are unevenly spaced, so
    // with three or more profiled settings we check whether any
    // interior per-setting mean escapes the envelope spanned by the
    // first and last settings; noise wiggles inside the envelope (or
    // within 25% of the overall spread beyond it) stay monotonic,
    // while a U/valley sticks far outside.
    if (per_setting.size() >= 3) {
        double lo = per_setting.front().mean();
        double hi = lo;
        for (const auto &g : per_setting) {
            lo = std::min(lo, g.mean());
            hi = std::max(hi, g.mean());
        }
        // The escape must be large relative to both the overall spread
        // and the per-setting noise (slow disturbances shift whole
        // setting means around).
        double mean_sigma = 0.0;
        for (const auto &g : per_setting)
            mean_sigma += g.stddev();
        mean_sigma /= static_cast<double>(per_setting.size());
        const double tolerance =
            std::max(0.25 * (hi - lo), 2.0 * mean_sigma);
        const double first = per_setting.front().mean();
        const double last = per_setting.back().mean();
        const double env_lo = std::min(first, last) - tolerance;
        const double env_hi = std::max(first, last) + tolerance;
        out.monotonic = true;
        for (std::size_t i = 1; i + 1 < per_setting.size(); ++i) {
            const double m = per_setting[i].mean();
            if (m < env_lo || m > env_hi) {
                out.monotonic = false;
                break;
            }
        }
    } else {
        out.monotonic = affine.plausiblyMonotonic();
    }

    const PoleProjection proj = projectFromProfile(per_setting);
    out.lambda = proj.lambda;
    out.delta = proj.delta;
    out.pole = poleFromDelta(proj.delta);
    out.noise_settings = proj.lambda_groups;
    out.insufficient = !proj.sufficient;
    return out;
}

void
Profiler::reset()
{
    samples_.clear();
    groups_.clear();
    rejected_ = 0;
}

} // namespace smartconf
