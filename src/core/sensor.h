#ifndef SMARTCONF_CORE_SENSOR_H_
#define SMARTCONF_CORE_SENSOR_H_

/**
 * @file
 * Performance sensors (paper Sec. 4.1.1).
 *
 * The only developer obligation SmartConf cannot remove is producing a
 * measurement of the goal metric — "developers must provide a sensor that
 * measures the performance metric M to be controlled".  This header
 * provides the handful of sensor shapes the paper's case studies need:
 * instantaneous gauges (heap usage), exponentially weighted averages
 * (request latency, like MapReduce's RpcProcessingAvgTime), sliding-window
 * maxima (worst-case write-block time) and window percentiles (tail
 * latency SLAs).
 *
 * Empty-sensor contract: a sensor that has accepted no observation yet
 * has no measurement, and read() returns quiet NaN — never a sentinel
 * value that could be mistaken for a real reading (an empty window used
 * to read 0.0, which a memory controller would interpret as "no memory
 * used at all" and respond to by opening the throttle).  The Controller
 * rejects non-finite measurements by holding its last output, so a NaN
 * read degrades to "no adjustment this tick", not to a wild step.
 *
 * Input hygiene: non-finite observations (NaN/Inf from a faulty probe)
 * are rejected at observe() and counted in rejected(); they never enter
 * a window or an average where a single NaN would poison every later
 * read.
 */

#include <algorithm>
#include <cstddef>
#include <deque>
#include <limits>
#include <vector>

namespace smartconf {

/**
 * A source of performance measurements for one metric.
 */
class Sensor
{
  public:
    virtual ~Sensor() = default;

    /**
     * Feed one raw observation into the sensor.  Non-finite values are
     * rejected (see rejected()) and leave the measurement unchanged.
     */
    virtual void observe(double value) = 0;

    /**
     * Current measurement to hand to SmartConf::setPerf; quiet NaN
     * while no observation has been accepted yet.
     */
    virtual double read() const = 0;

    /** Forget all state (e.g. at a phase boundary). */
    virtual void reset() = 0;

    /** Non-finite observations discarded since construction/reset(). */
    virtual std::size_t rejected() const = 0;

  protected:
    /** The "no measurement" reading. */
    static double noMeasurement()
    {
        return std::numeric_limits<double>::quiet_NaN();
    }
};

/** Latest-value sensor: read() returns the last accepted observation. */
class GaugeSensor : public Sensor
{
  public:
    void observe(double value) override;
    double read() const override
    {
        return primed_ ? value_ : noMeasurement();
    }
    void reset() override
    {
        value_ = 0.0;
        primed_ = false;
        rejected_ = 0;
    }
    std::size_t rejected() const override { return rejected_; }

  private:
    double value_ = 0.0;
    bool primed_ = false;
    std::size_t rejected_ = 0;
};

/**
 * Exponentially weighted moving average.
 *
 * `weight` is the weight of the NEW observation (the EWMA alpha):
 *
 *     read() = (1 - weight) * previous + weight * observation
 *
 * so a larger weight means a more responsive (less smoothed) average; a
 * step input decays into the average as (1 - weight)^k.  The first
 * accepted observation seeds the average directly.
 */
class EwmaSensor : public Sensor
{
  public:
    /**
     * @param weight new-observation weight in (0, 1]; 1 degenerates to
     *               a gauge.  @throws std::invalid_argument outside
     *               that range (0 would freeze the average forever,
     *               >1 oscillates and diverges).
     */
    explicit EwmaSensor(double weight = 0.3);

    void observe(double value) override;
    double read() const override
    {
        return primed_ ? value_ : noMeasurement();
    }
    void reset() override
    {
        value_ = 0.0;
        primed_ = false;
        rejected_ = 0;
    }
    std::size_t rejected() const override { return rejected_; }

    /** The new-observation weight this sensor was built with. */
    double weight() const { return weight_; }

  private:
    double weight_;
    double value_ = 0.0;
    bool primed_ = false;
    std::size_t rejected_ = 0;
};

/** Maximum over the last @p window observations (worst-case metrics). */
class WindowMaxSensor : public Sensor
{
  public:
    /** @param window history length >= 1. @throws std::invalid_argument. */
    explicit WindowMaxSensor(std::size_t window = 16);

    void observe(double value) override;
    double read() const override;
    void reset() override
    {
        buffer_.clear();
        rejected_ = 0;
    }
    std::size_t rejected() const override { return rejected_; }

    /** Accepted observations currently in the window. */
    std::size_t size() const { return buffer_.size(); }

  private:
    std::size_t window_;
    std::deque<double> buffer_;
    std::size_t rejected_ = 0;
};

/**
 * Percentile over the last @p window observations (tail-latency SLAs).
 *
 * Uses nearest-rank on a copy of the window; windows are small (tens to
 * hundreds of entries) so the O(n log n) read is negligible.
 */
class WindowPercentileSensor : public Sensor
{
  public:
    /**
     * @param percentile in (0, 100]; @param window history length >= 1.
     * @throws std::invalid_argument outside those ranges.
     */
    WindowPercentileSensor(double percentile = 99.0,
                           std::size_t window = 128);

    void observe(double value) override;
    double read() const override;
    void reset() override
    {
        buffer_.clear();
        rejected_ = 0;
    }
    std::size_t rejected() const override { return rejected_; }

    /** Accepted observations currently in the window. */
    std::size_t size() const { return buffer_.size(); }

  private:
    double percentile_;
    std::size_t window_;
    std::deque<double> buffer_;
    std::size_t rejected_ = 0;
};

} // namespace smartconf

#endif // SMARTCONF_CORE_SENSOR_H_
