#ifndef SMARTCONF_CORE_SENSOR_H_
#define SMARTCONF_CORE_SENSOR_H_

/**
 * @file
 * Performance sensors (paper Sec. 4.1.1).
 *
 * The only developer obligation SmartConf cannot remove is producing a
 * measurement of the goal metric — "developers must provide a sensor that
 * measures the performance metric M to be controlled".  This header
 * provides the handful of sensor shapes the paper's case studies need:
 * instantaneous gauges (heap usage), exponentially weighted averages
 * (request latency, like MapReduce's RpcProcessingAvgTime), sliding-window
 * maxima (worst-case write-block time) and window percentiles (tail
 * latency SLAs).
 */

#include <algorithm>
#include <cstddef>
#include <deque>
#include <vector>

namespace smartconf {

/**
 * A source of performance measurements for one metric.
 */
class Sensor
{
  public:
    virtual ~Sensor() = default;

    /** Feed one raw observation into the sensor. */
    virtual void observe(double value) = 0;

    /** Current measurement to hand to SmartConf::setPerf. */
    virtual double read() const = 0;

    /** Forget all state (e.g. at a phase boundary). */
    virtual void reset() = 0;
};

/** Latest-value sensor: read() returns the last observation. */
class GaugeSensor : public Sensor
{
  public:
    void observe(double value) override { value_ = value; }
    double read() const override { return value_; }
    void reset() override { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/**
 * Exponentially weighted moving average.
 *
 * read() = (1 - weight) * previous + weight * observation; the first
 * observation seeds the average directly.
 */
class EwmaSensor : public Sensor
{
  public:
    /** @param weight smoothing factor in (0, 1]. */
    explicit EwmaSensor(double weight = 0.3) : weight_(weight) {}

    void observe(double value) override;
    double read() const override { return value_; }
    void reset() override { value_ = 0.0; primed_ = false; }

  private:
    double weight_;
    double value_ = 0.0;
    bool primed_ = false;
};

/** Maximum over the last @p window observations (worst-case metrics). */
class WindowMaxSensor : public Sensor
{
  public:
    explicit WindowMaxSensor(std::size_t window = 16) : window_(window) {}

    void observe(double value) override;
    double read() const override;
    void reset() override { buffer_.clear(); }

  private:
    std::size_t window_;
    std::deque<double> buffer_;
};

/**
 * Percentile over the last @p window observations (tail-latency SLAs).
 *
 * Uses nearest-rank on a copy of the window; windows are small (tens to
 * hundreds of entries) so the O(n log n) read is negligible.
 */
class WindowPercentileSensor : public Sensor
{
  public:
    /** @param percentile in (0, 100]; @param window history length. */
    WindowPercentileSensor(double percentile = 99.0,
                           std::size_t window = 128)
        : percentile_(percentile), window_(window)
    {}

    void observe(double value) override;
    double read() const override;
    void reset() override { buffer_.clear(); }

  private:
    double percentile_;
    std::size_t window_;
    std::deque<double> buffer_;
};

} // namespace smartconf

#endif // SMARTCONF_CORE_SENSOR_H_
