#ifndef SMARTCONF_CORE_GOAL_H_
#define SMARTCONF_CORE_GOAL_H_

/**
 * @file
 * Performance goals as users express them (paper Sec. 4.3).
 *
 * A SmartConf user never sets a configuration value; they state a goal for
 * a performance metric ("memory_consumption_max = 1024",
 * "memory_consumption_max.hard = 1").  The goal carries a direction:
 * almost all PerfConf goals bound the metric from above (memory, disk,
 * worst-case latency), but lower bounds (e.g. minimum throughput) are
 * supported for generality.
 */

#include <string>

namespace smartconf {

/** Which side of the goal value is the "safe" side. */
enum class GoalDirection
{
    UpperBound, ///< metric must stay <= value (memory, disk, latency)
    LowerBound, ///< metric must stay >= value (throughput floors)
};

/**
 * A user-specified performance goal for one metric.
 */
struct Goal
{
    /** Metric name, e.g. "memory_consumption_max". */
    std::string metric;

    /** The constraint value in the metric's native unit. */
    double value = 0.0;

    /** Safe side of the constraint. */
    GoalDirection direction = GoalDirection::UpperBound;

    /**
     * Hard goals must never be overshot (OOM/OOD class constraints);
     * they enable the virtual goal + context-aware poles machinery.
     */
    bool hard = false;

    /**
     * Super-hard goals additionally split the controller gain across all
     * N configurations registered against the metric (paper Sec. 5.4).
     */
    bool superHard = false;

    /** True when @p perf is on the unsafe side of @p bound. */
    bool violatedBy(double perf) const
    {
        return direction == GoalDirection::UpperBound ? perf > value
                                                      : perf < value;
    }
};

/**
 * Automated virtual goal s_v (paper Sec. 5.2).
 *
 * For upper bounds s_v = (1 - lambda) * s; for lower bounds
 * s_v = (1 + lambda) * s.  The more unstable profiling showed the system
 * to be (larger lambda), the wider the safety margin.
 */
double virtualGoalFor(const Goal &goal, double lambda);

} // namespace smartconf

#endif // SMARTCONF_CORE_GOAL_H_
