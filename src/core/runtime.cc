#include "core/runtime.h"

#include <cmath>
#include <filesystem>
#include <stdexcept>
#include <utility>

namespace smartconf {

SmartConfRuntime::SmartConfRuntime() = default;

SmartConfRuntime::~SmartConfRuntime()
{
    // Detach controllers before the coordinator forgets about them.
    for (auto &[name, state] : confs_) {
        if (state.controller) {
            coordinator_.detach(state.entry.metric, state.controller.get());
        }
    }
}

void
SmartConfRuntime::loadSysText(const std::string &text)
{
    const SysFile parsed = parseSysFile(text);
    profiling_ = parsed.profilingEnabled;
    for (const auto &entry : parsed.entries)
        declareConf(entry);
}

void
SmartConfRuntime::loadUserConfText(const std::string &text)
{
    const UserConf parsed = parseUserConf(text);
    for (const auto &[metric, goal] : parsed.goals)
        declareGoal(goal);
}

void
SmartConfRuntime::loadProfileText(const std::string &text)
{
    const ProfileFile parsed = parseProfileFile(text);
    if (parsed.conf.empty())
        throw std::runtime_error("profile store misses 'conf = <name>'");
    installProfile(parsed.conf, parsed.summary);
    ConfState &state = stateFor(parsed.conf);
    for (const auto &pt : parsed.samples)
        state.profiler.record(pt.config, pt.perf);
}

void
SmartConfRuntime::declareConf(const ConfEntry &entry)
{
    if (entry.name.empty())
        throw std::invalid_argument("configuration needs a name");
    auto [it, inserted] = confs_.try_emplace(entry.name);
    ConfState &state = it->second;
    if (!inserted && state.controller) {
        coordinator_.detach(state.entry.metric, state.controller.get());
        state.controller.reset();
    }
    state.entry = entry;
    state.current = entry.initial;
    maybeSynthesize(state);
}

void
SmartConfRuntime::declareGoal(const Goal &goal)
{
    coordinator_.declareGoal(goal);
    for (auto &[name, state] : confs_) {
        if (state.entry.metric == goal.metric) {
            if (state.controller) {
                state.controller->setGoal(goal);
            } else {
                maybeSynthesize(state);
            }
        }
    }
}

void
SmartConfRuntime::installProfile(const std::string &conf,
                                 const ProfileSummary &summary)
{
    ConfState &state = stateFor(conf);
    state.summary = summary;
    if (state.controller) {
        coordinator_.detach(state.entry.metric, state.controller.get());
        state.controller.reset();
    }
    maybeSynthesize(state);
}

void
SmartConfRuntime::setOverrides(const std::string &conf,
                               const ControllerOverrides &overrides)
{
    ConfState &state = stateFor(conf);
    state.overrides = overrides;
    if (state.controller) {
        coordinator_.detach(state.entry.metric, state.controller.get());
        state.controller.reset();
    }
    maybeSynthesize(state);
}

const Profiler &
SmartConfRuntime::profilerFor(const std::string &conf) const
{
    return stateForConst(conf).profiler;
}

void
SmartConfRuntime::setCurrentValue(const std::string &conf, double value)
{
    stateFor(conf).current = value;
}

double
SmartConfRuntime::currentValue(const std::string &conf) const
{
    return stateForConst(conf).current;
}

ProfileSummary
SmartConfRuntime::finishProfiling(const std::string &conf)
{
    ConfState &state = stateFor(conf);
    if (!state.profiler.sufficient()) {
        throw std::runtime_error("not enough profiling samples for '" +
                                 conf + "'");
    }
    const ProfileSummary summary = state.profiler.summarize();
    installProfile(conf, summary);
    return summary;
}

std::string
SmartConfRuntime::formatProfileStore(const std::string &conf) const
{
    const ConfState &state = stateForConst(conf);
    ProfileFile file;
    file.conf = conf;
    file.summary = state.summary.value_or(state.profiler.summarize());
    file.samples = state.profiler.samples();
    return formatProfileFile(file);
}

int
SmartConfRuntime::flushProfiles(const std::string &dir) const
{
    namespace fs = std::filesystem;
    fs::create_directories(dir);
    int written = 0;
    for (const auto &[name, state] : confs_) {
        if (!state.summary && state.profiler.sampleCount() == 0)
            continue;
        const fs::path path = fs::path(dir) / (name + ".SmartConf.sys");
        writeTextFile(path.string(), formatProfileStore(name));
        ++written;
    }
    return written;
}

int
SmartConfRuntime::loadProfiles(const std::string &dir)
{
    namespace fs = std::filesystem;
    if (!fs::is_directory(dir))
        return 0;
    int installed = 0;
    const std::string suffix = ".SmartConf.sys";
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        const std::string name = entry.path().filename().string();
        if (name.size() <= suffix.size() ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
            continue;
        }
        const std::string conf =
            name.substr(0, name.size() - suffix.size());
        if (!hasConf(conf))
            continue; // a store for software we are not running
        loadProfileText(readTextFile(entry.path().string()));
        ++installed;
    }
    return installed;
}

std::vector<LintIssue>
SmartConfRuntime::lint() const
{
    SysFile sys;
    sys.profilingEnabled = profiling_;
    for (const auto &[name, state] : confs_)
        sys.entries.push_back(state.entry);
    UserConf user;
    user.goals = coordinator_.goals();

    std::vector<LintIssue> issues = lintDeployment(sys, user);
    for (const auto &[name, state] : confs_) {
        if (!state.summary)
            continue;
        ProfileFile store;
        store.conf = name;
        store.summary = *state.summary;
        store.samples = state.profiler.samples();
        const auto more = lintProfile(store, state.entry);
        issues.insert(issues.end(), more.begin(), more.end());
    }
    return issues;
}

void
SmartConfRuntime::setAlertHandler(AlertHandler handler)
{
    alert_handler_ = std::move(handler);
}

bool
SmartConfRuntime::hasConf(const std::string &conf) const
{
    return confs_.count(conf) > 0;
}

const ConfEntry &
SmartConfRuntime::entryFor(const std::string &conf) const
{
    return stateForConst(conf).entry;
}

SmartConfRuntime::ConfState &
SmartConfRuntime::stateFor(const std::string &conf)
{
    const auto it = confs_.find(conf);
    if (it == confs_.end())
        throw std::out_of_range("unknown SmartConf configuration '" + conf +
                                "'");
    return it->second;
}

const SmartConfRuntime::ConfState &
SmartConfRuntime::stateForConst(const std::string &conf) const
{
    const auto it = confs_.find(conf);
    if (it == confs_.end())
        throw std::out_of_range("unknown SmartConf configuration '" + conf +
                                "'");
    return it->second;
}

void
SmartConfRuntime::maybeSynthesize(ConfState &state)
{
    if (state.controller || !state.summary ||
        !coordinator_.hasGoal(state.entry.metric)) {
        return;
    }
    const ProfileSummary &s = *state.summary;
    if (!std::isfinite(s.alpha) || s.alpha == 0.0)
        throw std::runtime_error("profile for '" + state.entry.name +
                                 "' has zero or non-finite gain; "
                                 "cannot synthesize");
    if (s.insufficient) {
        // Degenerate profile (single setting, all-singleton groups, or
        // a flat surface): the projected pole/lambda are maximum-
        // distrust fallbacks, not measurements.  Synthesize — the
        // conservative parameters are safe — but tell the operator the
        // controller is running on guesswork, not a profile.
        raiseAlert(state,
                   "profile for '" + state.entry.name +
                       "' lacks usable per-setting noise statistics "
                       "(single-setting, all-singleton or flat "
                       "profile); synthesizing with maximum-distrust "
                       "pole/margin — re-profile with >= 2 settings "
                       "and >= 2 samples each");
        state.alerted = false; // keep run-time alerts armed
    }
    if (!s.monotonic) {
        // Paper Sec. 6.6: SmartConf requires a monotonic relationship
        // between configuration and performance; warn loudly (but
        // still synthesize, so the caller can observe the mismanage-
        // ment the paper describes for MR5420-style configurations).
        raiseAlert(state,
                   "profiling suggests a NON-MONOTONIC relationship "
                   "between '" + state.entry.name + "' and '" +
                       state.entry.metric +
                       "'; SmartConf cannot manage such "
                       "configurations reliably (see paper Sec. 6.6)");
        state.alerted = false; // keep run-time alerts armed
    }

    ControllerParams params;
    params.alpha = s.alpha;
    params.pole = state.overrides.pole.value_or(s.pole);
    params.lambda = state.overrides.lambda.value_or(s.lambda);
    params.useVirtualGoal = state.overrides.useVirtualGoal;
    params.useContextAwarePoles = state.overrides.useContextAwarePoles;
    params.confMin = state.overrides.deputyMin.value_or(state.entry.confMin);
    params.confMax = state.overrides.deputyMax.value_or(state.entry.confMax);

    const Goal &goal = coordinator_.goalFor(state.entry.metric);
    state.controller = std::make_unique<Controller>(params, goal);
    coordinator_.attach(state.entry.metric, state.controller.get());
}

void
SmartConfRuntime::raiseAlert(ConfState &state, const std::string &msg)
{
    if (state.alerted)
        return;
    state.alerted = true;
    ++alert_count_;
    if (alert_handler_)
        alert_handler_(state.entry.name, msg);
}

} // namespace smartconf
