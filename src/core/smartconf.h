#ifndef SMARTCONF_CORE_SMARTCONF_H_
#define SMARTCONF_CORE_SMARTCONF_H_

/**
 * @file
 * The developer-facing SmartConf classes (paper Fig. 3 and Fig. 4).
 *
 * Usage mirrors the paper exactly.  Instead of reading a configuration
 * value from a file, developers create a SmartConf handle and, wherever
 * the software uses the configuration, call setPerf with the latest
 * sensor measurement followed by getConf to obtain the adjusted setting:
 *
 * @code
 *     SmartConfRuntime rt;                    // process-wide registry
 *     rt.loadSysText(...);                    // SmartConf.sys
 *     rt.loadUserConfText(...);               // user goals
 *     rt.loadProfileText(...);                // <Conf>.SmartConf.sys
 *
 *     SmartConf sc(rt, "max.queue.size");
 *     ...
 *     sc.setPerf(heap_used_mb);               // sensor reading
 *     queue.setCapacity(sc.getConf());        // adjusted configuration
 * @endcode
 *
 * Indirect configurations (thresholds on a deputy variable, Sec. 5.3) use
 * SmartConfI and additionally pass the deputy's current value to setPerf.
 */

#include <memory>
#include <string>

#include "core/runtime.h"
#include "core/transducer.h"

namespace smartconf {

/**
 * Handle for a *direct* configuration: its value immediately moves the
 * goal metric (e.g. a cache size moving memory consumption).
 */
class SmartConf
{
  public:
    /**
     * Bind to configuration @p conf_name in @p runtime.
     *
     * Reads the configuration's current setting, its performance goal and
     * the auto-generated controller parameters from the runtime (which
     * loaded them from the SmartConf system files), mirroring the paper's
     * constructor semantics.
     *
     * @throws std::out_of_range when the configuration is undeclared.
     */
    SmartConf(SmartConfRuntime &runtime, std::string conf_name);

    virtual ~SmartConf() = default;

    SmartConf(const SmartConf &) = delete;
    SmartConf &operator=(const SmartConf &) = delete;

    /**
     * Feed the latest measurement of the goal metric to the controller.
     * In profiling mode the (configuration, performance) pair is also
     * recorded into the profiling store.
     */
    void setPerf(double actual);

    /**
     * Compute and return the adjusted configuration value, rounded to the
     * nearest integer (PerfConfs are dominated by integer types, paper
     * Table 5).  Until a controller is synthesized — i.e. during the
     * first profiling runs — this returns the current value unchanged.
     */
    int getConf();

    /** Same as getConf() without rounding, for floating-point configs. */
    double getConfReal();

    /**
     * Update the performance goal at run time (users/administrators can
     * change goals while the system runs, Sec. 4.3).  The new goal fans
     * out to every configuration attached to the same metric.
     */
    void setGoal(double goal);

    /** Current configuration value without running the controller. */
    double currentValue() const;

    /** Configuration name this handle is bound to. */
    const std::string &name() const { return name_; }

    /** True once a controller has been synthesized for this conf. */
    bool managed() const;

  protected:
    /** Runs the controller and clamps/stores the result. */
    double adjust();

    /** Registry state for this configuration. */
    SmartConfRuntime::ConfState &state();
    const SmartConfRuntime::ConfState &state() const;

    SmartConfRuntime &runtime_;
    std::string name_;

  private:
    /**
     * Cached registry entry.  setPerf/getConf run every control tick,
     * so the name lookup is paid once at bind time; std::map nodes are
     * address-stable, and the runtime never erases a declared
     * configuration, so the pointer stays valid for the handle's life.
     */
    SmartConfRuntime::ConfState *state_;
};

/**
 * Handle for an *indirect* configuration: a threshold on a deputy
 * variable that is what actually drives performance (Sec. 5.3).
 *
 * The controller operates on the deputy; the transducer maps the desired
 * deputy value back to the configuration (identity by default).
 */
class SmartConfI : public SmartConf
{
  public:
    /**
     * @param transducer deputy -> configuration mapping; pass nullptr for
     *                    the identity transducer.
     */
    SmartConfI(SmartConfRuntime &runtime, std::string conf_name,
               std::unique_ptr<Transducer> transducer = nullptr);

    /**
     * Feed the latest measurement plus the deputy's current value (the
     * controller adjusts from where the deputy *is*, not from where the
     * threshold was set — the threshold only takes effect eventually).
     */
    void setPerf(double actual, double deputy_value);

    /** Adjusted threshold = transduce(controller-desired deputy value). */
    int getConf();

    /** Same as getConf() without rounding. */
    double getConfReal();

    /** Deputy value most recently passed to setPerf. */
    double lastDeputy() const { return last_deputy_; }

  private:
    double adjustIndirect();

    std::unique_ptr<Transducer> transducer_;
    double last_deputy_ = 0.0;
    bool deputy_seen_ = false;
};

} // namespace smartconf

#endif // SMARTCONF_CORE_SMARTCONF_H_
