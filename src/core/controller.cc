#include "core/controller.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace smartconf {

Controller::Controller(const ControllerParams &params, const Goal &goal)
    : params_(params), goal_(goal)
{
    // Constructor-time validation instead of debug-only asserts: a
    // release build handed alpha == 0 (a flat profile surface) used to
    // divide by zero on every update.  Synthesis bugs must fail loudly
    // at build time, not emit Inf configurations at run time.
    if (!std::isfinite(params_.alpha) || params_.alpha == 0.0)
        throw std::invalid_argument(
            "controller gain alpha must be finite and non-zero");
    if (!(params_.pole >= 0.0 && params_.pole < 1.0))
        throw std::invalid_argument(
            "controller pole must lie in [0, 1)");
    if (!(params_.aggressivePole >= 0.0 && params_.aggressivePole < 1.0))
        throw std::invalid_argument(
            "controller aggressive pole must lie in [0, 1)");
    if (!(params_.interactionFactor >= 1.0))
        throw std::invalid_argument(
            "controller interaction factor must be >= 1");
    if (!std::isfinite(params_.lambda))
        throw std::invalid_argument(
            "controller lambda must be finite");
    if (std::isnan(params_.confMin) || std::isnan(params_.confMax) ||
        params_.confMin > params_.confMax) {
        throw std::invalid_argument(
            "controller clamp needs confMin <= confMax");
    }
    recomputeVirtualGoal();
}

void
Controller::recomputeVirtualGoal()
{
    if (goal_.hard && params_.useVirtualGoal) {
        virtual_goal_ = virtualGoalFor(goal_, params_.lambda);
    } else {
        virtual_goal_ = goal_.value;
    }
}

double
Controller::setPoint() const
{
    return virtual_goal_;
}

bool
Controller::inDangerZone(double perf) const
{
    if (goal_.direction == GoalDirection::UpperBound)
        return perf > virtual_goal_;
    return perf < virtual_goal_;
}

double
Controller::effectivePole(double perf) const
{
    if (goal_.hard && params_.useContextAwarePoles && inDangerZone(perf))
        return params_.aggressivePole;
    return params_.pole;
}

double
Controller::update(double measured_perf, double current_conf)
{
    if (!std::isfinite(measured_perf) || !std::isfinite(current_conf)) {
        // A NaN measurement used to propagate into the configuration
        // and stay there forever (NaN + anything = NaN).  Treat the
        // tick as a sensor fault: count it, hold the last good output,
        // and never emit a non-finite value.
        ++faults_;
        const double held =
            last_output_
                ? *last_output_
                : std::clamp(std::isfinite(current_conf) ? current_conf
                                                         : params_.confMin,
                             params_.confMin, params_.confMax);
        last_output_ = held;
        return held;
    }

    const double e = setPoint() - measured_perf;
    const double p = effectivePole(measured_perf);
    const double step =
        (1.0 - p) / (params_.interactionFactor * params_.alpha) * e;
    double next = current_conf + step;

    if (next <= params_.confMin) {
        next = params_.confMin;
        // Still being pushed below the clamp: candidate unreachable goal.
        saturation_ = (step < 0.0) ? saturation_ + 1 : 0;
    } else if (next >= params_.confMax) {
        next = params_.confMax;
        saturation_ = (step > 0.0) ? saturation_ + 1 : 0;
    } else {
        saturation_ = 0;
    }

    last_output_ = next;
    return next;
}

void
Controller::setGoal(const Goal &goal)
{
    goal_ = goal;
    saturation_ = 0;
    recomputeVirtualGoal();
}

void
Controller::setInteractionFactor(double n)
{
    if (!(n >= 1.0))
        throw std::invalid_argument(
            "controller interaction factor must be >= 1");
    params_.interactionFactor = n;
}

} // namespace smartconf
