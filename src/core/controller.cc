#include "core/controller.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace smartconf {

Controller::Controller(const ControllerParams &params, const Goal &goal)
    : params_(params), goal_(goal)
{
    assert(params_.alpha != 0.0 && "controller needs a non-zero gain");
    assert(params_.pole >= 0.0 && params_.pole < 1.0);
    assert(params_.aggressivePole >= 0.0 && params_.aggressivePole < 1.0);
    assert(params_.interactionFactor >= 1.0);
    recomputeVirtualGoal();
}

void
Controller::recomputeVirtualGoal()
{
    if (goal_.hard && params_.useVirtualGoal) {
        virtual_goal_ = virtualGoalFor(goal_, params_.lambda);
    } else {
        virtual_goal_ = goal_.value;
    }
}

double
Controller::setPoint() const
{
    return virtual_goal_;
}

bool
Controller::inDangerZone(double perf) const
{
    if (goal_.direction == GoalDirection::UpperBound)
        return perf > virtual_goal_;
    return perf < virtual_goal_;
}

double
Controller::effectivePole(double perf) const
{
    if (goal_.hard && params_.useContextAwarePoles && inDangerZone(perf))
        return params_.aggressivePole;
    return params_.pole;
}

double
Controller::update(double measured_perf, double current_conf)
{
    const double e = setPoint() - measured_perf;
    const double p = effectivePole(measured_perf);
    const double step =
        (1.0 - p) / (params_.interactionFactor * params_.alpha) * e;
    double next = current_conf + step;

    if (next <= params_.confMin) {
        next = params_.confMin;
        // Still being pushed below the clamp: candidate unreachable goal.
        saturation_ = (step < 0.0) ? saturation_ + 1 : 0;
    } else if (next >= params_.confMax) {
        next = params_.confMax;
        saturation_ = (step > 0.0) ? saturation_ + 1 : 0;
    } else {
        saturation_ = 0;
    }

    last_output_ = next;
    return next;
}

void
Controller::setGoal(const Goal &goal)
{
    goal_ = goal;
    saturation_ = 0;
    recomputeVirtualGoal();
}

void
Controller::setInteractionFactor(double n)
{
    assert(n >= 1.0);
    params_.interactionFactor = n;
}

} // namespace smartconf
