#include "core/lint.h"

#include <set>
#include <sstream>

namespace smartconf {

namespace {

void
add(std::vector<LintIssue> &out, LintSeverity severity,
    const std::string &subject, const std::string &message)
{
    out.push_back({severity, subject, message});
}

} // namespace

std::vector<LintIssue>
lintDeployment(const SysFile &sys, const UserConf &user)
{
    std::vector<LintIssue> out;

    std::set<std::string> used_metrics;
    for (const ConfEntry &e : sys.entries) {
        used_metrics.insert(e.metric);

        if (e.metric.empty()) {
            add(out, LintSeverity::Error, e.name,
                "no 'conf @ metric' mapping: SmartConf cannot know "
                "which goal this configuration serves");
        } else if (user.goals.count(e.metric) == 0) {
            add(out, LintSeverity::Error, e.name,
                "metric '" + e.metric +
                    "' has no goal in the user configuration; the "
                    "controller can never be synthesized");
        }

        if (e.confMin > e.confMax) {
            add(out, LintSeverity::Error, e.name,
                "clamp is inverted (min > max)");
        } else {
            if (e.initial < e.confMin || e.initial > e.confMax) {
                add(out, LintSeverity::Warning, e.name,
                    "initial value lies outside the [min, max] clamp; "
                    "the first getConf() will move it");
            }
            if (e.confMin == e.confMax) {
                add(out, LintSeverity::Warning, e.name,
                    "min == max pins the configuration: nothing to "
                    "adjust");
            }
        }
    }

    for (const auto &[metric, goal] : user.goals) {
        if (used_metrics.count(metric) == 0) {
            add(out, LintSeverity::Warning, metric,
                "goal is not referenced by any configuration in "
                "SmartConf.sys");
        }
        if (goal.hard && goal.value <= 0.0 &&
            goal.direction == GoalDirection::UpperBound) {
            add(out, LintSeverity::Warning, metric,
                "hard upper-bound goal of <= 0 can never hold");
        }
    }
    return out;
}

std::vector<LintIssue>
lintProfile(const ProfileFile &profile, const ConfEntry &entry)
{
    std::vector<LintIssue> out;
    const ProfileSummary &s = profile.summary;

    if (!s.monotonic) {
        add(out, LintSeverity::Warning, profile.conf,
            "profile is non-monotonic; SmartConf cannot manage such "
            "configurations reliably (paper Sec. 6.6)");
    }
    if (s.pole < 0.0 || s.pole >= 1.0) {
        add(out, LintSeverity::Error, profile.conf,
            "pole outside [0, 1): the closed loop would be unstable");
    }
    if (s.lambda < 0.0 || s.lambda > 0.9) {
        add(out, LintSeverity::Warning, profile.conf,
            "lambda outside [0, 0.9]: virtual goal would be degenerate");
    }
    if (s.alpha == 0.0) {
        add(out, LintSeverity::Error, profile.conf,
            "zero gain: the configuration does not move the metric");
    }
    if (profile.samples.size() < 40) {
        add(out, LintSeverity::Warning, profile.conf,
            "fewer than 40 samples (the paper profiles 4 settings x "
            "10 samples)");
    }
    for (const ProfilePoint &pt : profile.samples) {
        if (pt.config < entry.confMin || pt.config > entry.confMax) {
            add(out, LintSeverity::Warning, profile.conf,
                "a profiling sample lies outside the configuration's "
                "clamp; the store may belong to another deployment");
            break;
        }
    }
    return out;
}

std::string
formatLintIssues(const std::vector<LintIssue> &issues)
{
    std::ostringstream out;
    for (const LintIssue &issue : issues) {
        out << (issue.severity == LintSeverity::Error ? "error: "
                                                      : "warning: ")
            << issue.subject << ": " << issue.message << "\n";
    }
    return out.str();
}

bool
hasLintErrors(const std::vector<LintIssue> &issues)
{
    for (const LintIssue &issue : issues) {
        if (issue.severity == LintSeverity::Error)
            return true;
    }
    return false;
}

} // namespace smartconf
