#include "core/smartconf.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace smartconf {

namespace {

/** Round to nearest integer and keep within the declared clamp. */
int
roundClamped(double value, const ConfEntry &entry)
{
    const double clamped = std::clamp(value, entry.confMin, entry.confMax);
    return static_cast<int>(std::llround(clamped));
}

} // namespace

SmartConf::SmartConf(SmartConfRuntime &runtime, std::string conf_name)
    : runtime_(runtime), name_(std::move(conf_name)),
      state_(&runtime.stateFor(name_)) // validates eagerly; throws when
                                       // undeclared
{
}

SmartConfRuntime::ConfState &
SmartConf::state()
{
    return *state_;
}

const SmartConfRuntime::ConfState &
SmartConf::state() const
{
    return *state_;
}

void
SmartConf::setPerf(double actual)
{
    auto &st = state();
    st.last_perf = actual;
    st.perf_seen = true;
    if (runtime_.profiling())
        st.profiler.record(st.current, actual, st.current);
}

double
SmartConf::adjust()
{
    auto &st = state();
    if (!st.controller || !st.perf_seen)
        return st.current; // not yet managed: starting value passes through

    st.current = st.controller->update(st.last_perf, st.current);
    if (st.controller->saturated()) {
        runtime_.raiseAlert(
            st, "goal '" + st.entry.metric +
                    "' appears unreachable: configuration pinned at " +
                    std::to_string(st.current));
    } else {
        st.alerted = false;
    }
    return st.current;
}

int
SmartConf::getConf()
{
    return roundClamped(adjust(), state().entry);
}

double
SmartConf::getConfReal()
{
    return adjust();
}

void
SmartConf::setGoal(double goal)
{
    runtime_.coordinator().updateGoalValue(state().entry.metric, goal);
}

double
SmartConf::currentValue() const
{
    return state().current;
}

bool
SmartConf::managed() const
{
    return state().controller != nullptr;
}

SmartConfI::SmartConfI(SmartConfRuntime &runtime, std::string conf_name,
                       std::unique_ptr<Transducer> transducer)
    : SmartConf(runtime, std::move(conf_name)),
      transducer_(transducer ? std::move(transducer)
                             : std::make_unique<Transducer>())
{}

void
SmartConfI::setPerf(double actual, double deputy_value)
{
    auto &st = state();
    st.last_perf = actual;
    st.perf_seen = true;
    last_deputy_ = deputy_value;
    deputy_seen_ = true;
    // The model relates performance to the *deputy*, so the regression
    // sees (deputy, perf) pairs, while noise statistics are grouped by
    // the threshold setting in force during this profiling slot.
    if (runtime_.profiling())
        st.profiler.record(deputy_value, actual, st.current);
}

double
SmartConfI::adjustIndirect()
{
    auto &st = state();
    if (!st.controller || !st.perf_seen || !deputy_seen_)
        return st.current;

    // Controller computes the desired next deputy value from the current
    // performance and the deputy's current value (Sec. 5.3) ...
    const double desired_deputy =
        st.controller->update(st.last_perf, last_deputy_);
    // ... and the transducer maps it onto the threshold configuration.
    const double conf = transducer_->transduce(desired_deputy);
    st.current = std::clamp(conf, st.entry.confMin, st.entry.confMax);

    if (st.controller->saturated()) {
        runtime_.raiseAlert(
            st, "goal '" + st.entry.metric +
                    "' appears unreachable: deputy pinned at " +
                    std::to_string(desired_deputy));
    } else {
        st.alerted = false;
    }
    return st.current;
}

int
SmartConfI::getConf()
{
    return roundClamped(adjustIndirect(), state().entry);
}

double
SmartConfI::getConfReal()
{
    return adjustIndirect();
}

} // namespace smartconf
