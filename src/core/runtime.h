#ifndef SMARTCONF_CORE_RUNTIME_H_
#define SMARTCONF_CORE_RUNTIME_H_

/**
 * @file
 * SmartConfRuntime — the per-process registry behind the SmartConf API.
 *
 * The runtime owns everything the paper stores in files and global state:
 * the SmartConf.sys configuration entries, the user goals, the per-conf
 * profiling stores, the synthesized controllers, and the goal coordinator
 * that couples interacting configurations.  SmartConf objects (Fig. 3/4)
 * are thin handles into this registry.
 *
 * Both file-based and programmatic setup are supported: server software
 * would call loadSysText/loadUserConfText at startup, while tests and
 * simulations declare entries directly.
 */

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/controller.h"
#include "core/lint.h"
#include "core/coordinator.h"
#include "core/profiler.h"
#include "core/sysfile.h"

namespace smartconf {

/**
 * Per-configuration knobs for ablation studies (Fig. 7).
 *
 * Production use never touches these; the evaluation harness uses them to
 * build the "single pole" and "no virtual goal" alternative controllers.
 */
struct ControllerOverrides
{
    std::optional<double> pole;   ///< force the regular pole
    std::optional<double> lambda; ///< force the instability coefficient
    bool useVirtualGoal = true;
    bool useContextAwarePoles = true;

    /**
     * Clamp for the *controlled variable* when it differs from the
     * configuration (indirect configs with a non-identity transducer,
     * e.g. HD4995 controls lock-hold seconds but configures a file
     * count).  Defaults to the configuration's own clamp.
     */
    std::optional<double> deputyMin;
    std::optional<double> deputyMax;
};

/**
 * Registry and factory for SmartConf-managed configurations.
 */
class SmartConfRuntime
{
  public:
    using AlertHandler =
        std::function<void(const std::string &conf, const std::string &msg)>;

    SmartConfRuntime();
    ~SmartConfRuntime();

    SmartConfRuntime(const SmartConfRuntime &) = delete;
    SmartConfRuntime &operator=(const SmartConfRuntime &) = delete;

    /// @name Setup from SmartConf file formats
    /// @{

    /** Parse SmartConf.sys text and declare all entries. */
    void loadSysText(const std::string &text);

    /** Parse user configuration text and declare all goals. */
    void loadUserConfText(const std::string &text);

    /** Parse a <Conf>.SmartConf.sys profiling store and install it. */
    void loadProfileText(const std::string &text);

    /// @}
    /// @name Programmatic setup
    /// @{

    /** Declare one configuration entry (name, metric, init, clamps). */
    void declareConf(const ConfEntry &entry);

    /** Declare the goal for a metric. */
    void declareGoal(const Goal &goal);

    /** Install synthesized parameters for @p conf directly. */
    void installProfile(const std::string &conf,
                        const ProfileSummary &summary);

    /** Apply evaluation-only overrides (must precede controller use). */
    void setOverrides(const std::string &conf,
                      const ControllerOverrides &overrides);

    /// @}
    /// @name Profiling mode (paper Sec. 5.5)
    /// @{

    /** Enable/disable sample recording in setPerf. */
    void setProfiling(bool enabled) { profiling_ = enabled; }
    bool profiling() const { return profiling_; }

    /** Access recorded samples for @p conf. */
    const Profiler &profilerFor(const std::string &conf) const;

    /**
     * Pin the current configuration value of @p conf.
     *
     * Profiling harnesses use this to tell SmartConf which static
     * setting is in force, so that setPerf records (setting, perf)
     * pairs; at run time the controller manages the value itself.
     */
    void setCurrentValue(const std::string &conf, double value);

    /** Current value of @p conf without running any controller. */
    double currentValue(const std::string &conf) const;

    /**
     * Summarize recorded samples for @p conf, install the result and
     * return it.  Equivalent to flushing the profiling store to disk and
     * re-reading it, without the file system round trip.
     */
    ProfileSummary finishProfiling(const std::string &conf);

    /** Serialize the profiling store of @p conf (file format 3). */
    std::string formatProfileStore(const std::string &conf) const;

    /**
     * Flush every configuration's profiling store to
     * `<dir>/<ConfName>.SmartConf.sys` (paper Sec. 5.5: profiling
     * results are "periodically flushed to file").  Configurations
     * without samples or an installed summary are skipped.
     *
     * @return number of files written.
     */
    int flushProfiles(const std::string &dir) const;

    /**
     * Load every `*.SmartConf.sys` profiling store found in @p dir and
     * install it (the startup counterpart of flushProfiles).  Stores
     * naming undeclared configurations are ignored.
     *
     * @return number of stores installed.
     */
    int loadProfiles(const std::string &dir);

    /// @}

    /** Shared goal registry (interaction factors, setGoal fan-out). */
    GoalCoordinator &coordinator() { return coordinator_; }
    const GoalCoordinator &coordinator() const { return coordinator_; }

    /**
     * Validate the loaded deployment: every configuration's metric has
     * a goal, clamps make sense, goals are attached (see core/lint.h).
     * Call after loading/declaring everything, before serving.
     */
    std::vector<LintIssue> lint() const;

    /** Install the unreachable-goal alert callback (Sec. 4.3). */
    void setAlertHandler(AlertHandler handler);

    /** Number of alerts raised so far (all configurations). */
    int alertCount() const { return alert_count_; }

    /** True when @p conf was declared. */
    bool hasConf(const std::string &conf) const;

    /** Declared entry. @throws std::out_of_range when undeclared. */
    const ConfEntry &entryFor(const std::string &conf) const;

  private:
    friend class SmartConf;
    friend class SmartConfI;

    /** Everything the runtime tracks for one configuration. */
    struct ConfState
    {
        ConfEntry entry;
        ControllerOverrides overrides;
        std::optional<ProfileSummary> summary;
        std::unique_ptr<Controller> controller;
        Profiler profiler;
        double current = 0.0;      ///< current configuration value
        double last_perf = 0.0;    ///< latest setPerf measurement
        bool perf_seen = false;
        bool alerted = false;      ///< alert already raised this episode
    };

    ConfState &stateFor(const std::string &conf);
    const ConfState &stateForConst(const std::string &conf) const;

    /** Build the controller for @p state if goal + profile are ready. */
    void maybeSynthesize(ConfState &state);

    /** Raise the unreachable-goal alert (deduplicated per episode). */
    void raiseAlert(ConfState &state, const std::string &msg);

    std::map<std::string, ConfState> confs_;
    GoalCoordinator coordinator_;
    AlertHandler alert_handler_;
    int alert_count_ = 0;
    bool profiling_ = false;
};

} // namespace smartconf

#endif // SMARTCONF_CORE_RUNTIME_H_
