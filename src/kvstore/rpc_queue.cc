#include "kvstore/rpc_queue.h"

#include <algorithm>

namespace smartconf::kvstore {

bool
RpcRequestQueue::offer(const RpcItem &item, sim::Tick now)
{
    if (items_.size() >= max_items_) {
        ++rejected_;
        return false;
    }
    RpcItem queued = item;
    queued.enqueued = now;
    items_.push_back(queued);
    bytes_mb_ += queued.size_mb;
    ++accepted_;
    return true;
}

std::size_t
RpcRequestQueue::drain(std::size_t n)
{
    std::size_t done = 0;
    while (done < n && !items_.empty()) {
        bytes_mb_ -= items_.front().size_mb;
        items_.pop_front();
        ++done;
    }
    if (items_.empty())
        bytes_mb_ = 0.0; // clear accumulated float error
    return done;
}

RpcItem
RpcRequestQueue::pop()
{
    RpcItem out = items_.front();
    items_.pop_front();
    bytes_mb_ -= out.size_mb;
    if (items_.empty())
        bytes_mb_ = 0.0;
    return out;
}

bool
RpcResponseQueue::offer(double size_mb)
{
    if (bytes_mb_ + size_mb > max_mb_) {
        ++stalled_;
        return false;
    }
    chunks_.push_back(size_mb);
    bytes_mb_ += size_mb;
    ++accepted_;
    return true;
}

double
RpcResponseQueue::drain(double mb)
{
    double drained = 0.0;
    while (mb > 0.0 && !chunks_.empty()) {
        double &front = chunks_.front();
        const double take = std::min(front, mb);
        front -= take;
        bytes_mb_ -= take;
        drained += take;
        mb -= take;
        if (front <= 1e-12)
            chunks_.pop_front();
    }
    if (chunks_.empty())
        bytes_mb_ = 0.0;
    return drained;
}

} // namespace smartconf::kvstore
