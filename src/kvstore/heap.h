#ifndef SMARTCONF_KVSTORE_HEAP_H_
#define SMARTCONF_KVSTORE_HEAP_H_

/**
 * @file
 * JVM-heap model with out-of-memory detection.
 *
 * The hard goals in the key-value case studies are all "do not OOM the
 * JVM" (paper Table 6: CA6059, HB3813, HB6728).  The heap model tracks
 * named components — queue payloads, memtable contents, read caches, a
 * workload-dependent "other objects" floor — and records the first tick
 * at which total usage exceeded capacity.  Once OOM, the simulated server
 * is dead: scenario drivers stop serving requests, exactly like a crashed
 * region server.
 */

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/clock.h"

namespace smartconf::kvstore {

/**
 * Accounting heap: component gauges plus an OOM latch.
 *
 * Storage is struct-of-arrays: component names (kept sorted) in one
 * vector, their gauges in a parallel contiguous double array.  Hot
 * callers register a Slot once and update through it — a direct array
 * store instead of a per-call string scan — while usedMb() sums the
 * gauge array in name-sorted order, so the floating-point rounding
 * (and therefore every OOM tick) is identical to the sorted-pairs and
 * std::map layouts this evolved from.  Registering a component early
 * at 0.0 is also rounding-neutral: adding 0.0 to a non-negative
 * partial sum never changes it.
 */
class JvmHeap
{
  public:
    /** Stable handle to one component's gauge. */
    using Slot = std::uint32_t;

    /** @param capacity_mb JVM max heap (e.g. 495 MB in Fig. 6). */
    explicit JvmHeap(double capacity_mb) : capacity_mb_(capacity_mb) {}

    /**
     * Register (or look up) @p name and return its slot.  A new
     * component starts at 0 MB.  Slots stay valid for the heap's
     * lifetime, across later registrations.
     */
    Slot slot(std::string_view name);

    /** Set the gauge behind @p s (clamped at zero, like setComponent). */
    void set(Slot s, double mb)
    {
        mb_[slot_pos_[s]] = mb > 0.0 ? mb : 0.0;
    }

    /** Add to the gauge behind @p s (may be negative; floors at 0). */
    void add(Slot s, double mb)
    {
        double &gauge = mb_[slot_pos_[s]];
        const double next = gauge + mb;
        gauge = next > 0.0 ? next : 0.0;
    }

    /** Current gauge behind @p s. */
    double at(Slot s) const { return mb_[slot_pos_[s]]; }

    /** Set the current size of one named component. */
    void setComponent(std::string_view name, double mb);

    /** Add to a named component (may be negative). */
    void addComponent(std::string_view name, double mb);

    /** Current size of a component; 0 when absent. */
    double component(std::string_view name) const;

    /** Total heap usage across all components. */
    double usedMb() const
    {
        double total = 0.0;
        for (const double mb : mb_)
            total += mb;
        return total;
    }

    /** Configured capacity. */
    double capacityMb() const { return capacity_mb_; }

    /**
     * Latch OOM if usage exceeds capacity at @p now.
     * @return true when the heap is (now or previously) OOM.
     */
    bool checkOom(sim::Tick now)
    {
        if (oom_tick_ < 0 && usedMb() > capacity_mb_)
            oom_tick_ = now;
        return oom();
    }

    /** True once usage ever exceeded capacity. */
    bool oom() const { return oom_tick_ >= 0; }

    /** Tick of the first OOM; -1 when it never happened. */
    sim::Tick oomTick() const { return oom_tick_; }

  private:
    /** @return position of @p name in names_, or names_.size(). */
    std::size_t find(std::string_view name) const;

    /** Insert @p name sorted with gauge @p mb; fix slot positions. */
    std::size_t insert(std::string_view name, double mb);

    static constexpr std::uint32_t kNoSlot = 0xffffffffu;

    double capacity_mb_;

    /**
     * Component names, kept sorted, with gauges in the parallel mb_
     * array.  A server has a handful of components but updates them
     * every tick; the contiguous double array keeps both the slotted
     * update path and usedMb()'s summation on one cache line, and the
     * sorted order pins the summation order (same floating-point
     * rounding, same OOM ticks as every earlier layout).
     */
    std::vector<std::string> names_;
    std::vector<double> mb_;

    /** Slot id -> position in names_/mb_ (fixed up on rare inserts). */
    std::vector<std::uint32_t> slot_pos_;
    /** Position -> slot id (kNoSlot when never slotted). */
    std::vector<std::uint32_t> pos_slot_;

    sim::Tick oom_tick_ = -1;
};

} // namespace smartconf::kvstore

#endif // SMARTCONF_KVSTORE_HEAP_H_
