#ifndef SMARTCONF_KVSTORE_HEAP_H_
#define SMARTCONF_KVSTORE_HEAP_H_

/**
 * @file
 * JVM-heap model with out-of-memory detection.
 *
 * The hard goals in the key-value case studies are all "do not OOM the
 * JVM" (paper Table 6: CA6059, HB3813, HB6728).  The heap model tracks
 * named components — queue payloads, memtable contents, read caches, a
 * workload-dependent "other objects" floor — and records the first tick
 * at which total usage exceeded capacity.  Once OOM, the simulated server
 * is dead: scenario drivers stop serving requests, exactly like a crashed
 * region server.
 */

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/clock.h"

namespace smartconf::kvstore {

/**
 * Accounting heap: component gauges plus an OOM latch.
 */
class JvmHeap
{
  public:
    /** @param capacity_mb JVM max heap (e.g. 495 MB in Fig. 6). */
    explicit JvmHeap(double capacity_mb) : capacity_mb_(capacity_mb) {}

    /** Set the current size of one named component. */
    void setComponent(std::string_view name, double mb);

    /** Add to a named component (may be negative). */
    void addComponent(std::string_view name, double mb);

    /** Current size of a component; 0 when absent. */
    double component(std::string_view name) const;

    /** Total heap usage across all components. */
    double usedMb() const;

    /** Configured capacity. */
    double capacityMb() const { return capacity_mb_; }

    /**
     * Latch OOM if usage exceeds capacity at @p now.
     * @return true when the heap is (now or previously) OOM.
     */
    bool checkOom(sim::Tick now);

    /** True once usage ever exceeded capacity. */
    bool oom() const { return oom_tick_ >= 0; }

    /** Tick of the first OOM; -1 when it never happened. */
    sim::Tick oomTick() const { return oom_tick_; }

  private:
    /** @return slot for @p name, or components_.size() when absent. */
    std::size_t find(std::string_view name) const;

    double capacity_mb_;
    /**
     * Component gauges as a flat array, kept sorted by name.  A server
     * has a handful of components but updates them every tick, so a
     * linear scan over contiguous pairs beats a tree walk.  The sorted
     * order keeps usedMb()'s summation order identical to the std::map
     * this replaces — same floating-point rounding, same OOM ticks.
     */
    std::vector<std::pair<std::string, double>> components_;
    sim::Tick oom_tick_ = -1;
};

} // namespace smartconf::kvstore

#endif // SMARTCONF_KVSTORE_HEAP_H_
