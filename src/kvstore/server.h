#ifndef SMARTCONF_KVSTORE_SERVER_H_
#define SMARTCONF_KVSTORE_SERVER_H_

/**
 * @file
 * RPC region server: bounded request/response queues over a JVM heap.
 *
 * This is the shared engine behind HB3813 (request queue caps memory),
 * HB6728 (response queue caps memory) and the Fig. 8 interacting-
 * controllers experiment (both queues against one heap).  Each simulated
 * tick the server:
 *
 *   1. refreshes the workload-dependent "other objects" heap component
 *      (a slow random walk — the unpredictable disturbance hard goals
 *      must survive);
 *   2. services up to a fixed number of queued requests; reads produce
 *      responses that must fit into the response queue or the handler
 *      stalls;
 *   3. drains the response queue at the network rate;
 *   4. republishes queue occupancies into the heap and checks for OOM.
 *
 * Once OOM, the server stops serving — the region server crashed.
 */

#include <array>
#include <cstdint>
#include <vector>

#include "kvstore/heap.h"
#include "kvstore/rpc_queue.h"
#include "sim/clock.h"
#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/shard.h"
#include "workload/ycsb.h"

namespace smartconf::kvstore {

/** Server mechanics. */
struct KvServerParams
{
    double heap_mb = 495.0;          ///< JVM heap (Fig. 6 uses 495 MB)
    std::size_t request_queue_items = 50;  ///< initial max.queue.size
    double response_queue_mb = 64.0; ///< initial response.queue.maxsize
    double service_ops_per_tick = 12.0; ///< handler drain rate
    double network_mb_per_tick = 10.0;  ///< response drain rate
    double response_size_factor = 1.0;  ///< response MB per read's size_mb
    double write_response_mb = 0.01;    ///< tiny ack for writes
    double other_base_mb = 200.0;    ///< baseline non-queue heap
    double other_walk_mb = 4.0;      ///< per-tick random-walk step bound
    double other_max_mb = 260.0;     ///< cap of the other-objects walk

    /**
     * Client RPC timeout in ticks; requests older than this are dropped
     * from the queue (the client gave up and will retry elsewhere).
     * 0 disables timeouts.
     */
    sim::Tick request_timeout = 0;
};

/**
 * Per-shard ingest accounting: which logical shard (reactor lane) each
 * offered RPC arrived on.  A real region server's RPC readers are a
 * small pool of reactor threads; this is the per-lane view of that
 * intake, attributed with the same pure `sim::shardLayout` the sharded
 * generators use, so it is identical for any physical worker count.
 */
struct ShardIngest
{
    std::array<std::uint64_t, sim::kShards> ops{}; ///< RPCs per lane
    std::array<double, sim::kShards> mb{};         ///< request MB per lane
};

/**
 * The simulated region server.
 */
class KvServer
{
  public:
    KvServer(const KvServerParams &params, sim::Rng rng);

    /** Offer a batch of client operations (rejected ops are dropped). */
    void accept(const std::vector<workload::Op> &ops, sim::Tick now);

    /**
     * Shard-attributed variant: `shard_seq` is the generator tick
     * sequence that produced `ops` (ShardedYcsbGenerator::lastSeq()),
     * replayed through `sim::shardLayout` to tally per-lane intake.
     * Queue/heap behaviour is identical to the two-argument form.
     */
    void accept(const std::vector<workload::Op> &ops, sim::Tick now,
                std::uint64_t shard_seq);

    /** Per-shard intake tallies (all-zero until the 3-arg accept). */
    const ShardIngest &shardIngest() const { return ingest_; }

    /** Advance one tick of service, network drain and heap accounting. */
    void step(sim::Tick now);

    /** True when the server has crashed with OOM. */
    bool crashed() const { return heap_.oom(); }

    JvmHeap &heap() { return heap_; }
    const JvmHeap &heap() const { return heap_; }
    RpcRequestQueue &requestQueue() { return request_queue_; }
    const RpcRequestQueue &requestQueue() const { return request_queue_; }
    RpcResponseQueue &responseQueue() { return response_queue_; }
    const RpcResponseQueue &responseQueue() const { return response_queue_; }

    /** Completed operations (throughput numerator). */
    std::uint64_t completedOps() const { return completed_; }

    /** Requests dropped because the client timed out. */
    std::uint64_t timedOutOps() const { return timed_out_; }

    /** Reads whose response was dropped (response queue overflow). */
    std::uint64_t droppedResponses() const { return dropped_responses_; }

    /** Queueing delay distribution (ticks). */
    const sim::Histogram &queueDelays() const { return queue_delays_; }

    const KvServerParams &params() const { return params_; }

  private:
    KvServerParams params_;
    sim::Rng rng_;
    JvmHeap heap_;
    RpcRequestQueue request_queue_;
    RpcResponseQueue response_queue_;
    double other_mb_;
    std::uint64_t completed_ = 0;
    std::uint64_t timed_out_ = 0;
    std::uint64_t dropped_responses_ = 0;
    sim::Histogram queue_delays_;
    ShardIngest ingest_;

    /** Heap gauges the server republishes every tick, slot-resolved
     *  once here instead of name-scanned per update. */
    JvmHeap::Slot other_slot_;
    JvmHeap::Slot request_slot_;
    JvmHeap::Slot response_slot_;

    /** Per-tick queueing delays, flushed to queue_delays_ in one
     *  batch (same recorded sequence as the per-op path). */
    std::vector<double> delay_batch_;
};

} // namespace smartconf::kvstore

#endif // SMARTCONF_KVSTORE_SERVER_H_
