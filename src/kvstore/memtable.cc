#include "kvstore/memtable.h"

#include <algorithm>

namespace smartconf::kvstore {

double
Memtable::write(double size_mb, sim::Tick now)
{
    (void)now;
    // A shrunk cap can leave the active buffer over the threshold
    // without a flush running (dynamic adjustment, Sec. 4.2): the
    // flush decision happens on every write attempt, accepted or not.
    if (!flushing_ && active_mb_ >= cap_mb_) {
        flushing_ = true;
        flushing_mb_ = active_mb_;
        active_mb_ = 0.0;
        stall_remaining_ = params_.flush_stall_ticks;
        ++flush_count_;
    }
    if (stall_remaining_ > 0.0 ||
        active_mb_ + flushing_mb_ >=
            cap_mb_ * params_.emergency_headroom) {
        ++blocked_;
        return -1.0; // blocked: flush-start stall or emergency pressure
    }
    active_mb_ += size_mb;
    if (!flushing_ && active_mb_ >= cap_mb_) {
        // Snapshot the active buffer and start flushing it; a fresh
        // active buffer takes over after a short commit-log switch.
        flushing_ = true;
        flushing_mb_ = active_mb_;
        active_mb_ = 0.0;
        stall_remaining_ = params_.flush_stall_ticks;
        ++flush_count_;
    }
    return flushing_ ? params_.base_write_latency * params_.flush_penalty
                     : params_.base_write_latency;
}

void
Memtable::step(sim::Tick now)
{
    (void)now;
    if (stall_remaining_ > 0.0)
        stall_remaining_ -= 1.0;
    if (!flushing_)
        return;
    flushing_mb_ = std::max(
        0.0, flushing_mb_ - params_.flush_rate_mb_per_tick);
    if (flushing_mb_ <= 0.0)
        flushing_ = false;
}

} // namespace smartconf::kvstore
