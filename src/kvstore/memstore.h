#ifndef SMARTCONF_KVSTORE_MEMSTORE_H_
#define SMARTCONF_KVSTORE_MEMSTORE_H_

/**
 * @file
 * HBase-style memstore with upper/lower flush watermarks (HB2149).
 *
 * HBase blocks writes when the aggregate memstore hits its upper limit
 * and flushes until it drops to the lower limit.  The distance between
 * the two watermarks — what `global.memstore.lowerLimit` effectively
 * selects — is the *flush amount*: how much data each blocking flush
 * evicts.
 *
 *  - large flush amount: writes block rarely but each block lasts long
 *    ("Too big, write blocked for too long" — the constraint);
 *  - small flush amount: short blocks but frequent, and each flush pays a
 *    fixed setup cost, hurting throughput ("Too small, write blocked too
 *    often" — the trade-off).
 *
 * The block duration is flush_amount / flush_rate + setup, so the config
 * directly determines the latency metric: a *direct* PerfConf (Table 6:
 * HB2149 is Y-Y-N).
 */

#include <cstdint>

#include "sim/clock.h"

namespace smartconf::kvstore {

/** Mechanics of the memstore flush path. */
struct MemstoreParams
{
    double upper_limit_mb = 256.0;       ///< block-writes watermark
    double flush_rate_mb_per_tick = 4.0; ///< drain rate during a flush
    double flush_setup_ticks = 4.0;      ///< fixed per-flush cost
};

/**
 * Aggregate memstore whose blocking-flush amount is the PerfConf.
 */
class Memstore
{
  public:
    /** @param flush_amount_mb initial flush amount (the config). */
    Memstore(double flush_amount_mb, const MemstoreParams &params)
        : flush_amount_mb_(flush_amount_mb), params_(params)
    {}

    /**
     * Apply one write of @p size_mb at @p now.
     *
     * @return false when writes are currently blocked by a flush.
     */
    bool write(double size_mb, sim::Tick now);

    /** Advance flushing by one tick. */
    void step(sim::Tick now);

    /** Adjust the flush amount (SmartConf-controlled, float config). */
    void setFlushAmountMb(double mb);
    double flushAmountMb() const { return flush_amount_mb_; }

    double occupancyMb() const { return occupancy_mb_; }
    bool blocked() const { return blocking_; }

    /** Duration of the last completed blocking flush (ticks). */
    double lastBlockTicks() const { return last_block_ticks_; }

    std::uint64_t flushCount() const { return flush_count_; }
    std::uint64_t blockedWrites() const { return blocked_writes_; }

  private:
    double flush_amount_mb_;
    MemstoreParams params_;
    double occupancy_mb_ = 0.0;
    bool blocking_ = false;
    double flush_target_mb_ = 0.0;
    sim::Tick block_started_ = 0;
    double setup_remaining_ = 0.0;
    double last_block_ticks_ = 0.0;
    std::uint64_t flush_count_ = 0;
    std::uint64_t blocked_writes_ = 0;
};

} // namespace smartconf::kvstore

#endif // SMARTCONF_KVSTORE_MEMSTORE_H_
