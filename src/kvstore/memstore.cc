#include "kvstore/memstore.h"

#include <algorithm>

namespace smartconf::kvstore {

bool
Memstore::write(double size_mb, sim::Tick now)
{
    if (blocking_) {
        ++blocked_writes_;
        return false;
    }
    occupancy_mb_ += size_mb;
    if (occupancy_mb_ >= params_.upper_limit_mb) {
        // Hit the upper watermark: block writes, flush down by the
        // configured amount.
        blocking_ = true;
        ++flush_count_;
        block_started_ = now;
        setup_remaining_ = params_.flush_setup_ticks;
        flush_target_mb_ = std::max(
            0.0, occupancy_mb_ - flush_amount_mb_);
    }
    return true;
}

void
Memstore::step(sim::Tick now)
{
    if (!blocking_)
        return;
    if (setup_remaining_ > 0.0) {
        setup_remaining_ -= 1.0;
        return;
    }
    occupancy_mb_ = std::max(
        flush_target_mb_, occupancy_mb_ - params_.flush_rate_mb_per_tick);
    if (occupancy_mb_ <= flush_target_mb_) {
        blocking_ = false;
        last_block_ticks_ = static_cast<double>(now - block_started_) + 1.0;
    }
}

void
Memstore::setFlushAmountMb(double mb)
{
    flush_amount_mb_ = std::max(0.0, mb);
}

} // namespace smartconf::kvstore
