#ifndef SMARTCONF_KVSTORE_MEMTABLE_H_
#define SMARTCONF_KVSTORE_MEMTABLE_H_

/**
 * @file
 * Cassandra-style memtable (CA6059).
 *
 * `memtable_total_space_in_mb` caps the in-memory write buffer.  When
 * the active buffer reaches the cap, it is snapshotted and a flush to
 * disk starts: the snapshot drains at a fixed rate while a fresh active
 * buffer keeps absorbing writes (Cassandra's memtable swap).  Flush
 * start pays a short commit-log-switch stall that blocks writes, and
 * writes running concurrently with a flush pay a latency penalty.  If
 * total occupancy (active + flushing) overshoots an emergency margin
 * above the cap, writes block entirely until the flush catches up.
 *
 * Too large a cap threatens OOM (heap = memtable + read cache + other);
 * too small a cap means constant flushing and poor write latency — the
 * exact trade-off CA6059 describes.
 */

#include <cstdint>

#include "sim/clock.h"

namespace smartconf::kvstore {

/** Tunable mechanics of the memtable. */
struct MemtableParams
{
    double flush_rate_mb_per_tick = 25.0; ///< flush drain rate
    double flush_penalty = 4.0;  ///< write-latency multiplier during flush
    double base_write_latency = 1.0; ///< ticks per write when idle
    double emergency_headroom = 1.25; ///< block writes above cap * this
    double flush_stall_ticks = 3.0; ///< commit-log switch: writes blocked
};

/**
 * In-memory write buffer with threshold-triggered flushes.
 */
class Memtable
{
  public:
    /** @param cap_mb initial `memtable_total_space_in_mb`. */
    Memtable(double cap_mb, const MemtableParams &params)
        : cap_mb_(cap_mb), params_(params)
    {}

    /**
     * Apply one write of @p size_mb at @p now.
     *
     * @return the write's latency in ticks, or a negative value when the
     *         write was blocked (emergency: buffer far above cap).
     */
    double write(double size_mb, sim::Tick now);

    /** Advance flushing by one tick. */
    void step(sim::Tick now);

    /** Dynamically adjust the cap (the SmartConf-controlled value). */
    void setCapMb(double cap_mb) { cap_mb_ = cap_mb; }
    double capMb() const { return cap_mb_; }

    /** Total occupancy (MB) — the deputy variable and heap component. */
    double occupancyMb() const { return active_mb_ + flushing_mb_; }

    /** Active (accepting) buffer occupancy. */
    double activeMb() const { return active_mb_; }

    /** Snapshot still draining to disk. */
    double flushingMb() const { return flushing_mb_; }

    bool flushing() const { return flushing_; }

    /** True while the flush-start stall is blocking writes. */
    bool stalled() const { return stall_remaining_ > 0.0; }

    std::uint64_t flushCount() const { return flush_count_; }
    std::uint64_t blockedWrites() const { return blocked_; }

  private:
    double cap_mb_;
    MemtableParams params_;
    double active_mb_ = 0.0;
    double flushing_mb_ = 0.0;
    bool flushing_ = false;
    double stall_remaining_ = 0.0;
    std::uint64_t flush_count_ = 0;
    std::uint64_t blocked_ = 0;
};

} // namespace smartconf::kvstore

#endif // SMARTCONF_KVSTORE_MEMTABLE_H_
