#include "kvstore/heap.h"

#include <algorithm>

namespace smartconf::kvstore {

std::size_t
JvmHeap::find(std::string_view name) const
{
    for (std::size_t i = 0; i < components_.size(); ++i) {
        if (components_[i].first == name)
            return i;
    }
    return components_.size();
}

void
JvmHeap::setComponent(std::string_view name, double mb)
{
    const std::size_t i = find(name);
    if (i < components_.size()) {
        components_[i].second = std::max(0.0, mb);
        return;
    }
    const auto pos = std::lower_bound(
        components_.begin(), components_.end(), name,
        [](const auto &entry, std::string_view n) {
            return entry.first < n;
        });
    components_.emplace(pos, std::string(name), std::max(0.0, mb));
}

void
JvmHeap::addComponent(std::string_view name, double mb)
{
    const std::size_t i = find(name);
    if (i < components_.size()) {
        components_[i].second =
            std::max(0.0, components_[i].second + mb);
        return;
    }
    const auto pos = std::lower_bound(
        components_.begin(), components_.end(), name,
        [](const auto &entry, std::string_view n) {
            return entry.first < n;
        });
    components_.emplace(pos, std::string(name), std::max(0.0, mb));
}

double
JvmHeap::component(std::string_view name) const
{
    const std::size_t i = find(name);
    return i < components_.size() ? components_[i].second : 0.0;
}

double
JvmHeap::usedMb() const
{
    double total = 0.0;
    for (const auto &[name, mb] : components_)
        total += mb;
    return total;
}

bool
JvmHeap::checkOom(sim::Tick now)
{
    if (oom_tick_ < 0 && usedMb() > capacity_mb_)
        oom_tick_ = now;
    return oom();
}

} // namespace smartconf::kvstore
