#include "kvstore/heap.h"

#include <algorithm>

namespace smartconf::kvstore {

void
JvmHeap::setComponent(std::string_view name, double mb)
{
    const auto it = components_.find(name);
    if (it != components_.end()) {
        it->second = std::max(0.0, mb);
        return;
    }
    components_.emplace(std::string(name), std::max(0.0, mb));
}

void
JvmHeap::addComponent(std::string_view name, double mb)
{
    const auto it = components_.find(name);
    if (it != components_.end()) {
        it->second = std::max(0.0, it->second + mb);
        return;
    }
    components_.emplace(std::string(name), std::max(0.0, mb));
}

double
JvmHeap::component(std::string_view name) const
{
    const auto it = components_.find(name);
    return it == components_.end() ? 0.0 : it->second;
}

double
JvmHeap::usedMb() const
{
    double total = 0.0;
    for (const auto &[name, mb] : components_)
        total += mb;
    return total;
}

bool
JvmHeap::checkOom(sim::Tick now)
{
    if (oom_tick_ < 0 && usedMb() > capacity_mb_)
        oom_tick_ = now;
    return oom();
}

} // namespace smartconf::kvstore
