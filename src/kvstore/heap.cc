#include "kvstore/heap.h"

#include <algorithm>

namespace smartconf::kvstore {

void
JvmHeap::setComponent(const std::string &name, double mb)
{
    components_[name] = std::max(0.0, mb);
}

void
JvmHeap::addComponent(const std::string &name, double mb)
{
    auto &slot = components_[name];
    slot = std::max(0.0, slot + mb);
}

double
JvmHeap::component(const std::string &name) const
{
    const auto it = components_.find(name);
    return it == components_.end() ? 0.0 : it->second;
}

double
JvmHeap::usedMb() const
{
    double total = 0.0;
    for (const auto &[name, mb] : components_)
        total += mb;
    return total;
}

bool
JvmHeap::checkOom(sim::Tick now)
{
    if (oom_tick_ < 0 && usedMb() > capacity_mb_)
        oom_tick_ = now;
    return oom();
}

} // namespace smartconf::kvstore
