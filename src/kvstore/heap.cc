#include "kvstore/heap.h"

#include <algorithm>

namespace smartconf::kvstore {

std::size_t
JvmHeap::find(std::string_view name) const
{
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name)
            return i;
    }
    return names_.size();
}

std::size_t
JvmHeap::insert(std::string_view name, double mb)
{
    const auto pos = std::lower_bound(names_.begin(), names_.end(), name);
    const auto i = static_cast<std::size_t>(pos - names_.begin());
    names_.emplace(pos, name);
    mb_.insert(mb_.begin() + static_cast<std::ptrdiff_t>(i),
               std::max(0.0, mb));
    pos_slot_.insert(pos_slot_.begin() + static_cast<std::ptrdiff_t>(i),
                     kNoSlot);
    for (std::uint32_t &p : slot_pos_) {
        if (p >= i)
            ++p;
    }
    return i;
}

JvmHeap::Slot
JvmHeap::slot(std::string_view name)
{
    std::size_t i = find(name);
    if (i == names_.size())
        i = insert(name, 0.0);
    if (pos_slot_[i] != kNoSlot)
        return pos_slot_[i];
    const Slot s = static_cast<Slot>(slot_pos_.size());
    slot_pos_.push_back(static_cast<std::uint32_t>(i));
    pos_slot_[i] = s;
    return s;
}

void
JvmHeap::setComponent(std::string_view name, double mb)
{
    const std::size_t i = find(name);
    if (i < names_.size()) {
        mb_[i] = std::max(0.0, mb);
        return;
    }
    insert(name, mb);
}

void
JvmHeap::addComponent(std::string_view name, double mb)
{
    const std::size_t i = find(name);
    if (i < names_.size()) {
        mb_[i] = std::max(0.0, mb_[i] + mb);
        return;
    }
    insert(name, mb);
}

double
JvmHeap::component(std::string_view name) const
{
    const std::size_t i = find(name);
    return i < names_.size() ? mb_[i] : 0.0;
}

} // namespace smartconf::kvstore
