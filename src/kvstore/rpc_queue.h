#ifndef SMARTCONF_KVSTORE_RPC_QUEUE_H_
#define SMARTCONF_KVSTORE_RPC_QUEUE_H_

/**
 * @file
 * Bounded RPC queues (HB3813 request queue, HB6728 response queue).
 *
 * Both case studies are *indirect* PerfConfs: the configuration caps a
 * queue, the queue's occupancy is what drives heap usage.  The request
 * queue is item-bounded (`ipc.server.max.queue.size`); the response
 * queue is byte-bounded (`ipc.server.response.queue.maxsize`).
 *
 * Capacity drops below current occupancy are tolerated: the queue simply
 * refuses new entries until it drains back under the threshold — the
 * "temporary inconsistency between C and its deputy C'" the paper says
 * dynamic adjustment must tolerate (Sec. 4.2).
 */

#include <cstdint>
#include <deque>

#include "sim/clock.h"

namespace smartconf::kvstore {

/** One queued RPC request. */
struct RpcItem
{
    double size_mb = 0.0;   ///< heap held while queued
    double resp_mb = 0.0;   ///< response payload produced when serviced
    sim::Tick enqueued = 0; ///< for queueing-delay accounting
    bool is_write = false;
};

/**
 * Item-bounded FIFO request queue (HB3813).
 */
class RpcRequestQueue
{
  public:
    /** @param max_items initial `max.queue.size`. */
    explicit RpcRequestQueue(std::size_t max_items)
        : max_items_(max_items)
    {}

    /**
     * Try to enqueue; fails (request rejected / client throttled) when
     * the queue is at or above its current capacity.
     */
    bool offer(const RpcItem &item, sim::Tick now);

    /** Dequeue up to @p n items (service). @return items dequeued. */
    std::size_t drain(std::size_t n);

    /** Oldest queued item; nullptr when empty. */
    const RpcItem *front() const
    {
        return items_.empty() ? nullptr : &items_.front();
    }

    /** Remove and return the oldest item. @pre !empty. */
    RpcItem pop();

    /** Dynamically adjust capacity; shrinking below size() is legal. */
    void setMaxItems(std::size_t max_items) { max_items_ = max_items; }

    std::size_t maxItems() const { return max_items_; }
    std::size_t size() const { return items_.size(); }

    /** Heap held by queued payloads (MB). */
    double bytesMb() const { return bytes_mb_; }

    /** Total accepted / rejected counters. */
    std::uint64_t accepted() const { return accepted_; }
    std::uint64_t rejected() const { return rejected_; }

  private:
    std::size_t max_items_;
    std::deque<RpcItem> items_;
    double bytes_mb_ = 0.0;
    std::uint64_t accepted_ = 0;
    std::uint64_t rejected_ = 0;
};

/**
 * Byte-bounded response queue (HB6728).
 */
class RpcResponseQueue
{
  public:
    /** @param max_mb initial `response.queue.maxsize` in MB. */
    explicit RpcResponseQueue(double max_mb) : max_mb_(max_mb) {}

    /**
     * Try to buffer a response of @p size_mb; fails when the buffer
     * would exceed its current byte bound (the responder then stalls).
     */
    bool offer(double size_mb);

    /** Network drains up to @p mb megabytes. @return MB drained. */
    double drain(double mb);

    void setMaxMb(double max_mb) { max_mb_ = max_mb; }
    double maxMb() const { return max_mb_; }

    /** Buffered bytes (MB) — the deputy variable. */
    double bytesMb() const { return bytes_mb_; }

    std::uint64_t accepted() const { return accepted_; }
    std::uint64_t stalled() const { return stalled_; }

  private:
    double max_mb_;
    std::deque<double> chunks_;
    double bytes_mb_ = 0.0;
    std::uint64_t accepted_ = 0;
    std::uint64_t stalled_ = 0;
};

} // namespace smartconf::kvstore

#endif // SMARTCONF_KVSTORE_RPC_QUEUE_H_
