#include "kvstore/server.h"

#include <algorithm>
#include <cmath>

namespace smartconf::kvstore {

KvServer::KvServer(const KvServerParams &params, sim::Rng rng)
    : params_(params), rng_(rng), heap_(params.heap_mb),
      request_queue_(params.request_queue_items),
      response_queue_(params.response_queue_mb),
      other_mb_(params.other_base_mb),
      other_slot_(heap_.slot("other")),
      request_slot_(heap_.slot("request.queue")),
      response_slot_(heap_.slot("response.queue"))
{
    heap_.set(other_slot_, other_mb_);
}

void
KvServer::accept(const std::vector<workload::Op> &ops, sim::Tick now)
{
    if (crashed())
        return;
    for (const auto &op : ops) {
        RpcItem item;
        item.is_write = op.type == workload::Op::Type::Write;
        // Writes carry their payload into the queue; reads are small
        // request descriptors whose cost is on the response path.
        item.size_mb = item.is_write ? op.size_mb : 0.01;
        item.resp_mb = item.is_write
                           ? params_.write_response_mb
                           : op.size_mb * params_.response_size_factor;
        request_queue_.offer(item, now);
    }
    // Queue payloads live on the heap the moment they are accepted.
    heap_.set(request_slot_, request_queue_.bytesMb());
    heap_.checkOom(now);
}

void
KvServer::accept(const std::vector<workload::Op> &ops, sim::Tick now,
                 std::uint64_t shard_seq)
{
    if (crashed())
        return;
    // Replay the generator's block layout to attribute each offered op
    // to its logical intake lane.  Pure function of (n, seq): the same
    // tallies at any physical worker count.
    if (!ops.empty()) {
        sim::ShardSpan spans[sim::kShards];
        const std::size_t blocks =
            sim::shardLayout(ops.size(), shard_seq, spans);
        for (std::size_t b = 0; b < blocks; ++b) {
            const sim::ShardSpan &span = spans[b];
            ingest_.ops[span.lane] += span.end - span.begin;
            for (std::size_t i = span.begin; i < span.end; ++i)
                ingest_.mb[span.lane] += ops[i].size_mb;
        }
    }
    accept(ops, now);
}

void
KvServer::step(sim::Tick now)
{
    if (crashed())
        return;

    // 1. Workload-dependent heap disturbance: bounded random walk.
    other_mb_ += rng_.uniform(-params_.other_walk_mb,
                              params_.other_walk_mb);
    other_mb_ = std::clamp(other_mb_, params_.other_base_mb * 0.8,
                           params_.other_max_mb);
    heap_.set(other_slot_, other_mb_);

    // 2. Expire requests whose client has given up.
    if (params_.request_timeout > 0) {
        while (const RpcItem *front = request_queue_.front()) {
            if (now - front->enqueued < params_.request_timeout)
                break;
            request_queue_.pop();
            ++timed_out_;
        }
    }

    // 3. Service up to service_ops_per_tick requests.
    auto budget = static_cast<std::size_t>(
        std::max(0.0, std::round(rng_.gaussian(
                          params_.service_ops_per_tick,
                          params_.service_ops_per_tick * 0.1))));
    delay_batch_.clear();
    while (budget > 0 && request_queue_.front() != nullptr) {
        const RpcItem *item = request_queue_.front();
        const double response_mb =
            std::max(params_.write_response_mb, item->resp_mb);
        // HBASE-6728 semantics: a response that would push the buffer
        // past its bound is dropped and the call fails (the server
        // closes the connection; the client must retry).
        const bool delivered = response_queue_.offer(response_mb);
        const RpcItem done = request_queue_.pop();
        if (delivered) {
            delay_batch_.push_back(
                static_cast<double>(now - done.enqueued));
            ++completed_;
        } else {
            ++dropped_responses_;
        }
        --budget;
    }
    // One bulk histogram insert per tick; same sequence as per-op
    // record() calls.
    queue_delays_.recordBatch(delay_batch_.data(), delay_batch_.size());

    // 4. Network drains responses.
    response_queue_.drain(params_.network_mb_per_tick);

    // 5. Heap accounting + OOM check.
    heap_.set(request_slot_, request_queue_.bytesMb());
    heap_.set(response_slot_, response_queue_.bytesMb());
    heap_.checkOom(now);
}

} // namespace smartconf::kvstore
