#include "dfs/namenode.h"

#include <algorithm>
#include <cmath>

namespace smartconf::dfs {

Namenode::Namenode(const NamenodeParams &params,
                   std::uint64_t summary_limit)
    : params_(params), summary_limit_(std::max<std::uint64_t>(1,
                                                              summary_limit))
{
    tree_.makeDirs(params_.du_root);
}

void
Namenode::submit(const workload::DfsRequest &req, sim::Tick now)
{
    switch (req.type) {
      case workload::DfsRequest::Type::WriteFile: {
        // Namespace mutation: queue behind the global lock.
        if (!pending_writes_.empty() &&
            pending_writes_.back().arrived == now) {
            ++pending_writes_.back().count;
        } else {
            pending_writes_.push_back({now, 1});
        }
        ++pending_count_;
        if (req.client >= client_dirs_.size())
            client_dirs_.resize(req.client + 1);
        NamespaceTree::DirRef &dir = client_dirs_[req.client];
        if (!dir)
            dir = tree_.dirRef(params_.du_root + "/client" +
                               std::to_string(req.client));
        tree_.addFilesAt(dir);
        break;
      }
      case workload::DfsRequest::Type::ContentSummary: {
        if (du_.has_value())
            break; // one admin du at a time; extra commands are dropped
        DuJob job;
        job.total = req.file_count > 0
                        ? req.file_count
                        : tree_.filesUnder(params_.du_root);
        job.remaining = job.total;
        job.submitted = now;
        job.holds_lock = true; // acquires the lock on arrival
        job.acquired_at = now;
        job.chunk_done = 0.0;
        du_ = job;
        break;
      }
    }
}

void
Namenode::submitAll(const std::vector<workload::DfsRequest> &reqs,
                    sim::Tick now)
{
    std::uint64_t writes = 0;
    const auto flush = [&] {
        if (writes == 0)
            return;
        if (!pending_writes_.empty() &&
            pending_writes_.back().arrived == now) {
            pending_writes_.back().count += writes;
        } else {
            pending_writes_.push_back({now, writes});
        }
        pending_count_ += writes;
        // Clients are visited in first-appearance order, so directory
        // creation (and segment interning) happens in the same order as
        // the request-by-request path would produce.
        for (const std::uint32_t client : batch_clients_) {
            NamespaceTree::DirRef &dir = client_dirs_[client];
            if (!dir)
                dir = tree_.dirRef(params_.du_root + "/client" +
                                   std::to_string(client));
            tree_.addFilesAt(dir, batch_counts_[client]);
            batch_counts_[client] = 0;
        }
        batch_clients_.clear();
        writes = 0;
    };
    for (const auto &req : reqs) {
        if (req.type == workload::DfsRequest::Type::WriteFile) {
            if (req.client >= client_dirs_.size())
                client_dirs_.resize(req.client + 1);
            if (req.client >= batch_counts_.size())
                batch_counts_.resize(req.client + 1, 0);
            if (batch_counts_[req.client]++ == 0)
                batch_clients_.push_back(
                    static_cast<std::uint32_t>(req.client));
            ++writes;
        } else {
            // A du snapshots the namespace on arrival: apply the
            // writes accumulated so far before it sees the tree.
            flush();
            submit(req, now);
        }
    }
    flush();
}

void
Namenode::setSummaryLimit(std::uint64_t files)
{
    summary_limit_ = std::max<std::uint64_t>(1, files);
}

double
Namenode::takeRecentMaxWait()
{
    const double out = recent_max_wait_;
    recent_max_wait_ = 0.0;
    return out;
}

void
Namenode::step(sim::Tick now)
{
    if (du_ && du_->holds_lock) {
        // du traversal under the global lock; client writes are blocked.
        DuJob &job = *du_;
        const double chunk_budget =
            static_cast<double>(summary_limit_) - job.chunk_done;
        const double walk = std::min(
            {params_.traversal_files_per_tick, chunk_budget,
             static_cast<double>(job.remaining)});
        job.chunk_done += walk;
        job.remaining -= static_cast<std::uint64_t>(walk);

        const bool chunk_full =
            job.chunk_done >= static_cast<double>(summary_limit_);
        if (job.remaining == 0 || chunk_full) {
            last_hold_ticks_ =
                static_cast<double>(now - job.acquired_at) + 1.0;
            ++chunks_completed_;
            job.holds_lock = false;
            job.chunk_done = 0.0;
            if (job.remaining == 0) {
                DuResult result;
                result.files = job.total;
                result.latency_ticks =
                    static_cast<double>(now - job.submitted) + 1.0;
                result.yields = job.yields;
                du_results_.push_back(result);
                du_.reset();
            } else {
                ++job.yields;
                job.yield_remaining = params_.yield_overhead_ticks;
            }
        }
        return;
    }

    // Lock is free: serve blocked client writes, whole same-tick
    // batches at a time (every write in a batch has the same wait).
    auto budget = static_cast<std::uint64_t>(
        std::max(0.0, std::round(params_.write_service_per_tick)));
    while (budget > 0 && !pending_writes_.empty()) {
        PendingBatch &batch = pending_writes_.front();
        const std::uint64_t served = std::min(budget, batch.count);
        const double wait = static_cast<double>(now - batch.arrived);
        write_waits_.record(wait, static_cast<std::size_t>(served));
        recent_max_wait_ = std::max(recent_max_wait_, wait);
        served_writes_ += served;
        pending_count_ -= served;
        budget -= served;
        batch.count -= served;
        if (batch.count == 0)
            pending_writes_.pop_front();
    }

    // A yielded du reacquires once the release overhead has elapsed and
    // the write backlog has drained.
    if (du_ && !du_->holds_lock) {
        du_->yield_remaining -= 1.0;
        if (du_->yield_remaining <= 0.0 && pending_writes_.empty()) {
            du_->holds_lock = true;
            du_->acquired_at = now + 1; // holds from the next tick on
        }
    }
}

} // namespace smartconf::dfs
