#include "dfs/namenode.h"

#include <algorithm>
#include <cmath>

namespace smartconf::dfs {

Namenode::Namenode(const NamenodeParams &params,
                   std::uint64_t summary_limit)
    : params_(params), summary_limit_(std::max<std::uint64_t>(1,
                                                              summary_limit))
{
    tree_.makeDirs(params_.du_root);
}

void
Namenode::submit(const workload::DfsRequest &req, sim::Tick now)
{
    switch (req.type) {
      case workload::DfsRequest::Type::WriteFile: {
        // Namespace mutation: queue behind the global lock.
        pending_writes_.push_back(now);
        if (req.client >= client_dirs_.size())
            client_dirs_.resize(req.client + 1);
        NamespaceTree::DirRef &dir = client_dirs_[req.client];
        if (!dir)
            dir = tree_.dirRef(params_.du_root + "/client" +
                               std::to_string(req.client));
        tree_.addFilesAt(dir);
        break;
      }
      case workload::DfsRequest::Type::ContentSummary: {
        if (du_.has_value())
            break; // one admin du at a time; extra commands are dropped
        DuJob job;
        job.total = req.file_count > 0
                        ? req.file_count
                        : tree_.filesUnder(params_.du_root);
        job.remaining = job.total;
        job.submitted = now;
        job.holds_lock = true; // acquires the lock on arrival
        job.acquired_at = now;
        job.chunk_done = 0.0;
        du_ = job;
        break;
      }
    }
}

void
Namenode::setSummaryLimit(std::uint64_t files)
{
    summary_limit_ = std::max<std::uint64_t>(1, files);
}

double
Namenode::takeRecentMaxWait()
{
    const double out = recent_max_wait_;
    recent_max_wait_ = 0.0;
    return out;
}

void
Namenode::step(sim::Tick now)
{
    if (du_ && du_->holds_lock) {
        // du traversal under the global lock; client writes are blocked.
        DuJob &job = *du_;
        const double chunk_budget =
            static_cast<double>(summary_limit_) - job.chunk_done;
        const double walk = std::min(
            {params_.traversal_files_per_tick, chunk_budget,
             static_cast<double>(job.remaining)});
        job.chunk_done += walk;
        job.remaining -= static_cast<std::uint64_t>(walk);

        const bool chunk_full =
            job.chunk_done >= static_cast<double>(summary_limit_);
        if (job.remaining == 0 || chunk_full) {
            last_hold_ticks_ =
                static_cast<double>(now - job.acquired_at) + 1.0;
            ++chunks_completed_;
            job.holds_lock = false;
            job.chunk_done = 0.0;
            if (job.remaining == 0) {
                DuResult result;
                result.files = job.total;
                result.latency_ticks =
                    static_cast<double>(now - job.submitted) + 1.0;
                result.yields = job.yields;
                du_results_.push_back(result);
                du_.reset();
            } else {
                ++job.yields;
                job.yield_remaining = params_.yield_overhead_ticks;
            }
        }
        return;
    }

    // Lock is free: serve blocked client writes.
    auto budget = static_cast<std::size_t>(
        std::max(0.0, std::round(params_.write_service_per_tick)));
    while (budget > 0 && !pending_writes_.empty()) {
        const sim::Tick arrived = pending_writes_.front();
        pending_writes_.pop_front();
        const double wait = static_cast<double>(now - arrived);
        write_waits_.record(wait);
        recent_max_wait_ = std::max(recent_max_wait_, wait);
        ++served_writes_;
        --budget;
    }

    // A yielded du reacquires once the release overhead has elapsed and
    // the write backlog has drained.
    if (du_ && !du_->holds_lock) {
        du_->yield_remaining -= 1.0;
        if (du_->yield_remaining <= 0.0 && pending_writes_.empty()) {
            du_->holds_lock = true;
            du_->acquired_at = now + 1; // holds from the next tick on
        }
    }
}

} // namespace smartconf::dfs
