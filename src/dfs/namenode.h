#ifndef SMARTCONF_DFS_NAMENODE_H_
#define SMARTCONF_DFS_NAMENODE_H_

/**
 * @file
 * Namenode with a global namespace lock and chunked du (HD4995).
 *
 * getContentSummary traverses the requested subtree while holding the
 * namenode's global lock.  HD4995's fix introduced
 * `content-summary.limit`: after traversing that many files the du
 * releases the lock (yield), letting blocked client writes drain, then
 * reacquires and continues.
 *
 *  - large limit: du finishes fast but each lock hold blocks writes for
 *    limit / traversal_rate ticks ("Too big, write blocked for long");
 *  - small limit: writes barely notice, but every yield pays a release/
 *    reacquire overhead and the du waits for the write backlog, so du
 *    latency grows ("Too small, du latency hurts").
 *
 * The configuration is an *indirect* PerfConf: the controlled deputy is
 * the per-chunk lock-hold time; the transducer multiplies by the
 * traversal rate to get the file-count limit.
 */

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "dfs/namespace_tree.h"
#include "sim/clock.h"
#include "sim/metrics.h"
#include "workload/dfsio.h"

namespace smartconf::dfs {

/** Namenode mechanics. */
struct NamenodeParams
{
    double traversal_files_per_tick = 20000.0; ///< du walk speed
    double yield_overhead_ticks = 1.0; ///< lock release/reacquire cost
    double write_service_per_tick = 60.0; ///< writes served when unlocked
    std::string du_root = "/data";     ///< subtree du summarizes
};

/** Outcome of one completed du command. */
struct DuResult
{
    std::uint64_t files = 0;   ///< files summarized
    double latency_ticks = 0;  ///< submit -> completion
    std::uint64_t yields = 0;  ///< lock releases taken
};

/**
 * The simulated namenode.
 */
class Namenode
{
  public:
    Namenode(const NamenodeParams &params, std::uint64_t summary_limit);

    /** Submit one client request at @p now. */
    void submit(const workload::DfsRequest &req, sim::Tick now);

    /**
     * Submit a whole tick's worth of requests at @p now.  Equivalent to
     * calling submit() per element in order, but write bookkeeping is
     * amortized: the pending-queue batch and the per-client namespace
     * counters are each updated once per tick instead of once per
     * request.
     */
    void submitAll(const std::vector<workload::DfsRequest> &reqs,
                   sim::Tick now);

    /** Advance one tick: du traversal or write service. */
    void step(sim::Tick now);

    /** Adjust `content-summary.limit` (SmartConf-controlled). */
    void setSummaryLimit(std::uint64_t files);
    std::uint64_t summaryLimit() const { return summary_limit_; }

    /** Worst-case write wait observed so far (ticks). */
    const sim::Histogram &writeWaits() const { return write_waits_; }

    /**
     * Worst write wait observed since the previous call; resets the
     * tracker.  This is the per-chunk sensor the HD4995 controller
     * consumes (the configuration is *conditional*: it only matters
     * while a du is running).
     */
    double takeRecentMaxWait();

    /** Number of completed lock-hold chunks (control invocation cue). */
    std::uint64_t chunksCompleted() const { return chunks_completed_; }

    /** Lock-hold duration of each completed du chunk (the deputy). */
    double lastHoldTicks() const { return last_hold_ticks_; }

    /** Completed du commands. */
    const std::vector<DuResult> &duResults() const { return du_results_; }

    /** True while a du is in progress. */
    bool duActive() const { return du_.has_value(); }

    /** Pending (blocked) client writes. */
    std::size_t pendingWrites() const
    {
        return static_cast<std::size_t>(pending_count_);
    }

    /** Total client writes served. */
    std::uint64_t servedWrites() const { return served_writes_; }

    NamespaceTree &tree() { return tree_; }
    const NamespaceTree &tree() const { return tree_; }

  private:
    struct DuJob
    {
        std::uint64_t remaining = 0;  ///< files left to traverse
        std::uint64_t total = 0;
        sim::Tick submitted = 0;
        std::uint64_t yields = 0;
        bool holds_lock = false;
        sim::Tick acquired_at = 0;    ///< when the lock was last taken
        double chunk_done = 0.0;      ///< files traversed this hold
        double yield_remaining = 0.0; ///< release/reacquire cost left
    };

    NamenodeParams params_;
    std::uint64_t summary_limit_;
    NamespaceTree tree_;

    /**
     * Per-client directory handles ("/data/clientN"), resolved once.
     * Client writes are the namenode's hottest path (millions per run);
     * caching the handle turns each one into a pointer bump instead of
     * a string build plus a path resolution.
     */
    std::vector<NamespaceTree::DirRef> client_dirs_;

    /**
     * submitAll scratch: per-client write counts for the current batch
     * plus the list of clients actually touched (so resetting the
     * counts costs O(touched), not O(clients)).
     */
    std::vector<std::uint64_t> batch_counts_;
    std::vector<std::uint32_t> batch_clients_;

    /**
     * Blocked client writes, run-length encoded by arrival tick.  All
     * writes submitted in one tick share an arrival time, so a du that
     * blocks a few thousand writes costs a handful of batch entries
     * instead of one deque node per write — and the drain loop serves
     * whole batches per budget slice.
     */
    struct PendingBatch
    {
        sim::Tick arrived = 0;
        std::uint64_t count = 0;
    };
    std::deque<PendingBatch> pending_writes_;
    std::uint64_t pending_count_ = 0; ///< total writes across batches
    std::optional<DuJob> du_;
    sim::Histogram write_waits_;
    std::vector<DuResult> du_results_;
    double last_hold_ticks_ = 0.0;
    double recent_max_wait_ = 0.0;
    std::uint64_t chunks_completed_ = 0;
    std::uint64_t served_writes_ = 0;
};

} // namespace smartconf::dfs

#endif // SMARTCONF_DFS_NAMENODE_H_
