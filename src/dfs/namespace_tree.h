#ifndef SMARTCONF_DFS_NAMESPACE_TREE_H_
#define SMARTCONF_DFS_NAMESPACE_TREE_H_

/**
 * @file
 * HDFS-style namespace: a directory tree with per-directory file counts.
 *
 * The HD4995 case study concerns `du` (getContentSummary) walking a large
 * subtree under the namenode's global lock.  The tree gives the traversal
 * a real object to walk: directories, nested children, and file counts
 * that client traffic keeps growing during the run.
 *
 * Layout: path segments are interned once into uint32 ids (an
 * open-addressing string table backed by a segment arena), nodes live
 * in a chunked arena and link their children through an intrusive
 * sibling list, and child lookup goes through a single flat
 * open-addressing hash keyed by (parent node, segment id).  A resolve
 * step is therefore two integer-keyed probes — no string comparisons,
 * no per-directory std::map node hops, no allocation.  Repeat visitors
 * can go further and hold a DirRef — a stable handle to a directory
 * node — making each subsequent touch a pointer dereference.
 */

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace smartconf::dfs {

/**
 * In-memory directory tree.
 *
 * Paths are '/'-separated absolute strings ("/data/client3").  Missing
 * intermediate directories are created on demand, like HDFS's
 * mkdirs(-p) semantics.
 */
class NamespaceTree
{
  private:
    struct Node;

  public:
    NamespaceTree();

    /**
     * Stable, opaque reference to a directory node.
     *
     * Nodes are never deleted and the node arena never relocates, so a
     * DirRef stays valid for the life of its tree.  Default-constructed
     * refs are falsy.
     */
    class DirRef
    {
      public:
        DirRef() = default;
        explicit operator bool() const { return node_ != nullptr; }

      private:
        friend class NamespaceTree;
        explicit DirRef(Node *node) : node_(node) {}
        Node *node_ = nullptr;
    };

    /** Ensure directory @p path exists (creates parents). */
    void makeDirs(std::string_view path);

    /**
     * Resolve @p path to a handle, creating the directory (and parents)
     * when missing.  Use with addFilesAt to skip re-resolution on every
     * touch of a hot directory.
     */
    DirRef dirRef(std::string_view path);

    /**
     * Record @p count new files in directory @p path (created with
     * parents when missing).
     */
    void addFiles(std::string_view path, std::uint64_t count = 1);

    /** Record @p count new files at a previously resolved directory. */
    void addFilesAt(DirRef dir, std::uint64_t count = 1);

    /** Files directly inside @p path; 0 when the directory is missing. */
    std::uint64_t filesAt(std::string_view path) const;

    /** Files in the whole subtree rooted at @p path. */
    std::uint64_t filesUnder(std::string_view path) const;

    /** Number of directories in the subtree (including @p path). */
    std::uint64_t dirsUnder(std::string_view path) const;

    /** Immediate subdirectory names of @p path (sorted). */
    std::vector<std::string> list(std::string_view path) const;

    /** True when @p path names an existing directory. */
    bool exists(std::string_view path) const;

    /** Distinct path segments interned so far (diagnostic hook). */
    std::size_t internedSegments() const { return segments_.size(); }

  private:
    static constexpr std::uint32_t kNil = 0xffffffffu;

    struct Node
    {
        std::uint64_t files = 0;
        std::uint32_t segment = kNil;      ///< interned name (root: kNil)
        std::uint32_t first_child = kNil;  ///< head of the sibling chain
        std::uint32_t next_sibling = kNil; ///< intrusive child list
    };

    /** One slot of the (parent, segment) -> child open hash. */
    struct ChildSlot
    {
        std::uint32_t parent = kNil; ///< kNil marks an empty slot
        std::uint32_t segment = 0;
        std::uint32_t child = 0;
    };

    /** Walk @p path; returns the node index or kNil when absent. */
    std::uint32_t resolve(std::string_view path, bool create);
    std::uint32_t resolveConst(std::string_view path) const;

    std::uint32_t internSegment(std::string_view name);
    std::uint32_t findSegment(std::string_view name) const;

    std::uint32_t findChild(std::uint32_t parent,
                            std::uint32_t segment) const;
    std::uint32_t addChild(std::uint32_t parent, std::uint32_t segment);
    void growChildTable();

    std::uint64_t countFiles(std::uint32_t node) const;
    std::uint64_t countDirs(std::uint32_t node) const;

    /** Node arena; deque chunks keep addresses stable for DirRef. */
    std::deque<Node> nodes_;

    /** Flat (parent, segment) -> child index; power-of-two capacity. */
    std::vector<ChildSlot> child_slots_;
    std::size_t child_count_ = 0;

    /** Interned segment strings; deque keeps string objects stable. */
    std::deque<std::string> segments_;
    /** Open-addressing index over segments_ (slot = id + 1, 0 empty). */
    std::vector<std::uint32_t> segment_slots_;
};

} // namespace smartconf::dfs

#endif // SMARTCONF_DFS_NAMESPACE_TREE_H_
