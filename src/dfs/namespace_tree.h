#ifndef SMARTCONF_DFS_NAMESPACE_TREE_H_
#define SMARTCONF_DFS_NAMESPACE_TREE_H_

/**
 * @file
 * HDFS-style namespace: a directory tree with per-directory file counts.
 *
 * The HD4995 case study concerns `du` (getContentSummary) walking a large
 * subtree under the namenode's global lock.  The tree gives the traversal
 * a real object to walk: directories, nested children, and file counts
 * that client traffic keeps growing during the run.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace smartconf::dfs {

/**
 * In-memory directory tree.
 *
 * Paths are '/'-separated absolute strings ("/data/client3").  Missing
 * intermediate directories are created on demand, like HDFS's
 * mkdirs(-p) semantics.
 */
class NamespaceTree
{
  public:
    NamespaceTree();

    /** Ensure directory @p path exists (creates parents). */
    void makeDirs(const std::string &path);

    /**
     * Record @p count new files in directory @p path (created with
     * parents when missing).
     */
    void addFiles(const std::string &path, std::uint64_t count = 1);

    /** Files directly inside @p path; 0 when the directory is missing. */
    std::uint64_t filesAt(const std::string &path) const;

    /** Files in the whole subtree rooted at @p path. */
    std::uint64_t filesUnder(const std::string &path) const;

    /** Number of directories in the subtree (including @p path). */
    std::uint64_t dirsUnder(const std::string &path) const;

    /** Immediate subdirectory names of @p path (sorted). */
    std::vector<std::string> list(const std::string &path) const;

    /** True when @p path names an existing directory. */
    bool exists(const std::string &path) const;

  private:
    struct Node
    {
        std::uint64_t files = 0;
        std::map<std::string, std::unique_ptr<Node>> children;
    };

    static std::vector<std::string> split(const std::string &path);

    Node *resolve(const std::string &path, bool create);
    const Node *resolveConst(const std::string &path) const;

    static std::uint64_t countFiles(const Node &node);
    static std::uint64_t countDirs(const Node &node);

    std::unique_ptr<Node> root_;
};

} // namespace smartconf::dfs

#endif // SMARTCONF_DFS_NAMESPACE_TREE_H_
