#ifndef SMARTCONF_DFS_NAMESPACE_TREE_H_
#define SMARTCONF_DFS_NAMESPACE_TREE_H_

/**
 * @file
 * HDFS-style namespace: a directory tree with per-directory file counts.
 *
 * The HD4995 case study concerns `du` (getContentSummary) walking a large
 * subtree under the namenode's global lock.  The tree gives the traversal
 * a real object to walk: directories, nested children, and file counts
 * that client traffic keeps growing during the run.
 *
 * Resolution is allocation-free: paths are tokenized in place as
 * string_views and looked up through the map's transparent comparator,
 * so the per-request hot path (millions of addFiles calls per scenario
 * run) builds no intermediate strings or vectors.  Repeat visitors can
 * go further and hold a DirRef — a stable handle to a directory node —
 * making each subsequent touch a pointer dereference.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace smartconf::dfs {

/**
 * In-memory directory tree.
 *
 * Paths are '/'-separated absolute strings ("/data/client3").  Missing
 * intermediate directories are created on demand, like HDFS's
 * mkdirs(-p) semantics.
 */
class NamespaceTree
{
  private:
    struct Node;

  public:
    NamespaceTree();

    /**
     * Stable, opaque reference to a directory node.
     *
     * Nodes are never deleted, so a DirRef stays valid for the life of
     * its tree.  Default-constructed refs are falsy.
     */
    class DirRef
    {
      public:
        DirRef() = default;
        explicit operator bool() const { return node_ != nullptr; }

      private:
        friend class NamespaceTree;
        explicit DirRef(Node *node) : node_(node) {}
        Node *node_ = nullptr;
    };

    /** Ensure directory @p path exists (creates parents). */
    void makeDirs(std::string_view path);

    /**
     * Resolve @p path to a handle, creating the directory (and parents)
     * when missing.  Use with addFilesAt to skip re-resolution on every
     * touch of a hot directory.
     */
    DirRef dirRef(std::string_view path);

    /**
     * Record @p count new files in directory @p path (created with
     * parents when missing).
     */
    void addFiles(std::string_view path, std::uint64_t count = 1);

    /** Record @p count new files at a previously resolved directory. */
    void addFilesAt(DirRef dir, std::uint64_t count = 1);

    /** Files directly inside @p path; 0 when the directory is missing. */
    std::uint64_t filesAt(std::string_view path) const;

    /** Files in the whole subtree rooted at @p path. */
    std::uint64_t filesUnder(std::string_view path) const;

    /** Number of directories in the subtree (including @p path). */
    std::uint64_t dirsUnder(std::string_view path) const;

    /** Immediate subdirectory names of @p path (sorted). */
    std::vector<std::string> list(std::string_view path) const;

    /** True when @p path names an existing directory. */
    bool exists(std::string_view path) const;

  private:
    struct Node
    {
        std::uint64_t files = 0;
        /** Transparent comparator: lookups take string_view directly. */
        std::map<std::string, std::unique_ptr<Node>, std::less<>>
            children;
    };

    Node *resolve(std::string_view path, bool create);
    const Node *resolveConst(std::string_view path) const;

    static std::uint64_t countFiles(const Node &node);
    static std::uint64_t countDirs(const Node &node);

    std::unique_ptr<Node> root_;
};

} // namespace smartconf::dfs

#endif // SMARTCONF_DFS_NAMESPACE_TREE_H_
