#include "dfs/namespace_tree.h"

namespace smartconf::dfs {

namespace {

/**
 * Yield the next '/'-separated component of @p path starting at
 * @p pos, advancing @p pos past it.  Returns an empty view when the
 * path is exhausted.  Views alias @p path — no copies are made.
 */
std::string_view
nextComponent(std::string_view path, std::size_t &pos)
{
    while (pos < path.size() && path[pos] == '/')
        ++pos;
    const std::size_t start = pos;
    while (pos < path.size() && path[pos] != '/')
        ++pos;
    return path.substr(start, pos - start);
}

} // namespace

NamespaceTree::NamespaceTree() : root_(std::make_unique<Node>()) {}

NamespaceTree::Node *
NamespaceTree::resolve(std::string_view path, bool create)
{
    Node *node = root_.get();
    std::size_t pos = 0;
    for (std::string_view part = nextComponent(path, pos); !part.empty();
         part = nextComponent(path, pos)) {
        auto it = node->children.find(part);
        if (it == node->children.end()) {
            if (!create)
                return nullptr;
            it = node->children
                     .emplace(std::string(part),
                              std::make_unique<Node>())
                     .first;
        }
        node = it->second.get();
    }
    return node;
}

const NamespaceTree::Node *
NamespaceTree::resolveConst(std::string_view path) const
{
    const Node *node = root_.get();
    std::size_t pos = 0;
    for (std::string_view part = nextComponent(path, pos); !part.empty();
         part = nextComponent(path, pos)) {
        const auto it = node->children.find(part);
        if (it == node->children.end())
            return nullptr;
        node = it->second.get();
    }
    return node;
}

void
NamespaceTree::makeDirs(std::string_view path)
{
    resolve(path, true);
}

NamespaceTree::DirRef
NamespaceTree::dirRef(std::string_view path)
{
    return DirRef(resolve(path, true));
}

void
NamespaceTree::addFiles(std::string_view path, std::uint64_t count)
{
    resolve(path, true)->files += count;
}

void
NamespaceTree::addFilesAt(DirRef dir, std::uint64_t count)
{
    dir.node_->files += count;
}

std::uint64_t
NamespaceTree::filesAt(std::string_view path) const
{
    const Node *node = resolveConst(path);
    return node ? node->files : 0;
}

std::uint64_t
NamespaceTree::countFiles(const Node &node)
{
    std::uint64_t total = node.files;
    for (const auto &[name, child] : node.children)
        total += countFiles(*child);
    return total;
}

std::uint64_t
NamespaceTree::countDirs(const Node &node)
{
    std::uint64_t total = 1;
    for (const auto &[name, child] : node.children)
        total += countDirs(*child);
    return total;
}

std::uint64_t
NamespaceTree::filesUnder(std::string_view path) const
{
    const Node *node = resolveConst(path);
    return node ? countFiles(*node) : 0;
}

std::uint64_t
NamespaceTree::dirsUnder(std::string_view path) const
{
    const Node *node = resolveConst(path);
    return node ? countDirs(*node) : 0;
}

std::vector<std::string>
NamespaceTree::list(std::string_view path) const
{
    std::vector<std::string> out;
    const Node *node = resolveConst(path);
    if (!node)
        return out;
    out.reserve(node->children.size());
    for (const auto &[name, child] : node->children)
        out.push_back(name);
    return out;
}

bool
NamespaceTree::exists(std::string_view path) const
{
    return resolveConst(path) != nullptr;
}

} // namespace smartconf::dfs
