#include "dfs/namespace_tree.h"

#include <algorithm>
#include <cassert>

namespace smartconf::dfs {

namespace {

/**
 * Yield the next '/'-separated component of @p path starting at
 * @p pos, advancing @p pos past it.  Returns an empty view when the
 * path is exhausted.  Views alias @p path — no copies are made.
 */
std::string_view
nextComponent(std::string_view path, std::size_t &pos)
{
    while (pos < path.size() && path[pos] == '/')
        ++pos;
    const std::size_t start = pos;
    while (pos < path.size() && path[pos] != '/')
        ++pos;
    return path.substr(start, pos - start);
}

/** FNV-1a over the segment bytes. */
std::uint64_t
hashSegment(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Mix a (parent, segment) pair into a table hash. */
std::uint64_t
hashChildKey(std::uint32_t parent, std::uint32_t segment)
{
    std::uint64_t h = (static_cast<std::uint64_t>(parent) << 32) | segment;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
}

constexpr std::size_t kInitialSlots = 64; // both tables; power of two

} // namespace

NamespaceTree::NamespaceTree()
{
    nodes_.emplace_back(); // index 0 is the root
    child_slots_.resize(kInitialSlots);
    segment_slots_.assign(kInitialSlots, 0);
}

std::uint32_t
NamespaceTree::findSegment(std::string_view name) const
{
    const std::size_t mask = segment_slots_.size() - 1;
    std::size_t i = hashSegment(name) & mask;
    while (true) {
        const std::uint32_t slot = segment_slots_[i];
        if (slot == 0)
            return kNil;
        if (segments_[slot - 1] == name)
            return slot - 1;
        i = (i + 1) & mask;
    }
}

std::uint32_t
NamespaceTree::internSegment(std::string_view name)
{
    const std::uint32_t found = findSegment(name);
    if (found != kNil)
        return found;

    // Grow at 70% load so probes stay short.
    if ((segments_.size() + 1) * 10 >= segment_slots_.size() * 7) {
        std::vector<std::uint32_t> bigger(segment_slots_.size() * 2, 0);
        const std::size_t mask = bigger.size() - 1;
        for (std::uint32_t id = 0;
             id < static_cast<std::uint32_t>(segments_.size()); ++id) {
            std::size_t i = hashSegment(segments_[id]) & mask;
            while (bigger[i] != 0)
                i = (i + 1) & mask;
            bigger[i] = id + 1;
        }
        segment_slots_ = std::move(bigger);
    }

    const auto id = static_cast<std::uint32_t>(segments_.size());
    segments_.emplace_back(name);
    const std::size_t mask = segment_slots_.size() - 1;
    std::size_t i = hashSegment(name) & mask;
    while (segment_slots_[i] != 0)
        i = (i + 1) & mask;
    segment_slots_[i] = id + 1;
    return id;
}

std::uint32_t
NamespaceTree::findChild(std::uint32_t parent,
                         std::uint32_t segment) const
{
    const std::size_t mask = child_slots_.size() - 1;
    std::size_t i = hashChildKey(parent, segment) & mask;
    while (true) {
        const ChildSlot &slot = child_slots_[i];
        if (slot.parent == kNil)
            return kNil;
        if (slot.parent == parent && slot.segment == segment)
            return slot.child;
        i = (i + 1) & mask;
    }
}

void
NamespaceTree::growChildTable()
{
    std::vector<ChildSlot> bigger(child_slots_.size() * 2);
    const std::size_t mask = bigger.size() - 1;
    for (const ChildSlot &slot : child_slots_) {
        if (slot.parent == kNil)
            continue;
        std::size_t i = hashChildKey(slot.parent, slot.segment) & mask;
        while (bigger[i].parent != kNil)
            i = (i + 1) & mask;
        bigger[i] = slot;
    }
    child_slots_ = std::move(bigger);
}

std::uint32_t
NamespaceTree::addChild(std::uint32_t parent, std::uint32_t segment)
{
    if ((child_count_ + 1) * 10 >= child_slots_.size() * 7)
        growChildTable();

    const auto child = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
    Node &node = nodes_.back();
    node.segment = segment;
    node.next_sibling = nodes_[parent].first_child;
    nodes_[parent].first_child = child;

    const std::size_t mask = child_slots_.size() - 1;
    std::size_t i = hashChildKey(parent, segment) & mask;
    while (child_slots_[i].parent != kNil)
        i = (i + 1) & mask;
    child_slots_[i] = ChildSlot{parent, segment, child};
    ++child_count_;
    return child;
}

std::uint32_t
NamespaceTree::resolve(std::string_view path, bool create)
{
    std::uint32_t node = 0;
    std::size_t pos = 0;
    for (std::string_view part = nextComponent(path, pos); !part.empty();
         part = nextComponent(path, pos)) {
        const std::uint32_t segment =
            create ? internSegment(part) : findSegment(part);
        if (segment == kNil)
            return kNil; // segment never seen anywhere: path absent
        std::uint32_t child = findChild(node, segment);
        if (child == kNil) {
            if (!create)
                return kNil;
            child = addChild(node, segment);
        }
        node = child;
    }
    return node;
}

std::uint32_t
NamespaceTree::resolveConst(std::string_view path) const
{
    // resolve(create=false) mutates nothing; share the walk.
    return const_cast<NamespaceTree *>(this)->resolve(path, false);
}

void
NamespaceTree::makeDirs(std::string_view path)
{
    resolve(path, true);
}

NamespaceTree::DirRef
NamespaceTree::dirRef(std::string_view path)
{
    return DirRef(&nodes_[resolve(path, true)]);
}

void
NamespaceTree::addFiles(std::string_view path, std::uint64_t count)
{
    nodes_[resolve(path, true)].files += count;
}

void
NamespaceTree::addFilesAt(DirRef dir, std::uint64_t count)
{
    dir.node_->files += count;
}

std::uint64_t
NamespaceTree::filesAt(std::string_view path) const
{
    const std::uint32_t node = resolveConst(path);
    return node != kNil ? nodes_[node].files : 0;
}

std::uint64_t
NamespaceTree::countFiles(std::uint32_t node) const
{
    std::uint64_t total = nodes_[node].files;
    for (std::uint32_t child = nodes_[node].first_child; child != kNil;
         child = nodes_[child].next_sibling)
        total += countFiles(child);
    return total;
}

std::uint64_t
NamespaceTree::countDirs(std::uint32_t node) const
{
    std::uint64_t total = 1;
    for (std::uint32_t child = nodes_[node].first_child; child != kNil;
         child = nodes_[child].next_sibling)
        total += countDirs(child);
    return total;
}

std::uint64_t
NamespaceTree::filesUnder(std::string_view path) const
{
    const std::uint32_t node = resolveConst(path);
    return node != kNil ? countFiles(node) : 0;
}

std::uint64_t
NamespaceTree::dirsUnder(std::string_view path) const
{
    const std::uint32_t node = resolveConst(path);
    return node != kNil ? countDirs(node) : 0;
}

std::vector<std::string>
NamespaceTree::list(std::string_view path) const
{
    std::vector<std::string> out;
    const std::uint32_t node = resolveConst(path);
    if (node == kNil)
        return out;
    for (std::uint32_t child = nodes_[node].first_child; child != kNil;
         child = nodes_[child].next_sibling)
        out.push_back(segments_[nodes_[child].segment]);
    std::sort(out.begin(), out.end());
    return out;
}

bool
NamespaceTree::exists(std::string_view path) const
{
    return resolveConst(path) != kNil;
}

} // namespace smartconf::dfs
