#include "dfs/namespace_tree.h"

namespace smartconf::dfs {

NamespaceTree::NamespaceTree() : root_(std::make_unique<Node>()) {}

std::vector<std::string>
NamespaceTree::split(const std::string &path)
{
    std::vector<std::string> parts;
    std::string current;
    for (const char c : path) {
        if (c == '/') {
            if (!current.empty()) {
                parts.push_back(current);
                current.clear();
            }
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty())
        parts.push_back(current);
    return parts;
}

NamespaceTree::Node *
NamespaceTree::resolve(const std::string &path, bool create)
{
    Node *node = root_.get();
    for (const auto &part : split(path)) {
        auto it = node->children.find(part);
        if (it == node->children.end()) {
            if (!create)
                return nullptr;
            it = node->children
                     .emplace(part, std::make_unique<Node>())
                     .first;
        }
        node = it->second.get();
    }
    return node;
}

const NamespaceTree::Node *
NamespaceTree::resolveConst(const std::string &path) const
{
    const Node *node = root_.get();
    for (const auto &part : split(path)) {
        const auto it = node->children.find(part);
        if (it == node->children.end())
            return nullptr;
        node = it->second.get();
    }
    return node;
}

void
NamespaceTree::makeDirs(const std::string &path)
{
    resolve(path, true);
}

void
NamespaceTree::addFiles(const std::string &path, std::uint64_t count)
{
    resolve(path, true)->files += count;
}

std::uint64_t
NamespaceTree::filesAt(const std::string &path) const
{
    const Node *node = resolveConst(path);
    return node ? node->files : 0;
}

std::uint64_t
NamespaceTree::countFiles(const Node &node)
{
    std::uint64_t total = node.files;
    for (const auto &[name, child] : node.children)
        total += countFiles(*child);
    return total;
}

std::uint64_t
NamespaceTree::countDirs(const Node &node)
{
    std::uint64_t total = 1;
    for (const auto &[name, child] : node.children)
        total += countDirs(*child);
    return total;
}

std::uint64_t
NamespaceTree::filesUnder(const std::string &path) const
{
    const Node *node = resolveConst(path);
    return node ? countFiles(*node) : 0;
}

std::uint64_t
NamespaceTree::dirsUnder(const std::string &path) const
{
    const Node *node = resolveConst(path);
    return node ? countDirs(*node) : 0;
}

std::vector<std::string>
NamespaceTree::list(const std::string &path) const
{
    std::vector<std::string> out;
    const Node *node = resolveConst(path);
    if (!node)
        return out;
    out.reserve(node->children.size());
    for (const auto &[name, child] : node->children)
        out.push_back(name);
    return out;
}

bool
NamespaceTree::exists(const std::string &path) const
{
    return resolveConst(path) != nullptr;
}

} // namespace smartconf::dfs
