/**
 * @file
 * Regenerates the empirical-study tables (paper Tables 2-5) and the
 * Sec. 2.2 headline statistics from the reproduced issue/post dataset.
 */

#include <cstdio>

#include "study/tables.h"

int
main()
{
    using namespace smartconf::study;
    const StudyDataset ds = StudyDataset::paper();

    std::printf("=============================================================\n");
    std::printf("SmartConf reproduction -- empirical study (paper Sec. 2)\n");
    std::printf("=============================================================\n\n");
    std::printf("%s\n", formatTable2(ds).c_str());
    std::printf("%s\n", formatTable3(ds).c_str());
    std::printf("%s\n", formatTable4(ds).c_str());
    std::printf("%s\n", formatTable5(ds).c_str());
    std::printf("%s\n", formatHeadlines(ds).c_str());
    return 0;
}
