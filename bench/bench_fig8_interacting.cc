/**
 * @file
 * Regenerates Figure 8: two interacting PerfConfs — HB3813's request
 * queue and HB6728's response queue — sharing one super-hard memory
 * goal.  A write workload runs alone for 50 s, then a read workload
 * joins; the two controllers split the error (interaction factor 2)
 * and the heap constraint holds throughout.
 *
 * The coupled simulation cannot be decomposed into per-scenario runs,
 * so it executes as a single custom SweepRunner job (`--jobs` is
 * accepted for CLI uniformity; the sweep has one job).  The job packs
 * its three curves into a ScenarioResult: perf_series = used memory,
 * conf_series = max.queue.size, tradeoff_series =
 * response.queue.maxsize.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/smartconf.h"
#include "exec/sweep.h"
#include "kvstore/server.h"
#include "scenarios/hb3813.h"
#include "sim/metrics.h"
#include "workload/ycsb.h"

namespace {

/** The Fig. 8 coupled run; @p interaction_out gets the factor N. */
smartconf::scenarios::ScenarioResult
runInteracting(std::size_t *interaction_out)
{
    using namespace smartconf;
    using namespace smartconf::scenarios;

    Hb3813Scenario donor;
    const ProfileSummary model = donor.profile(42);

    SmartConfRuntime rt;
    rt.declareConf({"max.queue.size", "mem", 0.0, 0.0, 5000.0});
    rt.declareConf({"response.queue.maxsize", "mem", 8.0, 1.0,
                    5000.0});
    Goal goal;
    goal.metric = "mem";
    goal.value = 495.0;
    goal.superHard = true;
    goal.hard = true;
    rt.declareGoal(goal);
    rt.installProfile("max.queue.size", model);
    rt.installProfile("response.queue.maxsize", model);

    SmartConfI req(rt, "max.queue.size");
    SmartConfI resp(rt, "response.queue.maxsize");

    kvstore::KvServerParams sp;
    sp.heap_mb = 495.0;
    sp.request_queue_items = 0;
    sp.response_queue_mb = 8.0;
    sp.other_base_mb = 150.0;
    sp.other_walk_mb = 5.0;
    sp.other_max_mb = 220.0;
    kvstore::KvServer server(sp, sim::Rng(7));

    workload::YcsbParams wp;
    wp.write_fraction = 1.0;
    wp.ops_per_tick = 18.0; // above the service rate: queues back up
    workload::YcsbGenerator gen(wp, sim::Rng(8));

    ScenarioResult out;
    out.scenario_id = "HB3813+HB6728";
    out.policy_label = "SmartConf x2";
    out.perf_series = sim::TimeSeries("used_memory_mb");
    out.conf_series = sim::TimeSeries("max.queue.size");
    out.tradeoff_series = sim::TimeSeries("response.queue.maxsize");

    const sim::Tick total = 2400;
    std::vector<workload::Op> ops;
    for (sim::Tick t = 0; t < total; ++t) {
        if (t == 500) {
            auto p = gen.params();
            p.write_fraction = 0.5; // reads join at 50 s
            p.request_size_mb = 1.5;
            gen.setParams(p);
        }
        gen.tickInto(ops);
        server.accept(ops, t);
        server.step(t);
        const double mem = server.heap().usedMb();

        req.setPerf(mem, static_cast<double>(
                             server.requestQueue().size()));
        server.requestQueue().setMaxItems(static_cast<std::size_t>(
            std::max(0, req.getConf())));
        resp.setPerf(server.heap().usedMb(),
                     server.responseQueue().bytesMb());
        server.responseQueue().setMaxMb(
            std::max(1.0, resp.getConfReal()));

        out.perf_series.record(t, mem);
        out.conf_series.record(
            t, static_cast<double>(server.requestQueue().maxItems()));
        out.tradeoff_series.record(t, server.responseQueue().maxMb());
    }

    out.goal_value = 495.0;
    out.worst_goal_metric = out.perf_series.max();
    out.violated = server.crashed();
    *interaction_out = rt.coordinator().interactionCount("mem");
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace smartconf;
    using namespace smartconf::scenarios;
    using smartconf::exec::SweepJob;

    const smartconf::exec::SweepArgs args =
        smartconf::exec::parseSweepArgs(argc, argv);
    smartconf::exec::SweepRunner runner(args.sweep);

    std::size_t interaction = 0;
    const std::vector<ScenarioResult> results = runner.run(
        {SweepJob::custom("HB3813+HB6728/fig8|smart_x2|s=7",
                          [&interaction] {
                              return runInteracting(&interaction);
                          })});
    const ScenarioResult &run = results[0];

    std::printf("Figure 8. SmartConf adjusts two related PerfConfs "
                "(reads join at 50 s)\n\n");
    std::printf("interaction factor N = %zu (super-hard goal)\n\n",
                interaction);
    std::printf("%8s | %12s | %16s %22s\n", "time(s)", "mem(MB)",
                "max.queue.size", "response.queue.maxsize");
    std::printf("%s\n", std::string(66, '-').c_str());
    const auto m = run.perf_series.downsampleMax(24);
    const auto q = run.conf_series.downsampleMax(24);
    const auto r = run.tradeoff_series.downsampleMax(24);
    for (std::size_t i = 0; i < m.size(); ++i) {
        std::printf("%8.1f | %12.1f | %16.0f %22.1f\n",
                    m[i].tick / 10.0, m[i].value,
                    i < q.size() ? q[i].value : 0.0,
                    i < r.size() ? r[i].value : 0.0);
    }

    std::printf("\nworst memory: %.1f MB vs constraint 495 MB -> %s\n",
                run.worst_goal_metric,
                run.violated ? "VIOLATED" : "never violated");
    std::printf("(paper: at no time is the memory constraint violated; "
                "the two queue\nbounds trade capacity as the mix "
                "shifts)\n");

    std::fprintf(stderr, "[sweep] jobs=%zu wall=%.1f ms runs=1\n",
                 runner.jobs(), runner.lastWallMs());
    return 0;
}
