/**
 * @file
 * Fleet-scale multi-tenant benchmark
 * (`bench_fleet --json > BENCH_fleet.json`).
 *
 * Sweeps the tenant count (default 1k and 10k; `--tenants` takes a
 * comma list up to 100k+) through runFleet(): every tenant runs its
 * own SmartConf loop, capacity-class tenants coordinate under
 * cluster-wide super-hard goals, and traffic is Zipf-skewed across
 * tenants with archetype-staggered diurnal phases.  Each size is also
 * run with controllers disabled (confs pinned at the scenario patch
 * defaults) so the violation-rate delta the controllers buy is part
 * of the tracked payload.
 *
 * Reported per size: per-tenant goal-violation rates (mean / p99 /
 * fraction of tenants ever violating), convergence time (p50 / p99
 * ticks to settle into the goal band), coordinator cost (attach
 * re-assertions, fan-outs, serial wall time per epoch) and an
 * end-state checksum.  Every non-wall field is a pure function of
 * (params, seed) — byte-identical at any `--jobs x --shard-workers`
 * combination — so the payload participates in check_regression's
 * determinism sha exactly like the sweep bench.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/sweep.h"
#include "exec/thread_pool.h"
#include "fleet/fleet.h"
#include "sim/kernels.h"
#include "sim/shard.h"
#include "sim/simd.h"

namespace {

std::vector<std::uint32_t>
parseTenantList(const char *arg)
{
    std::vector<std::uint32_t> out;
    const char *p = arg;
    while (*p) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(p, &end, 10);
        if (end == p || v == 0) {
            std::fprintf(stderr,
                         "bench_fleet: bad --tenants list '%s'\n", arg);
            std::exit(2);
        }
        out.push_back(static_cast<std::uint32_t>(v));
        p = *end == ',' ? end + 1 : end;
    }
    if (out.empty()) {
        std::fprintf(stderr, "bench_fleet: empty --tenants list\n");
        std::exit(2);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace smartconf;

    const exec::SweepArgs args = exec::parseSweepArgs(argc, argv);
    sim::setShardWorkers(args.shard_workers);

    std::vector<std::uint32_t> tenant_counts = {1000, 10000};
    fleet::FleetParams base;
    for (int i = 1; i < argc; ++i) {
        const auto intArg = [&](const char *flag,
                                const char *name) -> long {
            const char *v = argv[i] + std::strlen(flag);
            if (*v == '=') {
                ++v;
            } else if (i + 1 < argc) {
                v = argv[++i];
            } else {
                std::fprintf(stderr, "bench_fleet: %s needs a value\n",
                             name);
                std::exit(2);
            }
            return std::atol(v);
        };
        if (std::strncmp(argv[i], "--tenants", 9) == 0 &&
            (argv[i][9] == '\0' || argv[i][9] == '=')) {
            const char *v = argv[i] + 9;
            if (*v == '=') {
                ++v;
            } else if (i + 1 < argc) {
                v = argv[++i];
            } else {
                std::fprintf(stderr,
                             "bench_fleet: --tenants needs a value\n");
                return 2;
            }
            tenant_counts = parseTenantList(v);
        } else if (std::strncmp(argv[i], "--ticks", 7) == 0 &&
                   (argv[i][7] == '\0' || argv[i][7] == '=')) {
            base.ticks =
                static_cast<sim::Tick>(intArg("--ticks", "--ticks"));
        } else if (std::strncmp(argv[i], "--seed", 6) == 0 &&
                   (argv[i][6] == '\0' || argv[i][6] == '=')) {
            base.seed =
                static_cast<std::uint64_t>(intArg("--seed", "--seed"));
        }
    }

    // Resolve the executor exactly like SweepRunner: 0 = hardware
    // concurrency, 1 = inline (the shard pool may still fan out when
    // --shard-workers > 1), N > 1 = dedicated pool.
    std::size_t jobs = args.sweep.jobs;
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0)
            jobs = 1;
    }
    std::unique_ptr<exec::ThreadPool> pool;
    if (jobs > 1)
        pool = std::make_unique<exec::ThreadPool>(jobs);

    struct Sweep
    {
        fleet::FleetResult smart;
        fleet::FleetResult pinned;
    };
    std::vector<Sweep> sweeps;
    for (const std::uint32_t n : tenant_counts) {
        fleet::FleetParams p = base;
        p.tenants = n;
        p.pool = pool.get();
        Sweep s;
        p.smart = true;
        s.smart = fleet::runFleet(p);
        p.smart = false;
        s.pinned = fleet::runFleet(p);
        sweeps.push_back(std::move(s));
    }

    if (args.json) {
        std::printf("{\n");
        std::printf("  \"bench\": \"bench_fleet\",\n");
        std::printf("  \"host\": {\"cpus\": %u, \"isa_detected\": "
                    "\"%s\", \"isa_active\": \"%s\", \"compiler\": "
                    "\"%s\"},\n",
                    std::thread::hardware_concurrency(),
                    sim::simd::name(sim::simd::detected()),
                    sim::simd::name(sim::kernels::activeIsa()),
                    __VERSION__);
        std::printf("  \"jobs\": %zu,\n", jobs);
        std::printf("  \"shard_workers\": %zu,\n", args.shard_workers);
        std::printf("  \"seed\": %llu,\n",
                    static_cast<unsigned long long>(base.seed));
        std::printf("  \"ticks\": %lld,\n",
                    static_cast<long long>(base.ticks));
        std::printf("  \"sweeps\": [\n");
        for (std::size_t i = 0; i < sweeps.size(); ++i) {
            const fleet::FleetResult &r = sweeps[i].smart;
            const fleet::FleetResult &st = sweeps[i].pinned;
            std::printf("    {\n");
            std::printf("      \"tenants\": %llu,\n",
                        static_cast<unsigned long long>(r.tenants));
            std::printf("      \"epochs\": %llu,\n",
                        static_cast<unsigned long long>(r.epochs));
            std::printf("      \"clusters\": %llu,\n",
                        static_cast<unsigned long long>(r.clusters));
            std::printf(
                "      \"clustered_tenants\": %llu,\n",
                static_cast<unsigned long long>(r.clustered_tenants));
            std::printf("      \"max_interaction\": %.1f,\n",
                        r.max_interaction);
            std::printf("      \"violation_rate_mean\": %.9f,\n",
                        r.violation_rate_mean);
            std::printf("      \"violation_rate_p99\": %.9f,\n",
                        r.violation_rate_p99);
            std::printf("      \"tenants_violated_frac\": %.9f,\n",
                        r.tenants_violated_frac);
            std::printf("      \"convergence_p50_ticks\": %.1f,\n",
                        r.convergence_p50_ticks);
            std::printf("      \"convergence_p99_ticks\": %.1f,\n",
                        r.convergence_p99_ticks);
            std::printf("      \"mean_conf_rel\": %.9f,\n",
                        r.mean_conf_rel);
            std::printf("      \"static_violation_rate_mean\": %.9f,\n",
                        st.violation_rate_mean);
            std::printf("      \"static_violation_rate_p99\": %.9f,\n",
                        st.violation_rate_p99);
            std::printf(
                "      \"coord_attach_calls\": %llu,\n",
                static_cast<unsigned long long>(r.coord.attach_calls));
            std::printf(
                "      \"coord_fanouts\": %llu,\n",
                static_cast<unsigned long long>(r.coord.fanouts));
            std::printf("      \"coord_aggregate_violations\": %llu,\n",
                        static_cast<unsigned long long>(
                            r.coord.aggregate_violations));
            std::printf("      \"coord_epoch_wall_ms\": %.6f,\n",
                        r.coord.epochs
                            ? r.coord.wall_ms /
                                  static_cast<double>(r.coord.epochs)
                            : 0.0);
            std::printf("      \"wall_ms\": %.3f,\n", r.wall_ms);
            std::printf("      \"checksum\": \"0x%016llx\",\n",
                        static_cast<unsigned long long>(r.checksum));
            std::printf("      \"per_archetype\": [\n");
            for (std::size_t a = 0; a < r.per_archetype.size(); ++a) {
                const fleet::ArchetypeRow &row = r.per_archetype[a];
                std::printf(
                    "        {\"id\": \"%s\", \"tenants\": %llu, "
                    "\"violation_rate\": %.9f, \"mean_conf_rel\": "
                    "%.9f}%s\n",
                    row.scenario_id.c_str(),
                    static_cast<unsigned long long>(row.tenants),
                    row.violation_rate, row.mean_conf_rel,
                    a + 1 < r.per_archetype.size() ? "," : "");
            }
            std::printf("      ]\n");
            std::printf("    }%s\n",
                        i + 1 < sweeps.size() ? "," : "");
        }
        std::printf("  ]\n}\n");
        return 0;
    }

    std::printf("Fleet-scale multi-tenant benchmark\n\n");
    std::printf("workers (--jobs): %zu, shard workers: %zu, seed: "
                "%llu, ticks: %lld\n\n",
                jobs, args.shard_workers,
                static_cast<unsigned long long>(base.seed),
                static_cast<long long>(base.ticks));
    std::printf("%-8s %9s %9s %12s %10s %10s %12s %11s\n", "tenants",
                "viol.mean", "viol.p99", "static.mean", "conv.p50",
                "conv.p99", "coord ms/ep", "max N");
    std::printf("%s\n", std::string(88, '-').c_str());
    for (const Sweep &s : sweeps) {
        const fleet::FleetResult &r = s.smart;
        std::printf("%-8llu %9.4f %9.4f %12.4f %10.0f %10.0f %12.4f "
                    "%11.0f\n",
                    static_cast<unsigned long long>(r.tenants),
                    r.violation_rate_mean, r.violation_rate_p99,
                    s.pinned.violation_rate_mean,
                    r.convergence_p50_ticks, r.convergence_p99_ticks,
                    r.coord.epochs
                        ? r.coord.wall_ms /
                              static_cast<double>(r.coord.epochs)
                        : 0.0,
                    r.max_interaction);
    }
    std::printf("\nper-archetype (largest sweep):\n");
    const fleet::FleetResult &last = sweeps.back().smart;
    for (const fleet::ArchetypeRow &row : last.per_archetype)
        std::printf("  %-8s tenants %6llu  viol %7.4f  conf/default "
                    "%6.3f\n",
                    row.scenario_id.c_str(),
                    static_cast<unsigned long long>(row.tenants),
                    row.violation_rate, row.mean_conf_rel);
    std::printf("\nwall: ");
    for (std::size_t i = 0; i < sweeps.size(); ++i)
        std::printf("%s%llu tenants %.1f ms", i ? ", " : "",
                    static_cast<unsigned long long>(
                        sweeps[i].smart.tenants),
                    sweeps[i].smart.wall_ms);
    std::printf("\n");
    return 0;
}
