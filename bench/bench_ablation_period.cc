/**
 * @file
 * Design-choice ablation: control invocation frequency.
 *
 * SmartConf is invoked wherever the software *uses* the configuration
 * (paper Sec. 4.2) — for HB3813 that is effectively every enqueue.
 * This bench stretches the invocation period on HB3813 and shows how
 * reaction latency erodes the hard-constraint guarantee: with 495 MB
 * of heap and bursts growing the queue by tens of MB per second, a
 * controller consulted once every few seconds reacts too late.
 *
 * The six period variants are independent simulations, fanned out over
 * a SweepRunner (`--jobs N`; each variant gets its own per-job
 * scenario instance, keyed "HB3813/period=P" in the run cache).
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "exec/sweep.h"
#include "scenarios/hb3813.h"

int
main(int argc, char **argv)
{
    using namespace smartconf::scenarios;
    using smartconf::exec::SweepJob;

    const smartconf::exec::SweepArgs args =
        smartconf::exec::parseSweepArgs(argc, argv);
    smartconf::exec::SweepRunner runner(args.sweep);

    const std::vector<int> periods = {1, 2, 5, 10, 20, 50};
    std::vector<SweepJob> jobs;
    for (const int period : periods) {
        auto factory = [period] {
            Hb3813Options opts;
            opts.control_period = period;
            return std::unique_ptr<Scenario>(new Hb3813Scenario(opts));
        };
        jobs.push_back(SweepJob::forFactory(
            "HB3813/period=" + std::to_string(period), factory,
            Policy::smart(), 1));
    }
    const std::vector<ScenarioResult> results = runner.run(jobs);

    std::printf("Ablation: control period (HB3813, tick = 0.1 s)\n\n");
    std::printf("%12s | %6s %12s %10s %10s\n", "period (s)", "OOM?",
                "crash t(s)", "worst MB", "ops/s");
    std::printf("%s\n", std::string(58, '-').c_str());

    for (std::size_t i = 0; i < periods.size(); ++i) {
        const ScenarioResult &r = results[i];
        std::printf("%12.1f | %6s %12.1f %10.1f %10.1f\n",
                    periods[i] / 10.0, r.violated ? "YES" : "no",
                    r.violation_time_s, r.worst_goal_metric,
                    r.raw_tradeoff);
    }

    std::printf("\nInvoking the controller at every use (the paper's "
                "design) keeps the\nburst overshoot inside the virtual-"
                "goal margin; stretching the period\nlets bursts outrun "
                "the controller.\n");

    const auto cs = runner.cache().stats();
    std::fprintf(stderr,
                 "[sweep] jobs=%zu wall=%.1f ms runs=%zu  cache: %llu "
                 "hits / %llu misses\n",
                 runner.jobs(), runner.lastWallMs(), jobs.size(),
                 static_cast<unsigned long long>(cs.hits),
                 static_cast<unsigned long long>(cs.misses));
    return 0;
}
