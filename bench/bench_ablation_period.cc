/**
 * @file
 * Design-choice ablation: control invocation frequency.
 *
 * SmartConf is invoked wherever the software *uses* the configuration
 * (paper Sec. 4.2) — for HB3813 that is effectively every enqueue.
 * This bench stretches the invocation period on HB3813 and shows how
 * reaction latency erodes the hard-constraint guarantee: with 495 MB
 * of heap and bursts growing the queue by tens of MB per second, a
 * controller consulted once every few seconds reacts too late.
 */

#include <cstdio>
#include <string>

#include "scenarios/hb3813.h"

int
main()
{
    using namespace smartconf::scenarios;

    std::printf("Ablation: control period (HB3813, tick = 0.1 s)\n\n");
    std::printf("%12s | %6s %12s %10s %10s\n", "period (s)", "OOM?",
                "crash t(s)", "worst MB", "ops/s");
    std::printf("%s\n", std::string(58, '-').c_str());

    for (int period : {1, 2, 5, 10, 20, 50}) {
        Hb3813Options opts;
        opts.control_period = period;
        Hb3813Scenario scenario(opts);
        const ScenarioResult r = scenario.run(Policy::smart(), 1);
        std::printf("%12.1f | %6s %12.1f %10.1f %10.1f\n",
                    period / 10.0, r.violated ? "YES" : "no",
                    r.violation_time_s, r.worst_goal_metric,
                    r.raw_tradeoff);
    }

    std::printf("\nInvoking the controller at every use (the paper's "
                "design) keeps the\nburst overshoot inside the virtual-"
                "goal margin; stretching the period\nlets bursts outrun "
                "the controller.\n");
    return 0;
}
