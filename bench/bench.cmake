# Bench binaries land directly in ${CMAKE_BINARY_DIR}/bench (no
# CMakeFiles pollution: this file is include()d, not add_subdirectory'd)
# so `for b in build/bench/*; do $b; done` runs exactly the benches.
set(SMARTCONF_BENCH_DIR ${CMAKE_CURRENT_LIST_DIR})

function(smartconf_add_bench name source)
    add_executable(${name} ${SMARTCONF_BENCH_DIR}/${source})
    target_link_libraries(${name} PRIVATE smartconf_exec
                                          smartconf_scenarios
                                          smartconf_study)
    set_target_properties(${name} PROPERTIES
        RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

smartconf_add_bench(bench_table2_5_study bench_table2_5_study.cc)
smartconf_add_bench(bench_table6_suite bench_table6_suite.cc)
smartconf_add_bench(bench_table7_loc bench_table7_loc.cc)
smartconf_add_bench(bench_fig5_tradeoff bench_fig5_tradeoff.cc)
smartconf_add_bench(bench_fig6_hb3813 bench_fig6_hb3813.cc)
smartconf_add_bench(bench_fig7_ablation bench_fig7_ablation.cc)
smartconf_add_bench(bench_fig8_interacting bench_fig8_interacting.cc)

smartconf_add_bench(bench_micro_controller bench_micro_controller.cc)
target_link_libraries(bench_micro_controller PRIVATE benchmark::benchmark)
smartconf_add_bench(bench_micro_sim bench_micro_sim.cc)
target_link_libraries(bench_micro_sim PRIVATE benchmark::benchmark)
smartconf_add_bench(bench_micro_exec bench_micro_exec.cc)
target_link_libraries(bench_micro_exec PRIVATE benchmark::benchmark)
# Hand-rolled timing loop (no google-benchmark): check_regression runs
# it on every invocation, so it has to stay fast and JSON-clean.
smartconf_add_bench(bench_micro_kernels bench_micro_kernels.cc)
smartconf_add_bench(bench_ablation_profiling bench_ablation_profiling.cc)
smartconf_add_bench(bench_ablation_period bench_ablation_period.cc)
smartconf_add_bench(bench_limitations bench_limitations.cc)
smartconf_add_bench(bench_sweep bench_sweep.cc)
smartconf_add_bench(bench_store bench_store.cc)
smartconf_add_bench(bench_chaos bench_chaos.cc)
target_link_libraries(bench_chaos PRIVATE smartconf_fault)
smartconf_add_bench(bench_fleet bench_fleet.cc)
target_link_libraries(bench_fleet PRIVATE smartconf_fleet)
