/**
 * @file
 * Regenerates Figure 7: SmartConf vs alternative controller designs on
 * the HB3813 case under a less stable workload — a 0.7W/0.3R mix with
 * a sustained request backlog and an abrupt co-resident allocation (a
 * compaction claiming 150 MB) at 90 s, the paper's "a new process
 * could unexpectedly allocate a huge data structure".
 *
 *   - SmartConf: virtual goal + context-aware poles.
 *   - Single Pole: the same virtual goal but only one conservative
 *     pole (0.9) — the paper's strawman: it reacts slowly in *both*
 *     directions, so it either crashes or cripples throughput.
 *   - No Virtual Goal: context-aware poles targeting the raw 495 MB
 *     constraint — no headroom, so the allocation burst kills it
 *     (the paper reports a JVM crash at ~36 s).
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "exec/sweep.h"
#include "scenarios/hb3813.h"

namespace {

smartconf::scenarios::Hb3813Options
fig7Options()
{
    using namespace smartconf::scenarios;
    Hb3813Options o;
    o.write_fraction = 0.7;  // the unstable 70/30 mix
    o.arrival_base = 16.0;   // sustained backlog
    o.arrival_amp = 3.0;
    o.arrival_amp2 = 1.0;
    o.phase1_ticks = 1800;   // single phase; the burst is the event
    o.total_ticks = 1800;    // 180 s, like the figure
    o.spike_mb = 150.0;      // compaction burst at 90 s
    o.spike_at = 900;
    o.spike_ramp = 30;
    return o;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace smartconf::scenarios;
    using smartconf::exec::SweepJob;

    const smartconf::exec::SweepArgs args =
        smartconf::exec::parseSweepArgs(argc, argv);
    smartconf::exec::SweepRunner runner(args.sweep);

    // Each controller variant gets a private scenario instance, built
    // on the worker that runs it; "HB3813/fig7" keys the non-default
    // workload variant in the run cache.
    auto factory = [] {
        return std::unique_ptr<Scenario>(
            new Hb3813Scenario(fig7Options()));
    };
    const std::vector<SweepJob> jobs = {
        SweepJob::forFactory("HB3813/fig7", factory, Policy::smart(),
                             1),
        SweepJob::forFactory("HB3813/fig7", factory,
                             Policy::singlePole(0.9), 1),
        SweepJob::forFactory("HB3813/fig7", factory,
                             Policy::noVirtualGoal(), 1),
    };
    const std::vector<ScenarioResult> results = runner.run(jobs);

    struct Run
    {
        const char *name;
        ScenarioResult result;
    };
    std::vector<Run> runs;
    runs.push_back({"SmartConf", results[0]});
    runs.push_back({"Single Pole", results[1]});
    runs.push_back({"No Virtual Goal", results[2]});

    std::printf("Figure 7. SmartConf vs. alternative controllers "
                "(HB3813, 0.7W mix,\n150 MB co-resident allocation at "
                "90 s, 180 s run, 495 MB hard limit)\n\n");
    std::printf("%8s | %14s %14s %14s   (used memory, MB)\n", "time(s)",
                runs[0].name, runs[1].name, runs[2].name);
    std::printf("%s\n", std::string(70, '-').c_str());
    const auto a = runs[0].result.perf_series.downsampleMax(18);
    const auto b = runs[1].result.perf_series.downsampleMax(18);
    const auto c = runs[2].result.perf_series.downsampleMax(18);
    auto cell = [](const std::vector<smartconf::sim::TimeSeries::Point>
                       &v, std::size_t i, double t) {
        // A crashed run's series simply ends early.
        if (i < v.size() && v[i].tick <= t + 100)
            return v[i].value;
        return -1.0;
    };
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double t = static_cast<double>(a[i].tick);
        const double vb = cell(b, i, t), vc = cell(c, i, t);
        std::printf("%8.1f | %14.1f ", t / 10.0, a[i].value);
        if (vb >= 0.0)
            std::printf("%14.1f ", vb);
        else
            std::printf("%14s ", "(dead)");
        if (vc >= 0.0)
            std::printf("%14.1f\n", vc);
        else
            std::printf("%14s\n", "(dead)");
    }

    std::printf("\n%-18s %6s %12s %12s %14s\n", "controller", "OOM?",
                "crash t(s)", "worst MB", "ops/s");
    for (const Run &r : runs) {
        std::printf("%-18s %6s %12.1f %12.1f %14.1f\n", r.name,
                    r.result.violated ? "YES" : "no",
                    r.result.violation_time_s,
                    r.result.worst_goal_metric, r.result.raw_tradeoff);
    }
    std::printf(
        "\nSmartConf absorbs the allocation burst and keeps serving; "
        "the single-pole\ncontroller survives only by being so "
        "conservative that throughput drops ~30%%\n(the paper's variant "
        "crashes at ~80 s instead); the no-virtual-goal\ncontroller has "
        "no headroom and dies during the ramp-up or when the\nburst "
        "lands (paper: JVM crash at ~36 s).\n");

    const auto cs = runner.cache().stats();
    std::fprintf(stderr,
                 "[sweep] jobs=%zu wall=%.1f ms runs=%zu  cache: %llu "
                 "hits / %llu misses\n",
                 runner.jobs(), runner.lastWallMs(), jobs.size(),
                 static_cast<unsigned long long>(cs.hits),
                 static_cast<unsigned long long>(cs.misses));
    return 0;
}
