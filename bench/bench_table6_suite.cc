/**
 * @file
 * Regenerates Table 6: the benchmark suite — issue descriptions, the
 * conditional/direct/hard flags and the profiling/evaluation workloads
 * — straight from the scenario registry, so the table cannot drift
 * from what the benches actually run.
 */

#include <cstdio>

#include "scenarios/scenario.h"

int
main()
{
    using namespace smartconf::scenarios;

    std::printf("Table 6. Benchmark suite and workload\n");
    std::printf("(?-?-? = conditional - direct - hard)\n");
    std::printf("%s\n", std::string(100, '-').c_str());
    for (const auto &s : makeAllScenarios()) {
        const ScenarioInfo &i = s->info();
        std::printf("%-8s %c-%c-%c  %s\n", i.id.c_str(),
                    i.conditional ? 'Y' : 'N', i.direct ? 'Y' : 'N',
                    i.hard ? 'Y' : 'N', i.description.c_str());
        std::printf("          constraint: %s; trade-off: %s\n",
                    i.constraint_desc.c_str(), i.tradeoff_desc.c_str());
        std::printf("          profiling: %-28s  phase-1: %-22s "
                    "phase-2: %s\n",
                    i.profiling_workload.c_str(),
                    i.phase1_workload.c_str(),
                    i.phase2_workload.c_str());
        std::printf("          defaults: buggy=%g patch=%g   profiled "
                    "settings:", i.buggy_default, i.patch_default);
        for (const double v : i.profiling_settings)
            std::printf(" %g", v);
        std::printf("\n%s\n", std::string(100, '-').c_str());
    }
    return 0;
}
