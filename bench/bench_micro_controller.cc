/**
 * @file
 * Microbenchmarks for the SmartConf hot path (google-benchmark).
 *
 * The paper argues controller overhead is negligible next to the
 * operations being controlled (RPC handling, flushes, du chunks).
 * These benchmarks quantify that: one controller update is tens of
 * nanoseconds, and full synthesis from a 40-sample profile is
 * microseconds — both invisible at per-request granularity.
 */

#include <benchmark/benchmark.h>

#include "core/controller.h"
#include "core/profiler.h"
#include "core/smartconf.h"
#include "core/sysfile.h"

namespace {

using namespace smartconf;

Goal
memGoal()
{
    Goal g;
    g.metric = "mem";
    g.value = 495.0;
    g.hard = true;
    return g;
}

void
BM_ControllerUpdate(benchmark::State &state)
{
    ControllerParams p;
    p.alpha = 1.2;
    p.pole = 0.6;
    p.lambda = 0.1;
    p.confMax = 1e6;
    Controller c(p, memGoal());
    double conf = 0.0;
    double perf = 100.0;
    for (auto _ : state) {
        conf = c.update(perf, conf);
        perf = 0.9 * perf + 0.1 * conf;
        benchmark::DoNotOptimize(conf);
    }
}
BENCHMARK(BM_ControllerUpdate);

void
BM_SetPerfGetConf(benchmark::State &state)
{
    SmartConfRuntime rt;
    rt.declareConf({"q", "mem", 0.0, 0.0, 1e6});
    rt.declareGoal(memGoal());
    ProfileSummary s;
    s.alpha = 1.0;
    s.lambda = 0.1;
    rt.installProfile("q", s);
    SmartConfI sc(rt, "q");
    double deputy = 100.0;
    for (auto _ : state) {
        sc.setPerf(200.0 + deputy * 0.5, deputy);
        deputy = 0.5 * sc.getConfReal();
        benchmark::DoNotOptimize(deputy);
    }
}
BENCHMARK(BM_SetPerfGetConf);

void
BM_ProfileSynthesis(benchmark::State &state)
{
    std::vector<ProfilePoint> samples;
    for (double setting : {40.0, 80.0, 120.0, 160.0}) {
        for (int i = 0; i < 10; ++i)
            samples.push_back({setting, 200.0 + setting + i});
    }
    for (auto _ : state) {
        Profiler p;
        for (const auto &pt : samples)
            p.record(pt.config, pt.perf);
        const ProfileSummary s = p.summarize();
        benchmark::DoNotOptimize(s.pole);
    }
}
BENCHMARK(BM_ProfileSynthesis);

void
BM_ParseSysFile(benchmark::State &state)
{
    const std::string text =
        "profiling = 0\n"
        "max.queue.size @ memory_consumption_max\n"
        "max.queue.size = 50\n"
        "max.queue.size.min = 0\n"
        "max.queue.size.max = 5000\n"
        "response.queue.maxsize @ memory_consumption_max\n"
        "response.queue.maxsize = 8\n";
    for (auto _ : state) {
        const SysFile f = parseSysFile(text);
        benchmark::DoNotOptimize(f.entries.size());
    }
}
BENCHMARK(BM_ParseSysFile);

void
BM_FormatProfileStore(benchmark::State &state)
{
    ProfileFile f;
    f.conf = "max.queue.size";
    f.summary.alpha = 1.25;
    for (double setting : {40.0, 80.0, 120.0, 160.0}) {
        for (int i = 0; i < 10; ++i)
            f.samples.push_back({setting, 200.0 + setting + i});
    }
    for (auto _ : state) {
        const std::string text = formatProfileFile(f);
        benchmark::DoNotOptimize(text.size());
    }
}
BENCHMARK(BM_FormatProfileStore);

} // namespace

BENCHMARK_MAIN();
