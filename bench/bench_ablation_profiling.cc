/**
 * @file
 * Design-choice ablation: how much profiling does SmartConf need?
 *
 * The paper claims "SmartConf produces effective and robust controllers
 * without intensive profiling" (Sec. 5.5) and uses 4 settings x 10
 * samples everywhere.  This bench sweeps the samples-per-setting budget
 * on HB3813 and reports the synthesized parameters and the outcome of
 * the full two-phase evaluation under each controller.
 *
 * Each budget variant (profile + evaluation run) is one independent
 * SweepRunner job with its own scenario instance (`--jobs N`).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/profiler.h"
#include "exec/sweep.h"
#include "scenarios/hb3813.h"

int
main(int argc, char **argv)
{
    using namespace smartconf::scenarios;
    using smartconf::exec::SweepJob;

    const smartconf::exec::SweepArgs args =
        smartconf::exec::parseSweepArgs(argc, argv);
    smartconf::exec::SweepRunner runner(args.sweep);

    const std::vector<int> budgets = {2, 3, 5, 10, 25, 50};
    std::vector<smartconf::ProfileSummary> profiles(budgets.size());
    std::vector<SweepJob> jobs;
    for (std::size_t i = 0; i < budgets.size(); ++i) {
        const int samples = budgets[i];
        // Each job owns slot i of `profiles` exclusively, so the
        // side-write is race-free.
        jobs.push_back(SweepJob::custom(
            "HB3813/profile_samples=" + std::to_string(samples) +
                "|smart|s=1",
            [samples, i, &profiles] {
                Hb3813Options opts;
                opts.profile_samples = samples;
                Hb3813Scenario scenario(opts);
                profiles[i] = scenario.profile(1 ^ 0x70F11E);
                return scenario.run(Policy::smart(), 1);
            }));
    }
    const std::vector<ScenarioResult> results = runner.run(jobs);

    std::printf("Ablation: profiling budget (HB3813, 4 settings x N "
                "samples)\n\n");
    std::printf("%10s | %8s %8s %8s | %6s %10s %10s\n", "samples",
                "alpha", "lambda", "pole", "OOM?", "worst MB",
                "ops/s");
    std::printf("%s\n", std::string(72, '-').c_str());

    for (std::size_t i = 0; i < budgets.size(); ++i) {
        const smartconf::ProfileSummary &p = profiles[i];
        const ScenarioResult &r = results[i];
        std::printf("%10d | %8.3f %8.3f %8.3f | %6s %10.1f %10.1f\n",
                    budgets[i], p.alpha, p.lambda, p.pole,
                    r.violated ? "YES" : "no", r.worst_goal_metric,
                    r.raw_tradeoff);
    }

    std::printf("\nA handful of samples per setting already yields a "
                "safe controller;\nextra profiling refines lambda (the "
                "virtual-goal margin) but does not\nchange the outcome — "
                "the paper's 'no intensive profiling' claim.\n");

    const auto cs = runner.cache().stats();
    std::fprintf(stderr,
                 "[sweep] jobs=%zu wall=%.1f ms runs=%zu  cache: %llu "
                 "hits / %llu misses\n",
                 runner.jobs(), runner.lastWallMs(), jobs.size(),
                 static_cast<unsigned long long>(cs.hits),
                 static_cast<unsigned long long>(cs.misses));
    return 0;
}
