/**
 * @file
 * Design-choice ablation: how much profiling does SmartConf need?
 *
 * The paper claims "SmartConf produces effective and robust controllers
 * without intensive profiling" (Sec. 5.5) and uses 4 settings x 10
 * samples everywhere.  This bench sweeps the samples-per-setting budget
 * on HB3813 and reports the synthesized parameters and the outcome of
 * the full two-phase evaluation under each controller.
 */

#include <cstdio>
#include <string>

#include "scenarios/hb3813.h"

int
main()
{
    using namespace smartconf::scenarios;

    std::printf("Ablation: profiling budget (HB3813, 4 settings x N "
                "samples)\n\n");
    std::printf("%10s | %8s %8s %8s | %6s %10s %10s\n", "samples",
                "alpha", "lambda", "pole", "OOM?", "worst MB",
                "ops/s");
    std::printf("%s\n", std::string(72, '-').c_str());

    for (int samples : {2, 3, 5, 10, 25, 50}) {
        Hb3813Options opts;
        opts.profile_samples = samples;
        Hb3813Scenario scenario(opts);
        const smartconf::ProfileSummary p = scenario.profile(1 ^
                                                             0x70F11E);
        const ScenarioResult r = scenario.run(Policy::smart(), 1);
        std::printf("%10d | %8.3f %8.3f %8.3f | %6s %10.1f %10.1f\n",
                    samples, p.alpha, p.lambda, p.pole,
                    r.violated ? "YES" : "no", r.worst_goal_metric,
                    r.raw_tradeoff);
    }

    std::printf("\nA handful of samples per setting already yields a "
                "safe controller;\nextra profiling refines lambda (the "
                "virtual-goal margin) but does not\nchange the outcome — "
                "the paper's 'no intensive profiling' claim.\n");
    return 0;
}
