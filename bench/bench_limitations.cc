/**
 * @file
 * Reproduces the paper's limitation discussion (Sec. 6.6) with the
 * MR5420 case: `max_chunks_tolerable` for distributed copy.
 *
 * Copy latency is U-shaped in the chunk count (too few -> load
 * imbalance, too many -> per-chunk overhead), users want *optimal*
 * speed rather than a constraint, and the config/performance
 * relationship is non-monotonic — all three of the paper's reasons why
 * SmartConf is not a good fit.  The bench shows the U-curve, shows
 * that SmartConf's profiling pipeline detects and flags the
 * non-monotonicity, and records the warning alert.
 */

#include <cstdio>
#include <string>

#include "core/smartconf.h"
#include "mapreduce/distcp.h"
#include "sim/rng.h"

int
main()
{
    using namespace smartconf;
    using namespace smartconf::mapreduce;

    DistCpParams params;
    sim::Rng rng(11);

    std::printf("Limitation study (paper Sec. 6.6): MR5420 "
                "max_chunks_tolerable\n\n");
    std::printf("%10s %16s\n", "chunks", "copy latency(s)");
    std::printf("%s\n", std::string(28, '-').c_str());
    for (std::uint64_t k : {2ull, 4ull, 8ull, 16ull, 32ull, 64ull,
                            128ull, 256ull, 512ull}) {
        double acc = 0.0;
        for (int i = 0; i < 5; ++i)
            acc += distCpLatency(params, k, rng);
        std::printf("%10llu %16.1f\n",
                    static_cast<unsigned long long>(k),
                    acc / 5.0 / 10.0);
    }
    const std::uint64_t best = distCpBestChunks(params, 2, 512);
    std::printf("\nU-shaped: the sweet spot is near %llu chunks "
                "(workers: %zu).\n\n",
                static_cast<unsigned long long>(best), params.workers);

    // Feed the same observations through SmartConf's profiling path.
    SmartConfRuntime rt;
    rt.declareConf({"max_chunks_tolerable", "copy_latency", 8.0, 1.0,
                    4096.0});
    Goal g;
    g.metric = "copy_latency";
    g.value = 2000.0;
    rt.declareGoal(g);

    std::string warning;
    rt.setAlertHandler([&warning](const std::string &,
                                  const std::string &msg) {
        warning = msg;
    });

    rt.setProfiling(true);
    SmartConf sc(rt, "max_chunks_tolerable");
    for (double setting : {2.0, 16.0, 128.0, 1024.0}) {
        rt.setCurrentValue("max_chunks_tolerable", setting);
        for (int i = 0; i < 10; ++i) {
            sc.setPerf(distCpLatency(
                params, static_cast<std::uint64_t>(setting), rng));
        }
    }
    const ProfileSummary summary =
        rt.finishProfiling("max_chunks_tolerable");

    std::printf("SmartConf profiling verdict: correlation %.2f, "
                "monotonic: %s\n", summary.correlation,
                summary.monotonic ? "yes" : "NO");
    if (!warning.empty())
        std::printf("alert raised:\n  %s\n", warning.c_str());
    std::printf("\n(paper: \"the current SmartConf design does not "
                "work if the relationship\nbetween performance and "
                "configuration is not monotonic ... Machine learning\n"
                "techniques would be a better fit\"; such cases are "
                "<10%% of PerfConfs.)\n");
    return 0;
}
