/**
 * @file
 * Microbenchmarks for the work-stealing executor (google-benchmark).
 *
 * The sweep harness pushes every evaluation run through ThreadPool, so
 * its per-task overhead multiplies across the whole figure suite.  The
 * allocation counters are the proof obligation for the pooled task
 * path: steady-state submit() performs no global operator new at all
 * (the task node is recycled through the pool free list and the
 * promise's shared state through SharedStatePool), and parallelFor()
 * amortizes to zero allocations per index.
 */

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdlib>
#include <future>
#include <new>
#include <vector>

#include "exec/arena.h"
#include "exec/steal_deque.h"
#include "exec/thread_pool.h"

namespace {

/**
 * Global operator new/delete instrumentation.  Counting is always on
 * (the counter is a plain word increment); benchmarks snapshot it
 * around their hot loop and report the per-iteration delta.
 */
std::size_t g_allocs = 0;

} // namespace

// Our replacement operator new hands out malloc() memory, so free()
// in the matching deletes is correct; GCC cannot see that pairing.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void *
operator new(std::size_t size)
{
    ++g_allocs;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    ++g_allocs;
    return std::malloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

namespace {

using namespace smartconf;

void
reportAllocs(benchmark::State &state, std::size_t before,
             const char *name = "allocs_per_iter")
{
    state.counters[name] = benchmark::Counter(
        static_cast<double>(g_allocs - before),
        benchmark::Counter::kAvgIterations);
}

/**
 * Steady-state submit/get cycle with a warm node pool.  The criterion
 * is allocs_per_task <= 1; the recycled node + pooled shared state
 * actually land it at 0.
 */
void
BM_SubmitGetWarm(benchmark::State &state)
{
    exec::ThreadPool pool(2);
    // Warm the pool: first submissions carve nodes out of the arena.
    for (int i = 0; i < 64; ++i)
        pool.submit([] { return 0; }).get();
    pool.reclaim();
    for (int i = 0; i < 64; ++i)
        pool.submit([] { return 0; }).get();

    const std::size_t before = g_allocs;
    for (auto _ : state) {
        auto f = pool.submit([] { return 1; });
        benchmark::DoNotOptimize(f.get());
    }
    reportAllocs(state, before, "allocs_per_task");
}
BENCHMARK(BM_SubmitGetWarm);

/**
 * Bulk grid dispatch, the SweepRunner shape: one parallelFor over N
 * indices writing results at their own slot.  Reported per *item*;
 * the chunk-runner bookkeeping is shared across the whole call, so
 * this sits far below one allocation per index.
 */
void
BM_ParallelForPerItem(benchmark::State &state)
{
    const std::size_t n = 256;
    exec::ThreadPool pool(2);
    std::vector<double> out(n, 0.0);
    pool.parallelFor(n, [&](std::size_t i) {
        out[i] = static_cast<double>(i);
    });
    pool.reclaim();
    pool.parallelFor(n, [&](std::size_t i) {
        out[i] = static_cast<double>(i);
    }); // warm node pool for the measured loop

    const std::size_t before = g_allocs;
    std::size_t iters = 0;
    for (auto _ : state) {
        pool.parallelFor(n, [&](std::size_t i) {
            out[i] = static_cast<double>(i) * 0.5;
        });
        benchmark::DoNotOptimize(out.data());
        ++iters;
    }
    state.counters["allocs_per_item"] = benchmark::Counter(
        static_cast<double>(g_allocs - before) /
            static_cast<double>(n),
        benchmark::Counter::kAvgIterations);
    (void)iters;
}
BENCHMARK(BM_ParallelForPerItem);

/** Owner-side push/pop on the Chase-Lev deque (no contention): the
 *  worker-local fast path every pooled task takes. */
void
BM_DequePushPop(benchmark::State &state)
{
    exec::MonotonicArena arena;
    exec::StealDeque<int> deque(arena, 128);
    int item = 7;
    deque.push(&item);
    benchmark::DoNotOptimize(deque.pop());

    const std::size_t before = g_allocs;
    for (auto _ : state) {
        deque.push(&item);
        benchmark::DoNotOptimize(deque.pop());
    }
    reportAllocs(state, before);
}
BENCHMARK(BM_DequePushPop);

/** Arena bump allocation with recycled blocks: the post-reset steady
 *  state every sweep batch runs in. */
void
BM_ArenaAllocateReset(benchmark::State &state)
{
    exec::MonotonicArena arena;
    for (int i = 0; i < 512; ++i)
        benchmark::DoNotOptimize(arena.allocate(128));
    arena.reset(); // blocks retained: measured loop reuses them

    const std::size_t before = g_allocs;
    for (auto _ : state) {
        for (int i = 0; i < 512; ++i)
            benchmark::DoNotOptimize(arena.allocate(128));
        arena.reset();
    }
    reportAllocs(state, before);
}
BENCHMARK(BM_ArenaAllocateReset);

} // namespace

BENCHMARK_MAIN();
