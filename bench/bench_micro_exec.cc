/**
 * @file
 * Microbenchmarks for the work-stealing executor (google-benchmark).
 *
 * The sweep harness pushes every evaluation run through ThreadPool, so
 * its per-task overhead multiplies across the whole figure suite.  The
 * allocation counters are the proof obligation for the pooled task
 * path: steady-state submit() performs no global operator new at all
 * (the task node is recycled through the pool free list and the
 * promise's shared state through SharedStatePool), and parallelFor()
 * amortizes to zero allocations per index.
 *
 * `--json` skips google-benchmark and emits the fork/join scaling
 * micro in the bench_micro_kernels row format (forkjoin_w1/w2/w4
 * ns/element over a 16-block tick-shaped fan-out), which
 * bench/check_regression harvests into BENCH_kernels.json.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <new>
#include <optional>
#include <string>
#include <vector>

#include "exec/arena.h"
#include "exec/steal_deque.h"
#include "exec/thread_pool.h"

namespace {

/**
 * Global operator new/delete instrumentation.  Counting is always on
 * (the counter is a plain word increment); benchmarks snapshot it
 * around their hot loop and report the per-iteration delta.
 */
std::size_t g_allocs = 0;

} // namespace

// Our replacement operator new hands out malloc() memory, so free()
// in the matching deletes is correct; GCC cannot see that pairing.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void *
operator new(std::size_t size)
{
    ++g_allocs;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    ++g_allocs;
    return std::malloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

namespace {

using namespace smartconf;

void
reportAllocs(benchmark::State &state, std::size_t before,
             const char *name = "allocs_per_iter")
{
    state.counters[name] = benchmark::Counter(
        static_cast<double>(g_allocs - before),
        benchmark::Counter::kAvgIterations);
}

/**
 * Steady-state submit/get cycle with a warm node pool.  The criterion
 * is allocs_per_task <= 1; the recycled node + pooled shared state
 * actually land it at 0.
 */
void
BM_SubmitGetWarm(benchmark::State &state)
{
    exec::ThreadPool pool(2);
    // Warm the pool: first submissions carve nodes out of the arena.
    for (int i = 0; i < 64; ++i)
        pool.submit([] { return 0; }).get();
    pool.reclaim();
    for (int i = 0; i < 64; ++i)
        pool.submit([] { return 0; }).get();

    const std::size_t before = g_allocs;
    for (auto _ : state) {
        auto f = pool.submit([] { return 1; });
        benchmark::DoNotOptimize(f.get());
    }
    reportAllocs(state, before, "allocs_per_task");
}
BENCHMARK(BM_SubmitGetWarm);

/**
 * Bulk grid dispatch, the SweepRunner shape: one parallelFor over N
 * indices writing results at their own slot.  Reported per *item*;
 * the chunk-runner bookkeeping is shared across the whole call, so
 * this sits far below one allocation per index.
 */
void
BM_ParallelForPerItem(benchmark::State &state)
{
    const std::size_t n = 256;
    exec::ThreadPool pool(2);
    std::vector<double> out(n, 0.0);
    pool.parallelFor(n, [&](std::size_t i) {
        out[i] = static_cast<double>(i);
    });
    pool.reclaim();
    pool.parallelFor(n, [&](std::size_t i) {
        out[i] = static_cast<double>(i);
    }); // warm node pool for the measured loop

    const std::size_t before = g_allocs;
    std::size_t iters = 0;
    for (auto _ : state) {
        pool.parallelFor(n, [&](std::size_t i) {
            out[i] = static_cast<double>(i) * 0.5;
        });
        benchmark::DoNotOptimize(out.data());
        ++iters;
    }
    state.counters["allocs_per_item"] = benchmark::Counter(
        static_cast<double>(g_allocs - before) /
            static_cast<double>(n),
        benchmark::Counter::kAvgIterations);
    (void)iters;
}
BENCHMARK(BM_ParallelForPerItem);

/** Owner-side push/pop on the Chase-Lev deque (no contention): the
 *  worker-local fast path every pooled task takes. */
void
BM_DequePushPop(benchmark::State &state)
{
    exec::MonotonicArena arena;
    exec::StealDeque<int> deque(arena, 128);
    int item = 7;
    deque.push(&item);
    benchmark::DoNotOptimize(deque.pop());

    const std::size_t before = g_allocs;
    for (auto _ : state) {
        deque.push(&item);
        benchmark::DoNotOptimize(deque.pop());
    }
    reportAllocs(state, before);
}
BENCHMARK(BM_DequePushPop);

/** Arena bump allocation with recycled blocks: the post-reset steady
 *  state every sweep batch runs in. */
void
BM_ArenaAllocateReset(benchmark::State &state)
{
    exec::MonotonicArena arena;
    for (int i = 0; i < 512; ++i)
        benchmark::DoNotOptimize(arena.allocate(128));
    arena.reset(); // blocks retained: measured loop reuses them

    const std::size_t before = g_allocs;
    for (auto _ : state) {
        for (int i = 0; i < 512; ++i)
            benchmark::DoNotOptimize(arena.allocate(128));
        arena.reset();
    }
    reportAllocs(state, before);
}
BENCHMARK(BM_ArenaAllocateReset);

/**
 * The sharded data plane's per-tick shape: 16 fixed blocks fanned out
 * through forkJoin (caller participates, no barrier).  One block's
 * work is deliberately small — a few microseconds — because that is
 * where fork/join overhead either amortizes or dominates.
 */
constexpr std::size_t kFjBlocks = 16;
constexpr std::size_t kFjGranule = 2048; ///< elements per block

volatile std::uint64_t g_fj_sink;

std::uint64_t
fjBlockWork(std::size_t block)
{
    // splitmix-style integer mixing: cheap, unvectorized, and opaque
    // enough that the compiler cannot collapse the loop.
    std::uint64_t x = 0x9e3779b97f4a7c15ULL * (block + 1);
    for (std::size_t i = 0; i < kFjGranule; ++i) {
        x += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        x ^= z >> 31;
    }
    return x;
}

/**
 * Best-of-reps ns/element for the 16-block fan-out with @p
 * participants total runners (caller + participants-1 pool workers);
 * participants == 1 times the serial inline path the data plane takes
 * at --shard-workers 1.
 */
double
forkJoinNsPerElement(std::size_t participants)
{
    std::optional<exec::ThreadPool> pool_holder;
    exec::ThreadPool *pool = nullptr;
    if (participants > 1) {
        pool_holder.emplace(participants - 1);
        pool = &*pool_holder;
    }
    std::uint64_t slots[kFjBlocks] = {};
    const auto run_once = [&] {
        if (pool == nullptr) {
            for (std::size_t b = 0; b < kFjBlocks; ++b)
                slots[b] = fjBlockWork(b);
        } else {
            pool->forkJoin(kFjBlocks, [&](std::size_t b) {
                slots[b] = fjBlockWork(b);
            });
        }
        std::uint64_t sum = 0;
        for (std::size_t b = 0; b < kFjBlocks; ++b)
            sum += slots[b];
        g_fj_sink = sum;
    };
    run_once(); // warm the pool's node free lists

    constexpr int kIters = 50;
    double best = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < kIters; ++i)
            run_once();
        const auto t1 = std::chrono::steady_clock::now();
        const double ns =
            std::chrono::duration<double, std::nano>(t1 - t0).count() /
            (static_cast<double>(kIters) *
             static_cast<double>(kFjBlocks * kFjGranule));
        if (rep == 0 || ns < best)
            best = ns;
    }
    return best;
}

/** Fork/join dispatch cost under google-benchmark too, with the same
 *  zero-steady-state-allocation obligation as the other task paths. */
void
BM_ForkJoin(benchmark::State &state)
{
    exec::ThreadPool pool(2);
    std::uint64_t slots[kFjBlocks] = {};
    pool.forkJoin(kFjBlocks, [&](std::size_t b) {
        slots[b] = fjBlockWork(b);
    }); // warm

    const std::size_t before = g_allocs;
    for (auto _ : state) {
        pool.forkJoin(kFjBlocks, [&](std::size_t b) {
            slots[b] = fjBlockWork(b);
        });
        benchmark::DoNotOptimize(slots);
    }
    reportAllocs(state, before, "allocs_per_forkjoin");
}
BENCHMARK(BM_ForkJoin);

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json") {
            const std::size_t widths[] = {1, 2, 4};
            std::printf("{\n");
            std::printf("  \"bench\": \"bench_micro_exec\",\n");
            std::printf("  \"kernels\": [\n");
            const std::size_t n = sizeof widths / sizeof widths[0];
            for (std::size_t w = 0; w < n; ++w) {
                std::printf(
                    "    {\"name\": \"forkjoin_w%zu\", "
                    "\"ns_per_element\": %.4f}%s\n",
                    widths[w], forkJoinNsPerElement(widths[w]),
                    w + 1 < n ? "," : "");
            }
            std::printf("  ]\n}\n");
            return 0;
        }
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
