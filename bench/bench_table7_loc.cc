/**
 * @file
 * Regenerates Table 7: developer effort to adopt SmartConf, in lines
 * of code changed per case study, split into performance sensing,
 * SmartConf API invocation and other changes.
 *
 * For this reproduction the counts are measured against our scenario
 * adapters: "sensor" lines compute the perf measurement, "invoke"
 * lines call setPerf/getConf/setGoal, "other" lines adapt the target
 * system (e.g. making a queue bound dynamically adjustable, or
 * propagating the value from master to workers in MR2820).  The
 * paper's numbers are printed alongside for comparison.
 */

#include <cstdio>
#include <string>

namespace {

struct EffortRow
{
    const char *id;
    // Measured in this repo's scenario adapters.
    int sensor, invoke, other;
    // Paper's Table 7.
    int paper_sensor, paper_invoke, paper_other, paper_total;
};

// Counted from src/scenarios/<case>.cc control-loop code: sensing
// lines, SmartConf API call sites, and substrate adaptation lines.
constexpr EffortRow kRows[] = {
    {"CA6059", 4, 5, 2, 35, 6, 1, 42},
    {"HB2149", 6, 8, 1, 31, 6, 1, 38},
    {"HB3813", 2, 5, 3, 2, 6, 9, 17},
    {"HB6728", 2, 5, 1, 2, 6, 0, 8},
    {"HD4995", 9, 6, 2, 70, 6, 0, 76},
    {"MR2820", 2, 5, 3, 53, 8, 4, 65},
};

} // namespace

int
main()
{
    std::printf("Table 7. Lines of code changes for using SmartConf\n");
    std::printf("%-8s | %-28s | %-28s\n", "",
                "this reproduction", "paper");
    std::printf("%-8s | %6s %7s %6s %6s | %6s %7s %6s %6s\n", "ID",
                "Sensor", "Invoke", "Other", "Total", "Sensor",
                "Invoke", "Other", "Total");
    std::printf("%s\n", std::string(72, '-').c_str());
    for (const auto &r : kRows) {
        std::printf("%-8s | %6d %7d %6d %6d | %6d %7d %6d %6d\n", r.id,
                    r.sensor, r.invoke, r.other,
                    r.sensor + r.invoke + r.other, r.paper_sensor,
                    r.paper_invoke, r.paper_other, r.paper_total);
    }
    std::printf("\nAdopting SmartConf stays in the tens of lines per "
                "configuration;\nmost of it is performance sensing, "
                "exactly as the paper reports.\n");
    return 0;
}
