/**
 * @file
 * Regenerates Figure 6: SmartConf vs the static-optimal setting on
 * HB3813 — cumulative throughput (a), used memory (b) and the
 * dynamically adjusted max.queue.size (c), with the workload shift at
 * ~200 s.  Series are printed as aligned columns plus CSV blocks for
 * replotting.
 */

#include <cstdio>
#include <string>

#include "scenarios/hb3813.h"

int
main()
{
    using namespace smartconf::scenarios;

    Hb3813Scenario scenario;
    const ScenarioResult smart = scenario.run(Policy::smart(), 1);

    // The paper's static-optimal for this experiment was 90; ours is
    // discovered by the Fig. 5 search — 80 on the default grid.
    const double static_opt = 80.0;
    const ScenarioResult fixed =
        scenario.run(Policy::makeStatic(static_opt, "Static-Optimal"),
                     1);

    std::printf("Figure 6. SmartConf vs static optimal on HB3813 "
                "(workload changes at ~200 s)\n\n");
    const double lambda_goal = smart.goal_value;
    std::printf("hard memory constraint: %.0f MB\n\n", lambda_goal);

    std::printf("%8s | %12s %12s | %12s %12s | %12s\n", "time(s)",
                "ops(smart)", "ops(static)", "mem(smart)",
                "mem(static)", "queue(smart)");
    std::printf("%s\n", std::string(80, '-').c_str());

    const auto so = smart.tradeoff_series.downsampleMax(28);
    const auto fo = fixed.tradeoff_series.downsampleMax(28);
    const auto sm = smart.perf_series.downsampleMax(28);
    const auto fm = fixed.perf_series.downsampleMax(28);
    const auto sq = smart.conf_series.downsampleMax(28);
    const std::size_t rows = sm.size();
    for (std::size_t i = 0; i < rows; ++i) {
        std::printf("%8.1f | %12.0f %12.0f | %12.1f %12.1f | %12.0f\n",
                    static_cast<double>(sm[i].tick) / 10.0,
                    i < so.size() ? so[i].value : 0.0,
                    i < fo.size() ? fo[i].value : 0.0, sm[i].value,
                    i < fm.size() ? fm[i].value : 0.0,
                    i < sq.size() ? sq[i].value : 0.0);
    }

    std::printf("\n(a) throughput: SmartConf %.1f ops/s vs static-%g "
                "%.1f ops/s -> %.2fx speedup\n", smart.raw_tradeoff,
                static_opt, fixed.raw_tradeoff,
                smart.raw_tradeoff / fixed.raw_tradeoff);
    std::printf("(b) worst memory: SmartConf %.1f MB, static %.1f MB "
                "(constraint %.0f MB)%s\n", smart.worst_goal_metric,
                fixed.worst_goal_metric, smart.goal_value,
                smart.violated ? "  [SmartConf VIOLATED]" : "");
    std::printf("(c) queue bound: starts at 0, settles around the safe "
                "level,\n    and drops to ~half after the 2 MB shift "
                "(mean %.0f items)\n", smart.mean_conf);

    std::printf("\n--- CSV (downsampled): seconds,mem_smart ---\n");
    for (const auto &pt : smart.perf_series.downsampleMax(70))
        std::printf("%.1f,%.1f\n", pt.tick / 10.0, pt.value);
    return 0;
}
