/**
 * @file
 * Experiment-runner benchmark: measures sweep throughput and cache
 * behaviour so the perf trajectory can be tracked release-to-release
 * (`bench_sweep --json > BENCH_sweep.json`).
 *
 * The workload is the canonical evaluation sweep: all six case studies
 * x {SmartConf, Static-Patch, Static-Buggy} x 4 seeds (72 simulations),
 * fanned out over `--jobs N` workers.  The same sweep is then replayed
 * on the warm cache: every triple must be a cache hit, so the warm
 * pass measures pure memoization overhead — the invariant the run
 * cache exists to provide (no duplicate (scenario, policy, seed)
 * simulation, ever).
 *
 * The harness attaches the persistent store at `.smartconf-cache` by
 * default (`--cache-dir PATH` overrides it, `--no-disk-cache` turns it
 * off): the first process spills every simulated result to disk, and a
 * second process replays the whole sweep from disk without simulating.
 * The disk_hits/disk_stores counters in the output make which of the
 * two happened auditable.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "exec/disk_cache.h"
#include "exec/sweep.h"
#include "scenarios/scenario.h"
#include "sim/kernels.h"
#include "sim/shard.h"
#include "sim/simd.h"

int
main(int argc, char **argv)
{
    using namespace smartconf::scenarios;
    using smartconf::exec::SweepJob;

    const smartconf::exec::SweepArgs args =
        smartconf::exec::parseSweepArgs(argc, argv,
                                        ".smartconf-cache");
    smartconf::sim::setShardWorkers(args.shard_workers);
    smartconf::exec::SweepRunner runner(args.sweep);

    const std::vector<std::uint64_t> seeds = {1, 2, 3, 4};
    const std::vector<std::unique_ptr<Scenario>> scenarios =
        makeAllScenarios();

    std::vector<SweepJob> jobs;
    for (const auto &s : scenarios) {
        const ScenarioInfo &info = s->info();
        const std::vector<Policy> policies = {
            Policy::smart(),
            Policy::makeStatic(info.patch_default),
            Policy::makeStatic(info.buggy_default),
        };
        for (const Policy &p : policies)
            for (const std::uint64_t seed : seeds)
                jobs.push_back(
                    SweepJob::forScenario(info.id, p, seed));
    }

    const std::vector<ScenarioResult> cold = runner.run(jobs);
    const double cold_ms = runner.lastWallMs();
    const auto cold_stats = runner.cache().stats();

    // Replay: with the cache warm, zero simulations may execute.
    const std::vector<ScenarioResult> warm = runner.run(jobs);
    const double warm_ms = runner.lastWallMs();
    const auto warm_stats = runner.cache().stats();

    // Simulation throughput: workload operations actually simulated
    // during the cold sweep, per wall-clock second.  Disk-loaded runs
    // simulate nothing, so a disk-warm process reports ops_per_sec 0 —
    // by design (replay costs file reads, not simulated operations).
    std::uint64_t ops_simulated = 0;
    for (const auto &r : cold)
        ops_simulated += r.ops_simulated;
    const std::uint64_t cold_disk_hits = cold_stats.disk_hits;
    const double ops_per_sec =
        cold_ms > 0.0 && cold_disk_hits == 0
            ? static_cast<double>(ops_simulated) / (cold_ms / 1000.0)
            : 0.0;

    // Per-shard data-plane totals, summed over every cold run's
    // pinned-order counters.  Pure function of the logical layout —
    // identical at any --jobs / --shard-workers combination — so both
    // the counters and the imbalance stat participate in the payload
    // sha.  Imbalance is max/mean over the lanes (1.0 = perfectly
    // even fan-out).
    std::uint64_t shard_totals[smartconf::sim::kShards] = {};
    for (const auto &r : cold)
        for (std::size_t s = 0; s < r.shard_ops.size() &&
                                s < smartconf::sim::kShards; ++s)
            shard_totals[s] += r.shard_ops[s];
    std::uint64_t shard_sum = 0, shard_max = 0;
    for (const std::uint64_t v : shard_totals) {
        shard_sum += v;
        shard_max = std::max(shard_max, v);
    }
    const double shard_imbalance =
        shard_sum > 0 ? static_cast<double>(shard_max) *
                            static_cast<double>(smartconf::sim::kShards) /
                            static_cast<double>(shard_sum)
                      : 0.0;

    // Per-scenario aggregates (sanity values for trend tracking).
    struct Row
    {
        std::string id;
        double smart_tradeoff = 0.0; // mean over seeds
        int violations = 0;          // across all policies/seeds
    };
    std::vector<Row> rows;
    std::size_t j = 0;
    for (const auto &s : scenarios) {
        Row row;
        row.id = s->info().id;
        for (int p = 0; p < 3; ++p)
            for (std::size_t k = 0; k < seeds.size(); ++k, ++j) {
                if (cold[j].violated)
                    ++row.violations;
                if (p == 0)
                    row.smart_tradeoff +=
                        cold[j].tradeoff /
                        static_cast<double>(seeds.size());
            }
        rows.push_back(row);
    }

    if (args.json) {
        std::printf("{\n");
        std::printf("  \"bench\": \"bench_sweep\",\n");
        // Host capabilities on one line so the regression gate can
        // both exclude it from the payload hash and warn when a
        // recorded baseline came from a different machine/ISA.
        std::printf("  \"host\": {\"cpus\": %u, \"isa_detected\": "
                    "\"%s\", \"isa_active\": \"%s\", \"compiler\": "
                    "\"%s\"},\n",
                    std::thread::hardware_concurrency(),
                    smartconf::sim::simd::name(
                        smartconf::sim::simd::detected()),
                    smartconf::sim::simd::name(
                        smartconf::sim::kernels::activeIsa()),
                    __VERSION__);
        std::printf("  \"jobs\": %zu,\n", runner.jobs());
        std::printf("  \"shard_workers\": %zu,\n", args.shard_workers);
        std::printf("  \"runs\": %zu,\n", jobs.size());
        std::printf("  \"cold_wall_ms\": %.3f,\n", cold_ms);
        std::printf("  \"warm_wall_ms\": %.3f,\n", warm_ms);
        std::printf("  \"ops_simulated\": %llu,\n",
                    static_cast<unsigned long long>(ops_simulated));
        std::printf("  \"ops_per_sec\": %.0f,\n", ops_per_sec);
        // Logical-layout invariants: identical at any --jobs and any
        // --shard-workers, so they participate in the payload sha.
        std::printf("  \"shard_ops\": [");
        for (std::size_t s = 0; s < smartconf::sim::kShards; ++s)
            std::printf("%s%llu", s == 0 ? "" : ", ",
                        static_cast<unsigned long long>(
                            shard_totals[s]));
        std::printf("],\n");
        std::printf("  \"shard_imbalance\": %.6f,\n", shard_imbalance);
        std::printf("  \"cache_hits\": %llu,\n",
                    static_cast<unsigned long long>(warm_stats.hits));
        std::printf("  \"cache_misses\": %llu,\n",
                    static_cast<unsigned long long>(warm_stats.misses));
        std::printf("  \"disk_hits\": %llu,\n",
                    static_cast<unsigned long long>(
                        warm_stats.disk_hits));
        std::printf("  \"disk_stores\": %llu,\n",
                    static_cast<unsigned long long>(
                        warm_stats.disk_stores));
        // Segment-store IO counters (zeros when the disk cache is
        // off).  The warm-process regression gate checks that disk
        // hits were served by batched segment reads — store_reads
        // tracks payload preads, store_segments_opened how many
        // segment files were opened to serve them.  A per-entry-open
        // regression shows up as opened ~== reads.
        {
            const smartconf::exec::DiskRunCache *disk =
                runner.cache().diskCache();
            const smartconf::store::StoreStats io =
                disk ? disk->ioStats() : smartconf::store::StoreStats{};
            std::printf("  \"store_reads\": %llu,\n",
                        static_cast<unsigned long long>(io.reads));
            std::printf("  \"store_read_bytes\": %llu,\n",
                        static_cast<unsigned long long>(io.read_bytes));
            std::printf("  \"store_segments_opened\": %llu,\n",
                        static_cast<unsigned long long>(
                            io.segments_opened));
            std::printf("  \"store_segments_published\": %llu,\n",
                        static_cast<unsigned long long>(
                            io.segments_published));
        }
        std::printf("  \"scenarios\": [\n");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            std::printf("    {\"id\": \"%s\", \"smart_tradeoff\": "
                        "%.6f, \"violations\": %d}%s\n",
                        rows[i].id.c_str(), rows[i].smart_tradeoff,
                        rows[i].violations,
                        i + 1 < rows.size() ? "," : "");
        }
        std::printf("  ]\n}\n");
        return 0;
    }

    std::printf("Experiment-runner sweep benchmark\n\n");
    std::printf("workers (--jobs): %zu\n", runner.jobs());
    std::printf("intra-run shard workers (--shard-workers): %zu "
                "(%zu logical shards)\n",
                args.shard_workers,
                static_cast<std::size_t>(smartconf::sim::kShards));
    std::printf("shard imbalance (max/mean over lanes): %.4f\n",
                shard_imbalance);
    std::printf("disk cache: %s\n",
                args.sweep.disk_cache_dir.empty()
                    ? "(off)"
                    : args.sweep.disk_cache_dir.c_str());
    std::printf("sweep: 6 scenarios x 3 policies x %zu seeds = %zu "
                "runs\n\n", seeds.size(), jobs.size());
    std::printf("cold sweep: %10.1f ms  (%llu misses, %llu hits, "
                "%llu from disk)\n",
                cold_ms,
                static_cast<unsigned long long>(cold_stats.misses),
                static_cast<unsigned long long>(cold_stats.hits),
                static_cast<unsigned long long>(cold_stats.disk_hits));
    std::printf("warm replay: %9.1f ms  (+%llu hits, +%llu misses — "
                "a warm replay\n                            simulates "
                "nothing)\n",
                warm_ms,
                static_cast<unsigned long long>(warm_stats.hits -
                                                cold_stats.hits),
                static_cast<unsigned long long>(warm_stats.misses -
                                                cold_stats.misses));
    std::printf("throughput: %10.0f simulated ops/s (%llu ops, cold "
                "pass)\n\n",
                ops_per_sec,
                static_cast<unsigned long long>(ops_simulated));
    std::printf("%-8s %16s %12s\n", "issue", "smart ops/s*", "violations");
    std::printf("%s\n", std::string(40, '-').c_str());
    for (const Row &row : rows)
        std::printf("%-8s %16.3f %12d\n", row.id.c_str(),
                    row.smart_tradeoff, row.violations);
    std::printf("\n(*canonical higher-is-better trade-off score, mean "
                "over seeds)\n");
    return 0;
}
