/**
 * @file
 * Microbenchmarks for the discrete-event substrate (google-benchmark).
 *
 * Every figure, ablation, and sweep in this repo runs through the
 * EventQueue / metrics / Zipfian hot paths measured here — the
 * micro-level counterpart to bench_micro_controller.  The allocation
 * counters (allocs_per_iter) double as the proof obligation that the
 * steady-state scheduling path — periodic rearm and one-shot slot
 * recycling — performs no heap allocation at all.
 */

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdlib>
#include <new>

#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/rng.h"

namespace {

/**
 * Global operator new/delete instrumentation.  Counting is always on
 * (the counter is a plain word increment); benchmarks snapshot it
 * around their hot loop and report the per-iteration delta.
 */
std::size_t g_allocs = 0;

} // namespace

// Our replacement operator new hands out malloc() memory, so free()
// in the matching deletes is correct; GCC cannot see that pairing.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void *
operator new(std::size_t size)
{
    ++g_allocs;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    ++g_allocs;
    return std::malloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

namespace {

using namespace smartconf;

void
reportAllocs(benchmark::State &state, std::size_t before)
{
    state.counters["allocs_per_iter"] = benchmark::Counter(
        static_cast<double>(g_allocs - before),
        benchmark::Counter::kAvgIterations);
}

/** One-shot schedule -> fire cycle with a warm pool: the steady state
 *  of every ad-hoc event in a run.  Expect allocs_per_iter == 0. */
void
BM_EventScheduleFire(benchmark::State &state)
{
    sim::Clock clock;
    sim::EventQueue q(clock);
    long fired = 0;
    // Warm the pool so the measurement sees the steady state.
    q.scheduleAfter(1, [&fired] { ++fired; });
    q.runUntil(clock.now() + 1);

    const std::size_t before = g_allocs;
    for (auto _ : state) {
        q.scheduleAfter(1, [&fired] { ++fired; });
        q.runUntil(clock.now() + 1);
        benchmark::DoNotOptimize(fired);
    }
    reportAllocs(state, before);
}
BENCHMARK(BM_EventScheduleFire);

/** Schedule followed by cancel: the lazy-cancellation path.  The
 *  cancelled entry is discarded when its tick is reached. */
void
BM_EventScheduleCancel(benchmark::State &state)
{
    sim::Clock clock;
    sim::EventQueue q(clock);
    q.scheduleAfter(1, [] {});
    q.runUntil(clock.now() + 1);

    const std::size_t before = g_allocs;
    for (auto _ : state) {
        const sim::EventId id = q.scheduleAfter(1, [] {});
        q.cancel(id);
        q.runUntil(clock.now() + 1);
        benchmark::DoNotOptimize(id);
    }
    reportAllocs(state, before);
}
BENCHMARK(BM_EventScheduleCancel);

/** Periodic rearm: one pooled entry re-pushed in place per firing —
 *  the per-tick cost of every scenario driver loop.  Expect
 *  allocs_per_iter == 0. */
void
BM_EventPeriodicRearm(benchmark::State &state)
{
    sim::Clock clock;
    sim::EventQueue q(clock);
    long fired = 0;
    q.schedulePeriodic(1, [&fired] { ++fired; });
    q.runUntil(clock.now() + 1); // first firing warms the entry

    const std::size_t before = g_allocs;
    for (auto _ : state) {
        q.runUntil(clock.now() + 1);
        benchmark::DoNotOptimize(fired);
    }
    reportAllocs(state, before);
}
BENCHMARK(BM_EventPeriodicRearm);

/** Three interleaved periodics (step / control / metrics), as the
 *  scenario drivers register them. */
void
BM_EventThreePeriodics(benchmark::State &state)
{
    sim::Clock clock;
    sim::EventQueue q(clock);
    long a = 0, b = 0, c = 0;
    q.schedulePeriodic(1, [&a] { ++a; });
    q.schedulePeriodic(5, [&b] { ++b; });
    q.schedulePeriodic(1, [&c] { ++c; });
    q.runUntil(clock.now() + 5);

    const std::size_t before = g_allocs;
    for (auto _ : state) {
        q.runUntil(clock.now() + 1);
        benchmark::DoNotOptimize(a + b + c);
    }
    reportAllocs(state, before);
}
BENCHMARK(BM_EventThreePeriodics);

/** Repeated percentile queries between mutations: first query after a
 *  record() pays nth_element, later ones hit the sorted cache. */
void
BM_HistogramPercentile(benchmark::State &state)
{
    sim::Histogram h;
    h.reserve(10000);
    sim::Rng rng(42);
    for (int i = 0; i < 10000; ++i)
        h.record(rng.uniform(0.0, 100.0));
    (void)h.percentile(50.0); // warm the scratch buffer

    for (auto _ : state) {
        const double p50 = h.percentile(50.0);
        const double p99 = h.percentile(99.0);
        benchmark::DoNotOptimize(p50 + p99);
    }
}
BENCHMARK(BM_HistogramPercentile);

/** Percentile immediately after each mutation: the nth_element path. */
void
BM_HistogramPercentileAfterRecord(benchmark::State &state)
{
    sim::Histogram h;
    h.reserve(20000);
    sim::Rng rng(42);
    for (int i = 0; i < 10000; ++i)
        h.record(rng.uniform(0.0, 100.0));

    double x = 0.0;
    for (auto _ : state) {
        h.record(x);
        x += 0.01;
        benchmark::DoNotOptimize(h.percentile(99.0));
    }
}
BENCHMARK(BM_HistogramPercentileAfterRecord);

/** Zipfian draw with the shared zeta table warm (the YCSB key path). */
void
BM_ZipfianDraw(benchmark::State &state)
{
    sim::Rng rng(7);
    sim::ZipfianGenerator zipf(100000, 0.99);
    for (auto _ : state) {
        benchmark::DoNotOptimize(zipf.sample(rng));
    }
}
BENCHMARK(BM_ZipfianDraw);

/** Zipfian construction with the process-wide zeta cache warm: what
 *  every YcsbGenerator after the first pays. */
void
BM_ZipfianConstructCached(benchmark::State &state)
{
    sim::Rng rng(7);
    { sim::ZipfianGenerator warm(100000, 0.99); (void)warm; }
    for (auto _ : state) {
        sim::ZipfianGenerator zipf(100000, 0.99);
        benchmark::DoNotOptimize(zipf.sample(rng));
    }
}
BENCHMARK(BM_ZipfianConstructCached);

} // namespace

BENCHMARK_MAIN();
