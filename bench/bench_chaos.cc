/**
 * @file
 * Chaos sweep: the fault-injection plane exercised at benchmark scale
 * (`bench_chaos --json > BENCH_chaos.json`).
 *
 * Two layers:
 *
 *  1. Synthetic episodes — every injector preset runs the closed-loop
 *     chaos episode over a seed grid, and the output reports the two
 *     hard invariants (non-finite controller outputs, out-of-clamp
 *     outputs: both must be 0) plus fault volume and the hard-goal
 *     violation rate.  This is the soak counterpart of the fault_tests
 *     gtest suite: same invariants, more seeds, trend-trackable.
 *
 *  2. Scenario sweep — all six case studies under the kitchen-sink
 *     campaign, fanned through the regular SweepRunner.  Chaos runs are
 *     pure functions of (scenario, policy, spec, seed) and carry their
 *     own cache keys, so the warm replay must hit the cache exactly
 *     like a clean sweep — which this bench demonstrates by replaying.
 *
 * Clean-run determinism is bench_sweep's job; this harness never runs
 * a chaos-free policy, so its cache entries can never collide with the
 * regression baseline's.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "exec/sweep.h"
#include "fault/chaos.h"
#include "fault/spec.h"
#include "scenarios/scenario.h"

namespace {

struct EpisodeRow
{
    std::string name;
    std::uint64_t nonfinite = 0;     // invariant: 0
    std::uint64_t out_of_bounds = 0; // invariant: 0
    std::uint64_t faults = 0;
    std::uint64_t controller_holds = 0;
    double violation_rate = 0.0; // mean over seeds
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace smartconf;
    using namespace smartconf::scenarios;
    using smartconf::exec::SweepJob;

    const exec::SweepArgs args =
        exec::parseSweepArgs(argc, argv, ".smartconf-cache");

    const std::vector<std::pair<std::string, fault::ChaosSpec>> presets =
        {
            {"nan", fault::ChaosSpec::nanSensor(0.10)},
            {"inf", fault::ChaosSpec::infSensor(0.05)},
            {"dropout", fault::ChaosSpec::dropout(0.15)},
            {"stale", fault::ChaosSpec::staleSensor(0.05, 10)},
            {"spike", fault::ChaosSpec::spikes(0.05, 12.0)},
            {"skip", fault::ChaosSpec::skips(0.20)},
            {"jitter", fault::ChaosSpec::jitter(0.5)},
            {"delay", fault::ChaosSpec::delayedActuation(3)},
            {"kitchen_sink", fault::ChaosSpec::kitchenSink()},
        };
    const std::vector<std::uint64_t> episode_seeds = {1, 2, 3, 4, 5,
                                                      6, 7, 8};

    // Layer 1: synthetic closed-loop episodes.
    std::vector<EpisodeRow> rows;
    for (const auto &[name, spec] : presets) {
        EpisodeRow row;
        row.name = name;
        fault::ChaosEpisodeOptions opts; // hard goal by default
        for (const std::uint64_t seed : episode_seeds) {
            const fault::ChaosReport r =
                fault::runChaosEpisode(spec, opts, seed);
            row.nonfinite += r.nonfinite_outputs;
            row.out_of_bounds += r.out_of_bounds_outputs;
            row.faults += r.faults.injected();
            row.controller_holds += r.controller_faults;
            row.violation_rate +=
                static_cast<double>(r.violations) /
                static_cast<double>(r.ticks) /
                static_cast<double>(episode_seeds.size());
        }
        rows.push_back(row);
    }

    // Layer 2: the six case studies under the kitchen-sink campaign,
    // cold then warm (the replay must be pure cache hits).
    exec::SweepRunner runner(args.sweep);
    const std::vector<std::uint64_t> sweep_seeds = {1, 2};
    const Policy chaotic =
        Policy::smart().withChaos(fault::ChaosSpec::kitchenSink());

    std::vector<SweepJob> jobs;
    const auto all = makeAllScenarios();
    for (const auto &s : all)
        for (const std::uint64_t seed : sweep_seeds)
            jobs.push_back(
                SweepJob::forScenario(s->info().id, chaotic, seed));

    const std::vector<ScenarioResult> cold = runner.run(jobs);
    const double cold_ms = runner.lastWallMs();
    const std::vector<ScenarioResult> warm = runner.run(jobs);
    const double warm_ms = runner.lastWallMs();
    const auto stats = runner.cache().stats();

    std::uint64_t sweep_faults = 0;
    int sweep_violations = 0;
    for (const auto &r : cold) {
        sweep_faults += r.faults_injected;
        if (r.violated)
            ++sweep_violations;
    }

    std::uint64_t invariant_breaks = 0;
    for (const EpisodeRow &row : rows)
        invariant_breaks += row.nonfinite + row.out_of_bounds;

    if (args.json) {
        std::printf("{\n");
        std::printf("  \"bench\": \"bench_chaos\",\n");
        std::printf("  \"episode_seeds\": %zu,\n", episode_seeds.size());
        std::printf("  \"invariant_breaks\": %llu,\n",
                    static_cast<unsigned long long>(invariant_breaks));
        std::printf("  \"episodes\": [\n");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const EpisodeRow &r = rows[i];
            std::printf(
                "    {\"preset\": \"%s\", \"nonfinite\": %llu, "
                "\"out_of_bounds\": %llu, \"faults\": %llu, "
                "\"holds\": %llu, \"violation_rate\": %.5f}%s\n",
                r.name.c_str(),
                static_cast<unsigned long long>(r.nonfinite),
                static_cast<unsigned long long>(r.out_of_bounds),
                static_cast<unsigned long long>(r.faults),
                static_cast<unsigned long long>(r.controller_holds),
                r.violation_rate, i + 1 < rows.size() ? "," : "");
        }
        std::printf("  ],\n");
        std::printf("  \"sweep_runs\": %zu,\n", jobs.size());
        std::printf("  \"sweep_cold_ms\": %.3f,\n", cold_ms);
        std::printf("  \"sweep_warm_ms\": %.3f,\n", warm_ms);
        std::printf("  \"sweep_faults_injected\": %llu,\n",
                    static_cast<unsigned long long>(sweep_faults));
        std::printf("  \"sweep_violations\": %d,\n", sweep_violations);
        std::printf("  \"cache_hits\": %llu,\n",
                    static_cast<unsigned long long>(stats.hits));
        std::printf("  \"cache_misses\": %llu\n",
                    static_cast<unsigned long long>(stats.misses));
        std::printf("}\n");
        return invariant_breaks == 0 ? 0 : 1;
    }

    std::printf("Chaos sweep benchmark\n\n");
    std::printf("episodes: %zu presets x %zu seeds x %d ticks\n\n",
                presets.size(), episode_seeds.size(),
                fault::ChaosEpisodeOptions{}.ticks);
    std::printf("%-14s %10s %10s %10s %10s %10s\n", "preset",
                "nonfinite", "oob", "faults", "holds", "viol.rate");
    std::printf("%s\n", std::string(68, '-').c_str());
    for (const EpisodeRow &r : rows)
        std::printf("%-14s %10llu %10llu %10llu %10llu %10.4f\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.nonfinite),
                    static_cast<unsigned long long>(r.out_of_bounds),
                    static_cast<unsigned long long>(r.faults),
                    static_cast<unsigned long long>(r.controller_holds),
                    r.violation_rate);
    std::printf("\ninvariants (nonfinite, oob must be 0): %s\n\n",
                invariant_breaks == 0 ? "OK" : "BROKEN");
    std::printf("scenario sweep: 6 scenarios x kitchen_sink x %zu "
                "seeds\n", sweep_seeds.size());
    std::printf("cold: %8.1f ms   warm replay: %8.1f ms\n", cold_ms,
                warm_ms);
    std::printf("faults injected: %llu   constraint violations: %d/%zu"
                " runs\n",
                static_cast<unsigned long long>(sweep_faults),
                sweep_violations, jobs.size());
    return invariant_breaks == 0 ? 0 : 1;
}
