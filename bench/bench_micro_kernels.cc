/**
 * @file
 * Per-kernel microbenchmark for the SIMD kernel layer (sim/kernels.h):
 * ns/element for every kernel at the active dispatch level and at the
 * scalar reference, so the vector backends' advantage is a number the
 * regression gate can hold on to (`bench_micro_kernels --json`, floors
 * recorded in BENCH_kernels.json via bench/check_regression --update).
 *
 * "Element" is one uint64 word for the RNG/alias kernels, one double
 * for the reductions, and one byte for checksum/copy.  Batch sizes use
 * a hot size (4096) large enough that dispatch overhead amortizes out
 * — the point is kernel body throughput, not call cost (bench_sweep
 * carries the end-to-end number).
 *
 * Timing is best-of-reps over a fixed iteration budget per kernel; the
 * whole binary stays well under a second so the regression gate can
 * afford to run it every time.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/alias_sampler.h"
#include "sim/kernels.h"
#include "sim/rng.h"
#include "sim/simd.h"

namespace kernels = smartconf::sim::kernels;
namespace simd = smartconf::sim::simd;
using smartconf::sim::AliasTable;
using smartconf::sim::Rng;

namespace {

constexpr std::size_t kWords = 4096;  ///< uint64 elements per batch
constexpr std::size_t kBytes = 65536; ///< checksum/copy payload

/** Best-of-reps ns/element for @p body run @p iters times per rep. */
template <typename Body>
double
nsPerElement(std::size_t elements, int iters, Body &&body)
{
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i)
            body();
        const auto t1 = std::chrono::steady_clock::now();
        const double ns =
            std::chrono::duration<double, std::nano>(t1 - t0).count() /
            (static_cast<double>(iters) *
             static_cast<double>(elements));
        if (rep == 0 || ns < best)
            best = ns;
    }
    return best;
}

struct Row
{
    const char *name;
    double active_ns = 0.0;
    double scalar_ns = 0.0;
};

/** volatile sink so reductions/checksums cannot be optimized away. */
volatile std::uint64_t g_sink;

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--json")
            json = true;

    // Inputs are built once and reused; every kernel reads fresh from
    // L1/L2, which is how the hot loops use them (scratch buffers).
    std::vector<std::uint64_t> words(kWords);
    std::vector<std::uint64_t> scratch(kWords);
    std::vector<double> doubles(kWords);
    std::vector<unsigned char> bytes(kBytes);
    std::vector<unsigned char> dst(kBytes);
    Rng seedr(0xbe7c4);
    for (auto &w : words)
        w = seedr.next();
    for (auto &d : doubles)
        d = seedr.uniform(-1e6, 1e6);
    for (auto &b : bytes)
        b = static_cast<unsigned char>(seedr.next());
    const auto table = AliasTable::zipfian(100000, 0.99);
    Rng rng(1);

    Row rows[] = {
        {"rng_fill"},      {"alias_sample"}, {"reduce_sum"},
        {"reduce_minmax"}, {"checksum"},     {"copy"},
        {"gaussian"},
    };
    const auto run_all = [&](bool scalar) {
        const auto set = [&](Row &row, double v) {
            (scalar ? row.scalar_ns : row.active_ns) = v;
        };
        set(rows[0], nsPerElement(kWords, 400, [&] {
                rng.fillRaw(scratch.data(), kWords);
            }));
        // End-to-end Zipfian draw (fillRaw + aliasResolve), the shape
        // the workload generators actually use per tick.
        set(rows[1], nsPerElement(kWords, 400, [&] {
                table->sampleBatch(rng, scratch.data(), kWords);
            }));
        set(rows[2], nsPerElement(kWords, 400, [&] {
                g_sink = static_cast<std::uint64_t>(
                    kernels::reduceSum(doubles.data(), kWords));
            }));
        set(rows[3], nsPerElement(kWords, 400, [&] {
                const kernels::MinMax m =
                    kernels::reduceMinMax(doubles.data(), kWords);
                g_sink = static_cast<std::uint64_t>(m.min + m.max);
            }));
        set(rows[4], nsPerElement(kBytes, 100, [&] {
                g_sink = kernels::checksum(bytes.data(), kBytes);
            }));
        set(rows[5], nsPerElement(kBytes, 100, [&] {
                kernels::copyBytes(dst.data(), bytes.data(), kBytes);
            }));
        // End-to-end normal draw (fillRaw + polynomial Box-Muller),
        // the YCSB size-jitter path; element = one normal.
        set(rows[6], nsPerElement(kWords, 400, [&] {
                rng.gaussianBatch(0.0, 1.0, doubles.data(), kWords);
            }));
    };

    // Active level first (honours SMARTCONF_ISA), then the pinned
    // scalar reference for the speedup column.
    const simd::Isa active = kernels::activeIsa();
    run_all(false);
    kernels::setIsa(simd::Isa::Scalar);
    run_all(true);
    kernels::setIsa(active);

    if (json) {
        std::printf("{\n");
        std::printf("  \"bench\": \"bench_micro_kernels\",\n");
        std::printf("  \"isa_detected\": \"%s\",\n",
                    simd::name(simd::detected()));
        std::printf("  \"isa_active\": \"%s\",\n", simd::name(active));
        std::printf("  \"kernels\": [\n");
        const std::size_t n = sizeof rows / sizeof rows[0];
        for (std::size_t i = 0; i < n; ++i) {
            std::printf("    {\"name\": \"%s\", "
                        "\"ns_per_element\": %.4f, "
                        "\"scalar_ns_per_element\": %.4f, "
                        "\"speedup_vs_scalar\": %.2f}%s\n",
                        rows[i].name, rows[i].active_ns,
                        rows[i].scalar_ns,
                        rows[i].active_ns > 0.0
                            ? rows[i].scalar_ns / rows[i].active_ns
                            : 0.0,
                        i + 1 < n ? "," : "");
        }
        std::printf("  ]\n}\n");
        return 0;
    }

    std::printf("SIMD kernel microbenchmarks (isa: %s, scalar "
                "reference in parens)\n\n",
                simd::name(active));
    for (const Row &row : rows)
        std::printf("%-14s %8.3f ns/elem  (scalar %8.3f, %.2fx)\n",
                    row.name, row.active_ns, row.scalar_ns,
                    row.active_ns > 0.0
                        ? row.scalar_ns / row.active_ns
                        : 0.0);
    return 0;
}
