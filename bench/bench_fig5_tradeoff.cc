/**
 * @file
 * Regenerates Figure 5: trade-off performance of SmartConf vs static
 * configurations across all six case studies.
 *
 * For each issue this harness runs:
 *   - SmartConf (profiling on a different seed than evaluation);
 *   - Static-Buggy-Default  (the original default);
 *   - Static-Patch-Default  (the developers' patched default);
 *   - Static-Optimal        (exhaustive search over the candidate grid,
 *                            feasible on every search seed, best mean
 *                            trade-off — the paper's "best static
 *                            configuration developers can choose");
 *   - Static-Nonoptimal     (the most conservative feasible setting —
 *                            what a cautious operator would pick).
 *
 * Bars are normalized to Static-Optimal, exactly like the figure;
 * policies that violate the constraint are marked with an X.
 *
 * The exhaustive search (candidate grid x 8 seeds x 6 scenarios) fans
 * out over a SweepRunner: `--jobs N` picks the worker count (default:
 * hardware concurrency; `--jobs 1` is the serial path) and the run
 * cache guarantees no (scenario, policy, seed) triple simulates twice
 * — the display rows for the winning candidates are pure cache hits.
 * The printed table is byte-identical for every --jobs value; sweep
 * timing and cache stats go to stderr.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "exec/sweep.h"
#include "scenarios/scenario.h"

namespace {

using namespace smartconf::scenarios;
using smartconf::exec::SweepJob;
using smartconf::exec::SweepRunner;

constexpr std::uint64_t kEvalSeed = 1;
const std::vector<std::uint64_t> kSearchSeeds = {1, 2, 3, 4, 5, 6, 7, 8};

struct Bar
{
    std::string label;
    double value = 0.0;   // raw trade-off score (higher is better)
    bool violated = false;
    double conf = 0.0;    // the (mean) configuration value
};

/** Search verdict for one scenario's candidate grid. */
struct SearchOutcome
{
    double best_value = -1.0, best_conf = 0.0;
    double worst_feasible_value = -1.0, worst_feasible_conf = 0.0;
};

/**
 * Reduce the (candidate x seed) result block for one scenario, located
 * at @p base in the sweep's result vector: a candidate is feasible iff
 * it violates on no search seed; rank the feasible ones by mean
 * trade-off.  Candidates iterate in grid order, so this reproduces the
 * old serial search exactly.
 */
SearchOutcome
reduceSearch(const ScenarioInfo &info,
             const std::vector<ScenarioResult> &results,
             std::size_t base)
{
    SearchOutcome out;
    const std::size_t seeds = kSearchSeeds.size();
    for (std::size_t ci = 0; ci < info.static_candidates.size(); ++ci) {
        double acc = 0.0;
        bool feasible = true;
        for (std::size_t si = 0; si < seeds; ++si) {
            const ScenarioResult &r = results[base + ci * seeds + si];
            if (r.violated) {
                feasible = false;
                break;
            }
            acc += r.tradeoff;
        }
        if (!feasible)
            continue;
        const double mean = acc / static_cast<double>(seeds);
        const double c = info.static_candidates[ci];
        if (mean > out.best_value) {
            out.best_value = mean;
            out.best_conf = c;
        }
        if (out.worst_feasible_value < 0.0) {
            out.worst_feasible_value = mean;
            out.worst_feasible_conf = c;
        }
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const smartconf::exec::SweepArgs args =
        smartconf::exec::parseSweepArgs(argc, argv);
    SweepRunner runner(args.sweep);

    std::printf("Figure 5. Trade-off performance comparison\n");
    std::printf("(bars normalized to Static-Optimal; X = constraint "
                "violated)\n\n");
    std::printf("%-8s %-22s %9s %9s %6s  %s\n", "issue", "policy",
                "score", "speedup", "conf", "");
    std::printf("%s\n", std::string(78, '-').c_str());

    const std::vector<std::unique_ptr<Scenario>> scenarios =
        makeAllScenarios();

    // --- phase 1: the exhaustive feasibility search, all scenarios at
    // once (candidate grid x search seeds).
    std::vector<SweepJob> search_jobs;
    for (const auto &s : scenarios) {
        const ScenarioInfo &info = s->info();
        for (const double c : info.static_candidates)
            for (const std::uint64_t seed : kSearchSeeds)
                search_jobs.push_back(SweepJob::forScenario(
                    info.id, Policy::makeStatic(c), seed));
    }
    const std::vector<ScenarioResult> search_results =
        runner.run(search_jobs);
    const double search_ms = runner.lastWallMs();

    // --- phase 2: the displayed bars (depend on the search verdicts).
    // Static-Optimal/Nonoptimal at kEvalSeed are cache hits: kEvalSeed
    // is a search seed, so those triples were already simulated.
    std::vector<SweepJob> bar_jobs;
    std::vector<SearchOutcome> outcomes;
    std::vector<std::size_t> bar_base;
    std::size_t cursor = 0;
    for (const auto &s : scenarios) {
        const ScenarioInfo &info = s->info();
        const SearchOutcome o = reduceSearch(info, search_results,
                                             cursor);
        cursor += info.static_candidates.size() * kSearchSeeds.size();
        outcomes.push_back(o);

        bar_base.push_back(bar_jobs.size());
        bar_jobs.push_back(
            SweepJob::forScenario(info.id, Policy::smart(), kEvalSeed));
        if (o.best_value > 0.0)
            bar_jobs.push_back(SweepJob::forScenario(
                info.id, Policy::makeStatic(o.best_conf), kEvalSeed));
        if (o.worst_feasible_value > 0.0 &&
            o.worst_feasible_conf != o.best_conf)
            bar_jobs.push_back(SweepJob::forScenario(
                info.id, Policy::makeStatic(o.worst_feasible_conf),
                kEvalSeed));
        bar_jobs.push_back(SweepJob::forScenario(
            info.id, Policy::makeStatic(info.patch_default), kEvalSeed));
        bar_jobs.push_back(SweepJob::forScenario(
            info.id, Policy::makeStatic(info.buggy_default), kEvalSeed));
    }
    const std::vector<ScenarioResult> bar_results =
        runner.run(bar_jobs);
    const double bars_ms = runner.lastWallMs();

    double smart_speedup_product = 1.0;
    int scenarios_won = 0, scenario_count = 0;

    for (std::size_t idx = 0; idx < scenarios.size(); ++idx) {
        const ScenarioInfo &info = scenarios[idx]->info();
        const SearchOutcome &o = outcomes[idx];
        std::size_t j = bar_base[idx];

        std::vector<Bar> bars;
        {
            const ScenarioResult &r = bar_results[j++];
            bars.push_back({"SmartConf", r.tradeoff, r.violated,
                            r.mean_conf});
        }
        if (o.best_value > 0.0) {
            const ScenarioResult &r = bar_results[j++];
            bars.push_back({"Static-Optimal", r.tradeoff, r.violated,
                            o.best_conf});
        }
        if (o.worst_feasible_value > 0.0 &&
            o.worst_feasible_conf != o.best_conf) {
            const ScenarioResult &r = bar_results[j++];
            bars.push_back({"Static-Nonoptimal", r.tradeoff,
                            r.violated, o.worst_feasible_conf});
        }
        {
            const ScenarioResult &r = bar_results[j++];
            bars.push_back({"Static-Patch-Default", r.tradeoff,
                            r.violated, info.patch_default});
        }
        {
            const ScenarioResult &r = bar_results[j++];
            bars.push_back({"Static-Buggy-Default", r.tradeoff,
                            r.violated, info.buggy_default});
        }

        const double norm = bars[1].value > 0.0 ? bars[1].value : 1.0;
        for (const Bar &b : bars) {
            std::printf("%-8s %-22s %9.3f %8.2fx %6.0f  %s\n",
                        info.id.c_str(), b.label.c_str(), b.value,
                        b.value / norm, b.conf,
                        b.violated ? "X (constraint violated)" : "");
        }
        std::printf("%s\n", std::string(78, '-').c_str());

        ++scenario_count;
        if (!bars[0].violated && bars[0].value >= norm * 0.999)
            ++scenarios_won;
        smart_speedup_product *= bars[0].value / norm;
    }

    const double geo_mean =
        std::pow(smart_speedup_product, 1.0 / scenario_count);
    std::printf("\nSmartConf matches or beats the best static setting "
                "in %d of %d cases;\n", scenarios_won, scenario_count);
    std::printf("geometric-mean speedup over Static-Optimal: %.2fx\n",
                geo_mean);
    std::printf("(paper: SmartConf satisfies every constraint and "
                "outperforms the best\nstatic configuration, e.g. "
                "1.36x on HB3813 and 1.50x on MR2820)\n");

    // Timing and cache stats go to stderr so stdout stays byte-
    // identical across --jobs values.
    const auto cs = runner.cache().stats();
    std::fprintf(stderr,
                 "[sweep] jobs=%zu search=%.1f ms bars=%.1f ms  "
                 "runs=%zu  cache: %llu hits / %llu misses\n",
                 runner.jobs(), search_ms, bars_ms,
                 search_jobs.size() + bar_jobs.size(),
                 static_cast<unsigned long long>(cs.hits),
                 static_cast<unsigned long long>(cs.misses));
    return 0;
}
