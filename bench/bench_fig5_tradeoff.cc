/**
 * @file
 * Regenerates Figure 5: trade-off performance of SmartConf vs static
 * configurations across all six case studies.
 *
 * For each issue this harness runs:
 *   - SmartConf (profiling on a different seed than evaluation);
 *   - Static-Buggy-Default  (the original default);
 *   - Static-Patch-Default  (the developers' patched default);
 *   - Static-Optimal        (exhaustive search over the candidate grid,
 *                            feasible on every search seed, best mean
 *                            trade-off — the paper's "best static
 *                            configuration developers can choose");
 *   - Static-Nonoptimal     (the most conservative feasible setting —
 *                            what a cautious operator would pick).
 *
 * Bars are normalized to Static-Optimal, exactly like the figure;
 * policies that violate the constraint are marked with an X.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "scenarios/scenario.h"

namespace {

using namespace smartconf::scenarios;

constexpr std::uint64_t kEvalSeed = 1;
const std::vector<std::uint64_t> kSearchSeeds = {1, 2, 3, 4, 5, 6, 7, 8};

struct Bar
{
    std::string label;
    double value = 0.0;   // raw trade-off score (higher is better)
    bool violated = false;
    double conf = 0.0;    // the (mean) configuration value
};

/** Run one candidate across the search seeds; feasible iff all pass. */
bool
feasibleEverywhere(const Scenario &s, double candidate, double *mean)
{
    double acc = 0.0;
    for (const std::uint64_t seed : kSearchSeeds) {
        const ScenarioResult r =
            s.run(Policy::makeStatic(candidate), seed);
        if (r.violated)
            return false;
        acc += r.tradeoff;
    }
    *mean = acc / static_cast<double>(kSearchSeeds.size());
    return true;
}

} // namespace

int
main()
{
    std::printf("Figure 5. Trade-off performance comparison\n");
    std::printf("(bars normalized to Static-Optimal; X = constraint "
                "violated)\n\n");
    std::printf("%-8s %-22s %9s %9s %6s  %s\n", "issue", "policy",
                "score", "speedup", "conf", "");
    std::printf("%s\n", std::string(78, '-').c_str());

    double smart_speedup_product = 1.0;
    int scenarios_won = 0, scenario_count = 0;

    for (const auto &s : makeAllScenarios()) {
        const ScenarioInfo &info = s->info();

        // --- exhaustive search for the best static configuration.
        double best_value = -1.0, best_conf = 0.0;
        double worst_feasible_value = -1.0, worst_feasible_conf = 0.0;
        for (const double c : info.static_candidates) {
            double mean = 0.0;
            if (!feasibleEverywhere(*s, c, &mean))
                continue;
            if (mean > best_value) {
                best_value = mean;
                best_conf = c;
            }
            if (worst_feasible_value < 0.0) {
                worst_feasible_value = mean;
                worst_feasible_conf = c;
            }
        }

        std::vector<Bar> bars;
        {
            const ScenarioResult r = s->run(Policy::smart(), kEvalSeed);
            bars.push_back({"SmartConf", r.tradeoff, r.violated,
                            r.mean_conf});
        }
        if (best_value > 0.0) {
            const ScenarioResult r =
                s->run(Policy::makeStatic(best_conf), kEvalSeed);
            bars.push_back({"Static-Optimal", r.tradeoff, r.violated,
                            best_conf});
        }
        if (worst_feasible_value > 0.0 &&
            worst_feasible_conf != best_conf) {
            const ScenarioResult r = s->run(
                Policy::makeStatic(worst_feasible_conf), kEvalSeed);
            bars.push_back({"Static-Nonoptimal", r.tradeoff,
                            r.violated, worst_feasible_conf});
        }
        {
            const ScenarioResult r = s->run(
                Policy::makeStatic(info.patch_default), kEvalSeed);
            bars.push_back({"Static-Patch-Default", r.tradeoff,
                            r.violated, info.patch_default});
        }
        {
            const ScenarioResult r = s->run(
                Policy::makeStatic(info.buggy_default), kEvalSeed);
            bars.push_back({"Static-Buggy-Default", r.tradeoff,
                            r.violated, info.buggy_default});
        }

        const double norm = bars[1].value > 0.0 ? bars[1].value : 1.0;
        for (const Bar &b : bars) {
            std::printf("%-8s %-22s %9.3f %8.2fx %6.0f  %s\n",
                        info.id.c_str(), b.label.c_str(), b.value,
                        b.value / norm, b.conf,
                        b.violated ? "X (constraint violated)" : "");
        }
        std::printf("%s\n", std::string(78, '-').c_str());

        ++scenario_count;
        if (!bars[0].violated && bars[0].value >= norm * 0.999)
            ++scenarios_won;
        smart_speedup_product *= bars[0].value / norm;
    }

    const double geo_mean =
        std::pow(smart_speedup_product, 1.0 / scenario_count);
    std::printf("\nSmartConf matches or beats the best static setting "
                "in %d of %d cases;\n", scenarios_won, scenario_count);
    std::printf("geometric-mean speedup over Static-Optimal: %.2fx\n",
                geo_mean);
    std::printf("(paper: SmartConf satisfies every constraint and "
                "outperforms the best\nstatic configuration, e.g. "
                "1.36x on HB3813 and 1.50x on MR2820)\n");
    return 0;
}
