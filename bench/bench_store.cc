/**
 * @file
 * Segment-store benchmark: fill rate, lookup latency, compaction
 * throughput, and warm-second-process wall time at cache scale
 * (`bench_store --json > BENCH_store.json`).
 *
 * The workload is synthetic on purpose: ~50k small ScenarioResults
 * pushed through the full DiskRunCache -> SegmentStore path (serialize,
 * checksum, shard, seal, publish), then read back through the same
 * batched path a warm process uses.  Simulating 50k real runs would
 * take minutes and measure the simulator; this measures the store.
 *
 * `--entries N` (or BENCH_STORE_ENTRIES) scales the fill; N=0 prints a
 * skipped-run JSON so gates can distinguish "skipped" from "broken".
 * `--dir PATH` overrides the store root (default: a fresh directory
 * under the system temp dir, removed afterwards).
 */

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "exec/disk_cache.h"
#include "scenarios/scenario.h"
#include "sim/metrics.h"
#include "store/query.h"
#include "store/segment_store.h"

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** Small synthetic result: ~40 series points, distinct per (i). */
smartconf::scenarios::ScenarioResult
resultFor(std::uint64_t i)
{
    smartconf::scenarios::ScenarioResult r;
    r.scenario_id = "bench-store";
    r.policy_label = "synthetic";
    r.goal_value = 100.0 + static_cast<double>(i % 97);
    r.tradeoff = static_cast<double>(i) * 0.5;
    r.ops_simulated = i;
    r.perf_series = smartconf::sim::TimeSeries("perf");
    r.conf_series = smartconf::sim::TimeSeries("conf");
    r.tradeoff_series = smartconf::sim::TimeSeries("ops");
    for (int t = 0; t < 40; ++t)
        r.perf_series.record(t, static_cast<double>((i * 31 + t) % 1000));
    return r;
}

std::string
keyFor(std::uint64_t i)
{
    // Mirrors RunCache::key shapes so the queryable index has real
    // (scenario family, policy, seed) structure to range over.
    return "bench/scn" + std::to_string(i % 6) +
           "|fixed:v=" + std::to_string(i % 8) +
           ":label=B|s=" + std::to_string(i);
}

} // namespace

int
main(int argc, char **argv)
{
    using smartconf::exec::DiskRunCache;

    std::uint64_t entries = 50000;
    if (const char *env = std::getenv("BENCH_STORE_ENTRIES"))
        entries = std::strtoull(env, nullptr, 10);
    std::string root;
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0)
            json = true;
        else if (std::strcmp(argv[i], "--entries") == 0 && i + 1 < argc)
            entries = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strncmp(argv[i], "--entries=", 10) == 0)
            entries = std::strtoull(argv[i] + 10, nullptr, 10);
        else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc)
            root = argv[++i];
        else if (std::strncmp(argv[i], "--dir=", 6) == 0)
            root = argv[i] + 6;
    }

    if (entries == 0) {
        std::printf("{\n  \"bench\": \"bench_store\",\n"
                    "  \"skipped\": true\n}\n");
        return 0;
    }

    const bool own_root = root.empty();
    if (own_root)
        root = (fs::temp_directory_path() /
                ("smartconf-bench-store-" +
                 std::to_string(static_cast<unsigned long>(::getpid()))))
                   .string();
    fs::remove_all(root);

    double fill_ms, lookup_ms, compact_ms, warm_ms, query_ms;
    std::uint64_t compact_in = 0, compact_out = 0, segments_before = 0,
                  segments_after = 0, query_rows = 0,
                  warm_segments_opened = 0, warm_reads = 0,
                  warm_read_bytes = 0;
    constexpr std::uint64_t kLookups = 2000;

    {
        // Fill through the production path.  Background compaction off:
        // the compaction pass below times it deterministically.
        smartconf::store::SegmentStore::Options opts;
        opts.auto_compact = false;
        DiskRunCache cache(root, opts);
        const auto t0 = Clock::now();
        for (std::uint64_t i = 0; i < entries; ++i) {
            if (!cache.store(keyFor(i), resultFor(i))) {
                std::fprintf(stderr, "store failed at %llu\n",
                             static_cast<unsigned long long>(i));
                return 1;
            }
        }
        if (!cache.flush()) {
            std::fprintf(stderr, "flush failed\n");
            return 1;
        }
        fill_ms = msSince(t0);
        segments_before = cache.segmentStore().segmentCount();

        // In-process lookup latency over a strided sample (all sealed
        // by now, so these are index-search + pread, not pending hits).
        const auto t1 = Clock::now();
        smartconf::scenarios::ScenarioResult out;
        for (std::uint64_t j = 0; j < kLookups; ++j) {
            const std::uint64_t i = (j * 25013) % entries;
            if (!cache.load(keyFor(i), out)) {
                std::fprintf(stderr, "lookup miss at %llu\n",
                             static_cast<unsigned long long>(i));
                return 1;
            }
        }
        lookup_ms = msSince(t1);

        // Synchronous compaction: merge every multi-segment shard.
        const auto t2 = Clock::now();
        const smartconf::store::CompactionResult cr =
            cache.segmentStore().compact();
        compact_ms = msSince(t2);
        compact_in = cr.entries_in;
        compact_out = cr.entries_out;
        segments_after = cache.segmentStore().segmentCount();

        // Index-only range query (the smartconfctl query path).
        const auto t3 = Clock::now();
        smartconf::store::QueryFilter f;
        f.scenario_prefix = "bench/scn3";
        f.seed_min = entries / 4;
        f.seed_max = (3 * entries) / 4;
        query_rows =
            smartconf::store::queryStore(cache.segmentStore(), f)
                .size();
        query_ms = msSince(t3);
    }

    {
        // Warm second process: a fresh instance over the same root.
        smartconf::store::SegmentStore::Options opts;
        opts.auto_compact = false;
        const auto t0 = Clock::now();
        DiskRunCache cache(root, opts);
        smartconf::scenarios::ScenarioResult out;
        for (std::uint64_t j = 0; j < kLookups; ++j) {
            const std::uint64_t i = (j * 40013) % entries;
            if (!cache.load(keyFor(i), out)) {
                std::fprintf(stderr, "warm miss at %llu\n",
                             static_cast<unsigned long long>(i));
                return 1;
            }
        }
        warm_ms = msSince(t0);
        const smartconf::store::StoreStats io = cache.ioStats();
        warm_segments_opened = io.segments_opened;
        warm_reads = io.reads;
        warm_read_bytes = io.read_bytes;
    }

    if (own_root)
        fs::remove_all(root);

    const double fill_rate =
        fill_ms > 0 ? static_cast<double>(entries) / (fill_ms / 1000.0)
                    : 0.0;
    const double lookup_us =
        1000.0 * lookup_ms / static_cast<double>(kLookups);
    const double compact_rate =
        compact_ms > 0
            ? static_cast<double>(compact_in) / (compact_ms / 1000.0)
            : 0.0;

    if (json) {
        std::printf("{\n");
        std::printf("  \"bench\": \"bench_store\",\n");
        std::printf("  \"entries\": %llu,\n",
                    static_cast<unsigned long long>(entries));
        std::printf("  \"fill_ms\": %.3f,\n", fill_ms);
        std::printf("  \"fill_entries_per_sec\": %.0f,\n", fill_rate);
        std::printf("  \"lookup_us_avg\": %.3f,\n", lookup_us);
        std::printf("  \"segments_before_compact\": %llu,\n",
                    static_cast<unsigned long long>(segments_before));
        std::printf("  \"segments_after_compact\": %llu,\n",
                    static_cast<unsigned long long>(segments_after));
        std::printf("  \"compact_ms\": %.3f,\n", compact_ms);
        std::printf("  \"compact_entries_per_sec\": %.0f,\n",
                    compact_rate);
        std::printf("  \"compact_entries_in\": %llu,\n",
                    static_cast<unsigned long long>(compact_in));
        std::printf("  \"compact_entries_out\": %llu,\n",
                    static_cast<unsigned long long>(compact_out));
        std::printf("  \"query_ms\": %.3f,\n", query_ms);
        std::printf("  \"query_rows\": %llu,\n",
                    static_cast<unsigned long long>(query_rows));
        std::printf("  \"warm_process_wall_ms\": %.3f,\n", warm_ms);
        std::printf("  \"warm_lookups\": %llu,\n",
                    static_cast<unsigned long long>(kLookups));
        std::printf("  \"warm_store_reads\": %llu,\n",
                    static_cast<unsigned long long>(warm_reads));
        std::printf("  \"warm_store_read_bytes\": %llu,\n",
                    static_cast<unsigned long long>(warm_read_bytes));
        std::printf("  \"warm_segments_opened\": %llu\n",
                    static_cast<unsigned long long>(
                        warm_segments_opened));
        std::printf("}\n");
        return 0;
    }

    std::printf("Segment-store benchmark (%llu entries)\n\n",
                static_cast<unsigned long long>(entries));
    std::printf("fill:        %10.1f ms  (%.0f entries/s, %llu "
                "segments)\n",
                fill_ms, fill_rate,
                static_cast<unsigned long long>(segments_before));
    std::printf("lookup:      %10.3f us/lookup (%llu sealed lookups)\n",
                lookup_us, static_cast<unsigned long long>(kLookups));
    std::printf("compaction:  %10.1f ms  (%llu -> %llu entries, %llu "
                "-> %llu segments, %.0f entries/s)\n",
                compact_ms,
                static_cast<unsigned long long>(compact_in),
                static_cast<unsigned long long>(compact_out),
                static_cast<unsigned long long>(segments_before),
                static_cast<unsigned long long>(segments_after),
                compact_rate);
    std::printf("query:       %10.1f ms  (%llu rows, index-only)\n",
                query_ms, static_cast<unsigned long long>(query_rows));
    std::printf("warm proc:   %10.1f ms  (%llu lookups, %llu segments "
                "opened)\n",
                warm_ms, static_cast<unsigned long long>(kLookups),
                static_cast<unsigned long long>(warm_segments_opened));
    return 0;
}
