/**
 * @file Degenerate-profile verdicts.
 *
 * Each generator in fault/profile_faults.h manufactures one failure
 * *shape*; these tests pin the synthesis verdict for each: the profiler
 * must say "insufficient" (or flag non-monotonicity / a flat gain)
 * instead of silently emitting the most aggressive controller possible.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/pole.h"
#include "core/profiler.h"
#include "fault/profile_faults.h"

namespace smartconf::fault {
namespace {

const std::vector<double> kSettings = {40.0, 80.0, 120.0, 160.0};

TEST(ProfileFault, SingleSettingIsInsufficientAndMaximallyDistrusted)
{
    const Profiler p = singleSettingProfile(100.0, 500.0, 5.0, 10, 3);
    EXPECT_EQ(p.settingCount(), 1u);
    EXPECT_FALSE(p.sufficient());
    const ProfileSummary s = p.summarize();
    EXPECT_TRUE(s.insufficient);
    EXPECT_DOUBLE_EQ(s.delta, kMaxDelta);
    EXPECT_GE(s.pole, 0.9) << "distrust must mean a slow pole";
    EXPECT_LT(s.pole, 1.0);
}

TEST(ProfileFault, AllSingletonGroupsAreInsufficient)
{
    const Profiler p = allSingletonProfile(kSettings, 2.0, 40.0);
    EXPECT_EQ(p.settingCount(), kSettings.size());
    const ProfileSummary s = p.summarize();
    EXPECT_TRUE(s.insufficient);
    EXPECT_EQ(s.noise_settings, 0u);
    EXPECT_DOUBLE_EQ(s.lambda, kConservativeLambda);
    // The gain itself IS identifiable from four collinear points.
    EXPECT_NEAR(s.alpha, 2.0, 1e-9);
}

TEST(ProfileFault, ZeroVarianceWithDistinctMeansIsLegitimate)
{
    // A noise-free profile is not a degenerate one: the paper's
    // formulas give delta = 1 (no model error observed) and lambda = 0.
    const Profiler p = zeroVarianceProfile(kSettings, 2.0, 40.0, 5);
    const ProfileSummary s = p.summarize();
    EXPECT_FALSE(s.insufficient);
    EXPECT_DOUBLE_EQ(s.delta, 1.0);
    EXPECT_DOUBLE_EQ(s.lambda, 0.0);
    EXPECT_NEAR(s.alpha, 2.0, 1e-9);
}

TEST(ProfileFault, FlatSurfaceYieldsNearZeroGain)
{
    // alpha ~ 0 means the config does not influence the metric at all;
    // the controller built from it would divide by ~0.  The summary
    // must expose the tiny gain so the runtime can refuse it
    // (Runtime throws on alpha == 0 / non-finite).
    const Profiler p = flatSurfaceProfile(kSettings, 300.0, 2.0, 10, 7);
    const ProfileSummary s = p.summarize();
    EXPECT_TRUE(std::isfinite(s.alpha));
    EXPECT_NEAR(s.alpha, 0.0, 0.05);
    // Flatness also inflates distrust: noise dominates the (near-zero)
    // signal, so the projected pole backs far off.
    EXPECT_GT(s.delta, 1.0);
}

TEST(ProfileFault, ValleyIsFlaggedNonMonotonic)
{
    // Odd-sized grid: the bowl bottom lands on the middle setting and
    // the two endpoints agree, so the interior dips far below the
    // first/last envelope.
    const Profiler p = valleyProfile({40.0, 80.0, 120.0, 160.0, 200.0},
                                     400.0, 0.05, 1.0, 10, 11);
    const ProfileSummary s = p.summarize();
    EXPECT_FALSE(s.monotonic)
        << "a U-shaped response must not pass as linear";
    EXPECT_TRUE(std::isfinite(s.alpha));
}

TEST(ProfileFault, GeneratorsAreDeterministic)
{
    const ProfileSummary a =
        flatSurfaceProfile(kSettings, 300.0, 2.0, 10, 7).summarize();
    const ProfileSummary b =
        flatSurfaceProfile(kSettings, 300.0, 2.0, 10, 7).summarize();
    EXPECT_DOUBLE_EQ(a.alpha, b.alpha);
    EXPECT_DOUBLE_EQ(a.lambda, b.lambda);
    EXPECT_DOUBLE_EQ(a.delta, b.delta);
    EXPECT_DOUBLE_EQ(a.pole, b.pole);
}

} // namespace
} // namespace smartconf::fault
