/** @file Unit tests for the seeded fault injectors. */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/sensor.h"
#include "fault/loop_fault.h"
#include "fault/sensor_fault.h"
#include "fault/spec.h"
#include "sim/rng.h"

namespace smartconf::fault {
namespace {

sim::Rng
chainRng(std::uint64_t seed)
{
    return sim::Rng(seed).fork(42);
}

TEST(FaultInjectorChain, DeterministicForSameSeed)
{
    const ChaosSpec spec = ChaosSpec::kitchenSink(9);
    SensorFaultChain a(spec, chainRng(1));
    SensorFaultChain b(spec, chainRng(1));
    for (int i = 0; i < 5000; ++i) {
        const double v = 100.0 + i;
        const double ra = a.apply(v);
        const double rb = b.apply(v);
        // NaN != NaN: compare bit-for-bit via the isnan split.
        if (std::isnan(ra))
            ASSERT_TRUE(std::isnan(rb)) << "diverged at reading " << i;
        else
            ASSERT_EQ(ra, rb) << "diverged at reading " << i;
    }
    EXPECT_EQ(a.stats().injected(), b.stats().injected());
    EXPECT_GT(a.stats().injected(), 0u);
}

TEST(FaultInjectorChain, DistinctSeedsDiverge)
{
    const ChaosSpec spec = ChaosSpec::nanSensor(0.2, 3);
    SensorFaultChain a(spec, chainRng(1));
    SensorFaultChain b(spec, chainRng(2));
    int differing = 0;
    for (int i = 0; i < 1000; ++i) {
        const double ra = a.apply(1.0);
        const double rb = b.apply(1.0);
        if (std::isnan(ra) != std::isnan(rb))
            ++differing;
    }
    EXPECT_GT(differing, 0);
}

TEST(FaultInjectorChain, NanRateMatchesSpec)
{
    const ChaosSpec spec = ChaosSpec::nanSensor(0.1, 7);
    SensorFaultChain chain(spec, chainRng(5));
    int nans = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (std::isnan(chain.apply(50.0)))
            ++nans;
    }
    const double rate = static_cast<double>(nans) / n;
    EXPECT_NEAR(rate, 0.1, 0.01);
    EXPECT_EQ(chain.stats().nans, static_cast<std::uint64_t>(nans));
}

TEST(FaultInjectorChain, DropoutHoldsLastHonestValue)
{
    ChaosSpec spec;
    spec.dropout_prob = 1.0; // every reading dropped
    SensorFaultChain chain(spec, chainRng(1));
    // Nothing delivered yet: a dropout has nothing to hold.
    EXPECT_TRUE(std::isnan(chain.apply(5.0)));
    // From now on the first reading (5.0) is the held value.
    EXPECT_DOUBLE_EQ(chain.apply(6.0), 5.0);
    EXPECT_DOUBLE_EQ(chain.apply(7.0), 6.0);
}

TEST(FaultInjectorChain, StaleWindowFreezesTheReading)
{
    ChaosSpec spec;
    spec.stale_prob = 1.0; // window opens immediately and re-opens
    spec.stale_len = 3;
    SensorFaultChain chain(spec, chainRng(1));
    const double first = chain.apply(10.0);
    EXPECT_DOUBLE_EQ(first, 10.0); // frozen at the first honest value
    EXPECT_DOUBLE_EQ(chain.apply(20.0), 10.0);
    EXPECT_DOUBLE_EQ(chain.apply(30.0), 10.0);
    EXPECT_EQ(chain.stats().stale_reads, 3u);
}

TEST(FaultInjectorChain, SpikesMultiply)
{
    const ChaosSpec spec = ChaosSpec::spikes(1.0, 10.0, 1);
    SensorFaultChain chain(spec, chainRng(1));
    EXPECT_DOUBLE_EQ(chain.apply(7.0), 70.0);
    EXPECT_EQ(chain.stats().spikes, 1u);
}

TEST(FaultInjectorChain, InactiveSpecIsIdentity)
{
    const ChaosSpec spec; // all probabilities zero
    EXPECT_FALSE(spec.any());
    SensorFaultChain chain(spec, chainRng(1));
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(chain.apply(static_cast<double>(i)),
                         static_cast<double>(i));
    EXPECT_EQ(chain.stats().injected(), 0u);
}

TEST(FaultInjectorSensor, WrapsWithoutDisturbingTheInner)
{
    GaugeSensor gauge;
    FaultySensor faulty(gauge, ChaosSpec::nanSensor(1.0, 2),
                        chainRng(3));
    faulty.observe(42.0);
    EXPECT_TRUE(std::isnan(faulty.read())); // corrupted at the boundary
    EXPECT_DOUBLE_EQ(gauge.read(), 42.0);   // inner state stays honest
}

TEST(FaultInjectorLoop, SkipRateMatchesSpec)
{
    LoopFault loop(ChaosSpec::skips(0.25, 4), chainRng(6));
    int fired = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (loop.fire())
            ++fired;
    }
    EXPECT_NEAR(static_cast<double>(fired) / n, 0.75, 0.01);
    EXPECT_EQ(loop.stats().invocations, static_cast<std::uint64_t>(n));
    EXPECT_EQ(loop.stats().fired + loop.stats().skips,
              static_cast<std::uint64_t>(n));
}

TEST(FaultInjectorLoop, JitterStretchesThePeriod)
{
    // jitter j: P(stall) = j/(1+j), so the expected invocations per
    // allowed firing is (1+j) — a stretched period, never a shrunk one.
    const double j = 0.5;
    LoopFault loop(ChaosSpec::jitter(j, 4), chainRng(6));
    int fired = 0;
    const int n = 30000;
    for (int i = 0; i < n; ++i) {
        if (loop.fire())
            ++fired;
    }
    const double stretch = static_cast<double>(n) / fired;
    EXPECT_NEAR(stretch, 1.0 + j, 0.05);
}

TEST(FaultInjectorDelay, ServesSeedThenLagsByDelay)
{
    ActuationDelay delay(2, 99.0);
    EXPECT_DOUBLE_EQ(delay.push(1.0), 99.0); // pipe filling
    EXPECT_DOUBLE_EQ(delay.push(2.0), 99.0);
    EXPECT_DOUBLE_EQ(delay.push(3.0), 1.0); // now lagging by 2
    EXPECT_DOUBLE_EQ(delay.push(4.0), 2.0);
}

TEST(FaultInjectorDelay, ZeroDelayIsIdentity)
{
    ActuationDelay delay(0, 99.0);
    EXPECT_DOUBLE_EQ(delay.push(1.0), 1.0);
    EXPECT_EQ(delay.delayedCount(), 0u);
}

TEST(ChaosSpecKey, DistinctSpecsDistinctKeys)
{
    std::vector<ChaosSpec> specs = {
        ChaosSpec{},
        ChaosSpec::nanSensor(0.1),
        ChaosSpec::nanSensor(0.2),
        ChaosSpec::nanSensor(0.1, 1),
        ChaosSpec::infSensor(0.1),
        ChaosSpec::dropout(0.1),
        ChaosSpec::staleSensor(0.1, 8),
        ChaosSpec::staleSensor(0.1, 9),
        ChaosSpec::spikes(0.1, 10.0),
        ChaosSpec::spikes(0.1, 20.0),
        ChaosSpec::skips(0.1),
        ChaosSpec::jitter(0.5),
        ChaosSpec::delayedActuation(3),
        ChaosSpec::kitchenSink(),
    };
    for (std::size_t i = 0; i < specs.size(); ++i) {
        for (std::size_t k = i + 1; k < specs.size(); ++k) {
            EXPECT_NE(specs[i].cacheKey(), specs[k].cacheKey())
                << "specs " << i << " and " << k << " collide";
        }
    }
}

} // namespace
} // namespace smartconf::fault
