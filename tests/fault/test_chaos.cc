/**
 * @file Randomized chaos invariants.
 *
 * The invariants under ANY fault train:
 *   1. the controller's output is always finite and within
 *      [confMin, confMax];
 *   2. under a hard goal, the violation (OOM-class) rate stays under a
 *      bound even while faults fire;
 *   3. chaos runs are byte-reproducible for a fixed seed.
 *
 * The seed matrix is env-driven: SMARTCONF_CHAOS_SEEDS="1,2,3" (CI
 * pins a fixed matrix).  When SMARTCONF_CHAOS_ARTIFACT_DIR is set,
 * any seed that fails an invariant is appended to
 * <dir>/failed_chaos_seeds.txt so CI can upload it for replay.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/chaos.h"
#include "fault/spec.h"
#include "scenarios/hb3813.h"
#include "scenarios/scenario.h"

namespace smartconf::fault {
namespace {

/** CI seed matrix; defaults keep the local run fast but non-trivial. */
std::vector<std::uint64_t>
seedMatrix()
{
    std::vector<std::uint64_t> seeds;
    if (const char *env = std::getenv("SMARTCONF_CHAOS_SEEDS")) {
        std::istringstream in(env);
        std::string tok;
        while (std::getline(in, tok, ',')) {
            if (!tok.empty())
                seeds.push_back(std::strtoull(tok.c_str(), nullptr, 10));
        }
    }
    if (seeds.empty())
        seeds = {1, 7, 42};
    return seeds;
}

/** Record a failing seed for CI artifact upload. */
void
recordFailedSeed(const std::string &what, std::uint64_t seed)
{
    const char *dir = std::getenv("SMARTCONF_CHAOS_ARTIFACT_DIR");
    if (dir == nullptr)
        return;
    std::ofstream out(std::string(dir) + "/failed_chaos_seeds.txt",
                      std::ios::app);
    out << what << " seed=" << seed << "\n";
}

/** Every injector kind, alone and combined. */
std::vector<std::pair<std::string, ChaosSpec>>
specGrid()
{
    return {
        {"nan", ChaosSpec::nanSensor(0.10)},
        {"inf", ChaosSpec::infSensor(0.05)},
        {"dropout", ChaosSpec::dropout(0.15)},
        {"stale", ChaosSpec::staleSensor(0.05, 10)},
        {"spike", ChaosSpec::spikes(0.05, 12.0)},
        {"skip", ChaosSpec::skips(0.20)},
        {"jitter", ChaosSpec::jitter(0.5)},
        {"delay", ChaosSpec::delayedActuation(3)},
        {"kitchen_sink", ChaosSpec::kitchenSink()},
    };
}

TEST(Chaos, ControllerOutputAlwaysFiniteAndInBounds)
{
    const ChaosEpisodeOptions opts;
    for (const auto &[name, spec] : specGrid()) {
        for (const std::uint64_t seed : seedMatrix()) {
            const ChaosReport r = runChaosEpisode(spec, opts, seed);
            if (r.nonfinite_outputs != 0 ||
                r.out_of_bounds_outputs != 0)
                recordFailedSeed("episode-invariant:" + name, seed);
            EXPECT_EQ(r.nonfinite_outputs, 0u)
                << name << " seed " << seed;
            EXPECT_EQ(r.out_of_bounds_outputs, 0u)
                << name << " seed " << seed;
            EXPECT_TRUE(std::isfinite(r.final_conf))
                << name << " seed " << seed;
        }
    }
}

TEST(Chaos, FaultsAreActuallyInjected)
{
    // An invariant test that never injects anything proves nothing.
    const ChaosEpisodeOptions opts;
    for (const auto &[name, spec] : specGrid()) {
        const ChaosReport r = runChaosEpisode(spec, opts, 1);
        EXPECT_GT(r.faults.injected(), 0u)
            << name << " injected no faults";
    }
}

TEST(Chaos, NanStormRejectedByControllerNotPropagated)
{
    // Heavy NaN injection: every faulted update must be *counted* as
    // held, and the loop must keep converging between faults.
    const ChaosSpec spec = ChaosSpec::nanSensor(0.3);
    const ChaosEpisodeOptions opts;
    for (const std::uint64_t seed : seedMatrix()) {
        const ChaosReport r = runChaosEpisode(spec, opts, seed);
        EXPECT_GT(r.faults.sensor.nans, 0u);
        EXPECT_GE(r.controller_faults, r.faults.sensor.nans)
            << "every injected NaN reading must be held, not applied";
        EXPECT_EQ(r.nonfinite_outputs, 0u);
    }
}

TEST(Chaos, HardGoalViolationRateBoundedUnderFaults)
{
    // The virtual-goal margin plus fault-holding keeps the plant on
    // the safe side the overwhelming majority of ticks even under the
    // kitchen-sink campaign.  (Zero would be too strong: spikes and
    // stale windows can push a few ticks over before recovery.)
    const ChaosSpec spec = ChaosSpec::kitchenSink();
    ChaosEpisodeOptions opts;
    opts.hard = true;
    for (const std::uint64_t seed : seedMatrix()) {
        const ChaosReport r = runChaosEpisode(spec, opts, seed);
        const double rate = static_cast<double>(r.violations) /
                            static_cast<double>(r.ticks);
        if (rate > 0.05)
            recordFailedSeed("hard-goal-violation-rate", seed);
        EXPECT_LE(rate, 0.05) << "seed " << seed;
    }
}

TEST(Chaos, EpisodesAreDeterministic)
{
    const ChaosSpec spec = ChaosSpec::kitchenSink();
    const ChaosEpisodeOptions opts;
    for (const std::uint64_t seed : seedMatrix()) {
        const ChaosReport a = runChaosEpisode(spec, opts, seed);
        const ChaosReport b = runChaosEpisode(spec, opts, seed);
        EXPECT_EQ(a.updates, b.updates);
        EXPECT_EQ(a.violations, b.violations);
        EXPECT_EQ(a.controller_faults, b.controller_faults);
        EXPECT_EQ(a.faults.injected(), b.faults.injected());
        EXPECT_DOUBLE_EQ(a.final_conf, b.final_conf);
        EXPECT_DOUBLE_EQ(a.worst_metric, b.worst_metric);
    }
}

/** Shrunken HB3813 for scenario-level chaos (fast but real). */
scenarios::Hb3813Options
smallHb3813()
{
    scenarios::Hb3813Options o;
    o.phase1_ticks = 400;
    o.total_ticks = 1200;
    return o;
}

TEST(Chaos, ScenarioRunSurvivesNanSensor)
{
    // End-to-end: a full HB3813 run with a demonstrably NaN-ing sensor
    // must stay NaN-free in its outputs and keep its conf series
    // inside the declared clamp.
    const scenarios::Hb3813Scenario scenario(smallHb3813());
    const scenarios::Policy policy =
        scenarios::Policy::smart().withChaos(ChaosSpec::nanSensor(0.2));
    const scenarios::ScenarioResult r = scenario.run(policy, 1);
    EXPECT_GT(r.faults_injected, 0u) << "chaos must demonstrably fire";
    for (const auto &pt : r.conf_series.points()) {
        ASSERT_TRUE(std::isfinite(pt.value));
        ASSERT_GE(pt.value, 0.0);
        ASSERT_LE(pt.value, 5000.0); // HB3813's declared conf_max
    }
    EXPECT_TRUE(std::isfinite(r.mean_conf));
    EXPECT_TRUE(std::isfinite(r.worst_goal_metric));
}

TEST(Chaos, ScenarioChaosRunsAreDeterministic)
{
    const scenarios::Hb3813Scenario scenario(smallHb3813());
    const scenarios::Policy policy = scenarios::Policy::smart().withChaos(
        ChaosSpec::kitchenSink(5));
    const scenarios::ScenarioResult a = scenario.run(policy, 3);
    const scenarios::ScenarioResult b = scenario.run(policy, 3);
    EXPECT_EQ(a.faults_injected, b.faults_injected);
    EXPECT_GT(a.faults_injected, 0u);
    EXPECT_DOUBLE_EQ(a.worst_goal_metric, b.worst_goal_metric);
    EXPECT_DOUBLE_EQ(a.mean_conf, b.mean_conf);
    EXPECT_EQ(a.violated, b.violated);
    ASSERT_EQ(a.conf_series.points().size(),
              b.conf_series.points().size());
}

TEST(Chaos, ChaosPolicyGetsItsOwnCacheKey)
{
    // A chaos run must never replay from (or overwrite) the clean
    // run's cache entry, and distinct campaigns must not share one.
    const scenarios::Policy clean = scenarios::Policy::smart();
    const scenarios::Policy chaotic =
        clean.withChaos(ChaosSpec::nanSensor(0.1));
    const scenarios::Policy chaotic2 =
        clean.withChaos(ChaosSpec::nanSensor(0.2));
    EXPECT_NE(clean.cacheKey(), chaotic.cacheKey());
    EXPECT_NE(chaotic.cacheKey(), chaotic2.cacheKey());
    // An all-zero spec is semantically "no chaos": same key.
    const scenarios::Policy noop = clean.withChaos(ChaosSpec{});
    EXPECT_EQ(clean.cacheKey(), noop.cacheKey());
}

TEST(Chaos, DisabledChaosLeavesScenarioOutputUntouched)
{
    // The zero-overhead-when-disabled claim, behaviorally: a policy
    // with no chaos spec and one with an all-zero spec produce
    // byte-identical results.
    const scenarios::Hb3813Scenario scenario(smallHb3813());
    const scenarios::ScenarioResult clean =
        scenario.run(scenarios::Policy::smart(), 2);
    const scenarios::ScenarioResult noop = scenario.run(
        scenarios::Policy::smart().withChaos(ChaosSpec{}), 2);
    EXPECT_EQ(clean.faults_injected, 0u);
    EXPECT_EQ(noop.faults_injected, 0u);
    EXPECT_DOUBLE_EQ(clean.worst_goal_metric, noop.worst_goal_metric);
    EXPECT_DOUBLE_EQ(clean.mean_conf, noop.mean_conf);
    EXPECT_DOUBLE_EQ(clean.tradeoff, noop.tradeoff);
    ASSERT_EQ(clean.conf_series.points().size(),
              noop.conf_series.points().size());
    for (std::size_t i = 0; i < clean.conf_series.points().size(); ++i) {
        ASSERT_EQ(clean.conf_series.points()[i].value,
                  noop.conf_series.points()[i].value);
    }
}

TEST(Chaos, HookCadencePinnedToControlInvocationsNotBatchSize)
{
    // The scenario hot loops batch their per-op metrics (one
    // recordBatch / heap-slot write per tick instead of per op), but
    // chaos hooks gate *logical control invocations*.  A skip_prob of
    // 1.0 turns every fire() into a counted skip, so faults_injected
    // becomes an exact census of hook calls: one per control-loop
    // firing, independent of how many ops each tick batches.  If
    // batching ever moved the hooks into a per-op or per-batch path,
    // this count would explode or collapse.
    scenarios::Hb3813Options opts = smallHb3813();
    ASSERT_EQ(opts.control_period, 1);
    const scenarios::Hb3813Scenario scenario(opts);
    const scenarios::Policy policy =
        scenarios::Policy::smart().withChaos(ChaosSpec::skips(1.0));
    const scenarios::ScenarioResult r = scenario.run(policy, 1);

    // Control fires at t = 0, period, 2*period, ... while t <
    // total_ticks; the run must not crash early (every invocation is
    // skipped, so the queue bound stays at the harmless initial 0).
    ASSERT_FALSE(r.violated);
    const std::uint64_t invocations = static_cast<std::uint64_t>(
        (opts.total_ticks - 1) / opts.control_period + 1);
    EXPECT_EQ(r.faults_injected, invocations);

    // Same census at a coarser control period: the count follows the
    // control cadence, not the tick or op count.
    scenarios::Hb3813Options coarse = smallHb3813();
    coarse.control_period = 25;
    const scenarios::Hb3813Scenario scenario25(coarse);
    const scenarios::ScenarioResult r25 = scenario25.run(policy, 1);
    ASSERT_FALSE(r25.violated);
    EXPECT_EQ(r25.faults_injected,
              static_cast<std::uint64_t>(
                  (coarse.total_ticks - 1) / coarse.control_period + 1));
}

} // namespace
} // namespace smartconf::fault
