/** @file Tests for the MR5420 distcp model and limitation detection. */

#include <gtest/gtest.h>

#include "core/smartconf.h"
#include "mapreduce/distcp.h"

namespace smartconf::mapreduce {
namespace {

DistCpParams
params()
{
    DistCpParams p;
    p.jitter = 0.0; // deterministic for unit assertions
    return p;
}

TEST(DistCp, TooFewChunksUnderusesWorkers)
{
    sim::Rng rng(1);
    // 2 chunks across 8 workers: 6 workers idle; the busy ones copy
    // 4 GB each.
    const double few = distCpLatency(params(), 2, rng);
    const double balanced = distCpLatency(params(), 8, rng);
    EXPECT_GT(few, balanced * 3.0);
}

TEST(DistCp, TooManyChunksPayOverhead)
{
    sim::Rng rng(2);
    const double balanced = distCpLatency(params(), 8, rng);
    const double shredded = distCpLatency(params(), 2048, rng);
    EXPECT_GT(shredded, balanced * 1.5);
}

TEST(DistCp, UShapeHasInteriorOptimum)
{
    const std::uint64_t best = distCpBestChunks(params(), 2, 1024);
    EXPECT_GT(best, 2u);
    EXPECT_LT(best, 1024u);
    // The optimum is a multiple-ish of the worker count (full waves).
    sim::Rng rng(3);
    const double at_best = distCpLatency(params(), best, rng);
    EXPECT_LT(at_best, distCpLatency(params(), 2, rng));
    EXPECT_LT(at_best, distCpLatency(params(), 1024, rng));
}

TEST(DistCp, ZeroChunksClampsToOne)
{
    sim::Rng rng(4);
    EXPECT_GT(distCpLatency(params(), 0, rng), 0.0);
}

TEST(DistCpLimitation, ProfilingFlagsNonMonotonic)
{
    // The end-to-end Sec. 6.6 story: profile max_chunks_tolerable and
    // SmartConf must detect that it cannot manage this configuration.
    SmartConfRuntime rt;
    rt.declareConf({"max_chunks_tolerable", "copy_latency", 8.0, 1.0,
                    4096.0});
    Goal g;
    g.metric = "copy_latency";
    g.value = 2000.0;
    rt.declareGoal(g);

    int alerts = 0;
    rt.setAlertHandler([&alerts](const std::string &,
                                 const std::string &msg) {
        ++alerts;
        EXPECT_NE(msg.find("NON-MONOTONIC"), std::string::npos);
    });

    rt.setProfiling(true);
    SmartConf sc(rt, "max_chunks_tolerable");
    sim::Rng rng(5);
    DistCpParams p;
    for (double setting : {2.0, 16.0, 128.0, 1024.0}) {
        rt.setCurrentValue("max_chunks_tolerable", setting);
        for (int i = 0; i < 10; ++i) {
            sc.setPerf(distCpLatency(
                p, static_cast<std::uint64_t>(setting), rng));
        }
    }
    const ProfileSummary s = rt.finishProfiling("max_chunks_tolerable");
    EXPECT_FALSE(s.monotonic);
    EXPECT_EQ(alerts, 1);
}

TEST(DistCpLimitation, MonotonicConfigsDoNotAlert)
{
    SmartConfRuntime rt;
    rt.declareConf({"q", "mem", 0.0, 0.0, 1000.0});
    Goal g;
    g.metric = "mem";
    g.value = 500.0;
    rt.declareGoal(g);
    int alerts = 0;
    rt.setAlertHandler(
        [&alerts](const std::string &, const std::string &) {
            ++alerts;
        });
    ProfileSummary s;
    s.alpha = 1.0;
    s.monotonic = true;
    rt.installProfile("q", s);
    EXPECT_EQ(alerts, 0);
}

} // namespace
} // namespace smartconf::mapreduce
