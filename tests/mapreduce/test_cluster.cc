/** @file Unit tests for the MapReduce cluster (MR2820). */

#include <gtest/gtest.h>

#include "mapreduce/cluster.h"

namespace smartconf::mapreduce {
namespace {

ClusterParams
params()
{
    ClusterParams p;
    p.workers = 2;
    p.disk_capacity_mb = 1000.0;
    p.other_base_mb = 200.0;
    p.other_walk_mb = 0.0; // deterministic for unit tests
    p.other_max_mb = 200.0;
    p.task_duration = 10;
    p.fetch_delay = 15;
    p.spill_jitter = 0.0;
    return p;
}

workload::WordCountJob
job(double input = 640.0, double split = 64.0, std::uint64_t par = 2)
{
    return workload::WordCountJob{input, split, par, 1.0};
}

void
runTicks(MrCluster &c, sim::Tick from, sim::Tick to)
{
    for (sim::Tick t = from; t < to; ++t)
        c.step(t);
}

TEST(Cluster, JobRunsToCompletion)
{
    MrCluster c(params(), 0, sim::Rng(1));
    c.submitJob(job(), 0);
    EXPECT_EQ(c.pendingTasks(), 10u);
    runTicks(c, 0, 500);
    EXPECT_TRUE(c.jobDone());
    EXPECT_EQ(c.completedTasks(), 10u);
    EXPECT_GT(c.jobLatencyTicks(), 0.0);
    EXPECT_FALSE(c.ood());
}

TEST(Cluster, ParallelismBoundsConcurrency)
{
    // Admission is one task per worker heartbeat (tick).
    MrCluster c(params(), 0, sim::Rng(2));
    c.submitJob(job(640.0, 64.0, 1), 0);
    c.step(0);
    c.step(1);
    EXPECT_EQ(c.runningTasks(), 2u) << "one per worker at parallelism 1";
    MrCluster c2(params(), 0, sim::Rng(2));
    c2.submitJob(job(640.0, 64.0, 2), 0);
    c2.step(0);
    EXPECT_EQ(c2.runningTasks(), 2u) << "first heartbeat";
    c2.step(1);
    EXPECT_EQ(c2.runningTasks(), 4u) << "second heartbeat fills par 2";
}

TEST(Cluster, MinSpaceGateBlocksAdmission)
{
    // Free disk = 1000 - 200 (other) = 800; a gate of 900 blocks all.
    MrCluster c(params(), 900, sim::Rng(3));
    c.submitJob(job(), 0);
    runTicks(c, 0, 50);
    EXPECT_EQ(c.runningTasks(), 0u);
    EXPECT_EQ(c.completedTasks(), 0u);
}

TEST(Cluster, SpillsAccumulateOnDisk)
{
    MrCluster c(params(), 0, sim::Rng(4));
    c.submitJob(job(128.0, 64.0, 1), 0); // 2 tasks, one per worker
    c.step(0);
    runTicks(c, 1, 6);
    // Mid-task: roughly half the 64 MB spill is on disk.
    EXPECT_GT(c.maxDiskUsedMb(), 200.0 + 20.0);
    EXPECT_LT(c.maxDiskUsedMb(), 200.0 + 64.0);
}

TEST(Cluster, RetentionFreesAfterFetchDelay)
{
    MrCluster c(params(), 0, sim::Rng(5));
    c.submitJob(job(64.0, 64.0, 1), 0); // single task
    runTicks(c, 0, 11);
    ASSERT_TRUE(c.jobDone());
    EXPECT_NEAR(c.maxDiskUsedMb(), 264.0, 1.0)
        << "output retained for the reducer";
    runTicks(c, 11, 40);
    EXPECT_NEAR(c.maxDiskUsedMb(), 200.0, 1.0) << "output fetched";
}

TEST(Cluster, OodLatchesAndKillsJob)
{
    ClusterParams p = params();
    p.disk_capacity_mb = 300.0; // other 200 + 128 spill > 300
    MrCluster c(p, 0, sim::Rng(6));
    c.submitJob(job(256.0, 128.0, 1), 0);
    runTicks(c, 0, 100);
    EXPECT_TRUE(c.ood());
    EXPECT_GE(c.oodTick(), 0);
    EXPECT_FALSE(c.jobDone());
}

TEST(Cluster, HigherGateAvoidsOod)
{
    ClusterParams p = params();
    p.disk_capacity_mb = 300.0;
    MrCluster safe(p, 150.0, sim::Rng(7));
    safe.submitJob(job(256.0, 128.0, 1), 0);
    runTicks(safe, 0, 400);
    EXPECT_FALSE(safe.ood())
        << "gate 150 leaves no room for a 128 MB spill to overflow";
}

TEST(Cluster, MasterSlavePropagationDelay)
{
    MrCluster c(params(), 100, sim::Rng(8));
    c.setMinSpaceStart(500.0);
    EXPECT_DOUBLE_EQ(c.minSpaceStart(), 100.0)
        << "not yet propagated to the workers";
    c.step(0);
    EXPECT_DOUBLE_EQ(c.minSpaceStart(), 500.0);
}

TEST(Cluster, SecondJobReplacesFirst)
{
    MrCluster c(params(), 0, sim::Rng(9));
    c.submitJob(job(128.0, 64.0, 2), 0);
    runTicks(c, 0, 60);
    ASSERT_TRUE(c.jobDone());
    c.submitJob(job(256.0, 128.0, 2), 60);
    EXPECT_FALSE(c.jobDone());
    EXPECT_EQ(c.pendingTasks(), 2u);
    runTicks(c, 60, 200);
    EXPECT_TRUE(c.jobDone());
}

} // namespace
} // namespace smartconf::mapreduce
