/** @file Unit tests for SmartConfRuntime (registry + file loading). */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/runtime.h"

namespace smartconf {
namespace {

ProfileSummary
simpleSummary(double alpha = 1.0, double lambda = 0.1, double pole = 0.0)
{
    ProfileSummary s;
    s.alpha = alpha;
    s.lambda = lambda;
    s.pole = pole;
    s.delta = 1.0;
    s.settings = 4;
    s.samples = 40;
    return s;
}

Goal
memGoal(double v = 500.0)
{
    Goal g;
    g.metric = "mem";
    g.value = v;
    g.hard = true;
    return g;
}

TEST(Runtime, DeclareAndQuery)
{
    SmartConfRuntime rt;
    rt.declareConf({"q", "mem", 50.0, 0.0, 1000.0});
    EXPECT_TRUE(rt.hasConf("q"));
    EXPECT_FALSE(rt.hasConf("z"));
    EXPECT_EQ(rt.entryFor("q").metric, "mem");
    EXPECT_DOUBLE_EQ(rt.currentValue("q"), 50.0);
}

TEST(Runtime, UnknownConfThrows)
{
    SmartConfRuntime rt;
    EXPECT_THROW(rt.entryFor("missing"), std::out_of_range);
    EXPECT_THROW(rt.currentValue("missing"), std::out_of_range);
}

TEST(Runtime, EmptyNameRejected)
{
    SmartConfRuntime rt;
    EXPECT_THROW(rt.declareConf(ConfEntry{}), std::invalid_argument);
}

TEST(Runtime, LoadFromFileFormats)
{
    SmartConfRuntime rt;
    rt.loadSysText(
        "profiling = 0\n"
        "max.queue.size @ memory_consumption_max\n"
        "max.queue.size = 50\n");
    rt.loadUserConfText(
        "memory_consumption_max = 1024\n"
        "memory_consumption_max.hard = 1\n");
    EXPECT_TRUE(rt.hasConf("max.queue.size"));
    EXPECT_TRUE(rt.coordinator().hasGoal("memory_consumption_max"));
    EXPECT_TRUE(
        rt.coordinator().goalFor("memory_consumption_max").hard);
}

TEST(Runtime, ControllerSynthesizedWhenGoalAndProfilePresent)
{
    SmartConfRuntime rt;
    rt.declareConf({"q", "mem", 0.0, 0.0, 1000.0});
    EXPECT_EQ(rt.coordinator().interactionCount("mem"), 0u);
    rt.declareGoal(memGoal());
    rt.installProfile("q", simpleSummary());
    EXPECT_EQ(rt.coordinator().interactionCount("mem"), 1u);
}

TEST(Runtime, ZeroGainProfileRejected)
{
    SmartConfRuntime rt;
    rt.declareConf({"q", "mem", 0.0, 0.0, 1000.0});
    rt.declareGoal(memGoal());
    EXPECT_THROW(rt.installProfile("q", ProfileSummary{}),
                 std::runtime_error);
}

TEST(Runtime, ProfilingRoundTripThroughStoreFormat)
{
    // Record samples via profiling mode, serialize the store, load it
    // into a fresh runtime and verify a controller can be built.
    SmartConfRuntime rt;
    rt.declareConf({"q", "mem", 0.0, 0.0, 1000.0});
    rt.declareGoal(memGoal());
    rt.setProfiling(true);
    for (double setting : {40.0, 80.0, 120.0, 160.0}) {
        rt.setCurrentValue("q", setting);
        // Direct path: SmartConf::setPerf records; emulate with the
        // profiler accessor through finishProfiling's requirements.
        for (int i = 0; i < 10; ++i) {
            // go through the public API
            // (SmartConf handle exercised in test_smartconf_api).
            const_cast<Profiler &>(rt.profilerFor("q"))
                .record(setting, 200.0 + setting + i, setting);
        }
    }
    const ProfileSummary s = rt.finishProfiling("q");
    EXPECT_NEAR(s.alpha, 1.0, 0.1);

    const std::string store = rt.formatProfileStore("q");
    SmartConfRuntime rt2;
    rt2.declareConf({"q", "mem", 0.0, 0.0, 1000.0});
    rt2.declareGoal(memGoal());
    rt2.loadProfileText(store);
    EXPECT_EQ(rt2.coordinator().interactionCount("mem"), 1u);
}

TEST(Runtime, FinishProfilingNeedsSamples)
{
    SmartConfRuntime rt;
    rt.declareConf({"q", "mem", 0.0, 0.0, 1000.0});
    EXPECT_THROW(rt.finishProfiling("q"), std::runtime_error);
}

TEST(Runtime, ProfileTextWithoutConfNameRejected)
{
    SmartConfRuntime rt;
    EXPECT_THROW(rt.loadProfileText("alpha = 1\n"), std::runtime_error);
}

TEST(Runtime, OverridesForceAblationBehaviour)
{
    SmartConfRuntime rt;
    rt.declareConf({"q", "mem", 0.0, 0.0, 1000.0});
    rt.declareGoal(memGoal());
    ControllerOverrides ov;
    ov.pole = 0.9;
    ov.useVirtualGoal = false;
    rt.setOverrides("q", ov);
    rt.installProfile("q", simpleSummary(1.0, 0.2, 0.1));
    // Overridden parameters are observable through behaviour: tested
    // end-to-end in scenario ablation tests; here we just ensure the
    // controller was rebuilt without error.
    EXPECT_EQ(rt.coordinator().interactionCount("mem"), 1u);
}

TEST(Runtime, RedeclareConfRebuildsController)
{
    SmartConfRuntime rt;
    rt.declareConf({"q", "mem", 0.0, 0.0, 1000.0});
    rt.declareGoal(memGoal());
    rt.installProfile("q", simpleSummary());
    EXPECT_EQ(rt.coordinator().interactionCount("mem"), 1u);
    rt.declareConf({"q", "mem", 25.0, 0.0, 1000.0});
    // Controller was torn down with the redeclaration; the profile is
    // retained, so it is immediately rebuilt.
    EXPECT_DOUBLE_EQ(rt.currentValue("q"), 25.0);
}

} // namespace
} // namespace smartconf
