/** @file Unit tests for the streaming statistics accumulator. */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/stats.h"

namespace smartconf {
namespace {

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.coefficientOfVariation(), 0.0);
}

TEST(RunningStats, SingleValue)
{
    RunningStats s;
    s.push(42.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 42.0);
    EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, MatchesClosedForm)
{
    const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    RunningStats s;
    for (double x : xs)
        s.push(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of the classic dataset is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, CoefficientOfVariation)
{
    RunningStats s;
    s.push(90.0);
    s.push(110.0);
    EXPECT_NEAR(s.coefficientOfVariation(),
                s.stddev() / 100.0, 1e-12);
}

TEST(RunningStats, CoVZeroMeanGuard)
{
    RunningStats s;
    s.push(-5.0);
    s.push(5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.coefficientOfVariation(), 0.0);
}

TEST(RunningStats, MergeEqualsSinglePass)
{
    RunningStats a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double x = 3.0 + 0.37 * i;
        if (i % 2 == 0)
            a.push(x);
        else
            b.push(x);
        all.push(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, b;
    a.push(1.0);
    a.push(3.0);
    const double mean_before = a.mean();
    a.merge(b); // no-op
    EXPECT_DOUBLE_EQ(a.mean(), mean_before);
    b.merge(a); // adopt
    EXPECT_DOUBLE_EQ(b.mean(), mean_before);
    EXPECT_EQ(b.count(), 2u);
}

TEST(RunningStats, ResetClearsEverything)
{
    RunningStats s;
    s.push(10.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RunningStats, NegativeMeanCoVUsesAbsoluteValue)
{
    RunningStats s;
    s.push(-90.0);
    s.push(-110.0);
    EXPECT_GT(s.coefficientOfVariation(), 0.0);
}

} // namespace
} // namespace smartconf
