/** @file Unit tests for transducers (paper Sec. 5.3, Fig. 4). */

#include <gtest/gtest.h>

#include "core/transducer.h"

namespace smartconf {
namespace {

TEST(Transducer, DefaultIsIdentity)
{
    Transducer t;
    EXPECT_DOUBLE_EQ(t.transduce(42.0), 42.0);
    EXPECT_DOUBLE_EQ(t.transduce(-7.5), -7.5);
}

TEST(LinearTransducerTest, ScaleAndOffset)
{
    // HD4995: hold ticks -> file count at 20000 files/tick.
    LinearTransducer t(20000.0);
    EXPECT_DOUBLE_EQ(t.transduce(75.0), 1500000.0);

    LinearTransducer u(2.0, 10.0);
    EXPECT_DOUBLE_EQ(u.transduce(5.0), 20.0);
}

TEST(FunctionTransducerTest, ArbitraryCallable)
{
    FunctionTransducer t([](double x) { return x * x; });
    EXPECT_DOUBLE_EQ(t.transduce(9.0), 81.0);
}

TEST(Transducer, PolymorphicUse)
{
    LinearTransducer lin(3.0);
    const Transducer &base = lin;
    EXPECT_DOUBLE_EQ(base.transduce(4.0), 12.0);
}

} // namespace
} // namespace smartconf
