/** @file Unit tests for profiling-based controller synthesis. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/pole.h"
#include "core/profiler.h"
#include "sim/rng.h"

namespace smartconf {
namespace {

TEST(Profiler, EmptySummaryIsInert)
{
    Profiler p;
    const ProfileSummary s = p.summarize();
    EXPECT_EQ(s.samples, 0u);
    EXPECT_DOUBLE_EQ(s.alpha, 0.0);
    EXPECT_DOUBLE_EQ(s.delta, 1.0);
}

TEST(Profiler, PaperRecipeFourSettingsTenSamples)
{
    // HB3813's recipe: settings {40, 80, 120, 160}, 10 samples each.
    Profiler p;
    sim::Rng rng(7);
    for (double setting : {40.0, 80.0, 120.0, 160.0}) {
        for (int i = 0; i < 10; ++i) {
            const double perf =
                200.0 + setting + rng.gaussian(0.0, 8.0);
            p.record(setting, perf);
        }
    }
    EXPECT_TRUE(p.sufficient());
    EXPECT_EQ(p.settingCount(), 4u);
    EXPECT_EQ(p.sampleCount(), 40u);

    const ProfileSummary s = p.summarize();
    EXPECT_NEAR(s.alpha, 1.0, 0.15);
    EXPECT_NEAR(s.base, 200.0, 20.0);
    EXPECT_GT(s.lambda, 0.0);
    EXPECT_LT(s.lambda, 0.2);
    EXPECT_GE(s.delta, 1.0);
    EXPECT_GE(s.pole, 0.0);
    EXPECT_LT(s.pole, 1.0);
    EXPECT_TRUE(s.monotonic);
}

TEST(Profiler, GroupingBySettingSeparatesDeputyNoise)
{
    // Indirect configs record continuous deputy values; the noise
    // statistics must still group by the profiled setting.
    Profiler p;
    sim::Rng rng(11);
    for (double setting : {50.0, 100.0}) {
        for (int i = 0; i < 10; ++i) {
            const double deputy = setting * rng.uniform(0.7, 1.0);
            p.record(deputy, 100.0 + deputy, setting);
        }
    }
    EXPECT_EQ(p.settingCount(), 2u); // not 20 singleton groups
    const ProfileSummary s = p.summarize();
    EXPECT_GT(s.lambda, 0.0); // grouped stats see real variance
}

TEST(Profiler, NegativeGainSummary)
{
    Profiler p;
    for (double setting : {100.0, 200.0, 300.0, 400.0}) {
        for (int i = 0; i < 10; ++i)
            p.record(setting, 1000.0 - 0.8 * setting + (i - 5));
    }
    const ProfileSummary s = p.summarize();
    EXPECT_NEAR(s.alpha, -0.8, 0.05);
    EXPECT_TRUE(s.monotonic);
}

TEST(Profiler, NonMonotonicFlagged)
{
    // MR5420-style U-shape.
    Profiler p;
    for (double setting : {10.0, 20.0, 30.0, 40.0}) {
        for (int i = 0; i < 10; ++i) {
            const double centered = setting - 25.0;
            p.record(setting, centered * centered + i * 0.1);
        }
    }
    EXPECT_FALSE(p.summarize().monotonic);
}

TEST(Profiler, SufficiencyThresholds)
{
    Profiler p;
    EXPECT_FALSE(p.sufficient());
    for (int i = 0; i < 4; ++i)
        p.record(10.0, 5.0);
    EXPECT_FALSE(p.sufficient()) << "one setting is not enough";
    p.record(20.0, 9.0);
    EXPECT_FALSE(p.sufficient()) << "needs 8 samples minimum";
    for (int i = 0; i < 3; ++i)
        p.record(20.0, 9.0 + i * 0.01);
    EXPECT_TRUE(p.sufficient()) << "8 samples over 2 settings";
}

TEST(Profiler, ResetDropsEverything)
{
    Profiler p;
    p.record(1.0, 2.0);
    p.reset();
    EXPECT_EQ(p.sampleCount(), 0u);
    EXPECT_EQ(p.settingCount(), 0u);
}

TEST(Profiler, NoisierProfileLowersVirtualGoalAndRaisesPole)
{
    auto build = [](double sigma) {
        Profiler p;
        sim::Rng rng(3);
        for (double setting : {100.0, 200.0, 300.0, 400.0}) {
            for (int i = 0; i < 10; ++i) {
                p.record(setting,
                         setting + rng.gaussian(0.0, sigma));
            }
        }
        return p.summarize();
    };
    const ProfileSummary quiet = build(2.0);
    const ProfileSummary loud = build(40.0);
    EXPECT_LT(quiet.lambda, loud.lambda);
    EXPECT_LE(quiet.delta, loud.delta);
    EXPECT_LE(quiet.pole, loud.pole);
}

TEST(Profiler, RejectsNonFiniteSamples)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    Profiler p;
    p.record(10.0, 100.0);
    p.record(nan, 100.0);
    p.record(10.0, nan);
    p.record(10.0, inf);
    p.record(10.0, 100.0, nan); // poisoned group key
    EXPECT_EQ(p.sampleCount(), 1u);
    EXPECT_EQ(p.rejectedCount(), 4u);
    // A single poisoned sample used to NaN the fitted gain and every
    // parameter derived from it; the one good sample stays clean.
    p.record(20.0, 200.0);
    p.record(10.0, 102.0);
    p.record(20.0, 198.0);
    const ProfileSummary s = p.summarize();
    EXPECT_TRUE(std::isfinite(s.alpha));
    EXPECT_TRUE(std::isfinite(s.lambda));
    EXPECT_TRUE(std::isfinite(s.delta));
}

TEST(Profiler, HealthyProfileIsNotInsufficient)
{
    Profiler p;
    sim::Rng rng(11);
    for (double setting : {100.0, 200.0, 300.0}) {
        for (int i = 0; i < 8; ++i)
            p.record(setting, setting + rng.gaussian(0.0, 5.0));
    }
    const ProfileSummary s = p.summarize();
    EXPECT_FALSE(s.insufficient);
    EXPECT_GE(s.noise_settings, 3u);
}

TEST(Profiler, SingleSettingProfileIsInsufficient)
{
    // All samples at one setting: no gain, no delta — the summary
    // must say so instead of silently emitting delta=1/lambda~0.
    Profiler p;
    sim::Rng rng(13);
    for (int i = 0; i < 10; ++i)
        p.record(100.0, 500.0 + rng.gaussian(0.0, 5.0));
    const ProfileSummary s = p.summarize();
    EXPECT_TRUE(s.insufficient);
    EXPECT_DOUBLE_EQ(s.delta, kMaxDelta);
    EXPECT_GE(s.pole, 0.9); // maximum-distrust pole, not pole 0
}

TEST(Profiler, AllSingletonProfileIsInsufficient)
{
    Profiler p;
    for (double setting : {40.0, 80.0, 120.0, 160.0})
        p.record(setting, 200.0 + setting);
    const ProfileSummary s = p.summarize();
    EXPECT_TRUE(s.insufficient);
    EXPECT_EQ(s.noise_settings, 0u);
    EXPECT_DOUBLE_EQ(s.lambda, kConservativeLambda);
}

} // namespace
} // namespace smartconf
