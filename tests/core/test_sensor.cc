/** @file Unit tests for performance sensors. */

#include <gtest/gtest.h>

#include "core/sensor.h"

namespace smartconf {
namespace {

TEST(GaugeSensorTest, ReturnsLatest)
{
    GaugeSensor s;
    EXPECT_DOUBLE_EQ(s.read(), 0.0);
    s.observe(5.0);
    s.observe(7.0);
    EXPECT_DOUBLE_EQ(s.read(), 7.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.read(), 0.0);
}

TEST(EwmaSensorTest, FirstObservationSeeds)
{
    EwmaSensor s(0.5);
    s.observe(100.0);
    EXPECT_DOUBLE_EQ(s.read(), 100.0);
}

TEST(EwmaSensorTest, Smooths)
{
    EwmaSensor s(0.5);
    s.observe(100.0);
    s.observe(0.0);
    EXPECT_DOUBLE_EQ(s.read(), 50.0);
    s.observe(0.0);
    EXPECT_DOUBLE_EQ(s.read(), 25.0);
}

TEST(EwmaSensorTest, ResetReseeds)
{
    EwmaSensor s(0.1);
    s.observe(100.0);
    s.reset();
    s.observe(3.0);
    EXPECT_DOUBLE_EQ(s.read(), 3.0);
}

TEST(WindowMaxSensorTest, TracksWorstCase)
{
    WindowMaxSensor s(3);
    s.observe(5.0);
    s.observe(9.0);
    s.observe(2.0);
    EXPECT_DOUBLE_EQ(s.read(), 9.0);
    s.observe(1.0); // 9 slides out? window holds {9,2,1}
    EXPECT_DOUBLE_EQ(s.read(), 9.0);
    s.observe(1.0); // {2,1,1}
    EXPECT_DOUBLE_EQ(s.read(), 2.0);
}

TEST(WindowMaxSensorTest, EmptyReadsZero)
{
    WindowMaxSensor s(4);
    EXPECT_DOUBLE_EQ(s.read(), 0.0);
}

TEST(WindowPercentileSensorTest, MedianAndTail)
{
    WindowPercentileSensor p50(50.0, 100);
    WindowPercentileSensor p99(99.0, 100);
    for (int i = 1; i <= 100; ++i) {
        p50.observe(static_cast<double>(i));
        p99.observe(static_cast<double>(i));
    }
    EXPECT_DOUBLE_EQ(p50.read(), 50.0);
    EXPECT_DOUBLE_EQ(p99.read(), 99.0);
}

TEST(WindowPercentileSensorTest, SlidingWindowForgets)
{
    WindowPercentileSensor s(100.0, 4);
    for (double v : {100.0, 1.0, 2.0, 3.0, 4.0})
        s.observe(v);
    // 100 has slid out of the 4-entry window.
    EXPECT_DOUBLE_EQ(s.read(), 4.0);
}

TEST(SensorPolymorphism, AllImplementTheInterface)
{
    GaugeSensor g;
    EwmaSensor e;
    WindowMaxSensor m;
    WindowPercentileSensor p;
    for (Sensor *s : std::initializer_list<Sensor *>{&g, &e, &m, &p}) {
        s->observe(1.0);
        (void)s->read();
        s->reset();
    }
    SUCCEED();
}

} // namespace
} // namespace smartconf
