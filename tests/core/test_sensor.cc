/** @file Unit tests for performance sensors. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/sensor.h"

namespace smartconf {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(GaugeSensorTest, ReturnsLatest)
{
    GaugeSensor s;
    EXPECT_TRUE(std::isnan(s.read())); // empty: no measurement yet
    s.observe(5.0);
    s.observe(7.0);
    EXPECT_DOUBLE_EQ(s.read(), 7.0);
    s.reset();
    EXPECT_TRUE(std::isnan(s.read()));
}

TEST(GaugeSensorTest, RejectsNonFinite)
{
    GaugeSensor s;
    s.observe(5.0);
    s.observe(kNan);
    s.observe(kInf);
    s.observe(-kInf);
    EXPECT_DOUBLE_EQ(s.read(), 5.0); // last *accepted* observation
    EXPECT_EQ(s.rejected(), 3u);
}

TEST(EwmaSensorTest, FirstObservationSeeds)
{
    EwmaSensor s(0.5);
    s.observe(100.0);
    EXPECT_DOUBLE_EQ(s.read(), 100.0);
}

TEST(EwmaSensorTest, Smooths)
{
    EwmaSensor s(0.5);
    s.observe(100.0);
    s.observe(0.0);
    EXPECT_DOUBLE_EQ(s.read(), 50.0);
    s.observe(0.0);
    EXPECT_DOUBLE_EQ(s.read(), 25.0);
}

TEST(EwmaSensorTest, ResetReseeds)
{
    EwmaSensor s(0.1);
    s.observe(100.0);
    s.reset();
    s.observe(3.0);
    EXPECT_DOUBLE_EQ(s.read(), 3.0);
}

TEST(EwmaSensorTest, WeightIsTheNewObservationWeight)
{
    // Pin the documented semantics: read() = (1-w)*prev + w*obs, so a
    // step input converges geometrically with ratio (1 - w).
    const double w = 0.25;
    EwmaSensor s(w);
    s.observe(0.0); // seed at 0
    double expected_gap = 1.0;
    for (int k = 0; k < 20; ++k) {
        s.observe(1.0); // step to 1
        expected_gap *= 1.0 - w;
        EXPECT_NEAR(1.0 - s.read(), expected_gap, 1e-12);
    }
    // After 20 steps the average has all but converged.
    EXPECT_GT(s.read(), 0.99);
}

TEST(EwmaSensorTest, RejectsDegenerateWeights)
{
    EXPECT_THROW(EwmaSensor(0.0), std::invalid_argument);
    EXPECT_THROW(EwmaSensor(-0.1), std::invalid_argument);
    EXPECT_THROW(EwmaSensor(1.5), std::invalid_argument);
    EXPECT_THROW(EwmaSensor{kNan}, std::invalid_argument);
    EXPECT_NO_THROW(EwmaSensor(1.0)); // degenerates to a gauge
}

TEST(EwmaSensorTest, NanObservationDoesNotPoisonTheAverage)
{
    EwmaSensor s(0.5);
    s.observe(10.0);
    s.observe(kNan);
    EXPECT_DOUBLE_EQ(s.read(), 10.0);
    EXPECT_EQ(s.rejected(), 1u);
    s.observe(20.0);
    EXPECT_DOUBLE_EQ(s.read(), 15.0); // average continued from 10
}

TEST(WindowMaxSensorTest, TracksWorstCase)
{
    WindowMaxSensor s(3);
    s.observe(5.0);
    s.observe(9.0);
    s.observe(2.0);
    EXPECT_DOUBLE_EQ(s.read(), 9.0);
    s.observe(1.0); // 9 slides out? window holds {9,2,1}
    EXPECT_DOUBLE_EQ(s.read(), 9.0);
    s.observe(1.0); // {2,1,1}
    EXPECT_DOUBLE_EQ(s.read(), 2.0);
}

TEST(WindowMaxSensorTest, EmptyReadsNan)
{
    // The old best=0.0 seed made an empty window read 0.0 — and worse,
    // made a window of all-negative metrics read 0.0 instead of its
    // true maximum.  Empty now means "no measurement": quiet NaN.
    WindowMaxSensor s(4);
    EXPECT_TRUE(std::isnan(s.read()));
    s.observe(1.0);
    EXPECT_DOUBLE_EQ(s.read(), 1.0);
    s.reset();
    EXPECT_TRUE(std::isnan(s.read()));
}

TEST(WindowMaxSensorTest, AllNegativeWindowReadsTrueMax)
{
    WindowMaxSensor s(4);
    s.observe(-5.0);
    s.observe(-2.0);
    s.observe(-9.0);
    EXPECT_DOUBLE_EQ(s.read(), -2.0); // not the old sentinel 0.0
}

TEST(WindowMaxSensorTest, RejectsNonFiniteAndZeroWindow)
{
    WindowMaxSensor s(4);
    s.observe(3.0);
    s.observe(kInf);
    s.observe(kNan);
    EXPECT_DOUBLE_EQ(s.read(), 3.0);
    EXPECT_EQ(s.rejected(), 2u);
    EXPECT_EQ(s.size(), 1u);
    EXPECT_THROW(WindowMaxSensor(0), std::invalid_argument);
}

TEST(WindowPercentileSensorTest, EmptyReadsNanAndValidates)
{
    WindowPercentileSensor s(99.0, 8);
    EXPECT_TRUE(std::isnan(s.read())); // mirrors WindowMaxSensor
    EXPECT_THROW(WindowPercentileSensor(0.0, 8),
                 std::invalid_argument);
    EXPECT_THROW(WindowPercentileSensor(101.0, 8),
                 std::invalid_argument);
    EXPECT_THROW(WindowPercentileSensor(50.0, 0),
                 std::invalid_argument);
}

TEST(WindowPercentileSensorTest, MedianAndTail)
{
    WindowPercentileSensor p50(50.0, 100);
    WindowPercentileSensor p99(99.0, 100);
    for (int i = 1; i <= 100; ++i) {
        p50.observe(static_cast<double>(i));
        p99.observe(static_cast<double>(i));
    }
    EXPECT_DOUBLE_EQ(p50.read(), 50.0);
    EXPECT_DOUBLE_EQ(p99.read(), 99.0);
}

TEST(WindowPercentileSensorTest, SlidingWindowForgets)
{
    WindowPercentileSensor s(100.0, 4);
    for (double v : {100.0, 1.0, 2.0, 3.0, 4.0})
        s.observe(v);
    // 100 has slid out of the 4-entry window.
    EXPECT_DOUBLE_EQ(s.read(), 4.0);
}

TEST(SensorPolymorphism, AllImplementTheInterface)
{
    GaugeSensor g;
    EwmaSensor e;
    WindowMaxSensor m;
    WindowPercentileSensor p;
    for (Sensor *s : std::initializer_list<Sensor *>{&g, &e, &m, &p}) {
        s->observe(1.0);
        (void)s->read();
        s->reset();
    }
    SUCCEED();
}

} // namespace
} // namespace smartconf
