/** @file Tests for the on-disk profiling store lifecycle (Sec. 5.5). */

#include <gtest/gtest.h>

#include <filesystem>

#include "core/smartconf.h"

namespace smartconf {
namespace {

namespace fs = std::filesystem;

std::string
freshDir(const char *tag)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / ("smartconf_store_" +
                                          std::string(tag));
    fs::remove_all(dir);
    return dir.string();
}

void
declare(SmartConfRuntime &rt, const std::string &conf)
{
    rt.declareConf({conf, "mem", 0.0, 0.0, 10000.0});
    Goal g;
    g.metric = "mem";
    g.value = 500.0;
    g.hard = true;
    rt.declareGoal(g);
}

void
recordRecipe(SmartConfRuntime &rt, SmartConf &sc)
{
    for (double setting : {40.0, 80.0, 120.0, 160.0}) {
        rt.setCurrentValue(sc.name(), setting);
        for (int i = 0; i < 10; ++i)
            sc.setPerf(200.0 + setting + 0.5 * i);
    }
}

TEST(ProfileStore, FlushThenLoadRebuildsController)
{
    const std::string dir = freshDir("roundtrip");

    // Profiling process: record samples and flush to disk.
    {
        SmartConfRuntime rt;
        declare(rt, "max.queue.size");
        rt.setProfiling(true);
        SmartConf sc(rt, "max.queue.size");
        recordRecipe(rt, sc);
        rt.finishProfiling("max.queue.size");
        EXPECT_EQ(rt.flushProfiles(dir), 1);
    }
    EXPECT_TRUE(fs::exists(fs::path(dir) /
                           "max.queue.size.SmartConf.sys"));

    // Production process: load the store at startup.
    SmartConfRuntime rt;
    declare(rt, "max.queue.size");
    EXPECT_EQ(rt.loadProfiles(dir), 1);
    SmartConf sc(rt, "max.queue.size");
    EXPECT_TRUE(sc.managed()) << "controller synthesized from disk";

    double conf = 0.0;
    for (int i = 0; i < 50; ++i) {
        sc.setPerf(200.0 + conf);
        conf = sc.getConfReal();
    }
    // Plant perf = 200 + conf, alpha 1: hard goal 500, lambda small.
    EXPECT_NEAR(200.0 + conf, 450.0, 60.0);
}

TEST(ProfileStore, FlushSkipsUnprofiledConfs)
{
    const std::string dir = freshDir("skip");
    SmartConfRuntime rt;
    declare(rt, "a");
    rt.declareConf({"b", "mem", 0.0, 0.0, 100.0});
    rt.setProfiling(true);
    SmartConf sc(rt, "a");
    recordRecipe(rt, sc);
    EXPECT_EQ(rt.flushProfiles(dir), 1) << "only 'a' has samples";
}

TEST(ProfileStore, LoadIgnoresForeignStores)
{
    const std::string dir = freshDir("foreign");
    fs::create_directories(dir);
    writeTextFile(dir + "/unknown.conf.SmartConf.sys",
                  "conf = unknown.conf\nalpha = 1\n");
    writeTextFile(dir + "/notes.txt", "not a store\n");

    SmartConfRuntime rt;
    declare(rt, "a");
    EXPECT_EQ(rt.loadProfiles(dir), 0);
}

TEST(ProfileStore, LoadFromMissingDirectoryIsNoop)
{
    SmartConfRuntime rt;
    declare(rt, "a");
    EXPECT_EQ(rt.loadProfiles("/nonexistent/profiles"), 0);
}

TEST(ProfileStore, FlushedFileIsHumanReadable)
{
    const std::string dir = freshDir("readable");
    SmartConfRuntime rt;
    declare(rt, "q");
    rt.setProfiling(true);
    SmartConf sc(rt, "q");
    recordRecipe(rt, sc);
    rt.finishProfiling("q");
    rt.flushProfiles(dir);
    const std::string text =
        readTextFile(dir + "/q.SmartConf.sys");
    EXPECT_NE(text.find("alpha ="), std::string::npos);
    EXPECT_NE(text.find("pole ="), std::string::npos);
    EXPECT_NE(text.find("sample ="), std::string::npos);
}

} // namespace
} // namespace smartconf
