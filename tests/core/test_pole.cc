/** @file Unit tests for automatic pole selection (paper Sec. 5.1). */

#include <gtest/gtest.h>

#include "core/pole.h"

namespace smartconf {
namespace {

RunningStats
group(std::initializer_list<double> xs)
{
    RunningStats s;
    for (double x : xs)
        s.push(x);
    return s;
}

TEST(Pole, FormulaMatchesPaper)
{
    // p = 1 - 2/Delta for Delta > 2.
    EXPECT_DOUBLE_EQ(poleFromDelta(4.0), 0.5);
    EXPECT_DOUBLE_EQ(poleFromDelta(10.0), 0.8);
    EXPECT_DOUBLE_EQ(poleFromDelta(20.0), 0.9);
}

TEST(Pole, SmallDeltaYieldsZero)
{
    EXPECT_DOUBLE_EQ(poleFromDelta(1.0), 0.0);
    EXPECT_DOUBLE_EQ(poleFromDelta(2.0), 0.0);
    EXPECT_DOUBLE_EQ(poleFromDelta(0.5), 0.0);
    EXPECT_DOUBLE_EQ(poleFromDelta(-3.0), 0.0);
}

TEST(Pole, AlwaysInStabilityRegion)
{
    for (double d = 0.0; d < 1000.0; d += 7.3) {
        const double p = poleFromDelta(d);
        EXPECT_GE(p, 0.0);
        EXPECT_LT(p, 1.0);
    }
}

TEST(Pole, DeltaClampKeepsPoleBelowOne)
{
    EXPECT_LE(poleFromDelta(1e12), 1.0 - 2.0 / kMaxDelta);
}

TEST(Delta, NoiseFreeProfileGivesUnity)
{
    std::vector<RunningStats> groups = {
        group({100.0, 100.0, 100.0}),
        group({200.0, 200.0, 200.0}),
    };
    EXPECT_DOUBLE_EQ(deltaFromProfile(groups), 1.0);
}

TEST(Delta, GrowsWithNoise)
{
    std::vector<RunningStats> quiet = {
        group({100.0, 100.0}),
        group({198.0, 202.0}),
        group({297.0, 303.0}),
    };
    std::vector<RunningStats> loud = {
        group({100.0, 100.0}),
        group({160.0, 240.0}),
        group({220.0, 380.0}),
    };
    EXPECT_LT(deltaFromProfile(quiet), deltaFromProfile(loud));
}

TEST(Delta, ThreeSigmaScaling)
{
    // One informative group: mean 200 (floor 100 -> m' = 100),
    // stddev 10 -> Delta = 1 + 3*10/100 = 1.3.
    std::vector<RunningStats> groups = {
        group({100.0, 100.0}),
        group({190.0, 210.0}),
    };
    const double sigma = groups[1].stddev();
    EXPECT_NEAR(deltaFromProfile(groups), 1.0 + 3.0 * sigma / 100.0,
                1e-9);
}

TEST(Delta, EmptyProfileFallsBackToMaxDistrust)
{
    // delta = 1 used to be the *silent* answer for an empty profile —
    // the most aggressive pole possible derived from no data at all.
    // An unusable profile now projects the conservative ceiling.
    EXPECT_DOUBLE_EQ(deltaFromProfile({}), kMaxDelta);
}

TEST(Lambda, MeanCoefficientOfVariation)
{
    std::vector<RunningStats> groups = {
        group({90.0, 110.0}),   // CoV = stddev/100
        group({180.0, 220.0}),  // CoV = stddev/200 (same relative)
    };
    const double expected =
        (groups[0].coefficientOfVariation() +
         groups[1].coefficientOfVariation()) / 2.0;
    EXPECT_NEAR(lambdaFromProfile(groups), expected, 1e-12);
}

TEST(Lambda, ClampedBelowOne)
{
    std::vector<RunningStats> groups = {
        group({0.001, 1000.0, 0.001, 1000.0}),
    };
    EXPECT_LE(lambdaFromProfile(groups), 0.9);
}

TEST(Lambda, NoiseFreeIsZero)
{
    std::vector<RunningStats> groups = {group({5.0, 5.0, 5.0})};
    EXPECT_DOUBLE_EQ(lambdaFromProfile(groups), 0.0);
}

TEST(Lambda, AllSingletonGroupsFallBackToConservativeMargin)
{
    // No group has two samples: noise is unmeasurable, and lambda = 0
    // (the old answer) would mean "no safety margin at all".
    std::vector<RunningStats> groups = {group({5.0}), group({9.0})};
    EXPECT_DOUBLE_EQ(lambdaFromProfile(groups), kConservativeLambda);
}

TEST(PoleProjectionVerdict, SufficientOnlyWithUsableGroups)
{
    // Healthy: two groups with >= 2 samples and distinct means.
    std::vector<RunningStats> healthy = {
        group({100.0, 102.0}),
        group({198.0, 202.0}),
    };
    EXPECT_TRUE(projectFromProfile(healthy).sufficient);

    // Single setting: lambda is measurable, delta is not (no group
    // rises above the floor).
    std::vector<RunningStats> single = {group({100.0, 110.0})};
    const PoleProjection p1 = projectFromProfile(single);
    EXPECT_FALSE(p1.sufficient);
    EXPECT_DOUBLE_EQ(p1.delta, kMaxDelta);

    // All singletons: neither part is measurable.
    std::vector<RunningStats> singletons = {group({5.0}),
                                            group({9.0})};
    const PoleProjection p2 = projectFromProfile(singletons);
    EXPECT_FALSE(p2.sufficient);
    EXPECT_EQ(p2.lambda_groups, 0u);
    EXPECT_EQ(p2.delta_groups, 0u);

    // Zero-variance groups with distinct means are legitimate: the
    // paper's formula gives delta = 1 (no model error observed).
    std::vector<RunningStats> quiet = {
        group({100.0, 100.0}),
        group({200.0, 200.0}),
    };
    const PoleProjection p3 = projectFromProfile(quiet);
    EXPECT_TRUE(p3.sufficient);
    EXPECT_DOUBLE_EQ(p3.delta, 1.0);
    EXPECT_DOUBLE_EQ(p3.lambda, 0.0);

    // The max-distrust fallback pole is deep in the stable region.
    const double fallback_pole = poleFromDelta(kMaxDelta);
    EXPECT_GE(fallback_pole, 0.9);
    EXPECT_LT(fallback_pole, 1.0);
}

} // namespace
} // namespace smartconf
