/** @file End-to-end tests of the SmartConf/SmartConfI API (Fig. 3/4). */

#include <gtest/gtest.h>

#include <memory>

#include "core/smartconf.h"

namespace smartconf {
namespace {

ProfileSummary
summary(double alpha, double lambda = 0.1, double pole = 0.0)
{
    ProfileSummary s;
    s.alpha = alpha;
    s.lambda = lambda;
    s.pole = pole;
    s.delta = 1.0;
    s.settings = 4;
    s.samples = 40;
    return s;
}

void
setupMem(SmartConfRuntime &rt, bool hard = true, double goal = 500.0)
{
    rt.declareConf({"q", "mem", 0.0, 0.0, 10000.0});
    Goal g;
    g.metric = "mem";
    g.value = goal;
    g.hard = hard;
    rt.declareGoal(g);
}

TEST(SmartConfApi, UnmanagedPassesInitialThrough)
{
    SmartConfRuntime rt;
    rt.declareConf({"q", "mem", 42.0, 0.0, 10000.0});
    SmartConf sc(rt, "q");
    EXPECT_FALSE(sc.managed());
    sc.setPerf(100.0);
    EXPECT_EQ(sc.getConf(), 42);
}

TEST(SmartConfApi, UnknownNameThrows)
{
    SmartConfRuntime rt;
    EXPECT_THROW(SmartConf(rt, "nope"), std::out_of_range);
}

TEST(SmartConfApi, ControllerDrivesTowardGoal)
{
    SmartConfRuntime rt;
    setupMem(rt, /*hard=*/false);
    rt.installProfile("q", summary(1.0));
    SmartConf sc(rt, "q");
    ASSERT_TRUE(sc.managed());

    // Plant: mem = conf (alpha exactly 1).
    double conf = sc.currentValue();
    for (int i = 0; i < 50; ++i) {
        sc.setPerf(conf);
        conf = sc.getConfReal();
    }
    EXPECT_NEAR(conf, 500.0, 1.0);
}

TEST(SmartConfApi, HardGoalStopsAtVirtualGoal)
{
    SmartConfRuntime rt;
    setupMem(rt, /*hard=*/true);
    rt.installProfile("q", summary(1.0, 0.1));
    SmartConf sc(rt, "q");
    double conf = sc.currentValue();
    for (int i = 0; i < 50; ++i) {
        sc.setPerf(conf);
        conf = sc.getConfReal();
    }
    EXPECT_NEAR(conf, 450.0, 1.0); // (1 - 0.1) * 500
}

TEST(SmartConfApi, GetConfRounds)
{
    SmartConfRuntime rt;
    setupMem(rt, false, 100.5);
    rt.installProfile("q", summary(1.0));
    SmartConf sc(rt, "q");
    sc.setPerf(100.0);
    const double real = sc.currentValue();
    sc.setPerf(real);
    const int integer = sc.getConf();
    EXPECT_NEAR(static_cast<double>(integer), sc.currentValue(), 0.51);
}

TEST(SmartConfApi, SetGoalTakesEffectAtRunTime)
{
    SmartConfRuntime rt;
    setupMem(rt, false);
    rt.installProfile("q", summary(1.0));
    SmartConf sc(rt, "q");
    double conf = 0.0;
    for (int i = 0; i < 30; ++i) {
        sc.setPerf(conf);
        conf = sc.getConfReal();
    }
    ASSERT_NEAR(conf, 500.0, 1.0);
    sc.setGoal(200.0); // user tightens the constraint (Sec. 4.3)
    for (int i = 0; i < 30; ++i) {
        sc.setPerf(conf);
        conf = sc.getConfReal();
    }
    EXPECT_NEAR(conf, 200.0, 1.0);
}

TEST(SmartConfApi, IndirectControlsDeputy)
{
    SmartConfRuntime rt;
    setupMem(rt, true);
    rt.installProfile("q", summary(1.0, 0.1));
    SmartConfI sc(rt, "q");

    // Plant: deputy (queue size) follows the threshold lazily; memory
    // equals deputy plus a 100 MB floor.
    double deputy = 0.0;
    double threshold = sc.currentValue();
    for (int i = 0; i < 100; ++i) {
        deputy = deputy + 0.5 * (threshold - deputy);
        sc.setPerf(100.0 + deputy, deputy);
        threshold = sc.getConfReal();
    }
    // Memory converges to the virtual goal 450 -> deputy ~350.
    EXPECT_NEAR(100.0 + deputy, 450.0, 2.0);
}

TEST(SmartConfApi, IndirectWithCustomTransducer)
{
    SmartConfRuntime rt;
    rt.declareConf({"limit", "lat", 0.0, 0.0, 1e9});
    Goal g;
    g.metric = "lat";
    g.value = 100.0;
    rt.declareGoal(g);
    ControllerOverrides ov;
    ov.deputyMax = 1000.0;
    rt.setOverrides("limit", ov);
    rt.installProfile("limit", summary(1.0, 0.0));
    // Configuration = deputy * 20000 (HD4995's files-per-tick rate).
    SmartConfI sc(rt, "limit",
                  std::make_unique<LinearTransducer>(20000.0));

    double deputy = 10.0;
    sc.setPerf(10.0, deputy);
    const double conf = sc.getConfReal();
    // desired deputy = 10 + (100 - 10) = 100 -> conf = 2,000,000.
    EXPECT_NEAR(conf, 2000000.0, 1.0);
}

TEST(SmartConfApi, ProfilingModeRecordsThroughSetPerf)
{
    SmartConfRuntime rt;
    setupMem(rt);
    rt.setProfiling(true);
    SmartConf sc(rt, "q");
    for (double setting : {40.0, 80.0, 120.0, 160.0}) {
        rt.setCurrentValue("q", setting);
        for (int i = 0; i < 10; ++i)
            sc.setPerf(200.0 + setting + i);
    }
    EXPECT_EQ(rt.profilerFor("q").sampleCount(), 40u);
    const ProfileSummary s = rt.finishProfiling("q");
    EXPECT_NEAR(s.alpha, 1.0, 0.15);
}

TEST(SmartConfApi, UnreachableGoalRaisesAlert)
{
    SmartConfRuntime rt;
    rt.declareConf({"q", "mem", 0.0, 0.0, 50.0}); // tiny clamp
    Goal g;
    g.metric = "mem";
    g.value = 10000.0; // unreachable with conf <= 50 and alpha 1
    rt.declareGoal(g);
    rt.installProfile("q", summary(1.0));

    int alerts = 0;
    std::string alerted_conf;
    rt.setAlertHandler([&](const std::string &conf,
                           const std::string &msg) {
        ++alerts;
        alerted_conf = conf;
        EXPECT_FALSE(msg.empty());
    });

    SmartConf sc(rt, "q");
    double perf = 0.0;
    for (int i = 0; i < 10; ++i) {
        sc.setPerf(perf);
        perf = sc.getConfReal(); // pinned at 50, goal never met
    }
    EXPECT_EQ(alerts, 1) << "alert must fire exactly once per episode";
    EXPECT_EQ(alerted_conf, "q");
    EXPECT_EQ(rt.alertCount(), 1);
}

TEST(SmartConfApi, InteractingConfsShareSuperHardGoal)
{
    // HB3813 + HB6728 against one memory goal (paper Sec. 6.5).
    SmartConfRuntime rt;
    rt.declareConf({"req.q", "mem", 0.0, 0.0, 10000.0});
    rt.declareConf({"resp.q", "mem", 0.0, 0.0, 10000.0});
    Goal g;
    g.metric = "mem";
    g.value = 400.0;
    g.superHard = true;
    g.hard = true;
    rt.declareGoal(g);
    rt.installProfile("req.q", summary(1.0, 0.0));
    rt.installProfile("resp.q", summary(1.0, 0.0));

    SmartConfI a(rt, "req.q");
    SmartConfI b(rt, "resp.q");

    double qa = 0.0, qb = 0.0;
    for (int i = 0; i < 200; ++i) {
        const double mem = qa + qb;
        a.setPerf(mem, qa);
        qa = a.getConfReal();
        b.setPerf(qa + qb, qb);
        qb = b.getConfReal();
    }
    // Both queues settle and the shared constraint holds.
    EXPECT_NEAR(qa + qb, 400.0, 2.0);
    EXPECT_LE(qa + qb, 402.0);
    EXPECT_GT(qa, 50.0);
    EXPECT_GT(qb, 50.0);
}

} // namespace
} // namespace smartconf
