/** @file Lower-bound goals (throughput floors) through the full stack. */

#include <gtest/gtest.h>

#include "core/smartconf.h"
#include "sim/rng.h"

namespace smartconf {
namespace {

ProfileSummary
summary(double alpha, double lambda)
{
    ProfileSummary s;
    s.alpha = alpha;
    s.lambda = lambda;
    s.settings = 4;
    s.samples = 40;
    return s;
}

TEST(LowerBoundGoals, ControllerConvergesFromAbove)
{
    SmartConfRuntime rt;
    rt.declareConf({"threads", "throughput_min", 64.0, 1.0, 1024.0});
    Goal g;
    g.metric = "throughput_min";
    g.value = 100.0;
    g.direction = GoalDirection::LowerBound;
    rt.declareGoal(g);
    rt.installProfile("threads", summary(2.0, 0.0));

    SmartConf sc(rt, "threads");
    // Plant: throughput = 2 * threads.
    double conf = sc.currentValue();
    for (int i = 0; i < 50; ++i) {
        sc.setPerf(2.0 * conf);
        conf = sc.getConfReal();
    }
    EXPECT_NEAR(2.0 * conf, 100.0, 1.0);
}

TEST(LowerBoundGoals, HardFloorGetsRaisedVirtualGoal)
{
    Goal g;
    g.metric = "tput";
    g.value = 100.0;
    g.direction = GoalDirection::LowerBound;
    g.hard = true;

    ControllerParams p;
    p.alpha = 2.0;
    p.lambda = 0.2;
    p.confMax = 1e9;
    Controller c(p, g);
    // Lower bound: the virtual goal sits ABOVE the constraint.
    EXPECT_DOUBLE_EQ(c.virtualGoal(), 120.0);
    EXPECT_TRUE(c.inDangerZone(110.0)) << "below the floor margin";
    EXPECT_FALSE(c.inDangerZone(130.0));
}

TEST(LowerBoundGoals, HardFloorNeverUndershootsUnderNoise)
{
    Goal g;
    g.metric = "tput";
    g.value = 100.0;
    g.direction = GoalDirection::LowerBound;
    g.hard = true;

    ControllerParams p;
    p.alpha = 1.0;
    p.pole = 0.3;
    p.lambda = 0.2; // virtual goal 120
    p.confMax = 1e9;
    Controller c(p, g);

    sim::Rng rng(4242);
    double conf = 200.0;
    int violations = 0;
    for (int k = 0; k < 4000; ++k) {
        double noise = rng.uniform(-10.0, 10.0);
        const double perf = conf + noise;
        violations += perf < 100.0 ? 1 : 0;
        conf = c.update(perf, conf);
    }
    EXPECT_EQ(violations, 0)
        << "20% margin absorbs the +-10 disturbance";
}

} // namespace
} // namespace smartconf
