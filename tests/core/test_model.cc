/** @file Unit tests for the linear performance model (Eq. 1). */

#include <gtest/gtest.h>

#include <vector>

#include "core/model.h"

namespace smartconf {
namespace {

std::vector<ProfilePoint>
line(double alpha, double base, int n = 20)
{
    std::vector<ProfilePoint> pts;
    for (int i = 1; i <= n; ++i) {
        const double c = 10.0 * i;
        pts.push_back({c, alpha * c + base});
    }
    return pts;
}

TEST(LinearModel, ProportionalFitRecoversGain)
{
    const auto m = LinearModel::fitProportional(line(2.5, 0.0));
    EXPECT_NEAR(m.alpha(), 2.5, 1e-9);
    EXPECT_DOUBLE_EQ(m.base(), 0.0);
    EXPECT_NEAR(m.correlation(), 1.0, 1e-9);
}

TEST(LinearModel, AffineFitRecoversGainAndIntercept)
{
    const auto m = LinearModel::fitAffine(line(1.2, 200.0));
    EXPECT_NEAR(m.alpha(), 1.2, 1e-9);
    EXPECT_NEAR(m.base(), 200.0, 1e-6);
}

TEST(LinearModel, NegativeGain)
{
    // MR2820-style: raising the config lowers the metric.
    const auto m = LinearModel::fitAffine(line(-0.9, 900.0));
    EXPECT_NEAR(m.alpha(), -0.9, 1e-9);
    EXPECT_NEAR(m.correlation(), -1.0, 1e-9);
}

TEST(LinearModel, PredictAndInvertRoundTrip)
{
    const auto m = LinearModel::fitAffine(line(1.5, 100.0));
    const double s = m.predict(80.0);
    EXPECT_NEAR(m.invert(s), 80.0, 1e-9);
}

TEST(LinearModel, EmptyInputIsDegenerate)
{
    const auto m = LinearModel::fitAffine({});
    EXPECT_DOUBLE_EQ(m.alpha(), 0.0);
    EXPECT_EQ(m.sampleCount(), 0u);
}

TEST(LinearModel, SingleSettingFallsBackToConstant)
{
    std::vector<ProfilePoint> pts = {{50.0, 120.0}, {50.0, 130.0}};
    const auto m = LinearModel::fitAffine(pts);
    EXPECT_DOUBLE_EQ(m.alpha(), 0.0);
    EXPECT_DOUBLE_EQ(m.base(), 125.0);
}

TEST(LinearModel, MonotonicityCheckAcceptsCleanLine)
{
    EXPECT_TRUE(LinearModel::fitAffine(line(1.0, 0.0))
                    .plausiblyMonotonic());
}

TEST(LinearModel, MonotonicityCheckRejectsUShape)
{
    // MR5420-style non-monotonic response (paper Sec. 6.6): too few or
    // too many chunks both slow the copy down.
    std::vector<ProfilePoint> pts;
    for (int i = -10; i <= 10; ++i) {
        const double c = static_cast<double>(i);
        pts.push_back({c + 11.0, c * c});
    }
    const auto m = LinearModel::fitAffine(pts);
    EXPECT_FALSE(m.plausiblyMonotonic());
}

TEST(LinearModel, NoisyLineStillCorrelated)
{
    auto pts = line(1.0, 50.0);
    for (std::size_t i = 0; i < pts.size(); ++i)
        pts[i].perf += (i % 2 == 0 ? 3.0 : -3.0);
    const auto m = LinearModel::fitAffine(pts);
    EXPECT_NEAR(m.alpha(), 1.0, 0.05);
    EXPECT_GT(m.correlation(), 0.95);
}

} // namespace
} // namespace smartconf
