/**
 * @file Property-based round-trip tests for the SmartConf file formats:
 * any structurally valid document must survive format -> parse intact.
 */

#include <gtest/gtest.h>

#include "core/sysfile.h"
#include "sim/rng.h"

namespace smartconf {
namespace {

class SysFileRoundTrip : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(SysFileRoundTrip, RandomSysFilesSurvive)
{
    sim::Rng rng(GetParam());
    SysFile original;
    original.profilingEnabled = rng.chance(0.5);
    const int n = static_cast<int>(rng.between(1, 6));
    for (int i = 0; i < n; ++i) {
        ConfEntry e;
        e.name = "conf." + std::to_string(rng.below(1000));
        e.metric = "metric_" + std::to_string(rng.below(10));
        e.initial = rng.uniform(-1000.0, 1000.0);
        e.confMin = rng.uniform(0.0, 10.0);
        e.confMax = e.confMin + rng.uniform(1.0, 1e6);
        // names must be unique for a faithful comparison
        e.name += "_" + std::to_string(i);
        original.entries.push_back(e);
    }

    const SysFile parsed = parseSysFile(formatSysFile(original));
    EXPECT_EQ(parsed.profilingEnabled, original.profilingEnabled);
    ASSERT_EQ(parsed.entries.size(), original.entries.size());
    for (std::size_t i = 0; i < original.entries.size(); ++i) {
        const ConfEntry &a = original.entries[i];
        const ConfEntry *b = parsed.find(a.name);
        ASSERT_NE(b, nullptr) << a.name;
        EXPECT_EQ(b->metric, a.metric);
        EXPECT_DOUBLE_EQ(b->initial, a.initial);
        EXPECT_DOUBLE_EQ(b->confMin, a.confMin);
        EXPECT_DOUBLE_EQ(b->confMax, a.confMax);
    }
}

TEST_P(SysFileRoundTrip, RandomUserConfsSurvive)
{
    sim::Rng rng(GetParam() * 31 + 7);
    UserConf original;
    const int n = static_cast<int>(rng.between(1, 5));
    for (int i = 0; i < n; ++i) {
        Goal g;
        g.metric = "metric_" + std::to_string(i);
        g.value = rng.uniform(-1e6, 1e6);
        g.hard = rng.chance(0.5);
        g.superHard = g.hard && rng.chance(0.3);
        g.direction = rng.chance(0.8) ? GoalDirection::UpperBound
                                      : GoalDirection::LowerBound;
        original.goals[g.metric] = g;
    }

    const UserConf parsed = parseUserConf(formatUserConf(original));
    ASSERT_EQ(parsed.goals.size(), original.goals.size());
    for (const auto &[metric, a] : original.goals) {
        const Goal &b = parsed.goals.at(metric);
        EXPECT_DOUBLE_EQ(b.value, a.value);
        EXPECT_EQ(b.hard, a.hard);
        EXPECT_EQ(b.superHard, a.superHard);
        EXPECT_EQ(b.direction, a.direction);
    }
}

TEST_P(SysFileRoundTrip, RandomProfileStoresSurvive)
{
    sim::Rng rng(GetParam() * 97 + 13);
    ProfileFile original;
    original.conf = "conf." + std::to_string(rng.below(100));
    original.summary.alpha = rng.uniform(-10.0, 10.0);
    original.summary.base = rng.uniform(-1e3, 1e3);
    original.summary.lambda = rng.uniform(0.0, 0.9);
    original.summary.delta = rng.uniform(1.0, 100.0);
    original.summary.pole = rng.uniform(0.0, 0.99);
    original.summary.correlation = rng.uniform(-1.0, 1.0);
    original.summary.settings = rng.below(10);
    original.summary.samples = rng.below(100);
    original.summary.monotonic = rng.chance(0.8);
    const int n = static_cast<int>(rng.between(0, 50));
    for (int i = 0; i < n; ++i) {
        original.samples.push_back(
            {rng.uniform(0.0, 1e4), rng.uniform(0.0, 1e4)});
    }

    const ProfileFile parsed =
        parseProfileFile(formatProfileFile(original));
    EXPECT_EQ(parsed.conf, original.conf);
    EXPECT_DOUBLE_EQ(parsed.summary.alpha, original.summary.alpha);
    EXPECT_DOUBLE_EQ(parsed.summary.lambda, original.summary.lambda);
    EXPECT_DOUBLE_EQ(parsed.summary.pole, original.summary.pole);
    EXPECT_EQ(parsed.summary.monotonic, original.summary.monotonic);
    ASSERT_EQ(parsed.samples.size(), original.samples.size());
    for (std::size_t i = 0; i < original.samples.size(); ++i) {
        EXPECT_DOUBLE_EQ(parsed.samples[i].config,
                         original.samples[i].config);
        EXPECT_DOUBLE_EQ(parsed.samples[i].perf,
                         original.samples[i].perf);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SysFileRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 21));

} // namespace
} // namespace smartconf
