/** @file Unit tests for the deployment/profile linter. */

#include <gtest/gtest.h>

#include "core/lint.h"
#include "core/runtime.h"

namespace smartconf {
namespace {

SysFile
goodSys()
{
    return parseSysFile(
        "max.queue.size @ memory_consumption_max\n"
        "max.queue.size = 50\n"
        "max.queue.size.min = 0\n"
        "max.queue.size.max = 5000\n");
}

UserConf
goodUser()
{
    return parseUserConf(
        "memory_consumption_max = 1024\n"
        "memory_consumption_max.hard = 1\n");
}

TEST(LintDeployment, CleanPairHasNoFindings)
{
    const auto issues = lintDeployment(goodSys(), goodUser());
    EXPECT_TRUE(issues.empty()) << formatLintIssues(issues);
}

TEST(LintDeployment, MissingGoalIsAnError)
{
    UserConf user; // nothing configured
    const auto issues = lintDeployment(goodSys(), user);
    ASSERT_FALSE(issues.empty());
    EXPECT_TRUE(hasLintErrors(issues));
    EXPECT_EQ(issues[0].subject, "max.queue.size");
}

TEST(LintDeployment, MissingMetricMappingIsAnError)
{
    const SysFile sys = parseSysFile("orphan.conf = 5\n");
    const auto issues = lintDeployment(sys, goodUser());
    EXPECT_TRUE(hasLintErrors(issues));
}

TEST(LintDeployment, UnusedGoalIsAWarning)
{
    UserConf user = goodUser();
    Goal extra;
    extra.metric = "latency_budget";
    extra.value = 10.0;
    user.goals["latency_budget"] = extra;
    const auto issues = lintDeployment(goodSys(), user);
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_EQ(issues[0].severity, LintSeverity::Warning);
    EXPECT_EQ(issues[0].subject, "latency_budget");
    EXPECT_FALSE(hasLintErrors(issues));
}

TEST(LintDeployment, InvertedClampIsAnError)
{
    SysFile sys = goodSys();
    sys.entries[0].confMin = 100.0;
    sys.entries[0].confMax = 10.0;
    EXPECT_TRUE(hasLintErrors(lintDeployment(sys, goodUser())));
}

TEST(LintDeployment, InitialOutsideClampWarns)
{
    SysFile sys = goodSys();
    sys.entries[0].initial = 9999999.0;
    const auto issues = lintDeployment(sys, goodUser());
    ASSERT_FALSE(issues.empty());
    EXPECT_EQ(issues[0].severity, LintSeverity::Warning);
}

TEST(LintDeployment, PinnedClampWarns)
{
    SysFile sys = goodSys();
    sys.entries[0].confMin = 50.0;
    sys.entries[0].confMax = 50.0;
    const auto issues = lintDeployment(sys, goodUser());
    EXPECT_FALSE(hasLintErrors(issues));
    EXPECT_FALSE(issues.empty());
}

TEST(LintDeployment, NonPositiveHardUpperBoundWarns)
{
    UserConf user = goodUser();
    user.goals["memory_consumption_max"].value = 0.0;
    const auto issues = lintDeployment(goodSys(), user);
    ASSERT_FALSE(issues.empty());
    EXPECT_EQ(issues[0].severity, LintSeverity::Warning);
}

ProfileFile
goodProfile()
{
    ProfileFile f;
    f.conf = "max.queue.size";
    f.summary.alpha = 1.0;
    f.summary.lambda = 0.1;
    f.summary.pole = 0.4;
    f.summary.monotonic = true;
    for (double setting : {40.0, 80.0, 120.0, 160.0}) {
        for (int i = 0; i < 10; ++i)
            f.samples.push_back({setting, 200.0 + setting + i});
    }
    return f;
}

TEST(LintProfile, CleanStoreHasNoFindings)
{
    const auto issues =
        lintProfile(goodProfile(), goodSys().entries[0]);
    EXPECT_TRUE(issues.empty()) << formatLintIssues(issues);
}

TEST(LintProfile, NonMonotonicWarns)
{
    ProfileFile f = goodProfile();
    f.summary.monotonic = false;
    const auto issues = lintProfile(f, goodSys().entries[0]);
    ASSERT_FALSE(issues.empty());
    EXPECT_NE(issues[0].message.find("non-monotonic"),
              std::string::npos);
}

TEST(LintProfile, BadPoleIsAnError)
{
    ProfileFile f = goodProfile();
    f.summary.pole = 1.5;
    EXPECT_TRUE(hasLintErrors(lintProfile(f, goodSys().entries[0])));
}

TEST(LintProfile, ZeroGainIsAnError)
{
    ProfileFile f = goodProfile();
    f.summary.alpha = 0.0;
    EXPECT_TRUE(hasLintErrors(lintProfile(f, goodSys().entries[0])));
}

TEST(LintProfile, ThinProfileWarns)
{
    ProfileFile f = goodProfile();
    f.samples.resize(12);
    const auto issues = lintProfile(f, goodSys().entries[0]);
    EXPECT_FALSE(hasLintErrors(issues));
    EXPECT_FALSE(issues.empty());
}

TEST(LintProfile, ForeignSamplesWarnOnce)
{
    ProfileFile f = goodProfile();
    f.samples.push_back({999999.0, 1.0});
    f.samples.push_back({888888.0, 1.0});
    const auto issues = lintProfile(f, goodSys().entries[0]);
    int clamp_warnings = 0;
    for (const auto &issue : issues) {
        clamp_warnings +=
            issue.message.find("clamp") != std::string::npos ? 1 : 0;
    }
    EXPECT_EQ(clamp_warnings, 1);
}

TEST(LintFormat, RendersSeverities)
{
    std::vector<LintIssue> issues = {
        {LintSeverity::Error, "a", "broken"},
        {LintSeverity::Warning, "b", "odd"},
    };
    const std::string text = formatLintIssues(issues);
    EXPECT_NE(text.find("error: a: broken"), std::string::npos);
    EXPECT_NE(text.find("warning: b: odd"), std::string::npos);
}

} // namespace
} // namespace smartconf

namespace smartconf {
namespace {

TEST(RuntimeLint, CleanRuntimeHasNoFindings)
{
    SmartConfRuntime rt;
    rt.loadSysText(
        "max.queue.size @ memory_consumption_max\n"
        "max.queue.size = 50\n"
        "max.queue.size.max = 5000\n");
    rt.loadUserConfText(
        "memory_consumption_max = 1024\n"
        "memory_consumption_max.hard = 1\n");
    ProfileSummary s;
    s.alpha = 1.0;
    s.lambda = 0.1;
    s.monotonic = true;
    rt.installProfile("max.queue.size", s);
    const auto issues = rt.lint();
    // Only the thin-profile warning (no raw samples retained) remains.
    EXPECT_FALSE(hasLintErrors(issues)) << formatLintIssues(issues);
}

TEST(RuntimeLint, MissingGoalSurfaces)
{
    SmartConfRuntime rt;
    rt.loadSysText("q @ mem\nq = 1\n");
    const auto issues = rt.lint();
    EXPECT_TRUE(hasLintErrors(issues));
}

} // namespace
} // namespace smartconf
