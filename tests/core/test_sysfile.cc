/** @file Unit tests for the SmartConf file formats (Fig. 2). */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/sysfile.h"

namespace smartconf {
namespace {

TEST(SysFile, ParsesPaperExample)
{
    // Verbatim from the paper's Fig. 2 (SmartConf.sys part).
    const std::string text =
        "/* SmartConf.sys */\n"
        "max.queue.size @ memory_consumption_max\n"
        "max.queue.size = 50\n";
    const SysFile f = parseSysFile(text);
    ASSERT_EQ(f.entries.size(), 1u);
    EXPECT_EQ(f.entries[0].name, "max.queue.size");
    EXPECT_EQ(f.entries[0].metric, "memory_consumption_max");
    EXPECT_DOUBLE_EQ(f.entries[0].initial, 50.0);
}

TEST(SysFile, ClampsAndProfilingFlag)
{
    const SysFile f = parseSysFile(
        "profiling = 1\n"
        "q @ mem\n"
        "q = 10\n"
        "q.min = 2\n"
        "q.max = 500\n");
    EXPECT_TRUE(f.profilingEnabled);
    const ConfEntry *e = f.find("q");
    ASSERT_NE(e, nullptr);
    EXPECT_DOUBLE_EQ(e->confMin, 2.0);
    EXPECT_DOUBLE_EQ(e->confMax, 500.0);
}

TEST(SysFile, MultipleEntriesAndComments)
{
    const SysFile f = parseSysFile(
        "# request queue\n"
        "a @ mem // inline comment\n"
        "a = 1\n"
        "b @ latency\n"
        "b = 2.5\n");
    EXPECT_EQ(f.entries.size(), 2u);
    EXPECT_EQ(f.find("b")->metric, "latency");
    EXPECT_DOUBLE_EQ(f.find("b")->initial, 2.5);
}

TEST(SysFile, FindMissingReturnsNull)
{
    const SysFile f = parseSysFile("a @ m\n");
    EXPECT_EQ(f.find("zzz"), nullptr);
}

TEST(SysFile, MalformedLinesThrowWithLineNumber)
{
    try {
        parseSysFile("a @ m\n???\n");
        FAIL() << "expected parse error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos);
    }
}

TEST(SysFile, BadNumberThrows)
{
    EXPECT_THROW(parseSysFile("a = banana\n"), std::runtime_error);
    EXPECT_THROW(parseSysFile("a = 1.5x\n"), std::runtime_error);
}

TEST(SysFile, RoundTrip)
{
    SysFile f;
    f.profilingEnabled = true;
    f.entries.push_back({"q.size", "mem", 50.0, 1.0, 2000.0});
    const SysFile g = parseSysFile(formatSysFile(f));
    EXPECT_TRUE(g.profilingEnabled);
    ASSERT_EQ(g.entries.size(), 1u);
    EXPECT_EQ(g.entries[0].name, "q.size");
    EXPECT_EQ(g.entries[0].metric, "mem");
    EXPECT_DOUBLE_EQ(g.entries[0].initial, 50.0);
    EXPECT_DOUBLE_EQ(g.entries[0].confMin, 1.0);
    EXPECT_DOUBLE_EQ(g.entries[0].confMax, 2000.0);
}

TEST(UserConf, ParsesPaperExample)
{
    // Verbatim from the paper's Fig. 2 (HBase.conf part).
    const UserConf c = parseUserConf(
        "/* HBase.conf */\n"
        "memory_consumption_max = 1024\n"
        "memory_consumption_max.hard = 1\n");
    const Goal &g = c.goals.at("memory_consumption_max");
    EXPECT_DOUBLE_EQ(g.value, 1024.0);
    EXPECT_TRUE(g.hard);
    EXPECT_FALSE(g.superHard);
    EXPECT_EQ(g.direction, GoalDirection::UpperBound);
}

TEST(UserConf, SuperHardImpliesHard)
{
    const UserConf c = parseUserConf(
        "mem = 512\n"
        "mem.superhard = 1\n");
    EXPECT_TRUE(c.goals.at("mem").superHard);
    EXPECT_TRUE(c.goals.at("mem").hard);
}

TEST(UserConf, Direction)
{
    const UserConf c = parseUserConf(
        "tput = 100\n"
        "tput.direction = lower\n");
    EXPECT_EQ(c.goals.at("tput").direction, GoalDirection::LowerBound);
    EXPECT_THROW(parseUserConf("x = 1\nx.direction = sideways\n"),
                 std::runtime_error);
}

TEST(UserConf, AttributeBeforeValue)
{
    // Order independence: .hard can precede the goal value.
    const UserConf c = parseUserConf(
        "mem.hard = 1\n"
        "mem = 256\n");
    EXPECT_TRUE(c.goals.at("mem").hard);
    EXPECT_DOUBLE_EQ(c.goals.at("mem").value, 256.0);
}

TEST(UserConf, RoundTrip)
{
    UserConf c;
    Goal g;
    g.metric = "mem";
    g.value = 512.0;
    g.hard = true;
    g.superHard = true;
    c.goals["mem"] = g;
    const UserConf d = parseUserConf(formatUserConf(c));
    EXPECT_TRUE(d.goals.at("mem").superHard);
    EXPECT_DOUBLE_EQ(d.goals.at("mem").value, 512.0);
}

TEST(ProfileFileFormat, RoundTrip)
{
    ProfileFile f;
    f.conf = "max.queue.size";
    f.summary.alpha = 1.25;
    f.summary.base = 210.5;
    f.summary.lambda = 0.101;
    f.summary.delta = 4.2;
    f.summary.pole = 0.52;
    f.summary.correlation = 0.93;
    f.summary.settings = 4;
    f.summary.samples = 40;
    f.summary.monotonic = true;
    f.samples = {{40.0, 251.0}, {80.0, 291.5}};

    const ProfileFile g = parseProfileFile(formatProfileFile(f));
    EXPECT_EQ(g.conf, f.conf);
    EXPECT_DOUBLE_EQ(g.summary.alpha, f.summary.alpha);
    EXPECT_DOUBLE_EQ(g.summary.lambda, f.summary.lambda);
    EXPECT_DOUBLE_EQ(g.summary.pole, f.summary.pole);
    EXPECT_EQ(g.summary.settings, 4u);
    ASSERT_EQ(g.samples.size(), 2u);
    EXPECT_DOUBLE_EQ(g.samples[1].config, 80.0);
    EXPECT_DOUBLE_EQ(g.samples[1].perf, 291.5);
}

TEST(ProfileFileFormat, UnknownKeyThrows)
{
    EXPECT_THROW(parseProfileFile("conf = a\nwat = 3\n"),
                 std::runtime_error);
}

TEST(ProfileFileFormat, MalformedSampleThrows)
{
    EXPECT_THROW(parseProfileFile("conf = a\nsample = 40\n"),
                 std::runtime_error);
}

TEST(TextFileIo, ReadMissingFileThrows)
{
    EXPECT_THROW(readTextFile("/nonexistent/smartconf.sys"),
                 std::runtime_error);
}

TEST(TextFileIo, WriteReadRoundTrip)
{
    const std::string path =
        ::testing::TempDir() + "/smartconf_io_test.txt";
    writeTextFile(path, "hello = 1\n");
    EXPECT_EQ(readTextFile(path), "hello = 1\n");
}

} // namespace
} // namespace smartconf
