/** @file Unit tests for the SmartConf integral controller (Eq. 2). */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/controller.h"

namespace smartconf {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

Goal
memGoal(double value, bool hard = true)
{
    Goal g;
    g.metric = "memory_consumption_max";
    g.value = value;
    g.direction = GoalDirection::UpperBound;
    g.hard = hard;
    return g;
}

ControllerParams
params(double alpha, double pole = 0.0, double lambda = 0.0)
{
    ControllerParams p;
    p.alpha = alpha;
    p.pole = pole;
    p.lambda = lambda;
    p.confMax = 1e9;
    return p;
}

TEST(Controller, StepMatchesEquationTwo)
{
    // c(k+1) = c(k) + (1-p)/alpha * e(k+1), soft goal, e = goal - s.
    Controller c(params(2.0, 0.5), memGoal(100.0, false));
    // e = 100 - 60 = 40; step = 0.5/2 * 40 = 10.
    EXPECT_DOUBLE_EQ(c.update(60.0, 5.0), 15.0);
}

TEST(Controller, ConvergesOnLinearPlant)
{
    const double alpha = 1.5;
    Controller c(params(alpha, 0.4), memGoal(300.0, false));
    double conf = 0.0;
    double perf = 0.0;
    for (int k = 0; k < 100; ++k) {
        conf = c.update(perf, conf);
        perf = alpha * conf; // the modeled plant
    }
    EXPECT_NEAR(perf, 300.0, 0.1);
}

TEST(Controller, NegativeGainConverges)
{
    // MR2820-style: perf = 900 - 1.0 * conf, upper-bound goal 800.
    ControllerParams p = params(-1.0, 0.3);
    Controller c(p, memGoal(800.0, false));
    double conf = 0.0;
    double perf = 900.0;
    for (int k = 0; k < 200; ++k) {
        conf = c.update(perf, conf);
        perf = 900.0 - conf;
    }
    EXPECT_NEAR(perf, 800.0, 0.5);
    EXPECT_NEAR(conf, 100.0, 0.5);
}

TEST(Controller, HardGoalTracksVirtualGoal)
{
    Controller c(params(1.0, 0.0, 0.1), memGoal(495.0, true));
    EXPECT_NEAR(c.virtualGoal(), 445.5, 1e-9);
    EXPECT_DOUBLE_EQ(c.setPoint(), c.virtualGoal());
}

TEST(Controller, SoftGoalIgnoresVirtualGoal)
{
    Controller c(params(1.0, 0.0, 0.1), memGoal(495.0, false));
    EXPECT_DOUBLE_EQ(c.setPoint(), 495.0);
}

TEST(Controller, DangerZoneDetection)
{
    Controller c(params(1.0, 0.6, 0.1), memGoal(500.0, true));
    EXPECT_FALSE(c.inDangerZone(440.0)); // below 450 virtual goal
    EXPECT_TRUE(c.inDangerZone(460.0));
}

TEST(Controller, ContextAwarePoleSwitch)
{
    Controller c(params(1.0, 0.6, 0.1), memGoal(500.0, true));
    EXPECT_DOUBLE_EQ(c.effectivePole(400.0), 0.6);
    EXPECT_DOUBLE_EQ(c.effectivePole(470.0), 0.0); // aggressive
}

TEST(Controller, SinglePoleAblationDisablesSwitch)
{
    ControllerParams p = params(1.0, 0.9, 0.1);
    p.useContextAwarePoles = false;
    Controller c(p, memGoal(500.0, true));
    EXPECT_DOUBLE_EQ(c.effectivePole(470.0), 0.9);
}

TEST(Controller, NoVirtualGoalAblationTargetsRawGoal)
{
    ControllerParams p = params(1.0, 0.5, 0.2);
    p.useVirtualGoal = false;
    Controller c(p, memGoal(500.0, true));
    EXPECT_DOUBLE_EQ(c.setPoint(), 500.0);
}

TEST(Controller, DangerZoneReactsHarderThanSafeZone)
{
    Controller c(params(1.0, 0.8, 0.1), memGoal(500.0, true));
    // Safe-zone correction with error -10 around perf 400.
    const double from = 100.0;
    const double safe_next = c.update(c.virtualGoal() - 10.0 + 1e-9, from);
    Controller c2(params(1.0, 0.8, 0.1), memGoal(500.0, true));
    const double danger_next = c2.update(c.virtualGoal() + 10.0, from);
    // Same |error| magnitude: the danger-zone step must be larger.
    EXPECT_GT(std::abs(danger_next - from) - 1e-9,
              std::abs(safe_next - from));
}

TEST(Controller, InteractionFactorSplitsError)
{
    ControllerParams p = params(1.0, 0.0);
    p.interactionFactor = 2.0;
    Controller c(p, memGoal(100.0, false));
    // e = 100; step = (1-0)/(2*1) * 100 = 50.
    EXPECT_DOUBLE_EQ(c.update(0.0, 0.0), 50.0);
}

TEST(Controller, SetInteractionFactorTakesEffect)
{
    Controller c(params(1.0, 0.0), memGoal(100.0, false));
    c.setInteractionFactor(4.0);
    EXPECT_DOUBLE_EQ(c.update(0.0, 0.0), 25.0);
}

TEST(Controller, ClampsToBounds)
{
    ControllerParams p = params(1.0, 0.0);
    p.confMin = 10.0;
    p.confMax = 50.0;
    Controller c(p, memGoal(1000.0, false));
    EXPECT_DOUBLE_EQ(c.update(0.0, 40.0), 50.0);   // huge positive error
    EXPECT_DOUBLE_EQ(c.update(5000.0, 40.0), 10.0); // huge negative error
}

TEST(Controller, SaturationSignalsUnreachableGoal)
{
    ControllerParams p = params(1.0, 0.0);
    p.confMin = 0.0;
    p.confMax = 10.0;
    Controller c(p, memGoal(10000.0, false));
    for (int i = 0; i < 5; ++i)
        c.update(0.0, 10.0); // wants to push far beyond confMax
    EXPECT_TRUE(c.saturated());
}

TEST(Controller, SaturationResetsWhenFeasible)
{
    ControllerParams p = params(1.0, 0.0);
    p.confMax = 10.0;
    Controller c(p, memGoal(10000.0, false));
    for (int i = 0; i < 5; ++i)
        c.update(0.0, 10.0);
    ASSERT_TRUE(c.saturated());
    c.update(10000.0, 5.0); // error now zero: interior update
    EXPECT_FALSE(c.saturated());
}

TEST(Controller, SetGoalRecomputesVirtualGoal)
{
    Controller c(params(1.0, 0.0, 0.1), memGoal(500.0, true));
    Goal g = memGoal(300.0, true);
    c.setGoal(g);
    EXPECT_NEAR(c.virtualGoal(), 270.0, 1e-9);
}

TEST(Controller, LastOutputTracksUpdates)
{
    Controller c(params(1.0, 0.0), memGoal(100.0, false));
    EXPECT_FALSE(c.lastOutput().has_value());
    const double out = c.update(50.0, 0.0);
    ASSERT_TRUE(c.lastOutput().has_value());
    EXPECT_DOUBLE_EQ(*c.lastOutput(), out);
}

TEST(Controller, ConstructionRejectsUnstableParameters)
{
    // These used to be debug-only asserts: a release build would
    // happily divide by alpha == 0 on the first update.
    const Goal g = memGoal(100.0);
    EXPECT_THROW(Controller(params(0.0), g), std::invalid_argument);
    EXPECT_THROW(Controller(params(kNan), g), std::invalid_argument);
    EXPECT_THROW(Controller(params(kInf), g), std::invalid_argument);
    EXPECT_THROW(Controller(params(1.0, 1.0), g),
                 std::invalid_argument); // pole outside [0, 1)
    EXPECT_THROW(Controller(params(1.0, -0.1), g),
                 std::invalid_argument);
    ControllerParams bad_clamp = params(1.0);
    bad_clamp.confMin = 10.0;
    bad_clamp.confMax = 5.0;
    EXPECT_THROW(Controller(bad_clamp, g), std::invalid_argument);
    ControllerParams bad_n = params(1.0);
    bad_n.interactionFactor = 0.5;
    EXPECT_THROW(Controller(bad_n, g), std::invalid_argument);
}

TEST(Controller, NonFinitePerfHoldsLastOutput)
{
    Controller c(params(2.0, 0.5), memGoal(100.0, false));
    const double good = c.update(60.0, 5.0);
    EXPECT_EQ(c.faults(), 0u);
    EXPECT_DOUBLE_EQ(c.update(kNan, good), good);
    EXPECT_DOUBLE_EQ(c.update(kInf, good), good);
    EXPECT_DOUBLE_EQ(c.update(-kInf, good), good);
    EXPECT_EQ(c.faults(), 3u);
    // Recovery: a finite measurement resumes control from the held
    // output as if the faulty samples never happened.
    const double next = c.update(60.0, good);
    EXPECT_TRUE(std::isfinite(next));
    EXPECT_EQ(c.faults(), 3u);
}

TEST(Controller, NonFiniteConfHoldsLastOutput)
{
    Controller c(params(2.0, 0.5), memGoal(100.0, false));
    const double good = c.update(60.0, 5.0);
    EXPECT_DOUBLE_EQ(c.update(60.0, kNan), good);
    EXPECT_EQ(c.faults(), 1u);
}

TEST(Controller, FaultBeforeFirstUpdateStaysInClamp)
{
    // No last output to hold yet: the controller must still emit a
    // finite, in-clamp value, not NaN.
    ControllerParams p = params(2.0, 0.5);
    p.confMin = 10.0;
    p.confMax = 50.0;
    Controller c(p, memGoal(100.0, false));
    const double out = c.update(kNan, kNan);
    EXPECT_TRUE(std::isfinite(out));
    EXPECT_GE(out, 10.0);
    EXPECT_LE(out, 50.0);
    EXPECT_EQ(c.faults(), 1u);
}

TEST(Controller, OutputAlwaysFiniteUnderNaNStorm)
{
    ControllerParams p = params(2.0, 0.5);
    p.confMin = 0.0;
    p.confMax = 1000.0;
    Controller c(p, memGoal(100.0, true));
    double conf = 5.0;
    for (int i = 0; i < 200; ++i) {
        const double perf = (i % 3 == 0)   ? kNan
                            : (i % 3 == 1) ? kInf
                                           : 60.0 + i;
        conf = c.update(perf, conf);
        ASSERT_TRUE(std::isfinite(conf));
        ASSERT_GE(conf, p.confMin);
        ASSERT_LE(conf, p.confMax);
    }
    EXPECT_GT(c.faults(), 0u);
}

} // namespace
} // namespace smartconf
