/** @file Unit tests for goals and the automated virtual goal. */

#include <gtest/gtest.h>

#include "core/goal.h"

namespace smartconf {
namespace {

TEST(Goal, UpperBoundViolation)
{
    Goal g;
    g.metric = "memory";
    g.value = 495.0;
    g.direction = GoalDirection::UpperBound;
    EXPECT_FALSE(g.violatedBy(400.0));
    EXPECT_FALSE(g.violatedBy(495.0));
    EXPECT_TRUE(g.violatedBy(495.1));
}

TEST(Goal, LowerBoundViolation)
{
    Goal g;
    g.metric = "throughput";
    g.value = 100.0;
    g.direction = GoalDirection::LowerBound;
    EXPECT_TRUE(g.violatedBy(99.0));
    EXPECT_FALSE(g.violatedBy(100.0));
    EXPECT_FALSE(g.violatedBy(150.0));
}

TEST(VirtualGoal, UpperBoundShrinks)
{
    Goal g;
    g.value = 495.0;
    g.direction = GoalDirection::UpperBound;
    // Fig. 6: goal 495 MB, lambda ~0.1 -> virtual goal ~445 MB.
    EXPECT_NEAR(virtualGoalFor(g, 0.101), 444.995, 0.01);
}

TEST(VirtualGoal, LowerBoundGrows)
{
    Goal g;
    g.value = 100.0;
    g.direction = GoalDirection::LowerBound;
    EXPECT_DOUBLE_EQ(virtualGoalFor(g, 0.2), 120.0);
}

TEST(VirtualGoal, ZeroLambdaIsIdentity)
{
    Goal g;
    g.value = 42.0;
    EXPECT_DOUBLE_EQ(virtualGoalFor(g, 0.0), 42.0);
}

TEST(VirtualGoal, MoreUnstableMeansWiderMargin)
{
    Goal g;
    g.value = 1000.0;
    EXPECT_GT(virtualGoalFor(g, 0.05), virtualGoalFor(g, 0.3));
}

} // namespace
} // namespace smartconf
