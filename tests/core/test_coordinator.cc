/** @file Unit tests for goal coordination (paper Sec. 5.4). */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/controller.h"
#include "core/coordinator.h"

namespace smartconf {
namespace {

Goal
goal(const std::string &metric, bool super_hard)
{
    Goal g;
    g.metric = metric;
    g.value = 500.0;
    g.hard = true;
    g.superHard = super_hard;
    return g;
}

ControllerParams
params()
{
    ControllerParams p;
    p.alpha = 1.0;
    p.confMax = 1e9;
    return p;
}

TEST(Coordinator, DeclareAndLookup)
{
    GoalCoordinator c;
    EXPECT_FALSE(c.hasGoal("mem"));
    c.declareGoal(goal("mem", false));
    EXPECT_TRUE(c.hasGoal("mem"));
    EXPECT_DOUBLE_EQ(c.goalFor("mem").value, 500.0);
    EXPECT_THROW(c.goalFor("nope"), std::out_of_range);
}

TEST(Coordinator, SuperHardSplitsInteractionFactor)
{
    GoalCoordinator coord;
    coord.declareGoal(goal("mem", true));
    Controller a(params(), goal("mem", true));
    Controller b(params(), goal("mem", true));

    coord.attach("mem", &a);
    EXPECT_DOUBLE_EQ(a.params().interactionFactor, 1.0);
    coord.attach("mem", &b);
    // Both controllers now split the error evenly (N = 2).
    EXPECT_DOUBLE_EQ(a.params().interactionFactor, 2.0);
    EXPECT_DOUBLE_EQ(b.params().interactionFactor, 2.0);
    EXPECT_EQ(coord.interactionCount("mem"), 2u);
}

TEST(Coordinator, NonSuperHardKeepsFactorOne)
{
    GoalCoordinator coord;
    coord.declareGoal(goal("mem", false));
    Controller a(params(), goal("mem", false));
    Controller b(params(), goal("mem", false));
    coord.attach("mem", &a);
    coord.attach("mem", &b);
    EXPECT_DOUBLE_EQ(a.params().interactionFactor, 1.0);
    EXPECT_DOUBLE_EQ(b.params().interactionFactor, 1.0);
}

TEST(Coordinator, DetachRestoresFactor)
{
    GoalCoordinator coord;
    coord.declareGoal(goal("mem", true));
    Controller a(params(), goal("mem", true));
    Controller b(params(), goal("mem", true));
    coord.attach("mem", &a);
    coord.attach("mem", &b);
    coord.detach("mem", &b);
    EXPECT_DOUBLE_EQ(a.params().interactionFactor, 1.0);
    EXPECT_EQ(coord.interactionCount("mem"), 1u);
}

TEST(Coordinator, UpdateGoalFansOutToControllers)
{
    GoalCoordinator coord;
    coord.declareGoal(goal("mem", false));
    Controller a(params(), goal("mem", false));
    coord.attach("mem", &a);
    coord.updateGoalValue("mem", 300.0);
    EXPECT_DOUBLE_EQ(a.goal().value, 300.0);
    EXPECT_DOUBLE_EQ(coord.goalFor("mem").value, 300.0);
}

TEST(Coordinator, UpdateUnknownGoalThrows)
{
    GoalCoordinator coord;
    EXPECT_THROW(coord.updateGoalValue("nope", 1.0), std::out_of_range);
}

TEST(Coordinator, LateRegistrationRebalances)
{
    // PerfConfs are added as software evolves (Sec. 5.4); a third
    // configuration attaching later rebalances everyone to N = 3.
    GoalCoordinator coord;
    coord.declareGoal(goal("mem", true));
    Controller a(params(), goal("mem", true));
    Controller b(params(), goal("mem", true));
    Controller c(params(), goal("mem", true));
    coord.attach("mem", &a);
    coord.attach("mem", &b);
    coord.attach("mem", &c);
    EXPECT_DOUBLE_EQ(a.params().interactionFactor, 3.0);
    EXPECT_DOUBLE_EQ(c.params().interactionFactor, 3.0);
}

TEST(Coordinator, DuplicateAttachIsIdempotent)
{
    // Regression: attach() used to push_back unconditionally, so a
    // controller registered twice counted twice in interactionCount()
    // and inflated N in the (1-p)/(N*alpha) error split.
    GoalCoordinator coord;
    coord.declareGoal(goal("mem", true));
    Controller a(params(), goal("mem", true));
    Controller b(params(), goal("mem", true));

    coord.attach("mem", &a);
    coord.attach("mem", &a); // re-registration must be a no-op
    EXPECT_EQ(coord.interactionCount("mem"), 1u);
    EXPECT_DOUBLE_EQ(a.params().interactionFactor, 1.0);

    coord.attach("mem", &b);
    coord.attach("mem", &a); // still a no-op after a sibling joined
    EXPECT_EQ(coord.interactionCount("mem"), 2u);
    EXPECT_DOUBLE_EQ(a.params().interactionFactor, 2.0);
    EXPECT_DOUBLE_EQ(b.params().interactionFactor, 2.0);

    // One detach fully removes the controller (it was stored once).
    coord.detach("mem", &a);
    EXPECT_EQ(coord.interactionCount("mem"), 1u);
    EXPECT_DOUBLE_EQ(b.params().interactionFactor, 1.0);
}

TEST(Coordinator, RedeclareSuperHardOnRefreshesAttached)
{
    // Regression: declareGoal() used to just overwrite the stored
    // goal, so controllers attached while the goal was ordinary kept
    // interaction factor 1 after it was re-declared super-hard.
    GoalCoordinator coord;
    coord.declareGoal(goal("mem", false));
    Controller a(params(), goal("mem", false));
    Controller b(params(), goal("mem", false));
    coord.attach("mem", &a);
    coord.attach("mem", &b);
    EXPECT_DOUBLE_EQ(a.params().interactionFactor, 1.0);

    coord.declareGoal(goal("mem", true)); // flip super-hard ON
    EXPECT_DOUBLE_EQ(a.params().interactionFactor, 2.0);
    EXPECT_DOUBLE_EQ(b.params().interactionFactor, 2.0);
}

TEST(Coordinator, RedeclareSuperHardOffResetsFactors)
{
    GoalCoordinator coord;
    coord.declareGoal(goal("mem", true));
    Controller a(params(), goal("mem", true));
    Controller b(params(), goal("mem", true));
    coord.attach("mem", &a);
    coord.attach("mem", &b);
    EXPECT_DOUBLE_EQ(a.params().interactionFactor, 2.0);

    coord.declareGoal(goal("mem", false)); // flip super-hard OFF
    EXPECT_DOUBLE_EQ(a.params().interactionFactor, 1.0);
    EXPECT_DOUBLE_EQ(b.params().interactionFactor, 1.0);
}

TEST(Coordinator, AttachBeforeDeclareGoal)
{
    // Attachment order must not matter: controllers registered before
    // the goal exists are rebalanced once it is declared super-hard.
    GoalCoordinator coord;
    Controller a(params(), goal("mem", true));
    Controller b(params(), goal("mem", true));
    coord.attach("mem", &a);
    coord.attach("mem", &b);
    EXPECT_EQ(coord.interactionCount("mem"), 2u);
    EXPECT_DOUBLE_EQ(a.params().interactionFactor, 1.0);

    coord.declareGoal(goal("mem", true));
    EXPECT_DOUBLE_EQ(a.params().interactionFactor, 2.0);
    EXPECT_DOUBLE_EQ(b.params().interactionFactor, 2.0);
}

TEST(Coordinator, DetachNeverAttachedIsNoOp)
{
    GoalCoordinator coord;
    coord.declareGoal(goal("mem", true));
    Controller a(params(), goal("mem", true));
    Controller stranger(params(), goal("mem", true));
    coord.attach("mem", &a);

    coord.detach("mem", &stranger);   // never attached: no-op
    coord.detach("disk", &stranger);  // metric never seen: no-op
    EXPECT_EQ(coord.interactionCount("mem"), 1u);
    EXPECT_DOUBLE_EQ(a.params().interactionFactor, 1.0);
}

TEST(Coordinator, SuperHardFlipMidRunKeepsSplitConsistent)
{
    // A full mid-run episode: controllers run under N = 3, the goal is
    // re-declared ordinary (everyone back to N = 1), then super-hard
    // again (back to N = 3) — with membership changing in between.
    GoalCoordinator coord;
    coord.declareGoal(goal("mem", true));
    Controller a(params(), goal("mem", true));
    Controller b(params(), goal("mem", true));
    Controller c(params(), goal("mem", true));
    coord.attach("mem", &a);
    coord.attach("mem", &b);
    coord.attach("mem", &c);
    EXPECT_DOUBLE_EQ(b.params().interactionFactor, 3.0);

    coord.declareGoal(goal("mem", false));
    EXPECT_DOUBLE_EQ(c.params().interactionFactor, 1.0);

    coord.detach("mem", &b); // churn while the goal is ordinary
    coord.declareGoal(goal("mem", true));
    EXPECT_EQ(coord.interactionCount("mem"), 2u);
    EXPECT_DOUBLE_EQ(a.params().interactionFactor, 2.0);
    EXPECT_DOUBLE_EQ(c.params().interactionFactor, 2.0);
}

TEST(Coordinator, IndependentMetricsDoNotInteract)
{
    GoalCoordinator coord;
    coord.declareGoal(goal("mem", true));
    coord.declareGoal(goal("disk", true));
    Controller a(params(), goal("mem", true));
    Controller b(params(), goal("disk", true));
    coord.attach("mem", &a);
    coord.attach("disk", &b);
    EXPECT_DOUBLE_EQ(a.params().interactionFactor, 1.0);
    EXPECT_DOUBLE_EQ(b.params().interactionFactor, 1.0);
}

} // namespace
} // namespace smartconf
