/**
 * @file Property-style sweeps over the controller's stability region.
 *
 * The paper's formal assessment (Sec. 5.6): the closed loop is stable
 * for 0 <= p < 1, and with the virtual goal + context-aware poles the
 * system avoids overshooting hard goals with high probability even
 * under disturbances.  These parameterized tests check those claims
 * across pole values, gains and disturbance magnitudes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/controller.h"
#include "sim/rng.h"

namespace smartconf {
namespace {

Goal
hardGoal(double value)
{
    Goal g;
    g.metric = "m";
    g.value = value;
    g.direction = GoalDirection::UpperBound;
    g.hard = true;
    return g;
}

/** Sweep: pole x gain. */
class StabilitySweep
    : public ::testing::TestWithParam<std::tuple<double, double>>
{};

TEST_P(StabilitySweep, ConvergesForAllPolesInRegion)
{
    const double pole = std::get<0>(GetParam());
    const double alpha = std::get<1>(GetParam());
    ControllerParams p;
    p.alpha = alpha;
    p.pole = pole;
    p.confMin = -1e9;
    p.confMax = 1e9;
    Goal g;
    g.metric = "m";
    g.value = 200.0;
    Controller c(p, g);

    double conf = 0.0, perf = 0.0;
    for (int k = 0; k < 400; ++k) {
        conf = c.update(perf, conf);
        perf = alpha * conf;
    }
    EXPECT_NEAR(perf, 200.0, 1.0)
        << "pole=" << pole << " alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(
    PoleGainGrid, StabilitySweep,
    ::testing::Combine(
        ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.97),
        ::testing::Values(0.25, 1.0, 4.0, -1.0, -3.0)));

/** Sweep: model error ratio tolerated by the pole rule p = 1 - 2/Delta. */
class ModelErrorSweep : public ::testing::TestWithParam<double>
{};

TEST_P(ModelErrorSweep, PoleRuleToleratesGainMismatch)
{
    const double ratio = GetParam(); // true gain / modeled gain
    const double alpha_model = 1.0;
    const double alpha_true = ratio;
    // Paper Sec. 5.1: p = 1 - 2/Delta tolerates model errors up to
    // Delta (with equality marginal); project Delta with headroom as
    // the 3-sigma rule effectively does.
    const double delta = std::max(2.0, 1.5 * ratio);
    const double pole = delta > 2.0 ? 1.0 - 2.0 / delta : 0.0;

    ControllerParams p;
    p.alpha = alpha_model;
    p.pole = pole;
    p.confMin = -1e9;
    p.confMax = 1e9;
    Goal g;
    g.metric = "m";
    g.value = 100.0;
    Controller c(p, g);

    double conf = 0.0, perf = 0.0;
    for (int k = 0; k < 2000; ++k) {
        conf = c.update(perf, conf);
        perf = alpha_true * conf;
    }
    EXPECT_NEAR(perf, 100.0, 1.0) << "ratio=" << ratio;
}

INSTANTIATE_TEST_SUITE_P(ErrorRatios, ModelErrorSweep,
                         ::testing::Values(0.5, 1.0, 1.5, 1.9, 3.0, 6.0,
                                           10.0, 19.0));

/** Sweep: disturbance magnitude vs hard-goal protection. */
class OvershootSweep : public ::testing::TestWithParam<double>
{};

TEST_P(OvershootSweep, VirtualGoalAbsorbsDisturbances)
{
    const double disturbance = GetParam();
    const double lambda = 0.12;
    ControllerParams p;
    p.alpha = 1.0;
    p.pole = 0.4;
    p.lambda = lambda;
    p.confMin = 0.0;
    p.confMax = 1e9;
    Controller c(p, hardGoal(500.0));

    sim::Rng rng(1234 + static_cast<std::uint64_t>(disturbance * 100));
    double conf = 0.0;
    double noise = 0.0;
    int violations = 0;
    int steps = 0;
    for (int k = 0; k < 4000; ++k) {
        // Plant: perf = conf + bounded random-walk disturbance.
        noise += rng.uniform(-disturbance, disturbance);
        noise = std::clamp(noise, 0.0, 30.0);
        const double perf = conf + noise;
        if (perf > 500.0)
            ++violations;
        ++steps;
        conf = c.update(perf, conf);
    }
    // The virtual-goal margin (lambda * 500 = 60) dwarfs the worst
    // disturbance (30): the hard constraint must never be violated.
    EXPECT_EQ(violations, 0) << "disturbance=" << disturbance;
}

INSTANTIATE_TEST_SUITE_P(Disturbances, OvershootSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0, 8.0));

/** The paper's 84%-safe-side claim for the virtual goal (Sec. 5.6). */
TEST(VirtualGoalProbability, MostlyOnSafeSideUnderGaussianNoise)
{
    // Steady state: controller holds perf at the virtual goal; with
    // sigma-sized Gaussian noise, ~84% of samples sit below
    // virtual_goal + sigma, hence below the goal when the margin is
    // >= 1 sigma.  Empirically check the safe-side fraction.
    const double goal = 500.0;
    const double lambda = 0.1; // margin 50
    const double sigma = 50.0; // 1-sigma margin exactly
    sim::Rng rng(99);
    ControllerParams p;
    p.alpha = 1.0;
    p.pole = 0.5; // damped reaction to measurement noise
    p.lambda = lambda;
    p.confMin = 0.0;
    p.confMax = 1e9;
    Controller c(p, hardGoal(goal));

    double conf = 0.0;
    int safe = 0, total = 0;
    for (int k = 0; k < 20000; ++k) {
        const double perf = conf + rng.gaussian(0.0, sigma);
        if (perf <= goal)
            ++safe;
        ++total;
        conf = c.update(perf, conf);
    }
    const double fraction = static_cast<double>(safe) / total;
    EXPECT_GT(fraction, 0.78); // paper predicts ~84%
}

} // namespace
} // namespace smartconf
