/**
 * @file
 * Real multi-process coverage: N writer processes and M reader
 * processes sharing one store directory, plus compaction racing a
 * reader process.  fork()-based, so this file is deliberately excluded
 * from the tsan/asan preset filters (sanitizers and fork do not mix);
 * children communicate only through exit codes.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "store/query.h"
#include "store/segment.h"
#include "store/segment_store.h"

namespace smartconf::store {
namespace {

namespace fs = std::filesystem;

class StoreMultiProcessTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = (fs::temp_directory_path() /
                ("smartconf-mp-test-" +
                 std::to_string(::testing::UnitTest::GetInstance()
                                    ->random_seed()) +
                 "-" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name()))
                   .string();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    static SegmentStore::Options quiet(std::size_t flush_entries = 8)
    {
        SegmentStore::Options o;
        o.auto_compact = false;
        o.flush_entries = flush_entries;
        return o;
    }

    static std::string keyFor(int writer, int i)
    {
        return "scn|w" + std::to_string(writer) + "|s=" +
               std::to_string(i);
    }

    static std::string payloadFor(int writer, int i)
    {
        return "w" + std::to_string(writer) + "-" + std::to_string(i) +
               "-payload";
    }

    /** Run @p fn in a forked child; its return is the exit code. */
    static pid_t spawn(const std::function<int()> &fn)
    {
        const pid_t pid = ::fork();
        if (pid == 0)
            ::_exit(fn()); // no gtest teardown, no atexit
        return pid;
    }

    static int awaitExit(pid_t pid)
    {
        int status = 0;
        if (::waitpid(pid, &status, 0) != pid)
            return -1;
        return WIFEXITED(status) ? WEXITSTATUS(status) : -2;
    }

    std::string dir_;
};

TEST_F(StoreMultiProcessTest, NWritersMReadersOneStore)
{
    constexpr int kWriters = 3;
    constexpr int kReaders = 2;
    constexpr int kPerWriter = 40;

    std::vector<pid_t> writers;
    for (int w = 0; w < kWriters; ++w) {
        writers.push_back(spawn([&, w]() -> int {
            SegmentStore s(dir_, quiet());
            for (int i = 0; i < kPerWriter; ++i) {
                const std::string p = payloadFor(w, i);
                if (!s.put(keyFor(w, i), p.data(), p.size(),
                           blockChecksum(p.data(), p.size())))
                    return 10;
            }
            return s.flush() ? 0 : 11;
        }));
    }
    for (const pid_t pid : writers)
        ASSERT_EQ(awaitExit(pid), 0);

    // Readers are separate processes too: they must reconstruct the
    // full picture from the directory alone.
    std::vector<pid_t> readers;
    for (int r = 0; r < kReaders; ++r) {
        readers.push_back(spawn([&]() -> int {
            SegmentStore s(dir_, quiet());
            for (int w = 0; w < kWriters; ++w) {
                for (int i = 0; i < kPerWriter; ++i) {
                    std::vector<char> out;
                    if (!s.get(keyFor(w, i), out))
                        return 20;
                    if (std::string(out.begin(), out.end()) !=
                        payloadFor(w, i))
                        return 21; // wrong replay: the cardinal sin
                }
            }
            return 0;
        }));
    }
    for (const pid_t pid : readers)
        EXPECT_EQ(awaitExit(pid), 0);

    // And the parent verifies the combined store end-to-end.
    SegmentStore s(dir_, quiet());
    EXPECT_TRUE(s.verify().clean());
    EXPECT_EQ(queryStore(s, QueryFilter{}).size(),
              static_cast<std::size_t>(kWriters * kPerWriter));
}

TEST_F(StoreMultiProcessTest, CompactionInOneProcessRacesAReader)
{
    constexpr int kKeys = 48;
    {
        SegmentStore w(dir_, quiet(2)); // many small segments
        for (int i = 0; i < kKeys; ++i) {
            const std::string p = payloadFor(0, i);
            ASSERT_TRUE(w.put(keyFor(0, i), p.data(), p.size(),
                              blockChecksum(p.data(), p.size())));
        }
        ASSERT_TRUE(w.flush());
        // Duplicate generation so compaction has something to dedup.
        for (int i = 0; i < kKeys; ++i) {
            const std::string p = payloadFor(0, i);
            ASSERT_TRUE(w.put(keyFor(0, i), p.data(), p.size(),
                              blockChecksum(p.data(), p.size())));
        }
        ASSERT_TRUE(w.flush());
    }

    // Reader child loops over every key while the parent compacts.
    const pid_t reader = spawn([&]() -> int {
        SegmentStore s(dir_, quiet());
        for (int pass = 0; pass < 60; ++pass) {
            for (int i = 0; i < kKeys; ++i) {
                std::vector<char> out;
                if (!s.get(keyFor(0, i), out))
                    return 30; // an entry vanished mid-compaction
                if (std::string(out.begin(), out.end()) !=
                    payloadFor(0, i))
                    return 31;
            }
        }
        return 0;
    });

    SegmentStore compactor(dir_, quiet());
    const CompactionResult cr = compactor.compact();
    EXPECT_GT(cr.shards_compacted, 0u);
    EXPECT_EQ(awaitExit(reader), 0);

    // Post-compaction, a fresh process sees exactly one live copy of
    // every key and a clean store.
    SegmentStore s(dir_, quiet());
    EXPECT_TRUE(s.verify().clean());
    EXPECT_EQ(queryStore(s, QueryFilter{}).size(),
              static_cast<std::size_t>(kKeys));
}

TEST_F(StoreMultiProcessTest, ConcurrentWritersNeverCollideOnSegmentNames)
{
    // Two processes publishing simultaneously must never clobber each
    // other's segments (names embed pid; the claim loop checks
    // existence).
    constexpr int kWriters = 4;
    std::vector<pid_t> pids;
    for (int w = 0; w < kWriters; ++w) {
        pids.push_back(spawn([&, w]() -> int {
            SegmentStore s(dir_, quiet(1)); // one segment per put
            for (int i = 0; i < 12; ++i) {
                const std::string p = payloadFor(w, i);
                if (!s.put(keyFor(w, i), p.data(), p.size(),
                           blockChecksum(p.data(), p.size())))
                    return 40;
            }
            return s.flush() ? 0 : 41;
        }));
    }
    for (const pid_t pid : pids)
        ASSERT_EQ(awaitExit(pid), 0);

    SegmentStore s(dir_, quiet());
    EXPECT_EQ(queryStore(s, QueryFilter{}).size(),
              static_cast<std::size_t>(kWriters * 12));
    EXPECT_TRUE(s.verify().clean());
}

} // namespace
} // namespace smartconf::store
