/**
 * @file
 * Queryable-index coverage: run-key parsing and range queries over
 * (scenario family, policy, seed range, chaos spec) answered from the
 * segment index with zero simulation and zero payload IO.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "store/query.h"
#include "store/segment.h"
#include "store/segment_store.h"

namespace smartconf::store {
namespace {

namespace fs = std::filesystem;

class StoreQueryTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = (fs::temp_directory_path() /
                ("smartconf-query-test-" +
                 std::to_string(::testing::UnitTest::GetInstance()
                                    ->random_seed()) +
                 "-" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name()))
                   .string();
        fs::remove_all(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    static SegmentStore::Options quiet()
    {
        SegmentStore::Options o;
        o.auto_compact = false;
        o.flush_entries = 8;
        return o;
    }

    static void put(SegmentStore &s, const std::string &key)
    {
        const std::string payload = "p:" + key;
        ASSERT_TRUE(s.put(key, payload.data(), payload.size(),
                          blockChecksum(payload.data(),
                                        payload.size())));
    }

    std::string dir_;
};

TEST_F(StoreQueryTest, ParsesRealRunKeyShapes)
{
    // Shapes produced by RunCache::key + Policy::cacheKey today.
    ParsedRunKey k;
    ASSERT_TRUE(parseRunKey(
        "HB3813|smartconf:label=SmartConf|s=17", k));
    EXPECT_EQ(k.scenario, "HB3813");
    EXPECT_EQ(k.family, "HB3813");
    EXPECT_EQ(k.policy, "smartconf:label=SmartConf");
    EXPECT_EQ(k.chaos, "");
    EXPECT_EQ(k.seed, 17u);

    ASSERT_TRUE(parseRunKey(
        "HB3813/fig7|fixed:v=256:label=Default|s=3", k));
    EXPECT_EQ(k.scenario, "HB3813/fig7");
    EXPECT_EQ(k.family, "HB3813");
    EXPECT_EQ(k.policy, "fixed:v=256:label=Default");

    ASSERT_TRUE(parseRunKey("MR-dg|smartconf:chaos:s=11:nan=0.01:"
                            "label=Chaos|s=5",
                            k));
    EXPECT_EQ(k.family, "MR-dg");
    EXPECT_EQ(k.chaos, "chaos:s=11:nan=0.01");
    EXPECT_EQ(k.seed, 5u);

    // The seed separator must be the *last* "|s=", not one embedded
    // in a chaos spec.
    ASSERT_TRUE(parseRunKey("A|p:chaos:s=9|s=2", k));
    EXPECT_EQ(k.seed, 2u);

    EXPECT_FALSE(parseRunKey("no-separators", k));
    EXPECT_FALSE(parseRunKey("a|b", k));
    EXPECT_FALSE(parseRunKey("a|b|s=xyz", k));
}

TEST_F(StoreQueryTest, RangeQueryAnswersFromIndexWithZeroPayloadIO)
{
    {
        SegmentStore w(dir_, quiet());
        for (int seed = 0; seed < 10; ++seed) {
            put(w, "HB3813|smartconf:label=SmartConf|s=" +
                       std::to_string(seed));
            put(w, "HB3813/fig7|fixed:v=64:label=Default|s=" +
                       std::to_string(seed));
            put(w, "MR-dg|smartconf:chaos:s=4:nan=0.01:label=C|s=" +
                       std::to_string(seed));
        }
        ASSERT_TRUE(w.flush());
    }

    SegmentStore s(dir_, quiet());
    const StoreStats before = s.stats();

    // Family + seed range.
    QueryFilter f;
    f.scenario_prefix = "HB3813";
    f.seed_min = 2;
    f.seed_max = 4;
    std::vector<QueryRow> rows = queryStore(s, f);
    EXPECT_EQ(rows.size(), 6u); // 2 HB3813 variants x seeds {2,3,4}
    for (const QueryRow &r : rows) {
        EXPECT_GE(r.seed, 2u);
        EXPECT_LE(r.seed, 4u);
        EXPECT_EQ(r.scenario.rfind("HB3813", 0), 0u);
        EXPECT_FALSE(r.segment.empty()) << "row not from a segment";
    }

    // Policy substring.
    f = QueryFilter{};
    f.policy_substr = "fixed:v=64";
    EXPECT_EQ(queryStore(s, f).size(), 10u);

    // Chaos: any / none / substring.
    f = QueryFilter{};
    f.chaos_substr = "*";
    EXPECT_EQ(queryStore(s, f).size(), 10u);
    f.chaos_substr = "-";
    EXPECT_EQ(queryStore(s, f).size(), 20u);
    f.chaos_substr = "nan=0.01";
    EXPECT_EQ(queryStore(s, f).size(), 10u);

    // The whole campaign read zero payload bytes: index-only.
    const StoreStats after = s.stats();
    EXPECT_EQ(after.reads, before.reads);
    EXPECT_EQ(after.read_bytes, before.read_bytes);
}

TEST_F(StoreQueryTest, QuerySeesPendingEntriesAndDedupsSuperseded)
{
    SegmentStore s(dir_, quiet());
    put(s, "A|p|s=1");
    ASSERT_TRUE(s.flush());
    put(s, "A|p|s=1"); // superseding duplicate, still pending
    put(s, "A|p|s=2"); // pending only

    const std::vector<QueryRow> rows = queryStore(s, QueryFilter{});
    EXPECT_EQ(rows.size(), 2u) << "duplicate key leaked into results";
    // s=1 must come from the pending buffer (newest wins).
    for (const QueryRow &r : rows)
        if (r.seed == 1)
            EXPECT_TRUE(r.segment.empty());
}

TEST_F(StoreQueryTest, QuerySurvivesCompaction)
{
    SegmentStore s(dir_, quiet());
    for (int seed = 0; seed < 12; ++seed)
        put(s, "A|p|s=" + std::to_string(seed));
    ASSERT_TRUE(s.flush());
    for (int seed = 0; seed < 12; ++seed)
        put(s, "A|p|s=" + std::to_string(seed)); // duplicates
    ASSERT_TRUE(s.flush());
    (void)s.compact();

    QueryFilter f;
    f.seed_min = 3;
    f.seed_max = 11;
    const std::vector<QueryRow> rows = queryStore(s, f);
    EXPECT_EQ(rows.size(), 9u);
}

} // namespace
} // namespace smartconf::store
